// Package faultfs injects storage failures underneath the WAL writer: a
// crash after byte N (the write crossing the boundary is torn mid-record),
// short writes, and fsync failures. The crash-point sweep in internal/wal
// drives it at every byte offset of a fixture stream to prove recovery
// reproduces the uninterrupted engine at every possible crash.
package faultfs

import (
	"bytes"
	"errors"
	"io"
)

// ErrInjected is the error every faulted operation returns. After the first
// injected crash the file is wedged: all later writes and syncs fail too,
// modeling a dead process or yanked disk.
var ErrInjected = errors.New("faultfs: injected fault")

// Backing is the file being wrapped — the same surface wal.File needs.
type Backing interface {
	io.Writer
	Sync() error
	Close() error
}

// Fault is the injection plan.
type Fault struct {
	// CrashAfter, when ≥ 0, is the total number of bytes allowed to reach
	// the backing file. The write crossing the boundary is truncated to it —
	// a torn write — and the file is wedged from then on.
	CrashAfter int64
	// FailSyncAt, when > 0, makes the n-th Sync call fail and wedge the
	// file (fsync failure semantics: once fsync fails, nothing later can be
	// trusted either).
	FailSyncAt int
}

// File wraps a Backing with the fault plan. Not safe for concurrent use —
// tests drive one writer.
type File struct {
	b       Backing
	fault   Fault
	written int64
	syncs   int
	crashed bool
}

// Wrap returns the faulted file. A Fault zero value never triggers
// CrashAfter 0 — use CrashAfter: -1 (or Disabled) to disable explicitly.
func Wrap(b Backing, fault Fault) *File {
	return &File{b: b, fault: fault}
}

// Disabled is the CrashAfter value that turns byte-crash injection off.
const Disabled = int64(-1)

// Crashed reports whether a fault has triggered.
func (f *File) Crashed() bool { return f.crashed }

// Written returns the bytes that reached the backing file.
func (f *File) Written() int64 { return f.written }

// Write implements io.Writer with the crash plan.
func (f *File) Write(p []byte) (int, error) {
	if f.crashed {
		return 0, ErrInjected
	}
	if f.fault.CrashAfter >= 0 && f.written+int64(len(p)) > f.fault.CrashAfter {
		n := int(f.fault.CrashAfter - f.written)
		if n > 0 {
			// the torn prefix reaches the disk; the rest never does
			m, err := f.b.Write(p[:n])
			f.written += int64(m)
			if err != nil {
				f.crashed = true
				return m, err
			}
		}
		f.crashed = true
		return n, ErrInjected
	}
	n, err := f.b.Write(p)
	f.written += int64(n)
	if err != nil {
		f.crashed = true
	}
	return n, err
}

// Sync implements the fsync plan.
func (f *File) Sync() error {
	if f.crashed {
		return ErrInjected
	}
	f.syncs++
	if f.fault.FailSyncAt > 0 && f.syncs == f.fault.FailSyncAt {
		f.crashed = true
		return ErrInjected
	}
	return f.b.Sync()
}

// Close closes the backing file; it works even after a crash so tests can
// release real files.
func (f *File) Close() error { return f.b.Close() }

// MemFile is an in-memory Backing for exhaustive crash sweeps: what Bytes
// returns after a crash is exactly what a recovery would find on disk.
type MemFile struct {
	buf bytes.Buffer
}

// Write implements io.Writer.
func (m *MemFile) Write(p []byte) (int, error) { return m.buf.Write(p) }

// Sync is a no-op: MemFile models the post-crash disk image directly.
func (m *MemFile) Sync() error { return nil }

// Close is a no-op.
func (m *MemFile) Close() error { return nil }

// Bytes returns the surviving file image.
func (m *MemFile) Bytes() []byte { return m.buf.Bytes() }

// Len returns the surviving size.
func (m *MemFile) Len() int { return m.buf.Len() }
