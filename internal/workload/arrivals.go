package workload

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"math"

	"github.com/ebsn/igepa/internal/xrand"
)

// Arrival is one timestamped user arrival in a serving stream: the JSONL
// currency between cmd/igepa-datagen (which writes arrival logs next to
// generated instances) and cmd/igepa-serve (which replays them and reports
// decision latency). Timestamps are milliseconds from stream start.
type Arrival struct {
	TMillis int64 `json:"t_ms"`
	User    int   `json:"user"`
}

// SyntheticArrivals generates a deterministic timestamped arrival stream:
// every user arrives exactly once, in seeded random order, with exponential
// inter-arrival gaps at the given mean rate (arrivals per second). rate ≤ 0
// means 1000/s.
func SyntheticArrivals(seed int64, numUsers int, rate float64) []Arrival {
	if rate <= 0 {
		rate = 1000
	}
	rng := xrand.New(seed)
	order := rng.Perm(numUsers)
	out := make([]Arrival, numUsers)
	t := 0.0
	for i, u := range order {
		// inverse-CDF exponential gap; 1−U ∈ (0,1] keeps the log finite
		t += -math.Log(1-rng.Float64()) / rate * 1000
		out[i] = Arrival{TMillis: int64(t), User: u}
	}
	return out
}

// WriteArrivals writes the stream as JSON Lines, one arrival per line.
func WriteArrivals(w io.Writer, arrivals []Arrival) error {
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	for i := range arrivals {
		if err := enc.Encode(&arrivals[i]); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadArrivals parses a JSONL arrival log, validating that timestamps are
// non-decreasing, users are non-negative and no user arrives twice (the
// replay layers decide each user irrevocably, so a duplicate is a corrupt
// log, not a legal event). Blank lines are skipped. Malformed input —
// truncated lines, oversized lines, non-monotonic timestamps, duplicates —
// yields a line-numbered error, never a panic.
func ReadArrivals(r io.Reader) ([]Arrival, error) {
	var out []Arrival
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	line := 0
	prev := int64(math.MinInt64)
	seen := make(map[int]int) // user → first line
	for sc.Scan() {
		line++
		raw := sc.Bytes()
		if len(raw) == 0 {
			continue
		}
		var a Arrival
		if err := json.Unmarshal(raw, &a); err != nil {
			return nil, fmt.Errorf("workload: arrival log line %d: %w", line, err)
		}
		if a.User < 0 {
			return nil, fmt.Errorf("workload: arrival log line %d: negative user %d", line, a.User)
		}
		if first, dup := seen[a.User]; dup {
			return nil, fmt.Errorf("workload: arrival log line %d: user %d already arrived on line %d", line, a.User, first)
		}
		seen[a.User] = line
		if a.TMillis < prev {
			return nil, fmt.Errorf("workload: arrival log line %d: timestamp %d before %d", line, a.TMillis, prev)
		}
		prev = a.TMillis
		out = append(out, a)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("workload: reading arrival log: %w", err)
	}
	return out, nil
}

// ArrivalOrder projects the stream onto the replay order cmd/igepa-serve and
// shard.Serve consume.
func ArrivalOrder(arrivals []Arrival) []int {
	order := make([]int, len(arrivals))
	for i := range arrivals {
		order[i] = arrivals[i].User
	}
	return order
}
