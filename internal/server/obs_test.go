package server

import (
	"bytes"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"sync"
	"testing"
	"time"

	"github.com/ebsn/igepa/internal/obs"
	"github.com/ebsn/igepa/internal/shard"
	"github.com/ebsn/igepa/internal/wal"
)

// scrapeMetrics fetches /metrics, fails the test on any lint finding, and
// returns the families keyed by name.
func scrapeMetrics(t testing.TB, c *client) map[string]obs.Family {
	t.Helper()
	resp, err := c.hc.Get(c.base + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /metrics: %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != obs.ContentType {
		t.Fatalf("content type %q, want %q", ct, obs.ContentType)
	}
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if problems := obs.LintExposition(bytes.NewReader(raw)); len(problems) > 0 {
		t.Fatalf("exposition lint: %v", problems)
	}
	fams, err := obs.ParseFamilies(bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	byName := make(map[string]obs.Family, len(fams))
	for _, f := range fams {
		byName[f.Name] = f
	}
	return byName
}

// metricValue finds one sample by its full name (family name, or name_count
// etc. for histograms) and label constraints; ok is false when absent.
func metricValue(fams map[string]obs.Family, family, sample string, labels map[string]string) (float64, bool) {
	f, present := fams[family]
	if !present {
		return 0, false
	}
	for _, s := range f.Samples {
		if s.Name != sample {
			continue
		}
		match := true
		for k, want := range labels {
			if s.Label(k) != want {
				match = false
				break
			}
		}
		if match {
			v, err := s.Float()
			if err != nil {
				return 0, false
			}
			return v, true
		}
	}
	return 0, false
}

func requireMetric(t *testing.T, fams map[string]obs.Family, family, sample string, labels map[string]string) float64 {
	t.Helper()
	v, ok := metricValue(fams, family, sample, labels)
	if !ok {
		t.Fatalf("metric %s (sample %s, labels %v) missing from exposition", family, sample, labels)
	}
	return v
}

// TestMetricsExposition drives real traffic through a WAL-backed server with
// the LP lease policy and the live bound enabled, then pins the /metrics
// surface: valid lintable exposition, and every mirrored counter agreeing
// with the authoritative /statsz source it mirrors.
func TestMetricsExposition(t *testing.T) {
	in := testInstance(t, 41, 66, 10)
	srv, _, c := startServer(t, in, Config{
		Shard: shard.Options{
			Shards: 2, Batch: 8, Seed: 7, Lease: shard.LeaseLP, LiveBound: true,
		},
		FlushInterval: 200 * time.Microsecond,
		WALPath:       filepath.Join(t.TempDir(), "wal.log"),
		WALSync:       wal.SyncAlways,
	})
	driveTraffic(t, c, 66, 10, false)
	if !srv.Drain(10 * time.Second) {
		t.Fatal("drain timed out")
	}

	fams := scrapeMetrics(t, c)
	st := srv.Stats()

	// Counters mirror the /statsz atomics exactly.
	mirrored := []struct {
		name string
		want int64
	}{
		{"igepa_arrivals_total", st.Arrivals},
		{"igepa_decided_total", st.Decided},
		{"igepa_granted_total", st.Granted},
		{"igepa_cancels_total", st.Cancels},
		{"igepa_lease_renewals_total", int64(st.LeaseRenewals)},
		{"igepa_moved_seats_total", int64(st.MovedSeats)},
	}
	for _, m := range mirrored {
		if got := requireMetric(t, fams, m.name, m.name, nil); got != float64(m.want) {
			t.Errorf("%s = %v, want %d (statsz)", m.name, got, m.want)
		}
	}
	if st.Decided == 0 || st.LeaseRenewals == 0 {
		t.Fatalf("test drove no real work: %+v", st)
	}

	// The decision histogram saw every decided arrival.
	if got := requireMetric(t, fams, "igepa_total_seconds", "igepa_total_seconds_count", nil); got != float64(st.Decided) {
		t.Errorf("igepa_total_seconds count = %v, want %d", got, st.Decided)
	}

	// Per-shard queue gauges exist for both shards; the configured limit is
	// exported.
	for _, sh := range []string{"0", "1"} {
		requireMetric(t, fams, "igepa_queue_depth", "igepa_queue_depth", map[string]string{"shard": sh})
	}
	if got := requireMetric(t, fams, "igepa_queue_limit", "igepa_queue_limit", nil); got != float64(st.QueueLimit) {
		t.Errorf("igepa_queue_limit = %v, want %d", got, st.QueueLimit)
	}

	// WAL instrumentation: appends counted, every append fsynced under
	// SyncAlways, fsync latency histogram populated.
	appends := requireMetric(t, fams, "igepa_wal_appends_total", "igepa_wal_appends_total", nil)
	if appends == 0 {
		t.Error("igepa_wal_appends_total = 0 with a WAL attached")
	}
	// Group commit fsyncs once per micro-batch, so syncs <= appends — but
	// under SyncAlways every commit syncs, so the count must be nonzero.
	if syncs := requireMetric(t, fams, "igepa_wal_syncs_total", "igepa_wal_syncs_total", nil); syncs == 0 || syncs > appends {
		t.Errorf("igepa_wal_syncs_total = %v (appends %v) under SyncAlways", syncs, appends)
	}
	if n := requireMetric(t, fams, "igepa_wal_fsync_seconds", "igepa_wal_fsync_seconds_count", nil); n == 0 {
		t.Error("igepa_wal_fsync_seconds histogram is empty under SyncAlways")
	}
	if n := requireMetric(t, fams, "igepa_wal_commit_seconds", "igepa_wal_commit_seconds_count", nil); n != float64(st.Decided) {
		t.Errorf("igepa_wal_commit_seconds count = %v, want %d", n, st.Decided)
	}

	// LP solver counters, mirrored at renewal rounds: the LP lease policy
	// must have cold-solved at least once, and the live bound re-solved.
	if v := requireMetric(t, fams, "igepa_lp_cold_solves_total", "igepa_lp_cold_solves_total", map[string]string{"solver": "lease"}); v == 0 {
		t.Error("lease LP never cold-solved under LeaseLP")
	}
	requireMetric(t, fams, "igepa_lp_phase_ns_total", "igepa_lp_phase_ns_total", map[string]string{"solver": "lease", "phase": "pricing"})
	if v := requireMetric(t, fams, "igepa_lp_bound_updates_total", "igepa_lp_bound_updates_total", nil); v == 0 {
		t.Error("live bound never updated with LiveBound on")
	}
	requireMetric(t, fams, "igepa_lp_bound_remaining", "igepa_lp_bound_remaining", nil)

	// Method discipline.
	if code := c.status("POST", "/metrics", nil); code != http.StatusMethodNotAllowed {
		t.Fatalf("POST /metrics: %d, want 405", code)
	}
}

// TestMetricsDisabled pins the benchmark baseline: Config.DisableMetrics
// removes the endpoint entirely.
func TestMetricsDisabled(t *testing.T) {
	_, _, c := startServer(t, testInstance(t, 3, 20, 6), Config{
		Shard:          shard.Options{Shards: 2, Batch: 8, Seed: 1},
		DisableMetrics: true,
	})
	if code := c.status("GET", "/metrics", nil); code != http.StatusNotFound {
		t.Fatalf("GET /metrics with DisableMetrics: %d, want 404", code)
	}
	if code := c.status("GET", "/statsz", nil); code != http.StatusOK {
		t.Fatalf("statsz must survive DisableMetrics: %d", code)
	}
}

// syncBuffer lets the test read slowlog output written from serving
// goroutines without racing the writer.
type syncBuffer struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *syncBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *syncBuffer) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.String()
}

// TestReplayBitIdenticalWithSlowlog is the no-perturbation acceptance pin:
// a replay server with metrics on and a 1ns slowlog threshold (every
// arrival traced) produces decisions bit-identical to a replay server with
// all instrumentation off.
func TestReplayBitIdenticalWithSlowlog(t *testing.T) {
	opts := shard.Options{Shards: 4, Batch: 16, Seed: 7, Lease: shard.LeaseLP, LiveBound: true}
	base := testInstance(t, 23, 66, 10)
	var slow syncBuffer

	instrumented, _, ic := startServer(t, base.Clone(), Config{
		Shard: opts, Replay: true,
		SlowLog: time.Nanosecond, SlowLogOutput: &slow,
	})
	plain, _, pc := startServer(t, base.Clone(), Config{
		Shard: opts, Replay: true, DisableMetrics: true,
	})

	driveTraffic(t, ic, 66, 10, true)
	driveTraffic(t, pc, 66, 10, true)

	var ia, pa struct {
		Sets [][]int `json:"sets"`
	}
	ic.do("GET", "/v1/assignment", nil, &ia)
	pc.do("GET", "/v1/assignment", nil, &pa)
	if !reflect.DeepEqual(ia.Sets, pa.Sets) {
		t.Fatal("instrumented replay decided differently from the uninstrumented replay")
	}
	ist, pst := instrumented.Stats(), plain.Stats()
	if ist.Epochs != pst.Epochs || ist.LeaseRenewals != pst.LeaseRenewals || ist.Decided != pst.Decided {
		t.Fatalf("replay progress diverged: instrumented %d/%d/%d vs plain %d/%d/%d (epochs/renewals/decided)",
			ist.Epochs, ist.LeaseRenewals, ist.Decided, pst.Epochs, pst.LeaseRenewals, pst.Decided)
	}

	// Every decided arrival crossed the 1ns threshold and left a trace line.
	if got := instrumented.slow.Count(); got != ist.Decided {
		t.Fatalf("slowlog counted %d arrivals, want %d", got, ist.Decided)
	}
	out := slow.String()
	if !strings.Contains(out, "slowlog op=bid") || !strings.Contains(out, " wait=") || !strings.Contains(out, " wal=") {
		t.Fatalf("slowlog lines missing expected spans:\n%s", out)
	}
	fams := scrapeMetrics(t, ic)
	if v := requireMetric(t, fams, "igepa_slow_arrivals_total", "igepa_slow_arrivals_total", nil); v != float64(ist.Decided) {
		t.Fatalf("igepa_slow_arrivals_total = %v, want %d", v, ist.Decided)
	}
}

// TestArrivalPathAllocs pins the hot-path instrumentation contract from
// DESIGN.md §12: the per-arrival record — three registry histograms, the
// WAL-commit histogram, the /statsz reservoir sample, and the slowlog
// threshold gate — allocates nothing.
func TestArrivalPathAllocs(t *testing.T) {
	o := newServerObs(&Server{qlimit: 8})
	slow := obs.NewSlowLog(time.Hour, io.Discard)
	var res reservoir
	allocs := testing.AllocsPerRun(2000, func() {
		o.observeDecision(5*time.Microsecond, 7*time.Microsecond, 12*time.Microsecond)
		o.observeWALCommit(3 * time.Microsecond)
		res.add(9 * time.Microsecond)
		if slow.Slow(10 * time.Microsecond) {
			t.Fatal("below-threshold arrival reported slow")
		}
	})
	if allocs != 0 {
		t.Fatalf("arrival-path record allocates %.1f objects per arrival, want 0", allocs)
	}
}

// TestStatszLPReport pins satellite 2: the persistent solver counters and
// phase timers reach /statsz for both the lease solver and the live-bound
// shadow planner.
func TestStatszLPReport(t *testing.T) {
	in := testInstance(t, 13, 66, 10)
	srv, _, c := startServer(t, in, Config{
		Shard: shard.Options{
			Shards: 2, Batch: 8, Seed: 3, Lease: shard.LeaseLP, LiveBound: true,
		},
		FlushInterval: 200 * time.Microsecond,
	})
	driveTraffic(t, c, 66, 10, false)
	if !srv.Drain(10 * time.Second) {
		t.Fatal("drain timed out")
	}
	st := srv.Stats()
	if st.LP == nil {
		t.Fatal("statsz LP report missing")
	}
	if st.LP.Lease.ColdSolves == 0 {
		t.Fatalf("lease solver report shows no solves: %+v", st.LP.Lease)
	}
	if st.LP.Bound == nil {
		t.Fatal("live-bound solver report missing with LiveBound on")
	}
	if st.LP.Bound.ColdSolves == 0 {
		t.Fatalf("bound solver report shows no solves: %+v", st.LP.Bound)
	}
	if st.LP.Lease.PricingNS == 0 && st.LP.Lease.FactorNS == 0 {
		t.Fatalf("lease phase timers all zero: %+v", st.LP.Lease)
	}

	// The same counters appear on /statsz's JSON wire form.
	var raw map[string]any
	c.do("GET", "/statsz", nil, &raw)
	if _, ok := raw["lp"]; !ok {
		t.Fatal("statsz JSON has no lp key")
	}
}

// TestFollowerLagBoundaryMetrics is the satellite-4 pin: /readyz flips
// 200↔503 exactly at the -lag-bytes boundary, and the
// igepa_replication_lag_bytes gauge agrees with the readiness verdict at
// every step. Also pins the 503 write-rejection counter on the follower.
func TestFollowerLagBoundaryMetrics(t *testing.T) {
	srv, _, c := startServer(t, testInstance(t, 29, 20, 6), Config{
		Shard:    shard.Options{Shards: 2, Batch: 8, Seed: 1},
		WALPath:  filepath.Join(t.TempDir(), "absent.log"),
		Follow:   true,
		LagBytes: 128,
	})
	// No log yet: not ready, gauge 0.
	if code := c.status("GET", "/readyz", nil); code != http.StatusServiceUnavailable {
		t.Fatalf("readyz with no log: %d, want 503", code)
	}
	fams := scrapeMetrics(t, c)
	if v := requireMetric(t, fams, "igepa_replication_ready", "igepa_replication_ready", nil); v != 0 {
		t.Fatalf("igepa_replication_ready = %v before the log exists, want 0", v)
	}

	// A write on the follower bounces 503 and is counted.
	if code := c.status("POST", "/v1/bid", bidRequest{User: 1}); code != http.StatusServiceUnavailable {
		t.Fatalf("follower bid: %d, want 503", code)
	}
	fams = scrapeMetrics(t, c)
	if v := requireMetric(t, fams, "igepa_http_errors_total", "igepa_http_errors_total", map[string]string{"code": "503"}); v < 1 {
		t.Fatalf("igepa_http_errors_total{code=503} = %v after a rejected write", v)
	}

	// White-box lag arithmetic (loop stopped, fields ours — the same
	// protocol TestFollowerReadiness uses): one byte over the bound.
	f := srv.fol
	f.stopLoop()
	f.mu.Lock()
	f.applied, f.size = 1000, 1000+srv.lagBound()+1
	f.mu.Unlock()
	var rr readyResponse
	if code := c.do("GET", "/readyz", nil, &rr).StatusCode; code != http.StatusServiceUnavailable {
		t.Fatalf("readyz over the bound: %d, want 503", code)
	}
	fams = scrapeMetrics(t, c)
	if v := requireMetric(t, fams, "igepa_replication_lag_bytes", "igepa_replication_lag_bytes", nil); v != float64(srv.lagBound()+1) {
		t.Fatalf("lag gauge = %v, want %d", v, srv.lagBound()+1)
	}
	if v := requireMetric(t, fams, "igepa_replication_ready", "igepa_replication_ready", nil); v != 0 {
		t.Fatalf("ready gauge = %v over the bound, want 0", v)
	}

	// Exactly at the bound: ready, and the gauge agrees again.
	f.mu.Lock()
	f.size = 1000 + srv.lagBound()
	f.mu.Unlock()
	if code := c.status("GET", "/readyz", nil); code != http.StatusOK {
		t.Fatalf("readyz at the bound: %d, want 200", code)
	}
	fams = scrapeMetrics(t, c)
	if v := requireMetric(t, fams, "igepa_replication_lag_bytes", "igepa_replication_lag_bytes", nil); v != float64(srv.lagBound()) {
		t.Fatalf("lag gauge = %v at the bound, want %d", v, srv.lagBound())
	}
	if v := requireMetric(t, fams, "igepa_replication_ready", "igepa_replication_ready", nil); v != 1 {
		t.Fatalf("ready gauge = %v at the bound, want 1", v)
	}
}

// TestFollowerCatchupMetrics pins the replication counters on the real
// tailing path: records applied, the not-ready→ready transition counted,
// and the lag gauge within the bound once caught up.
func TestFollowerCatchupMetrics(t *testing.T) {
	walPath := filepath.Join(t.TempDir(), "wal.log")
	opts := shard.Options{Shards: 4, Batch: 16, Seed: 7}
	base := testInstance(t, 23, 66, 10)

	leader, _, lc := startServer(t, base.Clone(), Config{
		Shard: opts, WALPath: walPath, WALSync: wal.SyncOff,
	})
	follower, _, fc := startServer(t, base.Clone(), Config{
		Shard: opts, WALPath: walPath, Follow: true,
	})
	driveTraffic(t, lc, 66, 10, false)
	if !leader.Drain(10 * time.Second) {
		t.Fatal("leader drain timed out")
	}
	appends := leader.walWriter().Stats().Appends
	waitFor(t, 10*time.Second, "follower catch-up", func() bool {
		return follower.fol.stats().Records == appends
	})

	fams := scrapeMetrics(t, fc)
	if v := requireMetric(t, fams, "igepa_replica_records_total", "igepa_replica_records_total", nil); v != float64(appends) {
		t.Fatalf("igepa_replica_records_total = %v, want %d", v, appends)
	}
	if v := requireMetric(t, fams, "igepa_readiness_flips_total", "igepa_readiness_flips_total", nil); v < 1 {
		t.Fatalf("igepa_readiness_flips_total = %v after catch-up, want >= 1", v)
	}
	if v := requireMetric(t, fams, "igepa_replication_ready", "igepa_replication_ready", nil); v != 1 {
		t.Fatalf("caught-up follower ready gauge = %v, want 1", v)
	}
	if v := requireMetric(t, fams, "igepa_replication_lag_bytes", "igepa_replication_lag_bytes", nil); v > float64(follower.lagBound()) {
		t.Fatalf("caught-up lag gauge = %v, want <= %d", v, follower.lagBound())
	}
}

// TestFollowerHaltMetrics pins the permanent-halt-on-corruption face of
// satellite 4: a corrupt frame parks the replica not ready forever, and the
// metrics surface says so — ready gauge 0, records stopped before the bad
// frame.
func TestFollowerHaltMetrics(t *testing.T) {
	walPath := filepath.Join(t.TempDir(), "wal.log")
	fd, err := os.OpenFile(walPath, os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	w := wal.NewWriter(fd, 0, wal.Options{Sync: wal.SyncOff})
	var ends []int64
	for u := 0; u < 3; u++ {
		off, err := w.Append(wal.Op{Kind: wal.OpBid, TMillis: 1, User: u})
		if err != nil {
			t.Fatal(err)
		}
		ends = append(ends, off)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(walPath)
	if err != nil {
		t.Fatal(err)
	}
	raw[ends[0]+8] ^= 0xFF
	if err := os.WriteFile(walPath, raw, 0o644); err != nil {
		t.Fatal(err)
	}

	srv, _, c := startServer(t, testInstance(t, 31, 20, 6), Config{
		Shard:   shard.Options{Shards: 2, Batch: 8, Seed: 1},
		WALPath: walPath,
		Follow:  true,
	})
	waitFor(t, 10*time.Second, "follower halt", func() bool {
		return srv.fol.stats().Failure != ""
	})
	if code := c.status("GET", "/readyz", nil); code != http.StatusServiceUnavailable {
		t.Fatalf("halted follower readyz: %d, want 503", code)
	}
	fams := scrapeMetrics(t, c)
	if v := requireMetric(t, fams, "igepa_replica_records_total", "igepa_replica_records_total", nil); v != 1 {
		t.Fatalf("igepa_replica_records_total = %v after halt, want 1 (stopped at the corrupt frame)", v)
	}
	if v := requireMetric(t, fams, "igepa_replication_ready", "igepa_replication_ready", nil); v != 0 {
		t.Fatalf("halted follower ready gauge = %v, want 0", v)
	}
}

// BenchmarkArrivalPathObs measures the serving arrival path end to end
// (HTTP codec, queue, micro-batch flush, planner, reply) with the
// observability layer on versus off — the source of the BENCH_obs.json CI
// artifact. The acceptance line: metrics=on within 2% of metrics=off ns/op
// with zero extra allocs/op (the alloc half is also hard-pinned by
// TestArrivalPathAllocs).
func BenchmarkArrivalPathObs(b *testing.B) {
	for _, mode := range []struct {
		name    string
		disable bool
	}{
		{"metrics=on", false},
		{"metrics=off", true},
	} {
		b.Run(mode.name, func(b *testing.B) {
			in := testInstance(b, 1, 400, 40)
			cfg := Config{
				Shard:          shard.Options{Shards: 4, Batch: 32, Seed: 1, CacheSize: 4096},
				FlushInterval:  50 * time.Microsecond,
				MicroBatch:     1,
				DisableMetrics: mode.disable,
			}
			if !mode.disable {
				// Slowlog armed but never firing: the per-arrival cost under
				// test includes the threshold gate.
				cfg.SlowLog = time.Hour
				cfg.SlowLogOutput = io.Discard
			}
			srv, err := New(in, cfg)
			if err != nil {
				b.Fatal(err)
			}
			defer srv.Close()

			do := func(path string, body []byte) int {
				req := httptest.NewRequest("POST", path, bytes.NewReader(body))
				rw := httptest.NewRecorder()
				srv.ServeHTTP(rw, req)
				return rw.Code
			}
			bids := make([][]byte, in.NumUsers())
			cancels := make([][]byte, in.NumUsers())
			for u := 0; u < in.NumUsers(); u++ {
				bids[u] = []byte(`{"user":` + itoa(u) + `}`)
				cancels[u] = []byte(`{"user":` + itoa(u) + `}`)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				u := i % in.NumUsers()
				if code := do("/v1/bid", bids[u]); code != http.StatusOK {
					b.Fatalf("bid user %d: %d", u, code)
				}
				if code := do("/v1/cancel", cancels[u]); code != http.StatusOK {
					b.Fatalf("cancel user %d: %d", u, code)
				}
			}
		})
	}
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var buf [8]byte
	i := len(buf)
	for n > 0 {
		i--
		buf[i] = byte('0' + n%10)
		n /= 10
	}
	return string(buf[i:])
}
