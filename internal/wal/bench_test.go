package wal

import (
	"fmt"
	"os"
	"path/filepath"
	"testing"
)

// BenchmarkAppendCommit measures one append+commit cycle — the per-decision
// durability cost the serving layer adds — under each fsync policy, against
// a real file. CI publishes these as BENCH_wal.json to hold the ≤10%-of-
// decision-p99 budget.
func BenchmarkAppendCommit(b *testing.B) {
	for _, sync := range []SyncPolicy{SyncOff, SyncInterval, SyncAlways} {
		b.Run(sync.String(), func(b *testing.B) {
			path := filepath.Join(b.TempDir(), "bench.wal")
			w, _, err := Open(path, 0, Options{Sync: sync}, nil)
			if err != nil {
				b.Fatal(err)
			}
			defer w.Close()
			op := Op{Kind: OpBid, TMillis: 12345, User: 42}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := w.Append(op); err != nil {
					b.Fatal(err)
				}
				if err := w.Commit(); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkRecovery measures warm-boot replay time as a function of WAL
// length — the recovery-time-vs-checkpoint-cadence trade-off in DESIGN.md §9.
func BenchmarkRecovery(b *testing.B) {
	for _, records := range []int{1_000, 10_000, 100_000} {
		b.Run(fmt.Sprintf("records=%d", records), func(b *testing.B) {
			path := filepath.Join(b.TempDir(), "bench.wal")
			w, _, err := Open(path, 0, Options{Sync: SyncOff}, nil)
			if err != nil {
				b.Fatal(err)
			}
			for i := 0; i < records; i++ {
				if _, err := w.Append(Op{Kind: OpBid, TMillis: int64(i), User: i}); err != nil {
					b.Fatal(err)
				}
			}
			if err := w.Close(); err != nil {
				b.Fatal(err)
			}
			fi, err := os.Stat(path)
			if err != nil {
				b.Fatal(err)
			}
			b.SetBytes(fi.Size())
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				n := 0
				w, info, err := Open(path, 0, Options{Sync: SyncOff}, func(p []byte) error {
					if _, derr := DecodeOp(p); derr != nil {
						return derr
					}
					n++
					return nil
				})
				if err != nil {
					b.Fatal(err)
				}
				if n != records || info.Records != records {
					b.Fatalf("replayed %d records, want %d", n, records)
				}
				b.StopTimer()
				w.Close()
				b.StartTimer()
			}
		})
	}
}
