package workload

import (
	"bytes"
	"reflect"
	"strings"
	"testing"
)

func TestSyntheticArrivalsShape(t *testing.T) {
	arr := SyntheticArrivals(7, 500, 2000)
	if len(arr) != 500 {
		t.Fatalf("got %d arrivals, want 500", len(arr))
	}
	seen := make([]bool, 500)
	prev := int64(-1)
	for i, a := range arr {
		if a.User < 0 || a.User >= 500 || seen[a.User] {
			t.Fatalf("arrival %d: bad or duplicate user %d", i, a.User)
		}
		seen[a.User] = true
		if a.TMillis < prev {
			t.Fatalf("arrival %d: timestamp %d before %d", i, a.TMillis, prev)
		}
		prev = a.TMillis
	}
	if again := SyntheticArrivals(7, 500, 2000); !reflect.DeepEqual(arr, again) {
		t.Error("SyntheticArrivals not deterministic")
	}
	if same := SyntheticArrivals(8, 500, 2000); reflect.DeepEqual(arr, same) {
		t.Error("different seeds produced identical streams")
	}
}

func TestArrivalsRoundTrip(t *testing.T) {
	arr := SyntheticArrivals(3, 200, 0)
	var buf bytes.Buffer
	if err := WriteArrivals(&buf, arr); err != nil {
		t.Fatal(err)
	}
	got, err := ReadArrivals(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(arr, got) {
		t.Error("arrival log round-trip mismatch")
	}
	if !reflect.DeepEqual(ArrivalOrder(arr), ArrivalOrder(got)) {
		t.Error("arrival order mismatch after round-trip")
	}
}

func TestReadArrivalsRejectsMalformed(t *testing.T) {
	cases := []struct{ name, log string }{
		{"negative user", `{"t_ms": 1, "user": -2}`},
		{"non-monotonic timestamps", "{\"t_ms\": 5, \"user\": 1}\n{\"t_ms\": 3, \"user\": 2}"},
		{"not json", `not json`},
		{"truncated line", `{"t_ms": 5, "user"`},
		{"truncated mid-stream", "{\"t_ms\": 1, \"user\": 0}\n{\"t_ms\": 2, \"us"},
		{"duplicate user", "{\"t_ms\": 1, \"user\": 3}\n{\"t_ms\": 2, \"user\": 3}"},
		{"duplicate user far apart", "{\"t_ms\": 1, \"user\": 0}\n{\"t_ms\": 2, \"user\": 1}\n{\"t_ms\": 9, \"user\": 0}"},
	}
	for _, c := range cases {
		if _, err := ReadArrivals(strings.NewReader(c.log)); err == nil {
			t.Errorf("%s: malformed log accepted", c.name)
		}
	}
	got, err := ReadArrivals(strings.NewReader("\n{\"t_ms\": 1, \"user\": 0}\n\n"))
	if err != nil || len(got) != 1 {
		t.Errorf("blank-line handling: got %v err %v", got, err)
	}
}

// TestReadArrivalsOversizedLine pins the scanner-limit path: a line beyond
// the 1 MiB buffer must surface bufio.ErrTooLong as a clean error.
func TestReadArrivalsOversizedLine(t *testing.T) {
	var b strings.Builder
	b.WriteString(`{"t_ms": 1, "user": 0, "junk": "`)
	for i := 0; i < 1<<21; i++ {
		b.WriteByte('x')
	}
	b.WriteString(`"}`)
	if _, err := ReadArrivals(strings.NewReader(b.String())); err == nil {
		t.Fatal("oversized line accepted")
	}
}

// TestReadArrivalsErrorsNameLines pins the diagnostics: errors carry the
// offending line number (and for duplicates, the first occurrence).
func TestReadArrivalsErrorsNameLines(t *testing.T) {
	_, err := ReadArrivals(strings.NewReader(
		"{\"t_ms\": 1, \"user\": 4}\n{\"t_ms\": 2, \"user\": 5}\n{\"t_ms\": 3, \"user\": 4}"))
	if err == nil {
		t.Fatal("duplicate accepted")
	}
	msg := err.Error()
	if !strings.Contains(msg, "line 3") || !strings.Contains(msg, "line 1") {
		t.Errorf("duplicate error does not name both lines: %q", msg)
	}
}

// TestReadArrivalsPartial pins the salvage contract: the valid prefix comes
// back with the byte offset where the damage starts, and a log cut without
// its trailing newline is treated as torn even when the fragment parses.
func TestReadArrivalsPartial(t *testing.T) {
	arr := SyntheticArrivals(9, 50, 0)
	var buf bytes.Buffer
	if err := WriteArrivals(&buf, arr); err != nil {
		t.Fatal(err)
	}
	whole := buf.Bytes()

	t.Run("clean", func(t *testing.T) {
		got, off, err := ReadArrivalsPartial(bytes.NewReader(whole))
		if err != nil || off != int64(len(whole)) {
			t.Fatalf("clean log: off=%d err=%v, want %d/nil", off, err, len(whole))
		}
		if !reflect.DeepEqual(arr, got) {
			t.Fatal("clean log: prefix differs from ReadArrivals' view")
		}
	})

	t.Run("every truncation point", func(t *testing.T) {
		// Index the line boundaries so every cut has a known valid prefix.
		var ends []int64
		for i, b := range whole {
			if b == '\n' {
				ends = append(ends, int64(i+1))
			}
		}
		for cut := 0; cut <= len(whole); cut++ {
			got, off, err := ReadArrivalsPartial(bytes.NewReader(whole[:cut]))
			k := 0
			for k < len(ends) && ends[k] <= int64(cut) {
				k++
			}
			wantOff := int64(0)
			if k > 0 {
				wantOff = ends[k-1]
			}
			if off != wantOff || len(got) != k {
				t.Fatalf("cut %d: %d arrivals at offset %d, want %d at %d", cut, len(got), off, k, wantOff)
			}
			if k > 0 && !reflect.DeepEqual(got, arr[:k]) {
				t.Fatalf("cut %d: prefix content differs", cut)
			}
			atBoundary := int64(cut) == wantOff
			if atBoundary && err != nil {
				t.Fatalf("cut %d at a line boundary: unexpected error %v", cut, err)
			}
			if !atBoundary && err == nil {
				t.Fatalf("cut %d mid-line: truncation not reported", cut)
			}
		}
	})

	t.Run("bad line mid-stream", func(t *testing.T) {
		log := "{\"t_ms\": 1, \"user\": 0}\n{\"t_ms\": 2, \"user\": 1}\nnot json\n{\"t_ms\": 3, \"user\": 2}\n"
		got, off, err := ReadArrivalsPartial(strings.NewReader(log))
		if err == nil || len(got) != 2 {
			t.Fatalf("got %d arrivals, err %v; want 2 and an error", len(got), err)
		}
		if off != int64(strings.Index(log, "not json")) {
			t.Fatalf("offset %d does not point at the bad line", off)
		}
	})

	t.Run("invariant violation mid-stream", func(t *testing.T) {
		log := "{\"t_ms\": 5, \"user\": 0}\n{\"t_ms\": 3, \"user\": 1}\n"
		got, off, err := ReadArrivalsPartial(strings.NewReader(log))
		if err == nil || len(got) != 1 || off != int64(strings.Index(log, "{\"t_ms\": 3")) {
			t.Fatalf("got %d arrivals at offset %d, err %v", len(got), off, err)
		}
	})

	t.Run("oversized line", func(t *testing.T) {
		var b strings.Builder
		b.WriteString("{\"t_ms\": 1, \"user\": 0}\n")
		b.WriteString(`{"t_ms": 2, "user": 1, "junk": "`)
		for i := 0; i < 1<<21; i++ {
			b.WriteByte('x')
		}
		b.WriteString("\"}\n")
		got, _, err := ReadArrivalsPartial(strings.NewReader(b.String()))
		if err == nil || len(got) != 1 {
			t.Fatalf("oversized line: got %d arrivals, err %v", len(got), err)
		}
	})
}
