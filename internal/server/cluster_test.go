package server

import (
	"fmt"
	"net/http"
	"sync"
	"testing"
	"time"

	"github.com/ebsn/igepa/internal/model"
	"github.com/ebsn/igepa/internal/shard"
)

// TestRetryAfterSeconds pins the round-up: truncation (1500ms -> 1) told
// clients to retry before the window ended, guaranteeing a second 429.
func TestRetryAfterSeconds(t *testing.T) {
	cases := []struct {
		d    time.Duration
		want int
	}{
		{10 * time.Millisecond, 1},
		{time.Second, 1},
		{1500 * time.Millisecond, 2},
		{2 * time.Second, 2},
		{2001 * time.Millisecond, 3},
		{0, 1},
	}
	for _, tc := range cases {
		if got := retryAfterSeconds(tc.d); got != tc.want {
			t.Errorf("retryAfterSeconds(%v) = %d, want %d", tc.d, got, tc.want)
		}
	}
}

// TestRollbackQueuedGuard pins the rollback race fix: undoing a failed
// enqueue's optimistic stateQueued claim must not clobber a state transition
// that landed while the state lock was dropped.
func TestRollbackQueuedGuard(t *testing.T) {
	srv := &Server{state: make([]uint8, 2)}

	// normal path: still queued, so the pre-submit snapshot is restored
	srv.state[0] = stateQueued
	srv.rollbackQueued(0, stateCancelled)
	if srv.state[0] != stateCancelled {
		t.Fatalf("plain rollback: state %d, want cancelled", srv.state[0])
	}

	// raced path: a concurrent duplicate won the slot and was decided; the
	// loser's rollback must leave that decision alone
	srv.state[1] = stateDecided
	srv.rollbackQueued(1, stateNone)
	if srv.state[1] != stateDecided {
		t.Fatalf("raced rollback clobbered a decision: state %d", srv.state[1])
	}
}

// TestCloseReleasesWaiters pins the shutdown-waiter contract: every accepted
// wait:true submission in flight at Close gets an answer — its decision when
// the final flush reaches it, 503 otherwise — and never parks forever.
func TestCloseReleasesWaiters(t *testing.T) {
	in := testInstance(t, 21, 40, 8)
	srv, _, c := startServer(t, in, Config{
		// Replay with a batch far larger than the submissions: nothing
		// flushes until Close's final drain.
		Shard:  shard.Options{Shards: 2, Batch: 1000, Seed: 1},
		Replay: true,
	})
	const n = 6
	codes := make(chan int, n)
	for u := 0; u < n; u++ {
		go func(u int) {
			codes <- c.status("POST", "/v1/bid", bidRequest{User: u})
		}(u)
	}
	// Wait until all n are queued (accepted), then shut down.
	deadline := time.Now().Add(5 * time.Second)
	for srv.queues[0].depth() < n {
		if time.Now().After(deadline) {
			t.Fatalf("only %d of %d submissions queued", srv.queues[0].depth(), n)
		}
		time.Sleep(time.Millisecond)
	}
	srv.Close()
	for i := 0; i < n; i++ {
		select {
		case code := <-codes:
			if code != http.StatusOK && code != http.StatusServiceUnavailable {
				t.Fatalf("waiter got %d, want 200 or 503", code)
			}
		case <-time.After(10 * time.Second):
			t.Fatalf("waiter %d still parked after Close", i)
		}
	}
}

// TestCloseBackstopShutdownReply exercises the takeAll backstop directly: a
// request stranded in a queue after the consumers exited (the race window the
// fix closes) must receive a shutdown reply from Close, not hang.
func TestCloseBackstopShutdownReply(t *testing.T) {
	in := testInstance(t, 23, 20, 6)
	srv, err := New(in, Config{Shard: shard.Options{Shards: 1, Batch: 8, Seed: 1}, Replay: true})
	if err != nil {
		t.Fatal(err)
	}
	// Retire the consumer cleanly, then plant a request behind its back —
	// simulating the pop-to-reply window a dying consumer leaves.
	srv.queues[0].close()
	srv.wg.Wait()
	stranded := request{user: 3, enqueued: time.Now(), reply: make(chan reply, 1)}
	srv.queues[0].mu.Lock()
	srv.queues[0].items = append(srv.queues[0].items, stranded)
	srv.queues[0].mu.Unlock()

	srv.Close()
	select {
	case rep := <-stranded.reply:
		if !rep.shutdown {
			t.Fatalf("stranded request got %+v, want shutdown reply", rep)
		}
	default:
		t.Fatal("Close left the stranded request without a reply")
	}
}

// startClusterShard boots one shard process of a width-wide cluster.
func startClusterShard(t testing.TB, in *model.Instance, width, index int, cfg Config) (*Server, *client) {
	t.Helper()
	cfg.Shard.Shards = 1
	cfg.Shard.ClusterShards = width
	cfg.Shard.ClusterIndex = index
	srv, _, c := startServer(t, in, cfg)
	return srv, c
}

// pickUsers splits the first users of the instance by cluster ownership.
func pickUsers(in *model.Instance, seed int64, width, index, n int) (owned, foreign []int) {
	for u := 0; u < in.NumUsers() && (len(owned) < n || len(foreign) < n); u++ {
		if shard.ShardOf(seed, u, width) == index {
			if len(owned) < n {
				owned = append(owned, u)
			}
		} else if len(foreign) < n {
			foreign = append(foreign, u)
		}
	}
	return owned, foreign
}

// TestClusterShardSurface exercises a cluster shard end to end: ownership
// 421s, the two-phase renewal wire protocol, the freeze watchdog, and the
// replay batch endpoint.
func TestClusterShardSurface(t *testing.T) {
	in := testInstance(t, 31, 80, 10)
	const width, index = 2, 0
	seed := int64(7)
	srv, c := startClusterShard(t, in, width, index, Config{
		Shard:         shard.Options{Seed: seed, Batch: 16},
		FlushInterval: 100 * time.Microsecond,
	})
	owned, foreign := pickUsers(in, seed, width, index, 4)

	var h healthResponse
	c.do("GET", "/healthz", nil, &h)
	if h.Cluster == nil || h.Cluster.Shards != width || h.Cluster.Index != index {
		t.Fatalf("healthz cluster info: %+v", h.Cluster)
	}

	// ownership gate: 421 for foreign users on every per-user surface
	if code := c.status("POST", "/v1/bid", bidRequest{User: foreign[0]}); code != http.StatusMisdirectedRequest {
		t.Fatalf("foreign bid: %d, want 421", code)
	}
	if code := c.status("POST", "/v1/cancel", cancelRequest{User: foreign[0]}); code != http.StatusMisdirectedRequest {
		t.Fatalf("foreign cancel: %d, want 421", code)
	}
	if code := c.status("GET", fmt.Sprintf("/v1/assignment?user=%d", foreign[0]), nil); code != http.StatusMisdirectedRequest {
		t.Fatalf("foreign assignment: %d, want 421", code)
	}
	if code := c.status("POST", "/v1/bid", bidRequest{User: owned[0]}); code != http.StatusOK {
		t.Fatalf("owned bid: %d", code)
	}

	// two-phase renewal: demand freezes, a second demand conflicts, the
	// install lands under the freeze and bumps the renewal counter
	var d ClusterDemandResponse
	if code := c.do("POST", "/cluster/demand", struct{}{}, &d).StatusCode; code != http.StatusOK {
		t.Fatalf("demand: %d", code)
	}
	if len(d.Loads) != in.NumEvents() || d.Renewals != 0 {
		t.Fatalf("demand payload: %d loads, %d renewals", len(d.Loads), d.Renewals)
	}
	if code := c.status("POST", "/cluster/demand", struct{}{}); code != http.StatusConflict {
		t.Fatalf("double demand: %d, want 409", code)
	}
	var lr ClusterLeaseResponse
	if code := c.do("POST", "/cluster/lease", ClusterLeaseRequest{Budget: d.Loads}, &lr).StatusCode; code != http.StatusOK {
		t.Fatalf("lease install: %d", code)
	}
	if lr.Renewals != 1 {
		t.Fatalf("renewals after install: %d, want 1", lr.Renewals)
	}
	// install without a freeze: 409
	if code := c.status("POST", "/cluster/lease", ClusterLeaseRequest{Budget: d.Loads}); code != http.StatusConflict {
		t.Fatalf("unfrozen install: %d, want 409", code)
	}
	// an undercutting budget (below current load) is refused and thaws
	c.do("POST", "/cluster/demand", struct{}{}, &d)
	bad := append([]int(nil), d.Loads...)
	lowered := false
	for v := range bad {
		if bad[v] > 0 {
			bad[v]--
			lowered = true
			break
		}
	}
	if lowered {
		if code := c.status("POST", "/cluster/lease", ClusterLeaseRequest{Budget: bad}); code != http.StatusConflict {
			t.Fatalf("undercutting install: %d, want 409", code)
		}
	} else {
		c.status("POST", "/cluster/abort", struct{}{})
	}
	// abort with no freeze is a no-op
	var ab struct {
		Released bool `json:"released"`
	}
	c.do("POST", "/cluster/abort", struct{}{}, &ab)
	if ab.Released {
		t.Fatal("abort released a freeze that did not exist")
	}

	// replay dispatch: a fresh owned user decides; a retry conflicts
	batchUsers := []int{owned[1], owned[2]}
	var br ClusterBatchResponse
	if code := c.do("POST", "/cluster/batch", ClusterBatchRequest{Users: batchUsers}, &br).StatusCode; code != http.StatusOK {
		t.Fatalf("cluster batch: %d", code)
	}
	if len(br.Decisions) != len(batchUsers) {
		t.Fatalf("batch decisions: %d for %d users", len(br.Decisions), len(batchUsers))
	}
	if code := c.status("POST", "/cluster/batch", ClusterBatchRequest{Users: batchUsers}); code != http.StatusConflict {
		t.Fatalf("replayed batch: %d, want 409", code)
	}
	if code := c.status("POST", "/cluster/batch", ClusterBatchRequest{Users: []int{foreign[1]}}); code != http.StatusMisdirectedRequest {
		t.Fatalf("foreign batch: %d, want 421", code)
	}

	st := srv.Stats()
	if st.Misrouted == 0 {
		t.Error("misrouted_421 counter never moved")
	}
	if st.LeaseRenewals != 1 {
		t.Errorf("lease renewals %d, want 1", st.LeaseRenewals)
	}
}

// TestClusterFreezeWatchdog pins the thaw: a router that dies between demand
// and lease must not wedge the shard — the watchdog releases the locks after
// FreezeTimeout and the late install is refused.
func TestClusterFreezeWatchdog(t *testing.T) {
	in := testInstance(t, 33, 40, 8)
	srv, c := startClusterShard(t, in, 2, 0, Config{
		Shard:         shard.Options{Seed: 7, Batch: 16},
		FlushInterval: 100 * time.Microsecond,
		FreezeTimeout: 30 * time.Millisecond,
	})
	var d ClusterDemandResponse
	if code := c.do("POST", "/cluster/demand", struct{}{}, &d).StatusCode; code != http.StatusOK {
		t.Fatalf("demand: %d", code)
	}
	// Simulate the dead router: no install. The watchdog must thaw.
	deadline := time.Now().Add(5 * time.Second)
	for {
		srv.gate.mu.Lock()
		frozen := srv.gate.frozen
		srv.gate.mu.Unlock()
		if !frozen {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("freeze never expired")
		}
		time.Sleep(5 * time.Millisecond)
	}
	// The late install is refused; serving works again.
	if code := c.status("POST", "/cluster/lease", ClusterLeaseRequest{Budget: d.Loads}); code != http.StatusConflict {
		t.Fatalf("install after expiry: %d, want 409", code)
	}
	owned, _ := pickUsers(in, 7, 2, 0, 1)
	if code := c.status("POST", "/v1/bid", bidRequest{User: owned[0]}); code != http.StatusOK {
		t.Fatalf("bid after thaw: %d", code)
	}
}

// TestClusterMigrationWire moves a decided user between two shard processes
// over /cluster/export + /cluster/adopt and checks ownership, assignment and
// seat accounting all travel.
func TestClusterMigrationWire(t *testing.T) {
	in := testInstance(t, 35, 60, 10)
	seed := int64(7)
	srv0, c0 := startClusterShard(t, in.Clone(), 2, 0, Config{
		Shard: shard.Options{Seed: seed, Batch: 16}, FlushInterval: 100 * time.Microsecond,
	})
	srv1, c1 := startClusterShard(t, in.Clone(), 2, 1, Config{
		Shard: shard.Options{Seed: seed, Batch: 16}, FlushInterval: 100 * time.Microsecond,
	})
	owned, _ := pickUsers(in, seed, 2, 0, 3)
	mover := owned[0]

	var bid bidResponse
	if code := c0.do("POST", "/v1/bid", bidRequest{User: mover}, &bid).StatusCode; code != http.StatusOK {
		t.Fatalf("bid: %d", code)
	}
	srv0.Drain(5 * time.Second)

	var mig ClusterMigration
	if code := c0.do("POST", "/cluster/export", ClusterExportRequest{Users: []int{mover}}, &mig).StatusCode; code != http.StatusOK {
		t.Fatalf("export: %d", code)
	}
	if len(mig.Users) != 1 || len(mig.Sets[0]) != len(bid.Events) {
		t.Fatalf("export payload: %+v (decision was %v)", mig, bid.Events)
	}
	if code := c1.do("POST", "/cluster/adopt", mig, nil).StatusCode; code != http.StatusOK {
		t.Fatalf("adopt: %d", code)
	}

	// source no longer owns the user; target serves their assignment
	if code := c0.status("GET", fmt.Sprintf("/v1/assignment?user=%d", mover), nil); code != http.StatusMisdirectedRequest {
		t.Fatalf("source after export: %d, want 421", code)
	}
	var asg assignmentResponse
	if code := c1.do("GET", fmt.Sprintf("/v1/assignment?user=%d", mover), nil, &asg).StatusCode; code != http.StatusOK {
		t.Fatalf("target assignment: %d", code)
	}
	if len(asg.Events) != len(bid.Events) || !asg.Decided {
		t.Fatalf("migrated assignment %+v, decision was %v", asg, bid.Events)
	}
	// seats travelled: the target's loads grew by the decision, the source's
	// shrank back
	for _, v := range bid.Events {
		if l := srv1.eng.EventLoad(v); l < 1 {
			t.Errorf("target load for event %d is %d after adopting a seat", v, l)
		}
		if l := srv0.eng.EventLoad(v); l != 0 {
			t.Errorf("source still holds load %d for event %d", l, v)
		}
	}
	// the user can cancel at the target (state travelled too)
	if code := c1.status("POST", "/v1/cancel", cancelRequest{User: mover}); len(bid.Events) > 0 && code != http.StatusOK {
		t.Fatalf("cancel at target: %d", code)
	}
}

// TestPromoteAlreadyLeader pins the double-promote fix: promoting a process
// that is already the leader is a 409 conflict, not a 500, and concurrent
// promotes of a leader all agree.
func TestPromoteAlreadyLeader(t *testing.T) {
	in := testInstance(t, 37, 30, 6)
	srv, _, c := startServer(t, in, Config{
		Shard: shard.Options{Shards: 2, Batch: 8, Seed: 1}, FlushInterval: 100 * time.Microsecond,
	})
	var wg sync.WaitGroup
	codes := make([]int, 8)
	for i := range codes {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			codes[i] = c.status("POST", "/admin/promote", nil)
		}(i)
	}
	wg.Wait()
	for i, code := range codes {
		if code != http.StatusConflict {
			t.Errorf("promote %d on a leader: %d, want 409", i, code)
		}
	}
	if err := srv.Promote(); err != ErrAlreadyLeader {
		t.Fatalf("Promote on leader: %v, want ErrAlreadyLeader", err)
	}
	// the leader still serves after the refused promotes
	if code := c.status("POST", "/v1/bid", bidRequest{User: 1}); code != http.StatusOK {
		t.Fatalf("bid after refused promote: %d", code)
	}
}

// TestQueueTakeAll unit-tests the shutdown backstop: takeAll empties the
// queue and returns everything a consumer never popped.
func TestQueueTakeAll(t *testing.T) {
	q := newQueue(8)
	for u := 0; u < 3; u++ {
		if err := q.push(request{user: u, enqueued: time.Now()}); err != nil {
			t.Fatal(err)
		}
	}
	q.popBatch(1, 0, nil) // consume one; two remain
	q.finish()
	got := q.takeAll()
	if len(got) != 2 || got[0].user != 1 || got[1].user != 2 {
		t.Fatalf("takeAll: %+v", got)
	}
	if q.depth() != 0 {
		t.Fatalf("depth %d after takeAll", q.depth())
	}
	if got := q.takeAll(); len(got) != 0 {
		t.Fatalf("second takeAll returned %+v", got)
	}
}
