package shard

import (
	"fmt"
	"sync"
	"time"

	"github.com/ebsn/igepa/internal/admissible"
	"github.com/ebsn/igepa/internal/conflict"
	"github.com/ebsn/igepa/internal/lp"
	"github.com/ebsn/igepa/internal/model"
	"github.com/ebsn/igepa/internal/online"
	"github.com/ebsn/igepa/internal/par"
)

// ConfigError is the typed error Serve, NewEngine and the rest of the
// serving stack return on an invalid configuration — a nil instance, a
// non-positive shard count, a negative batch size — instead of panicking
// somewhere inside the lease machinery.
type ConfigError struct {
	Field  string // the offending Options field or argument
	Reason string
}

func (e *ConfigError) Error() string {
	return fmt.Sprintf("shard: invalid configuration: %s: %s", e.Field, e.Reason)
}

// LeaseError is the typed error returned when a renewal round leaves the
// lease table over-committed (Σ_s budget[s][v] ≠ cv) — the invariant that
// makes merged arrangements feasible by construction. It indicates a bug in
// a lease policy, never a caller mistake, and the defensive check turns a
// would-be double-booked seat into a clean failure.
type LeaseError struct {
	Event            int
	Leased, Capacity int
}

func (e *LeaseError) Error() string {
	return fmt.Sprintf("shard: lease invariant violated: event %d has %d seats leased, capacity %d",
		e.Event, e.Leased, e.Capacity)
}

// Engine is the sharded serving core extracted from Serve: S per-shard
// online planners over capacity leases, the lease renewer, and the
// per-shard arrangement parts. Serve drives it batch-by-batch over a fixed
// arrival order; the HTTP serving layer (internal/server) drives the same
// engine from live request queues, which is what makes the server's replay
// mode bit-identical to Serve — there is only one implementation of the
// serving semantics.
//
// An Engine is not synchronized. Serve owns it outright; concurrent drivers
// must serialize DispatchBatch/RenewLeases/Result against everything else,
// and may interleave per-shard calls (ArriveOn, CancelOn, Assignment,
// ShardUtility with the same si) only under a per-shard lock of their own.
type Engine struct {
	in   *model.Instance
	opt  Options
	s, b int

	planners []shardPlanner
	parts    []*model.Arrangement
	budgets  [][]int
	caches   []*admissible.Cache
	renewer  *leaseRenewer
	wc       *model.WeightCache
	bound    *boundTracker // live LP bound (Options.LiveBound)

	// Cluster mode (Options.ClusterShards > 0): this engine is shard
	// clusterIdx of a clusterS-wide deployment and holds only its lease
	// slice. ownsOverride records users migrated onto (true) or off of
	// (false) this shard; ownMu guards it because ownership is read on the
	// request path while migrations write it under the serving locks.
	clusterS     int
	clusterIdx   int
	ownMu        sync.RWMutex
	ownsOverride map[int]bool

	epochs, renewals, moved int
	arrivals                []int
	shardUtil               []float64
	latencies               []time.Duration
	batches                 [][]int // DispatchBatch partition scratch

	// Engine-owned LP phase-timer sinks, one per persistent solver: the
	// lease renewer's split LP and the live-bound planner's solver each
	// need their own (PhaseTimers is not synchronized, and a renewal and a
	// bound update may interleave under the caller's exclusion). Nil when
	// the caller supplied Options.LP.Timers — then the caller owns phase
	// profiling and LPStats reports zeros for the phases.
	leaseTimers *lp.PhaseTimers
	boundTimers *lp.PhaseTimers

	closed bool
}

// NewEngine validates the configuration and assembles the serving state:
// planners, even initial leases, optional per-shard admissible-set caches.
// Configuration problems are reported as *ConfigError; nothing in the
// serving stack panics on caller input.
func NewEngine(in *model.Instance, opt Options) (*Engine, error) {
	if in == nil {
		return nil, &ConfigError{Field: "instance", Reason: "nil instance"}
	}
	if err := in.Check(); err != nil {
		return nil, &ConfigError{Field: "instance", Reason: err.Error()}
	}
	if opt.Shards <= 0 {
		return nil, &ConfigError{Field: "Shards", Reason: fmt.Sprintf("must be positive, got %d", opt.Shards)}
	}
	if opt.Batch < 0 {
		return nil, &ConfigError{Field: "Batch", Reason: fmt.Sprintf("must be non-negative, got %d", opt.Batch)}
	}
	if opt.CacheSize < 0 {
		return nil, &ConfigError{Field: "CacheSize", Reason: fmt.Sprintf("must be non-negative, got %d", opt.CacheSize)}
	}
	switch opt.Planner {
	case PlannerGreedy, PlannerThreshold:
	default:
		return nil, &ConfigError{Field: "Planner", Reason: fmt.Sprintf("unknown planner kind %v", opt.Planner)}
	}
	switch opt.Lease {
	case LeaseDemand, LeaseEven, LeaseLP:
	default:
		return nil, &ConfigError{Field: "Lease", Reason: fmt.Sprintf("unknown lease policy %v", opt.Lease)}
	}
	if opt.ClusterShards < 0 {
		return nil, &ConfigError{Field: "ClusterShards", Reason: fmt.Sprintf("must be non-negative, got %d", opt.ClusterShards)}
	}
	if opt.ClusterShards > 0 {
		if opt.Shards != 1 {
			return nil, &ConfigError{Field: "Shards", Reason: fmt.Sprintf(
				"a cluster-mode engine hosts exactly one shard, got Shards=%d", opt.Shards)}
		}
		if opt.ClusterIndex < 0 || opt.ClusterIndex >= opt.ClusterShards {
			return nil, &ConfigError{Field: "ClusterIndex", Reason: fmt.Sprintf(
				"must be in [0,%d), got %d", opt.ClusterShards, opt.ClusterIndex)}
		}
		if opt.LiveBound {
			return nil, &ConfigError{Field: "LiveBound", Reason: "the live bound shadows the whole instance; run it at the router, not on one cluster shard"}
		}
	}

	s := opt.Shards
	b := opt.Batch
	if b == 0 {
		b = DefaultBatch
	}
	nu, nv := in.NumUsers(), in.NumEvents()

	// Materialize the shared weight cache before any parallel stage so the
	// lazy initialization never races (same contract as core.LPPacking),
	// and the conflict matrix once for all S planners.
	wc := in.Weights()
	conf := conflict.FromFunc(nv, in.Conflicts)

	var budgets [][]int
	if opt.ClusterShards > 0 {
		// This process leases exactly the slice a single-process S-shard
		// engine would hand shard ClusterIndex — the root of the cluster's
		// bit-identity to ServeSharded.
		budgets = [][]int{initialBudgets(in, opt.ClusterShards)[opt.ClusterIndex]}
	} else {
		budgets = initialBudgets(in, s)
	}

	e := &Engine{
		in: in, opt: opt, s: s, b: b,
		planners:  make([]shardPlanner, s),
		parts:     make([]*model.Arrangement, s),
		budgets:   budgets,
		wc:        wc,
		arrivals:  make([]int, s),
		shardUtil: make([]float64, s),
		batches:   make([][]int, s),

		clusterS:   opt.ClusterShards,
		clusterIdx: opt.ClusterIndex,
	}
	if e.clusterS > 0 {
		e.ownsOverride = make(map[int]bool)
	}
	if opt.CacheSize > 0 {
		e.caches = make([]*admissible.Cache, s)
	}
	for si := 0; si < s; si++ {
		var err error
		switch opt.Planner {
		case PlannerGreedy:
			var p *online.GreedyPlanner
			p, err = online.NewGreedyBudgetShared(in, conf, budgets[si], opt.MaxSetsPerUser)
			if err == nil {
				if e.caches != nil {
					e.caches[si] = admissible.NewCache(opt.CacheSize)
					p.SetCache(e.caches[si])
				}
				e.planners[si] = shardPlanner{arrive: p.Arrive, release: p.Release, loads: p.Loads()}
			}
		case PlannerThreshold:
			var p *online.ThresholdPlanner
			p, err = online.NewThresholdBudgetShared(in, conf, budgets[si], opt.Tau, opt.Guard, opt.MaxSetsPerUser)
			if err == nil {
				if e.caches != nil {
					e.caches[si] = admissible.NewCache(opt.CacheSize)
					p.SetCache(e.caches[si])
				}
				e.planners[si] = shardPlanner{arrive: p.Arrive, release: p.Release, loads: p.Loads()}
			}
		}
		if err != nil {
			return nil, &ConfigError{Field: "budget", Reason: err.Error()}
		}
		e.parts[si] = model.NewArrangement(nu)
	}
	if opt.RecordLatency {
		e.latencies = make([]time.Duration, nu)
	}
	// Attach engine-owned phase timers unless the caller brought their own.
	// The sinks are passive accumulators read back via LPStats — they do
	// not alter pivoting, pricing or any other solver decision, so the
	// engine's bit-identity contract is unchanged by profiling.
	leaseOpt, boundOpt := opt, opt
	if opt.LP.Timers == nil {
		e.leaseTimers = &lp.PhaseTimers{}
		e.boundTimers = &lp.PhaseTimers{}
		leaseOpt.LP.Timers = e.leaseTimers
		boundOpt.LP.Timers = e.boundTimers
	}
	if opt.LiveBound {
		bt, err := newBoundTracker(in, s, boundOpt)
		if err != nil {
			return nil, err
		}
		e.bound = bt
	}
	e.renewer = newLeaseRenewer(in, budgets, e.planners, leaseOpt)
	return e, nil
}

// Shards returns S.
func (e *Engine) Shards() int { return e.s }

// Batch returns the normalized lease-renewal period B.
func (e *Engine) Batch() int { return e.b }

// ShardOf returns the shard owning user u under this engine's seed.
func (e *Engine) ShardOf(u int) int { return ShardOf(e.opt.Seed, u, e.s) }

// DispatchBatch processes one global arrival batch: the users are
// partitioned onto their shards and each shard serves its sub-batch in
// order, all shards in parallel on the bounded pool. Decisions are written
// into the per-shard arrangement parts; an empty batch is a no-op. Callers
// own order validation (range, duplicates) — Serve checks the whole order
// upfront, the HTTP layer checks per request.
func (e *Engine) DispatchBatch(users []int) {
	if len(users) == 0 {
		return
	}
	for si := range e.batches {
		e.batches[si] = e.batches[si][:0]
	}
	for _, u := range users {
		si := e.ShardOf(u)
		e.batches[si] = append(e.batches[si], u)
		e.arrivals[si]++
	}
	par.Do(e.opt.Workers, e.s, func(si int) {
		for _, u := range e.batches[si] {
			if e.latencies != nil {
				t0 := time.Now()
				e.arriveOn(si, u)
				e.latencies[u] = time.Since(t0)
			} else {
				e.arriveOn(si, u)
			}
		}
	})
	e.epochs++
	if e.bound != nil {
		e.UpdateBound() // failures are counted in BoundStats.Errors
	}
}

// arriveOn serves user u on shard si and accounts the granted utility.
func (e *Engine) arriveOn(si, u int) []int {
	set := e.planners[si].arrive(u)
	e.parts[si].Sets[u] = set
	for _, v := range set {
		e.shardUtil[si] += e.wc.Of(u, v)
	}
	if e.bound != nil {
		e.bound.record(si, u, set, false)
	}
	return set
}

// ArriveOn serves a single arrival on shard si — the live serving layer's
// per-shard micro-batch path. The caller must route u to its owning shard
// (si == e.ShardOf(u)), serialize calls per shard, and never dispatch the
// same undecided user twice. Returns the granted events (sorted ascending).
func (e *Engine) ArriveOn(si, u int) []int {
	set := e.arriveOn(si, u)
	e.arrivals[si]++
	return set
}

// CancelOn revokes user u's assignment on shard si: the seats return to the
// shard's lease headroom (grantable on the next arrival, redistributable at
// the next renewal) and the user's part is cleared. Returns the freed
// events; nil if the user held nothing.
func (e *Engine) CancelOn(si, u int) []int {
	set := e.parts[si].Sets[u]
	if len(set) == 0 {
		return nil
	}
	e.planners[si].release(set)
	for _, v := range set {
		e.shardUtil[si] -= e.wc.Of(u, v)
	}
	e.parts[si].Sets[u] = nil
	if e.bound != nil {
		e.bound.record(si, u, set, true)
	}
	return set
}

// RenewLeases runs one lease-renewal round ahead of the next batch, whose
// arrivals (or best available prediction of them) are given. It returns the
// number of seats that changed owner and defensively re-checks the lease
// invariant, surfacing any violation as a *LeaseError.
//
// The renewal round number drives the even-split remainder rotation. It is
// e.renewals+1, which under Serve's schedule (one renewal per batch
// boundary) equals the dispatched-batch count — bit-identical to the
// historical epoch argument — while also advancing for live drivers that
// renew on arrival counts without ever calling DispatchBatch.
func (e *Engine) RenewLeases(next []int) (int, error) {
	if e.clusterS > 0 {
		// A cluster shard never renews itself: it holds one slice of the
		// lease table, and re-splitting needs every shard's loads. The
		// router-side Coordinator computes the split and installs it here
		// via InstallLease.
		return 0, &ConfigError{Field: "ClusterShards", Reason: "a cluster shard renews via InstallLease, not RenewLeases"}
	}
	moved := e.renewer.renew(e.renewals+1, next)
	e.moved += moved
	e.renewals++
	for v := 0; v < e.in.NumEvents(); v++ {
		sum := 0
		for si := 0; si < e.s; si++ {
			sum += e.budgets[si][v]
		}
		if sum != e.in.Events[v].Capacity {
			return moved, &LeaseError{Event: v, Leased: sum, Capacity: e.in.Events[v].Capacity}
		}
	}
	return moved, nil
}

// Assignment returns a copy of user u's current assignment on shard si.
func (e *Engine) Assignment(si, u int) []int {
	return append([]int(nil), e.parts[si].Sets[u]...)
}

// EventLoad returns the total seats granted for event v across all shards.
func (e *Engine) EventLoad(v int) int {
	n := 0
	for si := 0; si < e.s; si++ {
		n += e.planners[si].loads[v]
	}
	return n
}

// ShardUtility returns the summed pair weight of shard si's current grants —
// the incrementally tracked per-shard share of Utility(M).
func (e *Engine) ShardUtility(si int) float64 { return e.shardUtil[si] }

// ArrivalsOn returns the number of arrivals shard si has served.
func (e *Engine) ArrivalsOn(si int) int { return e.arrivals[si] }

// LPStats is an allocation-light snapshot of the engine's two persistent
// LP solvers — the lease renewer's split LP and the live-bound planner's —
// for the serving layer's /statsz and /metrics surfaces. Unlike BoundStats
// it copies no trace slices, so mirroring it into metrics at every renewal
// point costs a few struct copies.
type LPStats struct {
	// Lease is the split-LP solver's counters (zeros unless Lease ==
	// LeaseLP has solved at least once).
	Lease lp.SolverStats
	// LeaseTimers is the accumulated per-phase time of the lease solver.
	LeaseTimers lp.PhaseTimers
	// Bound is the live-bound planner's solver counters (zeros unless
	// Options.LiveBound).
	Bound lp.SolverStats
	// BoundTimers is the accumulated per-phase time of the bound solver.
	BoundTimers lp.PhaseTimers
	// BoundUpdates / BoundErrors count bound re-solves and their failures.
	BoundUpdates, BoundErrors int
	// BoundRemaining is the latest remaining-opportunity bound.
	BoundRemaining float64
}

// LPStats snapshots both solvers. The caller must hold the same exclusion
// RenewLeases requires (the serving layer reads it under its shard locks at
// renewal points); the snapshot itself takes no engine locks.
func (e *Engine) LPStats() LPStats {
	st := LPStats{Lease: e.renewer.solveStats()}
	if e.leaseTimers != nil {
		st.LeaseTimers = *e.leaseTimers
	}
	if e.bound != nil {
		st.Bound = e.bound.planner.Stats()
		st.BoundUpdates = e.bound.updates
		st.BoundErrors = e.bound.errs
		st.BoundRemaining = e.bound.bound
		if e.boundTimers != nil {
			st.BoundTimers = *e.boundTimers
		}
	}
	return st
}

// Epochs returns the number of dispatched batches.
func (e *Engine) Epochs() int { return e.epochs }

// Renewals returns the number of lease-renewal rounds run so far.
func (e *Engine) Renewals() int { return e.renewals }

// MovedSeats returns the total seats that changed owner across renewals.
func (e *Engine) MovedSeats() int { return e.moved }

// LatencyOf returns user u's recorded decision latency (zero unless
// Options.RecordLatency and u has been dispatched).
func (e *Engine) LatencyOf(u int) time.Duration {
	if e.latencies == nil {
		return 0
	}
	return e.latencies[u]
}

// RefreshWeights re-materializes the engine's pair-weight table after the
// caller mutated user bids (and called Instance.RebuildBidders). The caller
// must hold every per-shard lock: planners read the same table.
func (e *Engine) RefreshWeights() { e.wc = e.in.Weights() }

// CacheStats aggregates the per-shard admissible-set cache counters (zero
// when Options.CacheSize is 0).
func (e *Engine) CacheStats() admissible.CacheStats {
	var st admissible.CacheStats
	for _, c := range e.caches {
		if c != nil {
			st = st.Add(c.Stats())
		}
	}
	return st
}

// Snapshot merges the per-shard parts into one arrangement (users absent or
// cancelled hold nothing). The parts stay live; Snapshot may be called at
// any quiescent point.
func (e *Engine) Snapshot() (*model.Arrangement, error) {
	merged, err := model.MergeDisjoint(e.in.NumUsers(), e.parts...)
	if err != nil {
		return nil, fmt.Errorf("shard: merging shard arrangements: %w", err)
	}
	merged.Normalize()
	return merged, nil
}

// Result merges the shards and assembles the Serve result.
func (e *Engine) Result() (*Result, error) {
	merged, err := e.Snapshot()
	if err != nil {
		return nil, err
	}
	res := &Result{
		Arrangement:   merged,
		Utility:       model.Utility(e.in, merged),
		Shards:        e.s,
		Batch:         e.b,
		Epochs:        e.epochs,
		LeaseRenewals: e.renewals,
		MovedSeats:    e.moved,
		Arrivals:      append([]int(nil), e.arrivals...),
		Latencies:     e.latencies,
		LeaseSolves:   e.renewer.solveStats(),
		Cache:         e.CacheStats(),
		Bound:         e.BoundStats(),
	}
	return res, nil
}

// Close releases the lease renewer's and bound planner's solver state to
// the arena pool. It is idempotent and nil-receiver-safe, so recovery error
// paths can always `defer Close()` — a failed boot leaves a nil engine, and
// an aborted warm boot may close an engine its owner will close again.
func (e *Engine) Close() {
	if e == nil || e.closed {
		return
	}
	e.closed = true
	e.renewer.close()
	e.bound.close()
}
