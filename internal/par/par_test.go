package par

import (
	"sync/atomic"
	"testing"
)

func TestForCoversEveryIndexOnce(t *testing.T) {
	for _, workers := range []int{0, 1, 2, 7} {
		for _, n := range []int{0, 1, 5, 100, 1023} {
			hits := make([]int32, n)
			For(workers, n, 8, func(i int) { atomic.AddInt32(&hits[i], 1) })
			for i, h := range hits {
				if h != 1 {
					t.Fatalf("workers=%d n=%d: index %d visited %d times", workers, n, i, h)
				}
			}
		}
	}
}

func TestRangesChunksAreDisjointAndComplete(t *testing.T) {
	const n = 10007
	var total atomic.Int64
	hits := make([]int32, n)
	Ranges(4, n, 64, func(lo, hi int) {
		if lo < 0 || hi > n || lo >= hi {
			t.Errorf("bad chunk [%d,%d)", lo, hi)
		}
		for i := lo; i < hi; i++ {
			atomic.AddInt32(&hits[i], 1)
		}
		total.Add(int64(hi - lo))
	})
	if total.Load() != n {
		t.Fatalf("covered %d of %d iterations", total.Load(), n)
	}
	for i, h := range hits {
		if h != 1 {
			t.Fatalf("index %d visited %d times", i, h)
		}
	}
}

func TestRangesInlineForSmallInputs(t *testing.T) {
	// a single chunk must run inline (no goroutines): verified by writing to
	// a captured variable without synchronization under the race detector.
	sum := 0
	Ranges(8, 10, 64, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			sum += i
		}
	})
	if sum != 45 {
		t.Fatalf("sum = %d, want 45", sum)
	}
}

func TestWorkersResolution(t *testing.T) {
	if Workers(3) != 3 {
		t.Error("explicit worker count not honored")
	}
	if Workers(0) < 1 || Workers(-2) < 1 {
		t.Error("auto worker count must be at least 1")
	}
}

func TestRangesAtCoversWindowOnce(t *testing.T) {
	const base, end = 100, 1207
	for _, workers := range []int{1, 3, 8} {
		hits := make([]int32, end)
		RangesAt(workers, base, end, 16, func(lo, hi int) {
			if lo < base || hi > end || lo >= hi {
				t.Errorf("bad chunk [%d,%d) outside [%d,%d)", lo, hi, base, end)
			}
			for i := lo; i < hi; i++ {
				atomic.AddInt32(&hits[i], 1)
			}
		})
		for i, h := range hits {
			want := int32(0)
			if i >= base {
				want = 1
			}
			if h != want {
				t.Fatalf("workers=%d: index %d visited %d times, want %d", workers, i, h, want)
			}
		}
	}
	RangesAt(4, 7, 7, 1, func(lo, hi int) { t.Error("empty window must not run") })
	RangesAt(4, 9, 3, 1, func(lo, hi int) { t.Error("inverted window must not run") })
}

func TestForLevelsRespectsLevelBarriers(t *testing.T) {
	// Positions in level l read everything level l−1 wrote: if levels ever
	// overlapped, some position would read a stale zero (and the race
	// detector would flag the unsynchronized read). Expected values form a
	// per-level recurrence, so both coverage and ordering are pinned.
	ptr := []int32{0, 4, 5, 12, 20}
	n := int(ptr[len(ptr)-1])
	levelOf := make([]int, n)
	for l := 0; l+1 < len(ptr); l++ {
		for i := ptr[l]; i < ptr[l+1]; i++ {
			levelOf[i] = l
		}
	}
	for _, workers := range []int{1, 2, 8} {
		out := make([]int64, n)
		ForLevels(workers, ptr, 2, func(lo, hi int) {
			for i := lo; i < hi; i++ {
				v := int64(1)
				if l := levelOf[i]; l > 0 {
					for j := ptr[l-1]; j < ptr[l]; j++ {
						v += out[j]
					}
				}
				out[i] = v
			}
		})
		wantAt := make([]int64, len(ptr)-1)
		wantAt[0] = 1
		for l := 1; l < len(wantAt); l++ {
			wantAt[l] = 1 + int64(ptr[l]-ptr[l-1])*wantAt[l-1]
		}
		for i, v := range out {
			if v != wantAt[levelOf[i]] {
				t.Fatalf("workers=%d: position %d = %d, want %d (level %d)",
					workers, i, v, wantAt[levelOf[i]], levelOf[i])
			}
		}
	}
}

func TestDeterministicResultAcrossWorkerCounts(t *testing.T) {
	// iteration-owned writes: identical output for every worker count.
	const n = 5000
	ref := make([]float64, n)
	For(1, n, 16, func(i int) { ref[i] = float64(i) * 1.000001 })
	for _, workers := range []int{2, 3, 8} {
		got := make([]float64, n)
		For(workers, n, 16, func(i int) { got[i] = float64(i) * 1.000001 })
		for i := range got {
			if got[i] != ref[i] {
				t.Fatalf("workers=%d: index %d differs", workers, i)
			}
		}
	}
}
