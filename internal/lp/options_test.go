package lp

import (
	"errors"
	"math"
	"testing"
)

// TestRevisedOptionValidation is the regression table for validate: every
// knob with a value outside its domain must fail fast with an *OptionError
// naming that knob, and the zero value (plus every documented rule name)
// must pass.
func TestRevisedOptionValidation(t *testing.T) {
	tiny := NewProblem(1, []float64{1}, []float64{1},
		[]Column{{Rows: []int{0}, Vals: []float64{1}}})

	bad := []struct {
		name string
		cfg  Revised
		opt  string // expected OptionError.Option
	}{
		{"negative_max_iter", Revised{MaxIter: -1}, "MaxIter"},
		{"negative_refactor_every", Revised{RefactorEvery: -3}, "RefactorEvery"},
		{"negative_pricing_window", Revised{PricingWindow: -64}, "PricingWindow"},
		{"negative_pricing_candidates", Revised{PricingCandidates: -16}, "PricingCandidates"},
		{"negative_repair_budget", Revised{RepairBudget: -1}, "RepairBudget"},
		{"hypersparse_threshold_negative", Revised{HypersparseThreshold: -0.25}, "HypersparseThreshold"},
		{"hypersparse_threshold_above_one", Revised{HypersparseThreshold: 1.5}, "HypersparseThreshold"},
		{"hypersparse_threshold_nan", Revised{HypersparseThreshold: math.NaN()}, "HypersparseThreshold"},
		{"negative_parallel_threshold", Revised{ParallelThreshold: -1}, "ParallelThreshold"},
		{"negative_workers", Revised{Workers: -2}, "Workers"},
		{"unknown_pricing", Revised{Pricing: "steepest"}, "Pricing"},
		{"unknown_dual_pricing", Revised{DualPricing: "devex"}, "DualPricing"},
	}
	for _, tc := range bad {
		t.Run(tc.name, func(t *testing.T) {
			cfg := tc.cfg
			_, err := cfg.Solve(tiny)
			var oe *OptionError
			if !errors.As(err, &oe) {
				t.Fatalf("err = %v, want *OptionError", err)
			}
			if oe.Option != tc.opt {
				t.Fatalf("OptionError.Option = %q, want %q", oe.Option, tc.opt)
			}
			if oe.Error() == "" {
				t.Fatal("empty error message")
			}
			// the pooled entry rejects identically
			s := NewSolver(cfg)
			if _, err := s.Solve(tiny); !errors.As(err, &oe) || oe.Option != tc.opt {
				t.Fatalf("Solver.Solve: err = %v, want OptionError on %s", err, tc.opt)
			}
			s.Release()
		})
	}

	good := []Revised{
		{}, // zero value: every knob at its default
		{Pricing: "auto", DualPricing: "auto"},
		{Pricing: "devex", DualPricing: "dse"},
		{Pricing: "dantzig", DualPricing: "maxinfeas"},
		{MaxIter: 100, RefactorEvery: 1, PricingWindow: 8, ParallelThreshold: 1, Workers: 2},
		{PricingCandidates: 32, RepairBudget: 10, HypersparseThreshold: 0.5},
		{HypersparseThreshold: 1}, // boundary: every triangular solve hypersparse-eligible
	}
	for i, cfg := range good {
		if _, err := cfg.Solve(tiny); err != nil {
			t.Errorf("good config %d rejected: %v", i, err)
		}
	}

	// Resolve revalidates: corrupting the config after a successful Solve
	// must be caught at the next warm call, before the delta is applied.
	s := NewSolver(Revised{})
	if _, err := s.Solve(tiny); err != nil {
		t.Fatal(err)
	}
	s.Config.RefactorEvery = -1
	_, err := s.Resolve(ProblemDelta{SetB: []BoundChange{{Row: 0, B: 2}}})
	var oe *OptionError
	if !errors.As(err, &oe) || oe.Option != "RefactorEvery" {
		t.Fatalf("Resolve with corrupted config: err = %v, want OptionError on RefactorEvery", err)
	}
	if got := s.Problem().B[0]; got != 1 {
		t.Fatalf("rejected Resolve mutated the problem: B[0] = %v, want 1", got)
	}
	s.Config.RefactorEvery = 0
	if _, err := s.Resolve(ProblemDelta{SetB: []BoundChange{{Row: 0, B: 2}}}); err != nil {
		t.Fatalf("Resolve after repairing config: %v", err)
	}
	s.Release()
}
