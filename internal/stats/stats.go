// Package stats provides the small summary-statistics toolkit used by the
// experiment harness: means, standard deviations, and normal-approximation
// confidence intervals over repeated randomized runs.
package stats

import (
	"fmt"
	"math"
	"sort"
	"time"
)

// Summary describes a sample of repeated measurements.
type Summary struct {
	N    int
	Mean float64
	Std  float64 // sample standard deviation (n-1)
	Min  float64
	Max  float64
}

// Summarize computes a Summary of xs. An empty sample yields a zero Summary.
func Summarize(xs []float64) Summary {
	s := Summary{N: len(xs)}
	if s.N == 0 {
		return s
	}
	s.Min, s.Max = xs[0], xs[0]
	sum := 0.0
	for _, x := range xs {
		sum += x
		if x < s.Min {
			s.Min = x
		}
		if x > s.Max {
			s.Max = x
		}
	}
	s.Mean = sum / float64(s.N)
	if s.N > 1 {
		ss := 0.0
		for _, x := range xs {
			d := x - s.Mean
			ss += d * d
		}
		s.Std = math.Sqrt(ss / float64(s.N-1))
	}
	return s
}

// CI95 returns the half-width of the 95% normal-approximation confidence
// interval for the mean (1.96·σ/√n); 0 for samples of size < 2.
func (s Summary) CI95() float64 {
	if s.N < 2 {
		return 0
	}
	return 1.96 * s.Std / math.Sqrt(float64(s.N))
}

// String formats the summary as "mean ± std (n=N)".
func (s Summary) String() string {
	return fmt.Sprintf("%.2f ± %.2f (n=%d)", s.Mean, s.Std, s.N)
}

// Mean returns the arithmetic mean of xs (0 for empty input).
func Mean(xs []float64) float64 { return Summarize(xs).Mean }

// DurationPercentiles returns the q-quantiles of the samples by the
// nearest-rank rule index = floor(q·(n−1)) over a sorted copy — the one
// quantile rule shared by every latency report in the tree (serving
// metrics, replay sweeps, load generation). Empty input yields zeros; qs
// outside [0,1] are clamped.
func DurationPercentiles(samples []time.Duration, qs ...float64) []time.Duration {
	out := make([]time.Duration, len(qs))
	if len(samples) == 0 {
		return out
	}
	sorted := append([]time.Duration(nil), samples...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	for i, q := range qs {
		if q < 0 {
			q = 0
		}
		if q > 1 {
			q = 1
		}
		out[i] = sorted[int(q*float64(len(sorted)-1))]
	}
	return out
}
