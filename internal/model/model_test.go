package model

import (
	"math"
	"strings"
	"testing"
)

// tiny returns a hand-built instance:
//
//	events: 0 (cap 2), 1 (cap 1), 2 (cap 1); events 0 and 1 conflict.
//	users:  0 (cap 2, bids {0,1,2}, degree 2)
//	        1 (cap 1, bids {0,1},   degree 1)
//	        2 (cap 1, bids {2},     degree 0)
//	SI(u,v) = fixed table; β configurable.
func tiny(beta float64) *Instance {
	si := [][]float64{
		{0.9, 0.5, 0.1},
		{0.4, 0.8, 0.0},
		{0.0, 0.0, 0.7},
	}
	return &Instance{
		Events: []Event{{Capacity: 2}, {Capacity: 1}, {Capacity: 1}},
		Users: []User{
			{Capacity: 2, Bids: []int{0, 1, 2}, Degree: 2},
			{Capacity: 1, Bids: []int{0, 1}, Degree: 1},
			{Capacity: 1, Bids: []int{2}, Degree: 0},
		},
		Conflicts: func(v, w int) bool {
			return (v == 0 && w == 1) || (v == 1 && w == 0)
		},
		Interest: func(u, v int) float64 { return si[u][v] },
		Beta:     beta,
	}
}

func TestInstanceAccessors(t *testing.T) {
	in := tiny(0.5)
	if in.NumEvents() != 3 || in.NumUsers() != 3 {
		t.Fatalf("sizes wrong: %d events, %d users", in.NumEvents(), in.NumUsers())
	}
	if got := in.Bidders(0); len(got) != 2 || got[0] != 0 || got[1] != 1 {
		t.Errorf("Bidders(0) = %v, want [0 1]", got)
	}
	if got := in.Bidders(2); len(got) != 2 || got[0] != 0 || got[1] != 2 {
		t.Errorf("Bidders(2) = %v, want [0 2]", got)
	}
}

func TestDPI(t *testing.T) {
	in := tiny(0.5)
	if got := in.DPI(0); math.Abs(got-1.0) > 1e-12 {
		t.Errorf("DPI(0) = %v, want 1 (degree 2 / (3-1))", got)
	}
	if got := in.DPI(1); math.Abs(got-0.5) > 1e-12 {
		t.Errorf("DPI(1) = %v, want 0.5", got)
	}
	if got := in.DPI(2); got != 0 {
		t.Errorf("DPI(2) = %v, want 0", got)
	}
	single := &Instance{Users: []User{{Degree: 0}}}
	if got := single.DPI(0); got != 0 {
		t.Errorf("DPI with |U|=1 = %v, want 0", got)
	}
}

func TestWeightBlending(t *testing.T) {
	// β=1: weight is pure interest. β=0: pure DPI.
	in := tiny(1)
	if got := in.Weight(0, 0); math.Abs(got-0.9) > 1e-12 {
		t.Errorf("β=1 Weight(0,0) = %v, want 0.9", got)
	}
	in = tiny(0)
	if got := in.Weight(0, 0); math.Abs(got-1.0) > 1e-12 {
		t.Errorf("β=0 Weight(0,0) = %v, want DPI=1", got)
	}
	in = tiny(0.5)
	if got := in.Weight(1, 1); math.Abs(got-(0.5*0.8+0.5*0.5)) > 1e-12 {
		t.Errorf("β=0.5 Weight(1,1) = %v", got)
	}
}

func TestUtilityLinearInBeta(t *testing.T) {
	a := NewArrangement(3)
	a.Sets[0] = []int{0, 2}
	a.Sets[1] = []int{1}
	u0 := Utility(tiny(0), a)
	u1 := Utility(tiny(1), a)
	uh := Utility(tiny(0.5), a)
	if math.Abs(uh-(u0+u1)/2) > 1e-9 {
		t.Errorf("utility not linear in β: u0=%v u1=%v u(0.5)=%v", u0, u1, uh)
	}
}

func TestUtilityValue(t *testing.T) {
	in := tiny(0.5)
	a := NewArrangement(3)
	a.Sets[0] = []int{0}
	want := 0.5*0.9 + 0.5*1.0
	if got := Utility(in, a); math.Abs(got-want) > 1e-12 {
		t.Errorf("Utility = %v, want %v", got, want)
	}
	if got := Utility(in, NewArrangement(3)); got != 0 {
		t.Errorf("empty arrangement utility = %v", got)
	}
}

func TestValidateAcceptsFeasible(t *testing.T) {
	in := tiny(0.5)
	a := NewArrangement(3)
	a.Sets[0] = []int{0, 2} // 0 and 2 do not conflict, user cap 2
	a.Sets[1] = []int{1}
	a.Sets[2] = nil // event 2 already at capacity 1
	if err := Validate(in, a); err != nil {
		t.Fatalf("feasible arrangement rejected: %v", err)
	}
}

func TestValidateViolations(t *testing.T) {
	in := tiny(0.5)
	cases := []struct {
		name  string
		build func() *Arrangement
		want  string
	}{
		{"wrong user count", func() *Arrangement { return NewArrangement(2) }, "covers"},
		{"bid violation", func() *Arrangement {
			a := NewArrangement(3)
			a.Sets[2] = []int{0} // user 2 only bid for event 2
			return a
		}, "did not bid"},
		{"user capacity", func() *Arrangement {
			a := NewArrangement(3)
			a.Sets[1] = []int{0, 1} // capacity 1
			return a
		}, "capacity"},
		{"conflict", func() *Arrangement {
			a := NewArrangement(3)
			a.Sets[0] = []int{0, 1} // 0 and 1 conflict
			return a
		}, "conflicting"},
		{"event capacity", func() *Arrangement {
			a := NewArrangement(3)
			a.Sets[0] = []int{2}
			a.Sets[2] = []int{2} // event 2 capacity 1
			return a
		}, "attendees"},
		{"unknown event", func() *Arrangement {
			a := NewArrangement(3)
			a.Sets[0] = []int{7}
			return a
		}, "unknown"},
		{"duplicate event", func() *Arrangement {
			a := NewArrangement(3)
			a.Sets[0] = []int{2, 2}
			return a
		}, "unsorted or duplicate"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := Validate(in, tc.build())
			if err == nil {
				t.Fatal("violation not detected")
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Errorf("error %q does not mention %q", err, tc.want)
			}
		})
	}
}

func TestInstanceCheck(t *testing.T) {
	if err := tiny(0.5).Check(); err != nil {
		t.Fatalf("well-formed instance rejected: %v", err)
	}
	bad := tiny(0.5)
	bad.Beta = 1.5
	if err := bad.Check(); err == nil {
		t.Error("beta out of range not detected")
	}
	bad = tiny(0.5)
	bad.Users[0].Bids = []int{2, 0} // unsorted
	if err := bad.Check(); err == nil {
		t.Error("unsorted bids not detected")
	}
	bad = tiny(0.5)
	bad.Events[0].Capacity = -1
	if err := bad.Check(); err == nil {
		t.Error("negative capacity not detected")
	}
	bad = tiny(0.5)
	bad.Users[0].Bids = []int{0, 9}
	if err := bad.Check(); err == nil {
		t.Error("out-of-range bid not detected")
	}
	bad = tiny(0.5)
	bad.Conflicts = nil
	if err := bad.Check(); err == nil {
		t.Error("missing conflict function not detected")
	}
}

func TestArrangementHelpers(t *testing.T) {
	a := NewArrangement(3)
	a.Sets[0] = []int{2, 0}
	a.Normalize()
	if a.Sets[0][0] != 0 || a.Sets[0][1] != 2 {
		t.Errorf("Normalize failed: %v", a.Sets[0])
	}
	if a.Size() != 2 {
		t.Errorf("Size = %d, want 2", a.Size())
	}
	ps := a.Pairs()
	if len(ps) != 2 || ps[0] != (Pair{Event: 0, User: 0}) || ps[1] != (Pair{Event: 2, User: 0}) {
		t.Errorf("Pairs = %v", ps)
	}
	c := a.Clone()
	c.Sets[0][0] = 99
	if a.Sets[0][0] == 99 {
		t.Error("Clone shares storage")
	}
}

func TestComputeStats(t *testing.T) {
	in := tiny(0.5)
	s := ComputeStats(in)
	if s.NumEvents != 3 || s.NumUsers != 3 {
		t.Fatalf("stats sizes wrong: %+v", s)
	}
	if s.TotalBids != 6 || math.Abs(s.MeanBidsPerUser-2) > 1e-12 {
		t.Errorf("bids: total=%d mean=%v", s.TotalBids, s.MeanBidsPerUser)
	}
	if s.ConflictPairs != 1 {
		t.Errorf("ConflictPairs = %d, want 1", s.ConflictPairs)
	}
	if math.Abs(s.ConflictRate-1.0/3.0) > 1e-12 {
		t.Errorf("ConflictRate = %v, want 1/3", s.ConflictRate)
	}
	if math.Abs(s.MeanDegree-1) > 1e-12 {
		t.Errorf("MeanDegree = %v, want 1", s.MeanDegree)
	}
}

func TestCheckRejectsImpossibleDegrees(t *testing.T) {
	base := func() *Instance {
		return &Instance{
			Events:    []Event{{Capacity: 1}},
			Users:     []User{{Capacity: 1, Bids: []int{0}}},
			Conflicts: func(v, w int) bool { return false },
			Interest:  func(u, v int) float64 { return 1 },
		}
	}
	// single-user instance: any positive degree is impossible (|U|-1 = 0).
	// The pre-fix operator precedence silently accepted this case.
	in := base()
	in.Users[0].Degree = 5
	if err := in.Check(); err == nil {
		t.Error("degree 5 accepted on a single-user instance")
	}
	in = base()
	in.Users[0].Degree = 0
	if err := in.Check(); err != nil {
		t.Errorf("degree 0 rejected on a single-user instance: %v", err)
	}
	// multi-user: degree must stay within |U|-1
	in = base()
	in.Users = append(in.Users, User{Capacity: 1, Bids: []int{0}})
	in.Users[0].Degree = 1
	if err := in.Check(); err != nil {
		t.Errorf("degree 1 rejected with two users: %v", err)
	}
	in.Users[0].Degree = 2
	if err := in.Check(); err == nil {
		t.Error("degree 2 accepted with two users")
	}
	in.Users[0].Degree = -1
	if err := in.Check(); err == nil {
		t.Error("negative degree accepted")
	}
}

func TestWeightCacheMatchesDirectEvaluation(t *testing.T) {
	in := &Instance{
		Events: []Event{{Capacity: 1}, {Capacity: 2}, {Capacity: 1}},
		Users: []User{
			{Capacity: 2, Bids: []int{0, 2}, Degree: 1},
			{Capacity: 1, Bids: []int{1}, Degree: 0},
		},
		Conflicts: func(v, w int) bool { return false },
		Interest:  func(u, v int) float64 { return float64(u+1) / float64(v+2) },
		Beta:      0.7,
	}
	wc := in.Weights()
	for u := range in.Users {
		row := wc.Row(u)
		if len(row) != len(in.Users[u].Bids) {
			t.Fatalf("user %d row length %d, want %d", u, len(row), len(in.Users[u].Bids))
		}
		for i, v := range in.Users[u].Bids {
			want := in.Weight(u, v)
			if wc.At(u, i) != want || wc.Of(u, v) != want || row[i] != want {
				t.Fatalf("user %d event %d: cache %v/%v/%v, want %v",
					u, v, wc.At(u, i), wc.Of(u, v), row[i], want)
			}
		}
	}
	// un-bid pair falls back to direct evaluation
	if wc.Of(0, 1) != in.Weight(0, 1) {
		t.Error("un-bid pair lookup diverged from direct evaluation")
	}
	// cache is invalidated by RebuildBidders and Invalidate
	in.Users[0].Bids = []int{0, 1, 2}
	in.RebuildBidders()
	if got := len(in.Weights().Row(0)); got != 3 {
		t.Errorf("stale cache after RebuildBidders: row length %d, want 3", got)
	}
	in.Beta = 0.2
	in.Invalidate()
	if in.Weights().Of(0, 0) != in.Weight(0, 0) {
		t.Error("stale cache after Invalidate")
	}
}

func TestArrangementLoads(t *testing.T) {
	a := &Arrangement{Sets: [][]int{{0, 2}, {0}, nil, {2}}}
	load := a.Loads(3)
	if load[0] != 2 || load[1] != 0 || load[2] != 2 {
		t.Errorf("Loads = %v, want [2 0 2]", load)
	}
	// out-of-range events are ignored, not counted and not panicking
	b := &Arrangement{Sets: [][]int{{-1, 5}}}
	if got := b.Loads(3); got[0] != 0 || got[1] != 0 || got[2] != 0 {
		t.Errorf("out-of-range Loads = %v, want zeros", got)
	}
}

func TestArrangementEqual(t *testing.T) {
	a := &Arrangement{Sets: [][]int{{0, 1}, nil}}
	b := &Arrangement{Sets: [][]int{{0, 1}, {}}}
	if !a.Equal(b) || !b.Equal(a) {
		t.Error("nil and empty sets must compare equal")
	}
	for _, c := range []*Arrangement{
		{Sets: [][]int{{0, 2}, nil}},
		{Sets: [][]int{{0}, nil}},
		{Sets: [][]int{{0, 1}}},
		{Sets: [][]int{{0, 1}, nil, nil}},
	} {
		if a.Equal(c) {
			t.Errorf("Equal accepted differing arrangement %v", c.Sets)
		}
	}
	if !a.Equal(a.Clone()) {
		t.Error("clone must equal original")
	}
}

func TestMergeDisjoint(t *testing.T) {
	p1 := &Arrangement{Sets: [][]int{{0}, nil, nil}}
	p2 := &Arrangement{Sets: [][]int{nil, {1, 2}, nil}}
	got, err := MergeDisjoint(3, p1, p2)
	if err != nil {
		t.Fatal(err)
	}
	want := &Arrangement{Sets: [][]int{{0}, {1, 2}, nil}}
	if !got.Equal(want) {
		t.Errorf("merged %v, want %v", got.Sets, want.Sets)
	}

	// overlap on user 0 is rejected
	if _, err := MergeDisjoint(3, p1, &Arrangement{Sets: [][]int{{2}}}); err == nil {
		t.Error("overlapping parts accepted")
	}
	// oversized part is rejected
	if _, err := MergeDisjoint(1, p2); err == nil {
		t.Error("oversized part accepted")
	}
	// empty merge yields an empty arrangement of n users
	empty, err := MergeDisjoint(2)
	if err != nil || len(empty.Sets) != 2 || empty.Size() != 0 {
		t.Errorf("empty merge: %v, %v", empty, err)
	}
}
