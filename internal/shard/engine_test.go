package shard

import (
	"errors"
	"fmt"
	"testing"

	"github.com/ebsn/igepa/internal/model"
	"github.com/ebsn/igepa/internal/model/modeltest"
)

// TestConfigErrorsTyped pins the typed-error contract of Serve/NewEngine:
// invalid configurations come back as *ConfigError instead of panics (nil
// instance) or silent defaulting (S ≤ 0).
func TestConfigErrorsTyped(t *testing.T) {
	in := testInstance(t, 3, 30, 8)
	var ce *ConfigError

	if _, err := NewEngine(nil, Options{Shards: 1}); !errors.As(err, &ce) {
		t.Errorf("nil instance: err = %v, want *ConfigError", err)
	}
	if _, err := Serve(nil, nil, Options{Shards: 1}); !errors.As(err, &ce) {
		t.Errorf("Serve nil instance: err = %v, want *ConfigError", err)
	}
	for _, s := range []int{0, -1} {
		if _, err := Serve(in, nil, Options{Shards: s}); !errors.As(err, &ce) || ce.Field != "Shards" {
			t.Errorf("Shards=%d: err = %v, want *ConfigError on Shards", s, err)
		}
	}
	if _, err := Serve(in, nil, Options{Shards: 2, Batch: -5}); !errors.As(err, &ce) || ce.Field != "Batch" {
		t.Errorf("negative batch: err = %v, want *ConfigError on Batch", err)
	}
	if _, err := Serve(in, nil, Options{Shards: 2, CacheSize: -1}); !errors.As(err, &ce) || ce.Field != "CacheSize" {
		t.Errorf("negative cache size: err = %v, want *ConfigError on CacheSize", err)
	}
	if _, err := Serve(in, nil, Options{Shards: 2, Planner: PlannerKind(99)}); !errors.As(err, &ce) || ce.Field != "Planner" {
		t.Errorf("unknown planner: err = %v, want *ConfigError on Planner", err)
	}
	if _, err := Serve(in, nil, Options{Shards: 2, Lease: LeasePolicy(42)}); !errors.As(err, &ce) || ce.Field != "Lease" {
		t.Errorf("unknown lease: err = %v, want *ConfigError on Lease", err)
	}
	if (&ConfigError{Field: "f", Reason: "r"}).Error() == "" || (&LeaseError{Event: 1, Leased: 3, Capacity: 2}).Error() == "" {
		t.Error("error strings empty")
	}
	// a broken instance is a configuration error, not a panic
	bad := testInstance(t, 3, 10, 4)
	bad.Beta = 2
	if _, err := Serve(bad, nil, Options{Shards: 1}); !errors.As(err, &ce) {
		t.Errorf("broken instance: err = %v, want *ConfigError", err)
	}
}

// repeatBidInstance builds an instance whose users draw their bid sets from
// a handful of fixed patterns — the serving cache's target workload: many
// arrivals with identical (open set, capacity) keys.
func repeatBidInstance(t *testing.T, nu int) *model.Instance {
	t.Helper()
	patterns := [][]int{
		{0, 1, 2}, {1, 3, 5}, {2, 4}, {0, 3, 6, 7}, {5, 6},
	}
	in := &model.Instance{
		Conflicts: func(v, w int) bool { return v+w == 7 },
		Interest: func(u, v int) float64 {
			return float64((u*31+v*17)%97) / 97
		},
		Beta: 0.7,
	}
	for v := 0; v < 8; v++ {
		in.Events = append(in.Events, model.Event{Capacity: nu}) // never exhausted
	}
	for u := 0; u < nu; u++ {
		in.Users = append(in.Users, model.User{
			Capacity: 2 + u%2,
			Bids:     append([]int(nil), patterns[u%len(patterns)]...),
			Degree:   u % nu,
		})
	}
	if err := in.Check(); err != nil {
		t.Fatal(err)
	}
	return in
}

// TestServeWithCacheDeterministicAndHitting pins the admissible-set cache
// inside the sharded hot path: with CacheSize set, results stay feasible and
// bit-identical across worker counts and reruns for S ∈ {1,2,4,8}, and the
// repeat-bid workload actually hits the cache.
func TestServeWithCacheDeterministicAndHitting(t *testing.T) {
	in := repeatBidInstance(t, 120)
	order := arrivalOrder(5, in.NumUsers())
	for _, s := range []int{1, 2, 4, 8} {
		opt := Options{Shards: s, Batch: 16, Seed: 42, CacheSize: 256, Workers: 1}
		base, err := Serve(in, order, opt)
		if err != nil {
			t.Fatal(err)
		}
		label := fmt.Sprintf("S=%d", s)
		modeltest.RequireFeasible(t, label, in, base.Arrangement)
		if base.Cache.Hits == 0 {
			t.Errorf("%s: repeat-bid workload produced no cache hits: %+v", label, base.Cache)
		}
		for _, workers := range []int{2, 8, 0} {
			opt.Workers = workers
			got, err := Serve(in, order, opt)
			if err != nil {
				t.Fatal(err)
			}
			modeltest.RequireEqual(t, fmt.Sprintf("%s workers=%d", label, workers), base.Arrangement, got.Arrangement)
			if got.Cache.Hits != base.Cache.Hits || got.Cache.Misses != base.Cache.Misses {
				t.Errorf("%s workers=%d: cache counters differ: %+v vs %+v", label, workers, got.Cache, base.Cache)
			}
		}
	}
}

// TestServeCacheMatchesUncached pins cache transparency end to end on the
// standard synthetic workload: same decisions with and without the cache.
func TestServeCacheMatchesUncached(t *testing.T) {
	in := testInstance(t, 11, 200, 30)
	order := arrivalOrder(5, in.NumUsers())
	for _, s := range []int{1, 4} {
		plain, err := Serve(in, order, Options{Shards: s, Batch: 32, Seed: 42})
		if err != nil {
			t.Fatal(err)
		}
		cached, err := Serve(in, order, Options{Shards: s, Batch: 32, Seed: 42, CacheSize: 1024})
		if err != nil {
			t.Fatal(err)
		}
		modeltest.RequireEqual(t, fmt.Sprintf("S=%d cached vs plain", s), plain.Arrangement, cached.Arrangement)
	}
}

// TestEngineCancelAndRearrive white-boxes the live-serving path: ArriveOn /
// CancelOn / re-ArriveOn keep loads, utility accounting and the merged
// arrangement consistent.
func TestEngineCancelAndRearrive(t *testing.T) {
	in := testInstance(t, 7, 80, 12)
	e, err := NewEngine(in, Options{Shards: 4, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()

	var served []int
	for u := 0; u < in.NumUsers(); u++ {
		si := e.ShardOf(u)
		if len(e.ArriveOn(si, u)) > 0 {
			served = append(served, u)
		}
	}
	if len(served) == 0 {
		t.Fatal("no user got any events")
	}
	u := served[len(served)/2]
	si := e.ShardOf(u)
	got := e.Assignment(si, u)
	preLoad := make(map[int]int, len(got))
	for _, v := range got {
		preLoad[v] = e.EventLoad(v)
	}
	preUtil := e.ShardUtility(si)

	freed := e.CancelOn(si, u)
	if len(freed) != len(got) {
		t.Fatalf("cancel freed %v, assignment was %v", freed, got)
	}
	for _, v := range freed {
		if e.EventLoad(v) != preLoad[v]-1 {
			t.Errorf("event %d load %d after cancel, want %d", v, e.EventLoad(v), preLoad[v]-1)
		}
	}
	if e.ShardUtility(si) >= preUtil {
		t.Errorf("shard utility %v not reduced from %v by cancel", e.ShardUtility(si), preUtil)
	}
	if len(e.Assignment(si, u)) != 0 {
		t.Error("assignment survives cancel")
	}
	if e.CancelOn(si, u) != nil {
		t.Error("double cancel freed seats")
	}

	// the freed seats are grantable again
	again := e.ArriveOn(si, u)
	if len(again) == 0 {
		t.Fatal("re-arrival after cancel got nothing")
	}
	snap, err := e.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	modeltest.RequireFeasible(t, "after cancel/re-arrive", in, snap)

	// per-shard utilities must sum to the merged utility
	sum := 0.0
	for s := 0; s < e.Shards(); s++ {
		sum += e.ShardUtility(s)
	}
	if total := model.Utility(in, snap); !closeTo(sum, total, 1e-6) {
		t.Errorf("per-shard utilities sum to %v, merged utility %v", sum, total)
	}
}

func closeTo(a, b, eps float64) bool {
	d := a - b
	if d < 0 {
		d = -d
	}
	return d <= eps*(1+abs(a)+abs(b))
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}

// TestEngineMatchesServe pins the refactor: driving the engine manually with
// Serve's batch schedule reproduces Serve bit-for-bit.
func TestEngineMatchesServe(t *testing.T) {
	in := testInstance(t, 11, 150, 25)
	order := arrivalOrder(3, in.NumUsers())
	opt := Options{Shards: 4, Batch: 32, Seed: 42, CacheSize: 128}

	want, err := Serve(in, order, opt)
	if err != nil {
		t.Fatal(err)
	}

	e, err := NewEngine(in, opt)
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	b := e.Batch()
	for start := 0; start < len(order); start += b {
		end := min(start+b, len(order))
		e.DispatchBatch(order[start:end])
		if end < len(order) && e.Shards() > 1 {
			if _, err := e.RenewLeases(order[end:min(end+b, len(order))]); err != nil {
				t.Fatal(err)
			}
		}
	}
	got, err := e.Result()
	if err != nil {
		t.Fatal(err)
	}
	modeltest.RequireEqual(t, "engine vs Serve", want.Arrangement, got.Arrangement)
	if got.Utility != want.Utility || got.Epochs != want.Epochs ||
		got.LeaseRenewals != want.LeaseRenewals || got.MovedSeats != want.MovedSeats {
		t.Errorf("engine result %+v differs from Serve %+v", got, want)
	}
}
