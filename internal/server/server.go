// Package server is the network serving subsystem: an HTTP front-end
// (stdlib net/http) over the sharded planner in internal/shard. It turns
// the offline replay stack into a live request path — bid submissions,
// cancellations and queries hitting the arranger concurrently — which is
// the setting the online/dynamic event-arrangement literature assumes and
// the ROADMAP's production north star requires.
//
// # Request path
//
// POST /v1/bid routes the arriving user to their shard (the same
// shard.ShardOf hash the offline layer uses) and enqueues the request on
// that shard's bounded queue. A per-shard micro-batching loop coalesces
// queued requests and flushes on batch size B or deadline T, whichever
// comes first, feeding the engine's lease/planner machinery under a
// per-shard lock. Queues are bounded: when one fills, the server answers
// 429 with Retry-After instead of buffering without limit — backpressure
// is explicit, never hidden in memory growth.
//
// Every ~Batch arrivals a coordinator renews the capacity leases across all
// shards (stop-the-world over the per-shard locks), using the currently
// queued users as the demand predictor — the live analogue of Serve's
// next-batch composition.
//
// # Replay mode
//
// With Config.Replay the server runs one global queue and one dispatcher
// that flushes strictly on batch size (no deadlines), renewing leases
// between batches exactly as shard.Serve does. Because both drive the same
// shard.Engine with the same schedule, replaying an arrival order through
// the HTTP surface is bit-identical to ServeSharded on that order — the
// determinism contract the pinned tests enforce (see DESIGN.md §6).
//
// # Admin surface
//
// /healthz reports liveness plus instance shape; /statsz reports arrival
// counters, queue depths, p50/p99 latency (queue wait, decision, total),
// admissible-set cache hit rates and per-shard utility; POST /admin/drain
// flushes partial batches (the end-of-stream signal in replay mode).
package server

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"github.com/ebsn/igepa/internal/lp"
	"github.com/ebsn/igepa/internal/model"
	"github.com/ebsn/igepa/internal/obs"
	"github.com/ebsn/igepa/internal/shard"
	"github.com/ebsn/igepa/internal/stats"
	"github.com/ebsn/igepa/internal/wal"
)

// Defaults for Config zero values.
const (
	DefaultFlushInterval = 2 * time.Millisecond
	DefaultRetryAfter    = 1 * time.Second
	// DefaultFreezeTimeout bounds a wire-renewal freeze (cluster mode): if
	// the router dies between /cluster/demand and /cluster/lease, the shard
	// thaws itself after this long instead of serving frozen forever.
	DefaultFreezeTimeout = 2 * time.Second
)

// Config parameterizes New.
type Config struct {
	// Shard configures the underlying engine (shard count S, lease-renewal
	// batch B, planner policy, lease policy, admissible-set CacheSize, seed,
	// workers). Shard.RecordLatency is managed by the server.
	Shard shard.Options
	// Replay switches to the deterministic dispatcher: one global queue,
	// flush strictly every Shard.Batch arrivals (drain flushes the tail),
	// bit-identical to shard.Serve on the same submission order.
	Replay bool
	// FlushInterval is T, the live micro-batching deadline: a partial batch
	// waits at most this long for company. 0 means DefaultFlushInterval.
	// Ignored in replay mode.
	FlushInterval time.Duration
	// MicroBatch is the live per-shard flush size. 0 means
	// max(1, Shard.Batch/S): S shard loops flushing together roughly match
	// one renewal period.
	MicroBatch int
	// QueueDepth bounds each queue; a full queue answers 429. 0 means
	// max(4×Shard.Batch, 256).
	QueueDepth int
	// RetryAfter is the backpressure hint returned with 429 responses.
	// 0 means DefaultRetryAfter.
	RetryAfter time.Duration

	// WALPath, when non-empty, makes serving crash-safe: every accepted
	// operation is appended to a write-ahead log before its reply, and New
	// warm-boots by replaying the log (from the checkpoint's offset, if
	// CheckpointPath names one) through the engine. See internal/wal.
	WALPath string
	// WALSync is the fsync policy (wal.SyncInterval by default) and
	// WALSyncInterval its background period. The trade-off: SyncAlways
	// makes every acked decision power-loss durable, SyncInterval bounds
	// the loss window to one interval, SyncOff trusts the page cache.
	WALSync         wal.SyncPolicy
	WALSyncInterval time.Duration
	// CheckpointPath, when non-empty, enables Checkpoint (and the
	// POST /admin/checkpoint surface): an atomic snapshot that bounds how
	// much WAL a warm boot replays.
	CheckpointPath string
	// FreezeTimeout bounds how long a cluster shard stays frozen between a
	// /cluster/demand prepare and the matching /cluster/lease install (or
	// /cluster/abort) before thawing itself. 0 means DefaultFreezeTimeout.
	// Only meaningful when Shard.ClusterShards > 0.
	FreezeTimeout time.Duration
	// Follow runs the server as a read replica: no serving loops, no
	// writes (503), state built by tailing WALPath. /readyz reports ready
	// only within LagBytes of the log's end; POST /admin/promote turns the
	// replica into the leader. Requires WALPath.
	Follow bool
	// LagBytes is the follower readiness bound (0 = DefaultLagBytes).
	LagBytes int64

	// DisableMetrics turns off the obs registry and the /metrics endpoint.
	// It exists so the instrumentation-overhead benchmark (BENCH_obs.json)
	// has an uninstrumented baseline; production servers keep the default
	// (metrics on). Decisions are bit-identical either way — that is the
	// no-perturbation contract, pinned by the replay-equivalence tests.
	DisableMetrics bool
	// SlowLog, when positive, logs every arrival whose end-to-end latency
	// (queue wait + decision + amortized WAL commit) meets the threshold
	// as one structured line, and every lease-renewal round that crosses
	// it with its LP phase breakdown. Arrivals below the threshold cost
	// one comparison and zero allocations.
	SlowLog time.Duration
	// SlowLogOutput receives the slow-arrival lines (default os.Stderr).
	SlowLogOutput io.Writer
}

// user lifecycle states
const (
	stateNone uint8 = iota
	stateQueued
	stateDecided
	stateCancelled
)

// Server is the HTTP serving layer. Construct with New, install Handler in
// an http.Server (or httptest), and Close when done.
type Server struct {
	cfg   Config
	in    *model.Instance
	eng   *shard.Engine
	s, b  int
	micro int
	flush time.Duration

	mux    *http.ServeMux
	queues []*queue // live: one per shard; replay: queues[0] only

	// shardMu[si] serializes all engine access touching shard si; whole-
	// engine operations (renewal, replay dispatch, bid updates, snapshots)
	// take every lock in ascending order.
	shardMu []sync.Mutex
	renewMu sync.Mutex
	// sinceRenew counts arrivals since the last lease renewal (live mode).
	sinceRenew atomic.Int64
	// batches counts processed micro-batches (live mode's analogue of the
	// engine's dispatched-batch epoch counter, which only replay advances).
	batches atomic.Int64

	stateMu sync.Mutex
	state   []uint8

	// wal is the durability log (nil without Config.WALPath; nil on a
	// follower until Promote installs one — atomic because handlers read
	// it while Promote writes it). recovered reports what boot replayed
	// (guarded by stateMu for the same reason). overrides records bid
	// replacements for the checkpoint; written and read under every shard
	// lock.
	wal       atomic.Pointer[wal.Writer]
	recovered wal.RecoverInfo
	overrides map[int][]int
	follow    atomic.Bool
	fol       *follower
	// promoteMu serializes Promote against itself: two concurrent
	// /admin/promote calls must produce exactly one leader transition (the
	// loser gets ErrAlreadyLeader), never two sets of serving loops.
	promoteMu sync.Mutex

	// cluster is true when the engine hosts one shard of a multi-process
	// deployment (Config.Shard.ClusterShards > 0); gate is the wire-renewal
	// freeze window.
	cluster bool
	gate    leaseGate

	closed  atomic.Bool
	wg      sync.WaitGroup
	started time.Time
	m       metrics

	// obs is the Prometheus-exposition registry behind /metrics (nil under
	// Config.DisableMetrics); slow is the -slowlog structured logger (nil
	// unless Config.SlowLog > 0). Both are nil-safe no-ops when off.
	// qlimit is the resolved per-queue depth bound. lastLP holds the LP
	// snapshot at the previous renewal point (guarded by renewMu in live
	// mode; replay's single dispatcher goroutine owns it there) so a slow
	// renewal can log per-phase deltas rather than lifetime totals.
	obs    *serverObs
	slow   *obs.SlowLog
	qlimit int
	lastLP shard.LPStats
}

// New validates the configuration, builds the engine and starts the
// micro-batching loops. Configuration problems surface as the engine's
// typed errors (*shard.ConfigError, *online.BudgetError).
func New(in *model.Instance, cfg Config) (*Server, error) {
	opt := cfg.Shard
	opt.RecordLatency = cfg.Replay // per-user decision latency inside DispatchBatch
	if opt.ClusterShards > 0 && cfg.Replay {
		// A cluster shard has no replay dispatcher of its own: the router
		// owns the global batch schedule and drives /cluster/batch.
		return nil, &shard.ConfigError{Field: "Replay", Reason: "a cluster shard is driven by the router; run the router in replay mode instead"}
	}
	eng, err := shard.NewEngine(in, opt)
	if err != nil {
		return nil, err
	}
	s := eng.Shards()
	b := eng.Batch()
	srv := &Server{
		cfg: cfg, in: in, eng: eng, s: s, b: b,
		flush:     cfg.FlushInterval,
		micro:     cfg.MicroBatch,
		shardMu:   make([]sync.Mutex, s),
		state:     make([]uint8, in.NumUsers()),
		overrides: make(map[int][]int),
		started:   time.Now(),
		cluster:   opt.ClusterShards > 0,
	}
	if srv.flush <= 0 {
		srv.flush = DefaultFlushInterval
	}
	if srv.micro <= 0 {
		srv.micro = b / s
		if srv.micro < 1 {
			srv.micro = 1
		}
	}
	depth := cfg.QueueDepth
	if depth <= 0 {
		depth = 4 * b
		if depth < 256 {
			depth = 256
		}
	}
	srv.qlimit = depth
	if cfg.RetryAfter <= 0 {
		srv.cfg.RetryAfter = DefaultRetryAfter
	}
	if cfg.SlowLog > 0 {
		out := cfg.SlowLogOutput
		if out == nil {
			out = os.Stderr
		}
		srv.slow = obs.NewSlowLog(cfg.SlowLog, out)
	}

	if cfg.Replay {
		srv.queues = []*queue{newQueue(depth)}
	} else {
		srv.queues = make([]*queue, s)
		for si := 0; si < s; si++ {
			srv.queues[si] = newQueue(depth)
		}
	}
	if !cfg.DisableMetrics {
		srv.obs = newServerObs(srv)
	}

	// Durability boot, before any serving goroutine exists: a leader
	// replays checkpoint + WAL into the engine and opens the log for
	// appending; a follower replays the checkpoint and starts tailing.
	switch {
	case cfg.Follow:
		if cfg.WALPath == "" {
			eng.Close()
			return nil, &shard.ConfigError{Field: "WALPath", Reason: "follower mode requires a WAL path to tail"}
		}
		startOff, err := srv.restoreCheckpoint()
		if err != nil {
			eng.Close()
			return nil, err
		}
		srv.finishRecovery()
		srv.startFollower(startOff)
	case cfg.WALPath != "":
		if err := srv.bootDurable(); err != nil {
			eng.Close()
			return nil, err
		}
		srv.startLoops()
	default:
		srv.startLoops()
	}

	srv.mux = http.NewServeMux()
	srv.mux.HandleFunc("/v1/bid", srv.handleBid)
	srv.mux.HandleFunc("/v1/cancel", srv.handleCancel)
	srv.mux.HandleFunc("/v1/assignment", srv.handleAssignment)
	srv.mux.HandleFunc("/v1/load", srv.handleLoad)
	srv.mux.HandleFunc("/healthz", srv.handleHealthz)
	srv.mux.HandleFunc("/readyz", srv.handleReadyz)
	srv.mux.HandleFunc("/statsz", srv.handleStatsz)
	if srv.obs != nil {
		srv.mux.HandleFunc("/metrics", srv.handleMetrics)
	}
	srv.mux.HandleFunc("/admin/drain", srv.handleDrain)
	srv.mux.HandleFunc("/admin/checkpoint", srv.handleCheckpoint)
	srv.mux.HandleFunc("/admin/promote", srv.handlePromote)
	if srv.cluster {
		srv.mux.HandleFunc("/cluster/demand", srv.handleClusterDemand)
		srv.mux.HandleFunc("/cluster/lease", srv.handleClusterLease)
		srv.mux.HandleFunc("/cluster/abort", srv.handleClusterAbort)
		srv.mux.HandleFunc("/cluster/batch", srv.handleClusterBatch)
		srv.mux.HandleFunc("/cluster/export", srv.handleClusterExport)
		srv.mux.HandleFunc("/cluster/adopt", srv.handleClusterAdopt)
	}
	return srv, nil
}

// startLoops launches the batching consumers — at New for a leader, at
// Promote for a follower taking over.
func (srv *Server) startLoops() {
	if srv.cfg.Replay {
		srv.wg.Add(1)
		go srv.replayLoop()
		return
	}
	for si := 0; si < srv.s; si++ {
		srv.wg.Add(1)
		go srv.shardLoop(si)
	}
}

// Handler returns the server's HTTP handler.
func (srv *Server) Handler() http.Handler { return srv.mux }

// ServeHTTP implements http.Handler.
func (srv *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) { srv.mux.ServeHTTP(w, r) }

// Close flushes and stops the batching loops, syncs and closes the WAL and
// releases the engine. In replay mode any partial final batch is dispatched
// first, so every accepted submission still receives its decision — and with
// a WAL, logged: a clean shutdown loses nothing under any fsync policy.
func (srv *Server) Close() {
	if !srv.closed.CompareAndSwap(false, true) {
		return
	}
	// A frozen wire-renewal would hold every shard lock and stall the
	// consumers' final batches; thaw it first (the router's install, if it
	// still arrives, gets a 409).
	srv.abortFreeze()
	for _, q := range srv.queues {
		q.close()
	}
	srv.wg.Wait()
	// Backstop for the waiter-leak class of shutdown races: the consumers
	// have exited, so any request still queued (a consumer that never ran,
	// or died between pop and reply) would park its submitter on <-reply
	// forever. Hand every leftover a shutdown reply; handleBid turns it
	// into a 503.
	for _, q := range srv.queues {
		for _, r := range q.takeAll() {
			if r.reply != nil {
				r.reply <- reply{shutdown: true}
			}
		}
	}
	if srv.fol != nil {
		srv.fol.stopLoop()
	}
	if w := srv.walWriter(); w != nil {
		if err := w.Close(); err != nil {
			srv.noteWALError(err)
		}
	}
	srv.eng.Close()
}

// Drain flushes all partial batches and blocks until every queued request
// has been decided (or the timeout passes). It is the end-of-stream barrier
// of replay mode and the test suite's quiescence point.
func (srv *Server) Drain(timeout time.Duration) bool {
	deadline := time.Now().Add(timeout)
	for {
		idle := true
		for _, q := range srv.queues {
			if !q.idle() {
				idle = false
				q.drain()
			}
		}
		if idle {
			// Quiescent: fold any bound events still pending since the last
			// renewal threshold, so end-of-stream /statsz reads current.
			if srv.eng.BoundEnabled() {
				srv.lockAll()
				srv.eng.UpdateBound()
				srv.obs.mirrorEngine(srv.eng, srv.cfg.Replay)
				srv.unlockAll()
			}
			return true
		}
		if time.Now().After(deadline) {
			return false
		}
		time.Sleep(200 * time.Microsecond)
	}
}

// Arrangement snapshots the merged arrangement across shards.
func (srv *Server) Arrangement() (*model.Arrangement, error) {
	srv.lockAll()
	defer srv.unlockAll()
	return srv.eng.Snapshot()
}

func (srv *Server) lockAll() {
	for si := range srv.shardMu {
		srv.shardMu[si].Lock()
	}
}

func (srv *Server) unlockAll() {
	for si := len(srv.shardMu) - 1; si >= 0; si-- {
		srv.shardMu[si].Unlock()
	}
}

// --- batching loops -------------------------------------------------------

// shardLoop is the live-mode micro-batcher for shard si: pop up to micro
// requests (flushing partial batches after the deadline), serve them under
// the shard lock, reply, then give the coordinator a chance to renew leases.
func (srv *Server) shardLoop(si int) {
	defer srv.wg.Done()
	buf := make([]request, 0, srv.micro)
	for {
		batch := srv.queues[si].popBatch(srv.micro, srv.flush, buf)
		if batch == nil {
			return
		}
		buf = batch
		srv.shardMu[si].Lock()
		// the lease epoch this batch is served under (renewMu holders also
		// hold every shard lock, so the read is serialized)
		epoch := srv.eng.Renewals() + 1
		logging := srv.walWriter() != nil
		var walDur, walShare time.Duration
		for i := range batch {
			r := &batch[i]
			t0 := time.Now()
			r.events = srv.eng.ArriveOn(si, r.user)
			r.decide = time.Since(t0)
			r.wait = t0.Sub(r.enqueued)
			if logging {
				a0 := time.Now()
				srv.walAppend(wal.Op{Kind: wal.OpBid, TMillis: nowMillis(), User: r.user})
				walDur += time.Since(a0)
			}
		}
		// Commit before any reply leaves: an acked decision is at least
		// flushed to the log (and fsynced under SyncAlways).
		if logging {
			c0 := time.Now()
			srv.walCommit()
			walDur += time.Since(c0)
			walShare = walDur / time.Duration(len(batch))
			srv.m.walAppend.add(walShare)
			srv.obs.observeWALCommit(walShare)
		}
		for i := range batch {
			r := &batch[i]
			srv.finishDecision(r, si, r.events, epoch, r.wait, r.decide, walShare)
		}
		srv.shardMu[si].Unlock()
		srv.batches.Add(1)
		srv.queues[si].finish()
		if srv.sinceRenew.Add(int64(len(batch))) >= int64(srv.b) &&
			(srv.s > 1 || srv.eng.BoundEnabled()) {
			srv.tryRenew()
		}
	}
}

// tryRenew runs one lease-renewal round if no other is in progress, using
// the queued users as the demand predictor for the "next batch". When the
// live LP bound is enabled, the same stop-the-world window re-solves it
// over everything served since the last renewal — the live-mode analogue of
// the replay path's per-batch bound update.
func (srv *Server) tryRenew() {
	if !srv.renewMu.TryLock() {
		return
	}
	defer srv.renewMu.Unlock()
	srv.sinceRenew.Store(0)
	var pending []int
	for _, q := range srv.queues {
		pending = q.pendingUsers(pending)
	}
	r0 := time.Now()
	srv.lockAll()
	var err error
	if srv.s > 1 {
		_, err = srv.eng.RenewLeases(pending)
		// Live-mode renewals ride the micro-batch clock, which is not
		// derivable from the operation stream — so they are logged
		// explicitly, demand snapshot included. (Replay mode logs none:
		// its renewal schedule is a function of the batch records.)
		if srv.walWriter() != nil {
			srv.walAppend(wal.Op{Kind: wal.OpRenew, TMillis: nowMillis(), Users: pending})
			srv.walCommit()
		}
	}
	if srv.eng.BoundEnabled() {
		srv.eng.UpdateBound() // failures land in BoundStats.Errors
	}
	srv.obs.mirrorEngine(srv.eng, false)
	var cur shard.LPStats
	if srv.slow != nil {
		cur = srv.eng.LPStats() // must be read under the shard locks
	}
	srv.unlockAll()
	if err != nil {
		srv.m.leaseErrors.Add(1)
	}
	renewDur := time.Since(r0)
	if srv.slow.Slow(renewDur) {
		// Phase deltas against the previous renewal point, so a slow round
		// shows where *this* round's time went, not lifetime totals.
		// lastLP is guarded by renewMu, which we still hold.
		prev := srv.lastLP
		srv.slow.Note("renew", len(pending), -1, renewDur, []obs.Span{
			{Name: "pricing", D: cur.LeaseTimers.Pricing - prev.LeaseTimers.Pricing},
			{Name: "ftran", D: cur.LeaseTimers.Ftran - prev.LeaseTimers.Ftran},
			{Name: "btran", D: cur.LeaseTimers.Btran - prev.LeaseTimers.Btran},
			{Name: "update", D: cur.LeaseTimers.Update - prev.LeaseTimers.Update},
			{Name: "factor", D: cur.LeaseTimers.Factor - prev.LeaseTimers.Factor},
		})
	}
	if srv.slow != nil {
		srv.lastLP = cur
	}
}

// replayLoop is the deterministic dispatcher: global batches of exactly B
// submissions in arrival order (partial only on drain/close), lease renewal
// fed with the batch about to run — the same schedule as shard.Serve, on
// the same engine.
func (srv *Server) replayLoop() {
	defer srv.wg.Done()
	buf := make([]request, 0, srv.b)
	users := make([]int, 0, srv.b)
	for {
		batch := srv.queues[0].popBatch(srv.b, 0, buf)
		if batch == nil {
			return
		}
		buf = batch
		users = users[:0]
		for i := range batch {
			users = append(users, batch[i].user)
		}
		srv.lockAll()
		if srv.eng.Epochs() > 0 && srv.s > 1 {
			if _, err := srv.eng.RenewLeases(users); err != nil {
				srv.m.leaseErrors.Add(1)
			}
		}
		t0 := time.Now()
		srv.eng.DispatchBatch(users)
		// One batch record stands in for the renewal and every decision:
		// replay re-derives the renewal from engine state (see
		// shard.Engine.Apply), exactly as the dispatch above did.
		var walShare time.Duration
		if srv.walWriter() != nil {
			w0 := time.Now()
			srv.walAppend(wal.Op{Kind: wal.OpBatch, TMillis: nowMillis(), Users: users})
			srv.walCommit()
			walShare = time.Since(w0) / time.Duration(len(batch))
			srv.m.walAppend.add(walShare)
			srv.obs.observeWALCommit(walShare)
		}
		epoch := srv.eng.Epochs()
		for i := range batch {
			r := &batch[i]
			si := srv.eng.ShardOf(r.user)
			events := srv.eng.Assignment(si, r.user)
			srv.finishDecision(r, si, events, epoch, t0.Sub(r.enqueued), srv.eng.LatencyOf(r.user), walShare)
		}
		// Mirror the engine-owned counters (renewals, moved seats, LP solver
		// stats) into the registry while the dispatcher still holds every
		// shard lock — scrapes read the mirrors, never these locks.
		srv.obs.mirrorEngine(srv.eng, true)
		srv.unlockAll()
		srv.queues[0].finish()
	}
}

// finishDecision records metrics, advances the user state and delivers the
// reply (if the submitter is waiting). Everything recorded here is atomic
// bumps — no locks beyond stateMu, no allocations (pinned by
// TestArrivalPathAllocs) — and the slow-arrival trace builds its span list
// only after the threshold comparison says the line will actually print.
func (srv *Server) finishDecision(r *request, si int, events []int, epoch int, wait, decide, walShare time.Duration) {
	srv.stateMu.Lock()
	srv.state[r.user] = stateDecided
	srv.stateMu.Unlock()
	srv.m.decided.Add(1)
	if len(events) > 0 {
		srv.m.granted.Add(1)
	}
	srv.m.queueWait.add(wait)
	srv.m.decide.add(decide)
	srv.m.total.add(wait + decide)
	total := wait + decide + walShare
	srv.obs.observeDecision(wait, decide, total)
	if srv.slow.Slow(total) {
		srv.slow.Note("bid", r.user, si, total, []obs.Span{
			{Name: "wait", D: wait},
			{Name: "decide", D: decide},
			{Name: "wal", D: walShare},
		})
	}
	if r.reply != nil {
		r.reply <- reply{events: events, epoch: epoch, wait: wait}
	}
}

// --- handlers -------------------------------------------------------------

type bidRequest struct {
	User int   `json:"user"`
	Bids []int `json:"bids,omitempty"` // optional replacement bid set
	// Wait, when false, returns 202 immediately; the decision is available
	// later via /v1/assignment. Default true.
	Wait *bool `json:"wait,omitempty"`
}

type bidResponse struct {
	User   int   `json:"user"`
	Events []int `json:"events"`
	Epoch  int   `json:"epoch"`
	Queued bool  `json:"queued,omitempty"`
	WaitUS int64 `json:"queue_wait_us,omitempty"`
}

func (srv *Server) handleBid(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		httpError(w, http.StatusMethodNotAllowed, "POST only")
		return
	}
	if !srv.writable(w) {
		return
	}
	var req bidRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		srv.m.badRequests.Add(1)
		httpError(w, http.StatusBadRequest, "bad JSON: "+err.Error())
		return
	}
	if req.User < 0 || req.User >= srv.in.NumUsers() {
		srv.m.badRequests.Add(1)
		httpError(w, http.StatusBadRequest, fmt.Sprintf("user %d outside [0,%d)", req.User, srv.in.NumUsers()))
		return
	}
	if !srv.owned(w, req.User) {
		return
	}
	if req.Bids != nil {
		if err := srv.checkBids(req.Bids); err != nil {
			srv.m.badRequests.Add(1)
			httpError(w, http.StatusBadRequest, err.Error())
			return
		}
	}

	srv.stateMu.Lock()
	st := srv.state[req.User]
	if st == stateQueued || st == stateDecided {
		srv.stateMu.Unlock()
		srv.m.conflicts.Add(1)
		httpError(w, http.StatusConflict, fmt.Sprintf("user %d already %s", req.User,
			map[uint8]string{stateQueued: "queued", stateDecided: "decided"}[st]))
		return
	}
	srv.state[req.User] = stateQueued
	srv.stateMu.Unlock()

	wait := req.Wait == nil || *req.Wait
	rq := request{user: req.User, enqueued: time.Now()}
	if wait {
		rq.reply = make(chan reply, 1)
	}
	var err error
	if req.Bids != nil {
		// Enqueue and bid replacement must be atomic against the batching
		// loops: holding every shard lock keeps the consumer from deciding
		// the request before the new bids (and the rebuilt weight table)
		// are in place, and a rejected enqueue leaves the instance
		// untouched — a 429 must not mutate state the client was told was
		// not accepted.
		srv.lockAll()
		if err = srv.enqueue(rq); err == nil {
			srv.applyBidUpdateLocked(req.User, req.Bids)
		}
		srv.unlockAll()
	} else {
		err = srv.enqueue(rq)
	}
	if err != nil {
		srv.rollbackQueued(req.User, st)
		if err == errQueueClosed {
			srv.m.unavailable.Add(1)
			httpError(w, http.StatusServiceUnavailable, "server closing")
			return
		}
		srv.m.rejected.Add(1)
		w.Header().Set("Retry-After", strconv.Itoa(retryAfterSeconds(srv.cfg.RetryAfter)))
		httpError(w, http.StatusTooManyRequests, "queue full")
		return
	}
	srv.m.arrivals.Add(1)
	if !wait {
		writeJSON(w, http.StatusAccepted, bidResponse{User: req.User, Queued: true})
		return
	}
	rep := <-rq.reply
	if rep.shutdown {
		srv.m.unavailable.Add(1)
		httpError(w, http.StatusServiceUnavailable, "server closed before deciding")
		return
	}
	writeJSON(w, http.StatusOK, bidResponse{
		User: req.User, Events: rep.events, Epoch: rep.epoch, WaitUS: rep.wait.Microseconds(),
	})
}

// rollbackQueued undoes handleBid's optimistic stateQueued claim after a
// failed enqueue — but only if the user is still in stateQueued. Between the
// claim and the rollback the state lock is dropped, so a concurrent
// transition (a racing duplicate submission that won the queue slot and got
// decided, or a cancel of that decision) may have landed; restoring the
// pre-submit snapshot over it would clobber a real decision.
func (srv *Server) rollbackQueued(u int, prev uint8) {
	srv.stateMu.Lock()
	if srv.state[u] == stateQueued {
		srv.state[u] = prev
	}
	srv.stateMu.Unlock()
}

// owned gates the per-user handlers in cluster mode: a request for a user
// this shard does not own answers 421 Misdirected Request, telling the
// router its routing table is stale (mid-migration) and to re-resolve.
func (srv *Server) owned(w http.ResponseWriter, u int) bool {
	if srv.cluster && !srv.eng.Owns(u) {
		srv.m.misrouted.Add(1)
		httpError(w, http.StatusMisdirectedRequest, fmt.Sprintf("user %d is not owned by this shard", u))
		return false
	}
	return true
}

// writable gates the mutating handlers: a follower serves reads only, and
// a leader whose WAL has failed must not ack decisions it cannot make
// durable. Answers 503 and reports false when writes are off.
func (srv *Server) writable(w http.ResponseWriter) bool {
	if srv.follow.Load() {
		srv.m.unavailable.Add(1)
		httpError(w, http.StatusServiceUnavailable, "read-only follower; POST /admin/promote to take over")
		return false
	}
	if srv.walBroken() {
		srv.m.unavailable.Add(1)
		httpError(w, http.StatusServiceUnavailable, "write-ahead log failed; not accepting writes")
		return false
	}
	return true
}

// enqueue routes the request to the owning queue.
func (srv *Server) enqueue(rq request) error {
	if srv.cfg.Replay {
		return srv.queues[0].push(rq)
	}
	return srv.queues[srv.eng.ShardOf(rq.user)].push(rq)
}

// checkBids validates a replacement bid set: event indices in range, no
// negatives. The set is normalized (sorted, deduplicated) by applyBidUpdate.
func (srv *Server) checkBids(bids []int) error {
	for _, v := range bids {
		if v < 0 || v >= srv.in.NumEvents() {
			return fmt.Errorf("bid for unknown event %d (|V| = %d)", v, srv.in.NumEvents())
		}
	}
	return nil
}

// applyBidUpdateLocked replaces the user's bid set before their decision.
// Bids shape the weight table and the per-event bidder lists, so the update
// is a stop-the-world: the caller holds every shard lock while the instance
// caches rebuild (shard.Engine.SetBids — the same code path WAL replay
// takes, so a logged update replays bit-identically). The WAL record is
// appended under the same locks: no decision anywhere can interleave
// between the update and its log entry.
func (srv *Server) applyBidUpdateLocked(u int, bids []int) {
	norm := srv.eng.SetBids(u, bids)
	srv.overrides[u] = norm
	srv.walAppend(wal.Op{Kind: wal.OpSetBids, TMillis: nowMillis(), User: u, Bids: norm})
}

type cancelRequest struct {
	User int `json:"user"`
}

type cancelResponse struct {
	User  int   `json:"user"`
	Freed []int `json:"freed"`
}

// handleCancel revokes a decided user's assignment: their seats return to
// the owning shard's lease and the user may submit again. Cancellations act
// immediately (they do not ride the micro-batch queue): a cancel is a
// capacity release, and holding freed seats back only delays better use of
// them.
func (srv *Server) handleCancel(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		httpError(w, http.StatusMethodNotAllowed, "POST only")
		return
	}
	if !srv.writable(w) {
		return
	}
	var req cancelRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		srv.m.badRequests.Add(1)
		httpError(w, http.StatusBadRequest, "bad JSON: "+err.Error())
		return
	}
	if req.User < 0 || req.User >= srv.in.NumUsers() {
		srv.m.badRequests.Add(1)
		httpError(w, http.StatusBadRequest, fmt.Sprintf("user %d outside [0,%d)", req.User, srv.in.NumUsers()))
		return
	}
	if !srv.owned(w, req.User) {
		return
	}
	srv.stateMu.Lock()
	if srv.state[req.User] != stateDecided {
		srv.stateMu.Unlock()
		srv.m.conflicts.Add(1)
		httpError(w, http.StatusConflict, fmt.Sprintf("user %d has no active assignment", req.User))
		return
	}
	srv.state[req.User] = stateCancelled
	srv.stateMu.Unlock()

	si := srv.eng.ShardOf(req.User)
	srv.shardMu[si].Lock()
	freed := srv.eng.CancelOn(si, req.User)
	if srv.walWriter() != nil {
		srv.walAppend(wal.Op{Kind: wal.OpCancel, TMillis: nowMillis(), User: req.User})
		srv.walCommit()
	}
	srv.shardMu[si].Unlock()
	srv.m.cancels.Add(1)
	if freed == nil {
		freed = []int{}
	}
	writeJSON(w, http.StatusOK, cancelResponse{User: req.User, Freed: freed})
}

type assignmentResponse struct {
	User    int    `json:"user"`
	State   string `json:"state"`
	Events  []int  `json:"events"`
	Decided bool   `json:"decided"`
}

// handleAssignment returns one user's state and events (?user=N), or the
// full arrangement dump (no parameter) — the replay tooling's exit path.
func (srv *Server) handleAssignment(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		httpError(w, http.StatusMethodNotAllowed, "GET only")
		return
	}
	q := r.URL.Query().Get("user")
	if q == "" {
		arr, err := srv.Arrangement()
		if err != nil {
			httpError(w, http.StatusInternalServerError, err.Error())
			return
		}
		writeJSON(w, http.StatusOK, struct {
			Sets [][]int `json:"sets"`
		}{Sets: arr.Sets})
		return
	}
	u, err := strconv.Atoi(q)
	if err != nil || u < 0 || u >= srv.in.NumUsers() {
		srv.m.badRequests.Add(1)
		httpError(w, http.StatusBadRequest, "bad user")
		return
	}
	if !srv.owned(w, u) {
		return
	}
	srv.stateMu.Lock()
	st := srv.state[u]
	srv.stateMu.Unlock()
	si := srv.eng.ShardOf(u)
	srv.shardMu[si].Lock()
	events := srv.eng.Assignment(si, u)
	srv.shardMu[si].Unlock()
	if events == nil {
		events = []int{}
	}
	names := map[uint8]string{stateNone: "unknown", stateQueued: "queued", stateDecided: "decided", stateCancelled: "cancelled"}
	writeJSON(w, http.StatusOK, assignmentResponse{
		User: u, State: names[st], Events: events, Decided: st == stateDecided,
	})
}

type loadResponse struct {
	Event    int `json:"event"`
	Load     int `json:"load"`
	Capacity int `json:"capacity"`
}

// handleLoad returns one event's seat consumption (?event=N) or all events'.
func (srv *Server) handleLoad(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		httpError(w, http.StatusMethodNotAllowed, "GET only")
		return
	}
	q := r.URL.Query().Get("event")
	srv.lockAll()
	defer srv.unlockAll()
	if q == "" {
		out := make([]loadResponse, srv.in.NumEvents())
		for v := range out {
			out[v] = loadResponse{Event: v, Load: srv.eng.EventLoad(v), Capacity: srv.in.Events[v].Capacity}
		}
		writeJSON(w, http.StatusOK, out)
		return
	}
	v, err := strconv.Atoi(q)
	if err != nil || v < 0 || v >= srv.in.NumEvents() {
		srv.m.badRequests.Add(1)
		httpError(w, http.StatusBadRequest, "bad event")
		return
	}
	writeJSON(w, http.StatusOK, loadResponse{Event: v, Load: srv.eng.EventLoad(v), Capacity: srv.in.Events[v].Capacity})
}

// ClusterInfo identifies a cluster shard in /healthz: which slice of a how-
// wide deployment this process hosts. The router validates it at backend
// registration.
type ClusterInfo struct {
	Shards int `json:"shards"`
	Index  int `json:"index"`
}

type healthResponse struct {
	Status    string       `json:"status"`
	Mode      string       `json:"mode"`
	Role      string       `json:"role"`
	UptimeMS  int64        `json:"uptime_ms"`
	Shards    int          `json:"shards"`
	Batch     int          `json:"batch"`
	NumUsers  int          `json:"num_users"`
	NumEvents int          `json:"num_events"`
	Cluster   *ClusterInfo `json:"cluster,omitempty"`
}

// handleHealthz is liveness: "is this process up and sane". Whether it
// should receive traffic is /readyz's question (a catching-up follower is
// alive but not ready).
func (srv *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	status, code := "ok", http.StatusOK
	if srv.m.leaseErrors.Load() > 0 {
		status, code = "degraded: lease invariant violated", http.StatusInternalServerError
	}
	if srv.walBroken() {
		status, code = "degraded: write-ahead log failed", http.StatusInternalServerError
	}
	if srv.closed.Load() {
		status, code = "closing", http.StatusServiceUnavailable
	}
	resp := healthResponse{
		Status: status, Mode: srv.modeName(), Role: srv.role(),
		UptimeMS: time.Since(srv.started).Milliseconds(),
		Shards:   srv.s, Batch: srv.b, NumUsers: srv.in.NumUsers(), NumEvents: srv.in.NumEvents(),
	}
	if srv.cluster {
		resp.Cluster = &ClusterInfo{Shards: srv.eng.ClusterShards(), Index: srv.eng.ClusterIndex()}
	}
	writeJSON(w, code, resp)
}

func (srv *Server) modeName() string {
	if srv.cfg.Replay {
		return "replay"
	}
	return "live"
}

// ShardStats is one shard's row in the /statsz report.
type ShardStats struct {
	Arrivals   int     `json:"arrivals"`
	Utility    float64 `json:"utility"`
	QueueDepth int     `json:"queue_depth"`
}

// CacheStats is the /statsz view of the admissible-set cache counters.
type CacheStats struct {
	Hits      int64   `json:"hits"`
	Misses    int64   `json:"misses"`
	HitRate   float64 `json:"hit_rate"`
	Evictions int64   `json:"evictions"`
	Entries   int64   `json:"entries"`
}

// Stats is the /statsz payload.
type Stats struct {
	Mode          string `json:"mode"`
	UptimeMS      int64  `json:"uptime_ms"`
	Shards        int    `json:"shards"`
	Batch         int    `json:"batch"`
	MicroBatch    int    `json:"micro_batch"`
	FlushMicros   int64  `json:"flush_us"`
	QueueLimit    int    `json:"queue_limit"`
	Arrivals      int64  `json:"arrivals"`
	Decided       int64  `json:"decided"`
	Granted       int64  `json:"granted"`
	Cancels       int64  `json:"cancels"`
	Rejected      int64  `json:"rejected_429"`
	Conflicts     int64  `json:"conflict_409"`
	BadRequests   int64  `json:"bad_request_400"`
	Misrouted     int64  `json:"misrouted_421,omitempty"`
	LeaseErrors   int64  `json:"lease_errors"`
	QueueDepth    []int  `json:"queue_depth"`
	Epochs        int    `json:"epochs"`
	LeaseRenewals int    `json:"lease_renewals"`
	MovedSeats    int    `json:"moved_seats"`

	QueueWait Percentiles `json:"queue_wait"`
	Decision  Percentiles `json:"decision"`
	Total     Percentiles `json:"total"`

	Cache    CacheStats   `json:"cache"`
	PerShard []ShardStats `json:"per_shard"`
	Utility  float64      `json:"utility"`

	// Bound is the live LP bound report (nil unless the engine runs with
	// shard.Options.LiveBound). Update is the planner-update latency —
	// reported separately from the decision percentiles above so the
	// bound's cost is visible next to the serving tails.
	Bound *BoundReport `json:"live_bound,omitempty"`

	// LP reports the persistent simplex solvers behind lease renewal and
	// the live bound: warm-start effectiveness (cold/warm/fast-finish
	// splits, pivots, fallbacks), factorization churn and where the solve
	// time goes per phase. The same numbers /metrics exports as
	// igepa_lp_* series.
	LP *LPReport `json:"lp,omitempty"`

	// WAL is the durability report (nil without Config.WALPath): append
	// traffic, fsync counts, the per-decision append+commit percentiles to
	// hold against Decision, and what the last boot recovered. Follower is
	// the replica's lag/readiness view (nil on a leader).
	WAL      *WALStats      `json:"wal,omitempty"`
	Follower *FollowerStats `json:"follower,omitempty"`
}

// BoundReport is the /statsz view of the live LP-bound tracker.
type BoundReport struct {
	RemainingLP float64     `json:"remaining_lp"`
	Updates     int         `json:"updates"`
	Errors      int         `json:"errors"`
	Update      Percentiles `json:"update"`
	WarmSolves  int         `json:"warm_solves"`
	ColdSolves  int         `json:"cold_solves"`
}

// SolverReport is one persistent LP solver's /statsz row. The fallback_*
// fields break the warm-abandonment count down by reason (singular patched
// basis, repair stall, dual-unbounded bound infeasibility, structural
// error); fallback_infeasible stays the stall+bound aggregate for existing
// dashboards.
type SolverReport struct {
	ColdSolves              int   `json:"cold_solves"`
	WarmSolves              int   `json:"warm_solves"`
	FastFinishes            int   `json:"fast_finishes"`
	WarmPivots              int   `json:"warm_pivots"`
	FallbackSingular        int   `json:"fallback_singular"`
	FallbackInfeasible      int   `json:"fallback_infeasible"`
	FallbackRepairStall     int   `json:"fallback_repair_stall"`
	FallbackBoundInfeasible int   `json:"fallback_bound_infeasible"`
	FallbackError           int   `json:"fallback_error"`
	Refactorizations        int64 `json:"refactorizations"`
	EtaChainLength          int   `json:"eta_chain_length"`

	HypersparseFtran    int64 `json:"hypersparse_ftran"`
	HypersparseBtran    int64 `json:"hypersparse_btran"`
	CandidateRefills    int64 `json:"candidate_refills"`
	BudgetExhausted     int64 `json:"budget_exhausted"`
	PartialWarmCutovers int64 `json:"partial_warm_cutovers"`

	FtranNS   int64 `json:"ftran_ns"`
	BtranNS   int64 `json:"btran_ns"`
	PricingNS int64 `json:"pricing_ns"`
	UpdateNS  int64 `json:"update_ns"`
	FactorNS  int64 `json:"factor_ns"`
}

func solverReport(st lp.SolverStats, t lp.PhaseTimers) SolverReport {
	return SolverReport{
		ColdSolves:              st.ColdSolves,
		WarmSolves:              st.WarmSolves,
		FastFinishes:            st.FastFinishes,
		WarmPivots:              st.WarmPivots,
		FallbackSingular:        st.FallbackSingular,
		FallbackInfeasible:      st.FallbackInfeasible,
		FallbackRepairStall:     st.FallbackRepairStall,
		FallbackBoundInfeasible: st.FallbackBoundInfeasible,
		FallbackError:           st.FallbackError,
		Refactorizations:        st.Refactorizations,
		EtaChainLength:          st.EtaLen,
		HypersparseFtran:        t.HypersparseFtran,
		HypersparseBtran:        t.HypersparseBtran,
		CandidateRefills:        t.CandidateRefills,
		BudgetExhausted:         t.BudgetExhausted,
		PartialWarmCutovers:     t.PartialWarmCutovers,
		FtranNS:                 t.Ftran.Nanoseconds(),
		BtranNS:                 t.Btran.Nanoseconds(),
		PricingNS:               t.Pricing.Nanoseconds(),
		UpdateNS:                t.Update.Nanoseconds(),
		FactorNS:                t.Factor.Nanoseconds(),
	}
}

// LPReport is the /statsz view of the persistent LP solvers (satellite of
// the unified observability layer): the lease-renewal solver always, the
// live-bound shadow planner when enabled.
type LPReport struct {
	Lease SolverReport  `json:"lease"`
	Bound *SolverReport `json:"bound,omitempty"`
}

// Stats assembles the admin snapshot (also served as /statsz).
func (srv *Server) Stats() Stats {
	st := Stats{
		Mode: srv.modeName(), UptimeMS: time.Since(srv.started).Milliseconds(),
		Shards: srv.s, Batch: srv.b, MicroBatch: srv.micro,
		FlushMicros: srv.flush.Microseconds(),
		QueueLimit:  srv.qlimit,
		Arrivals:    srv.m.arrivals.Load(),
		Decided:     srv.m.decided.Load(),
		Granted:     srv.m.granted.Load(),
		Cancels:     srv.m.cancels.Load(),
		Rejected:    srv.m.rejected.Load(),
		Conflicts:   srv.m.conflicts.Load(),
		BadRequests: srv.m.badRequests.Load(),
		Misrouted:   srv.m.misrouted.Load(),
		LeaseErrors: srv.m.leaseErrors.Load(),
		QueueWait:   srv.m.queueWait.snapshot(),
		Decision:    srv.m.decide.snapshot(),
		Total:       srv.m.total.snapshot(),
	}
	for _, q := range srv.queues {
		st.QueueDepth = append(st.QueueDepth, q.depth())
	}
	srv.lockAll()
	// replay counts global dispatched batches in the engine; live counts
	// micro-batches at the server (the engine's DispatchBatch never runs)
	if srv.cfg.Replay {
		st.Epochs = srv.eng.Epochs()
	} else {
		st.Epochs = int(srv.batches.Load())
	}
	st.LeaseRenewals = srv.eng.Renewals()
	st.MovedSeats = srv.eng.MovedSeats()
	cs := srv.eng.CacheStats()
	bs := srv.eng.BoundStats()
	lps := srv.eng.LPStats() // needs the shard locks we hold
	for si := 0; si < srv.s; si++ {
		row := ShardStats{Arrivals: srv.eng.ArrivalsOn(si), Utility: srv.eng.ShardUtility(si)}
		if !srv.cfg.Replay {
			row.QueueDepth = srv.queues[si].depth()
		}
		st.PerShard = append(st.PerShard, row)
		st.Utility += row.Utility
	}
	srv.unlockAll()
	st.Cache = CacheStats{
		Hits: cs.Hits, Misses: cs.Misses, HitRate: cs.HitRate(),
		Evictions: cs.Evictions, Entries: cs.Entries,
	}
	st.WAL = srv.walStats()
	if srv.fol != nil {
		fs := srv.fol.stats()
		st.Follower = &fs
	}
	lr := &LPReport{Lease: solverReport(lps.Lease, lps.LeaseTimers)}
	if bs != nil {
		b := solverReport(lps.Bound, lps.BoundTimers)
		lr.Bound = &b
	}
	st.LP = lr
	if bs != nil {
		ps := stats.DurationPercentiles(bs.UpdateLatencies, 0.50, 0.99)
		st.Bound = &BoundReport{
			RemainingLP: bs.Remaining,
			Updates:     bs.Updates,
			Errors:      bs.Errors,
			Update:      Percentiles{P50Micros: ps[0].Microseconds(), P99Micros: ps[1].Microseconds()},
			WarmSolves:  bs.Solver.WarmSolves,
			ColdSolves:  bs.Solver.ColdSolves,
		}
	}
	return st
}

func (srv *Server) handleStatsz(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, srv.Stats())
}

type drainResponse struct {
	Drained bool  `json:"drained"`
	Decided int64 `json:"decided"`
}

func (srv *Server) handleDrain(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		httpError(w, http.StatusMethodNotAllowed, "POST only")
		return
	}
	ok := srv.Drain(10 * time.Second)
	writeJSON(w, http.StatusOK, drainResponse{Drained: ok, Decided: srv.m.decided.Load()})
}

// --- helpers --------------------------------------------------------------

// retryAfterSeconds converts the backpressure window to the integral
// Retry-After header value, rounding up: a 1500ms window must emit 2, not 1 —
// truncating tells clients to retry before the window ends, turning every
// sub-second remainder into a guaranteed second 429.
func retryAfterSeconds(d time.Duration) int {
	s := int((d + time.Second - 1) / time.Second)
	if s < 1 {
		s = 1
	}
	return s
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	_ = json.NewEncoder(w).Encode(v)
}

func httpError(w http.ResponseWriter, code int, msg string) {
	writeJSON(w, code, struct {
		Error string `json:"error"`
	}{Error: msg})
}
