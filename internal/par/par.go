// Package par provides the bounded worker pool used by the embarrassingly
// parallel per-user and per-column stages of the arrangement pipeline:
// admissible-set enumeration, LP-rounding sampling, weight-table
// construction and simplex pricing updates.
//
// Determinism contract: callers pass loop bodies whose iterations are
// mutually independent and write only to iteration-owned slots (sets[i],
// rvec[j], ...). Under that contract the results are bit-identical for every
// worker count, so "parallel" never means "nondeterministic" anywhere in
// this repository — the property the end-to-end GOMAXPROCS invariance tests
// pin down.
package par

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// Workers resolves a worker-count option: n > 0 is taken literally, anything
// else means runtime.GOMAXPROCS(0).
func Workers(n int) int {
	if n > 0 {
		return n
	}
	return runtime.GOMAXPROCS(0)
}

// Ranges splits [0, n) into contiguous chunks of at least grain iterations
// and runs fn(lo, hi) on them from a pool of at most workers goroutines.
// Chunks are handed out dynamically (atomic cursor), so partitioning — but
// never the per-iteration arithmetic — depends on scheduling. With
// workers <= 1, or when n fits a single chunk, fn runs inline on the calling
// goroutine: small inputs pay zero synchronization.
func Ranges(workers, n, grain int, fn func(lo, hi int)) {
	RangesAt(workers, 0, n, grain, fn)
}

// RangesAt is Ranges over the half-open interval [base, end) instead of
// [0, n): fn receives absolute positions. It exists so callers iterating a
// segment of a larger index space (the level-scheduled triangular solves
// walk one level's slice of a permutation array at a time) avoid an
// offset-translating closure per segment.
func RangesAt(workers, base, end, grain int, fn func(lo, hi int)) {
	n := end - base
	if n <= 0 {
		return
	}
	if grain < 1 {
		grain = 1
	}
	workers = Workers(workers)
	if workers > n/grain {
		workers = n / grain
	}
	if workers <= 1 {
		fn(base, end)
		return
	}
	var cursor atomic.Int64
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				lo := int(cursor.Add(int64(grain))) - grain
				if lo >= n {
					return
				}
				hi := lo + grain
				if hi > n {
					hi = n
				}
				fn(base+lo, base+hi)
			}
		}()
	}
	wg.Wait()
}

// ForLevels runs a level schedule: ptr[l]:ptr[l+1] delimits level l's slice
// of some order array, levels run strictly in sequence (a barrier between
// levels), and the positions within one level are processed on the pool via
// RangesAt. Narrow levels run inline on the calling goroutine, so a deep,
// thin schedule degenerates to the sequential loop plus bounds checks
// rather than to goroutine churn. The determinism contract is the package's
// usual one, per level: iterations of one level must be mutually
// independent, may read anything written by earlier levels, and must write
// only iteration-owned slots.
func ForLevels(workers int, ptr []int32, grain int, fn func(lo, hi int)) {
	for l := 0; l+1 < len(ptr); l++ {
		RangesAt(workers, int(ptr[l]), int(ptr[l+1]), grain, fn)
	}
}

// For runs fn(i) for every i in [0, n) on the bounded pool, chunked by
// grain. It is Ranges with a per-iteration body.
func For(workers, n, grain int, fn func(i int)) {
	Ranges(workers, n, grain, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			fn(i)
		}
	})
}

// Do runs fn(i) for every i in [0, n) with one task per index — For with
// grain 1, named for the "fixed set of heterogeneous tasks" reading: the
// sharded serving layer runs one shard per index, each a long-lived planner
// over its own batch slice. The determinism contract is the same: bodies
// must be independent and write only index-owned state.
func Do(workers, n int, fn func(i int)) {
	For(workers, n, 1, fn)
}
