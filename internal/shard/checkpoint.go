package shard

import (
	"fmt"
	"math"
	"sort"

	"github.com/ebsn/igepa/internal/wal"
)

// EngineState is the serializable serving state of an Engine — everything a
// warm boot needs to continue bit-identically from a checkpoint: the merged
// decisions, the lease table, and the counters. Planner loads are derived
// from the decision sets on restore (they are a pure projection); per-shard
// utility is stored as raw float64 bits because it is accumulated
// incrementally in arrival order and a re-summation would round differently.
type EngineState struct {
	// Configuration fingerprint: a checkpoint only restores into an engine
	// built with the same partition-determining options.
	Shards int   `json:"shards"`
	Batch  int   `json:"batch"`
	Seed   int64 `json:"seed"`
	// Cluster-mode fingerprint (zero outside cluster mode): the cluster
	// width and this process's shard index.
	ClusterShards int `json:"cluster_shards,omitempty"`
	ClusterIndex  int `json:"cluster_index,omitempty"`

	Epochs     int   `json:"epochs"`
	Renewals   int   `json:"renewals"`
	MovedSeats int   `json:"moved_seats"`
	Arrivals   []int `json:"arrivals"`

	// UtilityBits[si] is math.Float64bits(ShardUtility(si)).
	UtilityBits []uint64 `json:"utility_bits"`
	// Budgets[si][v] is shard si's current lease on event v.
	Budgets [][]int `json:"budgets"`
	// Sets[u] is user u's current assignment (nil when undecided, cancelled
	// or empty — the States array at the serving layer disambiguates).
	Sets [][]int `json:"sets"`
	// Owned/Disowned are the migration ownership overrides (cluster mode
	// only): users adopted onto this shard and users exported off it.
	Owned    []int `json:"owned,omitempty"`
	Disowned []int `json:"disowned,omitempty"`
}

// CheckpointState captures the engine's serving state. The caller owns
// quiescence: no concurrent DispatchBatch/ArriveOn/CancelOn/RenewLeases
// (the serving layer holds every shard lock).
func (e *Engine) CheckpointState() *EngineState {
	nu := e.in.NumUsers()
	st := &EngineState{
		Shards: e.s, Batch: e.b, Seed: e.opt.Seed,
		ClusterShards: e.clusterS, ClusterIndex: e.clusterIdx,
		Epochs: e.epochs, Renewals: e.renewals, MovedSeats: e.moved,
		Arrivals:    append([]int(nil), e.arrivals...),
		UtilityBits: make([]uint64, e.s),
		Budgets:     make([][]int, e.s),
		Sets:        make([][]int, nu),
	}
	for si := 0; si < e.s; si++ {
		st.UtilityBits[si] = math.Float64bits(e.shardUtil[si])
		st.Budgets[si] = append([]int(nil), e.budgets[si]...)
	}
	for u := 0; u < nu; u++ {
		if set := e.parts[e.ShardOf(u)].Sets[u]; len(set) > 0 {
			st.Sets[u] = append([]int(nil), set...)
		}
	}
	if e.clusterS > 0 {
		st.Owned, st.Disowned = e.ownershipOverrides()
	}
	return st
}

// RestoreState installs a checkpointed state into a freshly built engine. It
// validates the configuration fingerprint, the lease invariant
// (Σ_s budget[s][v] = cv) and the decision sets, derives the planner loads,
// and restores the utility accumulators bit-exactly. The engine must not
// have served any arrivals yet.
func (e *Engine) RestoreState(st *EngineState) error {
	if st == nil {
		return &ConfigError{Field: "checkpoint", Reason: "nil state"}
	}
	if st.Shards != e.s || st.Batch != e.b || st.Seed != e.opt.Seed {
		return &ConfigError{Field: "checkpoint", Reason: fmt.Sprintf(
			"checkpoint for S=%d B=%d seed=%d, engine has S=%d B=%d seed=%d",
			st.Shards, st.Batch, st.Seed, e.s, e.b, e.opt.Seed)}
	}
	if st.ClusterShards != e.clusterS || (e.clusterS > 0 && st.ClusterIndex != e.clusterIdx) {
		return &ConfigError{Field: "checkpoint", Reason: fmt.Sprintf(
			"checkpoint for cluster shard %d/%d, engine is %d/%d",
			st.ClusterIndex, st.ClusterShards, e.clusterIdx, e.clusterS)}
	}
	nu, nv := e.in.NumUsers(), e.in.NumEvents()
	if len(st.Arrivals) != e.s || len(st.UtilityBits) != e.s || len(st.Budgets) != e.s {
		return &ConfigError{Field: "checkpoint", Reason: "per-shard arrays do not match shard count"}
	}
	if len(st.Sets) != nu {
		return &ConfigError{Field: "checkpoint", Reason: fmt.Sprintf(
			"checkpoint covers %d users, instance has %d", len(st.Sets), nu)}
	}
	for si := 0; si < e.s; si++ {
		if len(st.Budgets[si]) != nv {
			return &ConfigError{Field: "checkpoint", Reason: fmt.Sprintf(
				"shard %d budget covers %d events, instance has %d", si, len(st.Budgets[si]), nv)}
		}
	}
	for v := 0; v < nv; v++ {
		sum := 0
		for si := 0; si < e.s; si++ {
			if st.Budgets[si][v] < 0 {
				return &ConfigError{Field: "checkpoint", Reason: fmt.Sprintf(
					"negative lease %d for shard %d event %d", st.Budgets[si][v], si, v)}
			}
			sum += st.Budgets[si][v]
		}
		if e.clusterS > 0 {
			// A cluster shard holds one slice of the lease table: the full
			// Σ_s budget[s][v] = cv invariant is the coordinator's to keep;
			// locally the slice just must not exceed the capacity.
			if sum > e.in.Events[v].Capacity {
				return &ConfigError{Field: "checkpoint", Reason: fmt.Sprintf(
					"event %d has %d seats leased on one cluster shard, capacity %d", v, sum, e.in.Events[v].Capacity)}
			}
		} else if sum != e.in.Events[v].Capacity {
			return &ConfigError{Field: "checkpoint", Reason: fmt.Sprintf(
				"event %d has %d seats leased, capacity %d", v, sum, e.in.Events[v].Capacity)}
		}
	}
	// Derive per-shard loads from the sets and check them against the leases
	// before touching any engine state.
	loads := make([][]int, e.s)
	for si := range loads {
		loads[si] = make([]int, nv)
	}
	for u, set := range st.Sets {
		si := e.ShardOf(u)
		for _, v := range set {
			if v < 0 || v >= nv {
				return &ConfigError{Field: "checkpoint", Reason: fmt.Sprintf(
					"user %d assigned unknown event %d", u, v)}
			}
			loads[si][v]++
		}
	}
	for si := 0; si < e.s; si++ {
		for v := 0; v < nv; v++ {
			if loads[si][v] > st.Budgets[si][v] {
				return &ConfigError{Field: "checkpoint", Reason: fmt.Sprintf(
					"shard %d grants %d seats of event %d over a lease of %d",
					si, loads[si][v], v, st.Budgets[si][v])}
			}
		}
	}
	// Install. Budgets and loads are copied element-wise into the existing
	// slices: the planners alias them.
	for si := 0; si < e.s; si++ {
		copy(e.budgets[si], st.Budgets[si])
		copy(e.planners[si].loads, loads[si])
		e.shardUtil[si] = math.Float64frombits(st.UtilityBits[si])
	}
	copy(e.arrivals, st.Arrivals)
	for u, set := range st.Sets {
		if len(set) > 0 {
			e.parts[e.ShardOf(u)].Sets[u] = append([]int(nil), set...)
		}
	}
	e.epochs = st.Epochs
	e.renewals = st.Renewals
	e.moved = st.MovedSeats
	if e.clusterS > 0 {
		e.restoreOwnership(st.Owned, st.Disowned)
	}
	return nil
}

// NoteRestored feeds one recovered decision to the live-bound shadow (no-op
// without Options.LiveBound): a restored decided user left the remaining
// problem before this process was born, and the shadow must know. Call once
// per decided user after RestoreState, then UpdateBound.
func (e *Engine) NoteRestored(u int, events []int) {
	if e.bound != nil {
		e.bound.record(e.ShardOf(u), u, events, false)
	}
}

// SetBids replaces user u's bid set (sorted, deduplicated), rebuilds the
// instance's derived tables and refreshes the engine's weight view — the one
// implementation of the bid-replacement stop-the-world shared by the HTTP
// layer and WAL replay. The caller owns exclusion across every shard.
func (e *Engine) SetBids(u int, bids []int) []int {
	norm := append([]int(nil), bids...)
	sort.Ints(norm)
	j := 0
	for i, v := range norm {
		if i == 0 || v != norm[i-1] {
			norm[j] = v
			j++
		}
	}
	norm = norm[:j]
	e.in.Users[u].Bids = norm
	e.in.RebuildBidders()
	e.in.Weights() // eager: serving goroutines must never race the lazy build
	e.RefreshWeights()
	e.NoteBidUpdate(u)
	return norm
}

// Apply replays one WAL operation against the engine — the recovery path's
// single entry point, reproducing exactly what the serving layer did when it
// logged the op. A *LeaseError from a renewal is returned after the renewal
// state has advanced (matching the live path, which counts it and serves
// on); every other error means the op is invalid against this instance and
// nothing was applied.
func (e *Engine) Apply(op wal.Op) error {
	nu := e.in.NumUsers()
	switch op.Kind {
	case wal.OpBid:
		if op.User < 0 || op.User >= nu {
			return fmt.Errorf("shard: replay: bid for unknown user %d", op.User)
		}
		e.ArriveOn(e.ShardOf(op.User), op.User)
		return nil
	case wal.OpBatch:
		for _, u := range op.Users {
			if u < 0 || u >= nu {
				return fmt.Errorf("shard: replay: batch with unknown user %d", u)
			}
		}
		// The Serve/replay-mode schedule: renew before every batch after the
		// first, fed with the batch about to run. Derived from engine state
		// so the log needs no renewal records in replay mode.
		var lerr error
		if e.epochs > 0 && e.s > 1 {
			if _, err := e.RenewLeases(op.Users); err != nil {
				lerr = err
			}
		}
		e.DispatchBatch(op.Users)
		return lerr
	case wal.OpRenew:
		for _, u := range op.Users {
			if u < 0 || u >= nu {
				return fmt.Errorf("shard: replay: renewal with unknown user %d", u)
			}
		}
		if e.s == 1 {
			// A single shard holds the whole capacity table; the serving
			// layer never renews (or logs renewals for) S=1, so a stray
			// record is a schedule no-op, not a reason to fail recovery.
			return nil
		}
		_, err := e.RenewLeases(op.Users)
		return err
	case wal.OpCancel:
		if op.User < 0 || op.User >= nu {
			return fmt.Errorf("shard: replay: cancel for unknown user %d", op.User)
		}
		e.CancelOn(e.ShardOf(op.User), op.User)
		return nil
	case wal.OpLease:
		if e.clusterS == 0 {
			return fmt.Errorf("shard: replay: lease install outside cluster mode")
		}
		_, err := e.InstallLease(op.Budget)
		return err
	case wal.OpExport:
		_, err := e.ExportUsers(op.Users)
		return err
	case wal.OpAdopt:
		return e.AdoptUsers(&Migration{Users: op.Users, Sets: op.Sets})
	case wal.OpSetBids:
		if op.User < 0 || op.User >= nu {
			return fmt.Errorf("shard: replay: set_bids for unknown user %d", op.User)
		}
		for _, v := range op.Bids {
			if v < 0 || v >= e.in.NumEvents() {
				return fmt.Errorf("shard: replay: set_bids with unknown event %d", v)
			}
		}
		e.SetBids(op.User, op.Bids)
		return nil
	default:
		return fmt.Errorf("shard: replay: unknown op kind %q", op.Kind)
	}
}
