package lp

import (
	"fmt"
	"math"
	"sort"
)

// luFactors is a sparse LU factorization of a square basis matrix B with
// row partial pivoting and a sparsity-oriented column order:
//
//	B[:, colOrder[k]] is eliminated at step k, pivoting on original row
//	pivRow[k], so that  P·B·Q = L·U  with P, Q the row/column permutations
//	and L unit-lower-triangular, U upper-triangular, both in "step" space.
//
// L and U are stored column-wise: lIdx[k]/lVal[k] hold the strictly-lower
// entries of L's column k (step indices > k), uIdx[k]/uVal[k] the
// strictly-upper entries of U's column k (step indices < k), and uDiag[k]
// the diagonal pivot.
type luFactors struct {
	m        int
	colOrder []int // step -> basis position
	pivRow   []int // step -> original row
	pos      []int // original row -> step

	lIdx  [][]int32
	lVal  [][]float64
	uIdx  [][]int32
	uVal  [][]float64
	uDiag []float64
}

// stepHeap is a small binary min-heap of step indices used to process
// eliminations in increasing step order during factorization.
type stepHeap []int

func (h *stepHeap) push(x int) {
	*h = append(*h, x)
	i := len(*h) - 1
	for i > 0 {
		p := (i - 1) / 2
		if (*h)[p] <= (*h)[i] {
			break
		}
		(*h)[p], (*h)[i] = (*h)[i], (*h)[p]
		i = p
	}
}

func (h *stepHeap) pop() int {
	old := *h
	top := old[0]
	last := len(old) - 1
	old[0] = old[last]
	*h = old[:last]
	i, n := 0, last
	for {
		l, r := 2*i+1, 2*i+2
		sm := i
		if l < n && (*h)[l] < (*h)[sm] {
			sm = l
		}
		if r < n && (*h)[r] < (*h)[sm] {
			sm = r
		}
		if sm == i {
			break
		}
		(*h)[i], (*h)[sm] = (*h)[sm], (*h)[i]
		i = sm
	}
	return top
}

// luFactorize computes the factorization of the m×m matrix whose columns are
// cols. Columns are eliminated in order of increasing nonzero count (slacks
// and other singletons first), an effective cheap fill-reducing heuristic
// for the near-network bases of the benchmark LP. Returns an error if the
// matrix is numerically singular.
func luFactorize(m int, cols []Column) (*luFactors, error) {
	if len(cols) != m {
		return nil, fmt.Errorf("lp: lu of %dx%d matrix with %d columns", m, m, len(cols))
	}
	f := &luFactors{
		m:        m,
		colOrder: make([]int, m),
		pivRow:   make([]int, m),
		pos:      make([]int, m),
		lIdx:     make([][]int32, m),
		lVal:     make([][]float64, m),
		uIdx:     make([][]int32, m),
		uVal:     make([][]float64, m),
		uDiag:    make([]float64, m),
	}
	for i := range f.colOrder {
		f.colOrder[i] = i
		f.pos[i] = -1
	}
	sort.SliceStable(f.colOrder, func(a, b int) bool {
		return len(cols[f.colOrder[a]].Rows) < len(cols[f.colOrder[b]].Rows)
	})

	w := make([]float64, m)      // dense accumulator, original-row space
	inW := make([]bool, m)       // w[r] is live
	seen := make([]bool, m)      // step already processed this column
	touched := make([]int, 0, m) // live rows to reset
	var steps stepHeap           // pivoted steps pending elimination
	var processed []int          // steps to clear from seen

	// lRows holds L entries in original-row space while rows are still being
	// pivoted; they are translated to step space after the last column.
	lRows := make([][]int32, m)

	for k := 0; k < m; k++ {
		j := f.colOrder[k]
		col := cols[j]
		steps = steps[:0]
		processed = processed[:0]
		touched = touched[:0]
		for i, r := range col.Rows {
			if !inW[r] {
				inW[r] = true
				touched = append(touched, r)
			}
			w[r] += col.Vals[i]
			if f.pos[r] >= 0 && !seen[f.pos[r]] {
				seen[f.pos[r]] = true
				processed = append(processed, f.pos[r])
				steps.push(f.pos[r])
			}
		}
		// Forward-eliminate through previously factored columns in
		// increasing step order (a topological order of L).
		for len(steps) > 0 {
			js := steps.pop()
			pr := f.pivRow[js]
			alpha := w[pr]
			w[pr] = 0
			if alpha == 0 {
				continue
			}
			f.uIdx[k] = append(f.uIdx[k], int32(js))
			f.uVal[k] = append(f.uVal[k], alpha)
			for i, r32 := range lRows[js] {
				r := int(r32)
				if !inW[r] {
					inW[r] = true
					touched = append(touched, r)
				}
				w[r] -= alpha * f.lVal[js][i]
				if p := f.pos[r]; p >= 0 && !seen[p] {
					seen[p] = true
					processed = append(processed, p)
					steps.push(p)
				}
			}
		}
		// Partial pivoting among the remaining (unpivoted) rows.
		piv, pr := 0.0, -1
		for _, r := range touched {
			if f.pos[r] >= 0 {
				continue
			}
			if a := math.Abs(w[r]); a > piv {
				piv, pr = a, r
			}
		}
		if pr < 0 || piv < 1e-12 {
			return nil, fmt.Errorf("lp: basis numerically singular at step %d", k)
		}
		pivVal := w[pr]
		f.pivRow[k] = pr
		f.pos[pr] = k
		f.uDiag[k] = pivVal
		for _, r := range touched {
			if f.pos[r] >= 0 {
				continue // pivot rows (incl. the current one) are not part of L
			}
			if v := w[r]; v != 0 {
				lRows[k] = append(lRows[k], int32(r))
				f.lVal[k] = append(f.lVal[k], v/pivVal)
			}
		}
		for _, r := range touched {
			w[r] = 0
			inW[r] = false
		}
		for _, s := range processed {
			seen[s] = false
		}
	}
	// Translate L's row indices to step space (every row now has a step).
	for k := 0; k < m; k++ {
		idx := make([]int32, len(lRows[k]))
		for i, r := range lRows[k] {
			idx[i] = int32(f.pos[r])
		}
		f.lIdx[k] = idx
	}
	return f, nil
}

// solveB computes d = B⁻¹a for a sparse right-hand side a given as
// (rows, vals) in original-row space. The result is written into out,
// indexed by basis position; work must be a zeroed scratch vector of
// length m and is returned zeroed.
func (f *luFactors) solveB(rows []int, vals []float64, out, work []float64) {
	z := work
	for i, r := range rows {
		z[f.pos[r]] += vals[i]
	}
	// L z' = z (unit lower, forward)
	for k := 0; k < f.m; k++ {
		v := z[k]
		if v == 0 {
			continue
		}
		idx, val := f.lIdx[k], f.lVal[k]
		for i, s := range idx {
			z[s] -= v * val[i]
		}
	}
	// U t = z' (backward, column-oriented)
	for k := f.m - 1; k >= 0; k-- {
		v := z[k] / f.uDiag[k]
		z[k] = 0
		if v != 0 {
			idx, val := f.uIdx[k], f.uVal[k]
			for i, s := range idx {
				z[s] -= v * val[i]
			}
		}
		out[f.colOrder[k]] = v
	}
}

// solveBT computes y with Bᵀy = c, where c is indexed by basis position.
// The result is written into out, indexed by original row; work must be a
// zeroed scratch vector of length m and is returned zeroed.
func (f *luFactors) solveBT(c, out, work []float64) {
	t := work
	// Uᵀ t = Qᵀc (forward in step order, row-oriented via U's columns)
	for k := 0; k < f.m; k++ {
		v := c[f.colOrder[k]]
		idx, val := f.uIdx[k], f.uVal[k]
		for i, s := range idx {
			v -= val[i] * t[s]
		}
		t[k] = v / f.uDiag[k]
	}
	// Lᵀ s = t (backward, row-oriented via L's columns)
	for k := f.m - 1; k >= 0; k-- {
		v := t[k]
		idx, val := f.lIdx[k], f.lVal[k]
		for i, s := range idx {
			v -= val[i] * t[s]
		}
		t[k] = v
	}
	for k := 0; k < f.m; k++ {
		out[f.pivRow[k]] = t[k]
		t[k] = 0
	}
}
