package igepa_test

import (
	"bytes"
	"math"
	"strings"
	"testing"

	"github.com/ebsn/igepa"
)

func smallInstance(t *testing.T) *igepa.Instance {
	t.Helper()
	in, err := igepa.Synthetic(igepa.SyntheticConfig{
		Seed: 7, NumEvents: 20, NumUsers: 50,
		MaxEventCap: 5, MaxUserCap: 3, MinBids: 2, MaxBids: 5,
	})
	if err != nil {
		t.Fatal(err)
	}
	return in
}

func TestPublicPipeline(t *testing.T) {
	in := smallInstance(t)
	res, err := igepa.LPPacking(in, igepa.LPPackingOptions{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if err := igepa.Validate(in, res.Arrangement); err != nil {
		t.Fatalf("infeasible: %v", err)
	}
	if res.Utility <= 0 || res.Utility > res.LPObjective+1e-9 {
		t.Fatalf("utility %v outside (0, LP=%v]", res.Utility, res.LPObjective)
	}
	if got := igepa.Utility(in, res.Arrangement); math.Abs(got-res.Utility) > 1e-12 {
		t.Fatal("Utility disagrees with result")
	}
}

// TestPublicPlanner drives the incremental serving loop through the public
// API: bids expire, capacities shrink, and every Update stays feasible with
// a non-increasing opportunity bound.
func TestPublicPlanner(t *testing.T) {
	in := smallInstance(t)
	p, err := igepa.NewPlanner(in, igepa.LPPackingOptions{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	prevBound := p.Objective()
	for step := 0; step < 4; step++ {
		u := step * 7 % in.NumUsers()
		in.Users[u].Bids = nil // user leaves
		var d igepa.PlannerDelta
		d.Users = append(d.Users, u)
		if v := step % in.NumEvents(); in.Events[v].Capacity > 0 {
			in.Events[v].Capacity--
			d.Events = append(d.Events, v)
		}
		res, err := p.Update(d)
		if err != nil {
			t.Fatal(err)
		}
		if err := igepa.Validate(in, res.Arrangement); err != nil {
			t.Fatalf("step %d: infeasible: %v", step, err)
		}
		if len(res.Arrangement.Sets[u]) != 0 {
			t.Fatalf("step %d: departed user %d still assigned %v", step, u, res.Arrangement.Sets[u])
		}
		// shrinking the instance can only lower the LP bound
		if res.LPObjective > prevBound+1e-9 {
			t.Fatalf("step %d: bound rose from %v to %v", step, prevBound, res.LPObjective)
		}
		prevBound = res.LPObjective
	}
	if st := p.Stats(); st.WarmSolves == 0 {
		t.Errorf("no update took the warm path: %+v", st)
	}
}

func TestSolveRegistry(t *testing.T) {
	in := smallInstance(t)
	for _, name := range igepa.AlgorithmNames() {
		if name == "optimal" {
			continue // |U|=50 exceeds the exact solver's limit; tested below
		}
		arr, err := igepa.Solve(in, name, 3)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if err := igepa.Validate(in, arr); err != nil {
			t.Fatalf("%s: infeasible: %v", name, err)
		}
	}
	if _, err := igepa.Solve(in, "gg", 0); err != nil {
		t.Errorf("alias gg rejected: %v", err)
	}
	if _, err := igepa.Solve(in, "nope", 0); err == nil {
		t.Error("unknown algorithm accepted")
	}
	if _, err := igepa.Solve(in, "optimal", 0); err == nil {
		t.Error("optimal accepted an oversized instance")
	}
}

func TestSolveOptimalSmall(t *testing.T) {
	in, err := igepa.Synthetic(igepa.SyntheticConfig{
		Seed: 3, NumEvents: 6, NumUsers: 8,
		MaxEventCap: 2, MaxUserCap: 2, MinBids: 2, MaxBids: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	arr, opt, err := igepa.Optimal(in)
	if err != nil {
		t.Fatal(err)
	}
	if err := igepa.Validate(in, arr); err != nil {
		t.Fatal(err)
	}
	gg := igepa.Greedy(in)
	if igepa.Utility(in, gg) > opt+1e-9 {
		t.Error("greedy beat the optimum")
	}
	via, err := igepa.Solve(in, "optimal", 0)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(igepa.Utility(in, via)-opt) > 1e-9 {
		t.Error("Solve(optimal) differs from Optimal")
	}
}

func TestInstanceRoundTrip(t *testing.T) {
	in := smallInstance(t)
	var buf bytes.Buffer
	if err := igepa.SaveInstance(&buf, in); err != nil {
		t.Fatal(err)
	}
	back, err := igepa.LoadInstance(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.NumEvents() != in.NumEvents() || back.NumUsers() != in.NumUsers() {
		t.Fatal("dimensions changed in round trip")
	}
	if back.Beta != in.Beta {
		t.Fatalf("beta %v -> %v", in.Beta, back.Beta)
	}
	// conflicts preserved on all pairs
	for v := 0; v < in.NumEvents(); v++ {
		for w := 0; w < in.NumEvents(); w++ {
			if in.Conflicts(v, w) != back.Conflicts(v, w) {
				t.Fatalf("conflict (%d,%d) changed", v, w)
			}
		}
	}
	// interests preserved on bid pairs
	for u := range in.Users {
		for _, v := range in.Users[u].Bids {
			if math.Abs(in.Interest(u, v)-back.Interest(u, v)) > 1e-12 {
				t.Fatalf("interest (%d,%d) changed", u, v)
			}
		}
	}
	// algorithms behave identically on the round-tripped instance
	a := igepa.Greedy(in)
	b := igepa.Greedy(back)
	if math.Abs(igepa.Utility(in, a)-igepa.Utility(back, b)) > 1e-12 {
		t.Fatal("greedy differs after round trip")
	}
}

func TestLoadInstanceRejectsGarbage(t *testing.T) {
	cases := []string{
		"not json",
		`{"beta":"2","events":[],"users":[],"conflicts":[]}`,                                                        // beta out of range
		`{"beta":"0.5","events":[{"capacity":1}],"users":[],"conflicts":[[0,9]]}`,                                   // conflict out of range
		`{"beta":"0.5","events":[{"capacity":1}],"users":[{"capacity":1,"bids":[0],"interest":[]}],"conflicts":[]}`, // interest/bids mismatch
	}
	for i, c := range cases {
		if _, err := igepa.LoadInstance(strings.NewReader(c)); err == nil {
			t.Errorf("case %d accepted", i)
		}
	}
}

func TestArrangementRoundTrip(t *testing.T) {
	in := smallInstance(t)
	arr := igepa.Greedy(in)
	var buf bytes.Buffer
	if err := igepa.SaveArrangement(&buf, arr); err != nil {
		t.Fatal(err)
	}
	back, err := igepa.LoadArrangement(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if err := igepa.Validate(in, back); err != nil {
		t.Fatalf("round-tripped arrangement infeasible: %v", err)
	}
	if igepa.Utility(in, back) != igepa.Utility(in, arr) {
		t.Fatal("utility changed in round trip")
	}
}

func TestLocalSearchPublic(t *testing.T) {
	in := smallInstance(t)
	start := igepa.RandomU(in, 1)
	improved := igepa.LocalSearch(in, start, 0)
	if igepa.Utility(in, improved) < igepa.Utility(in, start)-1e-9 {
		t.Error("local search decreased utility")
	}
	if err := igepa.Validate(in, improved); err != nil {
		t.Fatal(err)
	}
}

func TestComputeStatsPublic(t *testing.T) {
	in := smallInstance(t)
	st := igepa.ComputeStats(in)
	if st.NumEvents != 20 || st.NumUsers != 50 {
		t.Fatalf("stats wrong: %+v", st)
	}
}

func TestMeetupPublic(t *testing.T) {
	in, err := igepa.Meetup(igepa.MeetupConfig{Seed: 1, NumUsers: 150, NumEvents: 40})
	if err != nil {
		t.Fatal(err)
	}
	res, err := igepa.LPPacking(in, igepa.LPPackingOptions{Seed: 2, MaxSetsPerUser: 500})
	if err != nil {
		t.Fatal(err)
	}
	if err := igepa.Validate(in, res.Arrangement); err != nil {
		t.Fatal(err)
	}
}
