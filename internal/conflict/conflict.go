// Package conflict implements conflict predicates σ(lv, lv') between events
// (Definition 3) and the conflict-graph utilities the rest of the system
// builds on: an explicit symmetric matrix with bitset rows (the hot path of
// admissible-set enumeration), time-interval overlap, random conflict
// generation with probability pcf, and greedy clique grouping (used by the
// synthetic bid generator to model users bidding inside groups of mutually
// conflicting events).
package conflict

import (
	"github.com/ebsn/igepa/internal/bitset"
	"github.com/ebsn/igepa/internal/xrand"
)

// Matrix is an explicit symmetric conflict relation over n events, stored as
// one bitset row per event. An event never conflicts with itself.
type Matrix struct {
	rows []*bitset.Set
	n    int
}

// NewMatrix returns an empty (conflict-free) relation over n events.
func NewMatrix(n int) *Matrix {
	rows := make([]*bitset.Set, n)
	for i := range rows {
		rows[i] = bitset.New(n)
	}
	return &Matrix{rows: rows, n: n}
}

// Len returns the number of events n.
func (m *Matrix) Len() int { return m.n }

// Add marks events v and w as conflicting. Adding (v,v) is ignored.
func (m *Matrix) Add(v, w int) {
	if v == w {
		return
	}
	m.rows[v].Add(w)
	m.rows[w].Add(v)
}

// Conflicts reports whether v and w conflict. It has the signature of
// model.ConflictFunc.
func (m *Matrix) Conflicts(v, w int) bool {
	if v == w {
		return false
	}
	return m.rows[v].Contains(w)
}

// Row returns the bitset of events conflicting with v. The returned set is
// shared; callers must not modify it.
func (m *Matrix) Row(v int) *bitset.Set { return m.rows[v] }

// NumPairs returns the number of unordered conflicting pairs.
func (m *Matrix) NumPairs() int {
	total := 0
	for _, r := range m.rows {
		total += r.Count()
	}
	return total / 2
}

// Pairs returns all unordered conflicting pairs (v < w), ordered
// lexicographically. Used by the JSON codec to serialize any conflict
// function explicitly.
func (m *Matrix) Pairs() [][2]int {
	var ps [][2]int
	for v := 0; v < m.n; v++ {
		m.rows[v].ForEach(func(w int) {
			if w > v {
				ps = append(ps, [2]int{v, w})
			}
		})
	}
	return ps
}

// FromFunc materializes any symmetric conflict predicate over n events into
// a Matrix by evaluating it on all unordered pairs.
func FromFunc(n int, f func(v, w int) bool) *Matrix {
	m := NewMatrix(n)
	for v := 0; v < n; v++ {
		for w := v + 1; w < n; w++ {
			if f(v, w) {
				m.Add(v, w)
			}
		}
	}
	return m
}

// FromPairs builds a Matrix over n events from an explicit pair list.
func FromPairs(n int, pairs [][2]int) *Matrix {
	m := NewMatrix(n)
	for _, p := range pairs {
		m.Add(p[0], p[1])
	}
	return m
}

// Random returns a conflict matrix where each unordered pair conflicts
// independently with probability pcf, the synthetic-dataset model of
// Table I.
func Random(n int, pcf float64, rng *xrand.RNG) *Matrix {
	m := NewMatrix(n)
	for v := 0; v < n; v++ {
		for w := v + 1; w < n; w++ {
			if rng.Bool(pcf) {
				m.Add(v, w)
			}
		}
	}
	return m
}

// FromIntervals builds the time-overlap conflict relation used by the
// Meetup-like dataset: events v and w conflict iff their half-open time
// intervals [start, end) overlap. Slices must have equal length.
func FromIntervals(start, end []int64) *Matrix {
	if len(start) != len(end) {
		panic("conflict: start/end length mismatch")
	}
	n := len(start)
	m := NewMatrix(n)
	for v := 0; v < n; v++ {
		for w := v + 1; w < n; w++ {
			if start[v] < end[w] && start[w] < end[v] {
				m.Add(v, w)
			}
		}
	}
	return m
}

// Groups partitions events into greedy conflict cliques: events are scanned
// in index order and each joins the first existing group it conflicts with
// entirely (every member), otherwise it starts a new group. The result is a
// partition of 0..n-1 into groups of pairwise-conflicting events.
//
// The synthetic bid generator draws each user's bids from a few such groups,
// reproducing the paper's observation that "users tend to bid a group of
// similar and often conflicting events".
func (m *Matrix) Groups() [][]int {
	var groups [][]int
next:
	for v := 0; v < m.n; v++ {
		for gi, g := range groups {
			all := true
			for _, w := range g {
				if !m.Conflicts(v, w) {
					all = false
					break
				}
			}
			if all {
				groups[gi] = append(groups[gi], v)
				continue next
			}
		}
		groups = append(groups, []int{v})
	}
	return groups
}
