package lp

import (
	"bytes"
	"strings"
	"testing"

	"github.com/ebsn/igepa/internal/xrand"
)

func TestTraceEmitsProgress(t *testing.T) {
	rng := xrand.New(8)
	p := randomPacking(rng, 30, 10, 5)
	var buf bytes.Buffer
	sol, err := (&Revised{Trace: &buf, TraceEvery: 1}).Solve(p)
	if err != nil {
		t.Fatal(err)
	}
	if sol.Status != Optimal {
		t.Fatalf("status %v", sol.Status)
	}
	out := buf.String()
	if !strings.Contains(out, "iter=") || !strings.Contains(out, "obj=") {
		t.Errorf("trace missing fields:\n%s", out)
	}
	if strings.Count(out, "\n") < sol.Iterations {
		t.Errorf("trace has %d lines for %d pivots", strings.Count(out, "\n"), sol.Iterations)
	}
}

func TestDevexAndDantzigAgreeOnPacking(t *testing.T) {
	rng := xrand.New(12)
	for trial := 0; trial < 15; trial++ {
		p := randomPacking(rng, 5+rng.Intn(25), 3+rng.Intn(10), 5)
		devex, err := (&Revised{Pricing: "devex"}).Solve(p)
		if err != nil {
			t.Fatalf("trial %d devex: %v", trial, err)
		}
		dantzig, err := (&Revised{Pricing: "dantzig"}).Solve(p)
		if err != nil {
			t.Fatalf("trial %d dantzig: %v", trial, err)
		}
		if diff := devex.Objective - dantzig.Objective; diff > 1e-6 || diff < -1e-6 {
			t.Fatalf("trial %d: devex %v vs dantzig %v", trial, devex.Objective, dantzig.Objective)
		}
		if err := Verify(p, devex, 1e-5); err != nil {
			t.Errorf("trial %d devex verify: %v", trial, err)
		}
	}
}

// DeduplicateColumns composed with a solve must preserve the optimum on
// benchmark-shaped LPs that actually contain duplicates.
func TestDeduplicateThenSolve(t *testing.T) {
	rng := xrand.New(77)
	p := randomPacking(rng, 20, 6, 4)
	// inject exact duplicates of the first five columns with lower rewards
	n0 := p.NumCols()
	for j := 0; j < 5 && j < n0; j++ {
		rows, vals := p.Col(j)
		rowsCopy := make([]int, len(rows))
		for k, r := range rows {
			rowsCopy[k] = int(r)
		}
		p.AddColumn(p.C[j]*0.5, rowsCopy, vals)
	}
	red, repr := DeduplicateColumns(p)
	if red.NumCols() >= p.NumCols() {
		t.Fatalf("dedup removed nothing: %d -> %d", p.NumCols(), red.NumCols())
	}
	for j := p.NumCols() - 5; j < p.NumCols(); j++ {
		if repr[j] == j {
			t.Errorf("duplicate column %d kept itself (reward should lose to original)", j)
		}
	}
	a, err := Solve(p)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Solve(red)
	if err != nil {
		t.Fatal(err)
	}
	if diff := a.Objective - b.Objective; diff > 1e-6 || diff < -1e-6 {
		t.Fatalf("dedup changed optimum: %v vs %v", a.Objective, b.Objective)
	}
}
