package lp

import (
	"math"
	"reflect"
	"runtime"
	"testing"

	"github.com/ebsn/igepa/internal/xrand"
)

// solvers under test; both must agree on every problem.
func bothSolvers() map[string]Backend {
	return map[string]Backend{
		"dense":   &Dense{},
		"revised": &Revised{},
		// small refactor interval exercises the refactorization path hard
		"revised-refactor2": &Revised{RefactorEvery: 2},
		// tiny pricing window exercises partial-pricing wraparound
		"revised-window1": &Revised{Pricing: "dantzig", PricingWindow: 1},
		"revised-devex":   &Revised{Pricing: "devex"},
		"revised-dantzig": &Revised{Pricing: "dantzig"},
	}
}

func solveBoth(t *testing.T, p *Problem, wantObj float64) {
	t.Helper()
	for name, s := range bothSolvers() {
		sol, err := s.Solve(p)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if sol.Status != Optimal {
			t.Fatalf("%s: status %v", name, sol.Status)
		}
		// Tolerance note: the revised solver's default anti-degeneracy RHS
		// perturbation shifts optima by O(perturbScale) relative; exactness
		// without perturbation is asserted separately in TestNoPerturbExact.
		if math.Abs(sol.Objective-wantObj) > 1e-5*(1+math.Abs(wantObj)) {
			t.Errorf("%s: objective %v, want %v", name, sol.Objective, wantObj)
		}
		if err := Verify(p, sol, 1e-6); err != nil {
			t.Errorf("%s: verification failed: %v", name, err)
		}
	}
}

func TestNoPerturbExact(t *testing.T) {
	// max 3x + 2y s.t. x + y <= 4, x + 3y <= 6 → obj 12 exactly
	p := NewProblem(2, []float64{4, 6}, []float64{3, 2}, []Column{
		{Rows: []int{0, 1}, Vals: []float64{1, 1}},
		{Rows: []int{0, 1}, Vals: []float64{1, 3}},
	})
	for _, pr := range []string{"devex", "dantzig"} {
		sol, err := (&Revised{NoPerturb: true, Pricing: pr}).Solve(p)
		if err != nil {
			t.Fatalf("%s: %v", pr, err)
		}
		if math.Abs(sol.Objective-12) > 1e-9 {
			t.Errorf("%s: objective %v, want exactly 12", pr, sol.Objective)
		}
	}
	if _, err := (&Revised{Pricing: "bogus"}).Solve(p); err == nil {
		t.Error("unknown pricing rule accepted")
	}
}

func TestKnownLP1(t *testing.T) {
	// max 3x + 2y s.t. x + y <= 4, x + 3y <= 6  → x=4, y=0, obj 12
	p := NewProblem(2, []float64{4, 6}, []float64{3, 2}, []Column{
		{Rows: []int{0, 1}, Vals: []float64{1, 1}},
		{Rows: []int{0, 1}, Vals: []float64{1, 3}},
	})
	solveBoth(t, p, 12)
}

func TestKnownLP2Fractional(t *testing.T) {
	// max x + y s.t. 2x + y <= 4, x + 2y <= 4 → x=y=4/3, obj 8/3
	p := NewProblem(2, []float64{4, 4}, []float64{1, 1}, []Column{
		{Rows: []int{0, 1}, Vals: []float64{2, 1}},
		{Rows: []int{0, 1}, Vals: []float64{1, 2}},
	})
	solveBoth(t, p, 8.0/3.0)
}

func TestAssignmentLP(t *testing.T) {
	// 2 users × 2 events, user rows ≤ 1, event rows cap 1:
	// max .9 x00 + .1 x01 + .8 x10 + .7 x11
	// optimal integral: u0→e0, u1→e1 → 1.6
	// rows 0,1 users; 2,3 events
	p := NewProblem(4, []float64{1, 1, 1, 1}, []float64{0.9, 0.1, 0.8, 0.7}, []Column{
		{Rows: []int{0, 2}, Vals: []float64{1, 1}},
		{Rows: []int{0, 3}, Vals: []float64{1, 1}},
		{Rows: []int{1, 2}, Vals: []float64{1, 1}},
		{Rows: []int{1, 3}, Vals: []float64{1, 1}},
	})
	solveBoth(t, p, 1.6)
}

func TestZeroRHSDegenerate(t *testing.T) {
	// capacity-zero row forces x = 0 in spite of positive reward
	p := NewProblem(1, []float64{0}, []float64{5},
		[]Column{{Rows: []int{0}, Vals: []float64{1}}})
	solveBoth(t, p, 0)
}

func TestAllNegativeObjective(t *testing.T) {
	p := NewProblem(1, []float64{5}, []float64{-1, -2}, []Column{
		{Rows: []int{0}, Vals: []float64{1}},
		{Rows: []int{0}, Vals: []float64{1}},
	})
	solveBoth(t, p, 0)
}

func TestUnbounded(t *testing.T) {
	// x has positive reward and no binding constraint coefficient
	p := NewProblem(1, []float64{1}, []float64{1}, []Column{{Rows: nil, Vals: nil}})
	for name, s := range bothSolvers() {
		_, err := s.Solve(p)
		if err != ErrUnbounded {
			t.Errorf("%s: err = %v, want ErrUnbounded", name, err)
		}
	}
}

func TestEmptyProblems(t *testing.T) {
	// no columns
	p := &Problem{NumRows: 2, B: []float64{1, 1}}
	solveBoth(t, p, 0)
	// no rows, non-positive objective
	p2 := NewProblem(0, nil, []float64{-1}, []Column{{}})
	sol, err := (&Revised{}).Solve(p2)
	if err != nil || sol.Objective != 0 {
		t.Errorf("rowless LP: sol=%+v err=%v", sol, err)
	}
	sol, err = (&Dense{}).Solve(p2)
	if err != nil || sol.Objective != 0 {
		t.Errorf("rowless LP (dense): sol=%+v err=%v", sol, err)
	}
}

func TestCheckRejectsMalformed(t *testing.T) {
	one := []Column{{Rows: []int{0}, Vals: []float64{1}}}
	cases := []*Problem{
		{NumRows: 1, C: []float64{1}, B: []float64{1}},  // objective without columns
		{NumRows: 1, B: []float64{1, 2}},                // wrong B length
		NewProblem(1, []float64{-1}, []float64{1}, one), // negative rhs
		NewProblem(1, []float64{1}, []float64{1},
			[]Column{{Rows: []int{5}, Vals: []float64{1}}}), // row out of range
		{NumRows: 1, C: []float64{1}, B: []float64{1},
			ColPtr: []int{0, 1}, Rows: []int32{0}, Vals: nil}, // rows/vals mismatch
		{NumRows: 1, C: []float64{1}, B: []float64{1},
			ColPtr: []int{0, 2}, Rows: []int32{0}, Vals: []float64{1}}, // ColPtr overruns storage
		{NumRows: 1, C: []float64{1, 1}, B: []float64{1},
			ColPtr: []int{0, 1, 0}, Rows: []int32{0}, Vals: []float64{1}}, // ColPtr not monotone
		{NumRows: 1, B: []float64{1},
			Rows: []int32{0}, Vals: []float64{1}}, // nonzeros without ColPtr
		NewProblem(1, []float64{1}, []float64{math.NaN()}, []Column{{}}), // NaN objective
	}
	for i, p := range cases {
		if err := p.Check(); err == nil {
			t.Errorf("case %d: malformed problem accepted", i)
		}
		if _, err := Solve(p); err == nil {
			t.Errorf("case %d: Solve accepted malformed problem", i)
		}
	}
}

func TestVerifyCatchesLies(t *testing.T) {
	p := NewProblem(1, []float64{2}, []float64{1},
		[]Column{{Rows: []int{0}, Vals: []float64{1}}})
	sol, err := Solve(p)
	if err != nil {
		t.Fatal(err)
	}
	bad := &Solution{Status: Optimal, X: []float64{5}, Y: sol.Y, Objective: 5}
	if err := Verify(p, bad, 1e-6); err == nil {
		t.Error("infeasible primal passed verification")
	}
	bad = &Solution{Status: Optimal, X: sol.X, Y: []float64{0}, Objective: sol.Objective}
	if err := Verify(p, bad, 1e-6); err == nil {
		t.Error("dual-infeasible solution passed verification")
	}
	bad = &Solution{Status: Optimal, X: []float64{1}, Y: []float64{1}, Objective: 1}
	if err := Verify(p, bad, 1e-6); err == nil {
		t.Error("suboptimal solution passed verification (duality gap)")
	}
}

// randomPacking builds a random packing LP in benchmark-LP shape: g groups
// ("users") of columns with ≤1 rows, plus k capacity rows ("events") hit by
// random subsets of columns.
func randomPacking(rng *xrand.RNG, g, k, colsPerGroup int) *Problem {
	m := g + k
	p := &Problem{NumRows: m, B: make([]float64, m)}
	for i := 0; i < g; i++ {
		p.B[i] = 1
	}
	for i := 0; i < k; i++ {
		p.B[g+i] = float64(1 + rng.Intn(4))
	}
	for grp := 0; grp < g; grp++ {
		nc := 1 + rng.Intn(colsPerGroup)
		for c := 0; c < nc; c++ {
			rows := []int{grp}
			vals := []float64{1}
			picks := 1 + rng.Intn(3)
			used := map[int]bool{}
			for e := 0; e < picks; e++ {
				r := g + rng.Intn(k)
				if !used[r] {
					used[r] = true
					rows = append(rows, r)
					vals = append(vals, 1)
				}
			}
			p.AddColumn(rng.Float64(), rows, vals)
		}
	}
	return p
}

// The central cross-validation property: on random benchmark-shaped packing
// LPs, the dense oracle and the revised solver find the same optimum and
// both certify.
func TestDenseRevisedAgreeOnRandomPacking(t *testing.T) {
	rng := xrand.New(4242)
	for trial := 0; trial < 40; trial++ {
		p := randomPacking(rng, 3+rng.Intn(20), 2+rng.Intn(10), 5)
		dsol, err := (&Dense{}).Solve(p)
		if err != nil {
			t.Fatalf("trial %d dense: %v", trial, err)
		}
		rsol, err := (&Revised{RefactorEvery: 8}).Solve(p)
		if err != nil {
			t.Fatalf("trial %d revised: %v", trial, err)
		}
		if math.Abs(dsol.Objective-rsol.Objective) > 5e-6*(1+math.Abs(dsol.Objective)) {
			t.Fatalf("trial %d: dense %v vs revised %v", trial, dsol.Objective, rsol.Objective)
		}
		if err := Verify(p, dsol, 1e-6); err != nil {
			t.Errorf("trial %d dense verify: %v", trial, err)
		}
		if err := Verify(p, rsol, 1e-6); err != nil {
			t.Errorf("trial %d revised verify: %v", trial, err)
		}
	}
}

// Dense-valued random LPs (not 0/1) exercise general pivoting.
func TestDenseRevisedAgreeOnGeneralLPs(t *testing.T) {
	rng := xrand.New(777)
	for trial := 0; trial < 30; trial++ {
		m := 2 + rng.Intn(12)
		n := 1 + rng.Intn(20)
		p := &Problem{NumRows: m, B: make([]float64, m)}
		for i := range p.B {
			p.B[i] = rng.Float64() * 10
		}
		for j := 0; j < n; j++ {
			var rows []int
			var vals []float64
			for r := 0; r < m; r++ {
				if rng.Bool(0.5) {
					rows = append(rows, r)
					vals = append(vals, rng.Float64()*3) // non-negative keeps it bounded
				}
			}
			if len(rows) == 0 { // ensure boundedness
				rows = append(rows, rng.Intn(m))
				vals = append(vals, 1)
			}
			p.AddColumn(rng.Float64()*2-0.5, rows, vals)
		}
		dsol, err := (&Dense{}).Solve(p)
		if err != nil {
			t.Fatalf("trial %d dense: %v", trial, err)
		}
		rsol, err := (&Revised{RefactorEvery: 4, PricingWindow: 3}).Solve(p)
		if err != nil {
			t.Fatalf("trial %d revised: %v", trial, err)
		}
		if math.Abs(dsol.Objective-rsol.Objective) > 5e-6*(1+math.Abs(dsol.Objective)) {
			t.Fatalf("trial %d: dense %v vs revised %v", trial, dsol.Objective, rsol.Objective)
		}
		if err := Verify(p, rsol, 1e-6); err != nil {
			t.Errorf("trial %d verify: %v", trial, err)
		}
	}
}

func TestAutoSolveSelects(t *testing.T) {
	rng := xrand.New(5)
	p := randomPacking(rng, 10, 5, 3)
	sol, err := Solve(p)
	if err != nil {
		t.Fatal(err)
	}
	if err := Verify(p, sol, 1e-6); err != nil {
		t.Error(err)
	}
}

func TestStatusString(t *testing.T) {
	if Optimal.String() != "optimal" || Unbounded.String() != "unbounded" ||
		IterLimit.String() != "iteration-limit" || Status(9).String() == "" {
		t.Error("Status.String broken")
	}
}

func TestIterLimit(t *testing.T) {
	rng := xrand.New(6)
	p := randomPacking(rng, 20, 10, 5)
	_, err := (&Dense{MaxIter: 1}).Solve(p)
	if err != ErrIterLimit {
		t.Errorf("dense: err = %v, want ErrIterLimit", err)
	}
	_, err = (&Revised{MaxIter: 1}).Solve(p)
	if err != ErrIterLimit {
		t.Errorf("revised: err = %v, want ErrIterLimit", err)
	}
}

func BenchmarkRevisedMediumPacking(b *testing.B) {
	rng := xrand.New(1)
	p := randomPacking(rng, 500, 100, 6)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := (&Revised{}).Solve(p); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDenseMediumPacking(b *testing.B) {
	rng := xrand.New(1)
	p := randomPacking(rng, 100, 30, 4)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := (&Dense{}).Solve(p); err != nil {
			b.Fatal(err)
		}
	}
}

// The pooled Devex passes must reproduce the sequential solve bit-for-bit:
// same pivots, same primal solution, same objective. ParallelThreshold 1
// forces the worker-pool code paths even on this small LP.
func TestRevisedDevexWorkerInvariance(t *testing.T) {
	rng := xrand.New(31)
	p := randomPacking(rng, 300, 60, 6)
	solve := func(workers int) *Solution {
		sol, err := (&Revised{Pricing: "devex", Workers: workers, ParallelThreshold: 1}).Solve(p)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		return sol
	}
	ref := solve(1)
	check := func(label string, workers int, got *Solution) {
		t.Helper()
		if got.Objective != ref.Objective || got.Iterations != ref.Iterations {
			t.Fatalf("%s workers=%d: objective/iterations %v/%d, want %v/%d",
				label, workers, got.Objective, got.Iterations, ref.Objective, ref.Iterations)
		}
		if !reflect.DeepEqual(got.X, ref.X) || !reflect.DeepEqual(got.Y, ref.Y) {
			t.Fatalf("%s workers=%d: solution vectors differ", label, workers)
		}
	}
	for _, workers := range []int{2, 4, 7, runtime.GOMAXPROCS(0)} {
		check("pooled-devex", workers, solve(workers))
	}

	// Force the level-scheduled LU solves on this tiny basis as well (the
	// default thresholds keep them sequential here) and require the same
	// solutions: the sequential reference above sits on the other side of
	// the parallel/sequential threshold boundary, so this pins both the
	// worker invariance of the level solves and the boundary itself.
	oldRows, oldRHS, oldGrain := luParallelMinRows, luParallelMinRHS, luLevelGrain
	luParallelMinRows, luParallelMinRHS, luLevelGrain = 1, 1, 1
	defer func() {
		luParallelMinRows, luParallelMinRHS, luLevelGrain = oldRows, oldRHS, oldGrain
	}()
	for _, workers := range []int{1, 2, 4, 7, runtime.GOMAXPROCS(0)} {
		check("level-lu", workers, solve(workers))
	}
}
