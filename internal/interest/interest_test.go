package interest

import (
	"math"
	"testing"
	"testing/quick"
)

func TestHashedDeterministicAndBounded(t *testing.T) {
	f := Hashed(42)
	if f(1, 2) != f(1, 2) {
		t.Fatal("not deterministic")
	}
	if f(1, 2) == Hashed(43)(1, 2) {
		t.Fatal("seed ignored")
	}
	for u := 0; u < 50; u++ {
		for v := 0; v < 50; v++ {
			x := f(u, v)
			if x < 0 || x >= 1 {
				t.Fatalf("SI(%d,%d) = %v outside [0,1)", u, v, x)
			}
		}
	}
}

func TestHashedMean(t *testing.T) {
	f := Hashed(7)
	sum := 0.0
	const n = 200
	for u := 0; u < n; u++ {
		for v := 0; v < n; v++ {
			sum += f(u, v)
		}
	}
	if mean := sum / (n * n); math.Abs(mean-0.5) > 0.01 {
		t.Errorf("mean = %v, want ≈0.5", mean)
	}
}

func TestCosineSim(t *testing.T) {
	cases := []struct {
		a, b []float64
		want float64
	}{
		{[]float64{1, 0}, []float64{1, 0}, 1},
		{[]float64{1, 0}, []float64{0, 1}, 0},
		{[]float64{1, 1}, []float64{1, 0}, 1 / math.Sqrt2},
		{[]float64{0, 0}, []float64{1, 0}, 0},  // zero vector
		{[]float64{1, 0}, []float64{-1, 0}, 0}, // negative clamped
		{[]float64{3, 4}, []float64{3, 4}, 1},  // scale invariant
		{[]float64{1, 2, 3}, []float64{1, 2}, CosineSim([]float64{1, 2, 3}, []float64{1, 2})},
	}
	for _, tc := range cases {
		got := CosineSim(tc.a, tc.b)
		if math.Abs(got-tc.want) > 1e-12 {
			t.Errorf("CosineSim(%v,%v) = %v, want %v", tc.a, tc.b, got, tc.want)
		}
	}
}

func TestCosineSimSymmetricAndBounded(t *testing.T) {
	f := func(a, b []float64) bool {
		x, y := CosineSim(a, b), CosineSim(b, a)
		return x == y && x >= 0 && x <= 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestJaccardSim(t *testing.T) {
	cases := []struct {
		a, b []float64
		want float64
	}{
		{[]float64{1, 1, 0}, []float64{1, 0, 0}, 0.5},
		{[]float64{1, 1}, []float64{1, 1}, 1},
		{[]float64{1, 0}, []float64{0, 1}, 0},
		{[]float64{0, 0}, []float64{0, 0}, 0},
		{[]float64{1}, []float64{1, 1}, 0.5}, // unequal lengths
	}
	for _, tc := range cases {
		got := JaccardSim(tc.a, tc.b)
		if math.Abs(got-tc.want) > 1e-12 {
			t.Errorf("JaccardSim(%v,%v) = %v, want %v", tc.a, tc.b, got, tc.want)
		}
	}
}

func TestCosineAndJaccardClosures(t *testing.T) {
	users := [][]float64{{1, 0}, {0, 1}}
	events := [][]float64{{1, 0}}
	c := Cosine(users, events)
	if got := c(0, 0); math.Abs(got-1) > 1e-12 {
		t.Errorf("Cosine closure (0,0) = %v", got)
	}
	if got := c(1, 0); got != 0 {
		t.Errorf("Cosine closure (1,0) = %v", got)
	}
	j := Jaccard(users, events)
	if got := j(0, 0); got != 1 {
		t.Errorf("Jaccard closure (0,0) = %v", got)
	}
}

func TestTable(t *testing.T) {
	tb := NewTable(3, 4)
	if got := tb.At(2, 3); got != 0 {
		t.Fatalf("fresh table At = %v", got)
	}
	tb.Set(2, 3, 0.75)
	if got := tb.At(2, 3); got != 0.75 {
		t.Fatalf("At after Set = %v", got)
	}
	if got := tb.At(2, 2); got != 0 {
		t.Fatalf("neighboring cell contaminated: %v", got)
	}
}

func TestTableSetPanicsOutOfRangeValue(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Set(1.5) did not panic")
		}
	}()
	NewTable(1, 1).Set(0, 0, 1.5)
}
