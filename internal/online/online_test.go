package online

import (
	"math"
	"testing"
	"testing/quick"

	"github.com/ebsn/igepa/internal/baselines"
	"github.com/ebsn/igepa/internal/conflict"
	"github.com/ebsn/igepa/internal/model"
	"github.com/ebsn/igepa/internal/model/modeltest"
	"github.com/ebsn/igepa/internal/xrand"
)

func randomInstance(seed int64) *model.Instance {
	rng := xrand.New(seed)
	nv := 2 + rng.Intn(8)
	nu := 2 + rng.Intn(10)
	conf := conflict.Random(nv, rng.Float64()*0.5, rng)
	in := &model.Instance{
		Conflicts: conf.Conflicts,
		Interest:  func(u, v int) float64 { return xrand.HashFloat(seed, u, v) },
		Beta:      0.5 + rng.Float64()*0.5,
	}
	for v := 0; v < nv; v++ {
		in.Events = append(in.Events, model.Event{Capacity: 1 + rng.Intn(3)})
	}
	for u := 0; u < nu; u++ {
		nb := 1 + rng.Intn(nv)
		seen := map[int]bool{}
		var bids []int
		for len(bids) < nb {
			v := rng.Intn(nv)
			if !seen[v] {
				seen[v] = true
				bids = append(bids, v)
			}
		}
		for i := 1; i < len(bids); i++ {
			for j := i; j > 0 && bids[j] < bids[j-1]; j-- {
				bids[j], bids[j-1] = bids[j-1], bids[j]
			}
		}
		in.Users = append(in.Users, model.User{
			Capacity: 1 + rng.Intn(3), Bids: bids, Degree: rng.Intn(nu),
		})
	}
	return in
}

func fullOrder(n int) []int {
	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	return order
}

func TestGreedyPlannerFeasibleAndBounded(t *testing.T) {
	f := func(seed int64) bool {
		in := randomInstance(seed)
		arr, err := Run(in, fullOrder(in.NumUsers()), NewGreedy(in, 0))
		if err != nil {
			return false
		}
		if modeltest.Check(in, arr) != nil {
			return false
		}
		// the online value can never beat the offline optimum
		_, opt, err := baselines.Optimal(in)
		if err != nil {
			return false
		}
		return model.Utility(in, arr) <= opt+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestGreedyTakesBestSetOnArrival(t *testing.T) {
	// one user, two non-conflicting events, cu=2: greedy must take both.
	in := &model.Instance{
		Events:    []model.Event{{Capacity: 1}, {Capacity: 1}},
		Users:     []model.User{{Capacity: 2, Bids: []int{0, 1}}},
		Conflicts: func(v, w int) bool { return false },
		Interest:  func(u, v int) float64 { return 0.5 },
		Beta:      1,
	}
	arr, err := Run(in, []int{0}, NewGreedy(in, 0))
	if err != nil {
		t.Fatal(err)
	}
	if len(arr.Sets[0]) != 2 {
		t.Fatalf("greedy took %v, want both events", arr.Sets[0])
	}
}

func TestCapacityConsumedAcrossArrivals(t *testing.T) {
	// two identical users, event capacity 1: only the first gets it.
	in := &model.Instance{
		Events: []model.Event{{Capacity: 1}},
		Users: []model.User{
			{Capacity: 1, Bids: []int{0}},
			{Capacity: 1, Bids: []int{0}},
		},
		Conflicts: func(v, w int) bool { return false },
		Interest:  func(u, v int) float64 { return 1 },
		Beta:      1,
	}
	arr, err := Run(in, []int{1, 0}, NewGreedy(in, 0))
	if err != nil {
		t.Fatal(err)
	}
	if len(arr.Sets[1]) != 1 || len(arr.Sets[0]) != 0 {
		t.Fatalf("arrival order not respected: %v", arr.Sets)
	}
}

func TestRunRejectsBadOrders(t *testing.T) {
	in := randomInstance(1)
	if _, err := Run(in, []int{0, 0}, NewGreedy(in, 0)); err == nil {
		t.Error("duplicate arrival accepted")
	}
	if _, err := Run(in, []int{in.NumUsers()}, NewGreedy(in, 0)); err == nil {
		t.Error("out-of-range arrival accepted")
	}
	// partial orders are fine: absent users simply get nothing
	arr, err := Run(in, nil, NewGreedy(in, 0))
	if err != nil || arr.Size() != 0 {
		t.Errorf("empty order: arr=%v err=%v", arr, err)
	}
}

func TestThresholdReservesForHeavyPairs(t *testing.T) {
	// Event capacity 2. A light user (w=0.2) arrives first, then two heavy
	// users (w=0.9). With Guard=0.5 and Tau=0.5 the light user may use only
	// the first (1-0.5)·2 = 1 seat... load 0 < 1 → admitted; the heavies
	// fill the rest. With pure greedy the outcome is the same here, so use
	// capacity 2, TWO light users first, one heavy: greedy gives
	// {light, light}; threshold keeps seat 2 for the heavy.
	w := []float64{0.2, 0.2, 0.9}
	in := &model.Instance{
		Events: []model.Event{{Capacity: 2}},
		Users: []model.User{
			{Capacity: 1, Bids: []int{0}},
			{Capacity: 1, Bids: []int{0}},
			{Capacity: 1, Bids: []int{0}},
		},
		Conflicts: func(v, wv int) bool { return false },
		Interest:  func(u, v int) float64 { return w[u] },
		Beta:      1,
	}
	order := []int{0, 1, 2}

	greedy, err := Run(in, order, NewGreedy(in, 0))
	if err != nil {
		t.Fatal(err)
	}
	if len(greedy.Sets[0]) != 1 || len(greedy.Sets[1]) != 1 || len(greedy.Sets[2]) != 0 {
		t.Fatalf("greedy baseline unexpected: %v", greedy.Sets)
	}

	th, err := Run(in, order, NewThreshold(in, 0.5, 0.5, 0))
	if err != nil {
		t.Fatal(err)
	}
	if len(th.Sets[0]) != 1 || len(th.Sets[1]) != 0 || len(th.Sets[2]) != 1 {
		t.Fatalf("threshold did not reserve: %v", th.Sets)
	}
	if model.Utility(in, th) <= model.Utility(in, greedy) {
		t.Error("reservation did not pay off on the crafted stream")
	}
}

func TestThresholdGuardZeroEqualsGreedy(t *testing.T) {
	f := func(seed int64) bool {
		in := randomInstance(seed)
		order := fullOrder(in.NumUsers())
		g, err := Run(in, order, NewGreedy(in, 0))
		if err != nil {
			return false
		}
		th, err := Run(in, order, NewThreshold(in, 0.7, 0, 0))
		if err != nil {
			return false
		}
		return math.Abs(model.Utility(in, g)-model.Utility(in, th)) < 1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestThresholdAlwaysFeasible(t *testing.T) {
	f := func(seed int64) bool {
		in := randomInstance(seed)
		rng := xrand.New(seed)
		order := rng.Perm(in.NumUsers())
		th, err := Run(in, order, NewThreshold(in, rng.Float64(), rng.Float64(), 0))
		if err != nil {
			return false
		}
		return modeltest.Check(in, th) == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestGuardClamping(t *testing.T) {
	in := randomInstance(3)
	if p := NewThreshold(in, 0.5, -2, 0); p.Guard != 0 {
		t.Errorf("Guard not clamped up: %v", p.Guard)
	}
	if p := NewThreshold(in, 0.5, 7, 0); p.Guard != 1 {
		t.Errorf("Guard not clamped down: %v", p.Guard)
	}
}

// --- threshold edge cases: tau/guard extremes, zero capacity, exhaustion ---

// TestThresholdTauZeroEqualsGreedy: with tau = 0 every pair is "heavy", so
// any guard value degenerates to pure greedy.
func TestThresholdTauZeroEqualsGreedy(t *testing.T) {
	f := func(seed int64) bool {
		in := randomInstance(seed)
		order := fullOrder(in.NumUsers())
		g, err := Run(in, order, NewGreedy(in, 0))
		if err != nil {
			return false
		}
		for _, guard := range []float64{0, 0.5, 1} {
			th, err := Run(in, order, NewThreshold(in, 0, guard, 0))
			if err != nil || !g.Equal(th) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

// TestThresholdGuardOneAdmitsOnlyHeavy: with Guard = 1 every seat is
// reserved, so pairs below tau are never granted — and with tau above every
// weight, nobody receives anything.
func TestThresholdGuardOneAdmitsOnlyHeavy(t *testing.T) {
	f := func(seed int64) bool {
		in := randomInstance(seed)
		order := fullOrder(in.NumUsers())
		th, err := Run(in, order, NewThreshold(in, 0.6, 1, 0))
		if err != nil || modeltest.Check(in, th) != nil {
			return false
		}
		wc := in.Weights()
		for u, set := range th.Sets {
			for _, v := range set {
				if wc.Of(u, v) < 0.6 {
					return false // light pair slipped past a full guard
				}
			}
		}
		// tau above any possible weight (w ≤ β·1 + (1-β)·1 = 1): nothing granted
		starve, err := Run(in, fullOrder(in.NumUsers()), NewThreshold(in, 1.1, 1, 0))
		return err == nil && starve.Size() == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

// TestOnlineZeroCapacityEvents: zero-capacity events are never granted by
// either planner, for any tau/guard combination including the extremes.
func TestOnlineZeroCapacityEvents(t *testing.T) {
	in := randomInstance(8)
	for v := 0; v < in.NumEvents(); v += 2 {
		in.Events[v].Capacity = 0
	}
	order := fullOrder(in.NumUsers())
	planners := []Planner{
		NewGreedy(in, 0),
		NewThreshold(in, 0, 0, 0),
		NewThreshold(in, 0.5, 0.5, 0),
		NewThreshold(in, 1, 1, 0),
	}
	for pi, p := range planners {
		arr, err := Run(in, order, p)
		if err != nil {
			t.Fatal(err)
		}
		modeltest.RequireFeasible(t, "planner", in, arr)
		load := arr.Loads(in.NumEvents())
		for v := 0; v < in.NumEvents(); v += 2 {
			if load[v] != 0 {
				t.Errorf("planner %d granted %d seats of zero-capacity event %d", pi, load[v], v)
			}
		}
	}
}

// TestCapacityExhaustionMidStream: when an event sells out mid-stream the
// remaining arrivals must fall back to their best set among still-open
// events rather than walking away empty.
func TestCapacityExhaustionMidStream(t *testing.T) {
	// event 0: the prize, capacity 1; event 1: consolation, capacity 3.
	// Three users bid both with cu = 1. The first arrival takes event 0
	// (higher weight); the rest must take event 1.
	w := map[int]float64{0: 0.9, 1: 0.4}
	in := &model.Instance{
		Events: []model.Event{{Capacity: 1}, {Capacity: 3}},
		Users: []model.User{
			{Capacity: 1, Bids: []int{0, 1}},
			{Capacity: 1, Bids: []int{0, 1}},
			{Capacity: 1, Bids: []int{0, 1}},
		},
		Conflicts: func(v, wv int) bool { return false },
		Interest:  func(u, v int) float64 { return w[v] },
		Beta:      1,
	}
	arr, err := Run(in, []int{2, 0, 1}, NewGreedy(in, 0))
	if err != nil {
		t.Fatal(err)
	}
	if len(arr.Sets[2]) != 1 || arr.Sets[2][0] != 0 {
		t.Fatalf("first arrival should take the prize: %v", arr.Sets)
	}
	for _, u := range []int{0, 1} {
		if len(arr.Sets[u]) != 1 || arr.Sets[u][0] != 1 {
			t.Fatalf("user %d should fall back to event 1: %v", u, arr.Sets)
		}
	}
	modeltest.RequireFeasible(t, "exhaustion", in, arr)

	// threshold with a guard: the consolation event guards its last seats
	// for heavy pairs, so with tau between the weights the later light
	// arrivals are refused once the open fraction is consumed.
	th, err := Run(in, []int{2, 0, 1}, NewThreshold(in, 0.6, 2.0/3.0, 0))
	if err != nil {
		t.Fatal(err)
	}
	// open seats of event 1 = (1-2/3)*3 = 1: user 0 takes it, user 1 gets nothing
	if len(th.Sets[0]) != 1 || th.Sets[0][0] != 1 || len(th.Sets[1]) != 0 {
		t.Fatalf("guard did not bite mid-stream: %v", th.Sets)
	}
}

// TestBudgetPlannersRespectExternalBudget pins the capacity-lease contract:
// a planner never grants beyond its budget even when the instance capacity
// is larger, raising the budget between arrivals admits later users, and
// Loads reflects every grant.
func TestBudgetPlannersRespectExternalBudget(t *testing.T) {
	in := &model.Instance{
		Events: []model.Event{{Capacity: 10}},
		Users: []model.User{
			{Capacity: 1, Bids: []int{0}},
			{Capacity: 1, Bids: []int{0}},
			{Capacity: 1, Bids: []int{0}},
		},
		Conflicts: func(v, w int) bool { return false },
		Interest:  func(u, v int) float64 { return 1 },
		Beta:      1,
	}
	budget := []int{1}
	p, err := NewGreedyBudget(in, budget, 0)
	if err != nil {
		t.Fatal(err)
	}
	if got := p.Arrive(0); len(got) != 1 {
		t.Fatalf("first arrival refused within budget: %v", got)
	}
	if got := p.Arrive(1); len(got) != 0 {
		t.Fatalf("budget exceeded: %v", got)
	}
	budget[0] = 2 // lease renewal grants one more seat
	if got := p.Arrive(2); len(got) != 1 {
		t.Fatalf("renewed budget not honored: %v", got)
	}
	if loads := p.Loads(); loads[0] != 2 {
		t.Fatalf("Loads = %v, want [2]", loads)
	}

	// threshold: the guard protects a fraction of the budget, not of the
	// instance capacity. Budget 2, guard 0.5, tau 0.9: light pairs may use
	// only (1-0.5)*2 = 1 seat.
	light := func(u, v int) float64 { return 0.5 }
	in2 := &model.Instance{
		Events:    []model.Event{{Capacity: 10}},
		Users:     in.Users,
		Conflicts: func(v, w int) bool { return false },
		Interest:  light,
		Beta:      1,
	}
	tb, err := NewThresholdBudget(in2, []int{2}, 0.9, 0.5, 0)
	if err != nil {
		t.Fatal(err)
	}
	if got := tb.Arrive(0); len(got) != 1 {
		t.Fatalf("first light arrival refused: %v", got)
	}
	if got := tb.Arrive(1); len(got) != 0 {
		t.Fatalf("guard on budget not honored: %v", got)
	}
}
