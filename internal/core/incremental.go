// Incremental rounding: the delta-scoped tail of Algorithm 1.
//
// The full rounding (finish in lppacking.go) is three passes over the whole
// instance: sample one admissible set per user from the LP optimum, repair
// capacity overflows by a sequential scan, and score the arrangement from
// scratch. All three decompose:
//
//   - Sampling is a pure per-user function of (seed, u, the user's LP column
//     values): user u draws from the dedicated stream xrand.NewStream(seed,u)
//     over probabilities α·x*_{u,S}. If none of u's column values moved
//     between solves, u's draw cannot change — so only users in the solver's
//     changed-column set (plus the delta's own users, whose columns were
//     replaced wholesale) are re-drawn.
//
//   - The index-order repair decomposes per event: with load starting at the
//     sampled count and decrementing on every drop, exactly the first
//     max(0, |samplers(v)| − c_v) samplers of v in user order drop it and the
//     rest keep it, independent of every other event. Maintaining the sorted
//     sampler list per event therefore localizes repair to the events whose
//     sampler set or capacity changed, at O(attendees) per dirty event.
//
//   - Utility maintenance is model.UtilityAccumulator: per-user subtotals
//     re-derived only for users whose assignment (or weights) changed, with
//     a block-summation tree that keeps the total bit-equal to a from-
//     scratch model.Utility.
//
// Together an Update touches O(|Δ| + moved columns + dirty attendees) state
// where the full re-round touches O(|U| + |pairs|), while remaining
// bit-identical to Planner.Round by construction. The equivalence is pinned
// by TestPlannerUpdateMatchesFullRound and FuzzIncrementalRound.
package core

import (
	"slices"
	"sort"

	"github.com/ebsn/igepa/internal/model"
	"github.com/ebsn/igepa/internal/par"
	"github.com/ebsn/igepa/internal/xrand"
)

// incState is the Planner's persistent rounding state: the current draws,
// the per-event sampler lists the repair decomposition runs on, the
// maintained post-repair arrangement and its utility accumulator, plus all
// the scratch the delta walk reuses.
type incState struct {
	chosen    []int              // per user: sampled set index, -1 none
	sampled   [][]int            // per user: owned copy of the sampled set's events
	samplers  [][]int            // per event: users sampling it, ascending
	droppedOf []int              // per event: pairs currently dropped by repair
	arr       *model.Arrangement // maintained post-repair arrangement (owned)
	acc       *model.UtilityAccumulator

	sampledPairs int
	dropped      int

	res Result // assembled in place; Update returns &res

	// scratch
	probs     []float64
	probOff   []int
	newChosen []int
	resample  []int
	userMark  []bool
	dirtyEv   []int
	evMark    []bool
	accDirty  []int
	accMark   []bool
}

// ensure sizes the state for nu users and nv events.
func (st *incState) ensure(nu, nv int) {
	if len(st.chosen) != nu {
		st.chosen = make([]int, nu)
		st.sampled = make([][]int, nu)
		st.userMark = make([]bool, nu)
		st.accMark = make([]bool, nu)
	}
	if len(st.samplers) != nv {
		st.samplers = make([][]int, nv)
		st.droppedOf = make([]int, nv)
		st.evMark = make([]bool, nv)
	}
}

// rebuildInc derives the full rounding state from the current LP solution —
// the from-scratch path used at first need and whenever the solver could
// not attribute the change (cold solves, warm-start fallbacks). It is the
// same computation as Round up to the repair's event decomposition, so the
// state it leaves behind matches what the maintained path would have
// reached.
func (p *Planner) rebuildInc() {
	nu, nv := p.in.NumUsers(), p.in.NumEvents()
	if p.inc == nil {
		p.inc = &incState{}
	}
	st := p.inc
	st.ensure(nu, nv)
	p.buildColMap()
	copy(st.chosen, SampleSets(nu, p.sets, p.owner, p.sol.X, p.alpha(), p.opt.Seed, p.opt.Workers))

	st.sampledPairs = 0
	for v := 0; v < nv; v++ {
		st.samplers[v] = st.samplers[v][:0]
	}
	for u := 0; u < nu; u++ {
		var ev []int
		if c := st.chosen[u]; c >= 0 {
			ev = p.sets[u][c].Events
		}
		st.sampled[u] = append(st.sampled[u][:0], ev...)
		st.sampledPairs += len(ev)
		for _, v := range ev {
			st.samplers[v] = append(st.samplers[v], u) // u ascending: sorted
		}
	}

	if st.arr == nil {
		st.arr = model.NewArrangement(nu)
	}
	for u := range st.arr.Sets {
		st.arr.Sets[u] = st.arr.Sets[u][:0]
	}
	st.dropped = 0
	for v := 0; v < nv; v++ {
		k := len(st.samplers[v]) - p.in.Events[v].Capacity
		if k < 0 {
			k = 0
		}
		st.droppedOf[v] = k
		st.dropped += k
		for _, u := range st.samplers[v][k:] {
			st.arr.Sets[u] = append(st.arr.Sets[u], v) // v ascending: sorted
		}
	}
	st.acc = model.NewUtilityAccumulator(p.in, st.arr)

	st.dirtyEv = st.dirtyEv[:0]
	st.accDirty = st.accDirty[:0]
	for i := range st.evMark {
		st.evMark[i] = false
	}
	for i := range st.userMark {
		st.userMark[i] = false
	}
	for i := range st.accMark {
		st.accMark[i] = false
	}
}

// updateIncremental advances the maintained rounding state across one
// Update: re-draw the users whose column mass moved, re-repair the events
// their moves (or the delta's capacity changes) touched, re-score the
// attendees those repairs reached. users and events are the (sorted,
// validated) delta lists.
func (p *Planner) updateIncremental(users, events []int) *Result {
	cols, all := p.solver.ChangedColumns()
	if p.inc == nil || all {
		p.rebuildInc()
		return p.assembleResult()
	}
	st := p.inc
	if len(users) > 0 {
		p.buildColMap()
	}

	// Users to re-draw: owners of moved columns plus the delta users (their
	// columns were replaced; a user left without columns must still re-draw
	// to the empty choice).
	st.resample = st.resample[:0]
	for _, j := range cols {
		if u := p.owner[j][0]; !st.userMark[u] {
			st.userMark[u] = true
			st.resample = append(st.resample, u)
		}
	}
	for _, u := range users {
		if !st.userMark[u] {
			st.userMark[u] = true
			st.resample = append(st.resample, u)
		}
	}
	sort.Ints(st.resample)

	// Draw the new choices in parallel — bit-identical to SampleSets over
	// the same users: per-user streams, same clamp/normalize arithmetic.
	st.probOff = append(st.probOff[:0], 0)
	for _, u := range st.resample {
		nsets := int(p.colOff[u+1] - p.colOff[u])
		st.probOff = append(st.probOff, st.probOff[len(st.probOff)-1]+nsets)
	}
	need := st.probOff[len(st.probOff)-1]
	if cap(st.probs) < need {
		st.probs = make([]float64, need)
	}
	st.probs = st.probs[:need]
	if cap(st.newChosen) < len(st.resample) {
		st.newChosen = make([]int, len(st.resample))
	}
	st.newChosen = st.newChosen[:len(st.resample)]
	alpha, x, seed := p.alpha(), p.sol.X, p.opt.Seed
	par.For(par.Workers(p.opt.Workers), len(st.resample), 8, func(i int) {
		u := st.resample[i]
		w := st.probs[st.probOff[i]:st.probOff[i+1]]
		cols := p.colIdx[p.colOff[u]:p.colOff[u+1]]
		for k := range w {
			w[k] = clampProb(alpha * x[cols[k]])
		}
		if len(w) == 0 {
			st.newChosen[i] = -1
			return
		}
		normalizeSubDistribution(w)
		st.newChosen[i] = xrand.NewStream(seed, uint64(u)).Categorical(w)
	})

	// Apply the draw diffs to the sampler lists, dirtying touched events.
	st.dirtyEv = st.dirtyEv[:0]
	for i, u := range st.resample {
		st.userMark[u] = false
		c := st.newChosen[i]
		var ev []int
		if c >= 0 {
			ev = p.sets[u][c].Events
		}
		st.chosen[u] = c
		if slices.Equal(st.sampled[u], ev) {
			continue
		}
		for _, v := range st.sampled[u] {
			if !model.Contains(ev, v) {
				st.removeSampler(v, u)
				if st.arrRemove(u, v) {
					st.markAccDirty(u)
				}
				st.markDirty(v)
			}
		}
		for _, v := range ev {
			if !model.Contains(st.sampled[u], v) {
				st.insertSampler(v, u)
				st.markDirty(v)
			}
		}
		st.sampledPairs += len(ev) - len(st.sampled[u])
		st.sampled[u] = append(st.sampled[u][:0], ev...)
	}
	for _, v := range events {
		st.markDirty(v)
	}
	// Delta users' weight rows may have been re-derived even where the
	// assignment stands; their subtotals must re-read the patched cache.
	for _, u := range users {
		st.markAccDirty(u)
	}

	// Localized repair: re-cut each dirty event's keep boundary.
	sort.Ints(st.dirtyEv)
	for _, v := range st.dirtyEv {
		st.evMark[v] = false
		s := st.samplers[v]
		k := len(s) - p.in.Events[v].Capacity
		if k < 0 {
			k = 0
		}
		st.dropped += k - st.droppedOf[v]
		st.droppedOf[v] = k
		for idx, u := range s {
			keep := idx >= k
			if keep != model.Contains(st.arr.Sets[u], v) {
				if keep {
					st.arrInsert(u, v)
				} else {
					st.arrRemove(u, v)
				}
				st.markAccDirty(u)
			}
		}
	}

	// Utility refresh over exactly the touched users.
	for _, u := range st.accDirty {
		st.accMark[u] = false
		st.acc.SetUser(u, st.arr.Sets[u])
	}
	st.accDirty = st.accDirty[:0]
	return p.assembleResult()
}

// assembleResult writes the maintained state into the planner-owned Result.
// With GreedyFill enabled the fill runs from scratch on a clone of the
// maintained post-repair arrangement — the fill is a global greedy over
// candidate weights, so it does not localize, but it starts from the
// incrementally maintained state and stays bit-identical to the full path.
func (p *Planner) assembleResult() *Result {
	st := p.inc
	st.res = Result{
		Arrangement:    st.arr,
		Utility:        st.acc.Total(),
		LPObjective:    p.sol.Objective,
		LPIterations:   p.sol.Iterations,
		LPColumns:      p.solver.Problem().NumCols(),
		TruncatedUsers: p.truncCount,
		SampledPairs:   st.sampledPairs,
		RepairDropped:  st.dropped,
	}
	if p.opt.GreedyFill {
		filled := st.arr.Clone()
		st.res.FilledPairs = greedyFill(p.in, p.conf, filled)
		filled.Normalize()
		st.res.Arrangement = filled
		st.res.Utility = model.Utility(p.in, filled)
	}
	return &st.res
}

// markDirty queues event v for the repair pass.
func (st *incState) markDirty(v int) {
	if !st.evMark[v] {
		st.evMark[v] = true
		st.dirtyEv = append(st.dirtyEv, v)
	}
}

// markAccDirty queues user u for the utility refresh.
func (st *incState) markAccDirty(u int) {
	if !st.accMark[u] {
		st.accMark[u] = true
		st.accDirty = append(st.accDirty, u)
	}
}

// insertSampler adds user u to event v's sorted sampler list.
func (st *incState) insertSampler(v, u int) {
	s := st.samplers[v]
	st.samplers[v] = slices.Insert(s, sort.SearchInts(s, u), u)
}

// removeSampler deletes user u from event v's sorted sampler list.
func (st *incState) removeSampler(v, u int) {
	s := st.samplers[v]
	if i := sort.SearchInts(s, u); i < len(s) && s[i] == u {
		st.samplers[v] = slices.Delete(s, i, i+1)
	}
}

// arrInsert adds event v to user u's sorted assignment.
func (st *incState) arrInsert(u, v int) {
	s := st.arr.Sets[u]
	st.arr.Sets[u] = slices.Insert(s, sort.SearchInts(s, v), v)
}

// arrRemove deletes event v from user u's assignment, reporting whether it
// was present.
func (st *incState) arrRemove(u, v int) bool {
	s := st.arr.Sets[u]
	i := sort.SearchInts(s, v)
	if i >= len(s) || s[i] != v {
		return false
	}
	st.arr.Sets[u] = slices.Delete(s, i, i+1)
	return true
}
