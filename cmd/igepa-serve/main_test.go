package main

import (
	"os"
	"path/filepath"
	"testing"

	"github.com/ebsn/igepa/internal/workload"
)

func devNull(t *testing.T) *os.File {
	t.Helper()
	null, err := os.OpenFile(os.DevNull, os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { null.Close() })
	return null
}

func TestRunSmoke(t *testing.T) {
	null := devNull(t)
	cfg := config{
		workload: "synthetic", events: 20, users: 80, seed: 1,
		shards: []int{1, 2, 4}, planner: "greedy", lpBound: true,
	}
	if err := run(null, cfg); err != nil {
		t.Fatal(err)
	}
	cfg.workload = "meetup"
	cfg.planner = "threshold"
	cfg.lpBound = false
	if err := run(null, cfg); err != nil {
		t.Fatal(err)
	}
}

func TestRunLeasePoliciesAndLiveBound(t *testing.T) {
	null := devNull(t)
	for _, lease := range []string{"demand", "even", "lp"} {
		cfg := config{
			workload: "synthetic", events: 15, users: 90, seed: 2,
			shards: []int{2, 4}, planner: "greedy", lease: lease, batch: 16,
		}
		if err := run(null, cfg); err != nil {
			t.Fatalf("lease=%s: %v", lease, err)
		}
	}
	// the incremental live-bound path (warm Planner.Update per batch)
	cfg := config{
		workload: "synthetic", events: 15, users: 90, seed: 3,
		shards: []int{2}, planner: "greedy", batch: 16, liveBound: true,
	}
	if err := run(null, cfg); err != nil {
		t.Fatal(err)
	}
}

func TestRunReplaysArrivalLog(t *testing.T) {
	null := devNull(t)
	dir := t.TempDir()
	log := filepath.Join(dir, "arrivals.jsonl")
	arr := workload.SyntheticArrivals(9, 70, 500)
	f, err := os.Create(log)
	if err != nil {
		t.Fatal(err)
	}
	if err := workload.WriteArrivals(f, arr); err != nil {
		t.Fatal(err)
	}
	f.Close()
	cfg := config{
		workload: "synthetic", events: 15, users: 70, seed: 9,
		shards: []int{1, 4}, planner: "greedy", arrivals: log,
	}
	if err := run(null, cfg); err != nil {
		t.Fatal(err)
	}
	// a log naming users outside the instance must be rejected
	cfg.users = 50
	if err := run(null, cfg); err == nil {
		t.Error("arrival log with out-of-range users accepted")
	}
	cfg.users = 70
	cfg.arrivals = filepath.Join(dir, "missing.jsonl")
	if err := run(null, cfg); err == nil {
		t.Error("missing arrival log accepted")
	}
}

func TestParseShards(t *testing.T) {
	got, err := parseShards("1, 2,8")
	if err != nil || len(got) != 3 || got[0] != 1 || got[1] != 2 || got[2] != 8 {
		t.Fatalf("parseShards: got %v, %v", got, err)
	}
	for _, bad := range []string{"", "0", "x", "1,,2", "-3"} {
		if _, err := parseShards(bad); err == nil {
			t.Errorf("parseShards(%q) accepted", bad)
		}
	}
}

func TestBadConfigRejected(t *testing.T) {
	null := devNull(t)
	if err := run(null, config{workload: "nope", shards: []int{1}}); err == nil {
		t.Error("unknown workload accepted")
	}
	if err := run(null, config{workload: "synthetic", users: 10, events: 5, planner: "nope", shards: []int{1}}); err == nil {
		t.Error("unknown planner accepted")
	}
	if err := run(null, config{workload: "synthetic", users: 10, events: 5, planner: "greedy", lease: "nope", shards: []int{1}}); err == nil {
		t.Error("unknown lease policy accepted")
	}
}
