package core

import (
	"math"
	"testing"

	"github.com/ebsn/igepa/internal/conflict"
	"github.com/ebsn/igepa/internal/lp"
	"github.com/ebsn/igepa/internal/model"
	"github.com/ebsn/igepa/internal/model/modeltest"
	"github.com/ebsn/igepa/internal/workload"
)

// TestPresolveEquivalence is the ROADMAP equivalence requirement: with
// Options.Presolve on and off, LPPacking reaches the same certified LP
// optimum on both the synthetic and the Meetup workload, and both runs
// produce feasible arrangements.
func TestPresolveEquivalence(t *testing.T) {
	cases := []struct {
		name string
		gen  func() (*model.Instance, error)
	}{
		{"synthetic", func() (*model.Instance, error) {
			return workload.Synthetic(workload.SyntheticConfig{
				Seed: 5, NumEvents: 40, NumUsers: 250, MaxEventCap: 12,
			})
		}},
		{"synthetic-tight", func() (*model.Instance, error) {
			return workload.Synthetic(workload.SyntheticConfig{
				Seed: 6, NumEvents: 30, NumUsers: 200, MaxEventCap: 3,
			})
		}},
		{"meetup", func() (*model.Instance, error) {
			return workload.Meetup(workload.MeetupConfig{
				Seed: 7, NumEvents: 60, NumUsers: 400,
			})
		}},
		{"synthetic-zerocap", func() (*model.Instance, error) {
			in, err := workload.Synthetic(workload.SyntheticConfig{
				Seed: 8, NumEvents: 30, NumUsers: 150, MaxEventCap: 10,
			})
			if err != nil {
				return nil, err
			}
			// closed registrations: some events accept nobody, so the
			// forced-column reduction must fire
			for v := 0; v < in.NumEvents(); v += 4 {
				in.Events[v].Capacity = 0
			}
			return in, nil
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			in, err := tc.gen()
			if err != nil {
				t.Fatal(err)
			}
			plain, err := LPPacking(in, Options{Seed: 3})
			if err != nil {
				t.Fatal(err)
			}
			pre, err := LPPacking(in, Options{Seed: 3, Presolve: true})
			if err != nil {
				t.Fatal(err)
			}
			// The reductions preserve the optimum exactly; the residual
			// tolerance is the revised solver's deterministic anti-degeneracy
			// RHS perturbation (2e-7 relative per row, see lp.Revised), which
			// differs between the original and the reduced row set.
			if diff := math.Abs(plain.LPObjective - pre.LPObjective); diff > 1e-6*(1+math.Abs(plain.LPObjective)) {
				t.Errorf("objective diverged: plain %.12f vs presolve %.12f", plain.LPObjective, pre.LPObjective)
			}
			modeltest.RequireFeasible(t, "plain", in, plain.Arrangement)
			modeltest.RequireFeasible(t, "presolve", in, pre.Arrangement)
			if pre.Utility > pre.LPObjective+1e-9 {
				t.Errorf("presolve utility %v exceeds its LP bound %v", pre.Utility, pre.LPObjective)
			}
			if tc.name == "synthetic-zerocap" && pre.PresolveForcedCols == 0 {
				t.Error("zero-capacity events should force columns in presolve")
			}
			t.Logf("%s: objective=%.4f folded=%d dropped-rows=%d forced-cols=%d",
				tc.name, pre.LPObjective, pre.PresolveFoldedCols, pre.PresolveDroppedRows, pre.PresolveForcedCols)
		})
	}
}

// TestSolvePresolvedCertifiedAgainstOriginal white-boxes the presolve chain:
// the solution mapped back to the original column space must pass lp.Verify
// against the ORIGINAL problem — primal and dual feasibility plus strong
// duality, certifying that no reduction changed the optimum.
func TestSolvePresolvedCertifiedAgainstOriginal(t *testing.T) {
	in, err := workload.Synthetic(workload.SyntheticConfig{
		Seed: 9, NumEvents: 25, NumUsers: 150, MaxEventCap: 8,
	})
	if err != nil {
		t.Fatal(err)
	}
	// Zero a few capacities so the forced-column reduction fires too.
	for v := 0; v < in.NumEvents(); v += 7 {
		in.Events[v].Capacity = 0
	}
	in.Weights()
	conf := conflict.FromFunc(in.NumEvents(), in.Conflicts)
	sets, _ := enumerateAll(in, conf, 0, 1)
	prob, _ := BuildBenchmarkLP(in, sets)

	sol, info, err := solvePresolved(prob, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := lp.Verify(prob, sol, 1e-6); err != nil {
		t.Fatalf("presolved solution fails certification on original problem: %v", err)
	}
	if info.forcedCols == 0 {
		t.Error("expected forced columns from the zero-capacity events")
	}
	if len(sol.X) != prob.NumCols() || len(sol.Y) != prob.NumRows {
		t.Fatalf("solution shape: %d/%d, want %d/%d", len(sol.X), len(sol.Y), prob.NumCols(), prob.NumRows)
	}
}

// TestPresolveRespectsExplicitSolver pins that Options.Solver is honored on
// the reduced problem (the dense oracle must agree with the auto path).
func TestPresolveRespectsExplicitSolver(t *testing.T) {
	in := tinyInstance()
	auto, err := LPPacking(in, Options{Seed: 2, Presolve: true})
	if err != nil {
		t.Fatal(err)
	}
	dense, err := LPPacking(in, Options{Seed: 2, Presolve: true, Solver: &lp.Dense{}})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(auto.LPObjective-dense.LPObjective) > 1e-9 {
		t.Errorf("auto %v vs dense %v", auto.LPObjective, dense.LPObjective)
	}
}
