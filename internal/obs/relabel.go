package obs

// Cluster fan-in: the router scrapes each shardd's /metrics and re-exports
// the union at /cluster/metrics with a shard="<index>" label, so one scrape
// sees the whole cluster. Families with the same name across shards merge
// under one HELP/TYPE header (emitting the header once per name is what
// keeps the merged payload valid exposition); sample values are re-emitted
// verbatim, never re-parsed into floats, so fan-in cannot reformat a value.

import (
	"fmt"
	"io"
	"strings"
)

// MergeRelabeled writes the union of several parsed scrapes, injecting one
// extra label pair into every sample of each source. sources preserves
// order: families appear in first-seen order, and within a family the
// sources' samples appear in source order.
func MergeRelabeled(w io.Writer, key string, sources []RelabeledSource) error {
	type merged struct {
		help, typ string
		lines     []string
	}
	var order []string
	fams := map[string]*merged{}
	for _, src := range sources {
		pair := key + `="` + escapeValue(src.Value) + `"`
		for _, f := range src.Families {
			m, ok := fams[f.Name]
			if !ok {
				m = &merged{help: f.Help, typ: f.Type}
				fams[f.Name] = m
				order = append(order, f.Name)
			}
			for _, s := range f.Samples {
				labels := pair
				if s.Labels != "" {
					labels += "," + renameLabel(s.Labels, key)
				}
				m.lines = append(m.lines, fmt.Sprintf("%s{%s} %s", s.Name, labels, s.Value))
			}
		}
	}
	var b strings.Builder
	for _, name := range order {
		m := fams[name]
		b.Reset()
		if m.help != "" {
			fmt.Fprintf(&b, "# HELP %s %s\n", name, m.help)
		}
		if m.typ != "" {
			fmt.Fprintf(&b, "# TYPE %s %s\n", name, m.typ)
		}
		for _, l := range m.lines {
			b.WriteString(l)
			b.WriteByte('\n')
		}
		if _, err := io.WriteString(w, b.String()); err != nil {
			return err
		}
	}
	return nil
}

// RelabeledSource is one upstream scrape plus the label value identifying
// it (the shard index, for /cluster/metrics).
type RelabeledSource struct {
	Value    string
	Families []Family
}

// renameLabel rewrites any existing `key="…"` pair in a raw label string to
// `exported_key="…"` — the Prometheus federation convention when the
// fan-in's own label collides with one the source already exposes (a
// backend's per-queue shard gauge vs the cluster's shard index). The
// source's value stays visible; the merged exposition stays lint-clean.
func renameLabel(labels, key string) string {
	target := key + `="`
	var b strings.Builder
	i := 0
	for i < len(labels) {
		if strings.HasPrefix(labels[i:], target) {
			b.WriteString("exported_")
			b.WriteString(target)
			i += len(target)
		} else {
			// copy the label name through its opening `="`
			j := strings.Index(labels[i:], `="`)
			if j < 0 {
				b.WriteString(labels[i:])
				return b.String()
			}
			b.WriteString(labels[i : i+j+2])
			i += j + 2
		}
		// copy the quoted value, honoring backslash escapes
		for i < len(labels) {
			c := labels[i]
			b.WriteByte(c)
			i++
			if c == '\\' && i < len(labels) {
				b.WriteByte(labels[i])
				i++
				continue
			}
			if c == '"' {
				break
			}
		}
		if i < len(labels) && labels[i] == ',' {
			b.WriteByte(',')
			i++
		}
	}
	return b.String()
}
