package lp

import (
	"fmt"
	"math"
	"sort"

	"github.com/ebsn/igepa/internal/par"
)

// spCol is one sparse column handed to the LU kernel — typically a view into
// the Problem's CSC arrays or into the solver's slack storage, never a copy.
type spCol struct {
	rows []int32
	vals []float64
}

// luFactors is a sparse LU factorization of a square basis matrix B with
// row partial pivoting and a sparsity-oriented column order:
//
//	B[:, colOrder[k]] is eliminated at step k, pivoting on original row
//	pivRow[k], so that  P·B·Q = L·U  with P, Q the row/column permutations
//	and L unit-lower-triangular, U upper-triangular, both in "step" space.
//
// L and U are stored column-wise in flat arrays: L's column k occupies
// lIdx[lPtr[k]:lPtr[k+1]] / lVal[...] (strictly-lower entries, step indices
// > k), U's column k occupies uIdx[uPtr[k]:uPtr[k+1]] / uVal[...] (strictly-
// upper entries, step indices < k), and uDiag[k] holds the diagonal pivot.
// The struct is reusable: factorize overwrites in place, so a solver that
// refactorizes every few dozen pivots allocates the workspace once instead
// of millions of per-column slices over a long solve.
type luFactors struct {
	m        int
	colOrder []int // step -> basis position
	pivRow   []int // step -> original row
	pos      []int // original row -> step

	lPtr, uPtr []int32
	lIdx, uIdx []int32
	lVal, uVal []float64
	uDiag      []float64

	// factorization scratch, reused across refactorizations
	w         []float64 // dense accumulator, original-row space
	inW, seen []bool
	touched   []int
	processed []int
	steps     stepHeap

	// Level-schedule state for the parallel triangular solves, built lazily
	// by buildSchedule after each factorization (schedOK gates staleness).
	// lRow*/uRow* are row-major (CSR) mirrors of the column-stored factors;
	// within row k, L entries are sorted by ascending column step and U
	// entries by descending column step — exactly the order in which the
	// sequential push-form solveB applies that row's updates, which is what
	// makes the pull-form level solves bit-identical to it. The four
	// schedules list steps in level-major order (ord[ptr[l]:ptr[l+1]] is
	// level l, ascending step within a level): levL/levU drive solveBLevel's
	// forward/backward sweeps, levUT/levLT drive solveBTLevel's.
	schedOK          bool
	stepOf           []int32 // basis position -> step (inverse colOrder)
	lRowPtr, uRowPtr []int32
	lRowIdx, uRowIdx []int32
	lRowVal, uRowVal []float64
	levLPtr, levLOrd []int32
	levUPtr, levUOrd []int32
	levUTPtr, levUTOrd []int32
	levLTPtr, levLTOrd []int32
	lev, cur         []int32 // schedule-builder scratch, length m
}

// stepHeap is a small binary min-heap of step indices used to process
// eliminations in increasing step order during factorization.
type stepHeap []int

func (h *stepHeap) push(x int) {
	*h = append(*h, x)
	i := len(*h) - 1
	for i > 0 {
		p := (i - 1) / 2
		if (*h)[p] <= (*h)[i] {
			break
		}
		(*h)[p], (*h)[i] = (*h)[i], (*h)[p]
		i = p
	}
}

func (h *stepHeap) pop() int {
	old := *h
	top := old[0]
	last := len(old) - 1
	old[0] = old[last]
	*h = old[:last]
	i, n := 0, last
	for {
		l, r := 2*i+1, 2*i+2
		sm := i
		if l < n && (*h)[l] < (*h)[sm] {
			sm = l
		}
		if r < n && (*h)[r] < (*h)[sm] {
			sm = r
		}
		if sm == i {
			break
		}
		(*h)[i], (*h)[sm] = (*h)[sm], (*h)[i]
		i = sm
	}
	return top
}

// luFactorize computes a fresh factorization of the m×m matrix whose columns
// are cols (assembly-form convenience used by the tests; the solver reuses
// one luFactors via factorize).
func luFactorize(m int, cols []Column) (*luFactors, error) {
	sp := make([]spCol, len(cols))
	for i := range cols {
		rows := make([]int32, len(cols[i].Rows))
		for k, r := range cols[i].Rows {
			rows[k] = int32(r)
		}
		sp[i] = spCol{rows: rows, vals: cols[i].Vals}
	}
	f := &luFactors{}
	if err := f.factorize(m, sp); err != nil {
		return nil, err
	}
	return f, nil
}

// resize (re)shapes the persistent arrays for an m×m factorization and
// clears the scratch state.
func (f *luFactors) resize(m int) {
	f.m = m
	if cap(f.colOrder) < m {
		f.colOrder = make([]int, m)
		f.pivRow = make([]int, m)
		f.pos = make([]int, m)
		f.uDiag = make([]float64, m)
		f.lPtr = make([]int32, m+1)
		f.uPtr = make([]int32, m+1)
		f.w = make([]float64, m)
		f.inW = make([]bool, m)
		f.seen = make([]bool, m)
	} else {
		f.colOrder = f.colOrder[:m]
		f.pivRow = f.pivRow[:m]
		f.pos = f.pos[:m]
		f.uDiag = f.uDiag[:m]
		f.lPtr = f.lPtr[:m+1]
		f.uPtr = f.uPtr[:m+1]
		f.w = f.w[:m]
		f.inW = f.inW[:m]
		f.seen = f.seen[:m]
	}
	for i := 0; i < m; i++ {
		f.colOrder[i] = i
		f.pos[i] = -1
		f.w[i] = 0
		f.inW[i] = false
		f.seen[i] = false
	}
	f.lIdx, f.lVal = f.lIdx[:0], f.lVal[:0]
	f.uIdx, f.uVal = f.uIdx[:0], f.uVal[:0]
	f.touched = f.touched[:0]
	f.processed = f.processed[:0]
	f.steps = f.steps[:0]
	f.lPtr[0], f.uPtr[0] = 0, 0
}

// factorize overwrites f with the factorization of the m×m matrix whose
// columns are cols. Columns are eliminated in order of increasing nonzero
// count (slacks and other singletons first), an effective cheap
// fill-reducing heuristic for the near-network bases of the benchmark LP.
// Returns an error if the matrix is numerically singular.
func (f *luFactors) factorize(m int, cols []spCol) error {
	if len(cols) != m {
		return fmt.Errorf("lp: lu of %dx%d matrix with %d columns", m, m, len(cols))
	}
	f.resize(m)
	sort.SliceStable(f.colOrder, func(a, b int) bool {
		return len(cols[f.colOrder[a]].rows) < len(cols[f.colOrder[b]].rows)
	})

	// While rows are still being pivoted, lIdx holds L entries in
	// original-row space; they are translated to step space after the last
	// column.
	for k := 0; k < m; k++ {
		col := cols[f.colOrder[k]]
		f.steps = f.steps[:0]
		f.processed = f.processed[:0]
		f.touched = f.touched[:0]
		for i, r32 := range col.rows {
			r := int(r32)
			if !f.inW[r] {
				f.inW[r] = true
				f.touched = append(f.touched, r)
			}
			f.w[r] += col.vals[i]
			if p := f.pos[r]; p >= 0 && !f.seen[p] {
				f.seen[p] = true
				f.processed = append(f.processed, p)
				f.steps.push(p)
			}
		}
		// Forward-eliminate through previously factored columns in
		// increasing step order (a topological order of L).
		for len(f.steps) > 0 {
			js := f.steps.pop()
			pr := f.pivRow[js]
			alpha := f.w[pr]
			f.w[pr] = 0
			if alpha == 0 {
				continue
			}
			f.uIdx = append(f.uIdx, int32(js))
			f.uVal = append(f.uVal, alpha)
			lIdx := f.lIdx[f.lPtr[js]:f.lPtr[js+1]]
			lVal := f.lVal[f.lPtr[js]:f.lPtr[js+1]]
			for i, r32 := range lIdx {
				r := int(r32)
				if !f.inW[r] {
					f.inW[r] = true
					f.touched = append(f.touched, r)
				}
				f.w[r] -= alpha * lVal[i]
				if p := f.pos[r]; p >= 0 && !f.seen[p] {
					f.seen[p] = true
					f.processed = append(f.processed, p)
					f.steps.push(p)
				}
			}
		}
		// Partial pivoting among the remaining (unpivoted) rows.
		piv, pr := 0.0, -1
		for _, r := range f.touched {
			if f.pos[r] >= 0 {
				continue
			}
			if a := math.Abs(f.w[r]); a > piv {
				piv, pr = a, r
			}
		}
		if pr < 0 || piv < 1e-12 {
			return fmt.Errorf("lp: basis numerically singular at step %d", k)
		}
		pivVal := f.w[pr]
		f.pivRow[k] = pr
		f.pos[pr] = k
		f.uDiag[k] = pivVal
		for _, r := range f.touched {
			if f.pos[r] >= 0 {
				continue // pivot rows (incl. the current one) are not part of L
			}
			if v := f.w[r]; v != 0 {
				f.lIdx = append(f.lIdx, int32(r))
				f.lVal = append(f.lVal, v/pivVal)
			}
		}
		for _, r := range f.touched {
			f.w[r] = 0
			f.inW[r] = false
		}
		for _, s := range f.processed {
			f.seen[s] = false
		}
		f.lPtr[k+1] = int32(len(f.lIdx))
		f.uPtr[k+1] = int32(len(f.uIdx))
	}
	// Translate L's row indices to step space (every row now has a step).
	for i, r := range f.lIdx {
		f.lIdx[i] = int32(f.pos[r])
	}
	f.schedOK = false
	return nil
}

// solveB computes d = B⁻¹a for a sparse right-hand side a given as
// (rows, vals) in original-row space. The result is written into out,
// indexed by basis position; work must be a zeroed scratch vector of
// length m and is returned zeroed.
func (f *luFactors) solveB(rows []int32, vals []float64, out, work []float64) {
	z := work
	for i, r := range rows {
		z[f.pos[r]] += vals[i]
	}
	// L z' = z (unit lower, forward)
	for k := 0; k < f.m; k++ {
		v := z[k]
		if v == 0 {
			continue
		}
		idx := f.lIdx[f.lPtr[k]:f.lPtr[k+1]]
		val := f.lVal[f.lPtr[k]:f.lPtr[k+1]]
		for i, s := range idx {
			z[s] -= v * val[i]
		}
	}
	// U t = z' (backward, column-oriented)
	for k := f.m - 1; k >= 0; k-- {
		v := z[k] / f.uDiag[k]
		z[k] = 0
		if v != 0 {
			idx := f.uIdx[f.uPtr[k]:f.uPtr[k+1]]
			val := f.uVal[f.uPtr[k]:f.uPtr[k+1]]
			for i, s := range idx {
				z[s] -= v * val[i]
			}
		}
		out[f.colOrder[k]] = v
	}
}

// solveBT computes y with Bᵀy = c, where c is indexed by basis position.
// The result is written into out, indexed by original row; work must be a
// zeroed scratch vector of length m and is returned zeroed.
func (f *luFactors) solveBT(c, out, work []float64) {
	t := work
	// Uᵀ t = Qᵀc (forward in step order, row-oriented via U's columns)
	for k := 0; k < f.m; k++ {
		v := c[f.colOrder[k]]
		idx := f.uIdx[f.uPtr[k]:f.uPtr[k+1]]
		val := f.uVal[f.uPtr[k]:f.uPtr[k+1]]
		for i, s := range idx {
			v -= val[i] * t[s]
		}
		t[k] = v / f.uDiag[k]
	}
	// Lᵀ s = t (backward, row-oriented via L's columns)
	for k := f.m - 1; k >= 0; k-- {
		v := t[k]
		idx := f.lIdx[f.lPtr[k]:f.lPtr[k+1]]
		val := f.lVal[f.lPtr[k]:f.lPtr[k+1]]
		for i, s := range idx {
			v -= val[i] * t[s]
		}
		t[k] = v
	}
	for k := 0; k < f.m; k++ {
		out[f.pivRow[k]] = t[k]
		t[k] = 0
	}
}

// luLevelGrain is the number of steps one worker claims at a time inside a
// level of a parallel triangular solve. A package variable (not a constant)
// so the invariance tests can force multi-chunk levels on tiny bases; the
// solver never mutates it.
var luLevelGrain = 512

// resize32 is resizeF for int32 slices.
func resize32(s []int32, n int) []int32 {
	if cap(s) < n {
		return make([]int32, n)
	}
	return s[:n]
}

// csrMirror builds a row-major mirror of a column-stored triangle
// (ptr/idx/val, m columns). Columns are visited in ascending order when
// ascending is true and descending order otherwise, so each row's entry list
// comes out sorted by ascending resp. descending column step — the exact
// order in which the sequential push-form solve applies that row's updates.
// cur is caller scratch of length ≥ m.
func csrMirror(m int, ptr, idx []int32, val []float64, rowPtr, rowIdx []int32, rowVal []float64, cur []int32, ascending bool) ([]int32, []int32, []float64) {
	rowPtr = resize32(rowPtr, m+1)
	for i := range rowPtr {
		rowPtr[i] = 0
	}
	for _, s := range idx {
		rowPtr[s+1]++
	}
	for i := 0; i < m; i++ {
		rowPtr[i+1] += rowPtr[i]
		cur[i] = rowPtr[i]
	}
	rowIdx = resize32(rowIdx, len(idx))
	rowVal = resizeF(rowVal, len(val))
	scatter := func(k int) {
		for t := ptr[k]; t < ptr[k+1]; t++ {
			s := idx[t]
			slot := cur[s]
			cur[s]++
			rowIdx[slot] = int32(k)
			rowVal[slot] = val[t]
		}
	}
	if ascending {
		for k := 0; k < m; k++ {
			scatter(k)
		}
	} else {
		for k := m - 1; k >= 0; k-- {
			scatter(k)
		}
	}
	return rowPtr, rowIdx, rowVal
}

// levelSchedule assigns each step its dependency depth — lev[k] is one more
// than the deepest of row k's dependencies idx[ptr[k]:ptr[k+1]] — and
// buckets the steps into a level-major order: ord[outPtr[l]:outPtr[l+1]]
// lists level l's steps in ascending step order. Steps are visited in
// topological order (ascending when forward, descending otherwise), so
// every dependency's level is final before it is read. lev and cur are
// caller scratch of length ≥ m.
func levelSchedule(m int, ptr, idx []int32, forward bool, lev, cur []int32, outPtr, outOrd []int32) ([]int32, []int32) {
	depth := func(k int) {
		lv := int32(0)
		for t := ptr[k]; t < ptr[k+1]; t++ {
			if d := lev[idx[t]] + 1; d > lv {
				lv = d
			}
		}
		lev[k] = lv
	}
	if forward {
		for k := 0; k < m; k++ {
			depth(k)
		}
	} else {
		for k := m - 1; k >= 0; k-- {
			depth(k)
		}
	}
	nLev := int32(0)
	for k := 0; k < m; k++ {
		if lev[k]+1 > nLev {
			nLev = lev[k] + 1
		}
	}
	outPtr = resize32(outPtr, int(nLev)+1)
	for i := range outPtr {
		outPtr[i] = 0
	}
	for k := 0; k < m; k++ {
		outPtr[lev[k]+1]++
	}
	for l := int32(0); l < nLev; l++ {
		outPtr[l+1] += outPtr[l]
		cur[l] = outPtr[l]
	}
	outOrd = resize32(outOrd, m)
	for k := 0; k < m; k++ {
		slot := cur[lev[k]]
		cur[lev[k]]++
		outOrd[slot] = int32(k)
	}
	return outPtr, outOrd
}

// buildSchedule constructs (once per factorization) the CSR mirrors and the
// four level schedules used by solveBLevel/solveBTLevel. Idempotent and
// cheap relative to factorize — one pass over each factor's nonzeros per
// structure — but still only built when a parallel solve first wants it, so
// sequential configurations pay nothing.
func (f *luFactors) buildSchedule() {
	if f.schedOK {
		return
	}
	m := f.m
	f.lev = resize32(f.lev, m)
	f.cur = resize32(f.cur, m)
	f.stepOf = resize32(f.stepOf, m)
	for k := 0; k < m; k++ {
		f.stepOf[f.colOrder[k]] = int32(k)
	}
	f.lRowPtr, f.lRowIdx, f.lRowVal = csrMirror(m, f.lPtr, f.lIdx, f.lVal, f.lRowPtr, f.lRowIdx, f.lRowVal, f.cur, true)
	f.uRowPtr, f.uRowIdx, f.uRowVal = csrMirror(m, f.uPtr, f.uIdx, f.uVal, f.uRowPtr, f.uRowIdx, f.uRowVal, f.cur, false)
	// Dependencies per solve sweep: L-forward and U-backward pull along
	// rows of the respective factor; the transposed sweeps pull along
	// columns, so the column storage doubles as their dependency lists.
	f.levLPtr, f.levLOrd = levelSchedule(m, f.lRowPtr, f.lRowIdx, true, f.lev, f.cur, f.levLPtr, f.levLOrd)
	f.levUPtr, f.levUOrd = levelSchedule(m, f.uRowPtr, f.uRowIdx, false, f.lev, f.cur, f.levUPtr, f.levUOrd)
	f.levUTPtr, f.levUTOrd = levelSchedule(m, f.uPtr, f.uIdx, true, f.lev, f.cur, f.levUTPtr, f.levUTOrd)
	f.levLTPtr, f.levLTOrd = levelSchedule(m, f.lPtr, f.lIdx, false, f.lev, f.cur, f.levLTPtr, f.levLTOrd)
	f.schedOK = true
}

// solveBLevel is solveB restructured as a level-scheduled pull: within each
// dependency level every step reads only results finalized by earlier levels
// and writes only its own slot, so levels run on the worker pool. Row entry
// order (ascending column step for L, descending for U) and the zero-
// dependency skip replicate the sequential solve's floating-point operation
// sequence exactly — the result is bit-identical to solveB for any workers.
func (f *luFactors) solveBLevel(rows []int32, vals []float64, out, work []float64, workers int) {
	f.buildSchedule()
	z := work
	for i, r := range rows {
		z[f.pos[r]] += vals[i]
	}
	// L z' = z (pull form: z[k] ← z[k] − Σ_j L[k,j]·z'[j], deps j < k).
	par.ForLevels(workers, f.levLPtr, luLevelGrain, func(lo, hi int) {
		for p := lo; p < hi; p++ {
			k := f.levLOrd[p]
			acc := z[k]
			for t := f.lRowPtr[k]; t < f.lRowPtr[k+1]; t++ {
				if xj := z[f.lRowIdx[t]]; xj != 0 {
					acc -= xj * f.lRowVal[t]
				}
			}
			z[k] = acc
		}
	})
	// U t = z' (pull form; deps j > k, descending, v_j stored into z[j]).
	par.ForLevels(workers, f.levUPtr, luLevelGrain, func(lo, hi int) {
		for p := lo; p < hi; p++ {
			k := f.levUOrd[p]
			acc := z[k]
			for t := f.uRowPtr[k]; t < f.uRowPtr[k+1]; t++ {
				if vj := z[f.uRowIdx[t]]; vj != 0 {
					acc -= vj * f.uRowVal[t]
				}
			}
			z[k] = acc / f.uDiag[k]
		}
	})
	par.RangesAt(workers, 0, f.m, luLevelGrain, func(lo, hi int) {
		for k := lo; k < hi; k++ {
			out[f.colOrder[k]] = z[k]
			z[k] = 0
		}
	})
}

// solveBTLevel is solveBT run level-by-level. The sequential solve is
// already pull-form, so each step's inner loop is verbatim the same code
// over the same column slices — bit-identity across worker counts needs no
// reordering argument here, only the schedule's dependency correctness.
func (f *luFactors) solveBTLevel(c, out, work []float64, workers int) {
	f.buildSchedule()
	t := work
	// Uᵀ t = Qᵀc (deps: U column k's steps, all < k).
	par.ForLevels(workers, f.levUTPtr, luLevelGrain, func(lo, hi int) {
		for p := lo; p < hi; p++ {
			k := f.levUTOrd[p]
			v := c[f.colOrder[k]]
			idx := f.uIdx[f.uPtr[k]:f.uPtr[k+1]]
			val := f.uVal[f.uPtr[k]:f.uPtr[k+1]]
			for i, s := range idx {
				v -= val[i] * t[s]
			}
			t[k] = v / f.uDiag[k]
		}
	})
	// Lᵀ s = t (deps: L column k's steps, all > k).
	par.ForLevels(workers, f.levLTPtr, luLevelGrain, func(lo, hi int) {
		for p := lo; p < hi; p++ {
			k := f.levLTOrd[p]
			v := t[k]
			idx := f.lIdx[f.lPtr[k]:f.lPtr[k+1]]
			val := f.lVal[f.lPtr[k]:f.lPtr[k+1]]
			for i, s := range idx {
				v -= val[i] * t[s]
			}
			t[k] = v
		}
	})
	par.RangesAt(workers, 0, f.m, luLevelGrain, func(lo, hi int) {
		for k := lo; k < hi; k++ {
			out[f.pivRow[k]] = t[k]
			t[k] = 0
		}
	})
}
