package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"net"
	"net/http"
	"net/http/httptest"
	"os/exec"
	"path/filepath"
	"sync/atomic"
	"testing"
	"time"

	"github.com/ebsn/igepa"
	"github.com/ebsn/igepa/internal/router"
	"github.com/ebsn/igepa/internal/server"
	"github.com/ebsn/igepa/internal/shard"
	"github.com/ebsn/igepa/internal/xrand"
)

// freeAddr grabs a loopback port to hand to a child process. The tiny
// close-to-bind race is acceptable in a test.
func freeAddr(t testing.TB) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	ln.Close()
	return addr
}

func postJSON(hc *http.Client, url string, body, out any) (int, error) {
	raw, _ := json.Marshal(body)
	resp, err := hc.Post(url, "application/json", bytes.NewReader(raw))
	if err != nil {
		return 0, err
	}
	defer resp.Body.Close()
	if out != nil && resp.StatusCode < 300 {
		return resp.StatusCode, json.NewDecoder(resp.Body).Decode(out)
	}
	io.Copy(io.Discard, resp.Body)
	return resp.StatusCode, nil
}

func getJSON(hc *http.Client, url string, out any) (int, error) {
	resp, err := hc.Get(url)
	if err != nil {
		return 0, err
	}
	defer resp.Body.Close()
	if out != nil && resp.StatusCode < 300 {
		return resp.StatusCode, json.NewDecoder(resp.Body).Decode(out)
	}
	io.Copy(io.Discard, resp.Body)
	return resp.StatusCode, nil
}

// TestMultiProcessClusterSmoke is the deployment-shaped acceptance test: it
// builds the real igepa-shardd and igepa-router binaries, boots a cluster of
// separate OS processes (router + 2 shards), replays an arrival order
// through the public API, and pins the cluster's utility bit-identical to
// the in-process ServeSharded run — and therefore trivially ≥ 99.6% of the
// single-shard utility the acceptance bound asks for.
func TestMultiProcessClusterSmoke(t *testing.T) {
	if _, err := exec.LookPath("go"); err != nil {
		t.Skip("go toolchain not on PATH")
	}
	dir := t.TempDir()
	sharddBin := filepath.Join(dir, "igepa-shardd")
	routerBin := filepath.Join(dir, "igepa-router")
	for bin, pkg := range map[string]string{
		sharddBin: "github.com/ebsn/igepa/cmd/igepa-shardd",
		routerBin: "github.com/ebsn/igepa/cmd/igepa-router",
	} {
		out, err := exec.Command("go", "build", "-o", bin, pkg).CombinedOutput()
		if err != nil {
			t.Fatalf("building %s: %v\n%s", pkg, err, out)
		}
	}

	const (
		S      = 2
		events = 24
		users  = 240
		seed   = 3
		batch  = 24
	)
	common := []string{
		"-workload", "synthetic", "-events", fmt.Sprint(events),
		"-users", fmt.Sprint(users), "-seed", fmt.Sprint(seed),
		"-batch", fmt.Sprint(batch),
	}
	var logs []*bytes.Buffer
	startProc := func(bin string, args ...string) {
		t.Helper()
		cmd := exec.Command(bin, append(args, common...)...)
		var buf bytes.Buffer
		cmd.Stdout, cmd.Stderr = &buf, &buf
		logs = append(logs, &buf)
		if err := cmd.Start(); err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() {
			cmd.Process.Kill()
			cmd.Wait()
		})
	}

	backendAddrs := make([]string, S)
	backendURLs := ""
	for i := 0; i < S; i++ {
		backendAddrs[i] = freeAddr(t)
		if i > 0 {
			backendURLs += ","
		}
		backendURLs += "http://" + backendAddrs[i]
		startProc(sharddBin, "-listen", backendAddrs[i],
			"-index", fmt.Sprint(i), "-cluster", fmt.Sprint(S))
	}
	routerAddr := freeAddr(t)
	startProc(routerBin, "-listen", routerAddr, "-backends", backendURLs, "-replay")
	base := "http://" + routerAddr

	hc := &http.Client{Timeout: 10 * time.Second}
	deadline := time.Now().Add(60 * time.Second)
	for {
		var h struct {
			Status string `json:"status"`
		}
		if _, err := getJSON(hc, base+"/healthz", &h); err == nil && h.Status == "ok" {
			break
		}
		if time.Now().After(deadline) {
			for i, l := range logs {
				t.Logf("proc %d:\n%s", i, l.String())
			}
			t.Fatal("cluster never came up")
		}
		time.Sleep(100 * time.Millisecond)
	}

	// the in-process oracles: the sharded run the cluster must reproduce
	// bit-for-bit, and the single-shard run the utility bound is against
	in, err := igepa.Synthetic(igepa.SyntheticConfig{Seed: seed, NumEvents: events, NumUsers: users})
	if err != nil {
		t.Fatal(err)
	}
	order := xrand.New(9).Perm(users)
	want, err := shard.Serve(in, order, shard.Options{Shards: S, Batch: batch, Seed: seed})
	if err != nil {
		t.Fatal(err)
	}
	single, err := shard.Serve(in, order, shard.Options{Shards: 1, Batch: batch, Seed: seed})
	if err != nil {
		t.Fatal(err)
	}

	for _, u := range order {
		code, err := postJSON(hc, base+"/v1/bid", map[string]any{"user": u, "wait": false}, nil)
		if err != nil {
			t.Fatalf("submit user %d: %v", u, err)
		}
		if code != http.StatusAccepted {
			t.Fatalf("submit user %d: %d", u, code)
		}
	}
	var dr struct {
		Drained bool `json:"drained"`
	}
	if _, err := postJSON(hc, base+"/admin/drain", struct{}{}, &dr); err != nil || !dr.Drained {
		t.Fatalf("drain: %v drained=%v", err, dr.Drained)
	}

	var st struct {
		Utility       float64 `json:"utility"`
		LeaseRenewals int     `json:"lease_renewals"`
		MovedSeats    int     `json:"moved_seats"`
		Degraded      bool    `json:"degraded"`
	}
	if _, err := getJSON(hc, base+"/statsz", &st); err != nil {
		t.Fatal(err)
	}
	if st.Degraded {
		t.Fatal("cluster degraded during the smoke")
	}
	if math.Abs(st.Utility-want.Utility) > 1e-6 {
		t.Fatalf("cluster utility %g, ServeSharded %g", st.Utility, want.Utility)
	}
	if st.LeaseRenewals != want.LeaseRenewals || st.MovedSeats != want.MovedSeats {
		t.Fatalf("cluster ran %d renewals / %d moved, ServeSharded %d / %d",
			st.LeaseRenewals, st.MovedSeats, want.LeaseRenewals, want.MovedSeats)
	}
	if ratio := st.Utility / single.Utility; ratio < 0.996 {
		t.Fatalf("cluster utility %g is %.4f of single-shard %g (acceptance floor 0.996)",
			st.Utility, ratio, single.Utility)
	}
}

// BenchmarkClusterHTTP measures sustained decided/s through the full
// distributed stack — router tier in front of two shard-process servers —
// under a closed-loop bid/cancel workload; BENCH_cluster.json in CI.
func BenchmarkClusterHTTP(b *testing.B) {
	in, err := igepa.Synthetic(igepa.SyntheticConfig{Seed: 1, NumEvents: 40, NumUsers: 400})
	if err != nil {
		b.Fatal(err)
	}
	const S = 2
	opt := shard.Options{Batch: 32, Seed: 1, CacheSize: 4096}
	urls := make([]string, S)
	for si := 0; si < S; si++ {
		bopt := opt
		bopt.Shards = 1
		bopt.ClusterShards, bopt.ClusterIndex = S, si
		srv, err := server.New(in, server.Config{Shard: bopt, FlushInterval: 200 * time.Microsecond})
		if err != nil {
			b.Fatal(err)
		}
		defer srv.Close()
		ts := httptest.NewServer(srv)
		defer ts.Close()
		urls[si] = ts.URL
	}
	ropt := opt
	ropt.Shards = S
	rt, err := router.New(in, router.Config{Backends: urls, Shard: ropt})
	if err != nil {
		b.Fatal(err)
	}
	defer rt.Close()
	if err := rt.CheckBackends(); err != nil {
		b.Fatal(err)
	}
	ts := httptest.NewServer(rt)
	defer ts.Close()

	var userCtr, decided atomic.Int64
	post := func(hc *http.Client, path string, body any) (int, error) {
		raw, _ := json.Marshal(body)
		resp, err := hc.Post(ts.URL+path, "application/json", bytes.NewReader(raw))
		if err != nil {
			return 0, err
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		return resp.StatusCode, nil
	}
	b.SetParallelism(4)
	b.ResetTimer()
	start := time.Now()
	b.RunParallel(func(pb *testing.PB) {
		hc := &http.Client{}
		u := int(userCtr.Add(1)-1) % in.NumUsers()
		for pb.Next() {
			code, err := post(hc, "/v1/bid", map[string]int{"user": u})
			if err != nil {
				b.Error(err)
				return
			}
			switch code {
			case http.StatusOK:
				decided.Add(1)
				post(hc, "/v1/cancel", map[string]int{"user": u})
			case http.StatusTooManyRequests, http.StatusServiceUnavailable:
				time.Sleep(time.Millisecond)
			case http.StatusConflict:
				post(hc, "/v1/cancel", map[string]int{"user": u})
			default:
				b.Errorf("bid user %d: %d", u, code)
				return
			}
		}
	})
	elapsed := time.Since(start)
	if elapsed > 0 {
		b.ReportMetric(float64(decided.Load())/elapsed.Seconds(), "decided/s")
	}
	if rt.Stats().Degraded {
		b.Fatalf("router degraded: %s", rt.Stats().DegradedReason)
	}
}
