// Package shard serves online IGEPA arrival streams across S independent
// shards — the serving architecture for platform-scale traffic, where one
// global planner over one global capacity table would serialize every
// arrival.
//
// # Partition
//
// Users are partitioned across shards by a stateless hash of (seed, user)
// (xrand.Hash64), so shard membership depends only on the seed — never on
// arrival order, batch boundaries or worker scheduling. Events are shared:
// every shard may grant seats of every event, but only out of its own
// capacity lease.
//
// # Capacity leases
//
// Each shard holds a lease on a slice of every event's capacity: a budget
// vector budget[s][v] with the invariant
//
//	Σ_s budget[s][v] ≤ cv   for every event v, at every instant,
//
// which makes the merged arrangement feasible by construction — no seat can
// be granted twice because no seat is ever leased twice. Initially each
// event's capacity is split evenly, the remainder rotated by event index so
// no shard systematically collects the extra seats. Arrivals are processed
// in batches of B; between batches the coordinator renews the leases:
// every shard's unused seats return to the pool and the pool is re-split
// evenly (remainder rotated by event and epoch). Consumed seats stay with
// the shard that granted them, so renewal never invalidates a past grant.
// Renewal is what keeps utility loss from capacity fragmentation bounded:
// a shard that received seats its users never wanted holds them for at most
// one batch.
//
// # Determinism and merge
//
// Within a batch the shards run concurrently (one planner per shard on the
// bounded par pool), each writing only its own arrangement part and its own
// planner state, and reading only its own lease vector (written exclusively
// between batches). The result is therefore a pure function of
// (instance, order, Options) — bit-identical for every Workers value and
// GOMAXPROCS — and the per-shard parts are merged with model.MergeDisjoint,
// which verifies the parts never overlap on a user.
package shard

import (
	"fmt"

	"github.com/ebsn/igepa/internal/conflict"
	"github.com/ebsn/igepa/internal/model"
	"github.com/ebsn/igepa/internal/online"
	"github.com/ebsn/igepa/internal/par"
	"github.com/ebsn/igepa/internal/xrand"
)

// DefaultBatch is the lease-renewal period (arrivals per epoch) used when
// Options.Batch is 0.
const DefaultBatch = 128

// shardSalt decorrelates the user→shard hash from other uses of the seed
// (interest tables, RNG streams).
const shardSalt = 0x5eed

// PlannerKind selects the per-shard online policy.
type PlannerKind int

const (
	// PlannerGreedy runs online.GreedyPlanner per shard.
	PlannerGreedy PlannerKind = iota
	// PlannerThreshold runs online.ThresholdPlanner per shard (Tau/Guard
	// from Options); the guard protects a fraction of each shard's lease.
	PlannerThreshold
)

// String implements fmt.Stringer.
func (k PlannerKind) String() string {
	switch k {
	case PlannerGreedy:
		return "greedy"
	case PlannerThreshold:
		return "threshold"
	default:
		return fmt.Sprintf("PlannerKind(%d)", int(k))
	}
}

// Options configures Serve.
type Options struct {
	// Shards is S, the number of independent serving shards. 0 means 1.
	Shards int
	// Batch is B, the number of arrivals between lease renewals.
	// 0 means DefaultBatch.
	Batch int
	// Workers bounds the worker pool running the shard planners; 0 means
	// GOMAXPROCS. Results are bit-identical for every value.
	Workers int
	// Seed drives the user→shard partition hash.
	Seed int64
	// Planner selects the per-shard policy.
	Planner PlannerKind
	// Tau, Guard parameterize PlannerThreshold (see online.ThresholdPlanner).
	Tau, Guard float64
	// MaxSetsPerUser caps per-user admissible-set enumeration
	// (0 = package default).
	MaxSetsPerUser int
}

// Result carries the merged arrangement plus the serving diagnostics.
type Result struct {
	Arrangement *model.Arrangement
	Utility     float64

	Shards int
	Batch  int
	// Epochs is the number of arrival batches processed.
	Epochs int
	// LeaseRenewals is the number of renewal rounds (Epochs−1 when more
	// than one shard runs, 0 otherwise).
	LeaseRenewals int
	// MovedSeats is the total number of seats whose owning shard changed
	// across all renewals — the lease-protocol traffic a distributed
	// deployment would pay in coordination messages.
	MovedSeats int
	// Arrivals[s] is the number of arrivals served by shard s.
	Arrivals []int
}

// ShardOf returns the shard in [0, shards) owning user u. The partition is
// a pure function of (seed, u, shards).
func ShardOf(seed int64, u, shards int) int {
	if shards <= 1 {
		return 0
	}
	return int(xrand.Hash64(seed, u, shardSalt) % uint64(shards))
}

// shardPlanner pairs a planner's Arrive with its load vector so the
// coordinator can read per-shard consumption at renewal time regardless of
// the concrete policy.
type shardPlanner struct {
	arrive func(u int) []int
	loads  []int
}

// Serve replays the arrival order across Options.Shards shards and returns
// the merged arrangement. Users absent from order receive no events; it
// errors on out-of-range or duplicate arrivals, mirroring online.Run.
func Serve(in *model.Instance, order []int, opt Options) (*Result, error) {
	if err := in.Check(); err != nil {
		return nil, err
	}
	s := opt.Shards
	if s <= 0 {
		s = 1
	}
	b := opt.Batch
	if b <= 0 {
		b = DefaultBatch
	}
	nu, nv := in.NumUsers(), in.NumEvents()
	seen := make([]bool, nu)
	for _, u := range order {
		if u < 0 || u >= nu {
			return nil, fmt.Errorf("shard: arrival of unknown user %d", u)
		}
		if seen[u] {
			return nil, fmt.Errorf("shard: user %d arrived twice", u)
		}
		seen[u] = true
	}

	// Materialize the shared weight cache before any parallel stage so the
	// lazy initialization never races (same contract as core.LPPacking),
	// and the conflict matrix once for all S planners.
	in.Weights()
	conf := conflict.FromFunc(in.NumEvents(), in.Conflicts)

	// Initial leases: even split, remainder rotated by event index.
	budgets := make([][]int, s)
	for si := range budgets {
		budgets[si] = make([]int, nv)
	}
	for v := 0; v < nv; v++ {
		cv := in.Events[v].Capacity
		base, rem := cv/s, cv%s
		for si := 0; si < s; si++ {
			budgets[si][v] = base
		}
		for k := 0; k < rem; k++ {
			budgets[(v+k)%s][v]++
		}
	}

	planners := make([]shardPlanner, s)
	parts := make([]*model.Arrangement, s)
	for si := 0; si < s; si++ {
		switch opt.Planner {
		case PlannerGreedy:
			p := online.NewGreedyBudgetShared(in, conf, budgets[si], opt.MaxSetsPerUser)
			planners[si] = shardPlanner{arrive: p.Arrive, loads: p.Loads()}
		case PlannerThreshold:
			p := online.NewThresholdBudgetShared(in, conf, budgets[si], opt.Tau, opt.Guard, opt.MaxSetsPerUser)
			planners[si] = shardPlanner{arrive: p.Arrive, loads: p.Loads()}
		default:
			return nil, fmt.Errorf("shard: unknown planner kind %v", opt.Planner)
		}
		parts[si] = model.NewArrangement(nu)
	}

	res := &Result{Shards: s, Batch: b, Arrivals: make([]int, s)}
	batches := make([][]int, s)
	newRem := make([]int, s)
	for start := 0; start < len(order); start += b {
		end := start + b
		if end > len(order) {
			end = len(order)
		}
		for si := range batches {
			batches[si] = batches[si][:0]
		}
		for _, u := range order[start:end] {
			si := ShardOf(opt.Seed, u, s)
			batches[si] = append(batches[si], u)
			res.Arrivals[si]++
		}
		par.Do(opt.Workers, s, func(si int) {
			for _, u := range batches[si] {
				parts[si].Sets[u] = planners[si].arrive(u)
			}
		})
		res.Epochs++
		if end < len(order) && s > 1 {
			res.MovedSeats += renewLeases(in, budgets, planners, res.Epochs, newRem)
			res.LeaseRenewals++
		}
	}

	merged, err := model.MergeDisjoint(nu, parts...)
	if err != nil {
		return nil, fmt.Errorf("shard: merging shard arrangements: %w", err)
	}
	merged.Normalize()
	res.Arrangement = merged
	res.Utility = model.Utility(in, merged)
	return res, nil
}

// renewLeases implements the renewal round: per event, reclaim every
// shard's unused seats and re-split the free pool evenly, rotating the
// remainder by (event, epoch) so the extra seats circulate. Consumed seats
// stay with their shard, so Σ_s budget[s][v] = cv is restored exactly.
// Returns the number of seats that changed owner.
func renewLeases(in *model.Instance, budgets [][]int, planners []shardPlanner, epoch int, newRem []int) int {
	s := len(budgets)
	moved := 0
	for v := 0; v < in.NumEvents(); v++ {
		used := 0
		for si := 0; si < s; si++ {
			used += planners[si].loads[v]
		}
		pool := in.Events[v].Capacity - used
		base, rem := pool/s, pool%s
		for si := 0; si < s; si++ {
			newRem[si] = base
		}
		for k := 0; k < rem; k++ {
			newRem[(v+epoch+k)%s]++
		}
		for si := 0; si < s; si++ {
			load := planners[si].loads[v]
			if oldRem := budgets[si][v] - load; newRem[si] > oldRem {
				moved += newRem[si] - oldRem
			}
			budgets[si][v] = load + newRem[si]
		}
	}
	return moved
}
