// Command igepa-bench regenerates every table and figure of the paper's
// evaluation (§IV): Fig. 1(a)–(f) utility sweeps on synthetic data, Table II
// on the Meetup-like dataset, the empirical approximation-ratio experiment
// behind Theorem 2, and the reproduction's own ablations.
//
// Usage:
//
//	igepa-bench -exp all                 # everything (fig1b is the slow one)
//	igepa-bench -exp fig1c -reps 50      # one experiment at paper repetitions
//	igepa-bench -exp table2 -csv out/    # also write CSV series
//	igepa-bench -exp ratio
//
// Results print as aligned text tables (one series per algorithm — the same
// series the paper plots); -csv additionally writes machine-readable files.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"runtime/pprof"
	"strings"
	"time"

	"github.com/ebsn/igepa/internal/eval"
)

func main() {
	var (
		exp   = flag.String("exp", "all", "experiment id: all, ratio, or one of "+strings.Join(eval.PaperExperimentIDs(), ", "))
		reps  = flag.Int("reps", 5, "repetitions per point (the paper uses 50)")
		seed  = flag.Int64("seed", 1, "base seed")
		csv   = flag.String("csv", "", "directory for CSV output (optional)")
		chart = flag.Bool("chart", false, "also draw each experiment as an ASCII line chart")
		par   = flag.Int("parallel", 0, "max concurrent repetitions (0 = all cores)")
		q     = flag.Bool("quiet", false, "suppress progress lines")
		cpup  = flag.String("cpuprofile", "", "write a CPU profile to this file")
		memp  = flag.String("memprofile", "", "write a heap profile to this file on exit")
	)
	flag.Parse()
	if *cpup != "" {
		f, err := os.Create(*cpup)
		if err != nil {
			fmt.Fprintln(os.Stderr, "igepa-bench:", err)
			os.Exit(1)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintln(os.Stderr, "igepa-bench:", err)
			os.Exit(1)
		}
		defer pprof.StopCPUProfile()
	}
	err := run(*exp, *reps, *seed, *csv, *par, *q, *chart)
	if *memp != "" {
		f, ferr := os.Create(*memp)
		if ferr != nil {
			fmt.Fprintln(os.Stderr, "igepa-bench:", ferr)
		} else {
			runtime.GC() // settle live heap before the snapshot
			if werr := pprof.WriteHeapProfile(f); werr != nil {
				fmt.Fprintln(os.Stderr, "igepa-bench:", werr)
			}
			f.Close()
		}
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "igepa-bench:", err)
		pprof.StopCPUProfile() // flush the profile even on the error path
		os.Exit(1)
	}
}

func run(exp string, reps int, seed int64, csvDir string, par int, quiet, chart bool) error {
	ids := []string{exp}
	if exp == "all" {
		ids = append(eval.PaperExperimentIDs(), "ratio")
	}
	for i, id := range ids {
		if i > 0 {
			fmt.Println()
		}
		if id == "ratio" {
			if err := runRatio(seed, quiet); err != nil {
				return err
			}
			continue
		}
		if err := runExperiment(id, reps, seed, csvDir, par, quiet, chart); err != nil {
			return err
		}
	}
	return nil
}

func runExperiment(id string, reps int, seed int64, csvDir string, par int, quiet, chart bool) error {
	e, err := eval.Paper(id, seed)
	if err != nil {
		return err
	}
	cfg := eval.RunConfig{Reps: reps, Seed: seed, Parallelism: par, Validate: true}
	if !quiet {
		cfg.Progress = os.Stderr
	}
	start := time.Now()
	table, err := eval.Run(e, cfg)
	if err != nil {
		return err
	}
	if err := eval.RenderText(os.Stdout, table); err != nil {
		return err
	}
	if chart {
		fmt.Println()
		if err := eval.RenderChart(os.Stdout, table); err != nil {
			return err
		}
	}
	fmt.Printf("(%s completed in %v)\n", id, time.Since(start).Round(time.Second))
	if csvDir != "" {
		if err := os.MkdirAll(csvDir, 0o755); err != nil {
			return err
		}
		path := filepath.Join(csvDir, id+".csv")
		f, err := os.Create(path)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := eval.RenderCSV(f, table); err != nil {
			return err
		}
		fmt.Printf("CSV written to %s\n", path)
	}
	return nil
}

func runRatio(seed int64, quiet bool) error {
	var progress *os.File
	if !quiet {
		progress = os.Stderr
	}
	res, err := eval.RunRatio(eval.RatioConfig{Seed: seed}, progress)
	if err != nil {
		return err
	}
	return eval.RenderRatioText(os.Stdout, res)
}
