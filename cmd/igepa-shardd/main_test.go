package main

import (
	"bytes"
	"context"
	"encoding/json"
	"net"
	"net/http"
	"os"
	"testing"
	"time"

	"github.com/ebsn/igepa/internal/shard"
)

func devNull(t *testing.T) *os.File {
	t.Helper()
	null, err := os.OpenFile(os.DevNull, os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { null.Close() })
	return null
}

func postJSON(t *testing.T, hc *http.Client, url string, body, out any) int {
	t.Helper()
	raw, _ := json.Marshal(body)
	resp, err := hc.Post(url, "application/json", bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if out != nil && resp.StatusCode < 300 {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatal(err)
		}
	}
	return resp.StatusCode
}

// TestShardServesCluster boots the command path on a loopback listener as
// shard 0 of a width-2 cluster and exercises the ownership gate and the
// wire renewal surface end to end.
func TestShardServesCluster(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	cfg := config{
		workload: "synthetic", events: 12, users: 60, seed: 6,
		index: 0, cluster: 2, batch: 16, planner: "greedy",
		flush: 200 * time.Microsecond, walSync: "interval",
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- serveListenerCtx(ctx, devNull(t), ln, cfg) }()

	base := "http://" + ln.Addr().String()
	hc := &http.Client{Timeout: 5 * time.Second}

	var health struct {
		Status  string `json:"status"`
		Cluster *struct {
			Shards int `json:"shards"`
			Index  int `json:"index"`
		} `json:"cluster"`
	}
	deadline := time.Now().Add(10 * time.Second)
	for {
		resp, err := hc.Get(base + "/healthz")
		if err == nil {
			json.NewDecoder(resp.Body).Decode(&health)
			resp.Body.Close()
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("server never came up: %v", err)
		}
		time.Sleep(10 * time.Millisecond)
	}
	if health.Status != "ok" || health.Cluster == nil || health.Cluster.Shards != 2 || health.Cluster.Index != 0 {
		t.Fatalf("healthz: %+v", health)
	}

	// ownership gate straight through the command config
	var owned, foreign int
	for u := 0; u < cfg.users; u++ {
		if shard.ShardOf(cfg.seed, u, cfg.cluster) == cfg.index {
			owned = u
			break
		}
	}
	for u := 0; u < cfg.users; u++ {
		if shard.ShardOf(cfg.seed, u, cfg.cluster) != cfg.index {
			foreign = u
			break
		}
	}
	if code := postJSON(t, hc, base+"/v1/bid", map[string]int{"user": owned}, nil); code != http.StatusOK {
		t.Fatalf("owned bid: %d", code)
	}
	if code := postJSON(t, hc, base+"/v1/bid", map[string]int{"user": foreign}, nil); code != http.StatusMisdirectedRequest {
		t.Fatalf("foreign bid: %d, want 421", code)
	}

	// one wire renewal round
	var d struct {
		Loads    []int `json:"loads"`
		Renewals int   `json:"renewals"`
	}
	if code := postJSON(t, hc, base+"/cluster/demand", struct{}{}, &d); code != http.StatusOK {
		t.Fatalf("demand: %d", code)
	}
	if len(d.Loads) != cfg.events {
		t.Fatalf("demand loads: %d, want %d", len(d.Loads), cfg.events)
	}
	var lr struct {
		Renewals int `json:"renewals"`
	}
	if code := postJSON(t, hc, base+"/cluster/lease", map[string]any{"budget": d.Loads}, &lr); code != http.StatusOK {
		t.Fatalf("lease: %d", code)
	}
	if lr.Renewals != 1 {
		t.Fatalf("renewals: %d", lr.Renewals)
	}

	cancel()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("clean shutdown: %v", err)
		}
	case <-time.After(15 * time.Second):
		t.Fatal("server did not shut down")
	}
}

// TestBadConfigRejected pins the flag validation through the command path.
func TestBadConfigRejected(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	for name, cfg := range map[string]config{
		"workload": {workload: "nope", cluster: 2, planner: "greedy", walSync: "interval"},
		"planner":  {workload: "synthetic", events: 8, users: 20, cluster: 2, planner: "nope", walSync: "interval"},
		"wal-sync": {workload: "synthetic", events: 8, users: 20, cluster: 2, planner: "greedy", walSync: "nope"},
		"index":    {workload: "synthetic", events: 8, users: 20, cluster: 2, index: 5, planner: "greedy", walSync: "interval"},
	} {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		if err := serveListenerCtx(ctx, devNull(t), ln, cfg); err == nil {
			t.Errorf("%s: bad config accepted", name)
		}
		cancel()
	}
}
