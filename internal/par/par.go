// Package par provides the bounded worker pool used by the embarrassingly
// parallel per-user and per-column stages of the arrangement pipeline:
// admissible-set enumeration, LP-rounding sampling, weight-table
// construction and simplex pricing updates.
//
// Determinism contract: callers pass loop bodies whose iterations are
// mutually independent and write only to iteration-owned slots (sets[i],
// rvec[j], ...). Under that contract the results are bit-identical for every
// worker count, so "parallel" never means "nondeterministic" anywhere in
// this repository — the property the end-to-end GOMAXPROCS invariance tests
// pin down.
package par

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// Workers resolves a worker-count option: n > 0 is taken literally, anything
// else means runtime.GOMAXPROCS(0).
func Workers(n int) int {
	if n > 0 {
		return n
	}
	return runtime.GOMAXPROCS(0)
}

// Ranges splits [0, n) into contiguous chunks of at least grain iterations
// and runs fn(lo, hi) on them from a pool of at most workers goroutines.
// Chunks are handed out dynamically (atomic cursor), so partitioning — but
// never the per-iteration arithmetic — depends on scheduling. With
// workers <= 1, or when n fits a single chunk, fn runs inline on the calling
// goroutine: small inputs pay zero synchronization.
func Ranges(workers, n, grain int, fn func(lo, hi int)) {
	if n <= 0 {
		return
	}
	if grain < 1 {
		grain = 1
	}
	workers = Workers(workers)
	if workers > n/grain {
		workers = n / grain
	}
	if workers <= 1 {
		fn(0, n)
		return
	}
	var cursor atomic.Int64
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				lo := int(cursor.Add(int64(grain))) - grain
				if lo >= n {
					return
				}
				hi := lo + grain
				if hi > n {
					hi = n
				}
				fn(lo, hi)
			}
		}()
	}
	wg.Wait()
}

// For runs fn(i) for every i in [0, n) on the bounded pool, chunked by
// grain. It is Ranges with a per-iteration body.
func For(workers, n, grain int, fn func(i int)) {
	Ranges(workers, n, grain, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			fn(i)
		}
	})
}

// Do runs fn(i) for every i in [0, n) with one task per index — For with
// grain 1, named for the "fixed set of heterogeneous tasks" reading: the
// sharded serving layer runs one shard per index, each a long-lived planner
// over its own batch slice. The determinism contract is the same: bodies
// must be independent and write only index-owned state.
func Do(workers, n int, fn func(i int)) {
	For(workers, n, 1, fn)
}
