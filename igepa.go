// Package igepa is a from-scratch Go implementation of Interaction-aware
// Global Event-Participant Arrangement (IGEPA) for event-based social
// networks, reproducing Kou, Zhou, Cheng, Du, Shi and Xu, "Interaction-Aware
// Arrangement for Event-Based Social Networks", IEEE ICDE 2019.
//
// The library assigns users to the events they bid for, maximizing a blend
// of user interest and social-interaction potential, subject to event
// capacities, user capacities and inter-event conflicts. The headline
// algorithm is LP-packing (Algorithm 1 of the paper): solve a benchmark
// linear program over per-user admissible event sets, randomly round it,
// then repair capacity violations — a ≥1/4-approximation at sampling rate
// α = 1/2.
//
// Quick start:
//
//	in, _ := igepa.Synthetic(igepa.SyntheticConfig{Seed: 1})
//	res, _ := igepa.LPPacking(in, igepa.LPPackingOptions{Seed: 2})
//	fmt.Println(res.Utility, igepa.Validate(in, res.Arrangement) == nil)
//
// Everything is deterministic given the seeds — including under the
// parallel pipeline, whose results are bit-identical for every worker count
// — uses only the standard library, and every arrangement can be re-checked
// with Validate. See DESIGN.md for the pipeline architecture; the paper
// sweeps are reproduced by cmd/igepa-bench and the reduced benchmarks in
// bench_test.go.
package igepa

import (
	"fmt"

	"github.com/ebsn/igepa/internal/admissible"
	"github.com/ebsn/igepa/internal/baselines"
	"github.com/ebsn/igepa/internal/core"
	"github.com/ebsn/igepa/internal/model"
	"github.com/ebsn/igepa/internal/online"
	"github.com/ebsn/igepa/internal/shard"
	"github.com/ebsn/igepa/internal/workload"
)

// Core data model (see Definitions 1-8 of the paper).
type (
	// Event is an event with capacity, attribute vector and optional time
	// interval.
	Event = model.Event
	// User is a user with capacity, attribute vector, bid set and social
	// degree.
	User = model.User
	// Instance is a full IGEPA problem instance.
	Instance = model.Instance
	// Arrangement is an event-participant arrangement M ⊆ V×U.
	Arrangement = model.Arrangement
	// Pair is a single (event, user) match.
	Pair = model.Pair
	// InstanceStats summarizes an instance.
	InstanceStats = model.Stats
	// ConflictFunc is the conflict predicate σ.
	ConflictFunc = model.ConflictFunc
	// InterestFunc is the interest function SI.
	InterestFunc = model.InterestFunc
)

// Utility computes Utility(M) (Definition 7).
func Utility(in *Instance, a *Arrangement) float64 { return model.Utility(in, a) }

// Validate checks arrangement feasibility (Definition 4); nil means
// feasible.
func Validate(in *Instance, a *Arrangement) error { return model.Validate(in, a) }

// ComputeStats summarizes an instance.
func ComputeStats(in *Instance) InstanceStats { return model.ComputeStats(in) }

// LP-packing (the paper's contribution).
type (
	// LPPackingOptions configures the LP-packing solver (α, seed, LP
	// solver, repair order, extensions).
	LPPackingOptions = core.Options
	// LPPackingResult carries the arrangement plus solver diagnostics,
	// including the certified LP upper bound on the optimum.
	LPPackingResult = core.Result
	// RepairOrder selects the capacity-repair scan order.
	RepairOrder = core.RepairOrder
)

// Repair orders (ablations; the paper's algorithm uses RepairByIndex).
const (
	RepairByIndex     = core.RepairByIndex
	RepairRandom      = core.RepairRandom
	RepairByWeightAsc = core.RepairByWeightAsc
)

// LPPacking runs Algorithm 1 of the paper on the instance.
func LPPacking(in *Instance, opt LPPackingOptions) (*LPPackingResult, error) {
	return core.LPPacking(in, opt)
}

// Incremental planning (serving extension): a Planner keeps the LP-packing
// pipeline's state alive between solves — admissible sets, the benchmark LP,
// a persistent warm-starting simplex basis, and (under the default repair
// order) the sampled-and-repaired arrangement itself with its utility
// accumulator — so a stream of small instance changes (bids arriving or
// expiring, capacities shrinking as seats are granted) costs work
// proportional to the delta instead of a from-scratch run. Given the same
// seed, Update's incremental rounding is bit-identical to a full re-round
// (Planner.Round, retained as the oracle); an empty delta short-circuits to
// the cached result.
type (
	// Planner is the incremental mode of LPPacking. Construct with
	// NewPlanner, mutate the instance in place, then call Update naming
	// what changed; Close releases the solver arena. Update's Result
	// aliases planner-owned state and is valid until the next Update.
	Planner = core.Planner
	// PlannerDelta names the users and events the caller mutated.
	PlannerDelta = core.Delta
)

// NewPlanner builds the incremental pipeline on the instance and solves the
// benchmark LP cold. Options.Presolve and Options.Solver must be unset (the
// planner drives its own persistent solver).
func NewPlanner(in *Instance, opt LPPackingOptions) (*Planner, error) {
	return core.NewPlanner(in, opt)
}

// Greedy runs GG, the deterministic greedy baseline: feasible (event, user)
// pairs are added in order of decreasing marginal utility.
func Greedy(in *Instance) *Arrangement { return baselines.Greedy(in) }

// RandomU runs the user-driven randomized baseline.
func RandomU(in *Instance, seed int64) *Arrangement { return baselines.RandomU(in, seed) }

// RandomV runs the event-driven randomized baseline.
func RandomV(in *Instance, seed int64) *Arrangement { return baselines.RandomV(in, seed) }

// Optimal computes the exact optimum by branch-and-bound; it is limited to
// small instances (at most OptimalUserLimit users).
func Optimal(in *Instance) (*Arrangement, float64, error) { return baselines.Optimal(in) }

// OptimalUserLimit is the largest |U| Optimal accepts.
const OptimalUserLimit = baselines.MaxOptimalUsers

// LocalSearch improves an arrangement with add and swap moves until a local
// optimum (an extension beyond the paper; never decreases utility).
func LocalSearch(in *Instance, start *Arrangement, maxRounds int) *Arrangement {
	return baselines.LocalSearch(in, start, maxRounds)
}

// Dataset generators (the paper's evaluation workloads).
type (
	// SyntheticConfig holds the Table I factors.
	SyntheticConfig = workload.SyntheticConfig
	// MeetupConfig parameterizes the Meetup-like real-data analogue.
	MeetupConfig = workload.MeetupConfig
)

// Synthetic generates a Table I synthetic instance.
func Synthetic(cfg SyntheticConfig) (*Instance, error) { return workload.Synthetic(cfg) }

// Meetup generates the Meetup-like instance (190 events / 2811 users by
// default, with the paper's preprocessing rules).
func Meetup(cfg MeetupConfig) (*Instance, error) { return workload.Meetup(cfg) }

// OnlineGreedy processes users in the given arrival order, granting each
// their best admissible set that fits the remaining capacities — the online
// variant of IGEPA (a reproduction extension; the paper's algorithms are
// offline). Users absent from order receive nothing.
func OnlineGreedy(in *Instance, order []int) (*Arrangement, error) {
	return online.Run(in, order, online.NewGreedy(in, 0))
}

// OnlineThreshold is OnlineGreedy with a reservation rule: the last
// guard·cv seats of every event are reserved for pairs of weight ≥ tau,
// protecting late high-value arrivals from early low-value fill.
func OnlineThreshold(in *Instance, order []int, tau, guard float64) (*Arrangement, error) {
	return online.Run(in, order, online.NewThreshold(in, tau, guard, 0))
}

// Sharded online serving (internal/shard): the arrival stream is partitioned
// across S shards, each running an independent online planner on its own
// goroutine against a lease on a slice of every event's capacity, with
// leases renewed between arrival batches. The merged arrangement is feasible
// by construction and bit-identical for every worker count.
type (
	// ShardOptions configures sharded serving (shard count, batch size,
	// planner policy, lease policy, admissible-set cache size, seed).
	ShardOptions = shard.Options
	// ShardResult carries the merged arrangement plus lease-protocol and
	// cache diagnostics.
	ShardResult = shard.Result
	// ShardPlannerKind selects the per-shard online policy.
	ShardPlannerKind = shard.PlannerKind
	// LeasePolicy selects the lease-renewal split rule.
	LeasePolicy = shard.LeasePolicy
	// ShardConfigError is the typed error ServeSharded returns on invalid
	// configuration (S ≤ 0, nil instance, negative batch or cache size,
	// unknown planner/lease kinds) instead of panicking.
	ShardConfigError = shard.ConfigError
	// ShardLeaseError reports a lease-invariant violation detected at a
	// renewal boundary (a lease-policy bug, surfaced instead of risking a
	// double-booked seat).
	ShardLeaseError = shard.LeaseError
	// OnlineBudgetError is the typed error of the budget-owning online
	// planner constructors (wrong length, negative or over-committed
	// leases).
	OnlineBudgetError = online.BudgetError
	// AdmissibleCacheStats reports the serving layer's admissible-set
	// cache counters (ShardResult.Cache; enable with
	// ShardOptions.CacheSize).
	AdmissibleCacheStats = admissible.CacheStats
	// ShardBoundStats is the live LP-bound tracker's outcome
	// (ShardResult.Bound; enable with ShardOptions.LiveBound): the
	// remaining-opportunity bound after each batch, per-update planner
	// latencies, and the bound planner's warm/cold solve counters.
	ShardBoundStats = shard.BoundStats
)

// Per-shard planner policies.
const (
	ShardPlannerGreedy    = shard.PlannerGreedy
	ShardPlannerThreshold = shard.PlannerThreshold
)

// Lease-renewal policies: demand-aware proportional split (default), even
// split (ablation), and the warm-started LP split.
const (
	LeaseDemand = shard.LeaseDemand
	LeaseEven   = shard.LeaseEven
	LeaseLP     = shard.LeaseLP
)

// ServeSharded replays the arrival order across opt.Shards shards and
// returns the merged arrangement (see internal/shard for the lease
// protocol).
func ServeSharded(in *Instance, order []int, opt ShardOptions) (*ShardResult, error) {
	return shard.Serve(in, order, opt)
}

// AlgorithmNames lists the names accepted by Solve, in display order.
func AlgorithmNames() []string {
	return []string{"lp-packing", "lp-packing+fill", "greedy", "random-u", "random-v", "local-search", "optimal"}
}

// Solve runs the named algorithm on the instance. Recognized names are
// listed by AlgorithmNames; "gg" is an alias for "greedy". The seed drives
// any internal randomness (ignored by deterministic algorithms).
func Solve(in *Instance, algorithm string, seed int64) (*Arrangement, error) {
	switch algorithm {
	case "lp-packing":
		res, err := LPPacking(in, LPPackingOptions{Seed: seed})
		if err != nil {
			return nil, err
		}
		return res.Arrangement, nil
	case "lp-packing+fill":
		res, err := LPPacking(in, LPPackingOptions{Seed: seed, GreedyFill: true})
		if err != nil {
			return nil, err
		}
		return res.Arrangement, nil
	case "greedy", "gg":
		return Greedy(in), nil
	case "random-u":
		return RandomU(in, seed), nil
	case "random-v":
		return RandomV(in, seed), nil
	case "local-search":
		return LocalSearch(in, Greedy(in), 0), nil
	case "optimal":
		arr, _, err := Optimal(in)
		return arr, err
	default:
		return nil, fmt.Errorf("igepa: unknown algorithm %q (have %v)", algorithm, AlgorithmNames())
	}
}
