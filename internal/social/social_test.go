package social

import (
	"math"
	"testing"

	"github.com/ebsn/igepa/internal/xrand"
)

func TestGraphBasics(t *testing.T) {
	g := NewGraph(4)
	g.AddEdge(0, 1)
	g.AddEdge(1, 2)
	g.AddEdge(1, 2) // duplicate ignored
	g.AddEdge(3, 3) // self loop ignored
	if g.NumEdges() != 2 {
		t.Fatalf("NumEdges = %d, want 2", g.NumEdges())
	}
	if !g.HasEdge(0, 1) || !g.HasEdge(1, 0) {
		t.Fatal("edge not symmetric")
	}
	if g.HasEdge(0, 2) || g.HasEdge(3, 3) {
		t.Fatal("spurious edge")
	}
	if g.Degree(1) != 2 || g.Degree(3) != 0 {
		t.Fatalf("degrees wrong: %v", g.Degrees())
	}
	if n := g.Neighbors(1, nil); len(n) != 2 || n[0] != 0 || n[1] != 2 {
		t.Fatalf("Neighbors(1) = %v", n)
	}
}

func TestDPI(t *testing.T) {
	g := NewGraph(5)
	g.AddEdge(0, 1)
	g.AddEdge(0, 2)
	if got := g.DPI(0); math.Abs(got-0.5) > 1e-12 {
		t.Errorf("DPI(0) = %v, want 0.5", got)
	}
	if got := g.DPI(4); got != 0 {
		t.Errorf("DPI(4) = %v, want 0", got)
	}
	if got := NewGraph(1).DPI(0); got != 0 {
		t.Errorf("DPI on singleton graph = %v", got)
	}
}

func TestPairFromIndex(t *testing.T) {
	n := 7
	idx := int64(0)
	for a := 0; a < n; a++ {
		for b := a + 1; b < n; b++ {
			ga, gb := pairFromIndex(idx, n)
			if ga != a || gb != b {
				t.Fatalf("pairFromIndex(%d) = (%d,%d), want (%d,%d)", idx, ga, gb, a, b)
			}
			idx++
		}
	}
}

func TestErdosRenyiDensity(t *testing.T) {
	for _, p := range []float64{0.05, 0.3, 0.5, 0.9} {
		rng := xrand.New(int64(p * 1000))
		const n = 200
		g := ErdosRenyi(n, p, rng)
		total := float64(n * (n - 1) / 2)
		rate := float64(g.NumEdges()) / total
		if math.Abs(rate-p) > 0.04 {
			t.Errorf("p=%v: edge rate %v", p, rate)
		}
	}
}

func TestErdosRenyiSparsePathMatchesDensity(t *testing.T) {
	// p=0.05 exercises the geometric-skipping path; verify mean degree.
	rng := xrand.New(42)
	const n, p = 1000, 0.02
	g := ErdosRenyi(n, p, rng)
	want := p * float64(n-1)
	if got := g.MeanDegree(); math.Abs(got-want) > 0.2*want {
		t.Errorf("mean degree %v, want ≈%v", got, want)
	}
}

func TestErdosRenyiExtremes(t *testing.T) {
	rng := xrand.New(1)
	if g := ErdosRenyi(50, 0, rng); g.NumEdges() != 0 {
		t.Error("p=0 has edges")
	}
	if g := ErdosRenyi(50, 1, rng); g.NumEdges() != 50*49/2 {
		t.Errorf("p=1 has %d edges", g.NumEdges())
	}
	if g := ErdosRenyi(1, 0.5, rng); g.NumEdges() != 0 {
		t.Error("single-vertex graph has edges")
	}
	if g := ErdosRenyi(0, 0.5, rng); g.Len() != 0 {
		t.Error("empty graph wrong size")
	}
}

func TestAffiliation(t *testing.T) {
	groups := [][]int{{0, 1, 2}, {2, 3}, {4}}
	g := Affiliation(6, groups)
	wantEdges := [][2]int{{0, 1}, {0, 2}, {1, 2}, {2, 3}}
	if g.NumEdges() != len(wantEdges) {
		t.Fatalf("NumEdges = %d, want %d", g.NumEdges(), len(wantEdges))
	}
	for _, e := range wantEdges {
		if !g.HasEdge(e[0], e[1]) {
			t.Errorf("missing edge %v", e)
		}
	}
	if g.Degree(5) != 0 {
		t.Error("isolated user has edges")
	}
}

func TestAffiliationOverlappingGroupsNoDoubleCount(t *testing.T) {
	// users 0,1 share two groups; the edge must be counted once
	g := Affiliation(2, [][]int{{0, 1}, {0, 1}})
	if g.NumEdges() != 1 || g.Degree(0) != 1 {
		t.Errorf("edges=%d deg0=%d, want 1,1", g.NumEdges(), g.Degree(0))
	}
}

func TestBarabasiAlbert(t *testing.T) {
	rng := xrand.New(5)
	const n, m = 300, 3
	g := BarabasiAlbert(n, m, rng)
	// every non-seed vertex has degree >= m
	for u := m + 1; u < n; u++ {
		if g.Degree(u) < m {
			t.Fatalf("vertex %d degree %d < m", u, g.Degree(u))
		}
	}
	// heavy tail: max degree well above mean
	maxDeg := 0
	for u := 0; u < n; u++ {
		if g.Degree(u) > maxDeg {
			maxDeg = g.Degree(u)
		}
	}
	if float64(maxDeg) < 2.5*g.MeanDegree() {
		t.Errorf("no hub: max %d vs mean %.1f", maxDeg, g.MeanDegree())
	}
}

func TestBarabasiAlbertPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("m=0 did not panic")
		}
	}()
	BarabasiAlbert(10, 0, xrand.New(1))
}

func TestDegreeHistogram(t *testing.T) {
	g := NewGraph(4)
	g.AddEdge(0, 1)
	g.AddEdge(0, 2)
	h := DegreeHistogram(g)
	// degrees: 2,1,1,0 → hist[0]=1 hist[1]=2 hist[2]=1
	if h[0] != 1 || h[1] != 2 || h[2] != 1 {
		t.Errorf("histogram = %v", h)
	}
}

func BenchmarkErdosRenyi2000Dense(b *testing.B) {
	rng := xrand.New(1)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = ErdosRenyi(2000, 0.5, rng)
	}
}

func BenchmarkErdosRenyi2000Sparse(b *testing.B) {
	rng := xrand.New(1)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = ErdosRenyi(2000, 0.01, rng)
	}
}
