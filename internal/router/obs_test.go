package router

import (
	"bytes"
	"net/http"
	"net/http/httptest"
	"testing"

	"github.com/ebsn/igepa/internal/obs"
	"github.com/ebsn/igepa/internal/shard"
)

// rawScrape drives a GET through the router handler and returns the parsed,
// lint-clean exposition keyed by family name.
func rawScrape(t *testing.T, cl *cluster, path string) map[string]obs.Family {
	t.Helper()
	req := httptest.NewRequest("GET", path, nil)
	rec := httptest.NewRecorder()
	cl.rt.ServeHTTP(rec, req)
	if rec.Code != http.StatusOK {
		t.Fatalf("GET %s: %d", path, rec.Code)
	}
	if ct := rec.Header().Get("Content-Type"); ct != obs.ContentType {
		t.Fatalf("GET %s content type %q, want %q", path, ct, obs.ContentType)
	}
	if problems := obs.LintExposition(bytes.NewReader(rec.Body.Bytes())); len(problems) > 0 {
		t.Fatalf("GET %s lint: %v", path, problems)
	}
	fams, err := obs.ParseFamilies(bytes.NewReader(rec.Body.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	byName := make(map[string]obs.Family, len(fams))
	for _, f := range fams {
		byName[f.Name] = f
	}
	return byName
}

// sampleValue finds one sample by name and label constraints.
func sampleValue(fams map[string]obs.Family, family, sample string, labels map[string]string) (float64, bool) {
	f, present := fams[family]
	if !present {
		return 0, false
	}
	for _, s := range f.Samples {
		if s.Name != sample {
			continue
		}
		match := true
		for k, want := range labels {
			if s.Label(k) != want {
				match = false
				break
			}
		}
		if match {
			v, err := s.Float()
			if err != nil {
				return 0, false
			}
			return v, true
		}
	}
	return 0, false
}

func mustSample(t *testing.T, fams map[string]obs.Family, family, sample string, labels map[string]string) float64 {
	t.Helper()
	v, ok := sampleValue(fams, family, sample, labels)
	if !ok {
		t.Fatalf("metric %s (sample %s, labels %v) missing", family, sample, labels)
	}
	return v
}

// driveRouterTraffic pushes a small deterministic load through the live
// router: bids for every user, cancels for a few.
func driveRouterTraffic(t *testing.T, cl *cluster, nu int) {
	t.Helper()
	for u := 0; u < nu; u++ {
		if code := cl.call(t, "POST", "/v1/bid", bidRequest{User: u}, nil); code != http.StatusOK {
			t.Fatalf("bid %d: %d", u, code)
		}
	}
	for u := 0; u < nu; u += 7 {
		cl.call(t, "POST", "/v1/cancel", cancelRequest{User: u}, nil)
	}
}

// TestRouterMetricsExposition pins the router's own /metrics: valid
// exposition, the proxied-traffic counters agreeing with /statsz, and a
// populated per-backend request/latency series for every shard.
func TestRouterMetricsExposition(t *testing.T) {
	in := testInstance(t, 21, 80, 12)
	cl := startCluster(t, in, 2, shard.Options{Batch: 16, Seed: 7}, Config{})
	driveRouterTraffic(t, cl, 80)

	fams := rawScrape(t, cl, "/metrics")
	st := cl.rt.Stats()
	if v := mustSample(t, fams, "igepa_router_arrivals_total", "igepa_router_arrivals_total", nil); v != float64(st.Arrivals) {
		t.Errorf("igepa_router_arrivals_total = %v, want %d (statsz)", v, st.Arrivals)
	}
	if v := mustSample(t, fams, "igepa_router_cancels_total", "igepa_router_cancels_total", nil); v != float64(st.Cancels) {
		t.Errorf("igepa_router_cancels_total = %v, want %d (statsz)", v, st.Cancels)
	}
	if st.Arrivals == 0 {
		t.Fatal("no traffic accounted")
	}

	// Both backends served requests; every round trip left a latency sample.
	for _, sh := range []string{"0", "1"} {
		reqs := mustSample(t, fams, "igepa_router_backend_requests_total", "igepa_router_backend_requests_total", map[string]string{"shard": sh})
		if reqs == 0 {
			t.Errorf("backend %s never counted a request", sh)
		}
		lat := mustSample(t, fams, "igepa_router_backend_seconds", "igepa_router_backend_seconds_count", map[string]string{"shard": sh})
		if lat != reqs {
			t.Errorf("backend %s latency count %v != request count %v", sh, lat, reqs)
		}
	}

	// The cluster renewed at least once under this load, and the mirrored
	// counter matches the coordinator.
	rounds := mustSample(t, fams, "igepa_router_renew_rounds_total", "igepa_router_renew_rounds_total", nil)
	if rounds < 1 {
		t.Errorf("igepa_router_renew_rounds_total = %v, want >= 1", rounds)
	}
	if got := float64(cl.rt.coord.Renewals()); rounds != got {
		t.Errorf("renew rounds metric %v != coordinator %v", rounds, got)
	}
	if n := mustSample(t, fams, "igepa_router_renew_seconds", "igepa_router_renew_seconds_count", nil); n != rounds {
		t.Errorf("renew duration count %v != rounds %v", n, rounds)
	}
	if v := mustSample(t, fams, "igepa_router_degraded", "igepa_router_degraded", nil); v != 0 {
		t.Errorf("igepa_router_degraded = %v on a healthy cluster", v)
	}

	// Method discipline on both endpoints.
	for _, path := range []string{"/metrics", "/cluster/metrics"} {
		req := httptest.NewRequest("POST", path, nil)
		rec := httptest.NewRecorder()
		cl.rt.ServeHTTP(rec, req)
		if rec.Code != http.StatusMethodNotAllowed {
			t.Errorf("POST %s: %d, want 405", path, rec.Code)
		}
	}
}

// TestClusterMetricsFanIn pins the deployment-wide scrape target: the
// router's /cluster/metrics re-exports every live backend's registry with a
// shard label, stays lint-clean after the merge, agrees with the backends'
// own counters, and keeps serving the survivors when a backend dies.
func TestClusterMetricsFanIn(t *testing.T) {
	in := testInstance(t, 33, 80, 12)
	cl := startCluster(t, in, 2, shard.Options{Batch: 16, Seed: 7}, Config{})
	driveRouterTraffic(t, cl, 80)

	fams := rawScrape(t, cl, "/cluster/metrics")
	var fanned int64
	for si, be := range cl.backends {
		sh := map[string]string{"shard": []string{"0", "1"}[si]}
		arr := mustSample(t, fams, "igepa_arrivals_total", "igepa_arrivals_total", sh)
		if want := float64(be.Stats().Arrivals); arr != want {
			t.Errorf("shard %d fanned-in arrivals = %v, want %v", si, arr, want)
		}
		fanned += int64(mustSample(t, fams, "igepa_decided_total", "igepa_decided_total", sh))
		// Histograms survive the merge with their shard label intact.
		mustSample(t, fams, "igepa_total_seconds", "igepa_total_seconds_count", sh)
		mustSample(t, fams, "igepa_queue_occupancy", "igepa_queue_occupancy", sh)
	}
	var total int64
	for _, be := range cl.backends {
		total += be.Stats().Decided
	}
	if fanned != total {
		t.Errorf("fanned-in decided sum = %d, want %d", fanned, total)
	}

	// Kill backend 1: the fan-in keeps exporting shard 0 and counts the
	// failed scrape instead of erroring the whole endpoint.
	cl.ts[1].Close()
	fams = rawScrape(t, cl, "/cluster/metrics")
	mustSample(t, fams, "igepa_arrivals_total", "igepa_arrivals_total", map[string]string{"shard": "0"})
	if _, ok := sampleValue(fams, "igepa_arrivals_total", "igepa_arrivals_total", map[string]string{"shard": "1"}); ok {
		t.Error("dead backend still present in the fan-in")
	}
	own := rawScrape(t, cl, "/metrics")
	if v := mustSample(t, own, "igepa_router_scrape_errors_total", "igepa_router_scrape_errors_total", nil); v < 1 {
		t.Errorf("igepa_router_scrape_errors_total = %v after a dead-backend scrape, want >= 1", v)
	}
}

// TestRouterMetricsDisabled pins the off switch: no /metrics, no
// /cluster/metrics, everything else unaffected.
func TestRouterMetricsDisabled(t *testing.T) {
	in := testInstance(t, 5, 40, 8)
	cl := startCluster(t, in, 2, shard.Options{Batch: 16, Seed: 7}, Config{DisableMetrics: true})
	if code := cl.call(t, "POST", "/v1/bid", bidRequest{User: 3}, nil); code != http.StatusOK {
		t.Fatalf("bid: %d", code)
	}
	for _, path := range []string{"/metrics", "/cluster/metrics"} {
		req := httptest.NewRequest("GET", path, nil)
		rec := httptest.NewRecorder()
		cl.rt.ServeHTTP(rec, req)
		if rec.Code != http.StatusNotFound {
			t.Fatalf("GET %s with DisableMetrics: %d, want 404", path, rec.Code)
		}
	}
}

// TestRouterMigrationMetrics pins the migration phase counters: one
// completed migration counts all four phases once and records the moved
// range's size.
func TestRouterMigrationMetrics(t *testing.T) {
	in := testInstance(t, 11, 60, 10)
	cl := startCluster(t, in, 2, shard.Options{Batch: 16, Seed: 3}, Config{})
	driveRouterTraffic(t, cl, 60)

	// Move every shard-0 user to shard 1.
	var movers []int
	for u := 0; u < in.NumUsers(); u++ {
		if cl.rt.ownerOf(u) == 0 {
			movers = append(movers, u)
		}
	}
	if len(movers) == 0 {
		t.Fatal("no users on shard 0")
	}
	var res struct {
		Migrated int `json:"migrated"`
		Seats    int `json:"seats_moved"`
	}
	if code := cl.call(t, "POST", "/admin/migrate", MigrateRequest{From: 0, To: 1, Users: movers}, &res); code != http.StatusOK {
		t.Fatalf("migrate: %d", code)
	}

	fams := rawScrape(t, cl, "/metrics")
	for _, ph := range []string{"drain", "export", "adopt", "commit"} {
		if v := mustSample(t, fams, "igepa_router_migration_phases_total", "igepa_router_migration_phases_total", map[string]string{"phase": ph}); v != 1 {
			t.Errorf("phase %s counted %v times, want 1", ph, v)
		}
	}
	if v := mustSample(t, fams, "igepa_router_migrated_users_total", "igepa_router_migrated_users_total", nil); v != float64(res.Migrated) {
		t.Errorf("igepa_router_migrated_users_total = %v, want %d", v, res.Migrated)
	}
	if v := mustSample(t, fams, "igepa_router_migrated_seats_total", "igepa_router_migrated_seats_total", nil); v != float64(res.Seats) {
		t.Errorf("igepa_router_migrated_seats_total = %v, want %d", v, res.Seats)
	}
}
