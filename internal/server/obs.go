package server

// The server's /metrics surface: every counter the bespoke /statsz JSON
// reports, re-exported as Prometheus text exposition via internal/obs,
// plus the latency histograms, WAL fsync cost, follower lag and the LP
// solver counters that previously never left the process.
//
// Three recording disciplines keep instrumentation from perturbing
// serving:
//
//   - Hot-path samples (decision latencies, grant counts) are recorded
//     inline by the batching loops — atomic increments only, no locks, no
//     allocations (pinned by TestArrivalPathAllocs).
//   - Engine-owned counters (lease renewals, moved seats, LP solver and
//     phase-timer totals) are mirrored into the registry only at points
//     that already hold the necessary exclusion (renewal rounds, replay
//     batches, drain). A /metrics scrape therefore never takes a shard
//     lock — it reads the last mirrored values.
//   - Cheap shared-state reads (queue depth, WAL writer stats, follower
//     lag) are refreshed at scrape time; none of their mutexes are held
//     across serving work.
//
// Every metric here obeys the DESIGN.md §12 cardinality rule: label values
// are bounded by configuration (shard index, HTTP code, LP phase), never
// by workload (user, event).

import (
	"fmt"
	"net/http"
	"time"

	"github.com/ebsn/igepa/internal/lp"
	"github.com/ebsn/igepa/internal/obs"
	"github.com/ebsn/igepa/internal/shard"
)

// serverObs bundles the registry and the handles the serving loops touch.
// A nil *serverObs (Config.DisableMetrics, benchmark baseline only) turns
// every method into a cheap no-op.
type serverObs struct {
	reg *obs.Registry

	arrivals, decided, granted, cancels *obs.Counter
	errs400, errs409, errs421           *obs.Counter
	errs429, errs503                    *obs.Counter
	leaseErrors, walErrors              *obs.Counter
	slowArrivals                        *obs.Counter

	queueWait, decide, total *obs.Histogram

	walCommit, walFsync  *obs.Histogram
	walAppends, walSyncs *obs.Counter
	walBytes             *obs.Counter

	batches, renewals, movedSeats, epochs *obs.Counter
	readyFlips                            *obs.Counter
	replicaRecords                        *obs.Counter

	lease, bound solverObs
	boundRemain  *obs.Gauge
	boundUpdates *obs.Counter
	boundErrors  *obs.Counter
}

// solverObs is one persistent LP solver's mirrored counter set.
type solverObs struct {
	cold, warm, fast, warmPivots *obs.Counter

	// warm-abandonment breakdown: igepa_lp_fallbacks_total{reason=...}.
	// reason="singular" | "repair_stall" | "bound_infeasible" | "error";
	// the legacy infeasible aggregate (stall+bound) is not re-exported —
	// it is derivable by summing the two reasons.
	fbSingular, fbStall, fbBound, fbError *obs.Counter

	refactorizations              *obs.Counter
	etaLen                        *obs.Gauge
	hyperFtran, hyperBtran        *obs.Counter
	candRefills, budgetExhausted  *obs.Counter
	warmCutovers                  *obs.Counter
	ftran, btran, pricing, update *obs.Counter
	factor                        *obs.Counter
}

func newSolverObs(reg *obs.Registry, name string) solverObs {
	l := obs.L("solver", name)
	fb := func(reason string) *obs.Counter {
		return reg.Counter("igepa_lp_fallbacks_total",
			"Warm re-solves abandoned for a cold solve, by reason.", l, obs.L("reason", reason))
	}
	return solverObs{
		cold:             reg.Counter("igepa_lp_cold_solves_total", "Cold (all-slack) LP solves.", l),
		warm:             reg.Counter("igepa_lp_warm_solves_total", "Warm-started LP re-solves.", l),
		fast:             reg.Counter("igepa_lp_fast_finishes_total", "Warm re-solves that skipped the primal pricing loop.", l),
		warmPivots:       reg.Counter("igepa_lp_warm_pivots_total", "Simplex pivots spent in warm re-solves.", l),
		fbSingular:       fb("singular"),
		fbStall:          fb("repair_stall"),
		fbBound:          fb("bound_infeasible"),
		fbError:          fb("error"),
		refactorizations: reg.Counter("igepa_lp_refactorizations_total", "LU rebuilds on the solver state.", l),
		etaLen:           reg.Gauge("igepa_lp_eta_chain_length", "Product-form updates since the last refactorization.", l),
		hyperFtran:       reg.Counter("igepa_lp_hypersparse_solves_total", "Triangular solves served by the symbolic-reach kernels.", l, obs.L("kernel", "ftran")),
		hyperBtran:       reg.Counter("igepa_lp_hypersparse_solves_total", "Triangular solves served by the symbolic-reach kernels.", l, obs.L("kernel", "btran")),
		candRefills:      reg.Counter("igepa_lp_candidate_refills_total", "Pricing passes that exhausted their rotating candidate window.", l),
		budgetExhausted:  reg.Counter("igepa_lp_repair_budget_exhausted_total", "Dual repairs that ran out of their pivot budget.", l),
		warmCutovers:     reg.Counter("igepa_lp_partial_warm_cutovers_total", "Keep-the-basis refactorize-and-retry recoveries after a repair stall.", l),
		ftran:            reg.Counter("igepa_lp_phase_ns_total", "Cumulative LP phase time in nanoseconds.", l, obs.L("phase", "ftran")),
		btran:            reg.Counter("igepa_lp_phase_ns_total", "Cumulative LP phase time in nanoseconds.", l, obs.L("phase", "btran")),
		pricing:          reg.Counter("igepa_lp_phase_ns_total", "Cumulative LP phase time in nanoseconds.", l, obs.L("phase", "pricing")),
		update:           reg.Counter("igepa_lp_phase_ns_total", "Cumulative LP phase time in nanoseconds.", l, obs.L("phase", "update")),
		factor:           reg.Counter("igepa_lp_phase_ns_total", "Cumulative LP phase time in nanoseconds.", l, obs.L("phase", "factor")),
	}
}

// mirror stores the cumulative solver counters (monotonic Store — safe to
// replay the same snapshot twice).
func (so *solverObs) mirror(st lp.SolverStats, t lp.PhaseTimers) {
	so.cold.Store(int64(st.ColdSolves))
	so.warm.Store(int64(st.WarmSolves))
	so.fast.Store(int64(st.FastFinishes))
	so.warmPivots.Store(int64(st.WarmPivots))
	so.fbSingular.Store(int64(st.FallbackSingular))
	so.fbStall.Store(int64(st.FallbackRepairStall))
	so.fbBound.Store(int64(st.FallbackBoundInfeasible))
	so.fbError.Store(int64(st.FallbackError))
	so.refactorizations.Store(st.Refactorizations)
	so.etaLen.Set(float64(st.EtaLen))
	so.hyperFtran.Store(t.HypersparseFtran)
	so.hyperBtran.Store(t.HypersparseBtran)
	so.candRefills.Store(t.CandidateRefills)
	so.budgetExhausted.Store(t.BudgetExhausted)
	so.warmCutovers.Store(t.PartialWarmCutovers)
	so.ftran.Store(t.Ftran.Nanoseconds())
	so.btran.Store(t.Btran.Nanoseconds())
	so.pricing.Store(t.Pricing.Nanoseconds())
	so.update.Store(t.Update.Nanoseconds())
	so.factor.Store(t.Factor.Nanoseconds())
}

// newServerObs registers the server's metric families and scrape-time
// gauges. Called from New after the queues exist.
func newServerObs(srv *Server) *serverObs {
	reg := obs.NewRegistry()
	o := &serverObs{
		reg:          reg,
		arrivals:     reg.Counter("igepa_arrivals_total", "Accepted bid submissions (queued)."),
		decided:      reg.Counter("igepa_decided_total", "Decisions delivered."),
		granted:      reg.Counter("igepa_granted_total", "Decisions that granted at least one event."),
		cancels:      reg.Counter("igepa_cancels_total", "Assignment cancellations."),
		errs400:      reg.Counter("igepa_http_errors_total", "HTTP error responses by status code.", obs.L("code", "400")),
		errs409:      reg.Counter("igepa_http_errors_total", "HTTP error responses by status code.", obs.L("code", "409")),
		errs421:      reg.Counter("igepa_http_errors_total", "HTTP error responses by status code.", obs.L("code", "421")),
		errs429:      reg.Counter("igepa_http_errors_total", "HTTP error responses by status code.", obs.L("code", "429")),
		errs503:      reg.Counter("igepa_http_errors_total", "HTTP error responses by status code.", obs.L("code", "503")),
		leaseErrors:  reg.Counter("igepa_lease_errors_total", "Lease invariant violations."),
		walErrors:    reg.Counter("igepa_wal_errors_total", "WAL append/fsync failures (durability lost)."),
		slowArrivals: reg.Counter("igepa_slow_arrivals_total", "Arrivals that crossed the -slowlog threshold."),
		queueWait:    reg.Histogram("igepa_queue_wait_seconds", "Enqueue to processing start.", obs.LatencyBuckets()),
		decide:       reg.Histogram("igepa_decision_seconds", "Planner time per arrival.", obs.LatencyBuckets()),
		total:        reg.Histogram("igepa_total_seconds", "Enqueue to decision delivered.", obs.LatencyBuckets()),
		walCommit:    reg.Histogram("igepa_wal_commit_seconds", "WAL append+commit per micro-batch, amortized per decision.", obs.LatencyBuckets()),
		walFsync:     reg.Histogram("igepa_wal_fsync_seconds", "Individual WAL fsync calls.", obs.LatencyBuckets()),
		walAppends:   reg.Counter("igepa_wal_appends_total", "Records appended to the WAL."),
		walSyncs:     reg.Counter("igepa_wal_syncs_total", "WAL fsync calls issued."),
		walBytes:     reg.Counter("igepa_wal_bytes_total", "Frame bytes appended to the WAL."),
		batches:      reg.Counter("igepa_batches_total", "Micro-batches processed (live) or global batches dispatched (replay)."),
		renewals:     reg.Counter("igepa_lease_renewals_total", "Lease renewal rounds."),
		movedSeats:   reg.Counter("igepa_moved_seats_total", "Seats that changed shard owner across renewals."),
		epochs:       reg.Counter("igepa_epochs_total", "Engine batch epochs (replay mode)."),
		readyFlips:   reg.Counter("igepa_readiness_flips_total", "Follower readiness transitions (either direction)."),
		replicaRecords: reg.Counter("igepa_replica_records_total",
			"WAL records applied by the follower tailer."),
		lease:        newSolverObs(reg, "lease"),
		bound:        newSolverObs(reg, "bound"),
		boundRemain:  reg.Gauge("igepa_lp_bound_remaining", "Latest remaining-opportunity LP bound."),
		boundUpdates: reg.Counter("igepa_lp_bound_updates_total", "Live-bound planner re-solves."),
		boundErrors:  reg.Counter("igepa_lp_bound_errors_total", "Live-bound planner failures."),
	}

	// Scrape-time gauges over shared state whose mutexes are never held
	// across serving work: per-queue depth, the configured limit, WAL
	// segment size, follower lag/readiness.
	limit := srv.qlimit
	reg.GaugeFunc("igepa_queue_limit", "Configured per-queue depth bound.", func() float64 { return float64(limit) })
	for qi, q := range srv.queues {
		q := q
		reg.GaugeFunc("igepa_queue_depth", "Requests waiting in the shard queue.",
			func() float64 { return float64(q.depth()) }, obs.L("shard", fmt.Sprint(qi)))
	}
	reg.GaugeFunc("igepa_queue_occupancy", "Deepest queue as a fraction of the depth bound.", func() float64 {
		max := 0
		for _, q := range srv.queues {
			if d := q.depth(); d > max {
				max = d
			}
		}
		return float64(max) / float64(limit)
	})
	reg.GaugeFunc("igepa_wal_size_bytes", "Logical WAL end offset.", func() float64 {
		return float64(srv.walOffset())
	})
	reg.GaugeFunc("igepa_replication_lag_bytes", "Unapplied suffix of the leader's log (follower only).", func() float64 {
		if srv.fol == nil {
			return 0
		}
		return float64(srv.fol.stats().LagBytes)
	})
	reg.GaugeFunc("igepa_replication_ready", "1 while the follower is within the lag bound (follower only).", func() float64 {
		if srv.fol == nil || !srv.follow.Load() {
			return 0
		}
		if srv.fol.stats().Ready {
			return 1
		}
		return 0
	})
	reg.GaugeFunc("igepa_up_seconds", "Process uptime.", func() float64 {
		return time.Since(srv.started).Seconds()
	})
	return o
}

// handleMetrics is GET /metrics: refresh the mirrored counters whose
// sources are atomics or short-mutex state, then serve the exposition. No
// shard lock is taken anywhere on this path.
func (srv *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		httpError(w, http.StatusMethodNotAllowed, "GET only")
		return
	}
	srv.obs.refresh(srv)
	w.Header().Set("Content-Type", obs.ContentType)
	srv.obs.reg.WritePrometheus(w)
}

// refresh mirrors scrape-safe counters: the bespoke atomic set (kept
// authoritative for /statsz), WAL writer stats, follower records and the
// slow-arrival count.
func (o *serverObs) refresh(srv *Server) {
	o.arrivals.Store(srv.m.arrivals.Load())
	o.decided.Store(srv.m.decided.Load())
	o.granted.Store(srv.m.granted.Load())
	o.cancels.Store(srv.m.cancels.Load())
	o.errs400.Store(srv.m.badRequests.Load())
	o.errs409.Store(srv.m.conflicts.Load())
	o.errs421.Store(srv.m.misrouted.Load())
	o.errs429.Store(srv.m.rejected.Load())
	o.errs503.Store(srv.m.unavailable.Load())
	o.leaseErrors.Store(srv.m.leaseErrors.Load())
	o.walErrors.Store(srv.m.walErrors.Load())
	o.batches.Store(srv.batches.Load())
	o.slowArrivals.Store(srv.slow.Count())
	if w := srv.walWriter(); w != nil {
		st := w.Stats()
		o.walAppends.Store(st.Appends)
		o.walSyncs.Store(st.Syncs)
		o.walBytes.Store(st.Bytes)
	}
	if srv.fol != nil {
		o.replicaRecords.Store(srv.fol.stats().Records)
	}
}

// observeDecision is the hot-path sample: three histogram observations.
// Nil-safe and allocation-free.
func (o *serverObs) observeDecision(wait, decide, total time.Duration) {
	if o == nil {
		return
	}
	o.queueWait.ObserveDuration(wait)
	o.decide.ObserveDuration(decide)
	o.total.ObserveDuration(total)
}

// observeWALCommit records the per-decision amortized append+commit cost.
func (o *serverObs) observeWALCommit(d time.Duration) {
	if o == nil {
		return
	}
	o.walCommit.ObserveDuration(d)
}

// observeFsync feeds wal.Options.ObserveSync.
func (o *serverObs) observeFsync(d time.Duration) {
	if o == nil {
		return
	}
	o.walFsync.ObserveDuration(d)
}

// noteReadyFlip counts a follower readiness transition.
func (o *serverObs) noteReadyFlip() {
	if o == nil {
		return
	}
	o.readyFlips.Inc()
}

// mirrorEngine stores the engine-owned cumulative counters. The caller
// must hold the same exclusion RenewLeases requires; the serving layer
// calls it from its renewal points (tryRenew, the replay dispatcher,
// drain), never from a scrape.
func (o *serverObs) mirrorEngine(eng *shard.Engine, replay bool) {
	if o == nil {
		return
	}
	o.renewals.Store(int64(eng.Renewals()))
	o.movedSeats.Store(int64(eng.MovedSeats()))
	if replay {
		o.epochs.Store(int64(eng.Epochs()))
	}
	st := eng.LPStats()
	o.lease.mirror(st.Lease, st.LeaseTimers)
	if eng.BoundEnabled() {
		o.bound.mirror(st.Bound, st.BoundTimers)
		o.boundRemain.Set(st.BoundRemaining)
		o.boundUpdates.Store(int64(st.BoundUpdates))
		o.boundErrors.Store(int64(st.BoundErrors))
	}
}
