// Package modeltest is the shared feasibility oracle of the planner test
// suites. Every algorithm in this repository — offline LP-packing, the
// baselines, local search, the online planners and the sharded serving
// layer — must produce arrangements satisfying the same Definition-4
// constraints, so their tests assert them through one package instead of
// ad-hoc per-test checks.
//
// The helpers re-derive each invariant from first principles (recounting
// loads, re-evaluating the conflict predicate, re-searching bid lists)
// rather than delegating to model.Validate, and RequireFeasible additionally
// cross-checks that model.Validate agrees — so a bug in the validator and a
// bug in a planner cannot mask each other.
package modeltest

import (
	"fmt"
	"testing"

	"github.com/ebsn/igepa/internal/model"
)

// CheckCapacities verifies capacity conservation: no event hosts more
// attendees than its capacity, counted independently of model.Validate.
func CheckCapacities(in *model.Instance, a *model.Arrangement) error {
	load := a.Loads(in.NumEvents())
	for v, n := range load {
		if n > in.Events[v].Capacity {
			return errf("event %d oversubscribed: %d attendees, capacity %d", v, n, in.Events[v].Capacity)
		}
	}
	return nil
}

// CheckConflictFree verifies that no user attends two conflicting events.
func CheckConflictFree(in *model.Instance, a *model.Arrangement) error {
	for u, set := range a.Sets {
		for i := 0; i < len(set); i++ {
			for j := i + 1; j < len(set); j++ {
				if in.Conflicts(set[i], set[j]) {
					return errf("user %d attends conflicting events %d and %d", u, set[i], set[j])
				}
			}
		}
	}
	return nil
}

// CheckDegrees verifies the per-user degree bounds: every assigned set has
// between 0 and cu events, contains no duplicates, and stays within the
// user's bid list.
func CheckDegrees(in *model.Instance, a *model.Arrangement) error {
	for u, set := range a.Sets {
		if len(set) > in.Users[u].Capacity {
			return errf("user %d attends %d events, capacity %d", u, len(set), in.Users[u].Capacity)
		}
		seen := map[int]bool{}
		for _, v := range set {
			if v < 0 || v >= in.NumEvents() {
				return errf("user %d assigned unknown event %d", u, v)
			}
			if seen[v] {
				return errf("user %d assigned event %d twice", u, v)
			}
			seen[v] = true
			if !model.Contains(in.Users[u].Bids, v) {
				return errf("user %d assigned event %d they did not bid for", u, v)
			}
		}
	}
	return nil
}

// Feasible runs every invariant check and returns the first violation, or
// nil for a feasible arrangement.
func Feasible(in *model.Instance, a *model.Arrangement) error {
	if len(a.Sets) != len(in.Users) {
		return errf("arrangement covers %d users, instance has %d", len(a.Sets), len(in.Users))
	}
	if err := CheckDegrees(in, a); err != nil {
		return err
	}
	if err := CheckCapacities(in, a); err != nil {
		return err
	}
	return CheckConflictFree(in, a)
}

// Check is Feasible plus the cross-check that model.Validate agrees — the
// full oracle in error form, usable from testing/quick property closures
// that return bool.
func Check(in *model.Instance, a *model.Arrangement) error {
	if err := Feasible(in, a); err != nil {
		return err
	}
	if err := model.Validate(in, a); err != nil {
		return errf("model.Validate disagrees with invariant oracle: %v", err)
	}
	return nil
}

// RequireFeasible fails the test unless the arrangement satisfies every
// invariant AND model.Validate agrees. The label prefixes failure messages
// so table-driven callers can tell sub-cases apart.
func RequireFeasible(t testing.TB, label string, in *model.Instance, a *model.Arrangement) {
	t.Helper()
	if err := Check(in, a); err != nil {
		t.Fatalf("%s: %v", label, err)
	}
}

// RequireWithinBudget fails the test unless per-event loads stay within the
// given budget vector — the lease-slice invariant of the sharded serving
// layer (budget ≤ capacity implies CheckCapacities, but not vice versa).
func RequireWithinBudget(t testing.TB, label string, in *model.Instance, a *model.Arrangement, budget []int) {
	t.Helper()
	load := a.Loads(in.NumEvents())
	for v, n := range load {
		if n > budget[v] {
			t.Fatalf("%s: event %d exceeds budget: %d seats granted, %d leased", label, v, n, budget[v])
		}
	}
}

// RequireEqual fails the test unless the two arrangements are bit-identical
// — the determinism assertion shared by the reproducibility tests.
func RequireEqual(t testing.TB, label string, want, got *model.Arrangement) {
	t.Helper()
	if !want.Equal(got) {
		t.Fatalf("%s: arrangements differ\nwant: %v\ngot:  %v", label, want.Sets, got.Sets)
	}
}

func errf(format string, args ...any) error {
	return fmt.Errorf("modeltest: "+format, args...)
}
