package core

import (
	"testing"

	"github.com/ebsn/igepa/internal/lp"
	"github.com/ebsn/igepa/internal/model"
	"github.com/ebsn/igepa/internal/workload"
	"github.com/ebsn/igepa/internal/xrand"
)

// requireSameAsOracle asserts that an incremental Update result is
// bit-identical to the from-scratch oracle (a full Round on the same
// planner state): same arrangement, same utility bits, same diagnostics.
func requireSameAsOracle(t *testing.T, label string, res, oracle *Result) {
	t.Helper()
	if !res.Arrangement.Equal(oracle.Arrangement) {
		t.Fatalf("%s: incremental arrangement differs from full re-round", label)
	}
	if res.Utility != oracle.Utility {
		t.Fatalf("%s: utility %.17g != oracle %.17g", label, res.Utility, oracle.Utility)
	}
	if res.LPObjective != oracle.LPObjective || res.LPIterations != oracle.LPIterations ||
		res.LPColumns != oracle.LPColumns {
		t.Fatalf("%s: LP diagnostics differ: %+v vs %+v", label, res, oracle)
	}
	if res.TruncatedUsers != oracle.TruncatedUsers || res.SampledPairs != oracle.SampledPairs ||
		res.RepairDropped != oracle.RepairDropped || res.FilledPairs != oracle.FilledPairs {
		t.Fatalf("%s: rounding diagnostics differ: %+v vs %+v", label, res, oracle)
	}
}

// TestPlannerUpdateMatchesFullRound is the incremental rounding's pinned
// acceptance suite: scripted mutation chains on the synthetic and Meetup
// fixtures, across worker counts, with every Update compared bit-for-bit
// against the retained full re-round oracle.
func TestPlannerUpdateMatchesFullRound(t *testing.T) {
	for _, tc := range []struct {
		name string
		in   *model.Instance
	}{
		{"synthetic", parallelTestInstance(t)},
		{"meetup", meetupTestInstance(t)},
	} {
		for _, workers := range []int{1, 3, 8} {
			in := tc.in.Clone()
			p, err := NewPlanner(in, Options{Seed: 21, Workers: workers})
			if err != nil {
				t.Fatal(err)
			}
			rng := xrand.New(4321)
			for step := 0; step < 8; step++ {
				d := mutateInstance(in, rng)
				res, err := p.Update(d)
				if err != nil {
					t.Fatalf("%s w=%d step %d: %v", tc.name, workers, step, err)
				}
				oracle, err := p.Round()
				if err != nil {
					t.Fatal(err)
				}
				requireSameAsOracle(t, tc.name, res, oracle)
				if err := model.Validate(in, res.Arrangement); err != nil {
					t.Fatalf("%s w=%d step %d: infeasible: %v", tc.name, workers, step, err)
				}
			}
			if p.Stats().WarmSolves == 0 {
				t.Errorf("%s w=%d: no update took the warm path: %+v", tc.name, workers, p.Stats())
			}
			p.Close()
		}
	}
}

// TestPlannerUpdateMatchesFullRoundWithFill covers the GreedyFill
// configuration: the fill itself is a global pass, but it must start from
// the maintained post-repair state and land exactly where the full path
// lands.
func TestPlannerUpdateMatchesFullRoundWithFill(t *testing.T) {
	in := parallelTestInstance(t)
	p, err := NewPlanner(in, Options{Seed: 5, GreedyFill: true})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	rng := xrand.New(99)
	for step := 0; step < 5; step++ {
		res, err := p.Update(mutateInstance(in, rng))
		if err != nil {
			t.Fatal(err)
		}
		oracle, err := p.Round()
		if err != nil {
			t.Fatal(err)
		}
		requireSameAsOracle(t, "fill", res, oracle)
		if err := model.Validate(in, res.Arrangement); err != nil {
			t.Fatalf("step %d: infeasible: %v", step, err)
		}
	}
}

// TestPlannerUpdateAblationRepairOrders pins that the non-default repair
// orders still work through Update (via the full re-round fallback) and
// match the oracle trivially.
func TestPlannerUpdateAblationRepairOrders(t *testing.T) {
	for _, order := range []RepairOrder{RepairRandom, RepairByWeightAsc} {
		in := parallelTestInstance(t)
		p, err := NewPlanner(in, Options{Seed: 5, Repair: order})
		if err != nil {
			t.Fatal(err)
		}
		rng := xrand.New(12)
		for step := 0; step < 3; step++ {
			res, err := p.Update(mutateInstance(in, rng))
			if err != nil {
				t.Fatal(err)
			}
			oracle, err := p.Round()
			if err != nil {
				t.Fatal(err)
			}
			requireSameAsOracle(t, order.String(), res, oracle)
		}
		p.Close()
	}
}

// TestPlannerEmptyDeltaShortCircuits pins the empty-delta fast path: no
// cache sync, no validation, no LP solve — the cached result comes back
// as-is.
func TestPlannerEmptyDeltaShortCircuits(t *testing.T) {
	in := parallelTestInstance(t)
	p, err := NewPlanner(in, Options{Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()

	// Before any Update: the empty delta materializes the result once.
	first, err := p.Update(Delta{})
	if err != nil {
		t.Fatal(err)
	}
	oracle, err := p.Round()
	if err != nil {
		t.Fatal(err)
	}
	requireSameAsOracle(t, "empty-first", first, oracle)

	stats := p.Stats()
	again, err := p.Update(Delta{})
	if err != nil {
		t.Fatal(err)
	}
	if again != first {
		t.Error("empty delta did not return the cached result")
	}
	if p.Stats() != stats {
		t.Errorf("empty delta triggered solver work: %+v -> %+v", stats, p.Stats())
	}

	// After a real update the cache refreshes; an empty delta returns it.
	rng := xrand.New(8)
	res, err := p.Update(mutateInstance(in, rng))
	if err != nil {
		t.Fatal(err)
	}
	stats = p.Stats()
	cached, err := p.Update(Delta{})
	if err != nil {
		t.Fatal(err)
	}
	if cached != res || p.Stats() != stats {
		t.Error("empty delta after an update re-solved or returned a different result")
	}
}

// TestPlannerUpdateSurvivesColdFallback forces a cold re-solve mid-stream
// (a brand-new bid pattern large enough to churn most columns can do it;
// here we simply rebuild the planner's tracker baseline by toggling a big
// batch) and checks the incremental state recovers through the rebuild
// path.
func TestPlannerUpdateSurvivesColdFallback(t *testing.T) {
	in := parallelTestInstance(t)
	p, err := NewPlanner(in, Options{Seed: 77})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	// A very large delta: every fourth user drops all bids, then restores
	// them next step. Whether or not the solver falls back cold, the result
	// must track the oracle.
	var saved [][]int
	var users []int
	for u := 0; u < in.NumUsers(); u += 4 {
		saved = append(saved, in.Users[u].Bids)
		users = append(users, u)
		in.Users[u].Bids = nil
	}
	res, err := p.Update(Delta{Users: users})
	if err != nil {
		t.Fatal(err)
	}
	oracle, err := p.Round()
	if err != nil {
		t.Fatal(err)
	}
	requireSameAsOracle(t, "mass-drop", res, oracle)
	for i, u := range users {
		in.Users[u].Bids = saved[i]
	}
	res, err = p.Update(Delta{Users: users})
	if err != nil {
		t.Fatal(err)
	}
	oracle, err = p.Round()
	if err != nil {
		t.Fatal(err)
	}
	requireSameAsOracle(t, "mass-restore", res, oracle)
}

// TestPlannerUpdateRejectsInvalidMutation pins the validation order of the
// delta path: an out-of-range or unsorted bid list must come back as the
// documented error — before the cache patch indexes anything by it — and
// must leave the planner usable once the caller fixes the instance.
func TestPlannerUpdateRejectsInvalidMutation(t *testing.T) {
	in := parallelTestInstance(t)
	p, err := NewPlanner(in, Options{Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()

	good := in.Users[4].Bids
	for _, bad := range [][]int{
		{in.NumEvents() + 7}, // out of range: would index past the bidder lists
		{3, 1},               // unsorted
	} {
		in.Users[4].Bids = bad
		if _, err := p.Update(Delta{Users: []int{4}}); err == nil {
			t.Fatalf("Update accepted invalid bids %v", bad)
		}
	}
	// Recovery: restore a valid mutation and check against the oracle.
	in.Users[4].Bids = good[1:]
	res, err := p.Update(Delta{Users: []int{4}})
	if err != nil {
		t.Fatalf("Update after recovery: %v", err)
	}
	oracle, err := p.Round()
	if err != nil {
		t.Fatal(err)
	}
	requireSameAsOracle(t, "recovery", res, oracle)

	in.Events[2].Capacity = -1
	if _, err := p.Update(Delta{Events: []int{2}}); err == nil {
		t.Fatal("Update accepted negative event capacity")
	}
	in.Events[2].Capacity = 3
	if _, err := p.Update(Delta{Events: []int{2}}); err != nil {
		t.Fatalf("Update after capacity recovery: %v", err)
	}
}

// FuzzIncrementalRound mutates an instance through a Planner — bids
// arriving and expiring, capacities shrinking and growing, occasional empty
// deltas — asserting after every update that the incremental path is
// bit-identical to a rebuild-and-round of the mutated state (the full Round
// oracle) and that the warm LP still certifies.
func FuzzIncrementalRound(f *testing.F) {
	f.Add(int64(1), uint8(5))
	f.Add(int64(42), uint8(11))
	f.Fuzz(func(t *testing.T, seed int64, steps uint8) {
		in, err := workload.Synthetic(workload.SyntheticConfig{
			Seed: seed, NumUsers: 50 + int(uint64(seed)%50), NumEvents: 14,
			MaxEventCap: 5, MaxUserCap: 3, MinBids: 2, MaxBids: 5,
		})
		if err != nil {
			t.Fatal(err)
		}
		p, err := NewPlanner(in, Options{Seed: seed})
		if err != nil {
			t.Fatal(err)
		}
		defer p.Close()
		rng := xrand.New(seed ^ 0x1234)
		for step := 0; step < int(steps%10); step++ {
			var d Delta
			if !rng.Bool(0.15) {
				d = mutateInstance(in, rng)
			}
			res, err := p.Update(d)
			if err != nil {
				t.Fatal(err)
			}
			if err := lp.Verify(p.solver.Problem(), p.sol, 1e-6); err != nil {
				t.Fatalf("step %d: warm certificate: %v", step, err)
			}
			oracle, err := p.Round()
			if err != nil {
				t.Fatal(err)
			}
			requireSameAsOracle(t, "fuzz", res, oracle)
			if err := model.Validate(in, res.Arrangement); err != nil {
				t.Fatalf("step %d: infeasible arrangement: %v", step, err)
			}
		}
	})
}
