package conflict

import (
	"math"
	"testing"
	"testing/quick"

	"github.com/ebsn/igepa/internal/xrand"
)

func TestMatrixBasics(t *testing.T) {
	m := NewMatrix(5)
	if m.Len() != 5 {
		t.Fatalf("Len = %d", m.Len())
	}
	m.Add(1, 3)
	if !m.Conflicts(1, 3) || !m.Conflicts(3, 1) {
		t.Fatal("Add not symmetric")
	}
	if m.Conflicts(1, 2) {
		t.Fatal("spurious conflict")
	}
	m.Add(2, 2) // self conflict ignored
	if m.Conflicts(2, 2) {
		t.Fatal("self conflict recorded")
	}
	if m.NumPairs() != 1 {
		t.Fatalf("NumPairs = %d, want 1", m.NumPairs())
	}
}

func TestPairsRoundTrip(t *testing.T) {
	rng := xrand.New(1)
	m := Random(40, 0.2, rng)
	m2 := FromPairs(40, m.Pairs())
	for v := 0; v < 40; v++ {
		for w := 0; w < 40; w++ {
			if m.Conflicts(v, w) != m2.Conflicts(v, w) {
				t.Fatalf("round trip mismatch at (%d,%d)", v, w)
			}
		}
	}
}

func TestFromFunc(t *testing.T) {
	m := FromFunc(6, func(v, w int) bool { return (v+w)%3 == 0 })
	if !m.Conflicts(1, 2) || m.Conflicts(1, 3) {
		t.Fatal("FromFunc wrong")
	}
	// Self pairs never evaluated/recorded even though (3+3)%3==0.
	if m.Conflicts(3, 3) {
		t.Fatal("self conflict recorded")
	}
}

func TestRandomRate(t *testing.T) {
	rng := xrand.New(7)
	const n, p = 150, 0.3
	m := Random(n, p, rng)
	total := n * (n - 1) / 2
	rate := float64(m.NumPairs()) / float64(total)
	if math.Abs(rate-p) > 0.03 {
		t.Errorf("conflict rate %v, want ≈%v", rate, p)
	}
	// symmetry by construction
	for v := 0; v < n; v++ {
		for w := v + 1; w < n; w++ {
			if m.Conflicts(v, w) != m.Conflicts(w, v) {
				t.Fatal("asymmetric")
			}
		}
	}
}

func TestRandomExtremes(t *testing.T) {
	rng := xrand.New(9)
	if got := Random(20, 0, rng).NumPairs(); got != 0 {
		t.Errorf("p=0 produced %d pairs", got)
	}
	if got := Random(20, 1, rng).NumPairs(); got != 190 {
		t.Errorf("p=1 produced %d pairs, want 190", got)
	}
}

func TestFromIntervals(t *testing.T) {
	start := []int64{0, 5, 10, 10}
	end := []int64{6, 8, 20, 12}
	m := FromIntervals(start, end)
	cases := []struct {
		v, w int
		want bool
	}{
		{0, 1, true},  // [0,6) overlaps [5,8)
		{0, 2, false}, // [0,6) vs [10,20)
		{1, 2, false}, // [5,8) vs [10,20): touching at nothing
		{2, 3, true},  // [10,20) overlaps [10,12)
		{0, 3, false},
	}
	for _, tc := range cases {
		if got := m.Conflicts(tc.v, tc.w); got != tc.want {
			t.Errorf("Conflicts(%d,%d) = %v, want %v", tc.v, tc.w, got, tc.want)
		}
	}
}

func TestFromIntervalsAdjacentDoNotConflict(t *testing.T) {
	// back-to-back sessions [0,10) and [10,20) do not overlap
	m := FromIntervals([]int64{0, 10}, []int64{10, 20})
	if m.Conflicts(0, 1) {
		t.Error("adjacent intervals flagged as conflicting")
	}
}

func TestFromIntervalsMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic on mismatched lengths")
		}
	}()
	FromIntervals([]int64{0}, []int64{1, 2})
}

// Property: Groups returns a partition into pairwise-conflicting cliques.
func TestGroupsAreCliquePartition(t *testing.T) {
	f := func(seed int64) bool {
		rng := xrand.New(seed)
		n := 5 + rng.Intn(60)
		m := Random(n, 0.05+rng.Float64()*0.9, rng)
		groups := m.Groups()
		seen := make([]bool, n)
		for _, g := range groups {
			for i, v := range g {
				if seen[v] {
					return false // not a partition
				}
				seen[v] = true
				for _, w := range g[i+1:] {
					if !m.Conflicts(v, w) {
						return false // not a clique
					}
				}
			}
		}
		for _, s := range seen {
			if !s {
				return false // missing element
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestGroupsNoConflicts(t *testing.T) {
	m := NewMatrix(4)
	groups := m.Groups()
	if len(groups) != 4 {
		t.Errorf("conflict-free events should be singleton groups, got %v", groups)
	}
}

func TestGroupsFullClique(t *testing.T) {
	m := Random(6, 1, xrand.New(1))
	groups := m.Groups()
	if len(groups) != 1 || len(groups[0]) != 6 {
		t.Errorf("complete conflict graph should be one group, got %v", groups)
	}
}

func BenchmarkRandom200(b *testing.B) {
	rng := xrand.New(1)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = Random(200, 0.3, rng)
	}
}
