// Package eval is the experiment harness that regenerates every table and
// figure of the paper's evaluation (§IV): it runs a set of algorithms over
// swept workload configurations, repeats each cell with per-repetition
// seeds, aggregates utilities, and renders text tables and CSV (one series
// per algorithm — the same rows/series the paper plots).
package eval

import (
	"fmt"
	"io"
	"runtime"
	"sync"

	"github.com/ebsn/igepa/internal/model"
	"github.com/ebsn/igepa/internal/stats"
)

// Algorithm is a named arrangement algorithm under test.
type Algorithm struct {
	Name string
	// Run computes an arrangement; seed drives any internal randomness.
	Run func(in *model.Instance, seed int64) (*model.Arrangement, error)
}

// Point is one x-axis position of an experiment.
type Point struct {
	// Label names the point in output, e.g. "|V|=200".
	Label string
	// X is the numeric x value (for CSV plotting).
	X float64
	// Gen builds the instance for repetition rep. Implementations must be
	// deterministic in rep.
	Gen func(rep int) (*model.Instance, error)
}

// Experiment is a sweep: utilities of each algorithm at each point,
// averaged over repetitions (the paper repeats 50×).
type Experiment struct {
	ID         string // e.g. "fig1b"
	Title      string // e.g. "utility vs number of users"
	XLabel     string // e.g. "|U|"
	Points     []Point
	Algorithms []Algorithm
}

// Cell is the aggregated result of one (point, algorithm) pair.
type Cell struct {
	stats.Summary
}

// Series is one algorithm's results across all points.
type Series struct {
	Algorithm string
	Cells     []Cell
}

// Table is a completed experiment.
type Table struct {
	Experiment *Experiment
	Reps       int
	Series     []Series
}

// RunConfig controls execution.
type RunConfig struct {
	// Reps is the number of repetitions per point (paper: 50). 0 means 5.
	Reps int
	// Seed is the base seed; repetition r of point p derives its own
	// deterministic seed, so results are reproducible and independent of
	// Parallelism.
	Seed int64
	// Parallelism bounds concurrent repetitions; 0 means GOMAXPROCS.
	Parallelism int
	// Validate re-checks the feasibility of every arrangement produced
	// (cheap; on by default in the bench tool).
	Validate bool
	// Progress, when non-nil, receives one line per completed point.
	Progress io.Writer
}

// Run executes the experiment and aggregates utilities.
func Run(e *Experiment, cfg RunConfig) (*Table, error) {
	reps := cfg.Reps
	if reps <= 0 {
		reps = 5
	}
	par := cfg.Parallelism
	if par <= 0 {
		par = runtime.GOMAXPROCS(0)
	}

	type job struct{ point, rep int }
	jobs := make(chan job)
	outcomes := make(chan outcome)

	var wg sync.WaitGroup
	for w := 0; w < par; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := range jobs {
				outcomes <- runOne(e, cfg, j.point, j.rep)
			}
		}()
	}
	go func() {
		for p := range e.Points {
			for r := 0; r < reps; r++ {
				jobs <- job{p, r}
			}
		}
		close(jobs)
	}()
	go func() {
		wg.Wait()
		close(outcomes)
	}()

	// utils[point][alg][rep]
	utils := make([][][]float64, len(e.Points))
	for p := range utils {
		utils[p] = make([][]float64, len(e.Algorithms))
		for a := range utils[p] {
			utils[p][a] = make([]float64, reps)
		}
	}
	var firstErr error
	done := make([]int, len(e.Points))
	for o := range outcomes {
		if o.err != nil {
			if firstErr == nil {
				firstErr = o.err
			}
			continue
		}
		for a, u := range o.utils {
			utils[o.point][a][o.rep] = u
		}
		done[o.point]++
		if done[o.point] == reps && cfg.Progress != nil {
			fmt.Fprintf(cfg.Progress, "[%s] %s done (%d reps)\n", e.ID, e.Points[o.point].Label, reps)
		}
	}
	if firstErr != nil {
		return nil, firstErr
	}

	t := &Table{Experiment: e, Reps: reps}
	for a, alg := range e.Algorithms {
		s := Series{Algorithm: alg.Name, Cells: make([]Cell, len(e.Points))}
		for p := range e.Points {
			s.Cells[p] = Cell{stats.Summarize(utils[p][a])}
		}
		t.Series = append(t.Series, s)
	}
	return t, nil

}

// outcome is the result of one (point, repetition) job: the utility each
// algorithm achieved on that repetition's instance.
type outcome struct {
	point, rep int
	utils      []float64
	err        error
}

func runOne(e *Experiment, cfg RunConfig, point, rep int) (o outcome) {
	o.point, o.rep = point, rep
	in, err := e.Points[point].Gen(rep)
	if err != nil {
		o.err = fmt.Errorf("eval: %s point %d rep %d: generate: %w", e.ID, point, rep, err)
		return o
	}
	o.utils = make([]float64, len(e.Algorithms))
	for a, alg := range e.Algorithms {
		seed := deriveSeed(cfg.Seed, point, rep, a)
		arr, err := alg.Run(in, seed)
		if err != nil {
			o.err = fmt.Errorf("eval: %s %s at %s rep %d: %w", e.ID, alg.Name, e.Points[point].Label, rep, err)
			return o
		}
		if cfg.Validate {
			if err := model.Validate(in, arr); err != nil {
				o.err = fmt.Errorf("eval: %s %s produced infeasible arrangement: %w", e.ID, alg.Name, err)
				return o
			}
		}
		o.utils[a] = model.Utility(in, arr)
	}
	return o
}

// deriveSeed mixes the base seed with the job coordinates (splitmix64-style)
// so every (point, rep, algorithm) triple has an independent stream.
func deriveSeed(base int64, point, rep, alg int) int64 {
	z := uint64(base) ^ 0x9e3779b97f4a7c15
	for _, v := range [3]uint64{uint64(point), uint64(rep), uint64(alg)} {
		z ^= v + 0x9e3779b97f4a7c15 + (z << 6) + (z >> 2)
		z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	}
	return int64(z)
}
