package admissible

import (
	"container/list"
	"sync/atomic"
)

// Cache is a fixed-capacity LRU of admissible-set enumerations, keyed by the
// (open bid set, user capacity) pair that determines the enumeration's
// structure. It exists for the serving hot path: an online planner re-runs
// the admissible-set DFS on every arrival, yet the *family* of admissible
// sets — all nonempty, pairwise non-conflicting subsets of the open bids
// with size ≤ cap — depends only on (open set, cap, conflict matrix), never
// on the arriving user's weights. Repeat bid patterns (the common case on a
// live platform: users re-submitting after a cancellation, or many users
// bidding the same popular handful of events) therefore skip the DFS
// entirely and only re-score the cached family under the new user's weights.
//
// Only complete enumerations are cached: when MaxSetsPerUser truncates the
// DFS, the retained subset depends on the enumerating user's weight order,
// so caching it would leak one user's preferences into another's decision.
// Callers must check Result.Truncated before Insert (the online planners
// do); the reference workloads never hit the cap.
//
// A Cache is owned by a single goroutine (one per serving shard); lookups
// and inserts are not synchronized. The statistics counters are atomics so
// an admin/metrics endpoint may read them concurrently with the owner.
type Cache struct {
	capacity int
	ll       *list.List               // front = most recently used
	table    map[uint64]*list.Element // signature → entry

	hits, misses, evictions, collisions atomic.Int64
	size                                atomic.Int64
}

// cacheEntry stores the full key next to the family so a 64-bit signature
// collision degrades to a miss instead of returning another key's sets (a
// wrong family could propose events outside the user's open set — an
// infeasibility, not just a slowdown).
type cacheEntry struct {
	sig    uint64
	cap    int
	open   []int   // the key's open bid set, sorted ascending (owned copy)
	family [][]int // every admissible set, events sorted ascending
}

// DefaultCacheSize is the per-shard entry count used when a caller enables
// caching without choosing a size.
const DefaultCacheSize = 4096

// NewCache returns an LRU cache holding at most capacity enumerations
// (capacity ≤ 0 means DefaultCacheSize).
func NewCache(capacity int) *Cache {
	if capacity <= 0 {
		capacity = DefaultCacheSize
	}
	return &Cache{
		capacity: capacity,
		ll:       list.New(),
		table:    make(map[uint64]*list.Element, capacity),
	}
}

// signature hashes (open, cap) with FNV-1a over the little-endian event ids.
// The hash is deterministic across processes, so cache behavior — and with
// it the serving layer's decisions — is a pure function of the request
// history, never of process-local seeding.
func signature(open []int, cap int) uint64 {
	const (
		offset64 = 0xcbf29ce484222325
		prime64  = 0x100000001b3
	)
	h := uint64(offset64)
	mix := func(x uint64) {
		for i := 0; i < 8; i++ {
			h ^= x & 0xff
			h *= prime64
			x >>= 8
		}
	}
	mix(uint64(cap))
	for _, v := range open {
		mix(uint64(v))
	}
	return h
}

// Lookup returns the cached family for (open, cap) and records a hit or a
// miss. The returned slices are shared with the cache: callers must treat
// them as read-only.
func (c *Cache) Lookup(open []int, cap int) ([][]int, bool) {
	el, ok := c.table[signature(open, cap)]
	if ok {
		e := el.Value.(*cacheEntry)
		if e.cap == cap && equalInts(e.open, open) {
			c.ll.MoveToFront(el)
			c.hits.Add(1)
			return e.family, true
		}
		// 64-bit collision between distinct keys: count it and miss.
		c.collisions.Add(1)
	}
	c.misses.Add(1)
	return nil, false
}

// Insert stores the family for (open, cap), copying the key, and evicts the
// least recently used entry when the cache is full. A signature collision
// overwrites the colliding slot (last writer wins — both keys stay correct
// because Lookup verifies the full key).
func (c *Cache) Insert(open []int, cap int, family [][]int) {
	sig := signature(open, cap)
	e := &cacheEntry{sig: sig, cap: cap, open: append([]int(nil), open...), family: family}
	if el, ok := c.table[sig]; ok {
		el.Value = e
		c.ll.MoveToFront(el)
		return
	}
	if c.ll.Len() >= c.capacity {
		lru := c.ll.Back()
		c.ll.Remove(lru)
		delete(c.table, lru.Value.(*cacheEntry).sig)
		c.evictions.Add(1)
		c.size.Add(-1)
	}
	c.table[sig] = c.ll.PushFront(e)
	c.size.Add(1)
}

// CacheStats is a point-in-time snapshot of a cache's counters. It is also
// the aggregation currency: the sharded layers sum per-shard snapshots.
type CacheStats struct {
	Hits, Misses int64
	Evictions    int64
	Collisions   int64
	Entries      int64
}

// HitRate returns Hits/(Hits+Misses), or 0 before any lookup.
func (s CacheStats) HitRate() float64 {
	if n := s.Hits + s.Misses; n > 0 {
		return float64(s.Hits) / float64(n)
	}
	return 0
}

// Add accumulates another snapshot (per-shard aggregation).
func (s CacheStats) Add(o CacheStats) CacheStats {
	s.Hits += o.Hits
	s.Misses += o.Misses
	s.Evictions += o.Evictions
	s.Collisions += o.Collisions
	s.Entries += o.Entries
	return s
}

// Stats snapshots the counters. Safe to call concurrently with the owner's
// lookups and inserts.
func (c *Cache) Stats() CacheStats {
	return CacheStats{
		Hits:       c.hits.Load(),
		Misses:     c.misses.Load(),
		Evictions:  c.evictions.Load(),
		Collisions: c.collisions.Load(),
		Entries:    c.size.Load(),
	}
}

func equalInts(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i, x := range a {
		if b[i] != x {
			return false
		}
	}
	return true
}
