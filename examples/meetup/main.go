// Meetup: reproduce the paper's real-dataset experiment (Table II) on the
// Meetup-like analogue of the San Francisco crawl — 190 events, 2811 users,
// time-overlap conflicts, group-based social edges, attribute-based
// interests, and the paper's capacity/bid preprocessing rules.
package main

import (
	"fmt"
	"log"
	"time"

	"github.com/ebsn/igepa"
)

func main() {
	fmt.Println("building the Meetup-like dataset (190 events, 2811 users)...")
	in, err := igepa.Meetup(igepa.MeetupConfig{Seed: 1})
	if err != nil {
		log.Fatal(err)
	}
	st := igepa.ComputeStats(in)
	fmt.Printf("  bids/user %.1f, time-conflict rate %.3f, mean degree %.1f\n\n",
		st.MeanBidsPerUser, st.ConflictRate, st.MeanDegree)

	// Table II of the paper compares four algorithms on this dataset; the
	// paper reports LP-packing > GG > Random-U > Random-V with a narrow
	// spread (2129.86 / 2099.88 / 2019.60 / 2000.92 on the original crawl).
	type row struct {
		name string
		util float64
		dur  time.Duration
	}
	var rows []row

	start := time.Now()
	res, err := igepa.LPPacking(in, igepa.LPPackingOptions{
		Seed: 2,
		// Heavy Meetup users have large attendance histories; cap their
		// admissible-set enumeration (the cap keeps the heaviest sets and
		// every singleton, and is reported in res.TruncatedUsers).
		MaxSetsPerUser: 2000,
	})
	if err != nil {
		log.Fatal(err)
	}
	rows = append(rows, row{"LP-packing", res.Utility, time.Since(start)})

	for _, name := range []string{"greedy", "random-u", "random-v"} {
		start = time.Now()
		arr, err := igepa.Solve(in, name, 2)
		if err != nil {
			log.Fatal(err)
		}
		if err := igepa.Validate(in, arr); err != nil {
			log.Fatal(err)
		}
		label := name
		if name == "greedy" {
			label = "GG"
		}
		rows = append(rows, row{label, igepa.Utility(in, arr), time.Since(start)})
	}

	fmt.Println("Table II analogue — utility on the Meetup-like dataset")
	fmt.Println("algorithm    utility     time")
	fmt.Println("------------------------------------")
	for _, r := range rows {
		fmt.Printf("%-12s %-11.2f %v\n", r.name, r.util, r.dur.Round(time.Millisecond))
	}
	fmt.Printf("\nLP upper bound on OPT: %.2f (LP-packing reaches %.1f%%)\n",
		res.LPObjective, 100*res.Utility/res.LPObjective)
	if res.TruncatedUsers > 0 {
		fmt.Printf("admissible sets truncated for %d heavy users (cap 2000/user)\n", res.TruncatedUsers)
	}
}
