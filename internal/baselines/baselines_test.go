package baselines

import (
	"math"
	"testing"
	"testing/quick"

	"github.com/ebsn/igepa/internal/conflict"
	"github.com/ebsn/igepa/internal/core"
	"github.com/ebsn/igepa/internal/model"
	"github.com/ebsn/igepa/internal/model/modeltest"
	"github.com/ebsn/igepa/internal/xrand"
)

func tinyInstance() *model.Instance {
	si := [][]float64{
		{0.9, 0.5, 0.1},
		{0.4, 0.8, 0.0},
		{0.0, 0.0, 0.7},
	}
	return &model.Instance{
		Events: []model.Event{{Capacity: 2}, {Capacity: 1}, {Capacity: 1}},
		Users: []model.User{
			{Capacity: 2, Bids: []int{0, 1, 2}, Degree: 2},
			{Capacity: 1, Bids: []int{0, 1}, Degree: 1},
			{Capacity: 1, Bids: []int{2}, Degree: 0},
		},
		Conflicts: func(v, w int) bool {
			return (v == 0 && w == 1) || (v == 1 && w == 0)
		},
		Interest: func(u, v int) float64 { return si[u][v] },
		Beta:     0.5,
	}
}

func randomInstance(seed int64) *model.Instance {
	rng := xrand.New(seed)
	nv := 2 + rng.Intn(7)
	nu := 2 + rng.Intn(8)
	conf := conflict.Random(nv, rng.Float64()*0.6, rng)
	in := &model.Instance{
		Conflicts: conf.Conflicts,
		Interest:  func(u, v int) float64 { return xrand.HashFloat(seed, u, v) },
		Beta:      rng.Float64(),
	}
	for v := 0; v < nv; v++ {
		in.Events = append(in.Events, model.Event{Capacity: 1 + rng.Intn(3)})
	}
	for u := 0; u < nu; u++ {
		nb := 1 + rng.Intn(nv)
		seen := map[int]bool{}
		var bids []int
		for len(bids) < nb {
			v := rng.Intn(nv)
			if !seen[v] {
				seen[v] = true
				bids = append(bids, v)
			}
		}
		for i := 1; i < len(bids); i++ {
			for j := i; j > 0 && bids[j] < bids[j-1]; j-- {
				bids[j], bids[j-1] = bids[j-1], bids[j]
			}
		}
		in.Users = append(in.Users, model.User{
			Capacity: 1 + rng.Intn(3),
			Bids:     bids,
			Degree:   rng.Intn(nu),
		})
	}
	return in
}

func TestAllBaselinesFeasible(t *testing.T) {
	f := func(seed int64) bool {
		in := randomInstance(seed)
		for _, arr := range []*model.Arrangement{
			RandomU(in, seed),
			RandomV(in, seed),
			Greedy(in),
		} {
			if modeltest.Check(in, arr) != nil {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestGreedyDeterministic(t *testing.T) {
	in := tinyInstance()
	a := Greedy(in)
	b := Greedy(in)
	if model.Utility(in, a) != model.Utility(in, b) {
		t.Error("Greedy not deterministic")
	}
}

func TestGreedyOnTiny(t *testing.T) {
	// greedy pairs by weight: u0 has DPI 1 → w(u0,·) ≥ 0.5 for all events:
	// w(u0,0)=0.95, w(u0,1)=0.75, w(u0,2)=0.55; w(u1,1)=0.65, w(u1,0)=0.45;
	// w(u2,2)=0.35.
	// Order: (u0,e0) .95 → assign. (u0,e1) .75 → conflicts e0, skip.
	// (u1,e1) .65 → assign. (u0,e2) .55 → assign (u0 cap 2).
	// (u1,e0) .45 → u1 at cap. (u2,e2) .35 → e2 full. Total:
	// .95+.65+.55 = 2.15 (optimal here).
	in := tinyInstance()
	arr := Greedy(in)
	if got := model.Utility(in, arr); math.Abs(got-2.15) > 1e-9 {
		t.Errorf("greedy utility %v, want 2.15", got)
	}
	modeltest.RequireFeasible(t, "greedy-tiny", in, arr)
}

func TestRandomBaselinesSeedStable(t *testing.T) {
	in := tinyInstance()
	u1, u2 := RandomU(in, 5), RandomU(in, 5)
	if model.Utility(in, u1) != model.Utility(in, u2) {
		t.Error("RandomU not seed-stable")
	}
	v1, v2 := RandomV(in, 5), RandomV(in, 5)
	if model.Utility(in, v1) != model.Utility(in, v2) {
		t.Error("RandomV not seed-stable")
	}
}

func TestOptimalOnTiny(t *testing.T) {
	in := tinyInstance()
	arr, val, err := Optimal(in)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(val-2.15) > 1e-9 {
		t.Errorf("optimal value %v, want 2.15", val)
	}
	modeltest.RequireFeasible(t, "optimal-tiny", in, arr)
	if math.Abs(model.Utility(in, arr)-val) > 1e-9 {
		t.Error("reported optimum disagrees with arrangement utility")
	}
}

func TestOptimalRejectsLargeInstances(t *testing.T) {
	in := &model.Instance{
		Conflicts: func(v, w int) bool { return false },
		Interest:  func(u, v int) float64 { return 0 },
		Beta:      1,
		Users:     make([]model.User, MaxOptimalUsers+1),
	}
	if _, _, err := Optimal(in); err == nil {
		t.Error("oversized instance accepted")
	}
}

// Optimal must dominate every other algorithm, and the LP bound must
// dominate Optimal (Lemma 1).
func TestOptimalDominatesAndLPBounds(t *testing.T) {
	f := func(seed int64) bool {
		in := randomInstance(seed)
		arr, opt, err := Optimal(in)
		if err != nil || modeltest.Check(in, arr) != nil {
			return false
		}
		for _, other := range []*model.Arrangement{
			RandomU(in, seed), RandomV(in, seed), Greedy(in),
		} {
			if model.Utility(in, other) > opt+1e-9 {
				return false
			}
		}
		res, err := core.LPPacking(in, core.Options{Seed: seed})
		if err != nil {
			return false
		}
		if res.Utility > opt+1e-9 {
			return false
		}
		return res.LPObjective >= opt-1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestLocalSearchOnlyImproves(t *testing.T) {
	f := func(seed int64) bool {
		in := randomInstance(seed)
		start := RandomU(in, seed)
		before := model.Utility(in, start)
		improved := LocalSearch(in, start, 0)
		if modeltest.Check(in, improved) != nil {
			return false
		}
		return model.Utility(in, improved) >= before-1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestLocalSearchFillsObviousGap(t *testing.T) {
	in := tinyInstance()
	empty := model.NewArrangement(3)
	improved := LocalSearch(in, empty, 0)
	if model.Utility(in, improved) <= 0 {
		t.Error("local search failed to add any feasible pair")
	}
}

func BenchmarkGreedyMedium(b *testing.B) {
	in := randomInstance(1)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = Greedy(in)
	}
}
