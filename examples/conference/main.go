// Conference: build an IGEPA instance by hand — a two-day conference with
// parallel session tracks (time-overlap conflicts), attendees with topic
// interests (cosine similarity over topic vectors), and a collaboration
// graph — then let LP-packing build the seating plan.
//
// This example shows how to assemble an Instance from your own data instead
// of the built-in generators: custom events, custom conflict semantics,
// custom interest function.
package main

import (
	"fmt"
	"log"
	"math"

	"github.com/ebsn/igepa"
)

// topics: 0=systems 1=ml 2=theory 3=databases
var sessionNames = []string{
	"Storage Engines", "Neural Ranking", "Complexity I", "Query Optimization",
	"Distributed KV", "LLM Serving", "Complexity II", "Streaming SQL",
	"Consensus", "AutoML",
}

func main() {
	// Ten sessions over two days, three parallel rooms: sessions in the
	// same slot overlap in time and therefore conflict.
	// Slot s runs [s·100, s·100+90) in conference minutes.
	slotOf := []int64{0, 0, 0, 1, 1, 1, 2, 2, 3, 3}
	topicOf := [][]float64{
		{1, 0, 0, 0.3}, {0, 1, 0, 0}, {0, 0.2, 1, 0}, {0.2, 0, 0, 1},
		{1, 0, 0, 0.5}, {0.3, 1, 0, 0}, {0, 0, 1, 0}, {0.4, 0, 0, 1},
		{1, 0, 0.3, 0}, {0, 1, 0, 0.2},
	}
	events := make([]igepa.Event, len(sessionNames))
	for v := range events {
		events[v] = igepa.Event{
			Capacity: 3, // small seminar rooms
			Attrs:    topicOf[v],
			Start:    slotOf[v] * 100,
			End:      slotOf[v]*100 + 90,
		}
	}

	// Twelve attendees with topic profiles; collaboration edges raise the
	// interaction degree of well-connected researchers.
	profiles := [][]float64{
		{1, 0, 0, 0.2}, {0.8, 0, 0, 0.6}, {0, 1, 0, 0}, {0, 0.9, 0.3, 0},
		{0, 0, 1, 0}, {0.1, 0, 0.9, 0}, {0.3, 0, 0, 1}, {0, 0.2, 0, 1},
		{1, 0.5, 0, 0}, {0, 0, 0.5, 0.8}, {0.6, 0.6, 0, 0}, {0, 0, 1, 0.4},
	}
	collaborations := [][2]int{
		{0, 1}, {0, 8}, {1, 6}, {2, 3}, {2, 9}, {3, 10}, {4, 5}, {4, 11},
		{5, 11}, {6, 7}, {8, 10}, {9, 11}, {0, 10}, {3, 9},
	}
	degree := make([]int, len(profiles))
	for _, e := range collaborations {
		degree[e[0]]++
		degree[e[1]]++
	}

	users := make([]igepa.User, len(profiles))
	for u := range users {
		users[u] = igepa.User{
			Capacity: 4, // sessions one can realistically attend
			Attrs:    profiles[u],
			Bids:     bidsFor(profiles[u], topicOf),
			Degree:   degree[u],
		}
	}

	in := &igepa.Instance{
		Events: events,
		Users:  users,
		// conflict = same time slot (intervals overlap)
		Conflicts: func(v, w int) bool {
			return events[v].Start < events[w].End && events[w].Start < events[v].End
		},
		// interest = topical fit
		Interest: func(u, v int) float64 {
			return cosine(profiles[u], topicOf[v])
		},
		Beta: 0.6, // interest matters slightly more than networking here
	}
	in.RebuildBidders()
	if err := in.Check(); err != nil {
		log.Fatal(err)
	}

	res, err := igepa.LPPacking(in, igepa.LPPackingOptions{Seed: 3})
	if err != nil {
		log.Fatal(err)
	}
	if err := igepa.Validate(in, res.Arrangement); err != nil {
		log.Fatal(err)
	}

	fmt.Printf("conference plan (utility %.3f, LP bound %.3f)\n\n", res.Utility, res.LPObjective)
	for u, sessions := range res.Arrangement.Sets {
		fmt.Printf("attendee %2d (deg %d): ", u, degree[u])
		if len(sessions) == 0 {
			fmt.Println("-")
			continue
		}
		for i, v := range sessions {
			if i > 0 {
				fmt.Print(", ")
			}
			fmt.Printf("%s (slot %d)", sessionNames[v], slotOf[v])
		}
		fmt.Println()
	}

	fmt.Println("\nsession loads:")
	load := make([]int, len(events))
	for _, p := range res.Arrangement.Pairs() {
		load[p.Event]++
	}
	for v, n := range load {
		fmt.Printf("  %-18s %d/%d\n", sessionNames[v], n, events[v].Capacity)
	}
}

// bidsFor returns the sessions whose topic fit clears a bidding threshold —
// the "explicit intention" model of the paper: users only ever get sessions
// they asked for.
func bidsFor(profile []float64, topics [][]float64) []int {
	var bids []int
	for v := range topics {
		if cosine(profile, topics[v]) > 0.35 {
			bids = append(bids, v)
		}
	}
	return bids
}

func cosine(a, b []float64) float64 {
	var dot, na, nb float64
	for i := range a {
		dot += a[i] * b[i]
		na += a[i] * a[i]
		nb += b[i] * b[i]
	}
	if na == 0 || nb == 0 {
		return 0
	}
	c := dot / (math.Sqrt(na) * math.Sqrt(nb))
	if c < 0 {
		return 0
	}
	return c
}
