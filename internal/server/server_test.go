package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"github.com/ebsn/igepa/internal/model"
	"github.com/ebsn/igepa/internal/model/modeltest"
	"github.com/ebsn/igepa/internal/shard"
	"github.com/ebsn/igepa/internal/workload"
	"github.com/ebsn/igepa/internal/xrand"
)

func testInstance(t testing.TB, seed int64, nu, nv int) *model.Instance {
	t.Helper()
	in, err := workload.Synthetic(workload.SyntheticConfig{
		Seed: seed, NumEvents: nv, NumUsers: nu,
		MaxEventCap: 10, MaxUserCap: 3, MinBids: 2, MaxBids: 5,
	})
	if err != nil {
		t.Fatal(err)
	}
	return in
}

// client is a tiny JSON helper over one httptest server.
type client struct {
	t    testing.TB
	base string
	hc   *http.Client
}

func newClient(t testing.TB, ts *httptest.Server) *client {
	return &client{t: t, base: ts.URL, hc: ts.Client()}
}

func (c *client) do(method, path string, body, out any) *http.Response {
	c.t.Helper()
	var rd io.Reader
	if body != nil {
		raw, err := json.Marshal(body)
		if err != nil {
			c.t.Fatal(err)
		}
		rd = bytes.NewReader(raw)
	}
	req, err := http.NewRequest(method, c.base+path, rd)
	if err != nil {
		c.t.Fatal(err)
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		c.t.Fatal(err)
	}
	defer resp.Body.Close()
	if out != nil {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			c.t.Fatalf("%s %s: decoding response: %v", method, path, err)
		}
	} else {
		io.Copy(io.Discard, resp.Body)
	}
	return resp
}

func (c *client) status(method, path string, body any) int {
	return c.do(method, path, body, nil).StatusCode
}

func startServer(t testing.TB, in *model.Instance, cfg Config) (*Server, *httptest.Server, *client) {
	t.Helper()
	srv, err := New(in, cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv)
	t.Cleanup(func() {
		ts.Close()
		srv.Close()
	})
	return srv, ts, newClient(t, ts)
}

// TestEndpointsSmoke exercises every endpoint of the live server once: the
// CI smoke required by the serving subsystem issue.
func TestEndpointsSmoke(t *testing.T) {
	in := testInstance(t, 3, 60, 12)
	srv, _, c := startServer(t, in, Config{
		Shard:         shard.Options{Shards: 4, Batch: 16, Seed: 7, CacheSize: 128},
		FlushInterval: 200 * time.Microsecond,
	})

	var h healthResponse
	if code := c.do("GET", "/healthz", nil, &h).StatusCode; code != http.StatusOK {
		t.Fatalf("healthz: %d", code)
	}
	if h.Status != "ok" || h.NumUsers != 60 || h.NumEvents != 12 || h.Shards != 4 || h.Mode != "live" {
		t.Fatalf("healthz payload: %+v", h)
	}

	// synchronous bid: decided within the flush deadline
	var bid bidResponse
	if code := c.do("POST", "/v1/bid", bidRequest{User: 5}, &bid).StatusCode; code != http.StatusOK {
		t.Fatalf("bid: %d", code)
	}
	if bid.User != 5 {
		t.Fatalf("bid response: %+v", bid)
	}

	// duplicate submission: 409
	if code := c.status("POST", "/v1/bid", bidRequest{User: 5}); code != http.StatusConflict {
		t.Fatalf("duplicate bid: %d, want 409", code)
	}

	// assignment query
	var asg assignmentResponse
	c.do("GET", "/v1/assignment?user=5", nil, &asg)
	if !asg.Decided || asg.State != "decided" {
		t.Fatalf("assignment: %+v", asg)
	}
	if len(asg.Events) != len(bid.Events) {
		t.Fatalf("assignment %v != decision %v", asg.Events, bid.Events)
	}

	// event load query (single and all)
	var ld loadResponse
	c.do("GET", "/v1/load?event=0", nil, &ld)
	if ld.Capacity != in.Events[0].Capacity {
		t.Fatalf("load: %+v", ld)
	}
	var all []loadResponse
	c.do("GET", "/v1/load", nil, &all)
	if len(all) != in.NumEvents() {
		t.Fatalf("load dump has %d events, want %d", len(all), in.NumEvents())
	}

	// cancel and resubmit
	if len(bid.Events) > 0 {
		var cx cancelResponse
		if code := c.do("POST", "/v1/cancel", cancelRequest{User: 5}, &cx).StatusCode; code != http.StatusOK {
			t.Fatalf("cancel failed")
		}
		if len(cx.Freed) != len(bid.Events) {
			t.Fatalf("cancel freed %v, had %v", cx.Freed, bid.Events)
		}
		if code := c.status("POST", "/v1/cancel", cancelRequest{User: 5}); code != http.StatusConflict {
			t.Fatalf("double cancel: %d, want 409", code)
		}
		if code := c.status("POST", "/v1/bid", bidRequest{User: 5}); code != http.StatusOK {
			t.Fatal("resubmit after cancel rejected")
		}
	}

	// statsz
	var st Stats
	c.do("GET", "/statsz", nil, &st)
	if st.Decided == 0 || st.Shards != 4 || len(st.PerShard) != 4 {
		t.Fatalf("statsz: %+v", st)
	}

	// drain
	var dr drainResponse
	if code := c.do("POST", "/admin/drain", nil, &dr).StatusCode; code != http.StatusOK || !dr.Drained {
		t.Fatalf("drain: %+v", dr)
	}

	// error paths
	if code := c.status("GET", "/v1/bid", nil); code != http.StatusMethodNotAllowed {
		t.Errorf("GET bid: %d", code)
	}
	if code := c.status("POST", "/v1/bid", bidRequest{User: -1}); code != http.StatusBadRequest {
		t.Errorf("negative user: %d", code)
	}
	if code := c.status("POST", "/v1/bid", bidRequest{User: 1, Bids: []int{99}}); code != http.StatusBadRequest {
		t.Errorf("unknown event bid: %d", code)
	}
	if code := c.status("POST", "/v1/cancel", cancelRequest{User: 7}); code != http.StatusConflict {
		t.Errorf("cancel of undecided user: %d", code)
	}
	if code := c.status("GET", "/v1/assignment?user=zzz", nil); code != http.StatusBadRequest {
		t.Errorf("bad assignment query: %d", code)
	}
	if code := c.status("GET", "/v1/load?event=-2", nil); code != http.StatusBadRequest {
		t.Errorf("bad load query: %d", code)
	}
	if srv.Handler() == nil {
		t.Error("nil handler")
	}
}

// TestReplayBitIdenticalToServeSharded is the acceptance-criteria pin: the
// replay-mode server, fed an arrival order through the HTTP surface, makes
// exactly ServeSharded's decisions on the synthetic and Meetup fixtures for
// S ∈ {1,2,4,8} and several worker counts.
func TestReplayBitIdenticalToServeSharded(t *testing.T) {
	fixtures := []struct {
		name string
		in   *model.Instance
	}{
		{"synthetic", testInstance(t, 11, 200, 30)},
	}
	if mu, err := workload.Meetup(workload.MeetupConfig{Seed: 5, NumEvents: 40, NumUsers: 250}); err == nil {
		fixtures = append(fixtures, struct {
			name string
			in   *model.Instance
		}{"meetup", mu})
	} else {
		t.Fatal(err)
	}

	for _, fx := range fixtures {
		order := xrand.New(9).Perm(fx.in.NumUsers())
		for _, s := range []int{1, 2, 4, 8} {
			for _, workers := range []int{1, 3, 0} {
				opt := shard.Options{Shards: s, Batch: 32, Seed: 42, Workers: workers, CacheSize: 512}
				want, err := shard.Serve(fx.in, order, opt)
				if err != nil {
					t.Fatal(err)
				}
				label := fmt.Sprintf("%s/S=%d/workers=%d", fx.name, s, workers)
				func() {
					srv, _, c := startServer(t, fx.in, Config{
						Shard: opt, Replay: true, QueueDepth: len(order) + 16,
					})
					defer srv.Close()
					noWait := false
					for _, u := range order {
						if code := c.status("POST", "/v1/bid", bidRequest{User: u, Wait: &noWait}); code != http.StatusAccepted {
							t.Fatalf("%s: submit user %d: %d", label, u, code)
						}
					}
					var dr drainResponse
					c.do("POST", "/admin/drain", nil, &dr)
					if !dr.Drained {
						t.Fatalf("%s: drain timed out", label)
					}
					var dump struct {
						Sets [][]int `json:"sets"`
					}
					c.do("GET", "/v1/assignment", nil, &dump)
					got := &model.Arrangement{Sets: dump.Sets}
					modeltest.RequireEqual(t, label, want.Arrangement, got)

					// epoch/renewal schedule must match Serve's too
					st := srv.Stats()
					if st.Epochs != want.Epochs || st.LeaseRenewals != want.LeaseRenewals {
						t.Errorf("%s: server ran %d epochs / %d renewals, Serve %d / %d",
							label, st.Epochs, st.LeaseRenewals, want.Epochs, want.LeaseRenewals)
					}
					if st.MovedSeats != want.MovedSeats {
						t.Errorf("%s: moved %d seats, Serve moved %d", label, st.MovedSeats, want.MovedSeats)
					}
				}()
			}
		}
	}
}

// TestBackpressure429 pins the bounded-queue contract: when the queue is
// full the server answers 429 with a Retry-After hint instead of buffering.
func TestBackpressure429(t *testing.T) {
	in := testInstance(t, 5, 40, 8)
	// Replay mode with a batch far larger than the queue: nothing flushes,
	// so the fifth submission must bounce.
	srv, _, c := startServer(t, in, Config{
		Shard:  shard.Options{Shards: 2, Batch: 1000, Seed: 1},
		Replay: true, QueueDepth: 4,
	})
	noWait := false
	for i := 0; i < 4; i++ {
		if code := c.status("POST", "/v1/bid", bidRequest{User: i, Wait: &noWait}); code != http.StatusAccepted {
			t.Fatalf("submission %d: %d", i, code)
		}
	}
	resp := c.do("POST", "/v1/bid", bidRequest{User: 4, Wait: &noWait}, nil)
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("full queue: %d, want 429", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("429 without Retry-After")
	}
	st := srv.Stats()
	if st.Rejected != 1 {
		t.Errorf("rejected counter %d, want 1", st.Rejected)
	}
	// the bounced user may retry once there is room again
	srv.Drain(5 * time.Second)
	if code := c.status("POST", "/v1/bid", bidRequest{User: 4, Wait: &noWait}); code != http.StatusAccepted {
		t.Error("retry after drain rejected")
	}
}

// TestCacheHitsOverHTTP pins the serving-cache acceptance: a repeat-bid
// workload (bid → cancel → bid cycles) hits the per-shard admissible-set
// cache, visible through /statsz.
func TestCacheHitsOverHTTP(t *testing.T) {
	in := testInstance(t, 7, 50, 10)
	srv, _, c := startServer(t, in, Config{
		Shard:         shard.Options{Shards: 2, Batch: 8, Seed: 3, CacheSize: 256},
		FlushInterval: 100 * time.Microsecond,
	})
	for round := 0; round < 3; round++ {
		for u := 0; u < 10; u++ {
			var bid bidResponse
			if code := c.do("POST", "/v1/bid", bidRequest{User: u}, &bid).StatusCode; code != http.StatusOK {
				t.Fatalf("round %d user %d: %d", round, u, code)
			}
			c.status("POST", "/v1/cancel", cancelRequest{User: u}) // 409 fine when nothing granted
		}
	}
	srv.Drain(5 * time.Second)
	st := srv.Stats()
	if st.Cache.Hits == 0 || st.Cache.HitRate <= 0 {
		t.Fatalf("repeat-bid workload produced no cache hits: %+v", st.Cache)
	}
}

// TestBidUpdate pins the bid-replacement path: a submission carrying a new
// bid set is decided against that set, not the instance's original bids.
func TestBidUpdate(t *testing.T) {
	in := testInstance(t, 9, 40, 8)
	// clone so the fixture instance is not shared with other tests
	srv, _, c := startServer(t, in, Config{
		Shard:         shard.Options{Shards: 2, Batch: 8, Seed: 3},
		FlushInterval: 100 * time.Microsecond,
	})
	defer srv.Close()
	newBids := []int{2, 5, 5, 0} // unsorted + duplicate: server normalizes
	var bid bidResponse
	if code := c.do("POST", "/v1/bid", bidRequest{User: 3, Bids: newBids}, &bid).StatusCode; code != http.StatusOK {
		t.Fatalf("bid update: %d", code)
	}
	allowed := map[int]bool{0: true, 2: true, 5: true}
	for _, v := range bid.Events {
		if !allowed[v] {
			t.Fatalf("decision %v contains event outside the updated bid set", bid.Events)
		}
	}
	if got := in.Users[3].Bids; len(got) != 3 || got[0] != 0 || got[1] != 2 || got[2] != 5 {
		t.Fatalf("bids not normalized: %v", got)
	}
}

// TestConcurrentLiveTraffic hammers a live server from many goroutines —
// bids, cancels, queries, stats — and then checks the final arrangement is
// feasible. Run under -race in CI.
func TestConcurrentLiveTraffic(t *testing.T) {
	in := testInstance(t, 13, 120, 15)
	srv, _, _ := startServer(t, in, Config{
		Shard:         shard.Options{Shards: 4, Batch: 16, Seed: 5, CacheSize: 128},
		FlushInterval: 100 * time.Microsecond,
	})
	// Drive the handler directly (httptest transport would throttle on 1 CPU).
	var wg sync.WaitGroup
	post := func(path string, body any) int {
		raw, _ := json.Marshal(body)
		rec := httptest.NewRecorder()
		srv.ServeHTTP(rec, httptest.NewRequest("POST", path, bytes.NewReader(raw)))
		return rec.Code
	}
	get := func(path string) int {
		rec := httptest.NewRecorder()
		srv.ServeHTTP(rec, httptest.NewRequest("GET", path, nil))
		return rec.Code
	}
	for w := 0; w < 6; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for u := w; u < in.NumUsers(); u += 6 {
				if code := post("/v1/bid", bidRequest{User: u}); code != http.StatusOK {
					t.Errorf("user %d: %d", u, code)
					return
				}
				if u%3 == 0 {
					post("/v1/cancel", cancelRequest{User: u})
					post("/v1/bid", bidRequest{User: u})
				}
				get(fmt.Sprintf("/v1/assignment?user=%d", u))
				if u%10 == 0 {
					get("/statsz")
					get("/v1/load")
				}
			}
		}(w)
	}
	wg.Wait()
	srv.Drain(5 * time.Second)
	arr, err := srv.Arrangement()
	if err != nil {
		t.Fatal(err)
	}
	modeltest.RequireFeasible(t, "concurrent live traffic", in, arr)
	st := srv.Stats()
	if st.LeaseErrors != 0 {
		t.Errorf("lease invariant violations: %d", st.LeaseErrors)
	}
	if st.Decided == 0 {
		t.Error("nothing decided")
	}
}

// TestQueue unit-tests the bounded queue: batching, deadline flush, drain,
// close and backpressure.
func TestQueue(t *testing.T) {
	q := newQueue(3)
	mk := func(u int) request { return request{user: u, enqueued: time.Now()} }
	if err := q.push(mk(0)); err != nil {
		t.Fatal(err)
	}
	if err := q.push(mk(1)); err != nil {
		t.Fatal(err)
	}
	if err := q.push(mk(2)); err != nil {
		t.Fatal(err)
	}
	if err := q.push(mk(3)); err != errQueueFull {
		t.Fatalf("overfull push: %v, want errQueueFull", err)
	}
	if d := q.depth(); d != 3 {
		t.Fatalf("depth %d, want 3", d)
	}
	batch := q.popBatch(2, 0, nil)
	if len(batch) != 2 || batch[0].user != 0 || batch[1].user != 1 {
		t.Fatalf("popBatch: %v", batch)
	}
	q.finish()
	if got := q.pendingUsers(nil); len(got) != 1 || got[0] != 2 {
		t.Fatalf("pendingUsers: %v", got)
	}

	// deadline flush: a partial batch is released after ~wait
	start := time.Now()
	batch = q.popBatch(5, time.Millisecond, batch)
	if len(batch) != 1 || batch[0].user != 2 {
		t.Fatalf("deadline flush: %v", batch)
	}
	if time.Since(start) > time.Second {
		t.Fatal("deadline flush waited far too long")
	}
	q.finish()

	// drain flush from another goroutine
	done := make(chan []request, 1)
	go func() { done <- q.popBatch(5, 0, nil) }()
	time.Sleep(time.Millisecond)
	q.push(mk(9))
	q.drain()
	got := <-done
	if len(got) != 1 || got[0].user != 9 {
		t.Fatalf("drain flush: %v", got)
	}
	q.finish()
	if !q.idle() {
		t.Fatal("queue not idle after finish")
	}

	// close flushes the remainder then returns nil
	q.push(mk(4))
	q.close()
	if got := q.popBatch(5, 0, nil); len(got) != 1 || got[0].user != 4 {
		t.Fatalf("close flush: %v", got)
	}
	if got := q.popBatch(5, 0, nil); got != nil {
		t.Fatalf("closed queue returned %v", got)
	}
	if err := q.push(mk(5)); err != errQueueClosed {
		t.Fatalf("push after close: %v", err)
	}
}

// TestLiveBoundThroughServer runs both dispatch modes with the live LP
// bound enabled and checks /statsz reports it: replay updates per batch,
// live updates at renewal points; decisions are never affected.
func TestLiveBoundThroughServer(t *testing.T) {
	in := testInstance(t, 9, 64, 12)

	t.Run("replay", func(t *testing.T) {
		srv, _, c := startServer(t, in.Clone(), Config{
			Shard:  shard.Options{Shards: 2, Batch: 16, Seed: 5, LiveBound: true},
			Replay: true,
		})
		for u := 0; u < 48; u++ {
			wait := false
			if code := c.status("POST", "/v1/bid", bidRequest{User: u, Wait: &wait}); code != http.StatusAccepted {
				t.Fatalf("bid %d: %d", u, code)
			}
		}
		if !srv.Drain(5 * time.Second) {
			t.Fatal("drain timed out")
		}
		var st Stats
		c.do("GET", "/statsz", nil, &st)
		if st.Bound == nil {
			t.Fatal("/statsz has no live_bound with LiveBound enabled")
		}
		if st.Bound.Updates != st.Epochs || st.Bound.Errors != 0 {
			t.Fatalf("bound updates %d over %d epochs (errors %d)", st.Bound.Updates, st.Epochs, st.Bound.Errors)
		}
		if st.Bound.RemainingLP < 0 {
			t.Fatalf("negative remaining bound %v", st.Bound.RemainingLP)
		}
	})

	t.Run("live", func(t *testing.T) {
		srv, _, c := startServer(t, in.Clone(), Config{
			Shard:         shard.Options{Shards: 2, Batch: 8, Seed: 5, LiveBound: true},
			FlushInterval: 200 * time.Microsecond,
		})
		for u := 0; u < 48; u++ {
			req := bidRequest{User: u}
			if u%7 == 0 {
				// replacement bid set: exercises the shadow re-bid path
				req.Bids = []int{u % 12, (u + 3) % 12}
			}
			if code := c.status("POST", "/v1/bid", req); code != http.StatusOK {
				t.Fatalf("bid %d: %d", u, code)
			}
		}
		if !srv.Drain(5 * time.Second) {
			t.Fatal("drain timed out")
		}
		var st Stats
		c.do("GET", "/statsz", nil, &st)
		if st.Bound == nil {
			t.Fatal("/statsz has no live_bound with LiveBound enabled")
		}
		if st.Bound.Updates == 0 {
			t.Fatal("live mode never updated the bound (drain must fold the tail)")
		}
		if st.Bound.Errors != 0 {
			t.Fatalf("bound errors: %d", st.Bound.Errors)
		}
		// Drain folded every pending event: another drain adds nothing.
		srv.Drain(time.Second)
		var again Stats
		c.do("GET", "/statsz", nil, &again)
		if again.Bound.Updates != st.Bound.Updates {
			t.Fatalf("idle drain changed bound updates: %d -> %d", st.Bound.Updates, again.Bound.Updates)
		}
	})

	t.Run("disabled", func(t *testing.T) {
		_, _, c := startServer(t, in.Clone(), Config{
			Shard: shard.Options{Shards: 2, Batch: 16, Seed: 5},
		})
		var st Stats
		c.do("GET", "/statsz", nil, &st)
		if st.Bound != nil {
			t.Fatal("live_bound reported without LiveBound")
		}
	})
}
