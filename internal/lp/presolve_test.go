package lp

import (
	"math"
	"testing"

	"github.com/ebsn/igepa/internal/xrand"
)

func TestReduceDropsLooseRows(t *testing.T) {
	// Two "user" rows (b=1) and two "event" rows: row 2 has capacity 10 but
	// mass only 2 (undroppable rows must bind-able); row 3 has capacity 1.
	p := NewProblem(4, []float64{1, 1, 10, 1}, []float64{1, 1}, []Column{
		{Rows: []int{0, 2}, Vals: []float64{1, 1}},
		{Rows: []int{1, 2, 3}, Vals: []float64{1, 1, 1}},
	})
	ps, stats, err := Reduce(p)
	if err != nil {
		t.Fatal(err)
	}
	if stats.DroppedRows != 1 {
		t.Fatalf("dropped %d rows, want 1 (the loose capacity-10 row)", stats.DroppedRows)
	}
	if stats.RemainingRows != 3 || stats.RemainingCols != 2 {
		t.Fatalf("remaining %dx%d, want 3x2", stats.RemainingRows, stats.RemainingCols)
	}
	// objective must be preserved
	orig, err := Solve(p)
	if err != nil {
		t.Fatal(err)
	}
	red, err := Solve(ps.Problem)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(orig.Objective-red.Objective) > 1e-6 {
		t.Fatalf("objective changed: %v vs %v", orig.Objective, red.Objective)
	}
	back := ps.Unreduce(red)
	if len(back.X) != 2 || len(back.Y) != 4 {
		t.Fatalf("unreduce shape wrong: %d/%d", len(back.X), len(back.Y))
	}
	if err := Verify(p, back, 1e-5); err != nil {
		t.Fatalf("unreduced solution does not verify: %v", err)
	}
}

func TestReduceForcesZeroCapacityColumns(t *testing.T) {
	p := NewProblem(2, []float64{0, 1}, []float64{5, 1}, []Column{
		{Rows: []int{0}, Vals: []float64{1}}, // through the b=0 row
		{Rows: []int{1}, Vals: []float64{1}},
	})
	ps, stats, err := Reduce(p)
	if err != nil {
		t.Fatal(err)
	}
	if stats.ForcedColumns != 1 {
		t.Fatalf("forced %d columns, want 1", stats.ForcedColumns)
	}
	sol, err := Solve(ps.Problem)
	if err != nil {
		t.Fatal(err)
	}
	back := ps.Unreduce(sol)
	if back.X[0] != 0 {
		t.Fatalf("forced column has x = %v", back.X[0])
	}
	if math.Abs(back.Objective-1) > 1e-6 {
		t.Fatalf("objective %v, want 1", back.Objective)
	}
}

// Property: on random benchmark-shaped packing LPs, solving the reduced
// problem gives the same optimum as solving the original.
func TestReducePreservesOptimum(t *testing.T) {
	rng := xrand.New(321)
	for trial := 0; trial < 25; trial++ {
		p := randomPacking(rng, 3+rng.Intn(15), 2+rng.Intn(8), 4)
		direct, err := Solve(p)
		if err != nil {
			t.Fatal(err)
		}
		viaReduce, stats, err := SolveReduced(p, nil)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(direct.Objective-viaReduce.Objective) > 5e-6*(1+math.Abs(direct.Objective)) {
			t.Fatalf("trial %d: direct %v vs reduced %v (stats %+v)",
				trial, direct.Objective, viaReduce.Objective, stats)
		}
		if err := Verify(p, viaReduce, 1e-5); err != nil {
			t.Fatalf("trial %d: unreduced solution fails verification: %v", trial, err)
		}
	}
}

func TestReduceRejectsMalformed(t *testing.T) {
	bad := NewProblem(1, []float64{-1}, []float64{1},
		[]Column{{Rows: []int{0}, Vals: []float64{1}}})
	if _, _, err := Reduce(bad); err == nil {
		t.Fatal("malformed problem accepted")
	}
}

func TestDeduplicateColumns(t *testing.T) {
	p := NewProblem(2, []float64{2, 2}, []float64{1, 3, 2, 3}, []Column{
		{Rows: []int{0}, Vals: []float64{1}},       // dup class A, c=1
		{Rows: []int{0}, Vals: []float64{1}},       // dup class A, c=3 (representative)
		{Rows: []int{1, 0}, Vals: []float64{1, 1}}, // class B (order-insensitive)
		{Rows: []int{0, 1}, Vals: []float64{1, 1}}, // class B, c=3 (representative)
	})
	red, repr := DeduplicateColumns(p)
	if red.NumCols() != 2 {
		t.Fatalf("got %d columns, want 2: %+v", red.NumCols(), red)
	}
	if repr[0] != 1 || repr[1] != 1 {
		t.Errorf("class A representative = %d,%d, want 1,1", repr[0], repr[1])
	}
	if repr[2] != 3 || repr[3] != 3 {
		t.Errorf("class B representative = %d,%d, want 3,3", repr[2], repr[3])
	}
	// optimum preserved
	a, err := Solve(p)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Solve(red)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(a.Objective-b.Objective) > 1e-6 {
		t.Fatalf("dedup changed optimum: %v vs %v", a.Objective, b.Objective)
	}
}

func TestDeduplicateKeepsDistinctValues(t *testing.T) {
	// same pattern, different coefficient values → NOT duplicates
	p := NewProblem(1, []float64{2}, []float64{1, 1}, []Column{
		{Rows: []int{0}, Vals: []float64{1}},
		{Rows: []int{0}, Vals: []float64{2}},
	})
	red, _ := DeduplicateColumns(p)
	if red.NumCols() != 2 {
		t.Fatalf("distinct-valued columns folded: %d", red.NumCols())
	}
}

func TestColumnSignatureHelpers(t *testing.T) {
	if string(appendInt(nil, 0)) != "0" || string(appendInt(nil, 1234)) != "1234" {
		t.Error("appendInt broken")
	}
	a := columnSignature([]int32{2, 0}, []float64{3, 1})
	b := columnSignature([]int32{0, 2}, []float64{1, 3})
	if a != b {
		t.Error("signature not order-insensitive")
	}
	c := columnSignature([]int32{0, 2}, []float64{1, 4})
	if a == c {
		t.Error("signature collision on different values")
	}
}
