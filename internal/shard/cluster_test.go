package shard

import (
	"fmt"
	"math"
	"testing"

	"github.com/ebsn/igepa/internal/model"
	"github.com/ebsn/igepa/internal/model/modeltest"
)

// newClusterShard builds shard index's single-shard engine of a width-wide
// cluster over in.
func newClusterShard(t testing.TB, in *model.Instance, opt Options, width, index int) *Engine {
	t.Helper()
	opt.Shards = 1
	opt.ClusterShards = width
	opt.ClusterIndex = index
	e, err := NewEngine(in, opt)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(e.Close)
	return e
}

// TestClusterInitialBudgetRows pins the boot contract: a cluster shard's
// budget vector is exactly its row of the multi-shard engine's initial
// table, and the rows sum to capacity.
func TestClusterInitialBudgetRows(t *testing.T) {
	in := testInstance(t, 5, 60, 12)
	for _, s := range []int{2, 3, 4} {
		full, err := NewEngine(in, Options{Shards: s, Seed: 42})
		if err != nil {
			t.Fatal(err)
		}
		for si := 0; si < s; si++ {
			shard := newClusterShard(t, in, Options{Seed: 42}, s, si)
			for v := 0; v < in.NumEvents(); v++ {
				if shard.budgets[0][v] != full.budgets[si][v] {
					t.Fatalf("S=%d shard %d event %d: cluster budget %d, in-process row %d",
						s, si, v, shard.budgets[0][v], full.budgets[si][v])
				}
			}
		}
		for v := 0; v < in.NumEvents(); v++ {
			sum := 0
			for si := 0; si < s; si++ {
				sum += full.budgets[si][v]
			}
			if sum != in.Events[v].Capacity {
				t.Fatalf("S=%d event %d: budget rows sum to %d, capacity %d", s, v, sum, in.Events[v].Capacity)
			}
		}
		full.Close()
	}
}

// TestClusterMatchesServeSharded is the engine-level half of the acceptance
// contract: S cluster engines plus a Coordinator, driven batch-by-batch with
// wire-shaped renewals (loads → Renew → InstallLease), produce the same
// arrangement, renewal count and moved-seat count as one S-shard Serve.
func TestClusterMatchesServeSharded(t *testing.T) {
	in := testInstance(t, 11, 200, 30)
	order := arrivalOrder(9, in.NumUsers())
	for _, s := range []int{2, 4} {
		t.Run(fmt.Sprintf("S=%d", s), func(t *testing.T) {
			opt := Options{Batch: 32, Seed: 42, CacheSize: 512}

			sharded := opt
			sharded.Shards = s
			want, err := Serve(in, order, sharded)
			if err != nil {
				t.Fatal(err)
			}

			coord, err := NewCoordinator(in, Options{Shards: s, Batch: 32, Seed: 42})
			if err != nil {
				t.Fatal(err)
			}
			defer coord.Close()
			engines := make([]*Engine, s)
			for si := range engines {
				engines[si] = newClusterShard(t, in, opt, s, si)
			}

			b := 32
			for start := 0; start < len(order); start += b {
				batch := order[start:min(start+b, len(order))]
				if start > 0 {
					// the wire renewal: collect loads, run the shared
					// renewer over the upcoming batch, install per shard
					for si, e := range engines {
						if err := coord.SetLoads(si, e.LoadVector()); err != nil {
							t.Fatal(err)
						}
					}
					if _, err := coord.Renew(batch); err != nil {
						t.Fatal(err)
					}
					for si, e := range engines {
						if _, err := e.InstallLease(coord.Budget(si)); err != nil {
							t.Fatalf("install on shard %d: %v", si, err)
						}
					}
				}
				// the router's per-shard sub-batches, arrival order kept
				parts := make([][]int, s)
				for _, u := range batch {
					o := ShardOf(opt.Seed, u, s)
					parts[o] = append(parts[o], u)
				}
				for si, part := range parts {
					if len(part) > 0 {
						engines[si].DispatchBatch(part)
					}
				}
			}

			got := model.NewArrangement(in.NumUsers())
			util := 0.0
			for u := 0; u < in.NumUsers(); u++ {
				e := engines[ShardOf(opt.Seed, u, s)]
				if set := e.Assignment(0, u); len(set) > 0 {
					got.Sets[u] = set
				}
			}
			for _, e := range engines {
				util += e.ShardUtility(0)
			}
			modeltest.RequireEqual(t, fmt.Sprintf("cluster S=%d vs ServeSharded", s), want.Arrangement, got)
			if coord.Renewals() != want.LeaseRenewals {
				t.Errorf("coordinator renewals %d, ServeSharded %d", coord.Renewals(), want.LeaseRenewals)
			}
			if coord.MovedSeats() != want.MovedSeats {
				t.Errorf("coordinator moved seats %d, ServeSharded %d", coord.MovedSeats(), want.MovedSeats)
			}
			if math.Abs(util-want.Utility) > 1e-6 {
				t.Errorf("cluster utility %g, ServeSharded %g", util, want.Utility)
			}
		})
	}
}

// TestInstallLeaseValidation pins the install-side guardrails: cluster mode
// only, full-length vectors, never below current load, never above capacity,
// and the renewal counter advances only on success.
func TestInstallLeaseValidation(t *testing.T) {
	in := testInstance(t, 13, 40, 8)

	plain, err := NewEngine(in, Options{Shards: 2, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer plain.Close()
	if _, err := plain.InstallLease(make([]int, in.NumEvents())); err == nil {
		t.Fatal("InstallLease accepted a non-cluster engine")
	}

	e := newClusterShard(t, in, Options{Seed: 1}, 2, 0)
	var u0 int
	for u := 0; u < in.NumUsers(); u++ {
		if e.Owns(u) {
			u0 = u
			break
		}
	}
	e.DispatchBatch([]int{u0})
	loads := e.LoadVector()

	if _, err := e.InstallLease(loads[:len(loads)-1]); err == nil {
		t.Fatal("InstallLease accepted a short vector")
	}
	over := append([]int(nil), loads...)
	over[0] = in.Events[0].Capacity + 1
	if _, err := e.InstallLease(over); err == nil {
		t.Fatal("InstallLease accepted a budget above capacity")
	}
	if v := firstLoaded(loads); v >= 0 {
		under := append([]int(nil), loads...)
		under[v]--
		if _, err := e.InstallLease(under); err == nil {
			t.Fatal("InstallLease accepted a budget below current load (grant revocation)")
		}
	}
	if e.Renewals() != 0 {
		t.Fatalf("failed installs advanced the renewal counter to %d", e.Renewals())
	}
	if _, err := e.InstallLease(loads); err != nil {
		t.Fatalf("valid install refused: %v", err)
	}
	if e.Renewals() != 1 {
		t.Fatalf("renewals after one install: %d", e.Renewals())
	}
}

func firstLoaded(loads []int) int {
	for v, l := range loads {
		if l > 0 {
			return v
		}
	}
	return -1
}

// TestExportAdoptRoundTrip pins the migration payload semantics: seats,
// utility and ownership all leave the source and land on the target, with
// the per-shard lease invariant intact on both sides.
func TestExportAdoptRoundTrip(t *testing.T) {
	in := testInstance(t, 17, 80, 10)
	opt := Options{Seed: 7, Batch: 16}
	src := newClusterShard(t, in, opt, 2, 0)
	dst := newClusterShard(t, in, opt, 2, 1)

	var owned []int
	for u := 0; u < in.NumUsers() && len(owned) < 8; u++ {
		if src.Owns(u) {
			owned = append(owned, u)
		}
	}
	src.DispatchBatch(owned)
	movers := owned[:3]
	wantSets := make([][]int, len(movers))
	for i, u := range movers {
		wantSets[i] = src.Assignment(0, u)
	}
	utilBefore := src.ShardUtility(0)

	if _, err := src.ExportUsers([]int{in.NumUsers()}); err == nil {
		t.Fatal("exported an out-of-range user")
	}
	var foreign int
	for u := 0; u < in.NumUsers(); u++ {
		if !src.Owns(u) {
			foreign = u
			break
		}
	}
	if _, err := src.ExportUsers([]int{foreign}); err == nil {
		t.Fatal("exported a user the shard does not own")
	}

	mig, err := src.ExportUsers(movers)
	if err != nil {
		t.Fatal(err)
	}
	for i, u := range movers {
		if src.Owns(u) {
			t.Fatalf("source still owns exported user %d", u)
		}
		if got := src.Assignment(0, u); len(got) != 0 {
			t.Fatalf("source kept exported user %d's assignment %v", u, got)
		}
		if len(mig.Sets[i]) != len(wantSets[i]) {
			t.Fatalf("migration set for user %d: %v, decided %v", u, mig.Sets[i], wantSets[i])
		}
	}

	if err := dst.AdoptUsers(&Migration{Users: []int{1}, Sets: nil}); err == nil {
		t.Fatal("adopted a length-mismatched migration")
	}
	if err := dst.AdoptUsers(mig); err != nil {
		t.Fatal(err)
	}
	if err := dst.AdoptUsers(mig); err == nil {
		t.Fatal("double adopt accepted — users were already owned")
	}

	seatGain, utilGain := 0, 0.0
	for i, u := range movers {
		if !dst.Owns(u) {
			t.Fatalf("target does not own adopted user %d", u)
		}
		got := dst.Assignment(0, u)
		if len(got) != len(wantSets[i]) {
			t.Fatalf("adopted assignment for user %d: %v, decided %v", u, got, wantSets[i])
		}
		for k, v := range wantSets[i] {
			if got[k] != v {
				t.Fatalf("adopted assignment for user %d: %v, decided %v", u, got, wantSets[i])
			}
			seatGain++
			utilGain += in.Weight(u, v)
		}
	}
	// seat and utility conservation across the move
	for v := 0; v < in.NumEvents(); v++ {
		moved := 0
		for i := range movers {
			for _, mv := range wantSets[i] {
				if mv == v {
					moved++
				}
			}
		}
		if got := dst.EventLoad(v); got != moved {
			t.Errorf("target load for event %d: %d, want %d", v, got, moved)
		}
	}
	if math.Abs(src.ShardUtility(0)+utilGain-utilBefore) > 1e-9 {
		t.Errorf("utility not conserved: source %g + moved %g != before %g",
			src.ShardUtility(0), utilGain, utilBefore)
	}
	if math.Abs(dst.ShardUtility(0)-utilGain) > 1e-9 {
		t.Errorf("target utility %g, moved %g", dst.ShardUtility(0), utilGain)
	}
	_ = seatGain
}

// TestCoordinatorValidation pins the router-side guardrails: load vectors
// are range-checked, budget rows always sum to capacity after Renew, and
// TransferSeats refuses malformed or over-budget moves.
func TestCoordinatorValidation(t *testing.T) {
	in := testInstance(t, 19, 50, 8)
	coord, err := NewCoordinator(in, Options{Shards: 2, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	defer coord.Close()

	if err := coord.SetLoads(2, make([]int, in.NumEvents())); err == nil {
		t.Fatal("SetLoads accepted an out-of-range shard")
	}
	if err := coord.SetLoads(0, make([]int, 1)); err == nil {
		t.Fatal("SetLoads accepted a short vector")
	}
	bad := make([]int, in.NumEvents())
	bad[0] = in.Events[0].Capacity + 1
	if err := coord.SetLoads(0, bad); err == nil {
		t.Fatal("SetLoads accepted a load above capacity")
	}

	if err := coord.SetLoads(0, make([]int, in.NumEvents())); err != nil {
		t.Fatal(err)
	}
	if err := coord.SetLoads(1, make([]int, in.NumEvents())); err != nil {
		t.Fatal(err)
	}
	if _, err := coord.Renew([]int{0, 1, 2}); err != nil {
		t.Fatal(err)
	}
	for v := 0; v < in.NumEvents(); v++ {
		if sum := coord.Budget(0)[v] + coord.Budget(1)[v]; sum != in.Events[v].Capacity {
			t.Fatalf("event %d: budgets sum to %d after Renew, capacity %d", v, sum, in.Events[v].Capacity)
		}
	}
	if coord.Renewals() != 1 {
		t.Fatalf("renewals: %d", coord.Renewals())
	}

	seats := make([]int, in.NumEvents())
	if err := coord.TransferSeats(0, 0, seats); err == nil {
		t.Fatal("TransferSeats accepted from == to")
	}
	if err := coord.TransferSeats(0, 1, seats[:1]); err == nil {
		t.Fatal("TransferSeats accepted a short vector")
	}
	seats[0] = -1
	if err := coord.TransferSeats(0, 1, seats); err == nil {
		t.Fatal("TransferSeats accepted a negative count")
	}
	seats[0] = coord.Budget(0)[0] + 1
	if err := coord.TransferSeats(0, 1, seats); err == nil {
		t.Fatal("TransferSeats accepted a move exceeding the source budget")
	}
	seats[0] = coord.Budget(0)[0]
	before0, before1 := coord.Budget(0)[0], coord.Budget(1)[0]
	if err := coord.TransferSeats(0, 1, seats); err != nil {
		t.Fatal(err)
	}
	if got0, got1 := coord.Budget(0)[0], coord.Budget(1)[0]; got0 != 0 || got1 != before0+before1 {
		t.Fatalf("after transfer: budgets %d/%d, want 0/%d", got0, got1, before0+before1)
	}
}
