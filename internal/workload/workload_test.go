package workload

import (
	"math"
	"testing"

	"github.com/ebsn/igepa/internal/model"
)

func TestSyntheticDefaultsMatchTableI(t *testing.T) {
	in, err := Synthetic(SyntheticConfig{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if err := in.Check(); err != nil {
		t.Fatal(err)
	}
	if in.NumEvents() != 200 || in.NumUsers() != 2000 {
		t.Fatalf("dimensions %d×%d, want 200×2000", in.NumEvents(), in.NumUsers())
	}
	for v, ev := range in.Events {
		if ev.Capacity < 1 || ev.Capacity > 50 {
			t.Fatalf("event %d capacity %d outside [1,50]", v, ev.Capacity)
		}
	}
	for u := range in.Users {
		us := &in.Users[u]
		if us.Capacity < 1 || us.Capacity > 4 {
			t.Fatalf("user %d capacity %d outside [1,4]", u, us.Capacity)
		}
		if len(us.Bids) < 1 || len(us.Bids) > 8 {
			t.Fatalf("user %d has %d bids", u, len(us.Bids))
		}
	}
	if in.Beta != 0.5 {
		t.Errorf("beta = %v, want 0.5", in.Beta)
	}
	st := model.ComputeStats(in)
	if math.Abs(st.ConflictRate-0.3) > 0.03 {
		t.Errorf("conflict rate %v, want ≈0.3", st.ConflictRate)
	}
	if math.Abs(st.MeanDPI-0.5) > 0.02 {
		t.Errorf("mean DPI %v, want ≈0.5 (pdeg)", st.MeanDPI)
	}
}

func TestSyntheticDeterministic(t *testing.T) {
	a, err := Synthetic(SyntheticConfig{Seed: 42, NumEvents: 50, NumUsers: 100})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Synthetic(SyntheticConfig{Seed: 42, NumEvents: 50, NumUsers: 100})
	if err != nil {
		t.Fatal(err)
	}
	for u := range a.Users {
		if len(a.Users[u].Bids) != len(b.Users[u].Bids) {
			t.Fatal("bid sets differ across identical seeds")
		}
		for i := range a.Users[u].Bids {
			if a.Users[u].Bids[i] != b.Users[u].Bids[i] {
				t.Fatal("bid sets differ across identical seeds")
			}
		}
		if a.Users[u].Degree != b.Users[u].Degree {
			t.Fatal("degrees differ across identical seeds")
		}
	}
	c, err := Synthetic(SyntheticConfig{Seed: 43, NumEvents: 50, NumUsers: 100})
	if err != nil {
		t.Fatal(err)
	}
	same := true
	for u := range a.Users {
		if a.Users[u].Degree != c.Users[u].Degree {
			same = false
			break
		}
	}
	if same {
		t.Error("different seeds produced identical degree sequences")
	}
}

func TestSyntheticBidsAreDependent(t *testing.T) {
	// With GroupBias the average pairwise conflict rate *within* a user's
	// bids must exceed the background pcf: that is the point of the
	// dependent bidding model.
	in, err := Synthetic(SyntheticConfig{Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	pairs, conflicting := 0, 0
	for u := range in.Users {
		bids := in.Users[u].Bids
		for i := 0; i < len(bids); i++ {
			for j := i + 1; j < len(bids); j++ {
				pairs++
				if in.Conflicts(bids[i], bids[j]) {
					conflicting++
				}
			}
		}
	}
	rate := float64(conflicting) / float64(pairs)
	if rate < 0.4 { // background is 0.3; dependent bids must be well above
		t.Errorf("within-bid conflict rate %v not elevated above pcf=0.3", rate)
	}
}

func TestSyntheticValidation(t *testing.T) {
	if _, err := Synthetic(SyntheticConfig{NumEvents: -1}); err == nil {
		t.Error("negative dimensions accepted")
	}
	if _, err := Synthetic(SyntheticConfig{MinBids: 9, MaxBids: 8}); err == nil {
		t.Error("MinBids > MaxBids accepted")
	}
}

func TestSyntheticSmallUniverse(t *testing.T) {
	// MaxBids > |V| must degrade gracefully
	in, err := Synthetic(SyntheticConfig{Seed: 9, NumEvents: 3, NumUsers: 10, MinBids: 4, MaxBids: 8})
	if err != nil {
		t.Fatal(err)
	}
	for u := range in.Users {
		if len(in.Users[u].Bids) > 3 {
			t.Fatalf("user %d has %d bids in a 3-event universe", u, len(in.Users[u].Bids))
		}
	}
}

func TestMeetupDefaultsMatchPaper(t *testing.T) {
	in, err := Meetup(MeetupConfig{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if err := in.Check(); err != nil {
		t.Fatal(err)
	}
	if in.NumEvents() != 190 || in.NumUsers() != 2811 {
		t.Fatalf("dimensions %d×%d, want 190×2811", in.NumEvents(), in.NumUsers())
	}
	// paper rules: cu = 2 × attended ⇒ even and ≥ 2; bids = attended + cu/2 = cu
	for u := range in.Users {
		us := &in.Users[u]
		if us.Capacity%2 != 0 || us.Capacity < 2 {
			t.Fatalf("user %d capacity %d not an even positive number", u, us.Capacity)
		}
		if len(us.Bids) != us.Capacity {
			t.Fatalf("user %d: %d bids for capacity %d (want attended+cu/2 = cu)", u, len(us.Bids), us.Capacity)
		}
	}
	// conflicts come from time overlap; intervals stored on events
	for v, ev := range in.Events {
		if ev.End <= ev.Start {
			t.Fatalf("event %d has empty interval", v)
		}
		if ev.Capacity < 10 {
			t.Fatalf("event %d capacity %d below the specified-cap floor", v, ev.Capacity)
		}
	}
	// some events must conflict, but far from all
	st := model.ComputeStats(in)
	if st.ConflictPairs == 0 {
		t.Error("no time conflicts generated")
	}
	if st.ConflictRate > 0.5 {
		t.Errorf("conflict rate %v implausibly high for a 30-day calendar", st.ConflictRate)
	}
}

func TestMeetupInterestsAreAttributeBased(t *testing.T) {
	in, err := Meetup(MeetupConfig{Seed: 2, NumUsers: 200, NumEvents: 60})
	if err != nil {
		t.Fatal(err)
	}
	// SI must be within [0,1] and non-constant
	min, max := 1.0, 0.0
	for u := 0; u < 50; u++ {
		for v := 0; v < in.NumEvents(); v++ {
			s := in.Interest(u, v)
			if s < 0 || s > 1 {
				t.Fatalf("SI(%d,%d) = %v outside [0,1]", u, v, s)
			}
			if s < min {
				min = s
			}
			if s > max {
				max = s
			}
		}
	}
	if max-min < 0.2 {
		t.Errorf("interest range [%v,%v] suspiciously flat", min, max)
	}
}

func TestMeetupSocialNetworkFromGroups(t *testing.T) {
	in, err := Meetup(MeetupConfig{Seed: 3, NumUsers: 300, NumEvents: 50})
	if err != nil {
		t.Fatal(err)
	}
	nonzero := 0
	for u := range in.Users {
		if in.Users[u].Degree > 0 {
			nonzero++
		}
	}
	if nonzero < 200 {
		t.Errorf("only %d/300 users have social ties", nonzero)
	}
}

func TestMeetupDeterministic(t *testing.T) {
	a, _ := Meetup(MeetupConfig{Seed: 7, NumUsers: 100, NumEvents: 40})
	b, _ := Meetup(MeetupConfig{Seed: 7, NumUsers: 100, NumEvents: 40})
	ua, ub := model.ComputeStats(a), model.ComputeStats(b)
	if ua != ub {
		t.Fatalf("same seed different stats: %+v vs %+v", ua, ub)
	}
}

func TestMeetupValidation(t *testing.T) {
	if _, err := Meetup(MeetupConfig{NumGroups: -1}); err == nil {
		t.Error("negative groups accepted")
	}
}
