module github.com/ebsn/igepa

go 1.21
