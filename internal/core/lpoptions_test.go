package core

import (
	"errors"
	"math"
	"testing"

	"github.com/ebsn/igepa/internal/lp"
)

// TestOptionsLPKnobsPlumbed pins the Options.LP pass-through: invalid solver
// knobs fail fast as *lp.OptionError from both LPPacking and NewPlanner, and
// valid non-default knobs (legacy dual pricing, tight refactorization
// cadence) reach the solver without changing the certified LP optimum.
func TestOptionsLPKnobsPlumbed(t *testing.T) {
	in := tinyInstance()
	bad := Options{Seed: 1, LP: lp.Revised{RefactorEvery: -1}}
	var oe *lp.OptionError
	if _, err := LPPacking(in, bad); !errors.As(err, &oe) || oe.Option != "RefactorEvery" {
		t.Fatalf("LPPacking with bad LP knob: err = %v, want *lp.OptionError on RefactorEvery", err)
	}
	if _, err := NewPlanner(in.Clone(), bad); !errors.As(err, &oe) || oe.Option != "RefactorEvery" {
		t.Fatalf("NewPlanner with bad LP knob: err = %v, want *lp.OptionError on RefactorEvery", err)
	}

	ref, err := NewPlanner(in.Clone(), Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer ref.Close()
	tuned, err := NewPlanner(in.Clone(), Options{Seed: 1, LP: lp.Revised{
		Pricing: "devex", DualPricing: "maxinfeas", RefactorEvery: 4,
	}})
	if err != nil {
		t.Fatal(err)
	}
	defer tuned.Close()
	// Different pivot rules, same problem: the optimum value is unique even
	// when the optimal basis is not.
	if d := math.Abs(ref.Objective() - tuned.Objective()); d > 1e-9*(1+math.Abs(ref.Objective())) {
		t.Fatalf("tuned planner objective %v differs from default %v", tuned.Objective(), ref.Objective())
	}
}
