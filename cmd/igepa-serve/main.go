// Command igepa-serve replays an online arrival stream through the sharded
// serving layer (internal/shard) and reports how utility, throughput and
// decision latency behave as the shard count grows — the serving-side
// counterpart of igepa-bench's offline sweeps. With -listen it instead
// hosts the HTTP serving subsystem (internal/server) over the same engine.
//
// Usage:
//
//	igepa-serve                          # Meetup-like stream, S ∈ {1,2,4,8}
//	igepa-serve -shards 1,2,4,8,16 -batch 64
//	igepa-serve -workload synthetic -users 2000 -events 100
//	igepa-serve -planner threshold -tau 0.5 -guard 0.25
//	igepa-serve -lease lp                # warm-started LP lease splits
//	igepa-serve -arrivals stream.jsonl   # replay a recorded arrival log
//	igepa-serve -live-bound              # incremental LP bound per batch
//	igepa-serve -pace 100                # wall-clock replay at 100× speed
//	igepa-serve -cache 4096              # admissible-set cache per shard
//	igepa-serve -listen :8080            # host the HTTP front-end
//	igepa-serve -listen :8080 -replay    # deterministic replay dispatcher
//	igepa-serve -listen :8080 -wal serve.wal -checkpoint serve.ckpt
//	igepa-serve -listen :8081 -wal serve.wal -follow   # read replica
//
// With -wal every accepted operation is appended to a write-ahead log
// before its reply and restarts warm-boot by replaying it (from the
// -checkpoint snapshot's offset when one exists); -wal-sync picks the fsync
// policy (always / interval / off). With -follow the process is a read
// replica tailing the leader's -wal: reads only, ready once caught up
// within -lag-bytes, promoted via POST /admin/promote. SIGINT and SIGTERM
// both shut the server down cleanly: stop accepting, drain every queued
// decision into the log, checkpoint if configured, then exit — a container
// stop is a clean shutdown, not a crash. See DESIGN.md §9.
//
// The arrival stream is either a timestamped JSONL log written by
// igepa-datagen -arrivals, or the built-in synthetic stream. Every row is
// deterministic given -seed: the same stream, partition and lease schedule
// reproduce bit-identical arrangements on every run and every GOMAXPROCS
// (decision latencies, being wall-clock measurements, vary — the decisions
// do not).
//
// With -pace the replay honors the log's timestamps: batch k is dispatched
// only once its last arrival's (scaled) timestamp has passed, and the
// report adds the queueing delay — time from a user's arrival to their
// batch's dispatch — on top of the decision latency. Pacing changes when
// decisions happen, never what they are.
//
// With -live-bound the command also exercises the incremental planner
// (igepa.NewPlanner / Planner.Update): after each batch it removes the served
// users and the consumed seats from a shadow instance and warm re-solves the
// benchmark LP, reporting how the remaining-opportunity bound decays, how
// many re-solves the persistent solver served warm (and how many finished
// fast — delta-priced, zero pivots), and the planner-update p50/p99 latency
// separately from the decision tails, so the bound's upkeep cost is visible
// next to the serving numbers. With -listen, -live-bound switches the
// engine-owned tracker on instead (shard.Options.LiveBound) and /statsz
// reports the remaining bound plus update latency percentiles.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net"
	"net/http"
	httppprof "net/http/pprof"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"github.com/ebsn/igepa"
	"github.com/ebsn/igepa/internal/server"
	"github.com/ebsn/igepa/internal/shard"
	"github.com/ebsn/igepa/internal/stats"
	"github.com/ebsn/igepa/internal/wal"
	"github.com/ebsn/igepa/internal/workload"
)

type config struct {
	workload  string
	events    int
	users     int
	seed      int64
	shards    []int
	batch     int
	planner   string
	tau       float64
	guard     float64
	workers   int
	lpBound   bool
	lease     string
	arrivals  string
	rate      float64
	liveBound bool
	pace      float64
	cache     int

	arrivalsPartial bool

	// -listen mode
	listen     string
	flush      time.Duration
	queueDepth int
	replay     bool
	pprof      bool
	slowlog    time.Duration

	// durability (-listen mode)
	wal             string
	walSync         string
	walSyncInterval time.Duration
	checkpoint      string
	follow          bool
	lagBytes        int64
}

func main() {
	var cfg config
	var shardList string
	flag.StringVar(&cfg.workload, "workload", "meetup", "arrival workload: meetup or synthetic")
	flag.IntVar(&cfg.events, "events", 80, "number of events (0 = workload default)")
	flag.IntVar(&cfg.users, "users", 600, "number of users / arrivals (0 = workload default)")
	flag.Int64Var(&cfg.seed, "seed", 1, "seed for instance, arrival order and shard partition")
	flag.StringVar(&shardList, "shards", "1,2,4,8", "comma-separated shard counts to sweep")
	flag.IntVar(&cfg.batch, "batch", 0, "arrivals between lease renewals (0 = default)")
	flag.StringVar(&cfg.planner, "planner", "greedy", "per-shard policy: greedy or threshold")
	flag.Float64Var(&cfg.tau, "tau", 0.5, "threshold planner: admission weight")
	flag.Float64Var(&cfg.guard, "guard", 0.25, "threshold planner: reserved capacity fraction")
	flag.IntVar(&cfg.workers, "workers", 0, "worker-pool bound (0 = all cores; results identical)")
	flag.BoolVar(&cfg.lpBound, "lp", true, "also solve the offline LP bound for comparison")
	flag.StringVar(&cfg.lease, "lease", "demand", "lease renewal policy: demand, even or lp")
	flag.StringVar(&cfg.arrivals, "arrivals", "", "replay arrivals from this JSONL log (igepa-datagen -arrivals)")
	flag.Float64Var(&cfg.rate, "rate", 1000, "synthetic stream: mean arrivals per second")
	flag.BoolVar(&cfg.liveBound, "live-bound", false, "track the incremental LP bound across batches (warm re-solves)")
	flag.Float64Var(&cfg.pace, "pace", 0, "wall-clock replay speed-up factor (1 = real time, 0 = as fast as possible)")
	flag.IntVar(&cfg.cache, "cache", 0, "admissible-set cache entries per shard (0 = disabled)")
	flag.StringVar(&cfg.listen, "listen", "", "host the HTTP serving layer on this address instead of the replay sweep")
	flag.DurationVar(&cfg.flush, "flush", 0, "listen: micro-batch flush deadline (0 = default)")
	flag.IntVar(&cfg.queueDepth, "queue", 0, "listen: bounded queue depth (0 = default)")
	flag.BoolVar(&cfg.replay, "replay", false, "listen: deterministic replay dispatcher (batch-by-count, no deadlines)")
	flag.BoolVar(&cfg.pprof, "pprof", false, "listen: expose net/http/pprof handlers under /debug/pprof/")
	flag.DurationVar(&cfg.slowlog, "slowlog", 0, "listen: log arrivals and renewal rounds slower than this to stderr (0 = off)")
	flag.BoolVar(&cfg.arrivalsPartial, "arrivals-partial", false, "tolerate a truncated arrival log: replay the valid prefix and warn")
	flag.StringVar(&cfg.wal, "wal", "", "listen: write-ahead log path (crash-safe serving + warm boot)")
	flag.StringVar(&cfg.walSync, "wal-sync", "interval", "listen: WAL fsync policy: always, interval or off")
	flag.DurationVar(&cfg.walSyncInterval, "wal-sync-interval", 0, "listen: background fsync period under -wal-sync interval (0 = default)")
	flag.StringVar(&cfg.checkpoint, "checkpoint", "", "listen: checkpoint file (atomic snapshot bounding WAL replay; written on shutdown and POST /admin/checkpoint)")
	flag.BoolVar(&cfg.follow, "follow", false, "listen: run as a read replica tailing -wal (promote via POST /admin/promote)")
	flag.Int64Var(&cfg.lagBytes, "lag-bytes", 0, "listen: follower readiness bound in bytes behind the log end (0 = default)")
	flag.Parse()

	shardsSet := false
	flag.Visit(func(f *flag.Flag) {
		if f.Name == "shards" {
			shardsSet = true
		}
	})
	var err error
	cfg.shards, err = parseShards(shardList)
	if err == nil {
		if cfg.listen != "" {
			if !shardsSet {
				// the sweep default "1,2,4,8" is a shard-count list; a
				// server is one configuration, so default to a single shard
				cfg.shards = []int{1}
			}
			err = listenAndServe(os.Stdout, cfg)
		} else {
			err = run(os.Stdout, cfg)
		}
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "igepa-serve:", err)
		os.Exit(1)
	}
}

// shutdownGrace bounds each stage of a signal-driven shutdown: finishing
// in-flight HTTP requests, then draining the queued decisions.
const shutdownGrace = 10 * time.Second

// listenAndServe hosts the HTTP serving subsystem until SIGINT or SIGTERM
// (containers send SIGTERM; both take the same drain path).
func listenAndServe(w *os.File, cfg config) error {
	ln, err := net.Listen("tcp", cfg.listen)
	if err != nil {
		return err
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	return serveListenerCtx(ctx, w, ln, cfg)
}

// serveListener runs the HTTP server on an existing listener; it returns
// cleanly when the listener closes (tests drive it this way).
func serveListener(w *os.File, ln net.Listener, cfg config) error {
	return serveListenerCtx(context.Background(), w, ln, cfg)
}

// serveListenerCtx is the -listen engine room. When ctx fires (SIGINT or
// SIGTERM) it shuts down through the drain path: stop accepting and finish
// in-flight requests (http.Server.Shutdown), drain every queued decision —
// with a WAL, into the log — write a final checkpoint if one is configured,
// then Close. A container stop is a clean shutdown, not a crash.
func serveListenerCtx(ctx context.Context, w *os.File, ln net.Listener, cfg config) error {
	in, err := makeInstance(cfg)
	if err != nil {
		return err
	}
	kind, err := plannerKind(cfg.planner)
	if err != nil {
		return err
	}
	lease, err := leasePolicy(cfg.lease)
	if err != nil {
		return err
	}
	sync := wal.SyncInterval
	if cfg.walSync != "" {
		if sync, err = wal.ParseSyncPolicy(cfg.walSync); err != nil {
			return err
		}
	}
	if len(cfg.shards) != 1 {
		return fmt.Errorf("-listen hosts one server: pass a single -shards value (default 1), got %v", cfg.shards)
	}
	s := cfg.shards[0]
	srv, err := server.New(in, server.Config{
		Shard: shard.Options{
			Shards: s, Batch: cfg.batch, Workers: cfg.workers, Seed: cfg.seed,
			Planner: kind, Tau: cfg.tau, Guard: cfg.guard,
			Lease: lease, CacheSize: cfg.cache, LiveBound: cfg.liveBound,
		},
		Replay:          cfg.replay,
		FlushInterval:   cfg.flush,
		QueueDepth:      cfg.queueDepth,
		WALPath:         cfg.wal,
		WALSync:         sync,
		WALSyncInterval: cfg.walSyncInterval,
		CheckpointPath:  cfg.checkpoint,
		Follow:          cfg.follow,
		LagBytes:        cfg.lagBytes,
		SlowLog:         cfg.slowlog,
	})
	if err != nil {
		return err
	}
	defer srv.Close()
	mode := "live"
	if cfg.replay {
		mode = "replay"
	}
	role := ""
	if cfg.follow {
		role = " as read follower"
	}
	fmt.Fprintf(w, "igepa-serve: %s mode on %s%s — |V|=%d |U|=%d S=%d (POST /v1/bid, /v1/cancel; GET /v1/assignment, /v1/load, /healthz, /readyz, /statsz, /metrics)\n",
		mode, ln.Addr(), role, in.NumEvents(), in.NumUsers(), s)
	hs := &http.Server{Handler: withPprof(srv, cfg.pprof)}
	served := make(chan struct{})
	shutdownDone := make(chan struct{})
	go func() {
		defer close(shutdownDone)
		select {
		case <-ctx.Done():
			fmt.Fprintf(w, "igepa-serve: signal received, draining\n")
			sctx, cancel := context.WithTimeout(context.Background(), shutdownGrace)
			hs.Shutdown(sctx)
			cancel()
			if !srv.Drain(shutdownGrace) {
				fmt.Fprintln(os.Stderr, "igepa-serve: drain timed out; closing anyway")
			}
			if cfg.checkpoint != "" && !cfg.follow {
				if err := srv.Checkpoint(); err != nil {
					fmt.Fprintln(os.Stderr, "igepa-serve: checkpoint on shutdown:", err)
				}
			}
		case <-served:
		}
	}()
	err = hs.Serve(ln)
	close(served)
	<-shutdownDone
	if err != nil && !errors.Is(err, http.ErrServerClosed) && !errors.Is(err, net.ErrClosed) {
		return err
	}
	return nil
}

// withPprof mounts the net/http/pprof handlers under /debug/pprof/ in front
// of the serving handler when enabled. Registered explicitly on a private
// mux (not the import side effect on http.DefaultServeMux) so profiling is
// opt-in per process and never leaks onto other servers in tests.
func withPprof(h http.Handler, enabled bool) http.Handler {
	if !enabled {
		return h
	}
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", httppprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", httppprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", httppprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", httppprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", httppprof.Trace)
	mux.Handle("/", h)
	return mux
}

func parseShards(list string) ([]int, error) {
	var out []int
	for _, tok := range strings.Split(list, ",") {
		s, err := strconv.Atoi(strings.TrimSpace(tok))
		if err != nil || s < 1 {
			return nil, fmt.Errorf("bad shard count %q", tok)
		}
		out = append(out, s)
	}
	return out, nil
}

func run(w *os.File, cfg config) error {
	in, err := makeInstance(cfg)
	if err != nil {
		return err
	}
	kind, err := plannerKind(cfg.planner)
	if err != nil {
		return err
	}
	lease, err := leasePolicy(cfg.lease)
	if err != nil {
		return err
	}
	stream, err := makeStream(cfg, in.NumUsers())
	if err != nil {
		return err
	}
	order := workload.ArrivalOrder(stream)

	bound := 0.0
	if cfg.lpBound {
		res, err := igepa.LPPacking(in, igepa.LPPackingOptions{Seed: cfg.seed, Workers: cfg.workers})
		if err != nil {
			return fmt.Errorf("offline LP bound: %w", err)
		}
		bound = res.LPObjective
	}

	fmt.Fprintf(w, "workload=%s |V|=%d |U|=%d arrivals=%d planner=%s lease=%s seed=%d\n",
		cfg.workload, in.NumEvents(), in.NumUsers(), len(order), kind, lease, cfg.seed)
	if cfg.lpBound {
		fmt.Fprintf(w, "offline LP bound: %.4f\n", bound)
	}
	fmt.Fprintf(w, "%8s %12s %10s %10s %8s %8s %10s %12s %10s %10s\n",
		"shards", "utility", "vs-single", "vs-bound", "pairs", "moved", "elapsed", "arrivals/s", "p50", "p99")

	optFor := func(s int) shard.Options {
		return shard.Options{
			Shards: s, Batch: cfg.batch, Workers: cfg.workers, Seed: cfg.seed,
			Planner: kind, Tau: cfg.tau, Guard: cfg.guard,
			Lease: lease, RecordLatency: true, CacheSize: cfg.cache,
		}
	}
	// The vs-single baseline is always a real S=1 run, whatever -shards says.
	base, err := shard.Serve(in, order, optFor(1))
	if err != nil {
		return err
	}
	single := base.Utility
	for _, s := range cfg.shards {
		start := time.Now()
		res, err := shard.Serve(in, order, optFor(s))
		if err != nil {
			return err
		}
		elapsed := time.Since(start)
		if err := igepa.Validate(in, res.Arrangement); err != nil {
			return fmt.Errorf("S=%d produced infeasible arrangement: %w", s, err)
		}
		vsSingle, vsBound := "-", "-"
		if single > 0 {
			vsSingle = fmt.Sprintf("%.1f%%", 100*res.Utility/single)
		}
		if bound > 0 {
			vsBound = fmt.Sprintf("%.1f%%", 100*res.Utility/bound)
		}
		rate := float64(len(order)) / elapsed.Seconds()
		p50, p99 := latencyPercentiles(res.Latencies, order)
		fmt.Fprintf(w, "%8d %12.4f %10s %10s %8d %8d %10s %12.0f %10s %10s\n",
			s, res.Utility, vsSingle, vsBound,
			res.Arrangement.Size(), res.MovedSeats,
			elapsed.Round(time.Millisecond), rate,
			p50.Round(time.Microsecond), p99.Round(time.Microsecond))
		if cfg.cache > 0 {
			fmt.Fprintf(w, "%8s admissible-set cache: %d hits / %d misses (rate %.3f), %d entries\n",
				"", res.Cache.Hits, res.Cache.Misses, res.Cache.HitRate(), res.Cache.Entries)
		}
	}

	if cfg.pace > 0 {
		if err := pacedReplay(w, in, stream, cfg, kind, lease); err != nil {
			return fmt.Errorf("paced replay: %w", err)
		}
	}
	if cfg.liveBound {
		if err := liveBound(w, in, order, base, cfg); err != nil {
			return fmt.Errorf("live bound: %w", err)
		}
	}
	return nil
}

// pacedReplay re-runs the sweep honoring the stream's timestamps (scaled by
// the pace factor): batch k dispatches once its last arrival has "arrived".
// Decisions are identical to the unpaced sweep; what pacing adds is the
// queueing delay every arrival spends waiting for its batch to assemble and
// flush — the serving-time cost the throughput table cannot show.
func pacedReplay(w *os.File, in *igepa.Instance, stream []workload.Arrival, cfg config, kind shard.PlannerKind, lease shard.LeasePolicy) error {
	if len(stream) == 0 {
		fmt.Fprintf(w, "\npaced replay: empty arrival stream, nothing to pace\n")
		return nil
	}
	fmt.Fprintf(w, "\npaced replay at %gx: queueing delay on top of decision latency (stream spans %.1fs)\n",
		cfg.pace, float64(stream[len(stream)-1].TMillis)/1000)
	fmt.Fprintf(w, "%8s %10s %10s %10s %10s %10s %12.12s\n",
		"shards", "queue-p50", "queue-p99", "decide-p50", "decide-p99", "total-p99", "utility")
	for _, s := range cfg.shards {
		opt := shard.Options{
			Shards: s, Batch: cfg.batch, Workers: cfg.workers, Seed: cfg.seed,
			Planner: kind, Tau: cfg.tau, Guard: cfg.guard,
			Lease: lease, RecordLatency: true, CacheSize: cfg.cache,
		}
		res, qdelay, err := servePaced(in, stream, opt, cfg.pace)
		if err != nil {
			return err
		}
		order := workload.ArrivalOrder(stream)
		dp50, dp99 := latencyPercentiles(res.Latencies, order)
		qp50, qp99 := durationPercentiles(qdelay)
		// per-arrival totals: summing the two p99s would overstate the tail
		// (queue wait and decision order are anti-correlated in a batch)
		totals := make([]time.Duration, len(order))
		for i, u := range order {
			totals[i] = qdelay[i] + res.Latencies[u]
		}
		_, tp99 := durationPercentiles(totals)
		fmt.Fprintf(w, "%8d %10s %10s %10s %10s %10s %12.4f\n",
			s,
			qp50.Round(time.Microsecond), qp99.Round(time.Microsecond),
			dp50.Round(time.Microsecond), dp99.Round(time.Microsecond),
			tp99.Round(time.Microsecond), res.Utility)
	}
	return nil
}

// servePaced drives the shard engine over the stream with Serve's exact
// batch schedule, but dispatches each batch only once its last arrival's
// scaled timestamp has elapsed. qdelay[i] is arrival i's queueing delay:
// dispatch time minus (scaled) arrival time.
func servePaced(in *igepa.Instance, stream []workload.Arrival, opt shard.Options, pace float64) (*shard.Result, []time.Duration, error) {
	order := workload.ArrivalOrder(stream)
	e, err := shard.NewEngine(in, opt)
	if err != nil {
		return nil, nil, err
	}
	defer e.Close()
	if err := shard.CheckOrder(in, order); err != nil {
		return nil, nil, err
	}
	scaled := func(tms int64) time.Duration {
		return time.Duration(float64(tms) / pace * float64(time.Millisecond))
	}
	qdelay := make([]time.Duration, len(order))
	b := e.Batch()
	start := time.Now()
	for s0 := 0; s0 < len(order); s0 += b {
		end := min(s0+b, len(order))
		if wait := scaled(stream[end-1].TMillis) - time.Since(start); wait > 0 {
			time.Sleep(wait)
		}
		flushAt := time.Since(start)
		for i := s0; i < end; i++ {
			if d := flushAt - scaled(stream[i].TMillis); d > 0 {
				qdelay[i] = d
			}
		}
		e.DispatchBatch(order[s0:end])
		if end < len(order) && e.Shards() > 1 {
			if _, err := e.RenewLeases(order[end:min(end+b, len(order))]); err != nil {
				return nil, nil, err
			}
		}
	}
	res, err := e.Result()
	return res, qdelay, err
}

// durationPercentiles returns (p50, p99) of the samples.
func durationPercentiles(samples []time.Duration) (p50, p99 time.Duration) {
	ps := stats.DurationPercentiles(samples, 0.50, 0.99)
	return ps[0], ps[1]
}

// latencyPercentiles extracts the served users' decision latencies and
// returns (p50, p99).
func latencyPercentiles(lat []time.Duration, order []int) (p50, p99 time.Duration) {
	if len(lat) == 0 || len(order) == 0 {
		return 0, 0
	}
	samples := make([]time.Duration, 0, len(order))
	for _, u := range order {
		samples = append(samples, lat[u])
	}
	return durationPercentiles(samples)
}

// liveBound replays the batch schedule against the incremental planner: a
// shadow copy of the instance loses each batch's served users and consumed
// seats, and the benchmark LP is warm re-solved after every batch. The
// committed utility plus the remaining LP optimum is a live upper bound on
// the best total utility still reachable — the serving-time counterpart of
// Lemma 1's offline bound.
func liveBound(w *os.File, in *igepa.Instance, order []int, served *shard.Result, cfg config) error {
	shadow := cloneInstance(in)
	p, err := igepa.NewPlanner(shadow, igepa.LPPackingOptions{Seed: cfg.seed, Workers: cfg.workers})
	if err != nil {
		return err
	}
	defer p.Close()

	batch := cfg.batch
	if batch <= 0 {
		batch = shard.DefaultBatch
	}
	committedArr := igepa.Arrangement{Sets: make([][]int, in.NumUsers())}
	fmt.Fprintf(w, "\nlive bound (batch=%d): committed + remaining LP after each batch\n", batch)
	fmt.Fprintf(w, "%8s %8s %12s %14s %12s %10s\n", "epoch", "served", "committed", "remaining-LP", "total-bound", "update")

	var updateLat []time.Duration
	totalServed := 0
	for start, epoch := 0, 1; start < len(order); start, epoch = start+batch, epoch+1 {
		end := min(start+batch, len(order))
		var delta igepa.PlannerDelta
		usedSeats := map[int]int{}
		for _, u := range order[start:end] {
			committedArr.Sets[u] = served.Arrangement.Sets[u]
			for _, v := range served.Arrangement.Sets[u] {
				usedSeats[v]++
			}
			shadow.Users[u].Bids = nil // decided: out of the remaining problem
			delta.Users = append(delta.Users, u)
		}
		for v, n := range usedSeats {
			shadow.Events[v].Capacity -= n
			delta.Events = append(delta.Events, v)
		}
		t0 := time.Now()
		res, err := p.Update(delta)
		took := time.Since(t0)
		if err != nil {
			return err
		}
		updateLat = append(updateLat, took)
		totalServed += end - start
		committed := igepa.Utility(in, &committedArr)
		fmt.Fprintf(w, "%8d %8d %12.4f %14.4f %12.4f %10s\n",
			epoch, totalServed, committed, res.LPObjective, committed+res.LPObjective,
			took.Round(time.Microsecond))
	}
	st := p.Stats()
	fmt.Fprintf(w, "incremental solver: %d warm re-solves (%d fast-finished), %d cold (fallbacks: %d singular, %d infeasible), %d warm pivots\n",
		st.WarmSolves, st.FastFinishes, st.ColdSolves, st.FallbackSingular, st.FallbackInfeasible, st.WarmPivots)
	up50, up99 := durationPercentiles(updateLat)
	fmt.Fprintf(w, "planner update latency: p50 %s p99 %s (decision latency tails are in the sweep table above)\n",
		up50.Round(time.Microsecond), up99.Round(time.Microsecond))
	return nil
}

// cloneInstance deep-copies the mutable parts of the instance so the live
// bound can consume it without touching the serving input.
func cloneInstance(in *igepa.Instance) *igepa.Instance { return in.Clone() }

// makeStream loads the JSONL arrival log, or generates the deterministic
// synthetic stream (every user once, seeded order, exponential gaps).
func makeStream(cfg config, numUsers int) ([]workload.Arrival, error) {
	if cfg.arrivals == "" {
		return workload.SyntheticArrivals(cfg.seed, numUsers, cfg.rate), nil
	}
	f, err := os.Open(cfg.arrivals)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	var arr []workload.Arrival
	if cfg.arrivalsPartial {
		// A crashed or mid-write producer leaves a truncated final line;
		// salvage the valid prefix and say where the damage starts instead
		// of rejecting the whole log.
		var off int64
		var perr error
		arr, off, perr = workload.ReadArrivalsPartial(f)
		if perr != nil {
			fmt.Fprintf(os.Stderr, "igepa-serve: arrival log damaged at offset %d, replaying the %d-arrival prefix (%v)\n",
				off, len(arr), perr)
		}
	} else {
		arr, err = workload.ReadArrivals(f)
		if err != nil {
			return nil, err
		}
	}
	for i, a := range arr {
		if a.User >= numUsers {
			return nil, fmt.Errorf("arrival %d: user %d outside instance (|U| = %d)", i, a.User, numUsers)
		}
	}
	return arr, nil
}

func makeInstance(cfg config) (*igepa.Instance, error) {
	switch cfg.workload {
	case "meetup":
		return igepa.Meetup(igepa.MeetupConfig{
			Seed: cfg.seed, NumEvents: cfg.events, NumUsers: cfg.users,
		})
	case "synthetic":
		return igepa.Synthetic(igepa.SyntheticConfig{
			Seed: cfg.seed, NumEvents: cfg.events, NumUsers: cfg.users,
		})
	default:
		return nil, fmt.Errorf("unknown workload %q (want meetup or synthetic)", cfg.workload)
	}
}

func plannerKind(name string) (shard.PlannerKind, error) {
	switch name {
	case "greedy":
		return shard.PlannerGreedy, nil
	case "threshold":
		return shard.PlannerThreshold, nil
	default:
		return 0, fmt.Errorf("unknown planner %q (want greedy or threshold)", name)
	}
}

func leasePolicy(name string) (shard.LeasePolicy, error) {
	switch name {
	case "", "demand":
		return shard.LeaseDemand, nil
	case "even":
		return shard.LeaseEven, nil
	case "lp":
		return shard.LeaseLP, nil
	default:
		return 0, fmt.Errorf("unknown lease policy %q (want demand, even or lp)", name)
	}
}
