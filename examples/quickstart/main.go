// Quickstart: generate a small synthetic EBSN instance, run LP-packing, and
// inspect the arrangement — the minimal end-to-end tour of the public API.
package main

import (
	"fmt"
	"log"

	"github.com/ebsn/igepa"
)

func main() {
	// A small event-based social network: 12 events, 40 users, capacities
	// and conflicts drawn per the paper's Table I generator.
	in, err := igepa.Synthetic(igepa.SyntheticConfig{
		Seed:        42,
		NumEvents:   12,
		NumUsers:    40,
		MaxEventCap: 6,
		MaxUserCap:  3,
		PConflict:   0.3,
		PFriend:     0.4,
	})
	if err != nil {
		log.Fatal(err)
	}
	st := igepa.ComputeStats(in)
	fmt.Printf("instance: %d events, %d users, %.1f bids/user, conflict rate %.2f\n\n",
		st.NumEvents, st.NumUsers, st.MeanBidsPerUser, st.ConflictRate)

	// LP-packing: solve the benchmark LP, sample admissible sets, repair.
	res, err := igepa.LPPacking(in, igepa.LPPackingOptions{Seed: 7})
	if err != nil {
		log.Fatal(err)
	}

	// The LP optimum upper-bounds the best possible arrangement (Lemma 1),
	// so we get a per-run quality certificate for free.
	fmt.Printf("LP upper bound:     %.3f\n", res.LPObjective)
	fmt.Printf("LP-packing utility: %.3f (≥ %.0f%% of optimal)\n\n",
		res.Utility, 100*res.Utility/res.LPObjective)

	// Compare with the three baselines from the paper's evaluation.
	for _, name := range []string{"greedy", "random-u", "random-v"} {
		arr, err := igepa.Solve(in, name, 7)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-10s utility: %.3f\n", name, igepa.Utility(in, arr))
	}

	// Every arrangement is independently re-checkable.
	if err := igepa.Validate(in, res.Arrangement); err != nil {
		log.Fatalf("infeasible arrangement: %v", err)
	}
	fmt.Println("\nfirst assignments (user -> events):")
	shown := 0
	for u, events := range res.Arrangement.Sets {
		if len(events) == 0 {
			continue
		}
		fmt.Printf("  user %2d -> %v\n", u, events)
		if shown++; shown == 8 {
			break
		}
	}
}
