// Package shard serves online IGEPA arrival streams across S independent
// shards — the serving architecture for platform-scale traffic, where one
// global planner over one global capacity table would serialize every
// arrival.
//
// # Partition
//
// Users are partitioned across shards by a stateless hash of (seed, user)
// (xrand.Hash64), so shard membership depends only on the seed — never on
// arrival order, batch boundaries or worker scheduling. Events are shared:
// every shard may grant seats of every event, but only out of its own
// capacity lease.
//
// # Capacity leases
//
// Each shard holds a lease on a slice of every event's capacity: a budget
// vector budget[s][v] with the invariant
//
//	Σ_s budget[s][v] ≤ cv   for every event v, at every instant,
//
// which makes the merged arrangement feasible by construction — no seat can
// be granted twice because no seat is ever leased twice. Initially each
// event's capacity is split evenly, the remainder rotated by event index so
// no shard systematically collects the extra seats. Arrivals are processed
// in batches of B; between batches the coordinator renews the leases:
// every shard's unused seats return to the pool and the pool is re-split
// according to the lease policy. Consumed seats stay with the shard that
// granted them, so renewal never invalidates a past grant. Renewal is what
// keeps utility loss from capacity fragmentation bounded: a shard that
// received seats its users never wanted holds them for at most one batch.
//
// # Lease policies
//
// The re-split rule is Options.Lease:
//
//   - LeaseDemand (default): each event's free pool is split in proportion
//     to the shards' pending-bidder counts for the next batch — the
//     coordinator knows the batch composition before dispatch, so seats go
//     where bidders are about to arrive. Events nobody in the next batch
//     bids on fall back to the even split.
//   - LeaseEven: the pool is re-split evenly, remainder rotated by (event,
//     epoch) — the PR-2 protocol, kept as the ablation baseline.
//   - LeaseLP: the coordinator solves a small transportation LP over
//     (shard, event) seat grants — maximizing predicted next-batch value
//     subject to the free pool, per-shard attendance caps and per-pair
//     demand caps — on a persistent warm-started solver (lp.Solver): the
//     LP's shape is fixed across renewals, so each round is a bounds+
//     objective delta re-solved from the previous basis.
//
// # Determinism and merge
//
// Within a batch the shards run concurrently (one planner per shard on the
// bounded par pool), each writing only its own arrangement part and its own
// planner state, and reading only its own lease vector (written exclusively
// between batches). The result is therefore a pure function of
// (instance, order, Options) — bit-identical for every Workers value and
// GOMAXPROCS — and the per-shard parts are merged with model.MergeDisjoint,
// which verifies the parts never overlap on a user.
package shard

import (
	"fmt"
	"time"

	"github.com/ebsn/igepa/internal/admissible"
	"github.com/ebsn/igepa/internal/lp"
	"github.com/ebsn/igepa/internal/model"
	"github.com/ebsn/igepa/internal/xrand"
)

// DefaultBatch is the lease-renewal period (arrivals per epoch) used when
// Options.Batch is 0.
const DefaultBatch = 128

// shardSalt decorrelates the user→shard hash from other uses of the seed
// (interest tables, RNG streams).
const shardSalt = 0x5eed

// PlannerKind selects the per-shard online policy.
type PlannerKind int

const (
	// PlannerGreedy runs online.GreedyPlanner per shard.
	PlannerGreedy PlannerKind = iota
	// PlannerThreshold runs online.ThresholdPlanner per shard (Tau/Guard
	// from Options); the guard protects a fraction of each shard's lease.
	PlannerThreshold
)

// String implements fmt.Stringer.
func (k PlannerKind) String() string {
	switch k {
	case PlannerGreedy:
		return "greedy"
	case PlannerThreshold:
		return "threshold"
	default:
		return fmt.Sprintf("PlannerKind(%d)", int(k))
	}
}

// LeasePolicy selects how the coordinator re-splits each event's free seat
// pool at renewal time.
type LeasePolicy int

const (
	// LeaseDemand splits each pool in proportion to the shards' pending
	// bidder counts for the next batch (largest-remainder rounding; even
	// split for events with no pending demand). The default.
	LeaseDemand LeasePolicy = iota
	// LeaseEven splits each pool evenly, remainder rotated by (event,
	// epoch) — the original protocol, kept for ablation.
	LeaseEven
	// LeaseLP solves a transportation LP over (shard, event) grants on a
	// persistent warm-started solver and leases seats along its optimum.
	LeaseLP
)

// String implements fmt.Stringer.
func (l LeasePolicy) String() string {
	switch l {
	case LeaseDemand:
		return "demand"
	case LeaseEven:
		return "even"
	case LeaseLP:
		return "lp"
	default:
		return fmt.Sprintf("LeasePolicy(%d)", int(l))
	}
}

// Options configures Serve.
type Options struct {
	// Shards is S, the number of independent serving shards. It must be
	// positive; Serve and NewEngine return a *ConfigError otherwise.
	Shards int
	// Batch is B, the number of arrivals between lease renewals.
	// 0 means DefaultBatch; negative is a *ConfigError.
	Batch int
	// Workers bounds the worker pool running the shard planners; 0 means
	// GOMAXPROCS. Results are bit-identical for every value.
	Workers int
	// Seed drives the user→shard partition hash.
	Seed int64
	// Planner selects the per-shard policy.
	Planner PlannerKind
	// Tau, Guard parameterize PlannerThreshold (see online.ThresholdPlanner).
	Tau, Guard float64
	// MaxSetsPerUser caps per-user admissible-set enumeration
	// (0 = package default).
	MaxSetsPerUser int
	// Lease selects the renewal policy (default LeaseDemand).
	Lease LeasePolicy
	// RecordLatency, when set, measures each arrival's decision latency and
	// returns the samples in Result.Latencies. Timing adds a clock read per
	// arrival and has no effect on decisions.
	RecordLatency bool
	// CacheSize, when positive, gives every shard an LRU cache of that many
	// admissible-set enumerations keyed by (open bid set, user capacity):
	// repeat bid patterns skip the enumeration DFS and only re-score the
	// cached family under the arriving user's weights. 0 disables caching;
	// negative is a *ConfigError. Results remain a pure function of
	// (instance, order, Options) — bit-identical across worker counts — but
	// enabling the cache may resolve exact weight ties differently than the
	// uncached scorer.
	CacheSize int
	// ClusterShards, when positive, puts the engine in cluster mode: this
	// process hosts exactly one shard (Shards must be 1) of a
	// ClusterShards-wide multi-process deployment, holding the lease slice a
	// single-process ClusterShards-shard engine would give shard
	// ClusterIndex. Renewal arrives over the wire via InstallLease (driven
	// by a router-side Coordinator); RenewLeases is disabled. Seed must
	// match across the cluster and the router — it drives the user→shard
	// hash.
	ClusterShards int
	// ClusterIndex is this process's shard index in [0, ClusterShards).
	ClusterIndex int
	// LiveBound, when set, keeps an incremental LP planner (core.Planner)
	// over a shadow copy of the instance, updated after every dispatched
	// batch: served users leave the shadow problem and consumed seats leave
	// its capacities, so the planner's objective is a live upper bound on
	// the utility still reachable (committed + remaining ≥ best total).
	// Results and decisions are unchanged; the tracker's outcome lands in
	// Result.Bound and behind Engine.LiveBound/BoundStats. Costs one warm
	// LP re-solve plus a delta-scoped re-round per batch.
	LiveBound bool
	// LP carries the revised-simplex tuning knobs for the solvers this
	// engine creates: the LeaseLP split solver and the LiveBound planner's
	// persistent solver. The zero value keeps the defaults, and LP.Workers
	// == 0 inherits Options.Workers — existing callers see bit-identical
	// behavior. Invalid knobs surface as *lp.OptionError from the first
	// solve they would configure.
	LP lp.Revised
}

// lpConfig resolves the engine's LP solver configuration: the LP knobs with
// the engine's Workers bound as the pool default.
func (o *Options) lpConfig() lp.Revised {
	cfg := o.LP
	if cfg.Workers == 0 {
		cfg.Workers = o.Workers
	}
	return cfg
}

// Result carries the merged arrangement plus the serving diagnostics.
type Result struct {
	Arrangement *model.Arrangement
	Utility     float64

	Shards int
	Batch  int
	// Epochs is the number of arrival batches processed.
	Epochs int
	// LeaseRenewals is the number of renewal rounds (Epochs−1 when more
	// than one shard runs, 0 otherwise).
	LeaseRenewals int
	// MovedSeats is the total number of seats whose owning shard changed
	// across all renewals — the lease-protocol traffic a distributed
	// deployment would pay in coordination messages.
	MovedSeats int
	// Arrivals[s] is the number of arrivals served by shard s.
	Arrivals []int
	// Latencies[u] is user u's decision latency (only when
	// Options.RecordLatency; zero for users absent from the order).
	Latencies []time.Duration
	// LeaseSolves counts warm/cold LP solves of the lease-split LP
	// (LeaseLP only).
	LeaseSolves lp.SolverStats
	// Cache aggregates the per-shard admissible-set cache counters (zero
	// unless Options.CacheSize enabled caching).
	Cache admissible.CacheStats
	// Bound is the live LP-bound tracker's outcome (nil unless
	// Options.LiveBound).
	Bound *BoundStats
}

// ShardOf returns the shard in [0, shards) owning user u. The partition is
// a pure function of (seed, u, shards).
func ShardOf(seed int64, u, shards int) int {
	if shards <= 1 {
		return 0
	}
	return int(xrand.Hash64(seed, u, shardSalt) % uint64(shards))
}

// shardPlanner pairs a planner's Arrive/Release with its load vector so the
// coordinator can read per-shard consumption at renewal time regardless of
// the concrete policy.
type shardPlanner struct {
	arrive  func(u int) []int
	release func(events []int)
	loads   []int
}

// CheckOrder validates an arrival order against the instance: every user in
// range, no duplicates — the contract under which Serve and the replay
// tooling dispatch batches unchecked.
func CheckOrder(in *model.Instance, order []int) error {
	nu := in.NumUsers()
	seen := make([]bool, nu)
	for _, u := range order {
		if u < 0 || u >= nu {
			return fmt.Errorf("shard: arrival of unknown user %d", u)
		}
		if seen[u] {
			return fmt.Errorf("shard: user %d arrived twice", u)
		}
		seen[u] = true
	}
	return nil
}

// Serve replays the arrival order across Options.Shards shards and returns
// the merged arrangement. Users absent from order receive no events; it
// errors on out-of-range or duplicate arrivals, mirroring online.Run.
// Invalid configurations yield a *ConfigError.
//
// Serve is a thin driver over Engine: one DispatchBatch per B arrivals, one
// RenewLeases between batches fed with the next batch's composition. The
// HTTP serving layer's replay mode drives the identical engine the same
// way, so its decisions are bit-identical to Serve's by construction.
func Serve(in *model.Instance, order []int, opt Options) (*Result, error) {
	e, err := NewEngine(in, opt)
	if err != nil {
		return nil, err
	}
	defer e.Close()
	if err := CheckOrder(in, order); err != nil {
		return nil, err
	}
	b := e.Batch()
	for start := 0; start < len(order); start += b {
		end := min(start+b, len(order))
		e.DispatchBatch(order[start:end])
		if end < len(order) && e.Shards() > 1 {
			if _, err := e.RenewLeases(order[end:min(end+b, len(order))]); err != nil {
				return nil, err
			}
		}
	}
	return e.Result()
}

// leaseRenewer drives the between-batch renewal rounds for one Serve call.
// It carries the policy-specific state: the pending-demand tallies for
// LeaseDemand, plus the persistent warm-started split LP for LeaseLP.
type leaseRenewer struct {
	in       *model.Instance
	budgets  [][]int
	planners []shardPlanner
	opt      Options
	s, nv    int

	newRem []int // per-shard scratch, reused every event

	// demand tallies for the next batch (LeaseDemand, LeaseLP)
	demand    []int     // [s*nv+v]: pending bidders of shard s for event v
	value     []float64 // [s*nv+v]: summed pair weight of those bidders
	attCap    []int     // [s]: summed user capacity of the shard's next batch
	fracOrder []int     // largest-remainder scratch
	frac      []float64

	// LeaseLP state
	solver  *lp.Solver
	lpReady bool
	delta   lp.ProblemDelta
	pool    []int // per-event free seats, reused every renewal
}

func newLeaseRenewer(in *model.Instance, budgets [][]int, planners []shardPlanner, opt Options) *leaseRenewer {
	s := len(budgets)
	r := &leaseRenewer{
		in: in, budgets: budgets, planners: planners, opt: opt,
		s: s, nv: in.NumEvents(),
		newRem: make([]int, s),
	}
	if opt.Lease != LeaseEven && s > 1 {
		r.demand = make([]int, s*r.nv)
		r.value = make([]float64, s*r.nv)
		r.attCap = make([]int, s)
		r.fracOrder = make([]int, s)
		r.frac = make([]float64, s)
	}
	return r
}

// close releases the split LP's solver state to the arena pool.
func (r *leaseRenewer) close() {
	if r != nil && r.solver != nil {
		r.solver.Release()
	}
}

// solveStats reports the split LP's warm/cold counters (zero unless LeaseLP
// ran).
func (r *leaseRenewer) solveStats() lp.SolverStats {
	if r.solver == nil {
		return lp.SolverStats{}
	}
	return r.solver.Stats()
}

// renew performs one renewal round before the next batch (whose arrivals are
// given) and returns the number of seats that changed owner.
func (r *leaseRenewer) renew(epoch int, next []int) int {
	switch r.opt.Lease {
	case LeaseEven:
		return renewLeases(r.in, r.budgets, r.planners, epoch, r.newRem)
	case LeaseLP:
		r.tallyDemand(next)
		if moved, ok := r.renewLP(epoch); ok {
			return moved
		}
		// LP unavailable (numerical failure): demand split is the safety net.
		return r.renewDemand(epoch)
	default: // LeaseDemand
		r.tallyDemand(next)
		return r.renewDemand(epoch)
	}
}

// tallyDemand recomputes the per-(shard, event) pending-bidder counts,
// pending pair values and per-shard attendance caps from the next batch.
func (r *leaseRenewer) tallyDemand(next []int) {
	for i := range r.demand {
		r.demand[i] = 0
		r.value[i] = 0
	}
	for i := range r.attCap {
		r.attCap[i] = 0
	}
	wc := r.in.Weights()
	for _, u := range next {
		si := ShardOf(r.opt.Seed, u, r.s)
		usr := &r.in.Users[u]
		r.attCap[si] += min(usr.Capacity, len(usr.Bids))
		row := wc.Row(u)
		for i, v := range usr.Bids {
			r.demand[si*r.nv+v]++
			r.value[si*r.nv+v] += row[i]
		}
	}
}

// renewDemand splits each event's free pool in proportion to the shards'
// pending-bidder counts (largest-remainder rounding, deterministic
// tie-break on shard index); events with no pending demand fall back to the
// even split with the rotating remainder. Σ_s budget[s][v] = cv is restored
// exactly, and consumed seats never move.
func (r *leaseRenewer) renewDemand(epoch int) int {
	moved := 0
	for v := 0; v < r.nv; v++ {
		used := 0
		for si := 0; si < r.s; si++ {
			used += r.planners[si].loads[v]
		}
		pool := r.in.Events[v].Capacity - used
		total := 0
		for si := 0; si < r.s; si++ {
			total += r.demand[si*r.nv+v]
		}
		if total == 0 {
			evenSplit(r.newRem, pool, v+epoch)
		} else {
			given := 0
			for si := 0; si < r.s; si++ {
				share := pool * r.demand[si*r.nv+v] / total
				r.newRem[si] = share
				r.frac[si] = float64(pool*r.demand[si*r.nv+v])/float64(total) - float64(share)
				r.fracOrder[si] = si
				given += share
			}
			// hand the leftover seats to the largest fractional remainders
			sortByFracDesc(r.fracOrder, r.frac)
			for k := 0; k < pool-given; k++ {
				r.newRem[r.fracOrder[k%r.s]]++
			}
		}
		moved += r.applyEvent(v)
	}
	return moved
}

// applyEvent installs r.newRem as event v's new free-seat split and counts
// moved seats.
func (r *leaseRenewer) applyEvent(v int) int {
	moved := 0
	for si := 0; si < r.s; si++ {
		load := r.planners[si].loads[v]
		if oldRem := r.budgets[si][v] - load; r.newRem[si] > oldRem {
			moved += r.newRem[si] - oldRem
		}
		r.budgets[si][v] = load + r.newRem[si]
	}
	return moved
}

// evenSplit fills newRem with pool seats split evenly across the shards,
// the remainder rotated by offset so extra seats circulate — the one copy
// of the base/remainder rule shared by LeaseEven and the zero-demand
// fallback of LeaseDemand.
func evenSplit(newRem []int, pool, offset int) {
	s := len(newRem)
	base, rem := pool/s, pool%s
	for si := range newRem {
		newRem[si] = base
	}
	for k := 0; k < rem; k++ {
		newRem[(offset+k)%s]++
	}
}

// sortByFracDesc sorts the shard indices by fractional part descending,
// ties by shard index ascending — an insertion sort over at most a few
// dozen shards.
func sortByFracDesc(idx []int, frac []float64) {
	for i := 1; i < len(idx); i++ {
		x := idx[i]
		j := i - 1
		for j >= 0 && (frac[idx[j]] < frac[x] || (frac[idx[j]] == frac[x] && idx[j] > x)) {
			idx[j+1] = idx[j]
			j--
		}
		idx[j+1] = x
	}
}

// --- LP lease policy ------------------------------------------------------
//
// The split LP has one variable y_{s,v} per (shard, event) — the seats
// leased to shard s for event v in the next epoch — and maximizes the
// predicted value of the next batch:
//
//	max  Σ c_{s,v}·y_{s,v}
//	s.t. Σ_s y_{s,v}         ≤ pool_v        (event rows: the free pool)
//	     Σ_v y_{s,v}         ≤ attCap_s      (shard rows: attendance caps)
//	     y_{s,v}             ≤ demand_{s,v}  (pair rows: pending bidders)
//
// with c_{s,v} the mean pending pair weight. The shape (rows, columns,
// nonzeros) is identical at every renewal — only bounds and objective move —
// so after the first cold solve every round is a ProblemDelta re-solved warm
// from the previous basis: exactly the regime lp.Solver.Resolve exists for.
// Leftover pool seats (demand below supply) are parked by the even rotation
// so Σ_s budget = cv stays exact.

// lpRow layout: event rows [0,nv), shard rows [nv,nv+s), pair rows
// [nv+s, nv+s+s*nv) in (shard-major, event-minor) order — matching the
// column order y_{0,0..nv-1}, y_{1,·}, ...

// buildSplitLP assembles the first epoch's problem.
func (r *leaseRenewer) buildSplitLP(pool []int) *lp.Problem {
	s, nv := r.s, r.nv
	m := nv + s + s*nv
	p := &lp.Problem{NumRows: m, B: make([]float64, m)}
	for v := 0; v < nv; v++ {
		p.B[v] = float64(pool[v])
	}
	for si := 0; si < s; si++ {
		p.B[nv+si] = float64(r.attCap[si])
	}
	for i, d := range r.demand {
		p.B[nv+s+i] = float64(d)
	}
	p.Reserve(s*nv, 3*s*nv)
	for si := 0; si < s; si++ {
		for v := 0; v < nv; v++ {
			i := si*nv + v
			c := 0.0
			if r.demand[i] > 0 {
				c = r.value[i] / float64(r.demand[i])
			}
			p.AddColumn(c, []int{v, nv + si, nv + s + i}, []float64{1, 1, 1})
		}
	}
	return p
}

// renewLP computes the demand-optimal split by (re-)solving the split LP
// warm and rounding its optimum per event with the largest-remainder rule.
// Returns ok=false when the solve fails; the caller falls back to the
// proportional split.
func (r *leaseRenewer) renewLP(epoch int) (int, bool) {
	s, nv := r.s, r.nv
	if r.pool == nil {
		r.pool = make([]int, nv)
	}
	pool := r.pool
	for v := 0; v < nv; v++ {
		used := 0
		for si := 0; si < s; si++ {
			used += r.planners[si].loads[v]
		}
		pool[v] = r.in.Events[v].Capacity - used
	}

	var sol *lp.Solution
	var err error
	if !r.lpReady {
		if r.solver == nil {
			r.solver = lp.NewSolver(r.opt.lpConfig())
		}
		sol, err = r.solver.Solve(r.buildSplitLP(pool))
		if err == nil {
			r.lpReady = true
		}
	} else {
		d := &r.delta
		d.SetB = d.SetB[:0]
		d.SetC = d.SetC[:0]
		for v := 0; v < nv; v++ {
			d.SetB = append(d.SetB, lp.BoundChange{Row: v, B: float64(pool[v])})
		}
		for si := 0; si < s; si++ {
			d.SetB = append(d.SetB, lp.BoundChange{Row: nv + si, B: float64(r.attCap[si])})
		}
		for i, dem := range r.demand {
			d.SetB = append(d.SetB, lp.BoundChange{Row: nv + s + i, B: float64(dem)})
			c := 0.0
			if dem > 0 {
				c = r.value[i] / float64(dem)
			}
			d.SetC = append(d.SetC, lp.ObjChange{Col: i, C: c})
		}
		sol, err = r.solver.Resolve(*d)
	}
	if err != nil {
		r.lpReady = false
		return 0, false
	}

	moved := 0
	for v := 0; v < nv; v++ {
		given := 0
		for si := 0; si < s; si++ {
			y := sol.X[si*nv+v]
			share := int(y + 1e-6) // y is ≥ 0 up to solver round-off
			if share > pool[v]-given {
				share = pool[v] - given
			}
			r.newRem[si] = share
			r.frac[si] = y - float64(share)
			r.fracOrder[si] = si
			given += share
		}
		if given < pool[v] {
			// leftover (demand below supply, or fractional optimum): top up
			// by fractional part, then rotate the rest evenly
			sortByFracDesc(r.fracOrder, r.frac)
			left := pool[v] - given
			for k := 0; k < min(left, s); k++ {
				r.newRem[r.fracOrder[k]]++
			}
			for k := s; k < left; k++ {
				r.newRem[(v+epoch+k)%s]++
			}
		}
		moved += r.applyEvent(v)
	}
	return moved, true
}

// renewLeases implements the renewal round: per event, reclaim every
// shard's unused seats and re-split the free pool evenly, rotating the
// remainder by (event, epoch) so the extra seats circulate. Consumed seats
// stay with their shard, so Σ_s budget[s][v] = cv is restored exactly.
// Returns the number of seats that changed owner.
func renewLeases(in *model.Instance, budgets [][]int, planners []shardPlanner, epoch int, newRem []int) int {
	s := len(budgets)
	moved := 0
	for v := 0; v < in.NumEvents(); v++ {
		used := 0
		for si := 0; si < s; si++ {
			used += planners[si].loads[v]
		}
		pool := in.Events[v].Capacity - used
		evenSplit(newRem, pool, v+epoch)
		for si := 0; si < s; si++ {
			load := planners[si].loads[v]
			if oldRem := budgets[si][v] - load; newRem[si] > oldRem {
				moved += newRem[si] - oldRem
			}
			budgets[si][v] = load + newRem[si]
		}
	}
	return moved
}
