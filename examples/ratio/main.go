// Ratio: measure LP-packing's empirical approximation ratio against the
// exact optimum on small instances — the experimental counterpart of
// Theorem 2 (expected utility ≥ OPT/4 at sampling rate α = 1/2).
//
// For each instance the exact optimum comes from branch-and-bound
// (igepa.Optimal); LP-packing is sampled repeatedly to estimate its expected
// utility; and the LP objective certifies Lemma 1 (LP ≥ OPT) as a bonus.
package main

import (
	"fmt"
	"log"

	"github.com/ebsn/igepa"
)

func main() {
	const (
		instances = 12
		samples   = 30
		alpha     = 0.5 // Theorem 2's setting; the paper's evaluation uses 1
	)

	fmt.Printf("empirical approximation ratio at alpha=%.1f (%d instances × %d samples)\n\n",
		alpha, instances, samples)
	fmt.Println("instance   |V| |U|   OPT     E[ALG]  ratio   LP/OPT")
	fmt.Println("---------------------------------------------------")

	worst := 1.0
	sum := 0.0
	count := 0
	for i := 0; i < instances; i++ {
		in, err := igepa.Synthetic(igepa.SyntheticConfig{
			Seed:      int64(1000 + i),
			NumEvents: 6 + i%4, NumUsers: 6 + i%5,
			MaxEventCap: 2, MaxUserCap: 3, MinBids: 2, MaxBids: 4,
		})
		if err != nil {
			log.Fatal(err)
		}
		_, opt, err := igepa.Optimal(in)
		if err != nil {
			log.Fatal(err)
		}
		if opt == 0 {
			continue
		}

		total := 0.0
		var lpBound float64
		for s := 0; s < samples; s++ {
			res, err := igepa.LPPacking(in, igepa.LPPackingOptions{
				Alpha: alpha, Seed: int64(i*samples + s),
			})
			if err != nil {
				log.Fatal(err)
			}
			total += res.Utility
			lpBound = res.LPObjective
		}
		mean := total / samples
		ratio := mean / opt
		fmt.Printf("%8d   %3d %3d   %-7.3f %-7.3f %-7.3f %.3f\n",
			i, in.NumEvents(), in.NumUsers(), opt, mean, ratio, lpBound/opt)
		sum += ratio
		count++
		if ratio < worst {
			worst = ratio
		}
	}

	fmt.Printf("\nmean ratio %.3f, worst %.3f — Theorem 2 guarantees ≥ 0.25 in expectation\n",
		sum/float64(count), worst)
	fmt.Println("(LP/OPT ≥ 1 on every row certifies Lemma 1: the LP bounds the optimum)")
}
