// Command igepa solves a single IGEPA instance with a chosen algorithm and
// reports the arrangement's utility and diagnostics.
//
// Usage:
//
//	igepa -in instance.json [-alg lp-packing] [-seed 1] [-out arrangement.json]
//	igepa -synthetic [-seed 1] [-alg greedy]         # generate-and-solve
//	igepa -meetup [-seed 1]
//
// The instance format is the JSON produced by igepa-datagen (or
// igepa.SaveInstance).
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"github.com/ebsn/igepa"
)

func main() {
	var (
		inPath    = flag.String("in", "", "instance JSON file (from igepa-datagen)")
		synthetic = flag.Bool("synthetic", false, "generate a Table I synthetic instance instead of reading -in")
		meetup    = flag.Bool("meetup", false, "generate the Meetup-like instance instead of reading -in")
		alg       = flag.String("alg", "lp-packing", "algorithm: "+strings.Join(igepa.AlgorithmNames(), ", "))
		seed      = flag.Int64("seed", 1, "random seed (generation and algorithm)")
		outPath   = flag.String("out", "", "write the arrangement as JSON to this file")
		stats     = flag.Bool("stats", false, "print instance statistics before solving")
	)
	flag.Parse()
	if err := run(*inPath, *synthetic, *meetup, *alg, *seed, *outPath, *stats); err != nil {
		fmt.Fprintln(os.Stderr, "igepa:", err)
		os.Exit(1)
	}
}

func run(inPath string, synthetic, meetup bool, alg string, seed int64, outPath string, stats bool) error {
	in, err := loadOrGenerate(inPath, synthetic, meetup, seed)
	if err != nil {
		return err
	}
	if stats {
		printStats(in)
	}

	start := time.Now()
	var arr *igepa.Arrangement
	if alg == "lp-packing" {
		res, err := igepa.LPPacking(in, igepa.LPPackingOptions{Seed: seed})
		if err != nil {
			return err
		}
		arr = res.Arrangement
		fmt.Printf("lp objective (upper bound on OPT): %.4f\n", res.LPObjective)
		fmt.Printf("lp columns: %d, pivots: %d, truncated users: %d\n",
			res.LPColumns, res.LPIterations, res.TruncatedUsers)
		fmt.Printf("sampled pairs: %d, repair dropped: %d\n", res.SampledPairs, res.RepairDropped)
	} else {
		arr, err = igepa.Solve(in, alg, seed)
		if err != nil {
			return err
		}
	}
	elapsed := time.Since(start)

	if err := igepa.Validate(in, arr); err != nil {
		return fmt.Errorf("algorithm produced an infeasible arrangement: %w", err)
	}
	fmt.Printf("algorithm: %s\n", alg)
	fmt.Printf("utility:   %.4f\n", igepa.Utility(in, arr))
	fmt.Printf("pairs:     %d\n", arr.Size())
	fmt.Printf("elapsed:   %v\n", elapsed.Round(time.Millisecond))

	if outPath != "" {
		f, err := os.Create(outPath)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := igepa.SaveArrangement(f, arr); err != nil {
			return err
		}
		fmt.Printf("arrangement written to %s\n", outPath)
	}
	return nil
}

func loadOrGenerate(inPath string, synthetic, meetup bool, seed int64) (*igepa.Instance, error) {
	switch {
	case synthetic:
		return igepa.Synthetic(igepa.SyntheticConfig{Seed: seed})
	case meetup:
		return igepa.Meetup(igepa.MeetupConfig{Seed: seed})
	case inPath != "":
		f, err := os.Open(inPath)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		return igepa.LoadInstance(f)
	default:
		return nil, fmt.Errorf("one of -in, -synthetic or -meetup is required")
	}
}

func printStats(in *igepa.Instance) {
	st := igepa.ComputeStats(in)
	fmt.Printf("instance: |V|=%d |U|=%d bids=%d (%.1f/user)\n",
		st.NumEvents, st.NumUsers, st.TotalBids, st.MeanBidsPerUser)
	fmt.Printf("capacity: events mean %.1f, users mean %.1f\n",
		st.MeanEventCapacity, st.MeanUserCapacity)
	fmt.Printf("conflicts: %d pairs (rate %.3f); social: mean degree %.1f, mean DPI %.3f\n",
		st.ConflictPairs, st.ConflictRate, st.MeanDegree, st.MeanDPI)
}
