package obs

import (
	"bytes"
	"fmt"
	"strings"
	"testing"
)

func TestRegistryLintClean(t *testing.T) {
	r := NewRegistry()
	r.Counter("igepa_arrivals_total", "Accepted bid submissions.")
	r.Gauge("igepa_queue_depth", "Queued arrivals.", L("shard", "0"))
	r.Histogram("igepa_decision_seconds", "Planner time per arrival.", LatencyBuckets())
	if probs := r.Lint(); len(probs) != 0 {
		t.Fatalf("clean registry flagged: %v", probs)
	}
}

func TestRegistryLintCatches(t *testing.T) {
	cases := []struct {
		build func(r *Registry)
		want  string
	}{
		{func(r *Registry) { r.Counter("igepa_arrivals", "x") }, "_total suffix"},
		{func(r *Registry) { r.Gauge("igepa_depth_total", "x") }, "counter-style _total"},
		{func(r *Registry) { r.Counter("igepa_x_total", "") }, "missing HELP"},
		{func(r *Registry) { r.Counter("igepa_x_total", "x", L("user", "17")) }, "forbidden per-entity label"},
		{func(r *Registry) { r.Counter("igepa_x_total", "x", L("event_id", "3")) }, "forbidden per-entity label"},
		{func(r *Registry) { r.Counter("igepa_x_total", "x", L("__name__", "y")) }, "reserved label"},
		{func(r *Registry) {
			for i := 0; i <= maxSeriesPerFamily; i++ {
				r.Counter("igepa_wide_total", "x", L("k", fmt.Sprint(i)))
			}
		}, "unbounded label"},
	}
	for _, tc := range cases {
		r := NewRegistry()
		tc.build(r)
		probs := r.Lint()
		found := false
		for _, p := range probs {
			if strings.Contains(p, tc.want) {
				found = true
			}
		}
		if !found {
			t.Errorf("lint missed %q; got %v", tc.want, probs)
		}
	}
}

func TestLintExpositionValid(t *testing.T) {
	r := NewRegistry()
	r.Counter("ok_total", "ok")
	h := r.Histogram("ok_seconds", "ok", []float64{0.001, 1})
	h.Observe(0.5)
	h.Observe(2)
	var b bytes.Buffer
	r.WritePrometheus(&b)
	if probs := LintExposition(&b); len(probs) != 0 {
		t.Fatalf("valid exposition flagged: %v", probs)
	}
}

func TestLintExpositionCatches(t *testing.T) {
	cases := []struct{ in, want string }{
		{"x_total 1\n", "without a TYPE"},
		{"# HELP x_total x\n# TYPE x_total counter\nx_total 1\nx_total 2\n", "duplicate series"},
		{"# HELP x_total x\n# TYPE x_total counter\nx_total nope\n", "unparseable value"},
		{"# HELP x_seconds x\n# TYPE x_seconds histogram\nx_seconds_bucket{le=\"+Inf\"} 2\nx_seconds_sum 1\nx_seconds_count 3\n", "!= count"},
		{"# HELP x_seconds x\n# TYPE x_seconds histogram\nx_seconds_bucket 1\nx_seconds_sum 1\nx_seconds_count 1\n", "without le"},
	}
	for _, tc := range cases {
		probs := LintExposition(strings.NewReader(tc.in))
		found := false
		for _, p := range probs {
			if strings.Contains(p, tc.want) {
				found = true
			}
		}
		if !found {
			t.Errorf("exposition lint missed %q in %q; got %v", tc.want, tc.in, probs)
		}
	}
}
