package server

import (
	"net/http"
	"os"
	"path/filepath"
	"reflect"
	"testing"
	"time"

	"github.com/ebsn/igepa/internal/shard"
	"github.com/ebsn/igepa/internal/wal"
)

// driveTraffic pushes a deterministic mix through the HTTP surface: plain
// bids, bids with replacement sets, cancellations, and re-submissions after
// a cancel. Users with u%11 == 10 are never submitted, so later phases of a
// test have fresh users to serve. Requests are sequential on purpose: the
// WAL must capture one well-defined history for the recovery tests to
// replay against.
func driveTraffic(t *testing.T, c *client, nu, nv int, replay bool) {
	t.Helper()
	wantCode := http.StatusOK
	var wait *bool
	if replay {
		// Replay mode flushes strictly on batch size, so a waiting submitter
		// would block until drain: submit fire-and-forget, then drain.
		noWait := false
		wait, wantCode = &noWait, http.StatusAccepted
	}
	for u := 0; u < nu; u++ {
		if u%11 == 10 {
			continue
		}
		req := bidRequest{User: u, Wait: wait}
		if u%7 == 3 {
			req.Bids = []int{u % nv, (u * 3) % nv, (u*5 + 1) % nv}
		}
		if code := c.status("POST", "/v1/bid", req); code != wantCode {
			t.Fatalf("bid user %d: %d, want %d", u, code, wantCode)
		}
	}
	if replay {
		if code := c.status("POST", "/admin/drain", nil); code != http.StatusOK {
			t.Fatalf("drain: %d", code)
		}
	}
	for u := 0; u < nu; u++ {
		if u%11 == 10 || u%5 != 4 {
			continue
		}
		if code := c.status("POST", "/v1/cancel", cancelRequest{User: u}); code != http.StatusOK {
			t.Fatalf("cancel user %d: %d", u, code)
		}
		if u%10 == 4 {
			if code := c.status("POST", "/v1/bid", bidRequest{User: u, Wait: wait}); code != wantCode {
				t.Fatalf("re-bid user %d: %d, want %d", u, code, wantCode)
			}
		}
	}
}

// engineState snapshots the engine under every shard lock — the bit-identity
// comparison key for the recovery tests.
func engineState(srv *Server) *shard.EngineState {
	srv.lockAll()
	defer srv.unlockAll()
	return srv.eng.CheckpointState()
}

func userStates(srv *Server) []uint8 {
	srv.stateMu.Lock()
	defer srv.stateMu.Unlock()
	return append([]uint8(nil), srv.state...)
}

// servingSnapshot captures everything the bit-identity comparison covers;
// take it before Close (the engine releases its workers on Close).
type servingSnapshot struct {
	eng    *shard.EngineState
	states []uint8
}

func snapshotServing(srv *Server) servingSnapshot {
	return servingSnapshot{eng: engineState(srv), states: userStates(srv)}
}

func requireSameServing(t *testing.T, want servingSnapshot, got *Server) {
	t.Helper()
	if gs := engineState(got); !reflect.DeepEqual(want.eng, gs) {
		t.Fatalf("engine state diverged after recovery:\nwant %+v\ngot  %+v", want.eng, gs)
	}
	if gs := userStates(got); !reflect.DeepEqual(want.states, gs) {
		t.Fatalf("user lifecycle diverged after recovery:\nwant %v\ngot  %v", want.states, gs)
	}
}

// TestWarmBootBitIdentical is the tentpole acceptance pin: a server booted
// from the WAL of a cleanly shut down run reaches exactly that run's state —
// decisions, leases, counters, and utility accumulators to the bit — across
// shard counts, worker counts, both dispatch modes, and every fsync policy.
func TestWarmBootBitIdentical(t *testing.T) {
	cases := []struct {
		name   string
		s, w   int
		replay bool
		sync   wal.SyncPolicy
	}{
		{name: "live-s1", s: 1, sync: wal.SyncOff},
		{name: "live-s4", s: 4, sync: wal.SyncInterval},
		{name: "live-s8", s: 8, sync: wal.SyncOff},
		{name: "live-s4-always", s: 4, sync: wal.SyncAlways},
		{name: "replay-s1", s: 1, replay: true, sync: wal.SyncOff},
		{name: "replay-s4-workers2", s: 4, w: 2, replay: true, sync: wal.SyncOff},
		{name: "replay-s8-workers4", s: 8, w: 4, replay: true, sync: wal.SyncOff},
	}
	base := testInstance(t, 11, 90, 12)
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			cfg := Config{
				Shard:   shard.Options{Shards: tc.s, Batch: 16, Seed: 7, Workers: tc.w, CacheSize: 64},
				Replay:  tc.replay,
				WALPath: filepath.Join(t.TempDir(), "wal.log"),
				WALSync: tc.sync, WALSyncInterval: time.Millisecond,
			}
			srvA, _, cA := startServer(t, base.Clone(), cfg)
			driveTraffic(t, cA, 90, 12, tc.replay)
			if !srvA.Drain(10 * time.Second) {
				t.Fatal("drain timed out")
			}
			appends := srvA.walWriter().Stats().Appends
			if appends == 0 {
				t.Fatal("no WAL records written")
			}
			want := snapshotServing(srvA)
			srvA.Close() // clean shutdown: flush + fsync the log

			// B boots on a fresh identical instance with nothing but the log.
			srvB, _, cB := startServer(t, base.Clone(), cfg)
			requireSameServing(t, want, srvB)
			if got := int64(srvB.recovered.Records); got != appends {
				t.Fatalf("recovered %d records, leader appended %d", got, appends)
			}

			// The recovered server keeps serving: the held-out users decide
			// normally on top of the replayed state.
			wait := !tc.replay
			req := bidRequest{User: 10}
			if !wait {
				f := false
				req.Wait = &f
			}
			if code := cB.status("POST", "/v1/bid", req); code != http.StatusOK && code != http.StatusAccepted {
				t.Fatalf("post-recovery bid: %d", code)
			}
			if !srvB.Drain(10 * time.Second) {
				t.Fatal("post-recovery drain timed out")
			}
			if st := userStates(srvB); st[10] != stateDecided {
				t.Fatalf("post-recovery bid never decided (state %d)", st[10])
			}
		})
	}
}

// TestCheckpointBoundsReplay pins the checkpoint contract: an atomic
// snapshot mid-run makes the next boot replay only the WAL suffix past the
// checkpoint offset, and the recovered state is still bit-identical.
func TestCheckpointBoundsReplay(t *testing.T) {
	dir := t.TempDir()
	base := testInstance(t, 13, 80, 10)
	cfg := Config{
		Shard:          shard.Options{Shards: 4, Batch: 16, Seed: 3, CacheSize: 64},
		WALPath:        filepath.Join(dir, "wal.log"),
		CheckpointPath: filepath.Join(dir, "checkpoint.json"),
		WALSync:        wal.SyncOff,
	}
	srvA, _, cA := startServer(t, base.Clone(), cfg)
	for u := 0; u < 40; u++ {
		if code := cA.status("POST", "/v1/bid", bidRequest{User: u}); code != http.StatusOK {
			t.Fatalf("bid user %d: %d", u, code)
		}
	}
	if code := cA.status("POST", "/admin/checkpoint", nil); code != http.StatusOK {
		t.Fatalf("checkpoint: %d", code)
	}
	if _, err := os.Stat(cfg.CheckpointPath); err != nil {
		t.Fatalf("checkpoint file missing: %v", err)
	}
	for u := 40; u < 80; u++ {
		if code := cA.status("POST", "/v1/bid", bidRequest{User: u}); code != http.StatusOK {
			t.Fatalf("bid user %d: %d", u, code)
		}
	}
	if !srvA.Drain(10 * time.Second) {
		t.Fatal("drain timed out")
	}
	appends := srvA.walWriter().Stats().Appends
	want := snapshotServing(srvA)
	srvA.Close()

	srvB, _, _ := startServer(t, base.Clone(), cfg)
	requireSameServing(t, want, srvB)
	if got := int64(srvB.recovered.Records); got >= appends || got == 0 {
		t.Fatalf("checkpoint did not bound replay: recovered %d of %d records", got, appends)
	}
}

// TestWarmBootTruncatesTornTail pins the torn-write contract end to end: a
// log cut mid-record boots to exactly the state of the surviving whole
// records, reports the dropped bytes, and never replays the fragment.
func TestWarmBootTruncatesTornTail(t *testing.T) {
	base := testInstance(t, 17, 40, 8)
	cfg := Config{
		Shard:   shard.Options{Shards: 2, Batch: 16, Seed: 9, CacheSize: 64},
		WALPath: filepath.Join(t.TempDir(), "wal.log"),
		WALSync: wal.SyncOff,
	}
	srvA, _, cA := startServer(t, base.Clone(), cfg)
	for u := 0; u < 40; u++ {
		if code := cA.status("POST", "/v1/bid", bidRequest{User: u}); code != http.StatusOK {
			t.Fatalf("bid user %d: %d", u, code)
		}
	}
	if !srvA.Drain(10 * time.Second) {
		t.Fatal("drain timed out")
	}
	appends := srvA.walWriter().Stats().Appends
	srvA.Close()

	// Tear the final record: a crash mid-write leaves a prefix of it.
	fi, err := os.Stat(cfg.WALPath)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Truncate(cfg.WALPath, fi.Size()-3); err != nil {
		t.Fatal(err)
	}

	srvB, _, cB := startServer(t, base.Clone(), cfg)
	if got := int64(srvB.recovered.Records); got != appends-1 {
		t.Fatalf("recovered %d records from a log of %d with a torn tail", got, appends)
	}
	if srvB.recovered.Dropped == 0 || srvB.recovered.TailErr == nil {
		t.Fatalf("torn tail not reported: %+v", srvB.recovered)
	}
	var st Stats
	if code := cB.do("GET", "/statsz", nil, &st).StatusCode; code != http.StatusOK {
		t.Fatalf("statsz: %d", code)
	}
	if st.WAL == nil || st.WAL.Truncated == 0 || int64(st.WAL.Recovered) != appends-1 {
		t.Fatalf("statsz WAL report: %+v", st.WAL)
	}
	// The server is healthy (truncation is recovery, not failure) and still
	// accepts writes.
	if code := cB.status("GET", "/healthz", nil); code != http.StatusOK {
		t.Fatalf("healthz after torn-tail boot: %d", code)
	}
}

// TestWALFailureStopsWrites pins the fail-stop contract: once an append or
// fsync fails, the server refuses every further write (it cannot make them
// durable) and reports itself degraded — instead of acking into the void.
func TestWALFailureStopsWrites(t *testing.T) {
	base := testInstance(t, 19, 30, 8)
	srv, _, c := startServer(t, base, Config{
		Shard:   shard.Options{Shards: 2, Batch: 8, Seed: 5},
		WALPath: filepath.Join(t.TempDir(), "wal.log"),
		WALSync: wal.SyncOff,
	})
	if code := c.status("POST", "/v1/bid", bidRequest{User: 0}); code != http.StatusOK {
		t.Fatalf("bid before failure: %d", code)
	}
	srv.m.walErrors.Add(1) // what noteWALError does on the first I/O error
	if code := c.status("POST", "/v1/bid", bidRequest{User: 1}); code != http.StatusServiceUnavailable {
		t.Fatalf("bid after WAL failure: %d, want 503", code)
	}
	if code := c.status("POST", "/v1/cancel", cancelRequest{User: 0}); code != http.StatusServiceUnavailable {
		t.Fatalf("cancel after WAL failure: %d, want 503", code)
	}
	if code := c.status("GET", "/healthz", nil); code != http.StatusInternalServerError {
		t.Fatalf("healthz after WAL failure: %d, want 500", code)
	}
	if code := c.status("GET", "/readyz", nil); code != http.StatusServiceUnavailable {
		t.Fatalf("readyz after WAL failure: %d, want 503", code)
	}
}
