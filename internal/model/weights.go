package model

import "sort"

// WeightCache is a CSR-style cache of the pair weights w(u,v) over each
// user's bid list: row u holds one weight per entry of Users[u].Bids, in bid
// order. Every stage of the arrangement pipeline — admissible-set
// enumeration, LP assembly, repair, greedy fill, the baselines and the
// utility evaluation — scores the same (user, bid) pairs, so computing
// β·SI(lv,lu) + (1−β)·D(G,u) once per pair and sharing the table removes the
// per-call interest-function churn from every hot path.
//
// A cache is immutable after construction and therefore safe for concurrent
// readers (the parallel enumeration and sampling stages rely on this).
type WeightCache struct {
	in  *Instance
	off []int32   // user u's row is w[off[u]:off[u+1]]
	w   []float64 // weights aligned with Users[u].Bids
}

// buildWeightCache computes the full table in one pass.
func buildWeightCache(in *Instance) *WeightCache {
	nu := len(in.Users)
	off := make([]int32, nu+1)
	total := 0
	for u := range in.Users {
		total += len(in.Users[u].Bids)
		off[u+1] = int32(total)
	}
	w := make([]float64, total)
	for u := range in.Users {
		base := 1 - in.Beta
		dpi := base * in.DPI(u)
		row := w[off[u]:off[u+1]]
		for i, v := range in.Users[u].Bids {
			// identical arithmetic to Instance.Weight so cached and direct
			// evaluation agree bit-for-bit
			row[i] = in.Beta*in.Interest(u, v) + dpi
		}
	}
	return &WeightCache{in: in, off: off, w: w}
}

// At returns w(u, Users[u].Bids[i]) — the aligned, search-free accessor for
// callers already iterating a bid list by position.
func (c *WeightCache) At(u, i int) float64 {
	return c.w[int(c.off[u])+i]
}

// Row returns user u's cached weights, aligned with Users[u].Bids. The
// returned slice is shared; callers must not modify it.
func (c *WeightCache) Row(u int) []float64 {
	return c.w[c.off[u]:c.off[u+1]]
}

// Of returns w(u,v) by binary search over u's sorted bid list. Pairs outside
// the bid list (which no feasible arrangement contains) fall back to direct
// evaluation.
func (c *WeightCache) Of(u, v int) float64 {
	bids := c.in.Users[u].Bids
	i := sort.SearchInts(bids, v)
	if i >= len(bids) || bids[i] != v {
		return c.in.Weight(u, v)
	}
	return c.w[int(c.off[u])+i]
}

// Weights returns the instance's weight cache, building it on first use.
// The cache is invalidated by RebuildBidders and Invalidate; callers that
// mutate Bids, Degree, Beta or the interest function must call one of them
// before the next read. The first call must not race with other accessors;
// once built, concurrent reads are safe.
func (in *Instance) Weights() *WeightCache {
	if in.weights == nil {
		in.weights = buildWeightCache(in)
	}
	return in.weights
}

// Invalidate drops the instance's derived caches (bidder lists and pair
// weights) so they are rebuilt from the current Events/Users/Beta/Interest
// on next use. Call it after mutating any of those.
func (in *Instance) Invalidate() {
	in.bidders = nil
	in.weights = nil
}
