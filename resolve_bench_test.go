package igepa_test

// BenchmarkWarmResolve and the pinned warm-vs-cold objective test: the
// acceptance point of the persistent solver. The fixture is the |U|=500
// Table I benchmark LP; the delta re-bids 5% of the users (every 20th user
// drops their last bid and re-enumerates), toggling between the original
// and mutated instance so every benchmark iteration re-solves a real
// column-churn delta from the previous basis.

import (
	"math"
	"testing"

	"github.com/ebsn/igepa/internal/admissible"
	"github.com/ebsn/igepa/internal/conflict"
	"github.com/ebsn/igepa/internal/core"
	"github.com/ebsn/igepa/internal/lp"
	"github.com/ebsn/igepa/internal/model"
	"github.com/ebsn/igepa/internal/workload"
)

// enumerateSets runs the admissible-set enumeration for every user of the
// instance (single-threaded; fixture setup only).
func enumerateSets(in *model.Instance) [][]admissible.Set {
	conf := conflict.FromFunc(in.NumEvents(), in.Conflicts)
	wc := in.Weights()
	sets := make([][]admissible.Set, in.NumUsers())
	for u := range sets {
		usr := &in.Users[u]
		w := func(v int) float64 { return wc.Of(u, v) }
		sets[u] = admissible.Enumerate(usr.Bids, usr.Capacity, conf, w, admissible.Config{}).Sets
	}
	return sets
}

// warmFixture holds the two bid states of the |U|=500 point and the deltas
// that toggle the LP between them.
type warmFixture struct {
	probA *lp.Problem // original instance's benchmark LP

	dFirstToB lp.ProblemDelta // A (original column order) -> B
	dTailToA  lp.ProblemDelta // B (changed users at the tail) -> A
	dTailToB  lp.ProblemDelta // A (changed users at the tail) -> B
}

// setColumns converts one user's admissible sets to LP delta columns.
func setColumns(u, numUsers int, sets []admissible.Set, d *lp.ProblemDelta) {
	for _, s := range sets {
		rows := make([]int, 0, len(s.Events)+1)
		rows = append(rows, u)
		for _, v := range s.Events {
			rows = append(rows, numUsers+v)
		}
		vals := make([]float64, len(rows))
		for i := range vals {
			vals[i] = 1
		}
		d.AddCols = append(d.AddCols, lp.Column{Rows: rows, Vals: vals})
		d.AddC = append(d.AddC, s.Weight)
	}
}

func buildWarmFixture(tb testing.TB) *warmFixture {
	return buildWarmFixtureAt(tb, 500, 100, 20)
}

// buildWarmFixtureAt builds the toggle fixture for an arbitrary instance
// size: users/events set the synthetic workload's dimensions, and every
// stride-th user is re-bid by the delta (stride 20 → 5% of users, stride
// 10 → 10%).
func buildWarmFixtureAt(tb testing.TB, users, events, stride int) *warmFixture {
	tb.Helper()
	in, err := workload.Synthetic(workload.SyntheticConfig{Seed: 1, NumUsers: users, NumEvents: events})
	if err != nil {
		tb.Fatal(err)
	}
	nu := in.NumUsers()
	setsA := enumerateSets(in)

	// Variant B: every stride-th user drops their first bid.
	var changed []int
	for u := 0; u < nu; u += stride {
		if len(in.Users[u].Bids) > 1 {
			changed = append(changed, u)
		}
	}
	inB := &model.Instance{
		Events: in.Events, Users: append([]model.User(nil), in.Users...),
		Conflicts: in.Conflicts, Interest: in.Interest, Beta: in.Beta,
	}
	for _, u := range changed {
		inB.Users[u].Bids = append([]int(nil), in.Users[u].Bids[1:]...)
	}
	setsB := enumerateSets(inB)

	probA, ownerA := core.BuildBenchmarkLP(in, setsA)
	f := &warmFixture{probA: probA}

	isChanged := make([]bool, nu)
	for _, u := range changed {
		isChanged[u] = true
	}
	kA, kB := 0, 0
	for _, u := range changed {
		kA += len(setsA[u])
		kB += len(setsB[u])
	}
	for j, ow := range ownerA {
		if isChanged[ow[0]] {
			f.dFirstToB.RemoveCols = append(f.dFirstToB.RemoveCols, j)
		}
	}
	for _, u := range changed {
		setColumns(u, nu, setsB[u], &f.dFirstToB)
	}
	// After any toggle the changed users' columns sit at the tail
	// (lp.ProblemDelta appends), so later deltas remove a fixed tail range.
	n := probA.NumCols()
	nB := n - kA + kB
	for j := nB - kB; j < nB; j++ {
		f.dTailToA.RemoveCols = append(f.dTailToA.RemoveCols, j)
	}
	for _, u := range changed {
		setColumns(u, nu, setsA[u], &f.dTailToA)
	}
	for j := n - kA; j < n; j++ {
		f.dTailToB.RemoveCols = append(f.dTailToB.RemoveCols, j)
	}
	for _, u := range changed {
		setColumns(u, nu, setsB[u], &f.dTailToB)
	}
	return f
}

// TestWarmResolveObjectiveMatchesCold pins the acceptance criterion: after
// a 5%-of-users bid delta on the |U|=500 point, the warm re-solve's
// objective agrees with a cold solve of the (same, post-delta) problem to
// within ulps, and both certify via lp.Verify. Warm and cold provably reach
// the same optimal value; since the warm path started reusing the previous
// LU factors across re-solves (instead of refactorizing per delta), the two
// trajectories' round-off differs by design, so the pin is ulp-level rather
// than exact-bits — certified optimality, not a shared arithmetic path, is
// the contract. (Until PR 5 this was TestWarmResolveBitIdenticalObjective,
// asserting exact bits on this fixture.)
func TestWarmResolveObjectiveMatchesCold(t *testing.T) {
	f := buildWarmFixture(t)
	s := lp.NewSolver(lp.Revised{})
	defer s.Release()
	if _, err := s.Solve(f.probA); err != nil {
		t.Fatal(err)
	}
	warm, err := s.Resolve(f.dFirstToB)
	if err != nil {
		t.Fatal(err)
	}
	st := s.Stats()
	if st.WarmSolves != 1 || st.FallbackSingular+st.FallbackInfeasible != 0 {
		t.Fatalf("delta did not take the warm path: %+v", st)
	}
	cold, err := (&lp.Revised{}).Solve(s.Problem())
	if err != nil {
		t.Fatal(err)
	}
	if diff := math.Abs(warm.Objective - cold.Objective); diff > 1e-12*(1+math.Abs(cold.Objective)) {
		t.Errorf("warm objective %.17g != cold %.17g (diff %g)", warm.Objective, cold.Objective, diff)
	}
	if err := lp.Verify(s.Problem(), warm, 1e-6); err != nil {
		t.Errorf("warm certificate: %v", err)
	}
	if err := lp.Verify(s.Problem(), cold, 1e-6); err != nil {
		t.Errorf("cold certificate: %v", err)
	}
	if warm.Iterations*5 > cold.Iterations {
		t.Logf("note: warm used %d pivots vs cold %d (< 5x pivot headroom)", warm.Iterations, cold.Iterations)
	}
}

// BenchmarkWarmResolve compares a cold solve of the |U|=500 benchmark LP
// (sub-benchmark "cold") with a warm Resolve of a 5%-of-bids delta from the
// previous basis ("warm"). The acceptance targets: warm ≥5× faster and ≤10%
// of cold's bytes/op.
func BenchmarkWarmResolve(b *testing.B) {
	f := buildWarmFixture(b)

	b.Run("cold", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := (&lp.Revised{}).Solve(f.probA); err != nil {
				b.Fatal(err)
			}
		}
	})

	b.Run("warm", func(b *testing.B) {
		s := lp.NewSolver(lp.Revised{})
		defer s.Release()
		if _, err := s.Solve(f.probA); err != nil {
			b.Fatal(err)
		}
		// prime the toggle so the timed loop only sees tail deltas
		if _, err := s.Resolve(f.dFirstToB); err != nil {
			b.Fatal(err)
		}
		toA := true
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			d := f.dTailToB
			if toA {
				d = f.dTailToA
			}
			if _, err := s.Resolve(d); err != nil {
				b.Fatal(err)
			}
			toA = !toA
		}
		b.StopTimer()
		st := s.Stats()
		if st.FallbackSingular+st.FallbackInfeasible > 0 {
			b.Fatalf("warm benchmark fell back to cold solves: %+v", st)
		}
		b.ReportMetric(float64(st.WarmPivots)/float64(st.WarmSolves), "pivots/resolve")
	})
}
