package social

import (
	"math"
	"testing"

	"github.com/ebsn/igepa/internal/xrand"
)

func TestComponents(t *testing.T) {
	g := NewGraph(7)
	g.AddEdge(0, 1)
	g.AddEdge(1, 2)
	g.AddEdge(3, 4)
	// 5, 6 isolated
	comps := Components(g)
	if len(comps) != 4 {
		t.Fatalf("got %d components, want 4", len(comps))
	}
	if len(comps[0]) != 3 || len(comps[1]) != 2 {
		t.Fatalf("components not sorted by size: %v", comps)
	}
	total := 0
	for _, c := range comps {
		total += len(c)
	}
	if total != 7 {
		t.Fatalf("components cover %d vertices, want 7", total)
	}
}

func TestGiantComponentFraction(t *testing.T) {
	g := NewGraph(4)
	g.AddEdge(0, 1)
	g.AddEdge(1, 2)
	if got := GiantComponentFraction(g); math.Abs(got-0.75) > 1e-12 {
		t.Errorf("fraction = %v, want 0.75", got)
	}
	if got := GiantComponentFraction(NewGraph(0)); got != 0 {
		t.Errorf("empty graph fraction = %v", got)
	}
}

func TestLocalClustering(t *testing.T) {
	// triangle plus a pendant: clustering(0)=1 among {1,2}, vertex 3 pendant
	g := NewGraph(4)
	g.AddEdge(0, 1)
	g.AddEdge(0, 2)
	g.AddEdge(1, 2)
	g.AddEdge(2, 3)
	if got := g.LocalClustering(0); got != 1 {
		t.Errorf("clustering(0) = %v, want 1", got)
	}
	if got := g.LocalClustering(3); got != 0 {
		t.Errorf("pendant clustering = %v, want 0", got)
	}
	// vertex 2 has neighbours {0,1,3}: pairs (0,1) closed, (0,3),(1,3) open
	if got := g.LocalClustering(2); math.Abs(got-1.0/3.0) > 1e-12 {
		t.Errorf("clustering(2) = %v, want 1/3", got)
	}
}

func TestCliqueIsFullyClustered(t *testing.T) {
	g := Affiliation(5, [][]int{{0, 1, 2, 3, 4}})
	if got := MeanClustering(g); got != 1 {
		t.Errorf("clique clustering = %v, want 1", got)
	}
	if got := GiantComponentFraction(g); got != 1 {
		t.Errorf("clique giant fraction = %v, want 1", got)
	}
}

// The structural fingerprint that separates the two generator families: an
// affiliation (union-of-cliques) graph is far more clustered than an
// Erdős–Rényi graph of similar density.
func TestAffiliationMoreClusteredThanER(t *testing.T) {
	rng := xrand.New(6)
	const n = 300
	groups := make([][]int, 30)
	for gi := range groups {
		size := 5 + rng.Intn(15)
		for k := 0; k < size; k++ {
			groups[gi] = append(groups[gi], rng.Intn(n))
		}
	}
	aff := Affiliation(n, groups)
	p := 2 * float64(aff.NumEdges()) / float64(n*(n-1))
	er := ErdosRenyi(n, p, rng)

	ca, ce := MeanClustering(aff), MeanClustering(er)
	if ca < 2*ce {
		t.Errorf("affiliation clustering %v not clearly above ER %v (density %v)", ca, ce, p)
	}
}

func TestDegreeAssortativityProxy(t *testing.T) {
	// star: centre degree n-1, leaves degree 1 → neighbour-degree mean far
	// above mean degree (friendship paradox at its maximum)
	g := NewGraph(11)
	for v := 1; v <= 10; v++ {
		g.AddEdge(0, v)
	}
	if got := DegreeAssortativityProxy(g); got < 2 {
		t.Errorf("star proxy = %v, want >> 1", got)
	}
	// regular graph (cycle): every vertex degree 2 → proxy exactly 1
	c := NewGraph(6)
	for v := 0; v < 6; v++ {
		c.AddEdge(v, (v+1)%6)
	}
	if got := DegreeAssortativityProxy(c); math.Abs(got-1) > 1e-12 {
		t.Errorf("cycle proxy = %v, want 1", got)
	}
	if got := DegreeAssortativityProxy(NewGraph(3)); got != 0 {
		t.Errorf("edgeless proxy = %v, want 0", got)
	}
}
