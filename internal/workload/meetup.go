package workload

import (
	"fmt"

	"github.com/ebsn/igepa/internal/conflict"
	"github.com/ebsn/igepa/internal/interest"
	"github.com/ebsn/igepa/internal/model"
	"github.com/ebsn/igepa/internal/social"
	"github.com/ebsn/igepa/internal/xrand"
)

// MeetupConfig parameterizes the Meetup-like dataset. The defaults match
// the paper's crawl statistics (190 events, 2811 users, San Francisco) and
// its preprocessing rules; everything else is a documented synthetic stand-in
// for the unavailable raw crawl (see DESIGN.md §2).
type MeetupConfig struct {
	NumEvents int // default 190 (paper)
	NumUsers  int // default 2811 (paper)
	NumGroups int // Meetup interest groups; default 150
	NumTopics int // topic vocabulary for attribute vectors; default 20

	// HorizonDays is the span of the event calendar; conflict = time
	// overlap, as in the paper ("if two events overlap in time, they
	// conflict with each other"). Default 30.
	HorizonDays int

	// SpecifiedCapFrac is the fraction of events that publish a capacity
	// ("only some events specify their capacities"); the rest default to
	// |U| per the paper. Default 0.4.
	SpecifiedCapFrac float64

	// MaxAttended bounds the simulated attendance history per user
	// (Zipf-distributed); user capacity is 2× attendance per the paper.
	// Default 8.
	MaxAttended int

	Beta float64 // default 0.5
	Seed int64
}

func (c MeetupConfig) withDefaults() MeetupConfig {
	if c.NumEvents == 0 {
		c.NumEvents = 190
	}
	if c.NumUsers == 0 {
		c.NumUsers = 2811
	}
	if c.NumGroups == 0 {
		c.NumGroups = 150
	}
	if c.NumTopics == 0 {
		c.NumTopics = 20
	}
	if c.HorizonDays == 0 {
		c.HorizonDays = 30
	}
	if c.SpecifiedCapFrac == 0 {
		c.SpecifiedCapFrac = 0.4
	}
	if c.MaxAttended == 0 {
		c.MaxAttended = 8
	}
	if c.Beta == 0 {
		c.Beta = 0.5
	}
	return c
}

// Meetup generates the Meetup-like instance, applying the paper's
// preprocessing rules to a synthetic population:
//
//   - events get start times (evening-biased) and 1–3 hour durations over a
//     HorizonDays calendar; two events conflict iff their times overlap;
//   - a Zipf-popularity group structure hosts the events; users join 1–5
//     groups (popularity-weighted); the social network links users sharing
//     at least one group — exactly the paper's edge rule;
//   - topic attribute vectors: each group and event has a topic mixture and
//     users inherit a mixture from their groups; SI is the cosine of
//     attribute vectors ("we calculate users' interests in events based on
//     their attributes");
//   - attendance histories are drawn from the user's groups' events, user
//     capacity cu = 2 × (#attended), and bids are the attended events plus
//     the cu/2 most interesting remaining events — the paper's bid rule;
//   - event capacities: a SpecifiedCapFrac fraction publish a capacity
//     (10–100), the rest are set to |U|.
func Meetup(cfg MeetupConfig) (*model.Instance, error) {
	cfg = cfg.withDefaults()
	if cfg.NumEvents <= 0 || cfg.NumUsers <= 0 || cfg.NumGroups <= 0 || cfg.NumTopics <= 0 {
		return nil, fmt.Errorf("workload: non-positive meetup dimensions")
	}
	rng := xrand.New(cfg.Seed)

	// --- groups: topic mixtures and Zipf popularity ---
	groupTopics := make([][]float64, cfg.NumGroups)
	for gi := range groupTopics {
		groupTopics[gi] = topicMixture(rng, cfg.NumTopics, 1+rng.Intn(3))
	}
	groupZipf := xrand.NewZipfian(cfg.NumGroups, 1.1)

	// --- events: host group, topics, schedule ---
	events := make([]model.Event, cfg.NumEvents)
	hostGroup := make([]int, cfg.NumEvents)
	starts := make([]int64, cfg.NumEvents)
	ends := make([]int64, cfg.NumEvents)
	for v := range events {
		gi := groupZipf.Sample(rng) - 1
		hostGroup[v] = gi
		attrs := blend(rng, groupTopics[gi], topicMixture(rng, cfg.NumTopics, 1), 0.7)
		day := int64(rng.Intn(cfg.HorizonDays))
		var hour int64
		if rng.Bool(0.7) {
			hour = int64(17 + rng.Intn(4)) // evening events dominate
		} else {
			hour = int64(9 + rng.Intn(9))
		}
		start := (day*24 + hour) * 60     // minutes
		dur := int64(60 + 30*rng.Intn(5)) // 1h–3h
		starts[v], ends[v] = start, start+dur
		cap := cfg.NumUsers // unspecified → |U| per the paper
		if rng.Bool(cfg.SpecifiedCapFrac) {
			cap = rng.IntRange(10, 100)
		}
		events[v] = model.Event{Capacity: cap, Attrs: attrs, Start: start, End: start + dur}
	}
	conf := conflict.FromIntervals(starts, ends)

	// --- users: group memberships, topics ---
	memberships := make([][]int, cfg.NumGroups) // group -> member users
	userGroups := make([][]int, cfg.NumUsers)
	joinZipf := xrand.NewZipfian(5, 1.2)
	for u := 0; u < cfg.NumUsers; u++ {
		k := joinZipf.Sample(rng)
		seen := map[int]bool{}
		for len(userGroups[u]) < k {
			gi := groupZipf.Sample(rng) - 1
			if !seen[gi] {
				seen[gi] = true
				userGroups[u] = append(userGroups[u], gi)
				memberships[gi] = append(memberships[gi], u)
			}
		}
	}
	g := social.Affiliation(cfg.NumUsers, memberships)

	userAttrs := make([][]float64, cfg.NumUsers)
	eventAttrs := make([][]float64, cfg.NumEvents)
	for v := range events {
		eventAttrs[v] = events[v].Attrs
	}
	for u := range userAttrs {
		mix := make([]float64, cfg.NumTopics)
		for _, gi := range userGroups[u] {
			for t, w := range groupTopics[gi] {
				mix[t] += w
			}
		}
		userAttrs[u] = blend(rng, normalize(mix), topicMixture(rng, cfg.NumTopics, 1), 0.8)
	}
	si := interest.Cosine(userAttrs, eventAttrs)

	// --- attendance, capacities, bids (the paper's rules) ---
	attendZipf := xrand.NewZipfian(cfg.MaxAttended, 1.3)
	groupEvents := make([][]int, cfg.NumGroups)
	for v, gi := range hostGroup {
		groupEvents[gi] = append(groupEvents[gi], v)
	}
	users := make([]model.User, cfg.NumUsers)
	for u := range users {
		attended := sampleAttendance(rng, userGroups[u], groupEvents, attendZipf, cfg.NumEvents)
		cu := 2 * len(attended) // paper: capacity = 2 × #attended
		bids := expandBids(u, attended, cu/2, si, cfg.NumEvents)
		users[u] = model.User{
			Capacity: cu,
			Attrs:    userAttrs[u],
			Bids:     bids,
			Degree:   g.Degree(u),
		}
	}

	in := &model.Instance{
		Events:    events,
		Users:     users,
		Conflicts: conf.Conflicts,
		Interest:  si,
		Beta:      cfg.Beta,
	}
	in.RebuildBidders()
	return in, nil
}

// sampleAttendance draws the user's attendance history: Zipf-many events,
// preferentially from the user's groups, uniform fallback otherwise.
func sampleAttendance(rng *xrand.RNG, groups []int, groupEvents [][]int, z *xrand.Zipfian, numEvents int) []int {
	k := z.Sample(rng)
	var pool []int
	for _, gi := range groups {
		pool = append(pool, groupEvents[gi]...)
	}
	seen := map[int]bool{}
	var attended []int
	guard := 0
	for len(attended) < k && guard < 50*k {
		guard++
		var v int
		if len(pool) > 0 && rng.Bool(0.8) {
			v = pool[rng.Intn(len(pool))]
		} else {
			v = rng.Intn(numEvents)
		}
		if !seen[v] {
			seen[v] = true
			attended = append(attended, v)
		}
	}
	return attended
}

// expandBids implements the paper's bid rule: the attended events plus the
// `extra` most interesting events the user has not attended.
func expandBids(u int, attended []int, extra int, si func(u, v int) float64, numEvents int) []int {
	have := make(map[int]bool, len(attended))
	for _, v := range attended {
		have[v] = true
	}
	type ev struct {
		v int
		s float64
	}
	var rest []ev
	for v := 0; v < numEvents; v++ {
		if !have[v] {
			rest = append(rest, ev{v, si(u, v)})
		}
	}
	// partial selection of the top `extra` by interest (descending)
	for i := 0; i < extra && i < len(rest); i++ {
		best := i
		for j := i + 1; j < len(rest); j++ {
			if rest[j].s > rest[best].s || (rest[j].s == rest[best].s && rest[j].v < rest[best].v) {
				best = j
			}
		}
		rest[i], rest[best] = rest[best], rest[i]
	}
	bids := append([]int(nil), attended...)
	for i := 0; i < extra && i < len(rest); i++ {
		bids = append(bids, rest[i].v)
	}
	sortInts(bids)
	return bids
}

// topicMixture returns a normalized vector with k active topics.
func topicMixture(rng *xrand.RNG, numTopics, k int) []float64 {
	mix := make([]float64, numTopics)
	for i := 0; i < k; i++ {
		mix[rng.Intn(numTopics)] += 0.5 + rng.Float64()
	}
	return normalize(mix)
}

// blend mixes two vectors with weight w on the first, renormalized.
func blend(rng *xrand.RNG, a, b []float64, w float64) []float64 {
	out := make([]float64, len(a))
	for i := range out {
		out[i] = w*a[i] + (1-w)*b[i]
	}
	return normalize(out)
}

func normalize(v []float64) []float64 {
	sum := 0.0
	for _, x := range v {
		sum += x
	}
	if sum == 0 {
		return v
	}
	for i := range v {
		v[i] /= sum
	}
	return v
}
