package lp

import (
	"fmt"
	"io"
	"math"

	"github.com/ebsn/igepa/internal/par"
)

// Revised is a revised primal simplex solver. The basis inverse is never
// formed: the basis is kept as a sparse LU factorization (lu.go) plus a
// product-form eta file of the pivots since the last refactorization, so
// each iteration costs a few sparse triangular solve pairs plus pricing.
// This is the production path for paper-scale benchmark LPs, where the dense
// tableau would be prohibitively large.
//
// Pricing is Devex (Forrest–Goldfarb reference weights) with incrementally
// updated reduced costs by default. The benchmark LP at large |U| is a
// heavily degenerate transportation-like program on which textbook Dantzig
// pricing zigzags — measured on the |U|=4000 Table I workload, Dantzig took
// ~96k pivots with 55k re-entries of previously basic columns; Devex cuts
// both dramatically. Dantzig with a partial pricing window remains available
// and is auto-selected for very wide problems, where the per-pivot O(n)
// Devex update pass costs more than it saves.
//
// The Devex update and pricing passes — the dominant cost at paper scale —
// run on a bounded worker pool over column ranges. Every column's update is
// arithmetically independent, so the solve is bit-identical for every
// worker count and GOMAXPROCS setting.
type Revised struct {
	// MaxIter bounds the number of pivots; 0 means 20000 + 200·(m+n).
	MaxIter int
	// RefactorEvery rebuilds the LU factorization after this many pivots
	// (discarding accumulated round-off); 0 means 128.
	RefactorEvery int
	// Pricing selects the pricing rule: "devex", "dantzig", or ""/"auto"
	// (Devex up to DevexColumnLimit columns, Dantzig beyond).
	Pricing string
	// DualPricing selects the leaving-row rule for the warm-start dual
	// repair phase: "dse" (dual steepest-edge — positional norms steer
	// repair away from degenerate zigzags, usually far fewer pivots) or
	// "maxinfeas" (most negative basic value, the classic Dantzig-style
	// rule). ""/"auto" means "dse".
	DualPricing string
	// PricingWindow is the number of columns scanned per iteration under
	// partial Dantzig pricing before falling back to a full pass.
	// 0 means 4096.
	PricingWindow int
	// PricingCandidates switches the pricing passes (the dual repair's
	// priceDual and the primal Devex scan) to a rotating candidate window of
	// that many columns. The window deterministically rotates through the
	// column range and widens ("refills", counted in PhaseTimers) whenever
	// it holds no eligible candidate, so the knob trades scan cost per pivot
	// against pivot quality — a windowed dual ratio test can overshoot the
	// dual step and leave cleanup work to the primal finish. 0 (the default)
	// keeps full ratio-test coverage and instead prices through the
	// support-scatter pass (see priceDual), which is usually faster AND
	// trajectory-exact; the knob exists for very wide problems where even
	// the scatter's selection sweep hurts. Results never depend on Workers
	// or on the hypersparse threshold, only on this knob's value.
	PricingCandidates int
	// RepairBudget bounds the dual-repair pivots per attempt before a
	// partial-warm cutover (and, on the second exhaustion, the cold
	// fallback). 0 means auto: proportional to the delta size,
	// min(4m+16, 64 + 32·|Δ|), so a tiny delta that somehow needs thousands
	// of repair pivots cuts over early instead of burning a warm-start's
	// entire advantage.
	RepairBudget int
	// HypersparseThreshold is the symbolic-reach density (fraction of m) at
	// which the hypersparse triangular kernels abandon the sparse path and
	// defer to the dense sweeps. 0 means the default 0.1; must be ≤ 1.
	// Results are bit-identical across settings — the threshold only moves
	// work between bit-equal kernels.
	HypersparseThreshold float64
	// Workers bounds the pricing worker pool; 0 means GOMAXPROCS. Results
	// do not depend on it.
	Workers int
	// ParallelThreshold overrides the variable count (n+m) at which the
	// Devex passes move onto the worker pool; 0 means the package default
	// (devexParallelThreshold). Tests lower it to force the pooled code
	// paths on small LPs.
	ParallelThreshold int
	// Trace, when non-nil, receives a progress line every TraceEvery
	// pivots (objective, step size, degenerate share) — the diagnostic
	// used to tune pricing on pathological instances.
	Trace io.Writer
	// TraceEvery sets the trace granularity; 0 means 5000.
	TraceEvery int
	// Timers, when non-nil, accumulates per-phase wall time (FTRAN, BTRAN,
	// pricing, Devex update, refactorization) and pivot counts across every
	// solve run with this config. Timing is sampled at the kernel leaves so
	// the phases are disjoint; a nil Timers costs a predicted-not-taken
	// branch per kernel call. Not synchronized: meaningful only when the
	// config drives one solve at a time.
	Timers *PhaseTimers
	// NoPerturb disables the default anti-degeneracy RHS perturbation.
	//
	// The benchmark LP is massively degenerate (thousands of identical
	// user rows with b=1). The solver perturbs each b_i > 0 by a
	// deterministic pseudo-random δ_i ∈ (0.5, 1]·1e-6·(1+b_i) before
	// solving, so ties in the ratio test break consistently and degenerate
	// vertices are left in real steps. Zero rows are never perturbed (a
	// zero capacity must stay hard). The returned solution is feasible for
	// the perturbed problem, hence feasible for the original within 1e-6
	// relative per row; Verify's tolerances absorb it.
	NoPerturb bool
}

// DevexColumnLimit is the problem width beyond which auto pricing falls back
// from Devex to partial Dantzig: the Devex update pass touches every
// nonbasic column once per pivot, which dominates on very wide LPs (e.g.
// the Meetup workload's ~10⁶ columns) that Dantzig already solves in few
// iterations.
const DevexColumnLimit = 300_000

// DevexRowThreshold is the row count above which auto pricing prefers Devex
// over partial Dantzig (see the auto-selection comment in Solve).
const DevexRowThreshold = 3000

// devexParallelThreshold is the variable count (n+m) below which the Devex
// passes stay on the calling goroutine: under it the per-pivot work is too
// small to amortize handing chunks to the pool.
const devexParallelThreshold = 16384

// devexGrain is the minimum column-range chunk handed to a pricing worker.
const devexGrain = 4096

// perturbScale is the relative magnitude of the anti-degeneracy
// perturbation.
const perturbScale = 2e-7

// perturbDelta returns the deterministic perturbation for row i.
func perturbDelta(i int, b float64) float64 {
	z := uint64(i)*0x9e3779b97f4a7c15 + 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	u := 0.5 + 0.5*float64(z>>11)/(1<<53) // (0.5, 1]
	return perturbScale * (1 + b) * u
}

// eta is one product-form update: the pivot that replaced basic position r,
// described by the FTRAN'd entering column d. Its off-diagonal entries live
// in the state's shared eta arena at [lo, hi); the diagonal element dr is
// stored separately. Keeping the entries in one growable arena (reset at
// each refactorization) instead of per-eta slices removes two heap
// allocations per pivot.
type eta struct {
	r      int
	lo, hi int32
	dr     float64
}

// Solve runs the revised primal simplex on p from the all-slack basis.
func (s *Revised) Solve(p *Problem) (*Solution, error) {
	if err := s.validate(); err != nil {
		return nil, err
	}
	if err := p.Check(); err != nil {
		return nil, err
	}
	if sol, done := trivialSolution(p); done {
		return sol, solutionErr(sol)
	}
	st := newRevisedState(p, !s.NoPerturb)
	if err := st.refactorize(); err != nil {
		return nil, err
	}
	return s.pivot(st, false)
}

// trivialSolution handles the m == 0 degenerate case shared by the cold and
// warm entry points: x = 0 is optimal unless some c_j > 0.
func trivialSolution(p *Problem) (*Solution, bool) {
	if p.NumRows != 0 {
		return nil, false
	}
	for _, c := range p.C {
		if c > reducedTol {
			return &Solution{Status: Unbounded}, true
		}
	}
	return &Solution{Status: Optimal, X: make([]float64, p.NumCols()), Y: nil, Objective: 0}, true
}

// solutionErr maps a terminal non-optimal status to its sentinel error.
func solutionErr(sol *Solution) error {
	switch sol.Status {
	case Unbounded:
		return ErrUnbounded
	case IterLimit:
		return ErrIterLimit
	}
	return nil
}

// selectDevex resolves the pricing rule for an m×n problem.
func (s *Revised) selectDevex(m, n int) (bool, error) {
	switch s.Pricing {
	case "devex":
		return true, nil
	case "dantzig":
		return false, nil
	case "", "auto":
		// Measured on the Table I workloads (see DESIGN.md): Dantzig wins
		// below ~3000 rows (|U|=2000 defaults: 0.9s vs 2.5s) because the
		// per-pivot Devex pass over all columns outweighs its iteration
		// savings; beyond that the degenerate churn explodes under Dantzig
		// (|U|=4000: 96k pivots vs 19k) and Devex wins several-fold. On
		// very wide problems (Meetup: ~8·10⁵ columns) the O(n) update pass
		// dominates everything, so Dantzig with a pricing window is used.
		return m > DevexRowThreshold && n+m <= DevexColumnLimit, nil
	default:
		return false, fmt.Errorf("lp: unknown pricing rule %q", s.Pricing)
	}
}

// configure binds the config-derived per-solve state: the worker-pool bound
// and the phase-timer sink. Shared by the pivot loop and Solver.Resolve's
// dual-repair prologue, which runs before pivot and must see the same pool
// — a repair on stale workers would take different (still correct, but not
// the configured) parallel paths.
func (s *Revised) configure(st *revisedState) {
	st.timers = s.Timers
	st.workers = par.Workers(s.Workers)
	parallelThreshold := s.ParallelThreshold
	if parallelThreshold <= 0 {
		parallelThreshold = devexParallelThreshold
	}
	if st.workers > 1 && st.n+st.m < parallelThreshold {
		st.workers = 1
	}
	thr := s.HypersparseThreshold
	if thr == 0 {
		thr = defaultHypersparseThreshold
	}
	st.hyperCap = int(thr * float64(st.m))
	// Candidate windows are strictly opt-in (PricingCandidates > 0). A
	// windowed dual ratio test answers from a column subset, and the
	// resulting overshot dual steps were measured to explode the primal
	// cleanup after repair (U1000 capacity shrink: 0 → 4652 finish pivots);
	// the default path instead keeps full ratio-test coverage and makes the
	// scan cheap via the support-scatter pass (see priceDual).
	st.dualWindow, st.primalWindow = 0, 0
	if w := s.PricingCandidates; w > 0 {
		st.dualWindow, st.primalWindow = w, w
	}
}

// pivot runs the simplex loop from st's current basis, which must already be
// factorized and primal feasible. With warm == false the Devex reference
// framework is reset (the cold, all-slack start); with warm == true any
// reference weights carried in st.weights survive, so a re-solve keeps the
// pricing memory of the previous optimum.
func (s *Revised) pivot(st *revisedState, warm bool) (*Solution, error) {
	m, n := st.m, st.n
	maxIter := s.MaxIter
	if maxIter <= 0 {
		maxIter = 20000 + 200*(m+n)
	}
	refactorEvery := s.RefactorEvery
	if refactorEvery <= 0 {
		refactorEvery = 128
	}
	window := s.PricingWindow
	if window <= 0 {
		window = 4096
	}
	devex, err := s.selectDevex(m, n)
	if err != nil {
		return nil, err
	}

	s.configure(st)
	if devex {
		st.initDevex(warm)
	}

	iters := 0
	degenerate := 0
	tinySteps := 0
	bland := false
	cursor := 0
	for ; iters < maxIter; iters++ {
		var q int
		switch {
		case bland:
			st.btran()
			q = st.priceBland()
		case devex:
			q = st.priceDevex()
			if q < 0 {
				// Apparent optimality on incrementally updated reduced
				// costs: refresh exactly and re-check before declaring.
				st.refreshReducedCosts()
				q = st.priceDevex()
			}
		default:
			st.btran()
			q, cursor = st.pricePartial(cursor, window)
		}
		if q < 0 {
			st.btran()
			return st.extract(iters), nil
		}

		st.ftran(q) // d = B⁻¹ a_q

		// Ratio test.
		r := -1
		var theta float64
		for i := 0; i < m; i++ {
			a := st.d[i]
			if a <= pivotTol {
				continue
			}
			ratio := st.xB[i] / a
			switch {
			case r < 0 || ratio < theta-pivotTol:
				r, theta = i, ratio
			case ratio <= theta+pivotTol:
				if bland {
					if st.basis[i] < st.basis[r] {
						r, theta = i, ratio
					}
				} else if a > st.d[r] {
					r, theta = i, ratio
				}
			}
		}
		if r < 0 {
			return &Solution{Status: Unbounded, Iterations: iters}, ErrUnbounded
		}
		if theta <= pivotTol {
			degenerate++
			if degenerate >= stallLimit {
				bland = true
			}
		} else {
			degenerate = 0
			bland = false
		}
		if s.Trace != nil {
			every := s.TraceEvery
			if every <= 0 {
				every = 5000
			}
			if theta < 1e-6 {
				tinySteps++
			}
			if iters%every == 0 {
				obj := 0.0
				for i := range st.xB {
					obj += st.cB[i] * st.xB[i]
				}
				fmt.Fprintf(s.Trace, "iter=%d obj=%.4f theta=%.3g tiny%%=%.1f bland=%v etas=%d\n",
					iters, obj, theta, 100*float64(tinySteps)/float64(iters+1), bland, len(st.etas))
			}
		}

		if devex {
			st.updateDevex(q, r)
		}

		// Apply the pivot.
		for i := 0; i < m; i++ {
			if v := st.d[i]; v != 0 {
				st.xB[i] -= theta * v
				if st.xB[i] < 0 && st.xB[i] > -1e-11 {
					st.xB[i] = 0
				}
			}
		}
		st.xB[r] = theta
		leaving := st.basis[r]
		st.posOf[leaving] = -1
		st.basis[r] = q
		st.posOf[q] = r
		st.cB[r] = st.objCoef(q)
		st.pushEta(r)
		st.timers.pivotDone()

		if len(st.etas) >= refactorEvery {
			if err := st.refactorize(); err != nil {
				return nil, err
			}
			if devex {
				st.refreshReducedCosts()
			}
		}
	}
	return &Solution{Status: IterLimit, Iterations: iters}, ErrIterLimit
}

// revisedState carries the mutable solver state; it exists so the pivot
// loop above reads top-down without a dozen captured locals.
type revisedState struct {
	p       *Problem
	m, n    int
	workers int
	b       []float64 // right-hand side, possibly perturbed

	basis []int     // basis position -> variable index
	posOf []int     // variable index -> basis position or -1
	xB    []float64 // values of basic variables
	cB    []float64 // objective coefficients of basic variables

	lu        *luFactors
	basisCols []spCol // views of the current basis columns (refactorize)

	etas   []eta
	etaIdx []int32 // shared eta arena (see eta)
	etaVal []float64

	y    []float64 // dual prices, original-row space
	d    []float64 // FTRAN result, basis-position space
	beta []float64 // BTRAN of the leaving unit vector (Devex pivot row)
	work []float64 // scratch for LU solves

	// Devex state: incrementally maintained reduced costs and reference
	// weights for every variable (structural and slack).
	rvec    []float64
	weights []float64
	scratch []float64 // second zeroed work vector (btranUnit)

	// chunk-argmax scratch for the parallel pricing pass
	chunkBest  []int
	chunkScore []float64

	// dual-repair state: steepest-edge row norms (positional, reset to the
	// unit reference framework at repair entry and on mid-repair
	// refactorization), the maintained dual reduced costs, and the
	// support-scatter pricing scratch. dualRedVec holds red_j = c_j − yᵀa_j
	// for every nonbasic column (basic slots hold don't-care garbage, never
	// read), refreshed exactly from the duals at repair entry and at every
	// refactorization and updated incrementally (red' = red − γ·α) per pivot
	// in between. alphaVec accumulates the pivot row α: in sparse mode over
	// the candidate column set candList (epoch-stamped via candStamp, so no
	// O(n) clearing between pivots), in dense mode (candDense, chosen by β's
	// nonzero count alone) over every column after a plain clear.
	dseW       []float64
	dualRedVec []float64
	alphaVec   []float64
	candStamp  []int32
	candEpoch  int32
	candList   []int32
	candDense  bool

	// Row-major mirror of the structural matrix A (row → (column, value)),
	// built lazily by buildARows for the scatter pricing pass and
	// invalidated whenever the column structure changes (rebind, structural
	// deltas). Within a row, columns ascend.
	aRowPtr, aRowIdx []int32
	aRowVal          []float64
	aRowCur          []int32
	aRowsOK          bool
	// dualGamma is the dual step length γ = red_q/α_q of the last priceDual
	// winner, used for the incremental dual update y' = y + γβ.
	dualGamma float64

	// Hypersparse solve state: hyperCap is the reach cap in steps
	// (HypersparseThreshold · m, set by configure; 0 disables), hyper the
	// reusable symbolic scratch, hyperSeeds the RHS-pattern buffer for
	// btranUnit. When the last btranUnit was served by the sparse kernel,
	// betaSupportOK is true and betaSupport lists the original-row indices of
	// st.beta's nonzeros — the key that unlocks reach-pruned dual pricing.
	hyper         hyperReach
	hyperCap      int
	hyperSeeds    []int32
	betaSupport   []int32
	betaSupportOK bool

	// Candidate-list pricing state (configure): dualWindow/primalWindow are
	// the rotating window widths in columns (0 = full scan); the cursors
	// track each window's current start, advanced deterministically on
	// refills so barren stretches rotate out of the hot scan.
	dualWindow   int
	primalWindow int
	dualCursor   int
	primalCursor int

	timers *PhaseTimers // nil unless the config requests phase profiling

	// refactors counts LU rebuilds on this state since it was acquired —
	// the observability counter behind SolverStats.Refactorizations. Reset
	// by acquireState so a recycled arena never carries a previous solver's
	// count.
	refactors int64

	rowSeq []int32   // rowSeq[i] = i: slack column indices and full-rhs rows
	ones   []float64 // all ones: slack column values

	// xOut, yOut back the returned Solution's X and Y. They are reused
	// across solves on the same state, so a persistent Solver's steady-state
	// Resolve allocates nothing but the Solution header; see the aliasing
	// contract on Solver.
	xOut, yOut []float64
}

func newRevisedState(p *Problem, perturb bool) *revisedState {
	st := &revisedState{lu: &luFactors{}}
	st.rebind(p, perturb)
	return st
}

// resizeF reslices s to length n, allocating only when the capacity is too
// small. Contents are unspecified; callers overwrite what they read.
func resizeF(s []float64, n int) []float64 {
	if cap(s) < n {
		return make([]float64, n)
	}
	return s[:n]
}

// resizeI is resizeF for int slices.
func resizeI(s []int, n int) []int {
	if cap(s) < n {
		return make([]int, n)
	}
	return s[:n]
}

// rebind points the state at problem p and resets it to the all-slack basis,
// reusing every backing array whose capacity suffices — the cold-start path
// of a pooled or persistent solver allocates nothing in steady state. The
// warm path (Solver.Resolve) instead patches basis, posOf and weights in
// place and never calls rebind.
func (st *revisedState) rebind(p *Problem, perturb bool) {
	m, n := p.NumRows, p.NumCols()
	st.p, st.m, st.n = p, m, n
	st.workers = 1
	st.betaSupportOK = false
	st.aRowsOK = false
	st.loadRHS(perturb)
	st.basis = resizeI(st.basis, m)
	st.posOf = resizeI(st.posOf, n+m)
	st.xB = resizeF(st.xB, m)
	st.cB = resizeF(st.cB, m)
	st.y = resizeF(st.y, m)
	st.d = resizeF(st.d, m)
	st.work = resizeF(st.work, m)
	for i := range st.work {
		st.work[i] = 0 // the LU solves require (and preserve) zeroed scratch
	}
	if st.scratch != nil {
		st.scratch = resizeF(st.scratch, m)
		for i := range st.scratch {
			st.scratch[i] = 0
		}
	}
	if st.beta != nil {
		st.beta = resizeF(st.beta, m)
	}
	st.rowSeq = st.rowSeq[:0]
	st.ones = st.ones[:0]
	for i := 0; i < m; i++ {
		st.rowSeq = append(st.rowSeq, int32(i))
		st.ones = append(st.ones, 1)
	}
	st.etas = st.etas[:0]
	st.etaIdx = st.etaIdx[:0]
	st.etaVal = st.etaVal[:0]
	st.basisCols = st.basisCols[:0]
	for i := range st.posOf {
		st.posOf[i] = -1
	}
	for i := 0; i < m; i++ {
		st.basis[i] = n + i
		st.posOf[n+i] = i
		st.xB[i] = st.b[i]
	}
}

// loadRHS refreshes st.b from the problem's right-hand side, applying the
// deterministic anti-degeneracy perturbation. The perturbation depends only
// on (row, bound), so a warm re-solve after a bound delta works on exactly
// the rhs a cold solve of the changed problem would see.
func (st *revisedState) loadRHS(perturb bool) {
	st.b = resizeF(st.b, st.m)
	copy(st.b, st.p.B)
	if perturb {
		for i := range st.b {
			if st.b[i] > 0 {
				st.b[i] += perturbDelta(i, st.b[i])
			}
		}
	}
}

func (st *revisedState) objCoef(v int) float64 {
	if v < st.n {
		return st.p.C[v]
	}
	return 0
}

// columnOf returns the sparse constraint column of variable v as views —
// into the problem's CSC arrays for a structural column, into the state's
// slack storage for a unit slack column. Never a copy.
func (st *revisedState) columnOf(v int) ([]int32, []float64) {
	if v < st.n {
		return st.p.Col(v)
	}
	i := v - st.n
	return st.rowSeq[i : i+1], st.ones[i : i+1]
}

// refactorize rebuilds the LU factorization of the current basis, clears the
// eta file, and recomputes x_B = B⁻¹b to shed accumulated round-off.
func (st *revisedState) refactorize() error {
	if cap(st.basisCols) < st.m {
		st.basisCols = make([]spCol, st.m)
	} else {
		st.basisCols = st.basisCols[:st.m]
	}
	for i, v := range st.basis {
		rows, vals := st.columnOf(v)
		st.basisCols[i] = spCol{rows: rows, vals: vals}
	}
	t0 := tick(st.timers)
	if err := st.lu.factorize(st.m, st.basisCols); err != nil {
		return err
	}
	st.etas = st.etas[:0]
	st.etaIdx = st.etaIdx[:0]
	st.etaVal = st.etaVal[:0]
	st.solveB(st.rowSeq, st.b, st.xB)
	for i := range st.xB {
		if st.xB[i] < 0 && st.xB[i] > -1e-9 {
			st.xB[i] = 0
		}
		st.cB[i] = st.objCoef(st.basis[i])
	}
	st.timers.add(phFactor, t0)
	st.refactors++
	return nil
}

// luParallelMinRows and luParallelMinRHS gate the level-scheduled triangular
// solves: below luParallelMinRows steps the levels are too thin to amortize
// handing chunks to the pool, and a right-hand side sparser than
// luParallelMinRHS nonzeros keeps the sequential push solve, whose work is
// bounded by the (small) reachable set rather than by m — the pull-form
// level sweep always touches every factor nonzero. Package variables so the
// invariance tests can force the parallel paths on tiny bases; the solver
// never mutates them.
var (
	luParallelMinRows = 1024
	luParallelMinRHS  = 192
)

// defaultHypersparseThreshold is the reach-cap density (fraction of m) when
// Revised.HypersparseThreshold is zero. Warm-resolve FTRANs and repair-pivot
// BTRANs on the benchmark bases reach a few dozen steps out of thousands;
// 10% leaves generous headroom while keeping the abandoned-DFS cost of a
// genuinely dense solve at a tenth of the dense sweep it falls back to.
const defaultHypersparseThreshold = 0.1

// solveB routes d = B⁻¹a: a right-hand side sparse enough to fit the
// hypersparse reach cap tries the symbolic-reach kernel first, then the
// level-scheduled parallel kernel when the pool and the problem shape warrant
// it, else the sequential solve. All paths are bit-identical by construction
// (see solveBLevel and the hypersparse.go preamble), so crossing either
// threshold never changes a pivot sequence.
func (st *revisedState) solveB(rows []int32, vals []float64, out []float64) {
	if len(rows) <= st.hyperCap {
		if st.lu.solveBHyper(&st.hyper, rows, vals, out, st.work, st.hyperCap) {
			st.timers.hypersparseFtran()
			return
		}
	}
	if st.workers > 1 && st.m >= luParallelMinRows && len(rows) >= luParallelMinRHS {
		st.lu.solveBLevel(rows, vals, out, st.work, st.workers)
	} else {
		st.lu.solveB(rows, vals, out, st.work)
	}
}

// solveBT routes Bᵀy = c like solveB. No RHS-sparsity gate: the transposed
// sequential solve already sweeps all m steps, so the level version does the
// same work in parallel.
func (st *revisedState) solveBT(c, out []float64) {
	if st.workers > 1 && st.m >= luParallelMinRows {
		st.lu.solveBTLevel(c, out, st.work, st.workers)
	} else {
		st.lu.solveBT(c, out, st.work)
	}
}

// recomputeXB refreshes x_B = B⁻¹b and c_B through the existing
// factorization and eta file, without rebuilding the LU. Valid whenever
// every basis change since the last factorize went through pushEta — which
// Solver.Resolve guarantees (substituted removals are product-form updates)
// — so a small-delta re-solve skips the O(m·nnz) refactorization entirely.
// The round-off hygiene matches refactorize: tiny negative basics clamp to
// zero.
func (st *revisedState) recomputeXB() {
	st.solveB(st.rowSeq, st.b, st.d)
	for _, e := range st.etas {
		xr := st.d[e.r] / e.dr
		st.d[e.r] = xr
		if xr != 0 {
			idx := st.etaIdx[e.lo:e.hi]
			val := st.etaVal[e.lo:e.hi]
			for i, s := range idx {
				st.d[s] -= val[i] * xr
			}
		}
	}
	copy(st.xB, st.d)
	for i := range st.xB {
		if st.xB[i] < 0 && st.xB[i] > -1e-9 {
			st.xB[i] = 0
		}
		st.cB[i] = st.objCoef(st.basis[i])
	}
}

// ftran computes d = B⁻¹ a_q into st.d.
func (st *revisedState) ftran(q int) {
	t0 := tick(st.timers)
	rows, vals := st.columnOf(q)
	st.solveB(rows, vals, st.d)
	for _, e := range st.etas {
		xr := st.d[e.r] / e.dr
		st.d[e.r] = xr
		if xr != 0 {
			idx := st.etaIdx[e.lo:e.hi]
			val := st.etaVal[e.lo:e.hi]
			for i, s := range idx {
				st.d[s] -= val[i] * xr
			}
		}
	}
	st.timers.add(phFtran, t0)
}

// btran computes y = B⁻ᵀ c_B into st.y.
func (st *revisedState) btran() {
	t0 := tick(st.timers)
	z := st.d // reuse as scratch; overwritten by the next ftran
	copy(z, st.cB)
	st.applyEtasT(z)
	st.solveBT(z, st.y)
	st.timers.add(phBtran, t0)
}

// btranUnit computes β = B⁻ᵀ e_r (row r of the basis inverse) into st.beta.
// The right-hand side after the transposed eta sweep is nonzero only at r and
// the eta pivot positions, so with a short eta file the solve is served by
// the hypersparse kernel, which also exports β's nonzero pattern into
// st.betaSupport for the reach-pruned dual pricing pass.
func (st *revisedState) btranUnit(r int) {
	t0 := tick(st.timers)
	if st.beta == nil {
		st.beta = make([]float64, st.m)
	}
	z := st.work2()
	z[r] = 1
	st.applyEtasT(z)
	st.betaSupportOK = false
	if len(st.etas)+1 <= st.hyperCap {
		st.hyperSeeds = append(st.hyperSeeds[:0], int32(r))
		for i := range st.etas {
			st.hyperSeeds = append(st.hyperSeeds, int32(st.etas[i].r))
		}
		st.betaSupport = st.betaSupport[:0]
		if st.lu.solveBTHyper(&st.hyper, z, st.beta, st.work, st.hyperSeeds, &st.betaSupport, st.hyperCap) {
			st.betaSupportOK = true
			st.timers.hypersparseBtran()
			for _, p := range st.hyperSeeds {
				z[p] = 0
			}
			st.timers.add(phBtran, t0)
			return
		}
	}
	st.solveBT(z, st.beta)
	for i := range z {
		z[i] = 0
	}
	st.timers.add(phBtran, t0)
}

// work2 returns a second zeroed scratch vector of length m.
func (st *revisedState) work2() []float64 {
	if st.scratch == nil {
		st.scratch = make([]float64, st.m)
	}
	return st.scratch
}

// applyEtasT applies the transposed eta file in reverse order (the BTRAN
// half of the product-form update).
func (st *revisedState) applyEtasT(z []float64) {
	for k := len(st.etas) - 1; k >= 0; k-- {
		e := &st.etas[k]
		idx := st.etaIdx[e.lo:e.hi]
		val := st.etaVal[e.lo:e.hi]
		sum := 0.0
		for i, s := range idx {
			sum += val[i] * z[s]
		}
		z[e.r] = (z[e.r] - sum) / e.dr
	}
}

// pushEta records the current FTRAN vector st.d as the eta for a pivot at
// basic position r, appending its entries to the shared arena.
func (st *revisedState) pushEta(r int) {
	lo := int32(len(st.etaIdx))
	for i, v := range st.d {
		if i != r && (v > 1e-13 || v < -1e-13) {
			st.etaIdx = append(st.etaIdx, int32(i))
			st.etaVal = append(st.etaVal, v)
		}
	}
	st.etas = append(st.etas, eta{r: r, lo: lo, hi: int32(len(st.etaIdx)), dr: st.d[r]})
}

// reducedCost returns c_q − yᵀ a_q for variable q under the current duals.
func (st *revisedState) reducedCost(q int) float64 {
	if q < st.n {
		red := st.p.C[q]
		lo, hi := st.p.ColPtr[q], st.p.ColPtr[q+1]
		for k := lo; k < hi; k++ {
			red -= st.y[st.p.Rows[k]] * st.p.Vals[k]
		}
		return red
	}
	return -st.y[q-st.n]
}

// --- Devex pricing -------------------------------------------------------

// initDevex sizes and fills the Devex state: exact reduced costs for every
// variable, plus reference weights. A cold start (warm == false) zeroes the
// weights so refreshReducedCosts resets them to the unit reference framework
// — bit-identical to a fresh state. A warm start keeps whatever weights the
// caller carried over (Solver.Resolve remaps the previous solve's weights),
// preserving the pricing memory of the previous optimum.
func (st *revisedState) initDevex(warm bool) {
	total := st.n + st.m
	st.primalCursor = 0
	st.rvec = resizeF(st.rvec, total)
	if !warm || len(st.weights) != total {
		st.weights = resizeF(st.weights, total)
		for i := range st.weights {
			st.weights[i] = 0
		}
	}
	st.refreshReducedCosts()
}

// refreshReducedCosts recomputes st.rvec exactly from the current duals.
// The Devex reference weights are reset only when they have grown extreme
// (a fresh reference framework); resetting them on every refactorization
// would degrade Devex to Dantzig.
func (st *revisedState) refreshReducedCosts() {
	st.btran()
	maxW := 0.0
	for _, w := range st.weights {
		if w > maxW {
			maxW = w
		}
	}
	reset := maxW > 1e8 || maxW == 0
	t0 := tick(st.timers)
	par.Ranges(st.workers, st.n+st.m, devexGrain, func(lo, hi int) {
		for j := lo; j < hi; j++ {
			if st.posOf[j] >= 0 {
				st.rvec[j] = 0
			} else {
				st.rvec[j] = st.reducedCost(j)
			}
			if reset {
				st.weights[j] = 1
			}
		}
	})
	st.timers.add(phPricing, t0)
}

// priceDevex selects the entering variable maximizing r²/weight over
// variables with positive reduced cost, per the stored (incrementally
// updated) reduced costs. The scan is chunked over the worker pool; the
// chunk results combine to exactly the sequential first-strict-maximum, so
// the selected column does not depend on the worker count.
func (st *revisedState) priceDevex() int {
	t0 := tick(st.timers)
	defer st.timers.add(phPricing, t0)
	total := st.n + st.m
	if st.primalWindow > 0 && st.primalWindow < total {
		return st.priceDevexWindow(total)
	}
	// Solve already forces workers to 1 below the parallel threshold.
	if st.workers <= 1 {
		best := -1
		bestScore := 0.0
		for j, r := range st.rvec {
			if r <= reducedTol {
				continue
			}
			if score := r * r / st.weights[j]; score > bestScore {
				best, bestScore = j, score
			}
		}
		return best
	}
	nChunks := st.workers * 4
	chunk := (total + nChunks - 1) / nChunks
	if chunk < devexGrain {
		chunk = devexGrain
		nChunks = (total + chunk - 1) / chunk
	}
	if cap(st.chunkBest) < nChunks {
		st.chunkBest = make([]int, nChunks)
		st.chunkScore = make([]float64, nChunks)
	}
	chunkBest := st.chunkBest[:nChunks]
	chunkScore := st.chunkScore[:nChunks]
	par.For(st.workers, nChunks, 1, func(c int) {
		lo, hi := c*chunk, (c+1)*chunk
		if hi > total {
			hi = total
		}
		best := -1
		bestScore := 0.0
		for j := lo; j < hi; j++ {
			r := st.rvec[j]
			if r <= reducedTol {
				continue
			}
			if score := r * r / st.weights[j]; score > bestScore {
				best, bestScore = j, score
			}
		}
		chunkBest[c], chunkScore[c] = best, bestScore
	})
	best := -1
	bestScore := 0.0
	for c := 0; c < nChunks; c++ {
		if chunkBest[c] >= 0 && chunkScore[c] > bestScore {
			best, bestScore = chunkBest[c], chunkScore[c]
		}
	}
	return best
}

// priceDevexWindow is the Devex scan over a rotating candidate window
// (PricingCandidates > 0): the stored reduced costs are maintained for every
// column by updateDevex, so restricting the argmax to st.primalWindow
// consecutive columns starting at st.primalCursor stays exact with respect
// to them — a narrower window trades scan time for possibly more pivots,
// never for wrong ones. A window with no improving column extends one window
// at a time (each a candidate refill) until a candidate appears or the whole
// range certifies apparent optimality (-1, after which the pivot loop's
// exact refresh re-checks as usual). Sequential and cursor-deterministic
// like priceDualWindow.
func (st *revisedState) priceDevexWindow(total int) int {
	start := st.primalCursor
	if start >= total {
		start = 0
	}
	scanned := 0
	chunkStart := start
	for scanned < total {
		n := st.primalWindow
		if scanned+n > total {
			n = total - scanned
		}
		best := -1
		bestScore := 0.0
		for k := 0; k < n; k++ {
			j := chunkStart + k
			if j >= total {
				j -= total
			}
			r := st.rvec[j]
			if r <= reducedTol {
				continue
			}
			if score := r * r / st.weights[j]; score > bestScore {
				best, bestScore = j, score
			}
		}
		scanned += n
		if best >= 0 {
			st.primalCursor = chunkStart
			return best
		}
		st.timers.candidateRefill()
		chunkStart += n
		if chunkStart >= total {
			chunkStart -= total
		}
	}
	return -1
}

// updateDevex performs the Forrest–Goldfarb update after choosing entering
// variable q and leaving basic position r: it computes the pivot row
// α = (B⁻¹)ᵣA, folds it into the stored reduced costs, and grows the
// reference weights. Must be called before the basis is modified. The
// per-column pass — the dominant per-pivot cost at paper scale — is chunked
// over the worker pool; each column's arithmetic is self-contained, so the
// result is identical for every worker count.
func (st *revisedState) updateDevex(q, r int) {
	st.btranUnit(r) // times itself as phBtran; the column pass below is phUpdate
	t0 := tick(st.timers)
	defer st.timers.add(phUpdate, t0)
	alphaQ := st.d[r] // pivot element
	if alphaQ == 0 {
		return // cannot happen for a legal pivot; guard anyway
	}
	rq := st.rvec[q]
	ratio := rq / alphaQ
	wq := st.weights[q]
	wLeave := wq / (alphaQ * alphaQ)
	if wLeave < 1 {
		wLeave = 1
	}
	beta := st.beta
	invAlphaQ := 1 / alphaQ
	colPtr, rowIdx, vals := st.p.ColPtr, st.p.Rows, st.p.Vals
	par.Ranges(st.workers, st.n+st.m, devexGrain, func(lo, hi int) {
		for j := lo; j < hi; j++ {
			if st.posOf[j] >= 0 || j == q {
				continue
			}
			var alpha float64
			if j < st.n {
				for k := colPtr[j]; k < colPtr[j+1]; k++ {
					alpha += beta[rowIdx[k]] * vals[k]
				}
			} else {
				// slack: α_j is just the β entry of the slack's row
				alpha = beta[j-st.n]
			}
			if alpha == 0 {
				continue
			}
			st.rvec[j] -= ratio * alpha
			t := alpha * invAlphaQ
			if w := t * t * wq; w > st.weights[j] {
				st.weights[j] = w
			}
		}
	})
	// entering becomes basic; leaving picks up the textbook post-pivot
	// reduced cost and weight.
	st.rvec[q] = 0
	st.weights[q] = 1
	leaving := st.basis[r]
	st.rvec[leaving] = -ratio
	st.weights[leaving] = wLeave
}

// --- Dantzig pricing ------------------------------------------------------

// dualRepairResult reports how a dual-repair phase ended.
type dualRepairResult int

const (
	// repairOK: the basis is primal feasible (possibly after zero pivots).
	repairOK dualRepairResult = iota
	// repairStalled: the pivot budget ran out or the infeasibility mass
	// stopped shrinking, even after a partial-warm cutover.
	repairStalled
	// repairUnbounded: a primal-infeasible row had no eligible entering
	// column in either pricing tier, or its FTRAN'd pivot disagreed with the
	// priced α — the dual is unbounded in that direction, which certifies
	// the bounds primal infeasible up to numerics.
	repairUnbounded
	// repairSingular: a mid-repair refactorization failed numerically.
	repairSingular
)

// repairStallFloor is the minimum stall window: the repair declares a stall
// only after max(repairStallFloor, m/2) consecutive pivots without a new
// infeasibility-mass minimum. The m/2 scaling matters — on the |U|=4000
// capacity workloads healthy repairs plateau (degenerate stretches, local
// mass oscillation) for several hundred pivots before breaking through, so a
// small fixed window would cut over mid-flight.
const repairStallFloor = 256

// dualRepair restores primal feasibility after a warm-start delta changed
// the right-hand side (or a removed basic column was substituted by a
// slack), using dual simplex pivots: pick a primal-infeasible row, price its
// pivot row, and bring in the entering variable that keeps the reduced costs
// non-positive. Starting from a (near-)optimal basis the dual values are
// feasible, so each pivot strictly improves the dual objective and the loop
// converges in a handful of pivots for a small delta — the reason warm
// re-solves beat cold ones.
//
// The leaving rule is dual steepest-edge when dse is set: maximize
// xB[r]²/w[r] where w[r] approximates ‖B⁻ᵀe_r‖², maintained by a
// Forrest–Goldfarb-style update from the FTRAN column each pivot and reset
// to the unit reference framework at entry and on mid-repair
// refactorization. Normalizing by the row norm picks the row whose
// infeasibility is large in the geometry of the dual step, not merely in
// raw units — on degenerate bases the un-normalized most-negative rule
// (dse == false, kept as the "maxinfeas" knob) repeatedly drains
// near-parallel rows and needs far more pivots for large deltas.
//
// The duals are maintained incrementally: one exact BTRAN at entry (and
// after each refactorization), then y' = y + γβ per pivot with γ the priced
// dual step and β the already-computed BTRAN'd pivot row — the per-pivot
// dense Bᵀy = c_B solve this replaces was a third of the repair's wall time
// on the capacity-shrink workloads.
//
// budget bounds the pivots per attempt, and a stall detector watches the
// primal infeasibility mass Σ max(0, −x_B): if no new minimum appears over
// the stall window, the attempt is cut short. Either trigger causes one
// partial-warm cutover — keep the basis, refactorize it (shedding the eta
// chain and its round-off), re-price the certificate with an exact BTRAN,
// reset the steepest-edge framework, and grant a fresh budget — before the
// repair gives up for good. The cutover preserves all progress the repair
// made, where the previous policy discarded everything for an all-slack
// cold start.
//
// Returns the pivot count and how the phase ended; on anything but repairOK
// the caller falls back to a cold solve, so repair failure costs
// correctness nothing.
func (st *revisedState) dualRepair(budget, refactorEvery int, dse bool) (int, dualRepairResult) {
	if dse {
		st.dseW = resizeF(st.dseW, st.m)
		for i := range st.dseW {
			st.dseW[i] = 1
		}
	}
	st.btran() // exact duals for the incremental y and red updates below
	if st.usesDualRed() {
		st.refreshDualRed()
	}
	st.dualCursor = 0
	stallWindow := st.m / 2
	if stallWindow < repairStallFloor {
		stallWindow = repairStallFloor
	}
	budgetLimit := budget
	bestMass := math.Inf(1)
	sinceImprove := 0
	cutovers := 0
	for pivots := 0; ; pivots++ {
		// Leaving row. Both rules break ties on the lowest basis position
		// (strict improvement required), so the choice is deterministic.
		r := -1
		if dse {
			best := 0.0
			for i, x := range st.xB {
				if x < -warmFeasTol {
					if score := x * x / st.dseW[i]; score > best {
						best, r = score, i
					}
				}
			}
		} else {
			worst := -warmFeasTol
			for i, x := range st.xB {
				if x < worst {
					worst, r = x, i
				}
			}
		}
		if r < 0 {
			// clamp repair-tolerance negatives so the primal ratio test
			// starts from a feasible point
			for i, x := range st.xB {
				if x < 0 {
					st.xB[i] = 0
				}
			}
			return pivots, repairOK
		}
		if pivots >= budgetLimit || sinceImprove >= stallWindow {
			if pivots >= budgetLimit {
				st.timers.budgetExhausted()
			}
			if cutovers >= 1 {
				return pivots, repairStalled
			}
			// Partial-warm cutover: keep the basis and every pivot of
			// progress, shed the eta chain and dual drift, retry once.
			cutovers++
			st.timers.partialWarmCutover()
			if st.refactorize() != nil {
				return pivots, repairSingular
			}
			st.btran()
			if st.usesDualRed() {
				st.refreshDualRed()
			}
			if dse {
				for i := range st.dseW {
					st.dseW[i] = 1
				}
			}
			budgetLimit = pivots + budget
			bestMass = math.Inf(1)
			sinceImprove = 0
		}

		// price row r: α_j = (B⁻¹)_r·a_j for every nonbasic j against the
		// incrementally maintained duals
		st.btranUnit(r)
		q := st.priceDual()
		if q < 0 {
			return pivots, repairUnbounded
		}
		gamma := st.dualGamma

		st.ftran(q)
		dr := st.d[r]
		if dr > -pivotTol {
			// pivot row disagrees with its priced α: bail out
			return pivots, repairUnbounded
		}
		if dse {
			// Forrest–Goldfarb-style steepest-edge update from the FTRAN
			// column d = B⁻¹a_q, before the basis changes: position i's norm
			// grows by its share of the pivot row, and the pivot row's norm
			// rescales by 1/dr². The max() guards keep the approximation a
			// valid upper-bound reference (weights never collapse below the
			// framework), the standard safeguard for Devex-style updates.
			// (The exact Forrest–Goldfarb update — true w_r = ‖β‖² plus a
			// τ = B⁻¹β FTRAN — was measured here and LOST: from a
			// unit-initialized reference it needed ~19% more pivots on the
			// capacity-shrink repairs and paid an extra solve per pivot; the
			// grow-only approximation's conservatism is what earns its keep.)
			wr := st.dseW[r]
			invDr := 1 / dr
			for i, v := range st.d {
				if v != 0 && i != r {
					t := v * invDr
					if w := t * t * wr; w > st.dseW[i] {
						st.dseW[i] = w
					}
				}
			}
			wNew := wr * invDr * invDr
			if wNew < 1 {
				wNew = 1
			}
			st.dseW[r] = wNew
		}
		theta := st.xB[r] / dr // xB[r] < 0, dr < 0 ⇒ θ > 0
		// The update sweep folds the post-pivot infeasibility-mass
		// accumulation (Σ max(0, −x_B), read by the stall detector below)
		// into the same pass; position r's term is appended after the loop.
		mass := 0.0
		for i := 0; i < st.m; i++ {
			x := st.xB[i]
			if v := st.d[i]; v != 0 && i != r {
				x -= theta * v
				st.xB[i] = x
			}
			if x < 0 && i != r {
				mass -= x
			}
		}
		st.xB[r] = theta
		if theta < 0 {
			mass -= theta
		}
		// dual step: y' = y + γβ keeps red_q' = 0 for the entering column
		// without a fresh Bᵀy solve, and red' = red − γ·α folds the same
		// step into the maintained reduced costs over exactly the α values
		// the pricing pass produced (everything it did not visit has α = 0;
		// basic slots pick up garbage nobody reads). Exact recompute happens
		// at the next refactorization, so round-off cannot accumulate past
		// one eta chain. Windowed pricing maintains nothing — it reprices on
		// demand.
		if gamma != 0 {
			beta := st.beta
			for i, v := range beta {
				if v != 0 {
					st.y[i] += gamma * v
				}
			}
			if st.usesDualRed() {
				if st.candDense {
					red, al := st.dualRedVec, st.alphaVec
					for j := range red {
						red[j] -= gamma * al[j]
					}
				} else {
					for _, j32 := range st.candList {
						st.dualRedVec[j32] -= gamma * st.alphaVec[j32]
					}
				}
			}
		}
		leaving := st.basis[r]
		st.posOf[leaving] = -1
		st.basis[r] = q
		st.posOf[q] = r
		st.cB[r] = st.objCoef(q)
		if st.usesDualRed() {
			// the entering column is basic now (red exactly 0); the leaving
			// one picks up the textbook post-pivot reduced cost −γ
			st.dualRedVec[q] = 0
			st.dualRedVec[leaving] = -gamma
		}
		st.pushEta(r)
		st.timers.repairPivotDone()
		if mass < bestMass*(1-1e-6) {
			bestMass = mass
			sinceImprove = 0
		} else {
			sinceImprove++
		}
		if len(st.etas) >= refactorEvery {
			if st.refactorize() != nil {
				return pivots, repairSingular
			}
			st.btran() // fresh exact duals for the next incremental stretch
			if st.usesDualRed() {
				st.refreshDualRed()
			}
			if dse {
				// fresh reference framework: the norms tracked the old
				// product-form basis representation (keeping the learned
				// weights across the refactorization was measured and costs
				// ~18% more pivots on the capacity-shrink repair)
				for i := range st.dseW {
					st.dseW[i] = 1
				}
			}
		}
	}
}

// priceDual runs the dual ratio test with full candidate coverage: among
// columns with pivot-row entry α_j < -pivotTol (computed against st.beta,
// the BTRAN'd pivot row), pick the one minimizing red_j/α_j, with a pivotTol
// tolerance band broken toward the steepest α.
//
// The pass exploits that only columns intersecting β's row support can have
// α_j ≠ 0: it scatters α through the row-major mirror of A — for each row r
// with β_r ≠ 0 (ascending), α_j += β_r·A[r,j] over the row — instead of a
// dot product per column, so its cost is proportional to the nonzeros of
// β's rows rather than to all of A, and columns the pivot row cannot touch
// are never visited at all. Reduced costs come from the maintained
// st.dualRedVec (exact-refreshed at repair entry and every refactorization,
// updated per pivot from the same α values this pass produces), which
// eliminates the second dot product per column the fused scan used to pay
// (measured: computing them on demand per candidate was ~40% slower — the
// short column dots chase pointers, the maintained read streams). The
// candidate list is epoch-stamped, so the scratch needs no O(n) clearing
// between pivots; when β is dense the whole pass switches to sequential
// full-range sweeps instead (priceDualDense). The pass is sequential —
// worker-count invariance is structural — and β is bit-identical whichever
// triangular kernel produced it, so the hypersparse threshold cannot move a
// pivot.
//
// Candidates split into two tiers. Columns whose reduced cost is within the
// dual-feasibility tolerance (red ≤ reducedTol, negatives and boundary
// stragglers) run the ordinary ratio test. Columns that are outright dual
// infeasible — typically a delta's freshly appended columns, whose positive
// reduced cost the entering dual prices have not met yet — are kept out of
// the ratio test entirely: their ratio red/α is negative, so the min-ratio
// rule would pick them eagerly at ratio ≈ 0, and their entry reverses the
// dual objective and re-breaks primal feasibility elsewhere (measured on the
// |U|=4000 bid-churn delta this exact poisoning diverged the repair: the
// infeasibility mass oscillated up to 8·10⁷ and the repair burned its whole
// budget before falling back cold). They are tracked as a second-tier
// fallback — steepest α wins — used only when no feasible-tier candidate
// exists anywhere, so a row whose only eligible entering columns are dual
// infeasible still pivots instead of stalling the repair.
//
// The winner's reduced cost and α are recorded in st.dualGamma as the dual
// step length γ = red_q/α_q, which dualRepair uses to update the duals
// (y' = y + γβ) incrementally instead of re-solving Bᵀy = c_B every pivot.
func (st *revisedState) priceDual() int {
	t0 := tick(st.timers)
	defer st.timers.add(phPricing, t0)
	total := st.n + st.m
	if st.dualWindow > 0 && st.dualWindow < total {
		return st.priceDualWindow(total)
	}
	st.buildARows()
	beta := st.beta
	bnnz := 0
	for _, v := range beta {
		if v != 0 {
			bnnz++
		}
	}
	// Mode pick: past ~1/8 density the epoch-stamp bookkeeping costs more
	// than clearing and sweeping the full column range with purely
	// sequential accesses. β is bit-identical whichever triangular kernel
	// produced it, so the mode — like everything downstream of it — cannot
	// depend on the hypersparse threshold or the worker count.
	if bnnz*8 > st.m {
		return st.priceDualDense(total)
	}
	st.candDense = false
	epoch := st.beginCandidates(total)
	alphaVec, stamp := st.alphaVec, st.candStamp
	cand := st.candList[:0]
	for r := 0; r < st.m; r++ {
		br := beta[r]
		if br == 0 {
			continue
		}
		for t := st.aRowPtr[r]; t < st.aRowPtr[r+1]; t++ {
			j := st.aRowIdx[t]
			if stamp[j] != epoch {
				stamp[j] = epoch
				alphaVec[j] = 0
				cand = append(cand, j)
			}
			alphaVec[j] += br * st.aRowVal[t]
		}
		sj := int32(st.n + r) // the row's slack: α is β_r itself
		stamp[sj] = epoch
		alphaVec[sj] = br
		cand = append(cand, sj)
	}
	st.candList = cand
	q, relax := -1, -1
	var bestRatio, bestAlpha, bestRed float64
	var relaxAlpha, relaxRed float64
	for _, j32 := range cand {
		j := int(j32)
		if st.posOf[j] >= 0 {
			continue
		}
		alpha := alphaVec[j]
		if alpha >= -pivotTol {
			continue
		}
		red := st.dualRedVec[j]
		if red > reducedTol {
			if relax < 0 || alpha < relaxAlpha {
				relax, relaxAlpha, relaxRed = j, alpha, red
			}
			continue
		}
		rc := red
		if rc > 0 {
			rc = 0 // boundary stragglers within tolerance: ratio 0
		}
		ratio := rc / alpha // ≥ 0
		if q < 0 || ratio < bestRatio-pivotTol ||
			(ratio <= bestRatio+pivotTol && alpha < bestAlpha) {
			q, bestRatio, bestAlpha, bestRed = j, ratio, alpha, red
		}
	}
	if q < 0 && relax >= 0 {
		// No feasible-tier candidate anywhere: fall back to the steepest
		// dual-infeasible column rather than stalling the whole repair.
		q, bestAlpha, bestRed = relax, relaxAlpha, relaxRed
	}
	if q >= 0 {
		st.dualGamma = bestRed / bestAlpha
	}
	return q
}

// priceDualDense is priceDual for a dense pivot row: the same α scatter and
// two-tier ratio test, minus the candidate bookkeeping. Every auxiliary
// access (alphaVec, posOf, dualRedVec) runs as a sequential sweep over the
// full column range, which at ≥1/8 β density is cheaper than chasing an
// almost-complete candidate list through the caches. The α accumulation
// visits the same row entries in the same ascending order from the same zero
// start as the stamped pass, so the two modes produce bit-identical α — the
// mode flips per pivot on β's density without ever moving a result.
func (st *revisedState) priceDualDense(total int) int {
	st.beginCandidates(total) // sizing only; the epoch goes unused
	st.candDense = true
	alphaVec := st.alphaVec
	for i := range alphaVec {
		alphaVec[i] = 0
	}
	beta := st.beta
	for r := 0; r < st.m; r++ {
		br := beta[r]
		if br == 0 {
			continue
		}
		lo, hi := st.aRowPtr[r], st.aRowPtr[r+1]
		idx := st.aRowIdx[lo:hi]
		val := st.aRowVal[lo:hi]
		for i, j := range idx {
			alphaVec[j] += br * val[i]
		}
		alphaVec[st.n+r] = br // the row's slack
	}
	q, relax := -1, -1
	var bestRatio, bestAlpha, bestRed float64
	var relaxAlpha, relaxRed float64
	for j := 0; j < total; j++ {
		alpha := alphaVec[j]
		if alpha >= -pivotTol {
			continue
		}
		if st.posOf[j] >= 0 {
			continue
		}
		red := st.dualRedVec[j]
		if red > reducedTol {
			if relax < 0 || alpha < relaxAlpha {
				relax, relaxAlpha, relaxRed = j, alpha, red
			}
			continue
		}
		rc := red
		if rc > 0 {
			rc = 0 // boundary stragglers within tolerance: ratio 0
		}
		ratio := rc / alpha // ≥ 0
		if q < 0 || ratio < bestRatio-pivotTol ||
			(ratio <= bestRatio+pivotTol && alpha < bestAlpha) {
			q, bestRatio, bestAlpha, bestRed = j, ratio, alpha, red
		}
	}
	if q < 0 && relax >= 0 {
		q, bestAlpha, bestRed = relax, relaxAlpha, relaxRed
	}
	if q >= 0 {
		st.dualGamma = bestRed / bestAlpha
	}
	return q
}

// beginCandidates sizes the epoch-stamped candidate scratch for a pricing
// pass over total columns and opens a fresh epoch, so the previous pivot's
// α values and candidate stamps expire without any O(n) clearing.
func (st *revisedState) beginCandidates(total int) int32 {
	if cap(st.alphaVec) < total {
		st.alphaVec = make([]float64, total)
		st.candStamp = make([]int32, total)
		st.candEpoch = 0
	}
	st.alphaVec = st.alphaVec[:total]
	st.candStamp = st.candStamp[:total]
	st.candEpoch++
	if st.candEpoch == 0 { // wrapped: stale stamps could collide
		for i := range st.candStamp {
			st.candStamp[i] = -1
		}
		st.candEpoch = 1
	}
	return st.candEpoch
}

// buildARows constructs (or reuses) the row-major mirror of the structural
// matrix for the scatter pricing pass. One counting pass plus one scatter
// pass over the nonzeros; columns come out ascending within each row because
// the scatter visits them in ascending order. Invalidated by rebind and by
// structural deltas (column removal/addition) — bounds and objective deltas
// leave the pattern and values untouched.
func (st *revisedState) buildARows() {
	if st.aRowsOK {
		return
	}
	p := st.p
	nnz := len(p.Rows)
	st.aRowPtr = resize32(st.aRowPtr, st.m+1)
	for i := range st.aRowPtr {
		st.aRowPtr[i] = 0
	}
	for _, r := range p.Rows {
		st.aRowPtr[r+1]++
	}
	st.aRowCur = resize32(st.aRowCur, st.m)
	for i := 0; i < st.m; i++ {
		st.aRowPtr[i+1] += st.aRowPtr[i]
		st.aRowCur[i] = st.aRowPtr[i]
	}
	st.aRowIdx = resize32(st.aRowIdx, nnz)
	st.aRowVal = resizeF(st.aRowVal, nnz)
	for j := 0; j < st.n; j++ {
		for t := p.ColPtr[j]; t < p.ColPtr[j+1]; t++ {
			r := p.Rows[t]
			slot := st.aRowCur[r]
			st.aRowCur[r]++
			st.aRowIdx[slot] = int32(j)
			st.aRowVal[slot] = p.Vals[t]
		}
	}
	st.aRowsOK = true
}

// usesDualRed reports whether the dual pricing passes read the maintained
// st.dualRedVec: full-coverage pricing (scatter or dense) does, the rotating
// window computes reduced costs on demand instead — so windowed repairs skip
// the O(n) exact refreshes entirely.
func (st *revisedState) usesDualRed() bool {
	return st.dualWindow == 0 || st.dualWindow >= st.n+st.m
}

// refreshDualRed recomputes the maintained dual reduced costs exactly from
// the current duals: red_j = c_j − yᵀa_j for nonbasic columns (basic slots
// are left as-is — they are never read, and the incremental updates scribble
// on them freely). Called whenever the duals themselves are recomputed
// exactly (repair entry, refactorizations), so the incremental red updates
// never drift further than one eta chain.
func (st *revisedState) refreshDualRed() {
	t0 := tick(st.timers)
	total := st.n + st.m
	st.dualRedVec = resizeF(st.dualRedVec, total)
	for j := 0; j < total; j++ {
		if st.posOf[j] < 0 {
			st.dualRedVec[j] = st.reducedCost(j)
		}
	}
	st.timers.add(phPricing, t0)
}

// priceDualWindow is priceDual over a rotating candidate window: the same
// fused two-tier scan, restricted to st.dualWindow consecutive columns
// starting at st.dualCursor. A window that yields a feasible-tier candidate
// answers the ratio test from those columns alone — the primal finish after
// repair restores whatever optimality the narrower view gave up, and any
// out-of-window column whose reduced cost the shortened dual step turns
// negative simply becomes a ratio-0 candidate when its window comes around.
// On exhaustion (no feasible candidate in the window) the scan extends one
// window at a time — each extension counted as a candidate refill — until a
// candidate appears or the whole range has been covered, which is exactly
// the full scan and certifies the relaxed-tier fallback the same way. The
// cursor parks on the window that produced the winner, so productive
// stretches stay hot and barren ones rotate out. Purely sequential, hence
// trivially worker-count invariant; the cursor walk is a deterministic
// function of the scan results.
//
// Like the scatter pass, the window computes each scanned column's α against
// β directly and its reduced cost on demand against the maintained duals, so
// every quantity it prices with is exact — narrowing the window trades pivot
// quality (a shortened dual step), never pricing accuracy.
func (st *revisedState) priceDualWindow(total int) int {
	beta := st.beta
	start := st.dualCursor
	if start >= total {
		start = 0
	}
	q, relax := -1, -1
	var bestRatio, bestAlpha, bestRed float64
	var relaxAlpha, relaxRed float64
	scanned := 0
	chunkStart := start
	for scanned < total {
		n := st.dualWindow
		if scanned+n > total {
			n = total - scanned
		}
		for k := 0; k < n; k++ {
			j := chunkStart + k
			if j >= total {
				j -= total
			}
			if st.posOf[j] >= 0 {
				continue
			}
			var alpha float64
			if j < st.n {
				for t := st.p.ColPtr[j]; t < st.p.ColPtr[j+1]; t++ {
					alpha += beta[st.p.Rows[t]] * st.p.Vals[t]
				}
			} else {
				alpha = beta[j-st.n]
			}
			if alpha >= -pivotTol {
				continue
			}
			red := st.reducedCost(j)
			if red > reducedTol {
				if relax < 0 || alpha < relaxAlpha {
					relax, relaxAlpha, relaxRed = j, alpha, red
				}
				continue
			}
			rc := red
			if rc > 0 {
				rc = 0 // boundary stragglers within tolerance: ratio 0
			}
			ratio := rc / alpha // ≥ 0
			if q < 0 || ratio < bestRatio-pivotTol ||
				(ratio <= bestRatio+pivotTol && alpha < bestAlpha) {
				q, bestRatio, bestAlpha, bestRed = j, ratio, alpha, red
			}
		}
		scanned += n
		if q >= 0 {
			st.dualCursor = chunkStart
			st.dualGamma = bestRed / bestAlpha
			return q
		}
		st.timers.candidateRefill()
		chunkStart += n
		if chunkStart >= total {
			chunkStart -= total
		}
	}
	if relax >= 0 {
		// Full circle with no feasible-tier candidate: same certificate as
		// the full scan's relaxed fallback.
		st.dualGamma = relaxRed / relaxAlpha
		return relax
	}
	return -1
}

// pricePartial scans a window of variables starting at cursor and returns
// the best improving one; if the window has none it widens to a full pass,
// which also certifies optimality (return -1).
func (st *revisedState) pricePartial(cursor, window int) (q, next int) {
	t0 := tick(st.timers)
	defer st.timers.add(phPricing, t0)
	total := st.n + st.m
	best, bestRed := -1, reducedTol
	scanned := 0
	i := cursor
	for scanned < total {
		if st.posOf[i] < 0 {
			if red := st.reducedCost(i); red > bestRed {
				best, bestRed = i, red
			}
		}
		scanned++
		i++
		if i == total {
			i = 0
		}
		if scanned >= window && best >= 0 {
			return best, i
		}
	}
	return best, i
}

// priceBland returns the lowest-index variable with positive reduced cost
// (used during anti-cycling episodes).
func (st *revisedState) priceBland() int {
	t0 := tick(st.timers)
	defer st.timers.add(phPricing, t0)
	for q := 0; q < st.n+st.m; q++ {
		if st.posOf[q] >= 0 {
			continue
		}
		if st.reducedCost(q) > reducedTol {
			return q
		}
	}
	return -1
}

// extract assembles the optimal solution from the final basis. X and Y are
// views into state-owned buffers, reused by the next solve on this state.
func (st *revisedState) extract(iters int) *Solution {
	st.xOut = resizeF(st.xOut, st.n)
	x := st.xOut
	for i := range x {
		x[i] = 0
	}
	for i, v := range st.basis {
		if v < st.n {
			val := st.xB[i]
			if val < 0 && val > -1e-9 {
				val = 0
			}
			x[v] = val
		}
	}
	obj := 0.0
	for j, c := range st.p.C {
		obj += c * x[j]
	}
	st.yOut = resizeF(st.yOut, st.m)
	y := st.yOut
	copy(y, st.y)
	for i := range y {
		if y[i] < 0 && y[i] > -1e-9 {
			y[i] = 0
		}
	}
	return &Solution{Status: Optimal, X: x, Y: y, Objective: obj, Iterations: iters}
}
