package obs

// Exposition-format parsing: enough of the Prometheus text format (0.0.4)
// to serve three consumers — the metrics-lint test step, igepa-loadgen's
// end-of-run server-side summary, and the router's /cluster/metrics fan-in
// (which re-labels and re-exports each shardd's scrape). Values are kept as
// raw strings so a parse→relabel→re-emit round trip never reformats a
// float; the loadgen summary parses on demand.

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
)

// Sample is one parsed series line.
type Sample struct {
	// Name is the full sample name, including histogram suffixes
	// (_bucket/_sum/_count).
	Name string
	// Labels is the raw text between the braces ("" when unlabeled).
	Labels string
	// Value is the raw value string, preserved verbatim.
	Value string
}

// Float parses the sample value.
func (s Sample) Float() (float64, error) {
	switch s.Value {
	case "+Inf":
		return strconv.ParseFloat("+inf", 64)
	case "-Inf":
		return strconv.ParseFloat("-inf", 64)
	}
	return strconv.ParseFloat(s.Value, 64)
}

// Label returns the value of one label key ("" when absent).
func (s Sample) Label(key string) string {
	rest := s.Labels
	for rest != "" {
		k, v, tail, err := nextLabel(rest)
		if err != nil {
			return ""
		}
		if k == key {
			return v
		}
		rest = tail
	}
	return ""
}

// Family is one parsed metric family: the TYPE/HELP header plus its
// samples, in input order.
type Family struct {
	Name    string
	Help    string
	Type    string // counter, gauge, histogram, summary, untyped ("" when no TYPE line)
	Samples []Sample
}

// ParseFamilies reads one exposition payload. Samples with no preceding
// TYPE line are grouped into an untyped family under their base name.
func ParseFamilies(r io.Reader) ([]Family, error) {
	var fams []*Family
	by := map[string]*Family{}
	get := func(name string) *Family {
		if f, ok := by[name]; ok {
			return f
		}
		f := &Family{Name: name}
		fams = append(fams, f)
		by[name] = f
		return f
	}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 64<<10), 1<<20)
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimRight(sc.Text(), " \t")
		switch {
		case text == "":
			continue
		case strings.HasPrefix(text, "# HELP "):
			rest := text[len("# HELP "):]
			name, help, _ := strings.Cut(rest, " ")
			if name == "" {
				return nil, fmt.Errorf("obs: line %d: HELP without a metric name", line)
			}
			get(name).Help = help
		case strings.HasPrefix(text, "# TYPE "):
			rest := text[len("# TYPE "):]
			name, typ, ok := strings.Cut(rest, " ")
			if !ok || name == "" {
				return nil, fmt.Errorf("obs: line %d: malformed TYPE line %q", line, text)
			}
			f := get(name)
			if f.Type != "" {
				return nil, fmt.Errorf("obs: line %d: duplicate TYPE for %q", line, name)
			}
			f.Type = typ
		case strings.HasPrefix(text, "#"):
			continue // comment
		default:
			s, err := parseSample(text)
			if err != nil {
				return nil, fmt.Errorf("obs: line %d: %w", line, err)
			}
			f := get(baseName(s.Name, fams))
			f.Samples = append(f.Samples, s)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	out := make([]Family, len(fams))
	for i, f := range fams {
		out[i] = *f
	}
	return out, nil
}

// baseName maps a sample name to its family name: histogram/summary
// suffixes fold into a declared parent family when one exists.
func baseName(name string, fams []*Family) string {
	for _, suf := range []string{"_bucket", "_sum", "_count"} {
		if base, ok := strings.CutSuffix(name, suf); ok {
			for _, f := range fams {
				if f.Name == base && (f.Type == "histogram" || f.Type == "summary") {
					return base
				}
			}
		}
	}
	return name
}

func parseSample(text string) (Sample, error) {
	var s Sample
	brace := strings.IndexByte(text, '{')
	if brace >= 0 {
		end := strings.LastIndexByte(text, '}')
		if end < brace {
			return s, fmt.Errorf("unbalanced braces in %q", text)
		}
		s.Name = text[:brace]
		s.Labels = text[brace+1 : end]
		s.Value = strings.TrimSpace(text[end+1:])
	} else {
		name, val, ok := strings.Cut(text, " ")
		if !ok {
			return s, fmt.Errorf("sample without value: %q", text)
		}
		s.Name = name
		s.Value = strings.TrimSpace(val)
	}
	// A timestamp after the value is legal exposition; strip it.
	if i := strings.IndexByte(s.Value, ' '); i >= 0 {
		s.Value = s.Value[:i]
	}
	if s.Name == "" || s.Value == "" {
		return s, fmt.Errorf("malformed sample %q", text)
	}
	return s, nil
}

// nextLabel pops one k="v" pair off a raw label block, returning the
// unescaped value and the remaining tail (past the separating comma).
func nextLabel(raw string) (k, v, tail string, err error) {
	eq := strings.IndexByte(raw, '=')
	if eq < 0 {
		return "", "", "", fmt.Errorf("obs: label block %q: missing '='", raw)
	}
	k = strings.TrimSpace(raw[:eq])
	rest := raw[eq+1:]
	if len(rest) == 0 || rest[0] != '"' {
		return "", "", "", fmt.Errorf("obs: label %q: unquoted value", k)
	}
	rest = rest[1:]
	var b strings.Builder
	for i := 0; i < len(rest); i++ {
		switch rest[i] {
		case '\\':
			if i+1 >= len(rest) {
				return "", "", "", fmt.Errorf("obs: label %q: dangling escape", k)
			}
			i++
			switch rest[i] {
			case 'n':
				b.WriteByte('\n')
			default:
				b.WriteByte(rest[i])
			}
		case '"':
			tail = strings.TrimPrefix(strings.TrimSpace(rest[i+1:]), ",")
			return k, b.String(), strings.TrimSpace(tail), nil
		default:
			b.WriteByte(rest[i])
		}
	}
	return "", "", "", fmt.Errorf("obs: label %q: unterminated value", k)
}

// labelKeys returns the sorted label keys of a raw block.
func labelKeys(raw string) ([]string, error) {
	var keys []string
	for raw != "" {
		k, _, tail, err := nextLabel(raw)
		if err != nil {
			return nil, err
		}
		keys = append(keys, k)
		raw = tail
	}
	sort.Strings(keys)
	return keys, nil
}
