package lp

import (
	"math"
	"testing"

	"github.com/ebsn/igepa/internal/xrand"
)

// canonBits maps a float to its bit pattern with signed zeros collapsed:
// the hypersparse kernels may leave +0 where the dense sweep computed −0
// (an unreached position is never written rather than multiplied out), and
// no consumer distinguishes them.
func canonBits(v float64) uint64 {
	return math.Float64bits(v + 0)
}

// randomBasis builds a random nonsingular lower-bandish sparse basis: a
// permuted identity diagonal plus a few random off-diagonal entries per
// column, the shape triangular solves meet in practice.
func randomBasis(rng *xrand.RNG, m int) []Column {
	cols := make([]Column, m)
	perm := rng.Perm(m)
	for j := 0; j < m; j++ {
		rows := []int{perm[j]}
		vals := []float64{1 + rng.Float64()}
		for k := 0; k < rng.Intn(3); k++ {
			r := rng.Intn(m)
			if r == perm[j] {
				continue
			}
			dup := false
			for _, seen := range rows {
				if seen == r {
					dup = true
					break
				}
			}
			if !dup {
				rows = append(rows, r)
				vals = append(vals, 0.25*(rng.Float64()-0.5))
			}
		}
		cols[j] = Column{Rows: rows, Vals: vals}
	}
	return cols
}

// TestHypersparseSolveMatchesDense pins the tentpole bit-identity contract:
// for sparse right-hand sides, solveBHyper/solveBTHyper must produce exactly
// the bits of the dense sequential sweeps (modulo zero sign), report the
// true nonzero support, and abort cleanly — scratch re-zeroed, output
// untouched — when the symbolic reach exceeds the cap.
func TestHypersparseSolveMatchesDense(t *testing.T) {
	rng := xrand.New(97)
	for trial := 0; trial < 50; trial++ {
		m := 20 + rng.Intn(180)
		cols := randomBasis(rng, m)
		f, err := luFactorize(m, cols)
		if err != nil {
			t.Fatalf("trial %d: factorize: %v", trial, err)
		}
		h := &hyperReach{}
		work := make([]float64, m)
		dense := make([]float64, m)
		sparse := make([]float64, m)

		// FTRAN: scattered RHS with 1–3 entries.
		nz := 1 + rng.Intn(3)
		rows := make([]int32, 0, nz)
		vals := make([]float64, 0, nz)
		for len(rows) < nz {
			r := int32(rng.Intn(m))
			dup := false
			for _, seen := range rows {
				if seen == r {
					dup = true
					break
				}
			}
			if !dup {
				rows = append(rows, r)
				vals = append(vals, rng.Float64()*2-1)
			}
		}
		f.solveB(rows, vals, dense, work)
		if !f.solveBHyper(h, rows, vals, sparse, work, m) {
			t.Fatalf("trial %d: solveBHyper aborted below an m-step cap", trial)
		}
		for i := range work {
			if work[i] != 0 {
				t.Fatalf("trial %d: solveBHyper left scratch dirty at %d", trial, i)
			}
		}
		for i := range dense {
			if canonBits(dense[i]) != canonBits(sparse[i]) {
				t.Fatalf("trial %d: ftran row %d: dense %x sparse %x",
					trial, i, math.Float64bits(dense[i]), math.Float64bits(sparse[i]))
			}
		}

		// BTRAN: dense c with 1–2 nonzero positions, seeds listing them.
		c := make([]float64, m)
		var seeds []int32
		for k := 0; k < 1+rng.Intn(2); k++ {
			p := rng.Intn(m)
			if c[p] == 0 {
				c[p] = rng.Float64()*2 - 1
				seeds = append(seeds, int32(p))
			}
		}
		f.solveBT(c, dense, work)
		var support []int32
		if !f.solveBTHyper(h, c, sparse, work, seeds, &support, m) {
			t.Fatalf("trial %d: solveBTHyper aborted below an m-step cap", trial)
		}
		for i := range work {
			if work[i] != 0 {
				t.Fatalf("trial %d: solveBTHyper left scratch dirty at %d", trial, i)
			}
		}
		onSupport := make([]bool, m)
		for _, r := range support {
			onSupport[r] = true
		}
		for i := range dense {
			if canonBits(dense[i]) != canonBits(sparse[i]) {
				t.Fatalf("trial %d: btran row %d: dense %x sparse %x",
					trial, i, math.Float64bits(dense[i]), math.Float64bits(sparse[i]))
			}
			if sparse[i] != 0 && !onSupport[i] {
				t.Fatalf("trial %d: btran support misses nonzero row %d", trial, i)
			}
			if sparse[i] == 0 && onSupport[i] {
				t.Fatalf("trial %d: btran support lists zero row %d", trial, i)
			}
		}

		// Abort path: a cap of 1 cannot cover any nontrivial reach; the
		// kernels must decline without corrupting scratch or output. (A
		// single-seed, single-step reach may legitimately succeed at cap 1,
		// in which case it rewrites the same bits.)
		if f.solveBHyper(h, rows, vals, sparse, work, 1) && len(rows) > 1 {
			t.Fatalf("trial %d: cap 1 accepted a %d-seed ftran", trial, len(rows))
		}
		for i := range work {
			if work[i] != 0 {
				t.Fatalf("trial %d: aborted solveBHyper left scratch dirty at %d", trial, i)
			}
		}
		ref := append([]float64(nil), sparse...)
		if !f.solveBTHyper(h, c, sparse, work, seeds, nil, 1) {
			for i := range sparse {
				if sparse[i] != ref[i] {
					t.Fatalf("trial %d: aborted solveBTHyper touched out[%d]", trial, i)
				}
			}
			for i := range work {
				if work[i] != 0 {
					t.Fatalf("trial %d: aborted solveBTHyper left scratch dirty at %d", trial, i)
				}
			}
		}
	}
}

// TestHypersparseThresholdInvariance pins the determinism contract: the
// HypersparseThreshold knob moves triangular solves between the symbolic-
// reach kernels and the dense sweeps, but the solution — every bit of X, Y
// and the pivot trajectory — must not move. Counters prove both regimes
// actually ran.
func TestHypersparseThresholdInvariance(t *testing.T) {
	rng := xrand.New(61)
	p := randomPacking(rng, 200, 40, 6)
	var d ProblemDelta
	for j := 0; j < 30; j += 3 {
		d.RemoveCols = append(d.RemoveCols, j)
	}
	for k := 0; k < 10; k++ {
		d.AddCols = append(d.AddCols, Column{
			Rows: []int{rng.Intn(200), 200 + rng.Intn(40)}, Vals: []float64{1, 1}})
		d.AddC = append(d.AddC, rng.Float64())
	}
	d.SetB = append(d.SetB,
		BoundChange{Row: 210, B: 0},
		BoundChange{Row: 215, B: math.Max(0, p.B[215]-2)})

	run := func(thr float64) (*Solution, PhaseTimers) {
		tm := &PhaseTimers{}
		s := NewSolver(Revised{HypersparseThreshold: thr, Timers: tm})
		defer s.Release()
		if _, err := s.Solve(p); err != nil {
			t.Fatalf("thr=%v: %v", thr, err)
		}
		sol, err := s.Resolve(d)
		if err != nil {
			t.Fatalf("thr=%v: %v", thr, err)
		}
		return sol, *tm
	}

	refSol, _ := run(0) // 0 = default threshold
	sawHyper, sawDense := false, false
	for _, thr := range []float64{0.001, 0.05, 0.5, 1} {
		sol, tm := run(thr)
		if sol.Objective != refSol.Objective || sol.Iterations != refSol.Iterations {
			t.Fatalf("thr=%v: objective/pivots differ from default threshold", thr)
		}
		for i := range sol.X {
			if canonBits(sol.X[i]) != canonBits(refSol.X[i]) {
				t.Fatalf("thr=%v: X[%d] differs", thr, i)
			}
		}
		for i := range sol.Y {
			if canonBits(sol.Y[i]) != canonBits(refSol.Y[i]) {
				t.Fatalf("thr=%v: Y[%d] differs", thr, i)
			}
		}
		hyper := tm.HypersparseFtran + tm.HypersparseBtran
		if thr == 0.001 && hyper != 0 {
			t.Fatalf("thr=%v: expected all-dense solves, got %d hypersparse", thr, hyper)
		}
		if hyper > 0 {
			sawHyper = true
		} else {
			sawDense = true
		}
	}
	if !sawHyper || !sawDense {
		t.Fatalf("threshold sweep did not exercise both kernel regimes (hyper=%v dense=%v)",
			sawHyper, sawDense)
	}
}
