package main

import (
	"os"
	"path/filepath"
	"testing"

	"github.com/ebsn/igepa"
	"github.com/ebsn/igepa/internal/workload"
)

func TestGenerateSyntheticRoundTrips(t *testing.T) {
	out := filepath.Join(t.TempDir(), "synthetic.json")
	if err := run("synthetic", 1, out, "", 0, 12, 30, 4, 2, 0.3, 0.5, 0.5); err != nil {
		t.Fatal(err)
	}
	f, err := os.Open(out)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	in, err := igepa.LoadInstance(f)
	if err != nil {
		t.Fatal(err)
	}
	if in.NumEvents() != 12 || in.NumUsers() != 30 {
		t.Errorf("dimensions %dx%d, want 12x30", in.NumEvents(), in.NumUsers())
	}
	// the generated file must be solvable end to end
	arr, err := igepa.Solve(in, "greedy", 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := igepa.Validate(in, arr); err != nil {
		t.Fatal(err)
	}
}

func TestGenerateMeetup(t *testing.T) {
	out := filepath.Join(t.TempDir(), "meetup.json")
	if err := run("meetup", 1, out, "", 0, 25, 60, 0, 0, 0, 0, 0.5); err != nil {
		t.Fatal(err)
	}
	f, err := os.Open(out)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	in, err := igepa.LoadInstance(f)
	if err != nil {
		t.Fatal(err)
	}
	if in.NumEvents() != 25 || in.NumUsers() != 60 {
		t.Errorf("dimensions %dx%d, want 25x60", in.NumEvents(), in.NumUsers())
	}
}

func TestGenerateArrivalLog(t *testing.T) {
	dir := t.TempDir()
	out := filepath.Join(dir, "inst.json")
	log := filepath.Join(dir, "arrivals.jsonl")
	if err := run("synthetic", 5, out, log, 2000, 10, 40, 4, 2, 0.3, 0.5, 0.5); err != nil {
		t.Fatal(err)
	}
	f, err := os.Open(log)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	arr, err := workload.ReadArrivals(f)
	if err != nil {
		t.Fatal(err)
	}
	if len(arr) != 40 {
		t.Fatalf("arrival log has %d entries, want 40", len(arr))
	}
	seen := make([]bool, 40)
	for _, a := range arr {
		if a.User >= 40 || seen[a.User] {
			t.Fatalf("bad or duplicate user %d in arrival log", a.User)
		}
		seen[a.User] = true
	}
	// the log must match the library generator bit-for-bit (same seed)
	want := workload.SyntheticArrivals(5, 40, 2000)
	for i := range arr {
		if arr[i] != want[i] {
			t.Fatalf("arrival %d = %+v, want %+v", i, arr[i], want[i])
		}
	}
}

func TestGenerateRejectsUnknownKind(t *testing.T) {
	if err := run("bogus", 1, "", "", 0, 0, 0, 0, 0, 0, 0, 0); err == nil {
		t.Error("unknown kind accepted")
	}
}

func TestGenerateBadPath(t *testing.T) {
	if err := run("synthetic", 1, "/nonexistent-dir/x.json", "", 0, 5, 5, 2, 2, 0.1, 0.1, 0.5); err == nil {
		t.Error("unwritable path accepted")
	}
	if err := run("synthetic", 1, filepath.Join(t.TempDir(), "ok.json"), "/nonexistent-dir/a.jsonl", 0, 5, 5, 2, 2, 0.1, 0.1, 0.5); err == nil {
		t.Error("unwritable arrival-log path accepted")
	}
}
