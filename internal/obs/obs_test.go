package obs

import (
	"bytes"
	"fmt"
	"io"
	"math"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestCounterGaugeExposition(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("test_requests_total", "Requests served.")
	c.Add(41)
	c.Inc()
	g := r.Gauge("test_queue_depth", "Current queue depth.", L("shard", "0"))
	g.Set(7)
	g.Add(-2)
	r.GaugeFunc("test_live", "Scrape-time gauge.", func() float64 { return 2.5 })

	var b bytes.Buffer
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"# HELP test_requests_total Requests served.",
		"# TYPE test_requests_total counter",
		"test_requests_total 42",
		`test_queue_depth{shard="0"} 5`,
		"test_live 2.5",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
}

func TestCounterStoreMonotonic(t *testing.T) {
	var c Counter
	c.Store(10)
	c.Store(7) // never moves backwards
	if got := c.Load(); got != 10 {
		t.Fatalf("Store went backwards: %d", got)
	}
	c.Store(12)
	if got := c.Load(); got != 12 {
		t.Fatalf("Store(12) = %d", got)
	}
}

func TestHistogramBucketsCumulative(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("test_latency_seconds", "Latency.", []float64{0.001, 0.01, 0.1})
	h.Observe(0.0005) // bucket 0.001
	h.Observe(0.001)  // le is inclusive: still bucket 0.001
	h.Observe(0.05)   // bucket 0.1
	h.Observe(5)      // +Inf

	var b bytes.Buffer
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		`test_latency_seconds_bucket{le="0.001"} 2`,
		`test_latency_seconds_bucket{le="0.01"} 2`,
		`test_latency_seconds_bucket{le="0.1"} 3`,
		`test_latency_seconds_bucket{le="+Inf"} 4`,
		"test_latency_seconds_count 4",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
	if h.Count() != 4 {
		t.Errorf("Count() = %d, want 4", h.Count())
	}
	sum := math.Float64frombits(h.sumBits.Load())
	if math.Abs(sum-5.0515) > 1e-9 {
		t.Errorf("sum = %v, want 5.0515", sum)
	}
}

func TestRegistrationIdempotent(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("x_total", "x")
	b := r.Counter("x_total", "x")
	if a != b {
		t.Fatal("same name+labels returned distinct counters")
	}
	c := r.Counter("x_total", "x", L("shard", "1"))
	if a == c {
		t.Fatal("distinct labels returned the same counter")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("kind mismatch did not panic")
		}
	}()
	r.Gauge("x_total", "x")
}

func TestConcurrentObserve(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("c_seconds", "c", LatencyBuckets())
	c := r.Counter("c_total", "c")
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				h.Observe(float64(i%7) * 1e-4)
				c.Inc()
			}
		}(w)
	}
	wg.Wait()
	if h.Count() != 8000 || c.Load() != 8000 {
		t.Fatalf("lost updates: hist=%d ctr=%d", h.Count(), c.Load())
	}
}

// TestObserveAllocs pins the hot-path contract every serving loop relies
// on: recording a sample allocates nothing.
func TestObserveAllocs(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("a_seconds", "a", LatencyBuckets())
	c := r.Counter("a_total", "a")
	g := r.Gauge("a_depth", "a")
	sl := NewSlowLog(time.Hour, io.Discard)
	if n := testing.AllocsPerRun(1000, func() {
		h.Observe(1.5e-4)
		h.ObserveDuration(150 * time.Microsecond)
		c.Inc()
		g.Set(3)
		if sl.Slow(time.Microsecond) {
			t.Fatal("hour threshold marked 1µs slow")
		}
	}); n != 0 {
		t.Fatalf("hot path allocates %v per op, want 0", n)
	}
}

func TestHandlerAndRoundTrip(t *testing.T) {
	r := NewRegistry()
	r.Counter("rt_total", "rt", L("code", "429")).Add(3)
	h := r.Histogram("rt_seconds", "rt hist", []float64{0.01, 0.1})
	h.Observe(0.02)

	srv := httptest.NewServer(r.Handler())
	defer srv.Close()
	resp, err := srv.Client().Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != ContentType {
		t.Errorf("Content-Type = %q", ct)
	}
	fams, err := ParseFamilies(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	byName := map[string]Family{}
	for _, f := range fams {
		byName[f.Name] = f
	}
	ctr, ok := byName["rt_total"]
	if !ok || ctr.Type != "counter" {
		t.Fatalf("rt_total missing or mistyped: %+v", ctr)
	}
	if got := ctr.Samples[0].Label("code"); got != "429" {
		t.Errorf("code label = %q", got)
	}
	if v, _ := ctr.Samples[0].Float(); v != 3 {
		t.Errorf("rt_total = %v", v)
	}
	hist, ok := byName["rt_seconds"]
	if !ok || hist.Type != "histogram" {
		t.Fatalf("rt_seconds missing or mistyped")
	}
	if len(hist.Samples) != 3+2 { // 2 bounds + Inf + sum + count
		t.Errorf("histogram samples = %d, want 5", len(hist.Samples))
	}
}

func TestMergeRelabeled(t *testing.T) {
	scrape := func(val string) []Family {
		r := NewRegistry()
		r.Counter("m_total", "m").Add(int64(len(val)))
		r.Gauge("m_depth", "d", L("q", "0")).Set(2)
		h := r.Histogram("m_seconds", "h", []float64{0.5})
		h.Observe(0.25)
		var b bytes.Buffer
		r.WritePrometheus(&b)
		fams, err := ParseFamilies(&b)
		if err != nil {
			t.Fatal(err)
		}
		return fams
	}
	var out bytes.Buffer
	err := MergeRelabeled(&out, "shard", []RelabeledSource{
		{Value: "0", Families: scrape("a")},
		{Value: "1", Families: scrape("bb")},
	})
	if err != nil {
		t.Fatal(err)
	}
	merged := out.String()
	for _, want := range []string{
		`m_total{shard="0"} 1`,
		`m_total{shard="1"} 2`,
		`m_depth{shard="0",q="0"} 2`,
		`m_seconds_bucket{shard="1",le="0.5"} 1`,
	} {
		if !strings.Contains(merged, want) {
			t.Errorf("merged output missing %q:\n%s", want, merged)
		}
	}
	if strings.Count(merged, "# TYPE m_total counter") != 1 {
		t.Errorf("TYPE header not deduplicated:\n%s", merged)
	}
	if probs := LintExposition(strings.NewReader(merged)); len(probs) != 0 {
		t.Errorf("merged exposition fails lint: %v", probs)
	}
}

// TestMergeRelabeledCollision pins the federation convention: a source
// label that collides with the fan-in key is renamed exported_<key>, never
// duplicated, and escaped values survive the rewrite verbatim.
func TestMergeRelabeledCollision(t *testing.T) {
	scrape := func() []Family {
		r := NewRegistry()
		r.Gauge("q_depth", "d", L("shard", "0")).Set(3)
		r.Counter("odd_total", "o", L("name", `a\"b,c`), L("shard", "9")).Add(1)
		var b bytes.Buffer
		r.WritePrometheus(&b)
		fams, err := ParseFamilies(&b)
		if err != nil {
			t.Fatal(err)
		}
		return fams
	}
	var out bytes.Buffer
	if err := MergeRelabeled(&out, "shard", []RelabeledSource{{Value: "1", Families: scrape()}}); err != nil {
		t.Fatal(err)
	}
	merged := out.String()
	for _, want := range []string{
		`q_depth{shard="1",exported_shard="0"} 3`,
		`exported_shard="9"`,
	} {
		if !strings.Contains(merged, want) {
			t.Errorf("merged output missing %q:\n%s", want, merged)
		}
	}
	if probs := LintExposition(strings.NewReader(merged)); len(probs) != 0 {
		t.Errorf("collision merge fails lint: %v", probs)
	}
}

func TestSlowLog(t *testing.T) {
	var buf bytes.Buffer
	sl := NewSlowLog(10*time.Millisecond, &buf)
	if sl.Slow(9 * time.Millisecond) {
		t.Fatal("below threshold marked slow")
	}
	total := 15 * time.Millisecond
	if !sl.Slow(total) {
		t.Fatal("above threshold not slow")
	}
	sl.Note("bid", 17, 3, total, []Span{{"wait", 9 * time.Millisecond}, {"decide", 6 * time.Millisecond}})
	line := buf.String()
	for _, want := range []string{"slowlog op=bid", "user=17", "shard=3", "total=15ms", "wait=9ms", "decide=6ms"} {
		if !strings.Contains(line, want) {
			t.Errorf("slowlog line missing %q: %s", want, line)
		}
	}
	if sl.Count() != 1 {
		t.Errorf("Count = %d", sl.Count())
	}
	var nilLog *SlowLog
	if nilLog.Slow(time.Hour) || nilLog.Count() != 0 {
		t.Error("nil SlowLog must be disabled")
	}
	nilLog.Note("x", 0, 0, 0, nil) // must not panic
	if NewSlowLog(0, &buf) != nil {
		t.Error("zero threshold must disable")
	}
}

func TestExpBuckets(t *testing.T) {
	b := ExpBuckets(1e-6, 2, 4)
	want := []float64{1e-6, 2e-6, 4e-6, 8e-6}
	for i := range want {
		if math.Abs(b[i]-want[i]) > 1e-18 {
			t.Fatalf("bucket %d = %v, want %v", i, b[i], want[i])
		}
	}
	lb := LatencyBuckets()
	if lb[0] != 1e-6 || len(lb) != 25 {
		t.Errorf("LatencyBuckets shape changed: first=%v len=%d", lb[0], len(lb))
	}
}

func TestFormatFloat(t *testing.T) {
	cases := map[float64]string{
		42:             "42",
		2.5:            "2.5",
		0:              "0",
		math.Inf(1):    "+Inf",
		1e-6:           "1e-06",
		0.000244140625: "0.000244140625",
	}
	for in, want := range cases {
		if got := formatFloat(in); got != want {
			t.Errorf("formatFloat(%v) = %q, want %q", in, got, want)
		}
	}
}

func TestParseFamiliesTimestampAndEscapes(t *testing.T) {
	in := "# TYPE x_total counter\nx_total{path=\"a\\\\b\\\"c\\nd\"} 7 1712345678\n"
	fams, err := ParseFamilies(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if fams[0].Samples[0].Value != "7" {
		t.Errorf("timestamp not stripped: %q", fams[0].Samples[0].Value)
	}
	if got := fams[0].Samples[0].Label("path"); got != "a\\b\"c\nd" {
		t.Errorf("unescape failed: %q", got)
	}
}

func BenchmarkHistogramObserve(b *testing.B) {
	r := NewRegistry()
	h := r.Histogram("b_seconds", "b", LatencyBuckets())
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h.Observe(float64(i%1000) * 1e-6)
	}
}

func BenchmarkCounterInc(b *testing.B) {
	r := NewRegistry()
	c := r.Counter("b_total", "b")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.Inc()
	}
}

func BenchmarkWritePrometheus(b *testing.B) {
	r := NewRegistry()
	for i := 0; i < 8; i++ {
		r.Counter("w_total", "w", L("shard", fmt.Sprint(i))).Add(int64(i))
		r.Histogram("w_seconds", "w", LatencyBuckets(), L("shard", fmt.Sprint(i))).Observe(1e-4)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		r.WritePrometheus(io.Discard)
	}
}
