package core

// BenchmarkPlannerUpdate is the acceptance point of the incremental
// rounding: end-to-end Planner.Update cost (delta cache sync + validation +
// warm LP re-solve + rounding + scoring) on the |U|=500 Table I point, for
// a single-user bid delta and a 5%-of-users batch delta. The "full" legs
// run the pre-incremental planner path — full cache rebuild, full instance
// Check, from-scratch re-round per call — as the in-repo baseline; the
// "incremental" legs are the shipping path. Note the "full" legs still ride
// this PR's LP-level wins (factor reuse, fast finish), so their ratio
// understates the true gain: the PR-4 HEAD code measured on the identical
// toggle fixture (same machine, benchtime 30x) ran the single-user delta at
// 860µs / 657KB / 1629 allocs per op vs the incremental path's 125µs /
// 1.9KB / 34 allocs — ≥5× end-to-end and ≥10× fewer allocs, the acceptance
// targets. CI emits the current numbers as the BENCH_update.json artifact.

import (
	"testing"

	"github.com/ebsn/igepa/internal/model"
	"github.com/ebsn/igepa/internal/workload"
)

// benchToggle holds a user's two alternating bid variants: the original
// list and the list missing its last bid. Swapping pre-built slice headers
// keeps the mutation itself allocation-free, so the benchmark measures
// Update and nothing else.
type benchToggle struct {
	user int
	alt  [2][]int
}

func buildPlannerBench(tb testing.TB, every int) (*model.Instance, []benchToggle, []int) {
	tb.Helper()
	in, err := workload.Synthetic(workload.SyntheticConfig{Seed: 1, NumUsers: 500, NumEvents: 100})
	if err != nil {
		tb.Fatal(err)
	}
	var toggles []benchToggle
	var users []int
	stride := every
	if stride >= in.NumUsers() {
		stride = 1 // scan until the first eligible user, then stop below
	}
	for u := 0; u < in.NumUsers(); u += stride {
		if every >= in.NumUsers() && len(toggles) == 1 {
			break // single-user leg: exactly one toggling user
		}
		bids := in.Users[u].Bids
		if len(bids) < 2 {
			continue
		}
		toggles = append(toggles, benchToggle{
			user: u,
			alt: [2][]int{
				append([]int(nil), bids...),
				append([]int(nil), bids[:len(bids)-1]...),
			},
		})
		users = append(users, u)
	}
	if len(toggles) == 0 {
		tb.Fatal("no toggleable users in fixture")
	}
	return in, toggles, users
}

func benchmarkPlannerUpdate(b *testing.B, every int, full bool) {
	base, toggles, users := buildPlannerBench(b, every)
	in := base.Clone()
	p, err := NewPlanner(in, Options{Seed: 42})
	if err != nil {
		b.Fatal(err)
	}
	defer p.Close()
	p.fullRound = full

	state := 0
	step := func() error {
		state ^= 1
		for _, tg := range toggles {
			in.Users[tg.user].Bids = tg.alt[state]
		}
		_, err := p.Update(Delta{Users: users})
		return err
	}
	// Prime both variants so the timed loop sees the steady state: warm
	// basis, populated scratch, maintained rounding state.
	for i := 0; i < 2; i++ {
		if err := step(); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := step(); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	st := p.Stats()
	if st.WarmSolves > 0 {
		b.ReportMetric(float64(st.WarmPivots)/float64(st.WarmSolves), "pivots/resolve")
	}
}

func BenchmarkPlannerUpdate(b *testing.B) {
	// every=10000 > |U| keeps only the first eligible user: a 1-user delta.
	b.Run("full/single-user", func(b *testing.B) { benchmarkPlannerUpdate(b, 10000, true) })
	b.Run("incremental/single-user", func(b *testing.B) { benchmarkPlannerUpdate(b, 10000, false) })
	// every=20 toggles 5% of the 500 users per Update.
	b.Run("full/batch-5pct", func(b *testing.B) { benchmarkPlannerUpdate(b, 20, true) })
	b.Run("incremental/batch-5pct", func(b *testing.B) { benchmarkPlannerUpdate(b, 20, false) })
}
