package admissible

import (
	"testing"

	"github.com/ebsn/igepa/internal/conflict"
)

func TestCacheLookupInsert(t *testing.T) {
	c := NewCache(2)
	if _, ok := c.Lookup([]int{1, 2}, 2); ok {
		t.Fatal("empty cache reported a hit")
	}
	fam := [][]int{{1}, {2}, {1, 2}}
	c.Insert([]int{1, 2}, 2, fam)
	got, ok := c.Lookup([]int{1, 2}, 2)
	if !ok || len(got) != 3 {
		t.Fatalf("Lookup after Insert: ok=%v fam=%v", ok, got)
	}
	// same open set, different user capacity: distinct key
	if _, ok := c.Lookup([]int{1, 2}, 3); ok {
		t.Fatal("capacity is not part of the key")
	}
	// different open set: distinct key
	if _, ok := c.Lookup([]int{1, 3}, 2); ok {
		t.Fatal("open set is not part of the key")
	}
	st := c.Stats()
	if st.Hits != 1 || st.Misses != 3 || st.Entries != 1 {
		t.Fatalf("stats = %+v, want 1 hit / 3 misses / 1 entry", st)
	}
	if r := st.HitRate(); r <= 0 || r >= 1 {
		t.Fatalf("hit rate %v outside (0,1)", r)
	}
}

func TestCacheEvictsLRU(t *testing.T) {
	c := NewCache(2)
	c.Insert([]int{0}, 1, [][]int{{0}})
	c.Insert([]int{1}, 1, [][]int{{1}})
	c.Lookup([]int{0}, 1) // touch {0}: {1} becomes LRU
	c.Insert([]int{2}, 1, [][]int{{2}})
	if _, ok := c.Lookup([]int{1}, 1); ok {
		t.Fatal("LRU entry survived eviction")
	}
	if _, ok := c.Lookup([]int{0}, 1); !ok {
		t.Fatal("recently used entry evicted")
	}
	if _, ok := c.Lookup([]int{2}, 1); !ok {
		t.Fatal("fresh entry evicted")
	}
	st := c.Stats()
	if st.Evictions != 1 || st.Entries != 2 {
		t.Fatalf("stats = %+v, want 1 eviction / 2 entries", st)
	}
}

func TestCacheReinsertUpdates(t *testing.T) {
	c := NewCache(4)
	c.Insert([]int{3, 5}, 2, [][]int{{3}})
	c.Insert([]int{3, 5}, 2, [][]int{{3}, {5}})
	got, ok := c.Lookup([]int{3, 5}, 2)
	if !ok || len(got) != 2 {
		t.Fatalf("reinsert did not update: ok=%v fam=%v", ok, got)
	}
	if st := c.Stats(); st.Entries != 1 {
		t.Fatalf("reinsert duplicated the entry: %+v", st)
	}
}

func TestCacheZeroCapacityDefaults(t *testing.T) {
	c := NewCache(0)
	if c.capacity != DefaultCacheSize {
		t.Fatalf("NewCache(0) capacity = %d, want %d", c.capacity, DefaultCacheSize)
	}
}

// TestCachedFamilyMatchesEnumeration pins the cache's core contract: the
// family stored for (open, cap) contains exactly the sets Enumerate would
// produce, so scoring the cached family under any user's weights selects
// from the same candidates as a fresh enumeration.
func TestCachedFamilyMatchesEnumeration(t *testing.T) {
	conf := conflict.FromPairs(6, [][2]int{{0, 1}, {2, 3}})
	open := []int{0, 1, 2, 3, 4}
	w := func(v int) float64 { return float64(v + 1) }
	r := Enumerate(open, 3, conf, w, Config{})
	if r.Truncated {
		t.Fatal("tiny enumeration truncated")
	}
	fam := make([][]int, len(r.Sets))
	for i, s := range r.Sets {
		fam[i] = s.Events
	}
	c := NewCache(8)
	c.Insert(open, 3, fam)
	got, ok := c.Lookup(open, 3)
	if !ok {
		t.Fatal("miss after insert")
	}
	seen := map[string]bool{}
	for _, s := range got {
		key := ""
		for _, v := range s {
			key += string(rune('a' + v))
		}
		if seen[key] {
			t.Fatalf("duplicate set %v in cached family", s)
		}
		seen[key] = true
	}
	if len(got) != len(r.Sets) {
		t.Fatalf("cached family has %d sets, enumeration %d", len(got), len(r.Sets))
	}
}
