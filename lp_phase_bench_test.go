package igepa_test

// BenchmarkLPPhases is the per-phase profile behind BENCH_lp.json: cold
// solves and warm 10%-bid-delta resolves of the benchmark LP at |U| = 1000
// and 4000, with the solver's PhaseTimers split (ftran/btran/pricing/update/
// factor) reported per op. BenchmarkDualRepairPricing compares the dual
// steepest-edge leaving rule against the legacy most-infeasible rule on a
// capacity-shrink delta, reporting repair pivots per resolve — the pivot-
// count win that must hold even on a single-core runner.

import (
	"math"
	"testing"
	"time"

	"github.com/ebsn/igepa/internal/lp"
)

// reportPhases emits the accumulated phase split as per-op metrics.
func reportPhases(b *testing.B, tm *lp.PhaseTimers, n int) {
	metric := func(name string, d time.Duration) {
		b.ReportMetric(float64(d.Nanoseconds())/float64(n), name+"-ns/op")
	}
	metric("ftran", tm.Ftran)
	metric("btran", tm.Btran)
	metric("pricing", tm.Pricing)
	metric("update", tm.Update)
	metric("factor", tm.Factor)
	b.ReportMetric(float64(tm.Pivots)/float64(n), "pivots/op")
	if tm.RepairPivots > 0 {
		b.ReportMetric(float64(tm.RepairPivots)/float64(n), "repair-pivots/op")
	}
}

func BenchmarkLPPhases(b *testing.B) {
	scenarios := []struct {
		name                  string
		users, events, stride int
	}{
		{"U1000_d10", 1000, 100, 10},
		{"U4000_d10", 4000, 200, 10},
	}
	for _, sc := range scenarios {
		b.Run(sc.name, func(b *testing.B) {
			f := buildWarmFixtureAt(b, sc.users, sc.events, sc.stride)

			b.Run("cold", func(b *testing.B) {
				tm := &lp.PhaseTimers{}
				cfg := lp.Revised{Timers: tm}
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					if _, err := cfg.Solve(f.probA); err != nil {
						b.Fatal(err)
					}
				}
				b.StopTimer()
				reportPhases(b, tm, b.N)
			})

			// Bid-churn delta: at |U|=1000 this stays warm; at |U|=4000 the
			// churn removes enough basic columns at once that the dual repair
			// stalls and the solver (correctly) falls back cold — a pre-
			// existing repair limit, surfaced honestly by fallbacks/op rather
			// than hidden by a smaller delta.
			b.Run("warm_bids", func(b *testing.B) {
				tm := &lp.PhaseTimers{}
				s := lp.NewSolver(lp.Revised{Timers: tm})
				defer s.Release()
				if _, err := s.Solve(f.probA); err != nil {
					b.Fatal(err)
				}
				// prime the toggle so the timed loop only sees tail deltas
				if _, err := s.Resolve(f.dFirstToB); err != nil {
					b.Fatal(err)
				}
				before := s.Stats()
				toA := true
				tm.Reset()
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					d := f.dTailToB
					if toA {
						d = f.dTailToA
					}
					if _, err := s.Resolve(d); err != nil {
						b.Fatal(err)
					}
					toA = !toA
				}
				b.StopTimer()
				st := s.Stats()
				fallbacks := totalFallbacks(st) - totalFallbacks(before)
				b.ReportMetric(float64(fallbacks)/float64(b.N), "fallbacks/op")
				reportPhases(b, tm, b.N)
			})

			// Bound-churn delta: capacities move on a slice of the event rows
			// (every 8th), the shape of serving-side capacity updates between
			// resolves. Always warm (repair-driven): each op is ONE Resolve,
			// alternating shrink/restore like warm_bids, so ns/op compares
			// directly against cold. The full-width all-rows shrink stress
			// case is covered by BenchmarkDualRepairPricing below.
			b.Run("warm_bounds", func(b *testing.B) {
				shrink, restore := capacityChurnDeltas(f.probA, sc.users, sc.events, 0.75, 8)
				tm := &lp.PhaseTimers{}
				s := lp.NewSolver(lp.Revised{Timers: tm})
				defer s.Release()
				if _, err := s.Solve(f.probA); err != nil {
					b.Fatal(err)
				}
				// prime the toggle so the timed loop alternates steady-state
				if _, err := s.Resolve(shrink); err != nil {
					b.Fatal(err)
				}
				toRestore := true
				tm.Reset()
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					d := shrink
					if toRestore {
						d = restore
					}
					if _, err := s.Resolve(d); err != nil {
						b.Fatal(err)
					}
					toRestore = !toRestore
				}
				b.StopTimer()
				if st := s.Stats(); totalFallbacks(st) > 0 {
					b.Fatalf("bound toggle fell back to cold solves: %+v", st)
				}
				reportPhases(b, tm, b.N)
			})
		})
	}
}

// totalFallbacks sums the per-reason cold-fallback counters.
func totalFallbacks(st lp.SolverStats) int {
	return st.FallbackSingular + st.FallbackInfeasible + st.FallbackRepairStall +
		st.FallbackBoundInfeasible + st.FallbackError
}

// capacityShrinkDeltas builds a delta cutting every event capacity to
// floor(frac·b) — turning the optimal basis primal infeasible across many
// interacting rows at once, so the repair's leaving-row choice matters —
// and its inverse restoring the original bounds (warm, repair-free).
func capacityShrinkDeltas(p *lp.Problem, users, events int, frac float64) (shrink, restore lp.ProblemDelta) {
	return capacityChurnDeltas(p, users, events, frac, 1)
}

// capacityChurnDeltas is capacityShrinkDeltas restricted to every `every`-th
// event row — a bounded perturbation matching incremental capacity updates
// between serving resolves, rather than an all-rows shock.
func capacityChurnDeltas(p *lp.Problem, users, events int, frac float64, every int) (shrink, restore lp.ProblemDelta) {
	for v := 0; v < events; v += every {
		row := users + v
		old := p.B[row]
		shrink.SetB = append(shrink.SetB, lp.BoundChange{Row: row, B: math.Floor(old * frac)})
		restore.SetB = append(restore.SetB, lp.BoundChange{Row: row, B: old})
	}
	return shrink, restore
}

// TestDualSteepestEdgeReducesRepairPivots pins the point of the dse leaving
// rule: on a capacity-shrink repair with many competing infeasible rows it
// must need strictly fewer dual pivots than the legacy most-infeasible rule
// (~30% fewer when this was written), while both land on certified optima
// without cold fallbacks.
func TestDualSteepestEdgeReducesRepairPivots(t *testing.T) {
	const users, events = 1000, 100
	f := buildWarmFixtureAt(t, users, events, 10)
	shrink, _ := capacityShrinkDeltas(f.probA, users, events, 0.75)
	pivots := map[string]int64{}
	for _, mode := range []string{"dse", "maxinfeas"} {
		tm := &lp.PhaseTimers{}
		s := lp.NewSolver(lp.Revised{DualPricing: mode, Timers: tm})
		if _, err := s.Solve(f.probA); err != nil {
			t.Fatal(err)
		}
		tm.Reset()
		sol, err := s.Resolve(shrink)
		if err != nil {
			t.Fatal(err)
		}
		if st := s.Stats(); st.FallbackSingular+st.FallbackInfeasible > 0 {
			t.Fatalf("mode=%s: repair fell back to a cold solve: %+v", mode, st)
		}
		if err := lp.Verify(s.Problem(), sol, 1e-6); err != nil {
			t.Fatalf("mode=%s: %v", mode, err)
		}
		pivots[mode] = tm.RepairPivots
		s.Release()
	}
	t.Logf("repair pivots: dse=%d maxinfeas=%d", pivots["dse"], pivots["maxinfeas"])
	if pivots["dse"] == 0 || pivots["maxinfeas"] == 0 {
		t.Fatal("shrink delta did not exercise the dual repair")
	}
	if pivots["dse"] >= pivots["maxinfeas"] {
		t.Errorf("dse used %d repair pivots, legacy rule %d — steepest edge must pivot less here",
			pivots["dse"], pivots["maxinfeas"])
	}
}

func BenchmarkDualRepairPricing(b *testing.B) {
	const users, events = 1000, 100
	f := buildWarmFixtureAt(b, users, events, 10)
	shrink, restore := capacityShrinkDeltas(f.probA, users, events, 0.75)
	for _, mode := range []string{"dse", "maxinfeas"} {
		b.Run(mode, func(b *testing.B) {
			tm := &lp.PhaseTimers{}
			s := lp.NewSolver(lp.Revised{DualPricing: mode, Timers: tm})
			defer s.Release()
			if _, err := s.Solve(f.probA); err != nil {
				b.Fatal(err)
			}
			tm.Reset()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := s.Resolve(shrink); err != nil {
					b.Fatal(err)
				}
				if _, err := s.Resolve(restore); err != nil {
					b.Fatal(err)
				}
			}
			b.StopTimer()
			if st := s.Stats(); st.FallbackSingular+st.FallbackInfeasible > 0 {
				b.Fatalf("repair benchmark fell back to cold solves: %+v", st)
			}
			b.ReportMetric(float64(tm.RepairPivots)/float64(b.N), "repair-pivots/op")
			b.ReportMetric(float64(tm.Pivots)/float64(b.N), "pivots/op")
		})
	}
}
