package eval

import (
	"fmt"
	"io"

	"github.com/ebsn/igepa/internal/baselines"
	"github.com/ebsn/igepa/internal/core"
	"github.com/ebsn/igepa/internal/model"
	"github.com/ebsn/igepa/internal/stats"
	"github.com/ebsn/igepa/internal/workload"
)

// RatioConfig controls the empirical approximation-ratio experiment, which
// checks Theorem 2 (ratio ≥ 1/4 at α = 1/2) against the exact optimum on
// small instances.
type RatioConfig struct {
	// Instances is the number of random small instances; 0 means 20.
	Instances int
	// SamplesPerInstance averages LP-packing's randomized rounding; 0
	// means 20.
	SamplesPerInstance int
	// Alpha is the sampling rate; 0 means 0.5 (the theorem's setting).
	Alpha float64
	Seed  int64
}

// RatioResult reports, per instance, E[LP-packing]/OPT, and the aggregate.
type RatioResult struct {
	Alpha     float64
	PerInst   []float64 // expected-utility ratio per instance
	Aggregate stats.Summary
	WorstCase float64
	// LPGapMax is the largest OPT/LP ratio observed (how tight Lemma 1 was).
	LPGapMax float64
}

// RunRatio measures the empirical approximation ratio of LP-packing against
// the branch-and-bound optimum on a battery of small synthetic instances.
func RunRatio(cfg RatioConfig, progress io.Writer) (*RatioResult, error) {
	n := cfg.Instances
	if n <= 0 {
		n = 20
	}
	samples := cfg.SamplesPerInstance
	if samples <= 0 {
		samples = 20
	}
	alpha := cfg.Alpha
	if alpha == 0 {
		alpha = 0.5
	}

	res := &RatioResult{Alpha: alpha, WorstCase: 1}
	for i := 0; i < n; i++ {
		in, err := workload.Synthetic(workload.SyntheticConfig{
			Seed:      cfg.Seed + int64(i)*104729,
			NumEvents: 6 + i%5, NumUsers: 6 + (i*3)%7,
			MaxEventCap: 2, MaxUserCap: 3,
			MinBids: 2, MaxBids: 4,
		})
		if err != nil {
			return nil, err
		}
		_, opt, err := baselines.Optimal(in)
		if err != nil {
			return nil, err
		}
		if opt <= 0 {
			continue // degenerate instance with nothing to assign
		}
		var utils []float64
		var lpObj float64
		for s := 0; s < samples; s++ {
			r, err := core.LPPacking(in, core.Options{Alpha: alpha, Seed: cfg.Seed + int64(i*samples+s)})
			if err != nil {
				return nil, err
			}
			if err := model.Validate(in, r.Arrangement); err != nil {
				return nil, fmt.Errorf("eval: ratio instance %d: %w", i, err)
			}
			utils = append(utils, r.Utility)
			lpObj = r.LPObjective
		}
		ratio := stats.Mean(utils) / opt
		res.PerInst = append(res.PerInst, ratio)
		if ratio < res.WorstCase {
			res.WorstCase = ratio
		}
		if lpObj > 0 {
			if gap := opt / lpObj; gap > res.LPGapMax {
				res.LPGapMax = gap
			}
		}
		if progress != nil {
			fmt.Fprintf(progress, "[ratio] instance %2d: |V|=%d |U|=%d OPT=%.3f E[ALG]=%.3f ratio=%.3f\n",
				i, in.NumEvents(), in.NumUsers(), opt, stats.Mean(utils), ratio)
		}
	}
	res.Aggregate = stats.Summarize(res.PerInst)
	return res, nil
}
