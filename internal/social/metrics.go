package social

// Graph metrics used to validate generated social networks: the Meetup-like
// affiliation graph must look like a real community structure (high
// clustering, giant component), while Erdős–Rényi graphs must not. These
// feed the dataset statistics of igepa-datagen and the workload tests.

// Components returns the connected components as vertex lists, largest
// first; isolated vertices form singleton components.
func Components(g *Graph) [][]int {
	visited := make([]bool, g.n)
	var comps [][]int
	queue := make([]int, 0, g.n)
	for s := 0; s < g.n; s++ {
		if visited[s] {
			continue
		}
		visited[s] = true
		queue = append(queue[:0], s)
		var comp []int
		for len(queue) > 0 {
			u := queue[len(queue)-1]
			queue = queue[:len(queue)-1]
			comp = append(comp, u)
			g.adj[u].ForEach(func(v int) {
				if !visited[v] {
					visited[v] = true
					queue = append(queue, v)
				}
			})
		}
		comps = append(comps, comp)
	}
	// selection sort by size descending (few components in practice)
	for i := 0; i < len(comps); i++ {
		best := i
		for j := i + 1; j < len(comps); j++ {
			if len(comps[j]) > len(comps[best]) {
				best = j
			}
		}
		comps[i], comps[best] = comps[best], comps[i]
	}
	return comps
}

// GiantComponentFraction returns the share of vertices in the largest
// connected component (0 for the empty graph).
func GiantComponentFraction(g *Graph) float64 {
	if g.n == 0 {
		return 0
	}
	comps := Components(g)
	return float64(len(comps[0])) / float64(g.n)
}

// LocalClustering returns vertex u's local clustering coefficient: the
// fraction of its neighbour pairs that are themselves adjacent
// (0 for degree < 2).
func (g *Graph) LocalClustering(u int) float64 {
	d := g.degree[u]
	if d < 2 {
		return 0
	}
	neigh := g.Neighbors(u, nil)
	closed := 0
	for i, a := range neigh {
		for _, b := range neigh[i+1:] {
			if g.HasEdge(a, b) {
				closed++
			}
		}
	}
	return float64(closed) / float64(d*(d-1)/2)
}

// MeanClustering returns the average local clustering coefficient over all
// vertices (Watts–Strogatz definition).
func MeanClustering(g *Graph) float64 {
	if g.n == 0 {
		return 0
	}
	sum := 0.0
	for u := 0; u < g.n; u++ {
		sum += g.LocalClustering(u)
	}
	return sum / float64(g.n)
}

// DegreeAssortativityProxy returns the ratio of the mean degree of
// neighbours (averaged over edges) to the mean degree — >1 indicates hubs
// attach to hubs less than expected (friendship paradox magnitude). It is a
// cheap structural fingerprint used in generator tests.
func DegreeAssortativityProxy(g *Graph) float64 {
	if g.edges == 0 {
		return 0
	}
	sumNeighborDeg := 0.0
	for u := 0; u < g.n; u++ {
		if g.degree[u] == 0 {
			continue
		}
		g.adj[u].ForEach(func(v int) {
			sumNeighborDeg += float64(g.degree[v])
		})
	}
	meanNeighbor := sumNeighborDeg / float64(2*g.edges)
	mean := g.MeanDegree()
	if mean == 0 {
		return 0
	}
	return meanNeighbor / mean
}
