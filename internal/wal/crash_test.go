package wal

import (
	"bytes"
	"errors"
	"io"
	"testing"

	"github.com/ebsn/igepa/internal/faultfs"
)

// TestCrashSweepFraming kills the log at every byte offset of a fixture
// stream — via faultfs, so the surviving image is exactly what a crashed
// process leaves — and asserts the framing contract at each: recovery
// returns precisely the records wholly committed before the crash, reports
// the torn tail, and never surfaces a partial record. The engine-level half
// of the sweep (bit-identical state at every crash point) lives in
// internal/shard, which owns the engine.
func TestCrashSweepFraming(t *testing.T) {
	ops := fixtureOps(12)
	encoded := make([][]byte, len(ops))
	var full []byte
	// ends[k] is the file offset after k whole records
	ends := []int64{0}
	for i, op := range ops {
		encoded[i] = op.Encode()
		full = append(full, frame(encoded[i])...)
		ends = append(ends, int64(len(full)))
	}

	for crash := int64(0); crash <= int64(len(full)); crash++ {
		mem := &faultfs.MemFile{}
		f := faultfs.Wrap(mem, faultfs.Fault{CrashAfter: crash})
		w := NewWriter(f, 0, Options{Sync: SyncOff})
		for _, op := range ops {
			if _, err := w.Append(op); err != nil {
				break
			}
			if err := w.Commit(); err != nil {
				break
			}
		}
		w.Close()

		img := mem.Bytes()
		if int64(len(img)) != crash {
			t.Fatalf("crash@%d: %d bytes survived", crash, len(img))
		}
		if !bytes.Equal(img, full[:crash]) {
			t.Fatalf("crash@%d: surviving image is not the byte prefix of the log", crash)
		}

		payloads, valid, tailErr := Scan(bytes.NewReader(img))
		// the number of whole records at or before the crash point
		k := 0
		for k+1 < len(ends) && ends[k+1] <= crash {
			k++
		}
		if len(payloads) != k {
			t.Fatalf("crash@%d: recovered %d records, want %d", crash, len(payloads), k)
		}
		if valid != ends[k] {
			t.Fatalf("crash@%d: valid prefix %d, want %d", crash, valid, ends[k])
		}
		for i, p := range payloads {
			if !bytes.Equal(p, encoded[i]) {
				t.Fatalf("crash@%d: record %d does not match what was appended", crash, i)
			}
		}
		if crash == ends[k] {
			if tailErr != nil {
				t.Fatalf("crash@%d: clean record boundary reported tail error %v", crash, tailErr)
			}
		} else if !errors.Is(tailErr, ErrTorn) {
			t.Fatalf("crash@%d: tail error %v, want ErrTorn", crash, tailErr)
		}
	}
}

// TestCrashSweepTailerNeverAdvancesPastTear runs the same sweep through the
// follower's reader: at every crash point the tailer must yield exactly the
// whole records and then report a retry-later signal, never corruption and
// never a partial record.
func TestCrashSweepTailer(t *testing.T) {
	ops := fixtureOps(8)
	var full []byte
	ends := []int64{0}
	for _, op := range ops {
		full = append(full, frame(op.Encode())...)
		ends = append(ends, int64(len(full)))
	}
	for crash := int64(0); crash <= int64(len(full)); crash++ {
		img := full[:crash]
		k := 0
		for k+1 < len(ends) && ends[k+1] <= crash {
			k++
		}
		var got int
		off := int64(0)
		for {
			p, end, err := readFrame(bytes.NewReader(img), off)
			if err == io.EOF {
				if crash != ends[k] {
					t.Fatalf("crash@%d: EOF on a torn tail", crash)
				}
				break
			}
			if err != nil {
				if !errors.Is(err, ErrTorn) {
					t.Fatalf("crash@%d: reader error %v, want ErrTorn", crash, err)
				}
				break
			}
			if len(p) == 0 && crash == 0 {
				t.Fatalf("crash@%d: record from an empty log", crash)
			}
			got++
			off = end
		}
		if got != k || off != ends[k] {
			t.Fatalf("crash@%d: tailed %d records to %d, want %d to %d", crash, got, off, k, ends[k])
		}
	}
}
