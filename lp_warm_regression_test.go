package igepa_test

// Deterministic warm-resolve regression fixture at |U| = 1500: a capacity
// churn on every 8th event row must stay on the budgeted dual-repair path —
// zero cold fallbacks, strictly fewer pivots than the cold solve, and less
// wall time — and the restored problem must land back on the cold optimum.
// This pins the tentpole claim that Resolve never loses to a cold solve on
// the serving-shaped deltas it exists for.

import (
	"math"
	"testing"
	"time"

	"github.com/ebsn/igepa/internal/lp"
)

func TestWarmResolveBeatsColdAt1500(t *testing.T) {
	const users, events = 1500, 150
	f := buildWarmFixtureAt(t, users, events, 10)
	shrink, restore := capacityChurnDeltas(f.probA, users, events, 0.75, 8)

	tm := &lp.PhaseTimers{}
	s := lp.NewSolver(lp.Revised{Timers: tm})
	defer s.Release()

	t0 := time.Now()
	coldSol, err := s.Solve(f.probA)
	if err != nil {
		t.Fatal(err)
	}
	coldDur := time.Since(t0)
	coldPivots := tm.Pivots

	tm.Reset()
	t0 = time.Now()
	if _, err := s.Resolve(shrink); err != nil {
		t.Fatal(err)
	}
	warmSol, err := s.Resolve(restore)
	if err != nil {
		t.Fatal(err)
	}
	warmDur := time.Since(t0) / 2 // per-resolve
	t.Logf("cold %v (%d pivots) vs warm %v/resolve (%d repair pivots over 2 resolves)",
		coldDur, coldPivots, warmDur, tm.RepairPivots)

	st := s.Stats()
	if n := totalFallbacks(st); n != 0 {
		t.Fatalf("warm resolves fell back cold %d times: %+v", n, st)
	}
	if tm.BudgetExhausted != 0 {
		t.Fatalf("repair budget exhausted: %+v", tm)
	}
	if tm.RepairPivots == 0 {
		t.Fatal("churn delta did not exercise the budgeted dual repair")
	}
	if tm.RepairPivots >= coldPivots {
		t.Errorf("warm repair needed %d pivots across both resolves, cold needed %d — warm must pivot less",
			tm.RepairPivots, coldPivots)
	}
	if warmDur >= coldDur {
		t.Errorf("warm resolve took %v, cold solve %v — budgeted repair must beat cold", warmDur, coldDur)
	}
	if err := lp.Verify(s.Problem(), warmSol, 1e-6); err != nil {
		t.Fatal(err)
	}
	// restoring the bounds returns to the original problem: the warm optimum
	// must match the cold objective (bases may differ under degeneracy)
	if diff := math.Abs(warmSol.Objective - coldSol.Objective); diff > 1e-6*(1+math.Abs(coldSol.Objective)) {
		t.Errorf("restored warm objective %g differs from cold %g by %g",
			warmSol.Objective, coldSol.Objective, diff)
	}
}
