package igepa_test

// One benchmark per table/figure of the paper's evaluation, plus
// micro-benchmarks of the pipeline stages. The figure benchmarks run the
// same sweep shapes as cmd/igepa-bench but at reduced scale (|U|≈400-600,
// one repetition) so `go test -bench=.` completes in minutes; the
// full-scale paper reproduction is `igepa-bench -exp all`.

import (
	"fmt"
	"testing"

	"github.com/ebsn/igepa"
	"github.com/ebsn/igepa/internal/eval"
	"github.com/ebsn/igepa/internal/model"
	"github.com/ebsn/igepa/internal/workload"
)

// benchPoint builds a reduced synthetic point for figure benchmarks.
func benchPoint(label string, seed int64, mod func(*workload.SyntheticConfig)) eval.Point {
	return eval.Point{
		Label: label,
		Gen: func(rep int) (*model.Instance, error) {
			cfg := workload.SyntheticConfig{
				Seed:      seed + int64(rep),
				NumEvents: 60, NumUsers: 400,
				MaxEventCap: 15, MaxUserCap: 4,
				MinBids: 3, MaxBids: 6,
			}
			mod(&cfg)
			return workload.Synthetic(cfg)
		},
	}
}

// runFigure executes a reduced sweep once per benchmark iteration and
// reports the LP-packing mean utility of the middle point as a metric.
func runFigure(b *testing.B, id string, points []eval.Point) {
	b.Helper()
	e := &eval.Experiment{
		ID: id, Title: "reduced " + id, XLabel: "x",
		Points:     points,
		Algorithms: eval.StandardAlgorithms(1, 0),
	}
	b.ReportAllocs()
	b.ResetTimer()
	var last float64
	for i := 0; i < b.N; i++ {
		t, err := eval.Run(e, eval.RunConfig{Reps: 1, Seed: int64(i + 1), Validate: true})
		if err != nil {
			b.Fatal(err)
		}
		last = t.Series[0].Cells[len(points)/2].Mean
	}
	b.ReportMetric(last, "lp-packing-utility")
}

func BenchmarkFig1aNumEvents(b *testing.B) {
	var pts []eval.Point
	for _, nv := range []int{30, 60, 90} {
		nv := nv
		pts = append(pts, benchPoint(fmt.Sprintf("|V|=%d", nv), 11,
			func(c *workload.SyntheticConfig) { c.NumEvents = nv }))
	}
	runFigure(b, "fig1a", pts)
}

func BenchmarkFig1bNumUsers(b *testing.B) {
	var pts []eval.Point
	for _, nu := range []int{200, 400, 800} {
		nu := nu
		pts = append(pts, benchPoint(fmt.Sprintf("|U|=%d", nu), 13,
			func(c *workload.SyntheticConfig) { c.NumUsers = nu }))
	}
	runFigure(b, "fig1b", pts)
}

func BenchmarkFig1cConflictProb(b *testing.B) {
	var pts []eval.Point
	for _, p := range []float64{0.1, 0.3, 0.5} {
		p := p
		pts = append(pts, benchPoint(fmt.Sprintf("pcf=%.1f", p), 17,
			func(c *workload.SyntheticConfig) { c.PConflict = p }))
	}
	runFigure(b, "fig1c", pts)
}

func BenchmarkFig1dFriendProb(b *testing.B) {
	var pts []eval.Point
	for _, p := range []float64{0.1, 0.5, 0.9} {
		p := p
		pts = append(pts, benchPoint(fmt.Sprintf("pdeg=%.1f", p), 19,
			func(c *workload.SyntheticConfig) { c.PFriend = p }))
	}
	runFigure(b, "fig1d", pts)
}

func BenchmarkFig1eEventCap(b *testing.B) {
	var pts []eval.Point
	for _, cv := range []int{5, 15, 25} {
		cv := cv
		pts = append(pts, benchPoint(fmt.Sprintf("maxcv=%d", cv), 23,
			func(c *workload.SyntheticConfig) { c.MaxEventCap = cv }))
	}
	runFigure(b, "fig1e", pts)
}

func BenchmarkFig1fUserCap(b *testing.B) {
	var pts []eval.Point
	for _, cu := range []int{2, 4, 6} {
		cu := cu
		pts = append(pts, benchPoint(fmt.Sprintf("maxcu=%d", cu), 29,
			func(c *workload.SyntheticConfig) { c.MaxUserCap = cu }))
	}
	runFigure(b, "fig1f", pts)
}

func BenchmarkTable2Meetup(b *testing.B) {
	pts := []eval.Point{{
		Label: "meetup-reduced",
		Gen: func(rep int) (*model.Instance, error) {
			return workload.Meetup(workload.MeetupConfig{
				Seed: 31 + int64(rep), NumEvents: 80, NumUsers: 600,
			})
		},
	}}
	e := &eval.Experiment{
		ID: "table2", Title: "reduced table2", XLabel: "dataset",
		Points:     pts,
		Algorithms: eval.StandardAlgorithms(1, 500),
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := eval.Run(e, eval.RunConfig{Reps: 1, Seed: int64(i + 1), Validate: true}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkRatioTheorem2(b *testing.B) {
	b.ReportAllocs()
	var worst float64
	for i := 0; i < b.N; i++ {
		res, err := eval.RunRatio(eval.RatioConfig{
			Instances: 5, SamplesPerInstance: 8, Seed: int64(i + 1),
		}, nil)
		if err != nil {
			b.Fatal(err)
		}
		worst = res.WorstCase
	}
	b.ReportMetric(worst, "worst-ratio")
}

func BenchmarkAblateAlpha(b *testing.B) {
	in, err := igepa.Synthetic(igepa.SyntheticConfig{
		Seed: 37, NumEvents: 60, NumUsers: 400, MaxEventCap: 15,
	})
	if err != nil {
		b.Fatal(err)
	}
	for _, alpha := range []float64{0.25, 0.5, 1.0} {
		b.Run(fmt.Sprintf("alpha=%.2f", alpha), func(b *testing.B) {
			var util float64
			for i := 0; i < b.N; i++ {
				res, err := igepa.LPPacking(in, igepa.LPPackingOptions{Alpha: alpha, Seed: int64(i)})
				if err != nil {
					b.Fatal(err)
				}
				util = res.Utility
			}
			b.ReportMetric(util, "utility")
		})
	}
}

func BenchmarkAblateRepair(b *testing.B) {
	// tight capacities so repair actually fires
	in, err := igepa.Synthetic(igepa.SyntheticConfig{
		Seed: 41, NumEvents: 60, NumUsers: 600, MaxEventCap: 4,
	})
	if err != nil {
		b.Fatal(err)
	}
	for _, ord := range []igepa.RepairOrder{igepa.RepairByIndex, igepa.RepairRandom, igepa.RepairByWeightAsc} {
		b.Run("order="+ord.String(), func(b *testing.B) {
			var util float64
			for i := 0; i < b.N; i++ {
				res, err := igepa.LPPacking(in, igepa.LPPackingOptions{Repair: ord, Seed: int64(i)})
				if err != nil {
					b.Fatal(err)
				}
				util = res.Utility
			}
			b.ReportMetric(util, "utility")
		})
	}
}

// --- micro-benchmarks of the pipeline stages -----------------------------

func BenchmarkSyntheticGenerate(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := igepa.Synthetic(igepa.SyntheticConfig{Seed: int64(i)}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkMeetupGenerate(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := igepa.Meetup(igepa.MeetupConfig{Seed: int64(i)}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkLPPackingDefaults is the headline end-to-end benchmark: the
// |U|=4000 Table I sweep point, the scale at which the revised solver's
// parallel Devex pricing and the flat CSC/arena storage pay off. Run with
// -benchtime 1x for a smoke (one solve ≈ tens of seconds single-threaded).
func BenchmarkLPPackingDefaults(b *testing.B) {
	in, err := igepa.Synthetic(igepa.SyntheticConfig{Seed: 1, NumUsers: 4000, NumEvents: 200})
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := igepa.LPPacking(in, igepa.LPPackingOptions{Seed: int64(i)}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkLPPackingMedium is the former default scale, kept for quick
// comparisons and for machines where the 4000-user point is too slow.
func BenchmarkLPPackingMedium(b *testing.B) {
	in, err := igepa.Synthetic(igepa.SyntheticConfig{Seed: 1, NumUsers: 500, NumEvents: 100})
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := igepa.LPPacking(in, igepa.LPPackingOptions{Seed: int64(i)}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkShardedOnline is the serving-layer point: a Meetup-style arrival
// stream replayed through internal/shard at S ∈ {1,2,4,8} under each lease
// policy. The S=1 row is the single-shard baseline the sharded rows are
// compared against; utility and the vs-single ratio are reported as metrics
// so lease-fragmentation regressions are visible alongside throughput
// (measured at S=8: even ≈0.997 of single-shard utility, demand ≈0.9997,
// lp ≈1.0007 — the demand-aware renewal closes the even split's gap).
func BenchmarkShardedOnline(b *testing.B) {
	in, err := igepa.Meetup(igepa.MeetupConfig{Seed: 1, NumEvents: 120, NumUsers: 1500})
	if err != nil {
		b.Fatal(err)
	}
	order := make([]int, in.NumUsers())
	for i := range order {
		order[i] = i
	}
	base, err := igepa.ServeSharded(in, order, igepa.ShardOptions{Shards: 1, Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	single := base.Utility
	run := func(s int, lease igepa.LeasePolicy) func(b *testing.B) {
		return func(b *testing.B) {
			b.ReportAllocs()
			var util float64
			for i := 0; i < b.N; i++ {
				res, err := igepa.ServeSharded(in, order, igepa.ShardOptions{Shards: s, Seed: 1, Lease: lease})
				if err != nil {
					b.Fatal(err)
				}
				util = res.Utility
			}
			b.ReportMetric(util, "utility")
			b.ReportMetric(util/single, "vs-single")
			b.ReportMetric(float64(len(order))*float64(b.N)/b.Elapsed().Seconds(), "arrivals/s")
		}
	}
	b.Run("shards=1", run(1, igepa.LeaseDemand))
	for _, s := range []int{2, 4, 8} {
		for _, lease := range []igepa.LeasePolicy{igepa.LeaseDemand, igepa.LeaseEven, igepa.LeaseLP} {
			b.Run(fmt.Sprintf("shards=%d/lease=%v", s, lease), run(s, lease))
		}
	}
}

func BenchmarkGreedyDefaults(b *testing.B) {
	in, err := igepa.Synthetic(igepa.SyntheticConfig{Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = igepa.Greedy(in)
	}
}

func BenchmarkRandomBaselines(b *testing.B) {
	in, err := igepa.Synthetic(igepa.SyntheticConfig{Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	b.Run("random-u", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			_ = igepa.RandomU(in, int64(i))
		}
	})
	b.Run("random-v", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			_ = igepa.RandomV(in, int64(i))
		}
	})
}

func BenchmarkValidate(b *testing.B) {
	in, err := igepa.Synthetic(igepa.SyntheticConfig{Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	arr := igepa.Greedy(in)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := igepa.Validate(in, arr); err != nil {
			b.Fatal(err)
		}
	}
}
