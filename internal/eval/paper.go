package eval

import (
	"fmt"
	"sort"

	"github.com/ebsn/igepa/internal/baselines"
	"github.com/ebsn/igepa/internal/core"
	"github.com/ebsn/igepa/internal/model"
	"github.com/ebsn/igepa/internal/workload"
)

// MeetupMaxSetsPerUser caps admissible-set enumeration on the Meetup-like
// dataset, where heavy users (large attendance histories) would otherwise
// contribute hundreds of thousands of LP columns. Truncation keeps the
// heaviest sets and all singletons.
const MeetupMaxSetsPerUser = 2000

// StandardAlgorithms returns the paper's four algorithms (§IV "Baselines"):
// LP-packing (α as given; the paper's experiments use α=1), GG, Random-U and
// Random-V.
func StandardAlgorithms(alpha float64, maxSets int) []Algorithm {
	return []Algorithm{
		LPPackingAlgorithm("LP-packing", core.Options{Alpha: alpha, MaxSetsPerUser: maxSets}),
		{Name: "GG", Run: func(in *model.Instance, seed int64) (*model.Arrangement, error) {
			return baselines.Greedy(in), nil
		}},
		{Name: "Random-U", Run: func(in *model.Instance, seed int64) (*model.Arrangement, error) {
			return baselines.RandomU(in, seed), nil
		}},
		{Name: "Random-V", Run: func(in *model.Instance, seed int64) (*model.Arrangement, error) {
			return baselines.RandomV(in, seed), nil
		}},
	}
}

// LPPackingAlgorithm wraps core.LPPacking as a named harness algorithm; the
// per-run seed overrides opt.Seed.
func LPPackingAlgorithm(name string, opt core.Options) Algorithm {
	return Algorithm{Name: name, Run: func(in *model.Instance, seed int64) (*model.Arrangement, error) {
		o := opt
		o.Seed = seed
		res, err := core.LPPacking(in, o)
		if err != nil {
			return nil, err
		}
		return res.Arrangement, nil
	}}
}

// syntheticPoint builds a Point whose instances come from the Table I
// generator with one factor overridden by mod.
func syntheticPoint(label string, x float64, seed int64, mod func(*workload.SyntheticConfig)) Point {
	return Point{
		Label: label,
		X:     x,
		Gen: func(rep int) (*model.Instance, error) {
			cfg := workload.SyntheticConfig{Seed: seed + int64(rep)*7919}
			mod(&cfg)
			return workload.Synthetic(cfg)
		},
	}
}

// Paper returns the experiment with the given id. Valid ids are the keys of
// PaperExperiments.
func Paper(id string, seed int64) (*Experiment, error) {
	f, ok := paperRegistry[id]
	if !ok {
		return nil, fmt.Errorf("eval: unknown experiment %q (have %v)", id, PaperExperimentIDs())
	}
	return f(seed), nil
}

// PaperExperimentIDs lists the available experiment ids in stable order.
func PaperExperimentIDs() []string {
	ids := make([]string, 0, len(paperRegistry))
	for id := range paperRegistry {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	return ids
}

var paperRegistry = map[string]func(seed int64) *Experiment{
	"fig1a": func(seed int64) *Experiment {
		e := &Experiment{ID: "fig1a", Title: "utility vs number of events", XLabel: "|V|",
			Algorithms: StandardAlgorithms(1, 0)}
		for _, nv := range []int{100, 150, 200, 250, 300} {
			nv := nv
			e.Points = append(e.Points, syntheticPoint(fmt.Sprintf("|V|=%d", nv), float64(nv), seed,
				func(c *workload.SyntheticConfig) { c.NumEvents = nv }))
		}
		return e
	},
	"fig1b": func(seed int64) *Experiment {
		e := &Experiment{ID: "fig1b", Title: "utility vs number of users", XLabel: "|U|",
			Algorithms: StandardAlgorithms(1, 0)}
		for _, nu := range []int{1000, 2000, 4000, 6000, 8000, 10000} {
			nu := nu
			e.Points = append(e.Points, syntheticPoint(fmt.Sprintf("|U|=%d", nu), float64(nu), seed,
				func(c *workload.SyntheticConfig) { c.NumUsers = nu }))
		}
		return e
	},
	"fig1c": func(seed int64) *Experiment {
		e := &Experiment{ID: "fig1c", Title: "utility vs conflict probability", XLabel: "pcf",
			Algorithms: StandardAlgorithms(1, 0)}
		for _, p := range []float64{0.1, 0.2, 0.3, 0.4, 0.5} {
			p := p
			e.Points = append(e.Points, syntheticPoint(fmt.Sprintf("pcf=%.1f", p), p, seed,
				func(c *workload.SyntheticConfig) { c.PConflict = p }))
		}
		return e
	},
	"fig1d": func(seed int64) *Experiment {
		e := &Experiment{ID: "fig1d", Title: "utility vs friendship probability", XLabel: "pdeg",
			Algorithms: StandardAlgorithms(1, 0)}
		for _, p := range []float64{0.1, 0.3, 0.5, 0.7, 0.9} {
			p := p
			e.Points = append(e.Points, syntheticPoint(fmt.Sprintf("pdeg=%.1f", p), p, seed,
				func(c *workload.SyntheticConfig) { c.PFriend = p }))
		}
		return e
	},
	"fig1e": func(seed int64) *Experiment {
		e := &Experiment{ID: "fig1e", Title: "utility vs maximum event capacity", XLabel: "max cv",
			Algorithms: StandardAlgorithms(1, 0)}
		for _, cv := range []int{10, 30, 50, 70, 90} {
			cv := cv
			e.Points = append(e.Points, syntheticPoint(fmt.Sprintf("max cv=%d", cv), float64(cv), seed,
				func(c *workload.SyntheticConfig) { c.MaxEventCap = cv }))
		}
		return e
	},
	"fig1f": func(seed int64) *Experiment {
		e := &Experiment{ID: "fig1f", Title: "utility vs maximum user capacity", XLabel: "max cu",
			Algorithms: StandardAlgorithms(1, 0)}
		for _, cu := range []int{2, 3, 4, 5, 6} {
			cu := cu
			e.Points = append(e.Points, syntheticPoint(fmt.Sprintf("max cu=%d", cu), float64(cu), seed,
				func(c *workload.SyntheticConfig) { c.MaxUserCap = cu }))
		}
		return e
	},
	"table2": func(seed int64) *Experiment {
		return &Experiment{
			ID: "table2", Title: "utility on the Meetup-like real dataset", XLabel: "dataset",
			Algorithms: StandardAlgorithms(1, MeetupMaxSetsPerUser),
			Points: []Point{{
				Label: "meetup-sf",
				X:     0,
				Gen: func(rep int) (*model.Instance, error) {
					return workload.Meetup(workload.MeetupConfig{Seed: seed + int64(rep)*7919})
				},
			}},
		}
	},
	"ablate-alpha": func(seed int64) *Experiment {
		e := &Experiment{ID: "ablate-alpha", Title: "LP-packing sampling rate ablation", XLabel: "dataset",
			Points: []Point{syntheticPoint("defaults", 0, seed, func(*workload.SyntheticConfig) {})}}
		for _, a := range []float64{0.25, 0.5, 0.75, 1.0} {
			e.Algorithms = append(e.Algorithms,
				LPPackingAlgorithm(fmt.Sprintf("alpha=%.2f", a), core.Options{Alpha: a}))
		}
		return e
	},
	"ablate-repair": func(seed int64) *Experiment {
		e := &Experiment{ID: "ablate-repair", Title: "LP-packing repair-order ablation", XLabel: "dataset",
			Points: []Point{syntheticPoint("defaults (cv/5)", 0, seed, func(c *workload.SyntheticConfig) {
				// tight capacities make repair actually bite
				c.MaxEventCap = 10
			})}}
		for _, ord := range []core.RepairOrder{core.RepairByIndex, core.RepairRandom, core.RepairByWeightAsc} {
			e.Algorithms = append(e.Algorithms,
				LPPackingAlgorithm("repair="+ord.String(), core.Options{Repair: ord}))
		}
		e.Algorithms = append(e.Algorithms,
			LPPackingAlgorithm("repair=index+fill", core.Options{GreedyFill: true}))
		return e
	},
}
