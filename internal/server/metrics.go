package server

import (
	"sync"
	"sync/atomic"
	"time"

	"github.com/ebsn/igepa/internal/stats"
)

// reservoirSize bounds the latency sample memory: the percentiles reported
// by /statsz are over a sliding window of the most recent samples.
const reservoirSize = 4096

// reservoir is a fixed-size ring of latency samples safe for concurrent
// writers (shard loops) and readers (/statsz).
type reservoir struct {
	mu    sync.Mutex
	buf   [reservoirSize]int64 // nanoseconds
	next  int
	count int64
}

func (r *reservoir) add(d time.Duration) {
	r.mu.Lock()
	r.buf[r.next] = int64(d)
	r.next = (r.next + 1) % reservoirSize
	r.count++
	r.mu.Unlock()
}

// percentiles returns (p50, p99) over the current window; zeros when empty.
func (r *reservoir) percentiles() (p50, p99 time.Duration) {
	r.mu.Lock()
	n := int(r.count)
	if n > reservoirSize {
		n = reservoirSize
	}
	samples := make([]time.Duration, n)
	for i := 0; i < n; i++ {
		samples[i] = time.Duration(r.buf[i])
	}
	r.mu.Unlock()
	ps := stats.DurationPercentiles(samples, 0.50, 0.99)
	return ps[0], ps[1]
}

// metrics is the server's counter set. Everything is atomic so the admin
// surface never takes the serving locks.
type metrics struct {
	arrivals    atomic.Int64 // accepted bid submissions (queued)
	decided     atomic.Int64 // decisions delivered
	granted     atomic.Int64 // decisions with ≥ 1 event
	cancels     atomic.Int64
	rejected    atomic.Int64 // 429: queue full
	conflicts   atomic.Int64 // 409: duplicate submission / bad state
	badRequests atomic.Int64 // 400
	misrouted   atomic.Int64 // 421: cluster shard asked about a user it does not own
	leaseErrors atomic.Int64
	walErrors   atomic.Int64 // WAL append/fsync failures (durability lost)

	queueWait reservoir // enqueue → processing start
	decide    reservoir // planner time per arrival
	total     reservoir // enqueue → decision delivered
	walAppend reservoir // WAL append+commit per micro-batch, amortized per decision
}

// Percentiles is a (p50, p99) pair in microseconds, the /statsz currency.
type Percentiles struct {
	P50Micros int64 `json:"p50_us"`
	P99Micros int64 `json:"p99_us"`
}

func (r *reservoir) snapshot() Percentiles {
	p50, p99 := r.percentiles()
	return Percentiles{P50Micros: p50.Microseconds(), P99Micros: p99.Microseconds()}
}
