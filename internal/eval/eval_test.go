package eval

import (
	"bytes"
	"errors"
	"strings"
	"testing"

	"github.com/ebsn/igepa/internal/model"
	"github.com/ebsn/igepa/internal/workload"
)

// smallExperiment is a fast two-point, two-algorithm sweep for harness
// tests.
func smallExperiment() *Experiment {
	gen := func(nv int) func(rep int) (*model.Instance, error) {
		return func(rep int) (*model.Instance, error) {
			return workload.Synthetic(workload.SyntheticConfig{
				Seed: int64(100*nv + rep), NumEvents: nv, NumUsers: 30,
				MaxEventCap: 4, MaxUserCap: 2, MinBids: 2, MaxBids: 4,
			})
		}
	}
	return &Experiment{
		ID: "small", Title: "harness test", XLabel: "|V|",
		Points: []Point{
			{Label: "|V|=10", X: 10, Gen: gen(10)},
			{Label: "|V|=15", X: 15, Gen: gen(15)},
		},
		Algorithms: StandardAlgorithms(1, 0),
	}
}

func TestRunProducesFullTable(t *testing.T) {
	tab, err := Run(smallExperiment(), RunConfig{Reps: 3, Seed: 1, Validate: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Series) != 4 {
		t.Fatalf("got %d series, want 4", len(tab.Series))
	}
	for _, s := range tab.Series {
		if len(s.Cells) != 2 {
			t.Fatalf("series %s has %d cells", s.Algorithm, len(s.Cells))
		}
		for _, c := range s.Cells {
			if c.N != 3 {
				t.Fatalf("cell has %d samples, want 3", c.N)
			}
			if c.Mean <= 0 {
				t.Fatalf("series %s has non-positive mean %v", s.Algorithm, c.Mean)
			}
		}
	}
}

func TestRunDeterministicAcrossParallelism(t *testing.T) {
	a, err := Run(smallExperiment(), RunConfig{Reps: 3, Seed: 9, Parallelism: 1})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(smallExperiment(), RunConfig{Reps: 3, Seed: 9, Parallelism: 8})
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Series {
		for j := range a.Series[i].Cells {
			if a.Series[i].Cells[j].Mean != b.Series[i].Cells[j].Mean {
				t.Fatalf("parallelism changed results: %v vs %v",
					a.Series[i].Cells[j].Mean, b.Series[i].Cells[j].Mean)
			}
		}
	}
}

func TestRunPropagatesErrors(t *testing.T) {
	e := smallExperiment()
	sentinel := errors.New("boom")
	e.Algorithms = append(e.Algorithms, Algorithm{
		Name: "broken",
		Run: func(in *model.Instance, seed int64) (*model.Arrangement, error) {
			return nil, sentinel
		},
	})
	if _, err := Run(e, RunConfig{Reps: 2, Seed: 1}); err == nil {
		t.Fatal("error not propagated")
	}
}

func TestRunValidateCatchesInfeasible(t *testing.T) {
	e := smallExperiment()
	e.Algorithms = []Algorithm{{
		Name: "cheater",
		Run: func(in *model.Instance, seed int64) (*model.Arrangement, error) {
			arr := model.NewArrangement(in.NumUsers())
			// assign event 0 to user 0 regardless of bids — usually invalid
			arr.Sets[0] = []int{0}
			return arr, nil
		},
	}}
	_, err := Run(e, RunConfig{Reps: 5, Seed: 1, Validate: true})
	if err == nil {
		t.Skip("cheater happened to be feasible on every rep; acceptable")
	}
	if !strings.Contains(err.Error(), "infeasible") {
		t.Fatalf("unexpected error: %v", err)
	}
}

func TestPaperRegistryComplete(t *testing.T) {
	want := []string{"ablate-alpha", "ablate-repair", "fig1a", "fig1b", "fig1c", "fig1d", "fig1e", "fig1f", "table2"}
	got := PaperExperimentIDs()
	if len(got) != len(want) {
		t.Fatalf("ids = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("ids = %v, want %v", got, want)
		}
	}
	for _, id := range want {
		e, err := Paper(id, 1)
		if err != nil {
			t.Fatal(err)
		}
		if e.ID != id || len(e.Points) == 0 || len(e.Algorithms) == 0 {
			t.Fatalf("experiment %s malformed: %d points %d algorithms", id, len(e.Points), len(e.Algorithms))
		}
	}
	if _, err := Paper("nope", 1); err == nil {
		t.Fatal("unknown id accepted")
	}
}

func TestPaperSweepValuesMatchDesign(t *testing.T) {
	e, _ := Paper("fig1b", 1)
	want := []float64{1000, 2000, 4000, 6000, 8000, 10000}
	for i, p := range e.Points {
		if p.X != want[i] {
			t.Fatalf("fig1b x values wrong: %v at %d", p.X, i)
		}
	}
	e, _ = Paper("table2", 1)
	if len(e.Points) != 1 {
		t.Fatal("table2 should have a single dataset point")
	}
}

func TestRenderTextAndCSV(t *testing.T) {
	tab, err := Run(smallExperiment(), RunConfig{Reps: 2, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	var txt bytes.Buffer
	if err := RenderText(&txt, tab); err != nil {
		t.Fatal(err)
	}
	out := txt.String()
	for _, want := range []string{"LP-packing", "GG", "Random-U", "Random-V", "|V|=10", "|V|=15"} {
		if !strings.Contains(out, want) {
			t.Errorf("text output missing %q:\n%s", want, out)
		}
	}
	var csv bytes.Buffer
	if err := RenderCSV(&csv, tab); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(csv.String()), "\n")
	// header + 2 points × 4 algorithms
	if len(lines) != 1+8 {
		t.Errorf("CSV has %d lines, want 9:\n%s", len(lines), csv.String())
	}
	if !strings.HasPrefix(lines[0], "experiment,x,") {
		t.Errorf("CSV header wrong: %s", lines[0])
	}
}

func TestCSVEscape(t *testing.T) {
	if got := csvEscape(`a,b`); got != `"a,b"` {
		t.Errorf("csvEscape = %q", got)
	}
	if got := csvEscape(`a"b`); got != `"a""b"` {
		t.Errorf("csvEscape = %q", got)
	}
	if got := csvEscape("plain"); got != "plain" {
		t.Errorf("csvEscape = %q", got)
	}
}

func TestRunRatioAboveTheoremFloor(t *testing.T) {
	res, err := RunRatio(RatioConfig{Instances: 8, SamplesPerInstance: 12, Seed: 5}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Aggregate.N == 0 {
		t.Fatal("no ratio samples")
	}
	// Theorem 2: E[ALG] ≥ OPT/4 at α=1/2. With sampling noise we still
	// expect to stay clear of the floor on these benign instances.
	if res.WorstCase < 0.25 {
		t.Errorf("worst-case empirical ratio %.3f below theoretical floor 0.25", res.WorstCase)
	}
	if res.LPGapMax > 1+1e-6 {
		t.Errorf("OPT exceeded LP bound: %v (violates Lemma 1)", res.LPGapMax)
	}
	var buf bytes.Buffer
	if err := RenderRatioText(&buf, res); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "0.25") {
		t.Errorf("ratio rendering missing floor: %s", buf.String())
	}
}

func TestDeriveSeedIndependence(t *testing.T) {
	seen := map[int64]bool{}
	for p := 0; p < 5; p++ {
		for r := 0; r < 5; r++ {
			for a := 0; a < 4; a++ {
				s := deriveSeed(42, p, r, a)
				if seen[s] {
					t.Fatalf("seed collision at (%d,%d,%d)", p, r, a)
				}
				seen[s] = true
			}
		}
	}
}
