package core

import (
	"fmt"
	"sort"

	"github.com/ebsn/igepa/internal/admissible"
	"github.com/ebsn/igepa/internal/conflict"
	"github.com/ebsn/igepa/internal/lp"
	"github.com/ebsn/igepa/internal/model"
	"github.com/ebsn/igepa/internal/par"
	"github.com/ebsn/igepa/internal/xrand"
)

// Delta names the parts of the instance a caller mutated since the previous
// solve. The Planner re-derives exactly those parts — admissible sets and LP
// columns for the listed users, LP row bounds for the listed events — and
// warm-starts the LP from the previous basis. The user and event counts of
// the instance must not change; model departures as a user whose Bids were
// set to nil and closed events as Capacity 0.
type Delta struct {
	// Users whose Bids or Capacity changed (bids arrived, expired, or the
	// user left).
	Users []int
	// Events whose Capacity changed (seats granted elsewhere, capacity
	// raised).
	Events []int
}

// Empty reports whether the delta names nothing.
func (d *Delta) Empty() bool { return len(d.Users) == 0 && len(d.Events) == 0 }

// Planner is the incremental mode of LPPacking: it owns a persistent
// warm-starting LP solver (lp.Solver) plus the enumeration state behind the
// benchmark LP, so a stream of small instance deltas costs a warm re-solve
// each instead of a from-scratch pipeline run. The serving stack uses it to
// keep a live LP bound (and arrangement) while bids arrive and capacities
// shrink.
//
// The caller mutates the instance in place (Users[u].Bids, Users[u].Capacity,
// Events[v].Capacity), then calls Update naming what changed. Derived caches
// (weights, bidder lists) are re-synced by the Planner; results after an
// Update are identical to rebuilding a Planner on the mutated instance
// except for LP-degenerate alternate optima (the objective agrees to
// round-off, and every solution certifies against the current LP).
//
// A Planner is not safe for concurrent use. Close releases the solver state
// back to the dimension-keyed arena pool.
type Planner struct {
	in   *model.Instance
	opt  Options
	conf *conflict.Matrix

	sets      [][]admissible.Set
	truncated []bool
	owner     [][2]int // column -> (user, set index), aligned with the LP

	solver *lp.Solver
	sol    *lp.Solution

	changed []bool // scratch: user membership of the current delta
}

// NewPlanner builds the pipeline state for the instance, solves the
// benchmark LP cold, and returns a Planner ready for Update calls.
// Options.Presolve and Options.Solver are incompatible with incremental
// operation (presolve re-maps the column space under the solver's feet, and
// the persistent solver is the revised simplex by construction); setting
// either is an error.
func NewPlanner(in *model.Instance, opt Options) (*Planner, error) {
	if opt.Presolve {
		return nil, fmt.Errorf("core: incremental planner does not support Presolve")
	}
	if opt.Solver != nil {
		return nil, fmt.Errorf("core: incremental planner drives its own persistent solver; Options.Solver must be nil")
	}
	if err := in.Check(); err != nil {
		return nil, err
	}
	if alpha := opt.Alpha; alpha != 0 && (alpha < 0 || alpha > 1) {
		return nil, fmt.Errorf("core: alpha = %v outside (0,1]", alpha)
	}
	in.Weights()
	p := &Planner{
		in:        in,
		opt:       opt,
		conf:      conflict.FromFunc(in.NumEvents(), in.Conflicts),
		truncated: make([]bool, in.NumUsers()),
		solver:    lp.NewSolver(lp.Revised{Workers: opt.Workers}),
	}
	workers := par.Workers(opt.Workers)
	p.sets = make([][]admissible.Set, in.NumUsers())
	enumerateInto(in, p.conf, p.sets, p.truncated, nil, opt.MaxSetsPerUser, workers)
	prob, owner := BuildBenchmarkLP(in, p.sets)
	p.owner = owner
	sol, err := p.solver.Solve(prob)
	if err != nil {
		return nil, fmt.Errorf("core: benchmark LP: %w", err)
	}
	p.sol = sol
	return p, nil
}

// Close releases the persistent solver state to the arena pool. The Planner
// must not be used afterwards.
func (p *Planner) Close() {
	if p.solver != nil {
		p.solver.Release()
	}
}

// Stats exposes the underlying solver's warm/cold counters.
func (p *Planner) Stats() lp.SolverStats { return p.solver.Stats() }

// Objective returns the current benchmark-LP optimum — the live upper bound
// on the optimal utility of the current instance.
func (p *Planner) Objective() float64 { return p.sol.Objective }

// Update re-syncs the Planner with the instance after the caller's mutation,
// re-solving the LP warm from the previous basis, and returns the rounded
// result for the updated instance.
func (p *Planner) Update(d Delta) (*Result, error) {
	in := p.in
	nu := in.NumUsers()
	for _, u := range d.Users {
		if u < 0 || u >= nu {
			return nil, fmt.Errorf("core: delta names unknown user %d", u)
		}
	}
	for _, v := range d.Events {
		if v < 0 || v >= in.NumEvents() {
			return nil, fmt.Errorf("core: delta names unknown event %d", v)
		}
	}
	if len(d.Users) > 0 {
		// Bids changed: the CSR weight cache and bidder lists are stale.
		in.Invalidate()
	}
	if err := in.Check(); err != nil {
		return nil, fmt.Errorf("core: instance invalid after mutation: %w", err)
	}
	in.Weights()

	var lpd lp.ProblemDelta
	if len(d.Users) > 0 {
		if cap(p.changed) < nu {
			p.changed = make([]bool, nu)
		} else {
			p.changed = p.changed[:nu]
			for i := range p.changed {
				p.changed[i] = false
			}
		}
		users := append([]int(nil), d.Users...)
		sort.Ints(users)
		users = dedupeSorted(users)
		for _, u := range users {
			p.changed[u] = true
		}
		enumerateInto(in, p.conf, p.sets, p.truncated, users, p.opt.MaxSetsPerUser, par.Workers(p.opt.Workers))

		// Replace the changed users' columns: remove all their old ones,
		// append the re-enumerated ones in ascending user order. The
		// surviving columns keep their relative order (lp.ProblemDelta's
		// contract), so the owner map is rebuilt by the same rule.
		newOwner := p.owner[:0:0]
		for j, ow := range p.owner {
			if p.changed[ow[0]] {
				lpd.RemoveCols = append(lpd.RemoveCols, j)
			} else {
				newOwner = append(newOwner, ow)
			}
		}
		for _, u := range users {
			for si, s := range p.sets[u] {
				rows := make([]int, 0, len(s.Events)+1)
				rows = append(rows, u)
				for _, v := range s.Events {
					rows = append(rows, nu+v)
				}
				lpd.AddCols = append(lpd.AddCols, lp.Column{Rows: rows, Vals: onesOf(len(rows))})
				lpd.AddC = append(lpd.AddC, s.Weight)
				newOwner = append(newOwner, [2]int{u, si})
			}
		}
		p.owner = newOwner
	}
	for _, v := range d.Events {
		lpd.SetB = append(lpd.SetB, lp.BoundChange{Row: nu + v, B: float64(in.Events[v].Capacity)})
	}

	sol, err := p.solver.Resolve(lpd)
	if err != nil {
		return nil, fmt.Errorf("core: benchmark LP re-solve: %w", err)
	}
	p.sol = sol
	return p.Round()
}

// Round samples, repairs and scores an arrangement from the current LP
// solution — the tail of Algorithm 1 over the incremental state. It is
// deterministic given Options.Seed, so calling it twice without an Update in
// between returns identical results.
func (p *Planner) Round() (*Result, error) {
	alpha := p.opt.Alpha
	if alpha == 0 {
		alpha = 1
	}
	truncated := 0
	for _, t := range p.truncated {
		if t {
			truncated++
		}
	}
	return finish(p.in, p.conf, p.sets, p.owner, p.solver.Problem(), p.sol,
		alpha, p.opt, xrand.New(p.opt.Seed), truncated)
}

// onesOf returns a fresh all-ones coefficient vector.
func onesOf(n int) []float64 {
	v := make([]float64, n)
	for i := range v {
		v[i] = 1
	}
	return v
}

// dedupeSorted compacts consecutive duplicates in a sorted slice.
func dedupeSorted(s []int) []int {
	out := s[:0]
	for i, v := range s {
		if i == 0 || v != s[i-1] {
			out = append(out, v)
		}
	}
	return out
}

// enumerateInto (re-)enumerates admissible sets for the given users (nil
// means every user) on the bounded worker pool, writing each user's sets and
// truncation flag into the caller's slots.
func enumerateInto(in *model.Instance, conf *conflict.Matrix, sets [][]admissible.Set,
	trunc []bool, users []int, maxSets, workers int) {
	wc := in.Weights()
	body := func(u int) {
		usr := &in.Users[u]
		w := func(v int) float64 { return wc.Of(u, v) }
		r := admissible.Enumerate(usr.Bids, usr.Capacity, conf, w, admissible.Config{MaxSetsPerUser: maxSets})
		sets[u] = r.Sets
		trunc[u] = r.Truncated
	}
	if users == nil {
		par.For(workers, in.NumUsers(), 16, body)
		return
	}
	par.For(workers, len(users), 16, func(i int) { body(users[i]) })
}
