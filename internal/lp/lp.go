// Package lp is a self-contained linear-programming substrate replacing the
// Gurobi dependency of the original paper.
//
// It solves packing-form linear programs
//
//	max  cᵀx   subject to   Ax ≤ b,  x ≥ 0,  b ≥ 0
//
// which is exactly the shape of the IGEPA benchmark LP (1)-(4): user rows
// (Σ_S x_{u,S} ≤ 1) and event rows (Σ x ≤ cv) with 0/1 coefficients. The
// explicit upper bounds x ≤ 1 of (4) are implied by the user rows, so they
// are not represented.
//
// Two solvers are provided:
//
//   - Dense: a textbook full-tableau primal simplex. Small, easy to audit,
//     O((m+n)·m) memory — the reference oracle for tests and small problems.
//   - Revised: a revised primal simplex that maintains the basis as a sparse
//     LU factorization with product-form (eta) updates and periodic
//     refactorization — the production path for paper-scale instances
//     (m = |U|+|V| up to ≈10⁴ rows).
//
// Both start from the all-slack basis (feasible because b ≥ 0, so no phase-1
// is needed), price with Dantzig's rule, and fall back to Bland's rule after
// a run of degenerate pivots to guarantee termination. Verify certifies a
// solution's optimality from first principles (primal feasibility, dual
// feasibility, and strong duality), independent of solver internals.
package lp

import (
	"errors"
	"fmt"
	"math"
)

// Column is one sparse column in assembly form: Rows[i] holds the row index
// of the i-th nonzero and Vals[i] its coefficient. Problems no longer store
// columns this way (see Problem); Column remains the convenience currency of
// NewProblem, the LU kernel's tests and hand-written fixtures.
type Column struct {
	Rows []int
	Vals []float64
}

// Problem is a packing-form LP: max cᵀx s.t. Ax ≤ b, x ≥ 0 with b ≥ 0.
//
// The constraint matrix A is stored in flat compressed-sparse-column (CSC)
// form: column j occupies Rows[ColPtr[j]:ColPtr[j+1]] / Vals[...]. Compared
// with the former per-column slice-pair layout this collapses the millions
// of tiny allocations of a Meetup-scale build into three slices, and keeps
// the simplex pricing pass walking one contiguous array.
type Problem struct {
	NumRows int       // m, number of constraints
	C       []float64 // objective coefficients, len n
	B       []float64 // right-hand side, len m, non-negative

	ColPtr []int     // len n+1 (nil ⇔ no columns); ColPtr[0] == 0
	Rows   []int32   // row indices of nonzeros, column-major
	Vals   []float64 // coefficients, aligned with Rows
}

// NumCols returns n, the number of structural variables.
func (p *Problem) NumCols() int {
	if len(p.ColPtr) == 0 {
		return 0
	}
	return len(p.ColPtr) - 1
}

// NNZ returns the number of stored nonzeros.
func (p *Problem) NNZ() int { return len(p.Rows) }

// Col returns column j as (row indices, values) views into the shared CSC
// arrays. Callers must not modify the returned slices.
func (p *Problem) Col(j int) ([]int32, []float64) {
	lo, hi := p.ColPtr[j], p.ColPtr[j+1]
	return p.Rows[lo:hi], p.Vals[lo:hi]
}

// Reserve grows the column storage to hold at least cols columns and nnz
// nonzeros, so a builder that knows its final size pays one allocation per
// backing array.
func (p *Problem) Reserve(cols, nnz int) {
	if cap(p.ColPtr) < cols+1 {
		cp := make([]int, len(p.ColPtr), cols+1)
		copy(cp, p.ColPtr)
		p.ColPtr = cp
	}
	if cap(p.Rows) < nnz {
		r := make([]int32, len(p.Rows), nnz)
		copy(r, p.Rows)
		p.Rows = r
	}
	if cap(p.Vals) < nnz {
		v := make([]float64, len(p.Vals), nnz)
		copy(v, p.Vals)
		p.Vals = v
	}
	if cap(p.C) < cols {
		c := make([]float64, len(p.C), cols)
		copy(c, p.C)
		p.C = c
	}
}

// AddColumn appends one column with objective coefficient c. rows and vals
// are copied into the flat storage.
func (p *Problem) AddColumn(c float64, rows []int, vals []float64) {
	if len(rows) != len(vals) {
		panic("lp: AddColumn with mismatched rows/vals")
	}
	if len(p.ColPtr) == 0 {
		p.ColPtr = append(p.ColPtr, 0)
	}
	for _, r := range rows {
		p.Rows = append(p.Rows, int32(r))
	}
	p.Vals = append(p.Vals, vals...)
	p.ColPtr = append(p.ColPtr, len(p.Rows))
	p.C = append(p.C, c)
}

// addColumn32 is AddColumn for int32 row indices (CSC-to-CSC copies).
func (p *Problem) addColumn32(c float64, rows []int32, vals []float64) {
	if len(p.ColPtr) == 0 {
		p.ColPtr = append(p.ColPtr, 0)
	}
	p.Rows = append(p.Rows, rows...)
	p.Vals = append(p.Vals, vals...)
	p.ColPtr = append(p.ColPtr, len(p.Rows))
	p.C = append(p.C, c)
}

// NewProblem assembles a CSC Problem from per-column data: the bridge from
// hand-written fixtures and external assembly code to the flat layout.
func NewProblem(numRows int, b []float64, c []float64, cols []Column) *Problem {
	p := &Problem{NumRows: numRows, B: b}
	nnz := 0
	for j := range cols {
		nnz += len(cols[j].Rows)
	}
	p.Reserve(len(cols), nnz)
	for j := range cols {
		p.AddColumn(c[j], cols[j].Rows, cols[j].Vals)
	}
	return p
}

// Check validates the problem shape: a well-formed ColPtr, matching lengths,
// row indices in range, b ≥ 0 and all data finite.
func (p *Problem) Check() error {
	if len(p.C) != p.NumCols() {
		return fmt.Errorf("lp: %d objective coefficients for %d columns", len(p.C), p.NumCols())
	}
	if len(p.B) != p.NumRows {
		return fmt.Errorf("lp: %d rhs entries for %d rows", len(p.B), p.NumRows)
	}
	if len(p.Rows) != len(p.Vals) {
		return fmt.Errorf("lp: %d row indices for %d values", len(p.Rows), len(p.Vals))
	}
	if len(p.ColPtr) > 0 {
		if p.ColPtr[0] != 0 {
			return fmt.Errorf("lp: ColPtr[0] = %d, want 0", p.ColPtr[0])
		}
		if last := p.ColPtr[len(p.ColPtr)-1]; last != len(p.Rows) {
			return fmt.Errorf("lp: ColPtr ends at %d for %d nonzeros", last, len(p.Rows))
		}
		for j := 1; j < len(p.ColPtr); j++ {
			if p.ColPtr[j] < p.ColPtr[j-1] {
				return fmt.Errorf("lp: ColPtr not monotone at column %d", j-1)
			}
		}
	} else if len(p.Rows) != 0 {
		return fmt.Errorf("lp: %d nonzeros with no ColPtr", len(p.Rows))
	}
	for i, b := range p.B {
		if b < 0 {
			return fmt.Errorf("lp: negative rhs b[%d] = %v (packing form requires b ≥ 0)", i, b)
		}
		if math.IsNaN(b) || math.IsInf(b, 0) {
			return fmt.Errorf("lp: non-finite rhs b[%d]", i)
		}
	}
	for k, r := range p.Rows {
		if r < 0 || int(r) >= p.NumRows {
			return fmt.Errorf("lp: nonzero %d references row %d of %d", k, r, p.NumRows)
		}
		if math.IsNaN(p.Vals[k]) || math.IsInf(p.Vals[k], 0) {
			return fmt.Errorf("lp: non-finite coefficient at nonzero %d", k)
		}
	}
	for j, c := range p.C {
		if math.IsNaN(c) || math.IsInf(c, 0) {
			return fmt.Errorf("lp: non-finite objective coefficient c[%d]", j)
		}
	}
	return nil
}

// Status reports how a solve terminated.
type Status int

const (
	// Optimal means an optimal basic solution was found.
	Optimal Status = iota
	// Unbounded means the objective can increase without limit.
	Unbounded
	// IterLimit means the iteration budget was exhausted before optimality.
	IterLimit
)

// String implements fmt.Stringer.
func (s Status) String() string {
	switch s {
	case Optimal:
		return "optimal"
	case Unbounded:
		return "unbounded"
	case IterLimit:
		return "iteration-limit"
	default:
		return fmt.Sprintf("Status(%d)", int(s))
	}
}

// Solution is the result of a solve.
type Solution struct {
	Status     Status
	X          []float64 // primal values, len n
	Y          []float64 // dual row prices, len m (valid when Status == Optimal)
	Objective  float64   // cᵀx
	Iterations int       // simplex pivots performed
}

// Backend is a one-shot LP algorithm: it solves a packing-form problem from
// scratch. Dense and Revised implement it. The stateful, warm-starting
// counterpart is Solver (solver.go), which owns its basis and factorization
// across solves and re-optimizes from the previous optimum via Resolve.
type Backend interface {
	Solve(p *Problem) (*Solution, error)
}

// ErrUnbounded is returned when the LP is unbounded. (The IGEPA benchmark LP
// is always bounded; seeing this indicates a malformed problem.)
var ErrUnbounded = errors.New("lp: problem is unbounded")

// ErrIterLimit is returned when the pivot budget is exhausted.
var ErrIterLimit = errors.New("lp: iteration limit reached")

// denseRowLimit is the size up to which the default Solve uses the dense
// tableau; larger problems use the revised simplex.
const denseRowLimit = 400

// Solve solves p with an automatically chosen solver: the dense tableau for
// small problems and the sparse revised simplex otherwise.
func Solve(p *Problem) (*Solution, error) {
	return SolveWorkers(p, 0)
}

// SolveWorkers is Solve with an explicit worker-pool bound for the revised
// solver's pricing passes (0 means GOMAXPROCS; results do not depend on
// it). The solver-selection rule lives only here, so every caller — with or
// without a worker preference — picks the same solver for the same problem.
func SolveWorkers(p *Problem, workers int) (*Solution, error) {
	return SolveConfig(p, Revised{Workers: workers})
}

// SolveConfig is Solve with the full set of revised-simplex tuning knobs,
// for callers that thread a solver configuration through their own options
// (internal/core, internal/shard). The dense-tableau shortcut for small
// problems still applies — cfg only shapes the revised solver — so the
// selection rule stays in one place.
func SolveConfig(p *Problem, cfg Revised) (*Solution, error) {
	if p.NumRows <= denseRowLimit && p.NumCols() <= 4*denseRowLimit {
		if err := cfg.validate(); err != nil {
			return nil, err // knobs are checked even when the dense path runs
		}
		return (&Dense{}).Solve(p)
	}
	return cfg.Solve(p)
}

// Verify certifies that sol is an optimal solution of p within tolerance
// tol, checking from first principles:
//
//	primal feasibility:  Ax ≤ b + tol,  x ≥ −tol
//	dual feasibility:    y ≥ −tol,  cⱼ − yᵀaⱼ ≤ tol for every column j
//	strong duality:      |cᵀx − bᵀy| ≤ tol·(1+|cᵀx|)
//
// Any LP solution passing these checks is optimal regardless of how it was
// produced, which is how the tests cross-validate the two simplex
// implementations.
func Verify(p *Problem, sol *Solution, tol float64) error {
	if sol.Status != Optimal {
		return fmt.Errorf("lp: cannot verify non-optimal status %v", sol.Status)
	}
	if len(sol.X) != p.NumCols() || len(sol.Y) != p.NumRows {
		return fmt.Errorf("lp: solution shape mismatch")
	}
	ax := make([]float64, p.NumRows)
	obj := 0.0
	for j := 0; j < p.NumCols(); j++ {
		x := sol.X[j]
		if x < -tol {
			return fmt.Errorf("lp: x[%d] = %v negative", j, x)
		}
		obj += p.C[j] * x
		rows, vals := p.Col(j)
		for k, r := range rows {
			ax[r] += vals[k] * x
		}
	}
	for i := 0; i < p.NumRows; i++ {
		if ax[i] > p.B[i]+tol*(1+math.Abs(p.B[i])) {
			return fmt.Errorf("lp: row %d violated: %v > %v", i, ax[i], p.B[i])
		}
		if sol.Y[i] < -tol {
			return fmt.Errorf("lp: dual y[%d] = %v negative", i, sol.Y[i])
		}
	}
	for j := 0; j < p.NumCols(); j++ {
		red := p.C[j]
		rows, vals := p.Col(j)
		for k, r := range rows {
			red -= sol.Y[r] * vals[k]
		}
		if red > tol*(1+math.Abs(p.C[j])) {
			return fmt.Errorf("lp: column %d has positive reduced cost %v", j, red)
		}
	}
	if math.Abs(obj-sol.Objective) > tol*(1+math.Abs(obj)) {
		return fmt.Errorf("lp: reported objective %v but cᵀx = %v", sol.Objective, obj)
	}
	by := 0.0
	for i, y := range sol.Y {
		by += p.B[i] * y
	}
	if math.Abs(obj-by) > tol*(1+math.Abs(obj)) {
		return fmt.Errorf("lp: duality gap: cᵀx = %v, bᵀy = %v", obj, by)
	}
	return nil
}
