package admissible

import (
	"math"
	"testing"
	"testing/quick"

	"github.com/ebsn/igepa/internal/conflict"
	"github.com/ebsn/igepa/internal/xrand"
)

func unitWeight(int) float64 { return 1 }

func TestNoConflictsCountsBinomial(t *testing.T) {
	// 5 non-conflicting bids, cap 3 → C(5,1)+C(5,2)+C(5,3) = 5+10+10 = 25
	m := conflict.NewMatrix(5)
	r := Enumerate([]int{0, 1, 2, 3, 4}, 3, m, unitWeight, Config{})
	if len(r.Sets) != 25 {
		t.Fatalf("got %d sets, want 25", len(r.Sets))
	}
	if r.Truncated {
		t.Fatal("unexpected truncation")
	}
}

func TestFullConflictOnlySingletons(t *testing.T) {
	m := conflict.FromFunc(4, func(v, w int) bool { return true })
	r := Enumerate([]int{0, 1, 2, 3}, 4, m, unitWeight, Config{})
	if len(r.Sets) != 4 {
		t.Fatalf("got %d sets, want 4 singletons", len(r.Sets))
	}
	for _, s := range r.Sets {
		if len(s.Events) != 1 {
			t.Fatalf("non-singleton set %v under complete conflicts", s.Events)
		}
	}
}

func TestCapacityLimitsSize(t *testing.T) {
	m := conflict.NewMatrix(6)
	r := Enumerate([]int{0, 1, 2, 3, 4, 5}, 2, m, unitWeight, Config{})
	for _, s := range r.Sets {
		if len(s.Events) > 2 {
			t.Fatalf("set %v exceeds capacity 2", s.Events)
		}
	}
	// C(6,1)+C(6,2) = 6+15 = 21
	if len(r.Sets) != 21 {
		t.Fatalf("got %d sets, want 21", len(r.Sets))
	}
}

func TestZeroCapacityOrNoBids(t *testing.T) {
	m := conflict.NewMatrix(3)
	if r := Enumerate([]int{0, 1}, 0, m, unitWeight, Config{}); len(r.Sets) != 0 {
		t.Error("cap 0 produced sets")
	}
	if r := Enumerate(nil, 3, m, unitWeight, Config{}); len(r.Sets) != 0 {
		t.Error("no bids produced sets")
	}
}

func TestDuplicateBidsIgnored(t *testing.T) {
	m := conflict.NewMatrix(3)
	r := Enumerate([]int{1, 1, 2, 2}, 2, m, unitWeight, Config{})
	// events {1,2}: 2 singletons + 1 pair
	if len(r.Sets) != 3 {
		t.Fatalf("got %d sets, want 3", len(r.Sets))
	}
}

func TestWeights(t *testing.T) {
	m := conflict.NewMatrix(3)
	w := func(v int) float64 { return float64(v + 1) } // 1, 2, 3
	r := Enumerate([]int{0, 1, 2}, 3, m, w, Config{})
	for _, s := range r.Sets {
		want := 0.0
		for _, v := range s.Events {
			want += float64(v + 1)
		}
		if math.Abs(s.Weight-want) > 1e-12 {
			t.Fatalf("set %v weight %v, want %v", s.Events, s.Weight, want)
		}
	}
}

func TestMixedConflicts(t *testing.T) {
	// events 0-1 conflict; bids {0,1,2}, cap 2.
	// sets: {0},{1},{2},{0,2},{1,2} = 5
	m := conflict.NewMatrix(3)
	m.Add(0, 1)
	r := Enumerate([]int{0, 1, 2}, 2, m, unitWeight, Config{})
	if len(r.Sets) != 5 {
		t.Fatalf("got %d sets, want 5: %v", len(r.Sets), r.Sets)
	}
	for _, s := range r.Sets {
		if len(s.Events) == 2 && s.Events[0] == 0 && s.Events[1] == 1 {
			t.Fatal("conflicting pair {0,1} enumerated")
		}
	}
}

func TestTruncationKeepsSingletonsAndReports(t *testing.T) {
	m := conflict.NewMatrix(12)
	bids := make([]int, 12)
	for i := range bids {
		bids[i] = i
	}
	r := Enumerate(bids, 6, m, unitWeight, Config{MaxSetsPerUser: 10})
	if !r.Truncated {
		t.Fatal("truncation not reported")
	}
	singles := map[int]bool{}
	for _, s := range r.Sets {
		if len(s.Events) == 1 {
			singles[s.Events[0]] = true
		}
	}
	for i := 0; i < 12; i++ {
		if !singles[i] {
			t.Fatalf("singleton {%d} missing after truncation", i)
		}
	}
}

func TestUnlimitedNegativeCap(t *testing.T) {
	m := conflict.NewMatrix(10)
	bids := make([]int, 10)
	for i := range bids {
		bids[i] = i
	}
	r := Enumerate(bids, 10, m, unitWeight, Config{MaxSetsPerUser: -1})
	if r.Truncated {
		t.Fatal("unlimited enumeration reported truncation")
	}
	if len(r.Sets) != 1023 { // 2^10 - 1
		t.Fatalf("got %d sets, want 1023", len(r.Sets))
	}
}

// Property: every enumerated set is sorted, within capacity, conflict-free,
// drawn from the bids, and the collection has no duplicates. Exhaustive
// cross-check against brute force for small instances.
func TestQuickAgainstBruteForce(t *testing.T) {
	f := func(seed int64) bool {
		rng := xrand.New(seed)
		nv := 2 + rng.Intn(8)
		m := conflict.Random(nv, rng.Float64(), rng)
		nbids := 1 + rng.Intn(nv)
		bidSet := map[int]bool{}
		for len(bidSet) < nbids {
			bidSet[rng.Intn(nv)] = true
		}
		var bids []int
		for v := range bidSet {
			bids = append(bids, v)
		}
		cap := 1 + rng.Intn(4)
		w := func(v int) float64 { return xrand.HashFloat(seed, 7, v) }

		r := Enumerate(bids, cap, m, w, Config{MaxSetsPerUser: -1})

		// brute force over all subsets of bids
		want := map[string]bool{}
		for mask := 1; mask < 1<<len(bids); mask++ {
			var s []int
			for i := range bids {
				if mask&(1<<i) != 0 {
					s = append(s, bids[i])
				}
			}
			if len(s) > cap {
				continue
			}
			ok := true
			for i := 0; i < len(s) && ok; i++ {
				for j := i + 1; j < len(s); j++ {
					if m.Conflicts(s[i], s[j]) {
						ok = false
						break
					}
				}
			}
			if ok {
				want[key(s)] = true
			}
		}
		got := map[string]bool{}
		for _, s := range r.Sets {
			k := key(s.Events)
			if got[k] {
				return false // duplicate
			}
			got[k] = true
		}
		if len(got) != len(want) {
			return false
		}
		for k := range want {
			if !got[k] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Error(err)
	}
}

func key(s []int) string {
	b := make([]byte, 0, len(s)*2)
	// events < 128 in tests; sorted sets
	sorted := append([]int(nil), s...)
	for i := 1; i < len(sorted); i++ {
		if sorted[i] < sorted[i-1] {
			for j := i; j > 0 && sorted[j] < sorted[j-1]; j-- {
				sorted[j], sorted[j-1] = sorted[j-1], sorted[j]
			}
		}
	}
	for _, v := range sorted {
		b = append(b, byte(v), ',')
	}
	return string(b)
}

func TestCountAll(t *testing.T) {
	m := conflict.NewMatrix(3)
	total := CountAll([][]int{{0, 1}, {2}}, []int{2, 1}, m)
	// user 0: {0},{1},{0,1} = 3; user 1: {2} = 1
	if total != 4 {
		t.Fatalf("CountAll = %d, want 4", total)
	}
}

func BenchmarkEnumerateTypicalUser(b *testing.B) {
	rng := xrand.New(3)
	m := conflict.Random(200, 0.3, rng)
	bids := []int{3, 17, 42, 77, 104, 150, 180, 199}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = Enumerate(bids, 4, m, unitWeight, Config{})
	}
}
