// Package interest implements the interest functions SI(lv, lu) ∈ [0,1]
// (Definition 5) used by the experiments: hashed uniform values (synthetic
// datasets, "interest values of users in events are uniformly sampled"),
// cosine and Jaccard similarity over attribute vectors (the Meetup-like
// dataset computes interests from attributes as in GEACC), and explicit
// lookup tables.
//
// All constructors return plain func(u, v int) float64 values, assignable to
// model.InterestFunc.
package interest

import (
	"math"

	"github.com/ebsn/igepa/internal/xrand"
)

// Hashed returns an interest function whose values are deterministic
// pseudo-uniform draws from [0,1) keyed by (seed, u, v). It behaves like an
// i.i.d. uniform interest table without materializing |U|×|V| floats.
func Hashed(seed int64) func(u, v int) float64 {
	return func(u, v int) float64 {
		return xrand.HashFloat(seed, u, v)
	}
}

// Cosine returns SI(u,v) = cos(lu, lv) clamped to [0,1], where lu and lv are
// the users' and events' attribute vectors. Vectors of unequal length are
// compared over their common prefix; zero vectors yield 0.
func Cosine(userAttrs, eventAttrs [][]float64) func(u, v int) float64 {
	return func(u, v int) float64 {
		return CosineSim(userAttrs[u], eventAttrs[v])
	}
}

// CosineSim computes the cosine similarity of two vectors clamped to [0,1].
func CosineSim(a, b []float64) float64 {
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	var dot, na, nb float64
	for i := 0; i < n; i++ {
		dot += a[i] * b[i]
	}
	for _, x := range a {
		na += x * x
	}
	for _, x := range b {
		nb += x * x
	}
	if na == 0 || nb == 0 {
		return 0
	}
	c := dot / (math.Sqrt(na) * math.Sqrt(nb))
	// Guard against overflow on extreme inputs (Inf/Inf → NaN): an interest
	// must always be a valid value in [0,1].
	if math.IsNaN(c) || c < 0 {
		return 0
	}
	if c > 1 {
		return 1
	}
	return c
}

// Jaccard returns SI(u,v) = |Au ∩ Av| / |Au ∪ Av| where an attribute i is
// "present" when its value is > 0. Empty unions yield 0.
func Jaccard(userAttrs, eventAttrs [][]float64) func(u, v int) float64 {
	return func(u, v int) float64 {
		return JaccardSim(userAttrs[u], eventAttrs[v])
	}
}

// JaccardSim computes the Jaccard similarity of the supports of two vectors.
func JaccardSim(a, b []float64) float64 {
	n := len(a)
	if len(b) > n {
		n = len(b)
	}
	inter, union := 0, 0
	for i := 0; i < n; i++ {
		ina := i < len(a) && a[i] > 0
		inb := i < len(b) && b[i] > 0
		if ina && inb {
			inter++
		}
		if ina || inb {
			union++
		}
	}
	if union == 0 {
		return 0
	}
	return float64(inter) / float64(union)
}

// Table is an explicit dense interest table with one value per (user,
// event). Values default to 0.
type Table struct {
	numEvents int
	vals      []float64
}

// NewTable returns a zero table for numUsers × numEvents.
func NewTable(numUsers, numEvents int) *Table {
	return &Table{numEvents: numEvents, vals: make([]float64, numUsers*numEvents)}
}

// Set stores SI(u,v) = x. It panics if x is outside [0,1].
func (t *Table) Set(u, v int, x float64) {
	if x < 0 || x > 1 {
		panic("interest: value outside [0,1]")
	}
	t.vals[u*t.numEvents+v] = x
}

// At returns SI(u,v). It has the signature of model.InterestFunc.
func (t *Table) At(u, v int) float64 {
	return t.vals[u*t.numEvents+v]
}
