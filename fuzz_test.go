package igepa_test

// Fuzzing for the JSON codec: decoding arbitrary bytes must never panic,
// and for any bytes that decode successfully the codec must be a
// fixed point — encode(decode(encode(x))) is byte-identical to
// encode(decode(x)). The identity is asserted on the re-encoded form (not
// the raw input) because the codec canonicalizes: unknown JSON fields are
// dropped, conflicts are re-derived from the materialized matrix and beta
// is re-printed with %g.

import (
	"bytes"
	"testing"

	"github.com/ebsn/igepa"
)

// seedInstanceJSON returns a valid encoded instance for the fuzz corpus.
func seedInstanceJSON(tb testing.TB, seed int64) []byte {
	tb.Helper()
	in, err := igepa.Synthetic(igepa.SyntheticConfig{
		Seed: seed, NumEvents: 6, NumUsers: 10, MaxEventCap: 3,
		MinBids: 1, MaxBids: 3,
	})
	if err != nil {
		tb.Fatal(err)
	}
	var buf bytes.Buffer
	if err := igepa.SaveInstance(&buf, in); err != nil {
		tb.Fatal(err)
	}
	return buf.Bytes()
}

func FuzzCodecRoundTrip(f *testing.F) {
	f.Add(seedInstanceJSON(f, 1))
	f.Add(seedInstanceJSON(f, 2))
	f.Add([]byte(`{"beta":"0.5","events":[{"capacity":1}],"users":[{"capacity":1,"degree":0,"bids":[0],"interest":[0.25]}],"conflicts":[]}`))
	f.Add([]byte(`{"sets":[[0,1],[]]}`))
	f.Add([]byte(`{"beta":"nan"}`))
	f.Add([]byte(`not json at all`))
	f.Add([]byte(`{"beta":"1e999","events":null,"users":null,"conflicts":[[0,9]]}`))

	f.Fuzz(func(t *testing.T, data []byte) {
		// Instance path: malformed input must error cleanly, valid input
		// must round-trip to a byte-identical fixed point.
		if in, err := igepa.LoadInstance(bytes.NewReader(data)); err == nil {
			var first bytes.Buffer
			if err := igepa.SaveInstance(&first, in); err != nil {
				t.Fatalf("re-encoding a loaded instance failed: %v", err)
			}
			in2, err := igepa.LoadInstance(bytes.NewReader(first.Bytes()))
			if err != nil {
				t.Fatalf("decoding our own encoding failed: %v\nencoded: %s", err, first.Bytes())
			}
			var second bytes.Buffer
			if err := igepa.SaveInstance(&second, in2); err != nil {
				t.Fatalf("second re-encoding failed: %v", err)
			}
			if !bytes.Equal(first.Bytes(), second.Bytes()) {
				t.Fatalf("instance codec is not a fixed point:\nfirst:  %s\nsecond: %s", first.Bytes(), second.Bytes())
			}
		}

		// Arrangement path: same contract, same bytes as input.
		if arr, err := igepa.LoadArrangement(bytes.NewReader(data)); err == nil {
			var first bytes.Buffer
			if err := igepa.SaveArrangement(&first, arr); err != nil {
				t.Fatalf("re-encoding a loaded arrangement failed: %v", err)
			}
			arr2, err := igepa.LoadArrangement(bytes.NewReader(first.Bytes()))
			if err != nil {
				t.Fatalf("decoding our own arrangement encoding failed: %v", err)
			}
			var second bytes.Buffer
			if err := igepa.SaveArrangement(&second, arr2); err != nil {
				t.Fatalf("second arrangement re-encoding failed: %v", err)
			}
			if !bytes.Equal(first.Bytes(), second.Bytes()) {
				t.Fatalf("arrangement codec is not a fixed point:\nfirst:  %s\nsecond: %s", first.Bytes(), second.Bytes())
			}
		}
	})
}
