// Command igepa-router fronts a cluster of cmd/igepa-shardd processes: it
// speaks the same /v1 API as igepa-serve -listen, routes each request to the
// shard owning the user, fans the admin surface (/v1/load, /statsz, /readyz,
// /admin/drain) across the cluster, and drives the two-phase wire lease
// renewals through a shard.Coordinator (see DESIGN.md §10).
//
// Usage:
//
//	igepa-router -listen :8080 -backends http://127.0.0.1:9001,http://127.0.0.1:9002 -seed 42
//	igepa-router -listen :8080 -backends ...,... -replay     # deterministic dispatcher
//
// The router and every backend must be configured with the same -workload,
// -events, -users, -seed and -batch; the router checks each backend's
// /healthz at startup (retrying while the cluster assembles) and refuses to
// serve over a mismatched deployment. POST /admin/migrate moves a user range
// between backends at runtime.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"github.com/ebsn/igepa"
	"github.com/ebsn/igepa/internal/router"
	"github.com/ebsn/igepa/internal/shard"
)

type config struct {
	listen   string
	backends []string

	workload string
	events   int
	users    int
	seed     int64
	batch    int
	lease    string
	replay   bool

	timeout    time.Duration
	retries    int
	queueDepth int
	checkWait  time.Duration
}

func main() {
	var cfg config
	var backendList string
	flag.StringVar(&cfg.listen, "listen", ":8080", "address to serve on")
	flag.StringVar(&backendList, "backends", "", "comma-separated shard base URLs, in shard-index order")
	flag.StringVar(&cfg.workload, "workload", "meetup", "instance workload: meetup or synthetic")
	flag.IntVar(&cfg.events, "events", 80, "number of events (0 = workload default)")
	flag.IntVar(&cfg.users, "users", 600, "number of users (0 = workload default)")
	flag.Int64Var(&cfg.seed, "seed", 1, "seed for instance and user→shard hash (must match the backends)")
	flag.IntVar(&cfg.batch, "batch", 0, "arrivals between lease renewals (0 = default; must match the backends)")
	flag.StringVar(&cfg.lease, "lease", "demand", "lease renewal policy: demand, even or lp")
	flag.BoolVar(&cfg.replay, "replay", false, "deterministic replay dispatcher (batch-by-count, bit-identical to ServeSharded)")
	flag.DurationVar(&cfg.timeout, "timeout", 0, "per-backend HTTP call timeout (0 = default)")
	flag.IntVar(&cfg.retries, "retries", 0, "transport-error retries per backend call (0 = default)")
	flag.IntVar(&cfg.queueDepth, "queue", 0, "replay: bounded queue depth (0 = default)")
	flag.DurationVar(&cfg.checkWait, "check-wait", 30*time.Second, "how long to wait for the backends to come up")
	flag.Parse()

	for _, tok := range strings.Split(backendList, ",") {
		if tok = strings.TrimSpace(tok); tok != "" {
			cfg.backends = append(cfg.backends, tok)
		}
	}
	if err := run(os.Stdout, cfg); err != nil {
		fmt.Fprintln(os.Stderr, "igepa-router:", err)
		os.Exit(1)
	}
}

const shutdownGrace = 10 * time.Second

func run(w *os.File, cfg config) error {
	if len(cfg.backends) == 0 {
		return fmt.Errorf("no -backends given")
	}
	ln, err := net.Listen("tcp", cfg.listen)
	if err != nil {
		return err
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	return serveListenerCtx(ctx, w, ln, cfg)
}

func serveListenerCtx(ctx context.Context, w *os.File, ln net.Listener, cfg config) error {
	in, err := makeInstance(cfg)
	if err != nil {
		return err
	}
	lease, err := leasePolicy(cfg.lease)
	if err != nil {
		return err
	}
	rt, err := router.New(in, router.Config{
		Backends: cfg.backends,
		Shard: shard.Options{
			Shards: len(cfg.backends), Batch: cfg.batch, Seed: cfg.seed, Lease: lease,
		},
		Replay:     cfg.replay,
		Timeout:    cfg.timeout,
		Retries:    cfg.retries,
		QueueDepth: cfg.queueDepth,
	})
	if err != nil {
		return err
	}
	defer rt.Close()
	// The backends may still be booting; keep probing until the cluster
	// assembles (shape mismatches are permanent and fail immediately after
	// the wait window).
	deadline := time.Now().Add(cfg.checkWait)
	for {
		err = rt.CheckBackends()
		if err == nil {
			break
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("cluster never assembled: %w", err)
		}
		select {
		case <-ctx.Done():
			return nil
		case <-time.After(200 * time.Millisecond):
		}
	}
	mode := "live"
	if cfg.replay {
		mode = "replay"
	}
	fmt.Fprintf(w, "igepa-router: %s mode on %s — |V|=%d |U|=%d S=%d backends=%s (/metrics; /cluster/metrics fans in every shard)\n",
		mode, ln.Addr(), in.NumEvents(), in.NumUsers(), len(cfg.backends), strings.Join(cfg.backends, ","))
	hs := &http.Server{Handler: rt}
	served := make(chan struct{})
	shutdownDone := make(chan struct{})
	go func() {
		defer close(shutdownDone)
		select {
		case <-ctx.Done():
			fmt.Fprintf(w, "igepa-router: signal received, draining\n")
			sctx, cancel := context.WithTimeout(context.Background(), shutdownGrace)
			hs.Shutdown(sctx)
			cancel()
			if !rt.Drain(shutdownGrace) {
				fmt.Fprintln(os.Stderr, "igepa-router: drain timed out; closing anyway")
			}
		case <-served:
		}
	}()
	err = hs.Serve(ln)
	close(served)
	<-shutdownDone
	if err != nil && !errors.Is(err, http.ErrServerClosed) && !errors.Is(err, net.ErrClosed) {
		return err
	}
	return nil
}

func makeInstance(cfg config) (*igepa.Instance, error) {
	switch cfg.workload {
	case "meetup":
		return igepa.Meetup(igepa.MeetupConfig{
			Seed: cfg.seed, NumEvents: cfg.events, NumUsers: cfg.users,
		})
	case "synthetic":
		return igepa.Synthetic(igepa.SyntheticConfig{
			Seed: cfg.seed, NumEvents: cfg.events, NumUsers: cfg.users,
		})
	default:
		return nil, fmt.Errorf("unknown workload %q (want meetup or synthetic)", cfg.workload)
	}
}

func leasePolicy(name string) (shard.LeasePolicy, error) {
	switch name {
	case "", "demand":
		return shard.LeaseDemand, nil
	case "even":
		return shard.LeaseEven, nil
	case "lp":
		return shard.LeaseLP, nil
	default:
		return 0, fmt.Errorf("unknown lease policy %q (want demand, even or lp)", name)
	}
}
