package stats

import (
	"math"
	"strings"
	"testing"
	"time"
)

func TestSummarizeKnown(t *testing.T) {
	s := Summarize([]float64{2, 4, 4, 4, 5, 5, 7, 9})
	if s.N != 8 {
		t.Fatalf("N = %d", s.N)
	}
	if math.Abs(s.Mean-5) > 1e-12 {
		t.Errorf("Mean = %v, want 5", s.Mean)
	}
	// sample std with n-1: variance = 32/7
	if want := math.Sqrt(32.0 / 7.0); math.Abs(s.Std-want) > 1e-12 {
		t.Errorf("Std = %v, want %v", s.Std, want)
	}
	if s.Min != 2 || s.Max != 9 {
		t.Errorf("Min/Max = %v/%v", s.Min, s.Max)
	}
}

func TestSummarizeEdgeCases(t *testing.T) {
	if s := Summarize(nil); s.N != 0 || s.Mean != 0 || s.CI95() != 0 {
		t.Errorf("empty summary: %+v", s)
	}
	s := Summarize([]float64{3})
	if s.Mean != 3 || s.Std != 0 || s.CI95() != 0 {
		t.Errorf("singleton summary: %+v", s)
	}
	neg := Summarize([]float64{-5, -1})
	if neg.Min != -5 || neg.Max != -1 || neg.Mean != -3 {
		t.Errorf("negative summary: %+v", neg)
	}
}

func TestCI95ShrinksWithN(t *testing.T) {
	small := Summarize([]float64{1, 2, 3, 4})
	var many []float64
	for i := 0; i < 16; i++ {
		many = append(many, []float64{1, 2, 3, 4}[i%4])
	}
	big := Summarize(many)
	if big.CI95() >= small.CI95() {
		t.Errorf("CI did not shrink: %v vs %v", big.CI95(), small.CI95())
	}
}

func TestString(t *testing.T) {
	got := Summarize([]float64{1, 3}).String()
	if !strings.Contains(got, "2.00") || !strings.Contains(got, "n=2") {
		t.Errorf("String = %q", got)
	}
}

func TestMean(t *testing.T) {
	if Mean([]float64{1, 2, 3}) != 2 {
		t.Error("Mean broken")
	}
	if Mean(nil) != 0 {
		t.Error("Mean(nil) != 0")
	}
}

func TestDurationPercentiles(t *testing.T) {
	if ps := DurationPercentiles(nil, 0.5, 0.99); ps[0] != 0 || ps[1] != 0 {
		t.Fatalf("empty input: %v", ps)
	}
	samples := []time.Duration{5, 1, 4, 2, 3} // sorted: 1..5
	ps := DurationPercentiles(samples, 0, 0.5, 1, -0.2, 1.7)
	want := []time.Duration{1, 3, 5, 1, 5}
	for i := range want {
		if ps[i] != want[i] {
			t.Fatalf("quantile %d: got %v want %v (all %v)", i, ps[i], want[i], ps)
		}
	}
	if samples[0] != 5 {
		t.Fatal("input mutated: must sort a copy")
	}
}
