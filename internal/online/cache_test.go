package online

import (
	"errors"
	"testing"

	"github.com/ebsn/igepa/internal/admissible"
	"github.com/ebsn/igepa/internal/model/modeltest"
)

// TestBudgetConstructorsTypedErrors pins the typed-error contract: malformed
// caller-owned budgets yield a *BudgetError instead of a panic deep inside
// Arrive.
func TestBudgetConstructorsTypedErrors(t *testing.T) {
	in := randomInstance(3)
	nv := in.NumEvents()
	var be *BudgetError

	if _, err := NewGreedyBudget(nil, nil, 0); !errors.As(err, &be) {
		t.Errorf("nil instance: err = %v, want *BudgetError", err)
	}
	if _, err := NewGreedyBudget(in, make([]int, nv+1), 0); !errors.As(err, &be) {
		t.Errorf("length mismatch: err = %v, want *BudgetError", err)
	}
	bad := make([]int, nv)
	bad[0] = -1
	if _, err := NewGreedyBudget(in, bad, 0); !errors.As(err, &be) || be.Event != 0 {
		t.Errorf("negative entry: err = %v, want *BudgetError for event 0", err)
	}
	over := make([]int, nv)
	over[nv-1] = in.Events[nv-1].Capacity + 1
	if _, err := NewGreedyBudget(in, over, 0); !errors.As(err, &be) || be.Event != nv-1 {
		t.Errorf("over-committed lease: err = %v, want *BudgetError for event %d", err, nv-1)
	}
	if _, err := NewThresholdBudget(nil, nil, 0.5, 0.5, 0); !errors.As(err, &be) {
		t.Errorf("threshold nil instance: err = %v, want *BudgetError", err)
	}
	if _, err := NewThresholdBudget(in, make([]int, nv+2), 0.5, 0.5, 0); !errors.As(err, &be) {
		t.Errorf("threshold length mismatch: err = %v, want *BudgetError", err)
	}
	if (&BudgetError{Event: -1, Reason: "x"}).Error() == "" ||
		(&BudgetError{Event: 2, Reason: "y"}).Error() == "" {
		t.Error("BudgetError.Error empty")
	}

	// a valid budget still constructs
	ok := make([]int, nv)
	for v := range ok {
		ok[v] = in.Events[v].Capacity
	}
	if _, err := NewGreedyBudget(in, ok, 0); err != nil {
		t.Errorf("valid budget rejected: %v", err)
	}
}

// TestReleaseReturnsSeats pins the cancellation primitive: released seats
// reappear in the planner's headroom and are grantable again.
func TestReleaseReturnsSeats(t *testing.T) {
	in := randomInstance(11)
	p := NewGreedy(in, 0)
	got := p.Arrive(0)
	if len(got) == 0 {
		t.Skip("user 0 got nothing on this seed; pick another seed")
	}
	before := append([]int(nil), p.Loads()...)
	p.Release(got)
	for _, v := range got {
		if p.Loads()[v] != before[v]-1 {
			t.Fatalf("event %d load %d after release, want %d", v, p.Loads()[v], before[v]-1)
		}
	}
	// out-of-range and over-release must be harmless no-ops
	p.Release([]int{-1, in.NumEvents(), in.NumEvents() + 7})
	empty := NewGreedy(in, 0)
	empty.Release([]int{0})
	if empty.Loads()[0] != 0 {
		t.Fatal("release below zero")
	}
}

// TestCachedPlannerMatchesUncached pins the cache's transparency on real
// workload shapes: with and without a cache the greedy and threshold
// planners produce identical arrangements over a full arrival sweep.
func TestCachedPlannerMatchesUncached(t *testing.T) {
	for seed := int64(1); seed <= 20; seed++ {
		in := randomInstance(seed)
		order := fullOrder(in.NumUsers())

		plain, err := Run(in, order, NewGreedy(in, 0))
		if err != nil {
			t.Fatal(err)
		}
		cp := NewGreedy(in, 0)
		cp.SetCache(admissible.NewCache(64))
		cached, err := Run(in, order, cp)
		if err != nil {
			t.Fatal(err)
		}
		modeltest.RequireEqual(t, "greedy cached vs plain", plain, cached)

		tPlain, err := Run(in, order, NewThreshold(in, 0.4, 0.3, 0))
		if err != nil {
			t.Fatal(err)
		}
		tp := NewThreshold(in, 0.4, 0.3, 0)
		tp.SetCache(admissible.NewCache(64))
		tCached, err := Run(in, order, tp)
		if err != nil {
			t.Fatal(err)
		}
		modeltest.RequireEqual(t, "threshold cached vs plain", tPlain, tCached)
	}
}

// TestCacheHitsOnRepeatPattern pins the point of the cache: an arrive →
// release → arrive cycle restores the exact (open set, capacity) key, so the
// second decision is served from the cache.
func TestCacheHitsOnRepeatPattern(t *testing.T) {
	in := randomInstance(7)
	p := NewGreedy(in, 0)
	c := admissible.NewCache(64)
	p.SetCache(c)
	got := p.Arrive(0)
	if len(got) == 0 {
		t.Skip("user 0 got nothing on this seed; pick another seed")
	}
	p.Release(got)
	again := p.Arrive(0)
	if len(got) != len(again) {
		t.Fatalf("repeat arrival decided differently: %v then %v", got, again)
	}
	for i := range got {
		if got[i] != again[i] {
			t.Fatalf("repeat arrival decided differently: %v then %v", got, again)
		}
	}
	st := c.Stats()
	if st.Hits == 0 {
		t.Fatalf("repeat pattern produced no cache hit: %+v", st)
	}
}
