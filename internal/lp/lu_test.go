package lp

import (
	"math"
	"testing"

	"github.com/ebsn/igepa/internal/xrand"
)

// multiply computes B·x for a column-sparse matrix.
func multiply(m int, cols []Column, x []float64) []float64 {
	out := make([]float64, m)
	for j, col := range cols {
		if x[j] == 0 {
			continue
		}
		for k, r := range col.Rows {
			out[r] += col.Vals[k] * x[j]
		}
	}
	return out
}

// multiplyT computes Bᵀ·y.
func multiplyT(cols []Column, y []float64) []float64 {
	out := make([]float64, len(cols))
	for j, col := range cols {
		s := 0.0
		for k, r := range col.Rows {
			s += col.Vals[k] * y[r]
		}
		out[j] = s
	}
	return out
}

func checkSolve(t *testing.T, m int, cols []Column, rhsRows []int, rhsVals []float64) {
	t.Helper()
	f, err := luFactorize(m, cols)
	if err != nil {
		t.Fatalf("factorize: %v", err)
	}
	rows32 := make([]int32, len(rhsRows))
	for i, r := range rhsRows {
		rows32[i] = int32(r)
	}
	out := make([]float64, m)
	work := make([]float64, m)
	f.solveB(rows32, rhsVals, out, work)
	for i, v := range work {
		if v != 0 {
			t.Fatalf("work vector not restored to zero at %d: %v", i, v)
		}
	}
	// verify B·out == rhs
	got := multiply(m, cols, out)
	want := make([]float64, m)
	for i, r := range rhsRows {
		want[r] += rhsVals[i]
	}
	for i := range want {
		if math.Abs(got[i]-want[i]) > 1e-8*(1+math.Abs(want[i])) {
			t.Fatalf("B·x mismatch at row %d: got %v want %v", i, got[i], want[i])
		}
	}
}

func checkSolveT(t *testing.T, m int, cols []Column, c []float64) {
	t.Helper()
	f, err := luFactorize(m, cols)
	if err != nil {
		t.Fatalf("factorize: %v", err)
	}
	out := make([]float64, m)
	work := make([]float64, m)
	f.solveBT(c, out, work)
	got := multiplyT(cols, out)
	for j := range c {
		if math.Abs(got[j]-c[j]) > 1e-8*(1+math.Abs(c[j])) {
			t.Fatalf("Bᵀ·y mismatch at %d: got %v want %v", j, got[j], c[j])
		}
	}
}

func TestLUIdentity(t *testing.T) {
	m := 5
	cols := make([]Column, m)
	for i := range cols {
		cols[i] = Column{Rows: []int{i}, Vals: []float64{1}}
	}
	checkSolve(t, m, cols, []int{0, 3}, []float64{2, -7})
	checkSolveT(t, m, cols, []float64{1, 2, 3, 4, 5})
}

func TestLUPermutation(t *testing.T) {
	// column j has a single 1 in row (j+2) mod m
	m := 6
	cols := make([]Column, m)
	for j := range cols {
		cols[j] = Column{Rows: []int{(j + 2) % m}, Vals: []float64{3}}
	}
	checkSolve(t, m, cols, []int{1, 4}, []float64{1, 1})
	checkSolveT(t, m, cols, []float64{5, 0, -2, 1, 0, 9})
}

func TestLUDenseSmall(t *testing.T) {
	// A hand-picked 3x3 with fill-in:
	// [ 2 1 0 ]
	// [ 1 3 1 ]
	// [ 0 1 4 ]
	cols := []Column{
		{Rows: []int{0, 1}, Vals: []float64{2, 1}},
		{Rows: []int{0, 1, 2}, Vals: []float64{1, 3, 1}},
		{Rows: []int{1, 2}, Vals: []float64{1, 4}},
	}
	checkSolve(t, 3, cols, []int{0, 1, 2}, []float64{1, 2, 3})
	checkSolveT(t, 3, cols, []float64{-1, 0.5, 2})
}

func TestLUSingular(t *testing.T) {
	// two identical columns
	cols := []Column{
		{Rows: []int{0, 1}, Vals: []float64{1, 1}},
		{Rows: []int{0, 1}, Vals: []float64{1, 1}},
	}
	if _, err := luFactorize(2, cols); err == nil {
		t.Fatal("singular matrix not detected")
	}
	// zero column
	cols = []Column{{Rows: []int{0}, Vals: []float64{1}}, {}}
	if _, err := luFactorize(2, cols); err == nil {
		t.Fatal("zero column not detected")
	}
}

func TestLUWrongShape(t *testing.T) {
	if _, err := luFactorize(3, make([]Column, 2)); err == nil {
		t.Fatal("shape mismatch not detected")
	}
}

// randomBasisLike builds a random nonsingular sparse matrix shaped like a
// simplex basis: a mix of unit (slack) columns and short structural columns
// with an identity backbone to guarantee nonsingularity is likely.
func randomBasisLike(rng *xrand.RNG, m int) []Column {
	cols := make([]Column, m)
	perm := rng.Perm(m)
	for j := 0; j < m; j++ {
		if rng.Bool(0.4) {
			cols[j] = Column{Rows: []int{perm[j]}, Vals: []float64{1 + rng.Float64()}}
			continue
		}
		rows := map[int]float64{perm[j]: 1.5 + rng.Float64()} // diagonal anchor
		extra := 1 + rng.Intn(4)
		for e := 0; e < extra; e++ {
			rows[rng.Intn(m)] = rng.Float64()*2 - 1
		}
		col := Column{}
		for r, v := range rows {
			col.Rows = append(col.Rows, r)
			col.Vals = append(col.Vals, v)
		}
		cols[j] = col
	}
	return cols
}

func TestLURandomRoundTrip(t *testing.T) {
	rng := xrand.New(99)
	for trial := 0; trial < 60; trial++ {
		m := 2 + rng.Intn(60)
		cols := randomBasisLike(rng, m)
		f, err := luFactorize(m, cols)
		if err != nil {
			continue // rare singular draw is fine; skip
		}
		// random rhs
		x := make([]float64, m)
		for i := range x {
			x[i] = rng.Float64()*4 - 2
		}
		b := multiply(m, cols, x)
		rows := make([]int32, m)
		for i := range rows {
			rows[i] = int32(i)
		}
		out := make([]float64, m)
		work := make([]float64, m)
		f.solveB(rows, b, out, work)
		for i := range x {
			if math.Abs(out[i]-x[i]) > 1e-6*(1+math.Abs(x[i])) {
				t.Fatalf("trial %d: solveB[%d] = %v want %v", trial, i, out[i], x[i])
			}
		}
		// transpose round trip
		c := multiplyT(cols, x) // here x plays the role of y: c = Bᵀx
		outT := make([]float64, m)
		f.solveBT(c, outT, work)
		for i := range x {
			if math.Abs(outT[i]-x[i]) > 1e-6*(1+math.Abs(x[i])) {
				t.Fatalf("trial %d: solveBT[%d] = %v want %v", trial, i, outT[i], x[i])
			}
		}
	}
}

func TestStepHeap(t *testing.T) {
	var h stepHeap
	for _, v := range []int{5, 1, 9, 3, 3, 0, 7} {
		h.push(v)
	}
	prev := -1
	for len(h) > 0 {
		v := h.pop()
		if v < prev {
			t.Fatalf("heap order violated: %d after %d", v, prev)
		}
		prev = v
	}
}
