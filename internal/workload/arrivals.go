package workload

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"math"

	"github.com/ebsn/igepa/internal/xrand"
)

// Arrival is one timestamped user arrival in a serving stream: the JSONL
// currency between cmd/igepa-datagen (which writes arrival logs next to
// generated instances) and cmd/igepa-serve (which replays them and reports
// decision latency). Timestamps are milliseconds from stream start.
type Arrival struct {
	TMillis int64 `json:"t_ms"`
	User    int   `json:"user"`
}

// SyntheticArrivals generates a deterministic timestamped arrival stream:
// every user arrives exactly once, in seeded random order, with exponential
// inter-arrival gaps at the given mean rate (arrivals per second). rate ≤ 0
// means 1000/s.
func SyntheticArrivals(seed int64, numUsers int, rate float64) []Arrival {
	if rate <= 0 {
		rate = 1000
	}
	rng := xrand.New(seed)
	order := rng.Perm(numUsers)
	out := make([]Arrival, numUsers)
	t := 0.0
	for i, u := range order {
		// inverse-CDF exponential gap; 1−U ∈ (0,1] keeps the log finite
		t += -math.Log(1-rng.Float64()) / rate * 1000
		out[i] = Arrival{TMillis: int64(t), User: u}
	}
	return out
}

// WriteArrivals writes the stream as JSON Lines, one arrival per line.
func WriteArrivals(w io.Writer, arrivals []Arrival) error {
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	for i := range arrivals {
		if err := enc.Encode(&arrivals[i]); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// arrivalValidator holds the stream invariants shared by ReadArrivals and
// ReadArrivalsPartial: non-decreasing timestamps, non-negative users, every
// user at most once (the replay layers decide each user irrevocably, so a
// duplicate is a corrupt log, not a legal event).
type arrivalValidator struct {
	prev int64
	seen map[int]int // user → first line
}

func newArrivalValidator() *arrivalValidator {
	return &arrivalValidator{prev: math.MinInt64, seen: make(map[int]int)}
}

func (v *arrivalValidator) check(line int, a Arrival) error {
	if a.User < 0 {
		return fmt.Errorf("workload: arrival log line %d: negative user %d", line, a.User)
	}
	if first, dup := v.seen[a.User]; dup {
		return fmt.Errorf("workload: arrival log line %d: user %d already arrived on line %d", line, a.User, first)
	}
	v.seen[a.User] = line
	if a.TMillis < v.prev {
		return fmt.Errorf("workload: arrival log line %d: timestamp %d before %d", line, a.TMillis, v.prev)
	}
	v.prev = a.TMillis
	return nil
}

// ReadArrivals parses a JSONL arrival log, validating that timestamps are
// non-decreasing, users are non-negative and no user arrives twice. Blank
// lines are skipped. Malformed input — truncated lines, oversized lines,
// non-monotonic timestamps, duplicates — yields a line-numbered error,
// never a panic. Use ReadArrivalsPartial to salvage the valid prefix of a
// damaged log instead of rejecting it whole.
func ReadArrivals(r io.Reader) ([]Arrival, error) {
	var out []Arrival
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	line := 0
	v := newArrivalValidator()
	for sc.Scan() {
		line++
		raw := sc.Bytes()
		if len(raw) == 0 {
			continue
		}
		var a Arrival
		if err := json.Unmarshal(raw, &a); err != nil {
			return nil, fmt.Errorf("workload: arrival log line %d: %w", line, err)
		}
		if err := v.check(line, a); err != nil {
			return nil, err
		}
		out = append(out, a)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("workload: reading arrival log: %w", err)
	}
	return out, nil
}

// maxArrivalLine bounds one JSONL line, matching ReadArrivals' scanner limit.
const maxArrivalLine = 1 << 20

// ReadArrivalsPartial parses as much of a JSONL arrival log as is provably
// valid: it returns the longest valid prefix, the byte offset where that
// prefix ends, and the error that stopped the scan (nil when the whole log
// parsed). A final line without a trailing newline is excluded and reported
// even when it happens to parse — a crash mid-append can truncate a line and
// still leave valid JSON (e.g. cutting a multi-digit number short), and
// there is no checksum to tell. This is the arrival-log analogue of the
// WAL's torn-tail rule: load everything before the damage, report its
// offset, never silently replay a fragment. Operators can resume or
// truncate the log at the returned offset.
func ReadArrivalsPartial(r io.Reader) ([]Arrival, int64, error) {
	br := bufio.NewReaderSize(r, 64*1024)
	var out []Arrival
	var off int64
	line := 0
	v := newArrivalValidator()
	for {
		raw, err := br.ReadBytes('\n')
		if err == io.EOF && len(raw) == 0 {
			return out, off, nil
		}
		if err != nil && err != io.EOF {
			return out, off, fmt.Errorf("workload: arrival log offset %d: %w", off, err)
		}
		line++
		torn := err == io.EOF
		trimmed := raw
		if !torn {
			trimmed = raw[:len(raw)-1]
		}
		if len(trimmed) == 0 {
			off += int64(len(raw))
			continue
		}
		if len(trimmed) > maxArrivalLine {
			return out, off, fmt.Errorf("workload: arrival log line %d (offset %d): line exceeds %d bytes", line, off, maxArrivalLine)
		}
		if torn {
			return out, off, fmt.Errorf("workload: arrival log line %d (offset %d): no trailing newline; log may be cut mid-write", line, off)
		}
		var a Arrival
		if uerr := json.Unmarshal(trimmed, &a); uerr != nil {
			return out, off, fmt.Errorf("workload: arrival log line %d (offset %d): %w", line, off, uerr)
		}
		if verr := v.check(line, a); verr != nil {
			return out, off, verr
		}
		out = append(out, a)
		off += int64(len(raw))
	}
}

// ArrivalOrder projects the stream onto the replay order cmd/igepa-serve and
// shard.Serve consume.
func ArrivalOrder(arrivals []Arrival) []int {
	order := make([]int, len(arrivals))
	for i := range arrivals {
		order[i] = arrivals[i].User
	}
	return order
}
