package router

// The router's /metrics surface plus the cluster-wide fan-in: the front
// tier exports its own counters (per-backend request/error/latency, renewal
// rounds, migration phases, the degraded latch) at /metrics, and
// /cluster/metrics scrapes every backend's /metrics and re-exports the
// merged exposition with a shard label — one scrape target for the whole
// deployment.
//
// The recording disciplines mirror internal/server's (DESIGN.md §12): the
// proxy hot path records through atomics only; coordinator-owned counters
// (renewal rounds, moved seats) are mirrored under renewMu at the points
// that already hold it; everything else refreshes at scrape time.

import (
	"fmt"
	"io"
	"net/http"
	"strconv"
	"sync"
	"time"

	"github.com/ebsn/igepa/internal/obs"
)

// routerObs bundles the registry and the handles the proxy paths touch.
// A nil *routerObs (Config.DisableMetrics) makes every method a no-op.
type routerObs struct {
	reg *obs.Registry

	arrivals, decided, granted, cancels *obs.Counter
	errs400, errs409, errs421, errs429  *obs.Counter
	renewAborts                         *obs.Counter
	renewRounds, movedSeats             *obs.Counter
	epochs                              *obs.Counter
	renewDur                            *obs.Histogram

	migratePhases map[string]*obs.Counter
	migratedUsers *obs.Counter
	migratedSeats *obs.Counter

	// per-backend, indexed by shard
	beReqs, beErrs []*obs.Counter
	beLat          []*obs.Histogram

	scrapeErrors *obs.Counter
}

func newRouterObs(rt *Router) *routerObs {
	reg := obs.NewRegistry()
	o := &routerObs{
		reg:         reg,
		arrivals:    reg.Counter("igepa_router_arrivals_total", "Accepted bid submissions."),
		decided:     reg.Counter("igepa_router_decided_total", "Decisions delivered (replay dispatcher)."),
		granted:     reg.Counter("igepa_router_granted_total", "Decisions that granted at least one event."),
		cancels:     reg.Counter("igepa_router_cancels_total", "Assignment cancellations routed."),
		errs400:     reg.Counter("igepa_router_http_errors_total", "Router-observed error responses by status code.", obs.L("code", "400")),
		errs409:     reg.Counter("igepa_router_http_errors_total", "Router-observed error responses by status code.", obs.L("code", "409")),
		errs421:     reg.Counter("igepa_router_http_errors_total", "Router-observed error responses by status code.", obs.L("code", "421")),
		errs429:     reg.Counter("igepa_router_http_errors_total", "Router-observed error responses by status code.", obs.L("code", "429")),
		renewAborts: reg.Counter("igepa_router_renew_aborts_total", "Renewal rounds aborted before any install (safe, retried)."),
		renewRounds: reg.Counter("igepa_router_renew_rounds_total", "Completed cluster lease-renewal rounds."),
		movedSeats:  reg.Counter("igepa_router_moved_seats_total", "Seats that changed shard owner across renewals."),
		epochs:      reg.Counter("igepa_router_epochs_total", "Replay batches dispatched."),
		renewDur: reg.Histogram("igepa_router_renew_seconds",
			"End-to-end two-phase renewal round duration.", obs.LatencyBuckets()),
		migratedUsers: reg.Counter("igepa_router_migrated_users_total", "Users moved between backends."),
		migratedSeats: reg.Counter("igepa_router_migrated_seats_total", "Seats moved between backends."),
		scrapeErrors: reg.Counter("igepa_router_scrape_errors_total",
			"Backend /metrics scrapes that failed during /cluster/metrics fan-in."),
	}
	o.migratePhases = make(map[string]*obs.Counter)
	for _, ph := range []string{"drain", "export", "adopt", "commit"} {
		o.migratePhases[ph] = reg.Counter("igepa_router_migration_phases_total",
			"Migration phases completed.", obs.L("phase", ph))
	}
	for si := 0; si < rt.s; si++ {
		l := obs.L("shard", strconv.Itoa(si))
		o.beReqs = append(o.beReqs, reg.Counter("igepa_router_backend_requests_total",
			"Backend round trips that produced an HTTP response.", l))
		o.beErrs = append(o.beErrs, reg.Counter("igepa_router_backend_errors_total",
			"Backend round trips that failed in transport or answered 5xx.", l))
		o.beLat = append(o.beLat, reg.Histogram("igepa_router_backend_seconds",
			"Backend round-trip latency.", obs.LatencyBuckets(), l))
	}
	reg.GaugeFunc("igepa_router_degraded", "1 once the fail-stop latch has tripped.", func() float64 {
		if rt.degraded.Load() {
			return 1
		}
		return 0
	})
	reg.GaugeFunc("igepa_router_queue_depth", "Requests waiting in the replay queue.", func() float64 {
		if rt.q == nil {
			return 0
		}
		return float64(rt.q.depth())
	})
	reg.GaugeFunc("igepa_router_up_seconds", "Process uptime.", func() float64 {
		return time.Since(rt.started).Seconds()
	})
	return o
}

// observeBackend is the proxy hot path: one histogram observation and a
// counter bump per round trip. d == 0 means no response arrived (transport
// failure); failed additionally counts transport errors and 5xx answers.
// Nil-safe and allocation-free.
func (o *routerObs) observeBackend(si int, d time.Duration, failed bool) {
	if o == nil || si < 0 || si >= len(o.beReqs) {
		return
	}
	if d > 0 {
		o.beReqs[si].Inc()
		o.beLat[si].ObserveDuration(d)
	}
	if failed {
		o.beErrs[si].Inc()
	}
}

// notePhase counts a completed migration phase.
func (o *routerObs) notePhase(ph string) {
	if o == nil {
		return
	}
	if c := o.migratePhases[ph]; c != nil {
		c.Inc()
	}
}

// noteMigration records a committed migration's size.
func (o *routerObs) noteMigration(users, seats int) {
	if o == nil {
		return
	}
	o.migratedUsers.Add(int64(users))
	o.migratedSeats.Add(int64(seats))
}

// observeRenew records one completed renewal round's wall time.
func (o *routerObs) observeRenew(d time.Duration) {
	if o == nil {
		return
	}
	o.renewDur.ObserveDuration(d)
}

// mirrorCoord stores the coordinator-owned cumulative counters; the caller
// holds renewMu (renewal rounds and migrations both do).
func (o *routerObs) mirrorCoord(renewals, moved int) {
	if o == nil {
		return
	}
	o.renewRounds.Store(int64(renewals))
	o.movedSeats.Store(int64(moved))
}

// refresh mirrors the atomic counter set at scrape time.
func (o *routerObs) refresh(rt *Router) {
	o.arrivals.Store(rt.m.arrivals.Load())
	o.decided.Store(rt.m.decided.Load())
	o.granted.Store(rt.m.granted.Load())
	o.cancels.Store(rt.m.cancels.Load())
	o.errs400.Store(rt.m.badRequests.Load())
	o.errs409.Store(rt.m.conflicts.Load())
	o.errs421.Store(rt.m.misrouted.Load())
	o.errs429.Store(rt.m.rejected.Load())
	o.renewAborts.Store(rt.m.renewErrors.Load())
	o.epochs.Store(rt.m.epochs.Load())
}

// handleMetrics is GET /metrics: the router's own registry.
func (rt *Router) handleMetrics(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		httpError(w, http.StatusMethodNotAllowed, "GET only")
		return
	}
	rt.obs.refresh(rt)
	w.Header().Set("Content-Type", obs.ContentType)
	rt.obs.reg.WritePrometheus(w)
}

// handleClusterMetrics is GET /cluster/metrics: scrape every backend's
// /metrics in parallel, parse each exposition, and re-export the merged
// families with a shard label — the single scrape target for the whole
// deployment. A backend that fails to answer is skipped (and counted in
// igepa_router_scrape_errors_total); the live ones still export.
func (rt *Router) handleClusterMetrics(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		httpError(w, http.StatusMethodNotAllowed, "GET only")
		return
	}
	sources := make([]*obs.RelabeledSource, rt.s)
	var wg sync.WaitGroup
	for si := 0; si < rt.s; si++ {
		wg.Add(1)
		go func(si int) {
			defer wg.Done()
			fams, err := rt.scrapeBackend(si)
			if err != nil {
				rt.obs.scrapeErrors.Inc()
				return
			}
			sources[si] = &obs.RelabeledSource{Value: strconv.Itoa(si), Families: fams}
		}(si)
	}
	wg.Wait()
	var live []obs.RelabeledSource
	for _, s := range sources {
		if s != nil {
			live = append(live, *s)
		}
	}
	w.Header().Set("Content-Type", obs.ContentType)
	if err := obs.MergeRelabeled(w, "shard", live); err != nil {
		// headers are gone; nothing more to do than stop writing
		return
	}
}

// scrapeBackend fetches and parses one backend's /metrics exposition.
func (rt *Router) scrapeBackend(si int) ([]obs.Family, error) {
	b := &rt.backends[si]
	res, err := b.client.Get(b.base + "/metrics")
	if err != nil {
		return nil, err
	}
	defer res.Body.Close()
	if res.StatusCode != http.StatusOK {
		_, _ = io.Copy(io.Discard, res.Body)
		return nil, fmt.Errorf("backend %d /metrics: HTTP %d", si, res.StatusCode)
	}
	return obs.ParseFamilies(res.Body)
}
