package lp

import "sort"

// Hypersparse triangular kernels: Gilbert–Peierls-style solves for sparse
// right-hand sides. When the RHS of B d = a (a single entering column, a
// slack swap) or of Bᵀβ = e_r (a repair pivot row) touches only a few rows,
// the solution's nonzero pattern is the symbolic reach of those rows on the
// factor nonzero graphs — typically a few dozen steps out of thousands. The
// kernels below compute that reach by DFS, then run the numeric solve over
// the reached steps only, in exactly the step order the sequential dense
// sweeps use, so every floating-point operation that produces a nonzero is
// the same operation in the same order — the results are bit-identical to
// solveB/solveBT (unreached positions may carry the opposite zero sign,
// which no consumer distinguishes; the kernel tests canonicalize).
//
// Each DFS carries a step cap (HypersparseThreshold · m): if the reach
// grows past it the sparse attempt aborts — cleaning up whatever it touched
// — and the caller falls through to the dense (sequential or
// level-scheduled) path. Since both paths compute the same bits, the
// threshold moves work between kernels without ever moving a pivot.

// hyperReach is the reusable symbolic state: two epoch-stamped visited maps
// (one per solve phase — the phases reach over different graphs and may
// revisit each other's steps) and the shared stack/output lists.
type hyperReach struct {
	mark1, mark2 []int32 // step -> epoch stamp, one per phase
	epoch        int32
	stack        []int32
	list1, list2 []int32 // reached steps per phase
}

func (h *hyperReach) reset(m int) {
	if cap(h.mark1) < m {
		h.mark1 = make([]int32, m)
		h.mark2 = make([]int32, m)
		h.epoch = 0
	}
	h.mark1 = h.mark1[:m]
	h.mark2 = h.mark2[:m]
	h.epoch++
	if h.epoch == 0 { // wrapped: stamps from the previous era could collide
		for i := range h.mark1 {
			h.mark1[i] = -1
			h.mark2[i] = -1
		}
		h.epoch = 1
	}
	h.list1 = h.list1[:0]
	h.list2 = h.list2[:0]
}

// dfs runs an iterative depth-first reach from seed over the graph whose
// adjacency of step k is idx[ptr[k]:ptr[k+1]], appending newly visited steps
// to list. Returns false (leaving list valid but incomplete) once the total
// would exceed cap.
func dfsReach(seed int32, ptr, idx []int32, mark []int32, epoch int32, stack, list []int32, limit int) ([]int32, []int32, bool) {
	if mark[seed] == epoch {
		return stack, list, true
	}
	if len(list) >= limit {
		return stack, list, false
	}
	mark[seed] = epoch
	list = append(list, seed)
	stack = append(stack[:0], seed)
	for len(stack) > 0 {
		k := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for t := ptr[k]; t < ptr[k+1]; t++ {
			s := idx[t]
			if mark[s] == epoch {
				continue
			}
			if len(list) >= limit {
				return stack, list, false
			}
			mark[s] = epoch
			list = append(list, s)
			stack = append(stack, s)
		}
	}
	return stack, list, true
}

// sortSteps sorts ascending; the numeric sweeps iterate forward or backward
// over the sorted list to replicate the sequential step order.
func sortSteps(list []int32) {
	sort.Slice(list, func(a, b int) bool { return list[a] < list[b] })
}

// solveBHyper is solveB restricted to the symbolic reach of the RHS pattern.
// Returns false without touching out (and with work left zeroed) when the
// reach exceeds reachCap — the caller then runs a dense path.
func (f *luFactors) solveBHyper(h *hyperReach, rows []int32, vals []float64, out, work []float64, reachCap int) bool {
	if reachCap <= 0 || len(rows) > reachCap {
		return false
	}
	h.reset(f.m)
	// Phase L: reach of the scattered RHS over L's column graph (edges go to
	// larger steps).
	ok := true
	for _, r := range rows {
		h.stack, h.list1, ok = dfsReach(int32(f.pos[r]), f.lPtr, f.lIdx, h.mark1, h.epoch, h.stack, h.list1, reachCap)
		if !ok {
			return false
		}
	}
	sortSteps(h.list1)
	z := work
	for i, r := range rows {
		z[f.pos[r]] += vals[i]
	}
	for _, k := range h.list1 {
		v := z[k]
		if v == 0 {
			continue
		}
		idx := f.lIdx[f.lPtr[k]:f.lPtr[k+1]]
		val := f.lVal[f.lPtr[k]:f.lPtr[k+1]]
		for i, s := range idx {
			z[s] -= v * val[i]
		}
	}
	// Phase U: reach of the L-solve's nonzeros over U's column graph (edges
	// go to smaller steps).
	for _, k := range h.list1 {
		if z[k] == 0 {
			continue
		}
		h.stack, h.list2, ok = dfsReach(k, f.uPtr, f.uIdx, h.mark2, h.epoch, h.stack, h.list2, reachCap)
		if !ok {
			// abort cleanly: undo the L-phase numerics
			for _, s := range h.list1 {
				z[s] = 0
			}
			return false
		}
	}
	sortSteps(h.list2)
	for i := range out {
		out[i] = 0
	}
	for p := len(h.list2) - 1; p >= 0; p-- {
		k := h.list2[p]
		v := z[k] / f.uDiag[k]
		z[k] = 0
		if v != 0 {
			idx := f.uIdx[f.uPtr[k]:f.uPtr[k+1]]
			val := f.uVal[f.uPtr[k]:f.uPtr[k+1]]
			for i, s := range idx {
				z[s] -= v * val[i]
			}
		}
		out[f.colOrder[k]] = v
	}
	return true
}

// solveBTHyper solves Bᵀy = c for a c whose nonzero basis positions are
// listed in seeds (c itself is the usual dense, mostly-zero vector). On
// success the solution is written into out and, when support is non-nil,
// the original-row indices of out's nonzero entries are appended to it —
// the exact pattern the reach-pruned dual pricing pass consumes. Returns
// false (out untouched, work re-zeroed) when the reach exceeds reachCap.
func (f *luFactors) solveBTHyper(h *hyperReach, c, out, work []float64, seeds []int32, support *[]int32, reachCap int) bool {
	if reachCap <= 0 || len(seeds) > reachCap {
		return false
	}
	f.buildSchedule() // row-major mirrors double as the transposed reach graphs
	h.reset(f.m)
	// Phase Uᵀ: t[k] = (c_k − Σ_{s<k} U[s,k]·t[s]) / U[k,k], forward. A seed
	// at step s influences exactly the steps holding s in their U column —
	// U's row s, so the reach runs over the CSR mirror (edges to larger
	// steps).
	ok := true
	for _, p := range seeds {
		k := f.stepOf[p]
		h.stack, h.list1, ok = dfsReach(k, f.uRowPtr, f.uRowIdx, h.mark1, h.epoch, h.stack, h.list1, reachCap)
		if !ok {
			return false
		}
	}
	sortSteps(h.list1)
	t := work
	for _, k := range h.list1 {
		v := c[f.colOrder[k]]
		idx := f.uIdx[f.uPtr[k]:f.uPtr[k+1]]
		val := f.uVal[f.uPtr[k]:f.uPtr[k+1]]
		for i, s := range idx {
			v -= val[i] * t[s]
		}
		t[k] = v / f.uDiag[k]
	}
	// Phase Lᵀ: s[k] = t[k] − Σ_{s>k} L[s,k]·t[s], backward; influence runs
	// along L's rows (edges to smaller steps).
	for _, k := range h.list1 {
		if t[k] == 0 {
			continue
		}
		h.stack, h.list2, ok = dfsReach(k, f.lRowPtr, f.lRowIdx, h.mark2, h.epoch, h.stack, h.list2, reachCap)
		if !ok {
			for _, s := range h.list1 {
				t[s] = 0
			}
			return false
		}
	}
	sortSteps(h.list2)
	for p := len(h.list2) - 1; p >= 0; p-- {
		k := h.list2[p]
		v := t[k]
		idx := f.lIdx[f.lPtr[k]:f.lPtr[k+1]]
		val := f.lVal[f.lPtr[k]:f.lPtr[k+1]]
		for i, s := range idx {
			v -= val[i] * t[s]
		}
		t[k] = v
	}
	for i := range out {
		out[i] = 0
	}
	// Union of the two phase lists (phase 2 may revisit phase-1 steps):
	// write out first, then clear, so duplicates never read a cleared slot.
	for _, k := range h.list1 {
		if v := t[k]; v != 0 {
			out[f.pivRow[k]] = v
			if support != nil {
				*support = append(*support, int32(f.pivRow[k]))
			}
		}
	}
	for _, k := range h.list2 {
		if h.mark1[k] == h.epoch {
			continue // already handled via list1
		}
		if v := t[k]; v != 0 {
			out[f.pivRow[k]] = v
			if support != nil {
				*support = append(*support, int32(f.pivRow[k]))
			}
		}
	}
	for _, k := range h.list1 {
		t[k] = 0
	}
	for _, k := range h.list2 {
		t[k] = 0
	}
	return true
}
