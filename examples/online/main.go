// Online: users register on the platform one at a time and must be answered
// immediately — the online variant of IGEPA. This example measures the
// price of onlineness: the online greedy and threshold policies against the
// offline LP-packing value and the LP upper bound, over several random
// arrival orders.
package main

import (
	"fmt"
	"log"

	"github.com/ebsn/igepa"
	"github.com/ebsn/igepa/internal/xrand"
)

func main() {
	in, err := igepa.Synthetic(igepa.SyntheticConfig{
		Seed: 5, NumEvents: 50, NumUsers: 500,
		MaxEventCap: 8, MaxUserCap: 3, // scarce seats: order matters
	})
	if err != nil {
		log.Fatal(err)
	}

	offline, err := igepa.LPPacking(in, igepa.LPPackingOptions{Seed: 9})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("offline LP-packing: %.2f (LP upper bound %.2f)\n\n", offline.Utility, offline.LPObjective)

	fmt.Println("arrival   online-greedy   threshold(τ=0.5,g=0.3)   greedy/offline")
	fmt.Println("--------------------------------------------------------------------")
	rng := xrand.New(17)
	sumG, sumT := 0.0, 0.0
	const streams = 5
	for s := 0; s < streams; s++ {
		order := rng.Perm(in.NumUsers())

		g, err := igepa.OnlineGreedy(in, order)
		if err != nil {
			log.Fatal(err)
		}
		if err := igepa.Validate(in, g); err != nil {
			log.Fatal(err)
		}
		th, err := igepa.OnlineThreshold(in, order, 0.5, 0.3)
		if err != nil {
			log.Fatal(err)
		}
		ug, ut := igepa.Utility(in, g), igepa.Utility(in, th)
		sumG += ug
		sumT += ut
		fmt.Printf("stream %d  %-15.2f %-25.2f %.3f\n", s, ug, ut, ug/offline.Utility)
	}
	fmt.Printf("\nmean over %d streams: greedy %.2f, threshold %.2f (offline %.2f)\n",
		streams, sumG/streams, sumT/streams, offline.Utility)
	fmt.Println("the gap to offline is the competitive cost of deciding at arrival time")
}
