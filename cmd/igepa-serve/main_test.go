package main

import (
	"context"
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"github.com/ebsn/igepa/internal/shard"
	"github.com/ebsn/igepa/internal/workload"
)

func devNull(t *testing.T) *os.File {
	t.Helper()
	null, err := os.OpenFile(os.DevNull, os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { null.Close() })
	return null
}

func TestRunSmoke(t *testing.T) {
	null := devNull(t)
	cfg := config{
		workload: "synthetic", events: 20, users: 80, seed: 1,
		shards: []int{1, 2, 4}, planner: "greedy", lpBound: true,
	}
	if err := run(null, cfg); err != nil {
		t.Fatal(err)
	}
	cfg.workload = "meetup"
	cfg.planner = "threshold"
	cfg.lpBound = false
	if err := run(null, cfg); err != nil {
		t.Fatal(err)
	}
}

func TestRunLeasePoliciesAndLiveBound(t *testing.T) {
	null := devNull(t)
	for _, lease := range []string{"demand", "even", "lp"} {
		cfg := config{
			workload: "synthetic", events: 15, users: 90, seed: 2,
			shards: []int{2, 4}, planner: "greedy", lease: lease, batch: 16,
		}
		if err := run(null, cfg); err != nil {
			t.Fatalf("lease=%s: %v", lease, err)
		}
	}
	// the incremental live-bound path (warm Planner.Update per batch)
	cfg := config{
		workload: "synthetic", events: 15, users: 90, seed: 3,
		shards: []int{2}, planner: "greedy", batch: 16, liveBound: true,
	}
	if err := run(null, cfg); err != nil {
		t.Fatal(err)
	}
}

func TestRunReplaysArrivalLog(t *testing.T) {
	null := devNull(t)
	dir := t.TempDir()
	log := filepath.Join(dir, "arrivals.jsonl")
	arr := workload.SyntheticArrivals(9, 70, 500)
	f, err := os.Create(log)
	if err != nil {
		t.Fatal(err)
	}
	if err := workload.WriteArrivals(f, arr); err != nil {
		t.Fatal(err)
	}
	f.Close()
	cfg := config{
		workload: "synthetic", events: 15, users: 70, seed: 9,
		shards: []int{1, 4}, planner: "greedy", arrivals: log,
	}
	if err := run(null, cfg); err != nil {
		t.Fatal(err)
	}
	// a log naming users outside the instance must be rejected
	cfg.users = 50
	if err := run(null, cfg); err == nil {
		t.Error("arrival log with out-of-range users accepted")
	}
	cfg.users = 70
	cfg.arrivals = filepath.Join(dir, "missing.jsonl")
	if err := run(null, cfg); err == nil {
		t.Error("missing arrival log accepted")
	}
}

func TestParseShards(t *testing.T) {
	got, err := parseShards("1, 2,8")
	if err != nil || len(got) != 3 || got[0] != 1 || got[1] != 2 || got[2] != 8 {
		t.Fatalf("parseShards: got %v, %v", got, err)
	}
	for _, bad := range []string{"", "0", "x", "1,,2", "-3"} {
		if _, err := parseShards(bad); err == nil {
			t.Errorf("parseShards(%q) accepted", bad)
		}
	}
}

func TestBadConfigRejected(t *testing.T) {
	null := devNull(t)
	if err := run(null, config{workload: "nope", shards: []int{1}}); err == nil {
		t.Error("unknown workload accepted")
	}
	if err := run(null, config{workload: "synthetic", users: 10, events: 5, planner: "nope", shards: []int{1}}); err == nil {
		t.Error("unknown planner accepted")
	}
	if err := run(null, config{workload: "synthetic", users: 10, events: 5, planner: "greedy", lease: "nope", shards: []int{1}}); err == nil {
		t.Error("unknown lease policy accepted")
	}
}

// TestRunPacedAndCached runs the sweep with wall-clock pacing (at a very
// high speed-up so the test stays fast) and the admissible-set cache on.
func TestRunPacedAndCached(t *testing.T) {
	null := devNull(t)
	cfg := config{
		workload: "synthetic", events: 15, users: 80, seed: 4,
		shards: []int{1, 2}, planner: "greedy", batch: 16,
		pace: 1e6, rate: 2000, cache: 256,
	}
	if err := run(null, cfg); err != nil {
		t.Fatal(err)
	}
}

// TestServePacedMatchesServe pins the pacing contract: pacing changes when
// batches dispatch, never what they decide.
func TestServePacedMatchesServe(t *testing.T) {
	cfg := config{workload: "synthetic", events: 15, users: 90, seed: 2}
	in, err := makeInstance(cfg)
	if err != nil {
		t.Fatal(err)
	}
	stream := workload.SyntheticArrivals(7, in.NumUsers(), 5000)
	order := workload.ArrivalOrder(stream)
	opt := shard.Options{Shards: 4, Batch: 16, Seed: 2, CacheSize: 64}
	want, err := shard.Serve(in, order, opt)
	if err != nil {
		t.Fatal(err)
	}
	got, qdelay, err := servePaced(in, stream, opt, 1e6)
	if err != nil {
		t.Fatal(err)
	}
	if !want.Arrangement.Equal(got.Arrangement) {
		t.Fatal("paced replay decided differently from Serve")
	}
	if len(qdelay) != len(order) {
		t.Fatalf("%d queueing-delay samples, want %d", len(qdelay), len(order))
	}
	for i, d := range qdelay {
		if d < 0 {
			t.Fatalf("negative queueing delay %v at arrival %d", d, i)
		}
	}
}

// TestListenServesHTTP boots the -listen mode on a loopback listener and
// exercises the serving endpoints end to end through the command path.
func TestListenServesHTTP(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	null := devNull(t)
	cfg := config{
		workload: "synthetic", events: 12, users: 50, seed: 6,
		shards: []int{2}, planner: "greedy", cache: 64,
		flush: 200 * time.Microsecond,
	}
	done := make(chan error, 1)
	go func() { done <- serveListener(null, ln, cfg) }()

	base := "http://" + ln.Addr().String()
	client := &http.Client{Timeout: 5 * time.Second}

	resp, err := client.Get(base + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	var health struct {
		Status   string `json:"status"`
		NumUsers int    `json:"num_users"`
	}
	json.NewDecoder(resp.Body).Decode(&health)
	resp.Body.Close()
	if health.Status != "ok" || health.NumUsers != 50 {
		t.Fatalf("healthz: %+v", health)
	}

	resp, err = client.Post(base+"/v1/bid", "application/json", strings.NewReader(`{"user":3}`))
	if err != nil {
		t.Fatal(err)
	}
	var bid struct {
		User   int   `json:"user"`
		Events []int `json:"events"`
	}
	json.NewDecoder(resp.Body).Decode(&bid)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || bid.User != 3 {
		t.Fatalf("bid: %d %+v", resp.StatusCode, bid)
	}

	resp, err = client.Get(fmt.Sprintf("%s/statsz", base))
	if err != nil {
		t.Fatal(err)
	}
	var stats struct {
		Decided int64 `json:"decided"`
	}
	json.NewDecoder(resp.Body).Decode(&stats)
	resp.Body.Close()
	if stats.Decided != 1 {
		t.Fatalf("statsz decided = %d, want 1", stats.Decided)
	}

	ln.Close()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("serveListener: %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("serveListener did not exit after listener close")
	}
}

// TestLiveBoundReportsUpdateLatency pins the -live-bound report format: the
// planner-update p50/p99 line and the fast-finish counter are printed
// separately from the decision-latency table.
func TestLiveBoundReportsUpdateLatency(t *testing.T) {
	path := filepath.Join(t.TempDir(), "out.txt")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	cfg := config{
		workload: "synthetic", events: 12, users: 60, seed: 4,
		shards: []int{2}, planner: "greedy", batch: 16, liveBound: true,
	}
	if err := run(f, cfg); err != nil {
		t.Fatal(err)
	}
	f.Close()
	out, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"planner update latency: p50 ",
		"fast-finished",
		"remaining-LP",
	} {
		if !strings.Contains(string(out), want) {
			t.Errorf("live-bound output missing %q:\n%s", want, out)
		}
	}
}

// TestListenDurableShutdownAndWarmBoot drives the crash-safety flags through
// the command path: a signal-style shutdown drains into the WAL and writes
// the checkpoint, and the next boot recovers the decisions.
func TestListenDurableShutdownAndWarmBoot(t *testing.T) {
	dir := t.TempDir()
	null := devNull(t)
	cfg := config{
		workload: "synthetic", events: 12, users: 50, seed: 6,
		shards: []int{2}, planner: "greedy", flush: 200 * time.Microsecond,
		wal:        filepath.Join(dir, "serve.wal"),
		walSync:    "off",
		checkpoint: filepath.Join(dir, "serve.ckpt"),
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- serveListenerCtx(ctx, null, ln, cfg) }()
	base := "http://" + ln.Addr().String()
	client := &http.Client{Timeout: 5 * time.Second}
	for _, u := range []int{3, 7, 11} {
		resp, err := client.Post(base+"/v1/bid", "application/json",
			strings.NewReader(fmt.Sprintf(`{"user":%d}`, u)))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("bid user %d: %d", u, resp.StatusCode)
		}
	}

	cancel() // stands in for SIGTERM: same drain path
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("serveListenerCtx: %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("server did not shut down on signal")
	}
	if _, err := os.Stat(cfg.checkpoint); err != nil {
		t.Fatalf("shutdown wrote no checkpoint: %v", err)
	}

	// Warm boot: the recovered server knows the decisions without replay.
	ln2, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	done2 := make(chan error, 1)
	go func() { done2 <- serveListener(null, ln2, cfg) }()
	base2 := "http://" + ln2.Addr().String()
	resp, err := client.Get(base2 + "/v1/assignment?user=7")
	if err != nil {
		t.Fatal(err)
	}
	var ar struct {
		Decided bool `json:"decided"`
	}
	json.NewDecoder(resp.Body).Decode(&ar)
	resp.Body.Close()
	if !ar.Decided {
		t.Fatal("warm boot lost a decided user")
	}
	ln2.Close()
	select {
	case err := <-done2:
		if err != nil {
			t.Fatalf("second serveListener: %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("second server did not exit")
	}
}

// TestListenFollowerThroughCommand boots a leader and a -follow replica
// through the command path and checks the replica reaches the leader's
// decisions and refuses writes — the acceptance-criteria follower demo.
func TestListenFollowerThroughCommand(t *testing.T) {
	dir := t.TempDir()
	null := devNull(t)
	cfg := config{
		workload: "synthetic", events: 12, users: 50, seed: 6,
		shards: []int{2}, planner: "greedy", flush: 200 * time.Microsecond,
		wal: filepath.Join(dir, "serve.wal"), walSync: "off",
	}
	lnL, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	doneL := make(chan error, 1)
	go func() { doneL <- serveListener(null, lnL, cfg) }()

	fcfg := cfg
	fcfg.follow = true
	lnF, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	doneF := make(chan error, 1)
	go func() { doneF <- serveListener(null, lnF, fcfg) }()

	baseL := "http://" + lnL.Addr().String()
	baseF := "http://" + lnF.Addr().String()
	client := &http.Client{Timeout: 5 * time.Second}
	resp, err := client.Post(baseL+"/v1/bid", "application/json", strings.NewReader(`{"user":9}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("leader bid: %d", resp.StatusCode)
	}

	deadline := time.Now().Add(10 * time.Second)
	for {
		resp, err := client.Get(baseF + "/v1/assignment?user=9")
		if err != nil {
			t.Fatal(err)
		}
		var ar struct {
			Decided bool `json:"decided"`
		}
		json.NewDecoder(resp.Body).Decode(&ar)
		resp.Body.Close()
		if ar.Decided {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("follower never reached the leader's decision")
		}
		time.Sleep(2 * time.Millisecond)
	}
	resp, err = client.Post(baseF+"/v1/bid", "application/json", strings.NewReader(`{"user":1}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("follower accepted a write: %d", resp.StatusCode)
	}

	for _, stop := range []struct {
		ln   net.Listener
		done chan error
	}{{lnL, doneL}, {lnF, doneF}} {
		stop.ln.Close()
		select {
		case err := <-stop.done:
			if err != nil {
				t.Fatal(err)
			}
		case <-time.After(5 * time.Second):
			t.Fatal("server did not exit after listener close")
		}
	}
}

// TestRunTruncatedArrivalLog pins -arrivals-partial: a log cut mid-line is
// rejected by default and salvaged with the flag.
func TestRunTruncatedArrivalLog(t *testing.T) {
	null := devNull(t)
	dir := t.TempDir()
	log := filepath.Join(dir, "arrivals.jsonl")
	arr := workload.SyntheticArrivals(9, 70, 500)
	f, err := os.Create(log)
	if err != nil {
		t.Fatal(err)
	}
	if err := workload.WriteArrivals(f, arr); err != nil {
		t.Fatal(err)
	}
	f.Close()
	raw, err := os.ReadFile(log)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(log, raw[:len(raw)-5], 0o644); err != nil {
		t.Fatal(err)
	}
	cfg := config{
		workload: "synthetic", events: 15, users: 70, seed: 9,
		shards: []int{2}, planner: "greedy", arrivals: log, lpBound: false,
	}
	if err := run(null, cfg); err == nil {
		t.Error("truncated arrival log accepted without -arrivals-partial")
	}
	cfg.arrivalsPartial = true
	if err := run(null, cfg); err != nil {
		t.Fatalf("-arrivals-partial rejected the salvageable log: %v", err)
	}
}
