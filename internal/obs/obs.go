// Package obs is the repo's dependency-free observability kit: a metrics
// registry (counters, gauges, fixed-bucket histograms) with Prometheus
// text exposition, an exposition parser/linter for tests and cluster
// fan-in, and a slow-arrival structured log.
//
// Design constraints, in priority order:
//
//  1. The hot path must be passive. Recording a sample reads the clock and
//     bumps atomics — it never takes a lock shared with a scraper, never
//     allocates, and never feeds back into a serving decision. The engine's
//     bit-identity contract (decisions are a pure function of instance,
//     order and Options) therefore holds with instrumentation on or off;
//     internal/server pins this with replay-equivalence and allocation
//     tests.
//  2. Scrapes must not stall serving. Exposition walks the registry under
//     the registration mutex, but samples are atomics — a slow scraper
//     holds no lock any recording path wants.
//  3. Bounded cardinality. Labels are baked at registration (no dynamic
//     label values on the hot path), and Registry.Lint rejects per-user /
//     per-event label keys outright. See DESIGN.md §12 for the naming and
//     cardinality rules.
package obs

import (
	"fmt"
	"io"
	"math"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Kind is a metric family's exposition TYPE.
type Kind int

const (
	KindCounter Kind = iota
	KindGauge
	KindHistogram
)

func (k Kind) String() string {
	switch k {
	case KindCounter:
		return "counter"
	case KindGauge:
		return "gauge"
	case KindHistogram:
		return "histogram"
	}
	return "untyped"
}

// Label is one static label pair, baked into a series at registration time.
// Values are escaped at registration, so recording never touches them.
type Label struct{ Key, Value string }

// L is shorthand for a Label.
func L(k, v string) Label { return Label{Key: k, Value: v} }

// sample is one registered series: a pre-rendered label block plus its
// value source. Exactly one of the value fields is set, per family kind.
type sample struct {
	labels string // rendered {k="v",...} block, "" when unlabeled
	ctr    *Counter
	gauge  *Gauge
	gaugeF func() float64
	hist   *Histogram
}

// family is one metric name with its help text, kind and series.
type family struct {
	name    string
	help    string
	kind    Kind
	samples []*sample
	byLabel map[string]*sample
}

// Registry holds metric families in registration order. Registration takes
// a mutex; recording on returned handles is lock-free.
type Registry struct {
	mu   sync.Mutex
	fams []*family
	by   map[string]*family
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{by: make(map[string]*family)}
}

func (r *Registry) family(name, help string, kind Kind) *family {
	f, ok := r.by[name]
	if !ok {
		f = &family{name: name, help: help, kind: kind, byLabel: make(map[string]*sample)}
		r.by[name] = f
		r.fams = append(r.fams, f)
		return f
	}
	if f.kind != kind {
		panic(fmt.Sprintf("obs: metric %q registered as both %s and %s", name, f.kind, kind))
	}
	return f
}

func (f *family) sampleFor(labels []Label) (*sample, bool) {
	key := renderLabels(labels)
	if s, ok := f.byLabel[key]; ok {
		return s, true
	}
	s := &sample{labels: key}
	f.byLabel[key] = s
	f.samples = append(f.samples, s)
	return s, false
}

// Counter is a monotonically increasing integer. Add/Inc are the normal
// writers; Store exists for mirrored totals — counters whose source of
// truth is an engine-internal cumulative counter read out at safe points
// (lease renewals) rather than incremented in place. Mirrored values must
// still be monotonic; Store never moves the value backwards.
type Counter struct{ v atomic.Int64 }

func (c *Counter) Inc()        { c.v.Add(1) }
func (c *Counter) Add(n int64) { c.v.Add(n) }
func (c *Counter) Load() int64 { return c.v.Load() }
func (c *Counter) Store(n int64) {
	for {
		cur := c.v.Load()
		if n <= cur || c.v.CompareAndSwap(cur, n) {
			return
		}
	}
}

// Gauge is a float64 that can go up and down, stored as bits in an atomic.
type Gauge struct{ bits atomic.Uint64 }

func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }
func (g *Gauge) Add(d float64) {
	for {
		old := g.bits.Load()
		if g.bits.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+d)) {
			return
		}
	}
}
func (g *Gauge) Load() float64 { return math.Float64frombits(g.bits.Load()) }

// Histogram is a fixed-bucket distribution. Buckets are upper bounds in
// ascending order; an implicit +Inf bucket catches the rest. Observe is
// wait-free per bucket counter and CAS-loops only on the shared sum; it
// never allocates (pinned by TestObserveAllocs).
type Histogram struct {
	bounds  []float64 // ascending upper bounds, +Inf excluded
	counts  []atomic.Uint64
	sumBits atomic.Uint64
}

// Observe records v (in the histogram's native unit — seconds for latency
// histograms by convention).
func (h *Histogram) Observe(v float64) {
	i := sort.SearchFloat64s(h.bounds, v)
	h.counts[i].Add(1)
	for {
		old := h.sumBits.Load()
		if h.sumBits.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+v)) {
			return
		}
	}
}

// ObserveDuration records d in seconds.
func (h *Histogram) ObserveDuration(d time.Duration) { h.Observe(d.Seconds()) }

// Count returns the total number of observations.
func (h *Histogram) Count() uint64 {
	var n uint64
	for i := range h.counts {
		n += h.counts[i].Load()
	}
	return n
}

// Counter registers (or returns the existing) counter series.
func (r *Registry) Counter(name, help string, labels ...Label) *Counter {
	r.mu.Lock()
	defer r.mu.Unlock()
	f := r.family(name, help, KindCounter)
	s, ok := f.sampleFor(labels)
	if !ok {
		s.ctr = &Counter{}
	}
	return s.ctr
}

// Gauge registers (or returns the existing) gauge series.
func (r *Registry) Gauge(name, help string, labels ...Label) *Gauge {
	r.mu.Lock()
	defer r.mu.Unlock()
	f := r.family(name, help, KindGauge)
	s, ok := f.sampleFor(labels)
	if !ok {
		s.gauge = &Gauge{}
	}
	return s.gauge
}

// GaugeFunc registers a gauge whose value is computed at scrape time. fn
// must be safe to call from the scrape goroutine and must not take locks a
// recording path holds while blocked on I/O.
func (r *Registry) GaugeFunc(name, help string, fn func() float64, labels ...Label) {
	r.mu.Lock()
	defer r.mu.Unlock()
	f := r.family(name, help, KindGauge)
	s, _ := f.sampleFor(labels)
	s.gaugeF = fn
	s.gauge = nil
}

// Histogram registers (or returns the existing) histogram series. buckets
// are ascending upper bounds; +Inf is implicit and must not be included.
func (r *Registry) Histogram(name, help string, buckets []float64, labels ...Label) *Histogram {
	r.mu.Lock()
	defer r.mu.Unlock()
	f := r.family(name, help, KindHistogram)
	s, ok := f.sampleFor(labels)
	if !ok {
		b := append([]float64(nil), buckets...)
		if !sort.Float64sAreSorted(b) {
			panic(fmt.Sprintf("obs: histogram %q buckets not ascending", name))
		}
		s.hist = &Histogram{bounds: b, counts: make([]atomic.Uint64, len(b)+1)}
	}
	return s.hist
}

// ExpBuckets returns n exponentially spaced upper bounds starting at start.
func ExpBuckets(start, factor float64, n int) []float64 {
	if start <= 0 || factor <= 1 || n < 1 {
		panic("obs: ExpBuckets wants start > 0, factor > 1, n >= 1")
	}
	b := make([]float64, n)
	v := start
	for i := range b {
		b[i] = v
		v *= factor
	}
	return b
}

// LatencyBuckets is the tree-wide latency layout: 1µs … ~16s, factor 2.
// 25 buckets keeps /metrics small while the factor-2 spacing bounds the
// quantile estimation error to 2× — good enough for alerting; exact tails
// stay on /statsz's reservoir percentiles.
func LatencyBuckets() []float64 { return ExpBuckets(1e-6, 2, 25) }

// SizeBuckets is the byte-size layout: 64B … 2GiB, factor 4.
func SizeBuckets() []float64 { return ExpBuckets(64, 4, 13) }

// WritePrometheus writes the registry in Prometheus text exposition format
// (version 0.0.4). Families appear in registration order.
func (r *Registry) WritePrometheus(w io.Writer) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	var b strings.Builder
	for _, f := range r.fams {
		b.Reset()
		fmt.Fprintf(&b, "# HELP %s %s\n# TYPE %s %s\n", f.name, escapeHelp(f.help), f.name, f.kind)
		for _, s := range f.samples {
			switch f.kind {
			case KindCounter:
				fmt.Fprintf(&b, "%s%s %d\n", f.name, s.labels, s.ctr.Load())
			case KindGauge:
				v := 0.0
				if s.gaugeF != nil {
					v = s.gaugeF()
				} else {
					v = s.gauge.Load()
				}
				fmt.Fprintf(&b, "%s%s %s\n", f.name, s.labels, formatFloat(v))
			case KindHistogram:
				writeHistogram(&b, f.name, s)
			}
		}
		if _, err := io.WriteString(w, b.String()); err != nil {
			return err
		}
	}
	return nil
}

func writeHistogram(b *strings.Builder, name string, s *sample) {
	h := s.hist
	var cum uint64
	for i, ub := range h.bounds {
		cum += h.counts[i].Load()
		fmt.Fprintf(b, "%s_bucket%s %d\n", name, withLabel(s.labels, "le", formatFloat(ub)), cum)
	}
	cum += h.counts[len(h.bounds)].Load()
	fmt.Fprintf(b, "%s_bucket%s %d\n", name, withLabel(s.labels, "le", "+Inf"), cum)
	fmt.Fprintf(b, "%s_sum%s %s\n", name, s.labels, formatFloat(math.Float64frombits(h.sumBits.Load())))
	fmt.Fprintf(b, "%s_count%s %d\n", name, s.labels, cum)
}

// Handler serves the registry at GET /metrics with the 0.0.4 content type.
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		if req.Method != http.MethodGet {
			http.Error(w, "GET only", http.StatusMethodNotAllowed)
			return
		}
		w.Header().Set("Content-Type", ContentType)
		r.WritePrometheus(w)
	})
}

// ContentType is the Prometheus text exposition content type.
const ContentType = "text/plain; version=0.0.4; charset=utf-8"

// renderLabels renders a sorted, escaped {k="v",...} block ("" when empty).
func renderLabels(labels []Label) string {
	if len(labels) == 0 {
		return ""
	}
	ls := append([]Label(nil), labels...)
	sort.Slice(ls, func(i, j int) bool { return ls[i].Key < ls[j].Key })
	var b strings.Builder
	b.WriteByte('{')
	for i, l := range ls {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(l.Key)
		b.WriteString(`="`)
		b.WriteString(escapeValue(l.Value))
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String()
}

// withLabel returns the label block with one more pair appended (the
// histogram le label).
func withLabel(block, k, v string) string {
	pair := k + `="` + escapeValue(v) + `"`
	if block == "" {
		return "{" + pair + "}"
	}
	return block[:len(block)-1] + "," + pair + "}"
}

func escapeValue(v string) string {
	if !strings.ContainsAny(v, "\\\"\n") {
		return v
	}
	r := strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`)
	return r.Replace(v)
}

func escapeHelp(h string) string {
	if !strings.ContainsAny(h, "\\\n") {
		return h
	}
	r := strings.NewReplacer(`\`, `\\`, "\n", `\n`)
	return r.Replace(h)
}

// formatFloat renders a float the way Prometheus expects: integers without
// an exponent, everything else in shortest round-trip form.
func formatFloat(v float64) string {
	switch {
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	case math.IsNaN(v):
		return "NaN"
	case v == math.Trunc(v) && math.Abs(v) < 1e15:
		return strconv.FormatFloat(v, 'f', -1, 64)
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}
