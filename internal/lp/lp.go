// Package lp is a self-contained linear-programming substrate replacing the
// Gurobi dependency of the original paper.
//
// It solves packing-form linear programs
//
//	max  cᵀx   subject to   Ax ≤ b,  x ≥ 0,  b ≥ 0
//
// which is exactly the shape of the IGEPA benchmark LP (1)-(4): user rows
// (Σ_S x_{u,S} ≤ 1) and event rows (Σ x ≤ cv) with 0/1 coefficients. The
// explicit upper bounds x ≤ 1 of (4) are implied by the user rows, so they
// are not represented.
//
// Two solvers are provided:
//
//   - Dense: a textbook full-tableau primal simplex. Small, easy to audit,
//     O((m+n)·m) memory — the reference oracle for tests and small problems.
//   - Revised: a revised primal simplex that maintains the basis as a sparse
//     LU factorization with product-form (eta) updates and periodic
//     refactorization — the production path for paper-scale instances
//     (m = |U|+|V| up to ≈10⁴ rows).
//
// Both start from the all-slack basis (feasible because b ≥ 0, so no phase-1
// is needed), price with Dantzig's rule, and fall back to Bland's rule after
// a run of degenerate pivots to guarantee termination. Verify certifies a
// solution's optimality from first principles (primal feasibility, dual
// feasibility, and strong duality), independent of solver internals.
package lp

import (
	"errors"
	"fmt"
	"math"
)

// Column is one sparse column of the constraint matrix A: Rows[i] holds the
// row index of the i-th nonzero and Vals[i] its coefficient.
type Column struct {
	Rows []int
	Vals []float64
}

// Problem is a packing-form LP: max cᵀx s.t. Ax ≤ b, x ≥ 0 with b ≥ 0.
type Problem struct {
	NumRows int       // m, number of constraints
	C       []float64 // objective coefficients, len n
	Cols    []Column  // constraint columns, len n
	B       []float64 // right-hand side, len m, non-negative
}

// NumCols returns n, the number of structural variables.
func (p *Problem) NumCols() int { return len(p.Cols) }

// Check validates the problem shape: matching lengths, row indices in
// range, b ≥ 0 and all data finite.
func (p *Problem) Check() error {
	if len(p.C) != len(p.Cols) {
		return fmt.Errorf("lp: %d objective coefficients for %d columns", len(p.C), len(p.Cols))
	}
	if len(p.B) != p.NumRows {
		return fmt.Errorf("lp: %d rhs entries for %d rows", len(p.B), p.NumRows)
	}
	for i, b := range p.B {
		if b < 0 {
			return fmt.Errorf("lp: negative rhs b[%d] = %v (packing form requires b ≥ 0)", i, b)
		}
		if math.IsNaN(b) || math.IsInf(b, 0) {
			return fmt.Errorf("lp: non-finite rhs b[%d]", i)
		}
	}
	for j, col := range p.Cols {
		if len(col.Rows) != len(col.Vals) {
			return fmt.Errorf("lp: column %d has %d rows but %d values", j, len(col.Rows), len(col.Vals))
		}
		for k, r := range col.Rows {
			if r < 0 || r >= p.NumRows {
				return fmt.Errorf("lp: column %d references row %d of %d", j, r, p.NumRows)
			}
			if math.IsNaN(col.Vals[k]) || math.IsInf(col.Vals[k], 0) {
				return fmt.Errorf("lp: non-finite coefficient in column %d", j)
			}
		}
		if math.IsNaN(p.C[j]) || math.IsInf(p.C[j], 0) {
			return fmt.Errorf("lp: non-finite objective coefficient c[%d]", j)
		}
	}
	return nil
}

// Status reports how a solve terminated.
type Status int

const (
	// Optimal means an optimal basic solution was found.
	Optimal Status = iota
	// Unbounded means the objective can increase without limit.
	Unbounded
	// IterLimit means the iteration budget was exhausted before optimality.
	IterLimit
)

// String implements fmt.Stringer.
func (s Status) String() string {
	switch s {
	case Optimal:
		return "optimal"
	case Unbounded:
		return "unbounded"
	case IterLimit:
		return "iteration-limit"
	default:
		return fmt.Sprintf("Status(%d)", int(s))
	}
}

// Solution is the result of a solve.
type Solution struct {
	Status     Status
	X          []float64 // primal values, len n
	Y          []float64 // dual row prices, len m (valid when Status == Optimal)
	Objective  float64   // cᵀx
	Iterations int       // simplex pivots performed
}

// Solver solves packing-form LPs.
type Solver interface {
	Solve(p *Problem) (*Solution, error)
}

// ErrUnbounded is returned when the LP is unbounded. (The IGEPA benchmark LP
// is always bounded; seeing this indicates a malformed problem.)
var ErrUnbounded = errors.New("lp: problem is unbounded")

// ErrIterLimit is returned when the pivot budget is exhausted.
var ErrIterLimit = errors.New("lp: iteration limit reached")

// denseRowLimit is the size up to which the default Solve uses the dense
// tableau; larger problems use the revised simplex.
const denseRowLimit = 400

// Solve solves p with an automatically chosen solver: the dense tableau for
// small problems and the sparse revised simplex otherwise.
func Solve(p *Problem) (*Solution, error) {
	if p.NumRows <= denseRowLimit && p.NumCols() <= 4*denseRowLimit {
		return (&Dense{}).Solve(p)
	}
	return (&Revised{}).Solve(p)
}

// Verify certifies that sol is an optimal solution of p within tolerance
// tol, checking from first principles:
//
//	primal feasibility:  Ax ≤ b + tol,  x ≥ −tol
//	dual feasibility:    y ≥ −tol,  cⱼ − yᵀaⱼ ≤ tol for every column j
//	strong duality:      |cᵀx − bᵀy| ≤ tol·(1+|cᵀx|)
//
// Any LP solution passing these checks is optimal regardless of how it was
// produced, which is how the tests cross-validate the two simplex
// implementations.
func Verify(p *Problem, sol *Solution, tol float64) error {
	if sol.Status != Optimal {
		return fmt.Errorf("lp: cannot verify non-optimal status %v", sol.Status)
	}
	if len(sol.X) != p.NumCols() || len(sol.Y) != p.NumRows {
		return fmt.Errorf("lp: solution shape mismatch")
	}
	ax := make([]float64, p.NumRows)
	obj := 0.0
	for j, col := range p.Cols {
		x := sol.X[j]
		if x < -tol {
			return fmt.Errorf("lp: x[%d] = %v negative", j, x)
		}
		obj += p.C[j] * x
		for k, r := range col.Rows {
			ax[r] += col.Vals[k] * x
		}
	}
	for i := 0; i < p.NumRows; i++ {
		if ax[i] > p.B[i]+tol*(1+math.Abs(p.B[i])) {
			return fmt.Errorf("lp: row %d violated: %v > %v", i, ax[i], p.B[i])
		}
		if sol.Y[i] < -tol {
			return fmt.Errorf("lp: dual y[%d] = %v negative", i, sol.Y[i])
		}
	}
	for j, col := range p.Cols {
		red := p.C[j]
		for k, r := range col.Rows {
			red -= sol.Y[r] * col.Vals[k]
		}
		if red > tol*(1+math.Abs(p.C[j])) {
			return fmt.Errorf("lp: column %d has positive reduced cost %v", j, red)
		}
	}
	if math.Abs(obj-sol.Objective) > tol*(1+math.Abs(obj)) {
		return fmt.Errorf("lp: reported objective %v but cᵀx = %v", sol.Objective, obj)
	}
	by := 0.0
	for i, y := range sol.Y {
		by += p.B[i] * y
	}
	if math.Abs(obj-by) > tol*(1+math.Abs(obj)) {
		return fmt.Errorf("lp: duality gap: cᵀx = %v, bᵀy = %v", obj, by)
	}
	return nil
}
