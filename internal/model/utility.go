package model

// utilityBlock is the user-block width of the utility summation tree. The
// sum is defined as Σ over blocks of (Σ over the block's users of the
// user's subtotal), with every level accumulated left to right. Fixing this
// shape (instead of one flat left-to-right pass over pairs) is what lets
// UtilityAccumulator maintain the value under seat moves bit-identically to
// a from-scratch evaluation: a changed user re-derives only their subtotal
// and their block's partial, and every float64 addition that produces the
// final value happens in exactly the same order either way.
const utilityBlock = 256

// Utility computes Utility(M) (Definition 7) for the arrangement under the
// instance's interest function, social degrees and β.
//
// The summation shape is the fixed user-blocked tree described on
// utilityBlock; UtilityAccumulator reproduces it exactly, so incremental
// maintenance is bit-equal to calling Utility from scratch.
func Utility(in *Instance, a *Arrangement) float64 {
	wc := in.Weights()
	total := 0.0
	n := len(a.Sets)
	for lo := 0; lo < n; lo += utilityBlock {
		hi := min(lo+utilityBlock, n)
		block := 0.0
		for u := lo; u < hi; u++ {
			block += userUtility(wc, u, a.Sets[u])
		}
		total += block
	}
	return total
}

// userUtility is user u's subtotal over their assigned events, accumulated
// in set order — the one shared leaf computation of Utility and
// UtilityAccumulator.
func userUtility(wc *WeightCache, u int, set []int) float64 {
	su := 0.0
	for _, v := range set {
		su += wc.Of(u, v)
	}
	return su
}

// UtilityAccumulator maintains Utility(M) under seat moves: SetUser
// re-derives one user's subtotal in O(|set|) and marks their block stale;
// Total re-sums only stale blocks plus the O(|U|/utilityBlock) block chain.
// Because both levels reproduce Utility's fixed summation tree, Total is
// bit-equal to a from-scratch Utility call on the tracked arrangement — the
// incremental rounding path's determinism contract depends on this, and the
// property test in utility_test.go pins it.
//
// The accumulator reads the instance's weight cache at SetUser time, so
// after a bid delta the caller must re-sync the cache (Invalidate) and then
// SetUser every affected user, even those whose event set did not change.
// An accumulator is not safe for concurrent use.
type UtilityAccumulator struct {
	in    *Instance
	user  []float64 // per-user subtotals
	block []float64 // per-block partials, re-derived lazily from user
	stale []bool    // block staleness
}

// NewUtilityAccumulator builds an accumulator tracking the arrangement. The
// arrangement itself is not retained: the caller owns it and reports every
// later mutation through SetUser.
func NewUtilityAccumulator(in *Instance, a *Arrangement) *UtilityAccumulator {
	nu := len(in.Users)
	nb := (nu + utilityBlock - 1) / utilityBlock
	acc := &UtilityAccumulator{
		in:    in,
		user:  make([]float64, nu),
		block: make([]float64, nb),
		stale: make([]bool, nb),
	}
	wc := in.Weights()
	for u := 0; u < nu; u++ {
		var set []int
		if a != nil {
			set = a.Sets[u]
		}
		acc.user[u] = userUtility(wc, u, set)
	}
	for b := range acc.stale {
		acc.stale[b] = true
	}
	return acc
}

// SetUser re-derives user u's subtotal from their (sorted) event set. Call
// it after any change to the user's assignment — or to their weights.
func (acc *UtilityAccumulator) SetUser(u int, set []int) {
	acc.user[u] = userUtility(acc.in.Weights(), u, set)
	acc.stale[u/utilityBlock] = true
}

// Total returns the tracked Utility(M), bit-equal to Utility on the same
// arrangement.
func (acc *UtilityAccumulator) Total() float64 {
	total := 0.0
	for b := range acc.block {
		if acc.stale[b] {
			lo := b * utilityBlock
			hi := min(lo+utilityBlock, len(acc.user))
			s := 0.0
			for u := lo; u < hi; u++ {
				s += acc.user[u]
			}
			acc.block[b] = s
			acc.stale[b] = false
		}
		total += acc.block[b]
	}
	return total
}
