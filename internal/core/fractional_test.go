package core

import (
	"testing"

	"github.com/ebsn/igepa/internal/lp"
	"github.com/ebsn/igepa/internal/model"
)

// fractionalSolver is a stub LP solver returning a fixed fractional
// solution. On the generated workloads the benchmark LP solves integrally,
// so the sampling-collision → repair path of Algorithm 1 never fires there;
// this fixture forces the fractional regime the ¼-approximation guarantee
// was designed for and checks the rounding machinery end to end.
type fractionalSolver struct {
	x []float64
}

func (f *fractionalSolver) Solve(p *lp.Problem) (*lp.Solution, error) {
	x := make([]float64, p.NumCols())
	copy(x, f.x)
	obj := 0.0
	for j := range x {
		obj += p.C[j] * x[j]
	}
	return &lp.Solution{Status: lp.Optimal, X: x, Y: make([]float64, p.NumRows), Objective: obj}, nil
}

// contendedInstance: one event of capacity 1, three users who each bid only
// for it. Au per user = {{0}}, so the LP has exactly 3 columns.
func contendedInstance() *model.Instance {
	return &model.Instance{
		Events: []model.Event{{Capacity: 1}},
		Users: []model.User{
			{Capacity: 1, Bids: []int{0}, Degree: 0},
			{Capacity: 1, Bids: []int{0}, Degree: 0},
			{Capacity: 1, Bids: []int{0}, Degree: 0},
		},
		Conflicts: func(v, w int) bool { return false },
		Interest:  func(u, v int) float64 { return 1 },
		Beta:      1,
	}
}

func TestFractionalLPSamplingCollisionsAreRepaired(t *testing.T) {
	in := contendedInstance()
	// fractional optimum: each user gets the event with probability 1/2;
	// expected load 1.5 > capacity 1, so realized collisions are frequent.
	solver := &fractionalSolver{x: []float64{0.5, 0.5, 0.5}}

	sawDrop := false
	sawAssign := false
	for seed := int64(0); seed < 64; seed++ {
		res, err := LPPacking(in, Options{Seed: seed, Solver: solver})
		if err != nil {
			t.Fatal(err)
		}
		if err := model.Validate(in, res.Arrangement); err != nil {
			t.Fatalf("seed %d: infeasible after repair: %v", seed, err)
		}
		if res.Arrangement.Size() > 1 {
			t.Fatalf("seed %d: event over capacity after repair", seed)
		}
		if res.RepairDropped > 0 {
			sawDrop = true
		}
		if res.Arrangement.Size() == 1 {
			sawAssign = true
		}
		if res.SampledPairs < res.Arrangement.Size() {
			t.Fatalf("seed %d: sampled %d < assigned %d", seed, res.SampledPairs, res.Arrangement.Size())
		}
	}
	if !sawDrop {
		t.Error("64 seeds never produced a sampling collision (P ≈ 1 - (1/2)^64·...)")
	}
	if !sawAssign {
		t.Error("64 seeds never assigned the event")
	}
}

func TestFractionalLPAlphaHalfRespectsTheorem(t *testing.T) {
	// With α = 1/2 each user samples with probability 1/4; the expected
	// realized utility must stay within [OPT/4, OPT] — Theorem 2's regime.
	in := contendedInstance()
	solver := &fractionalSolver{x: []float64{0.5, 0.5, 0.5}}
	const trials = 4000
	total := 0.0
	for seed := int64(0); seed < trials; seed++ {
		res, err := LPPacking(in, Options{Alpha: 0.5, Seed: seed, Solver: solver})
		if err != nil {
			t.Fatal(err)
		}
		total += res.Utility
	}
	mean := total / trials
	// OPT = 1 (one user attends). Theorem floor = 0.25.
	if mean < 0.25 {
		t.Errorf("E[ALG] = %.3f below the 1/4 floor", mean)
	}
	if mean > 1.0 {
		t.Errorf("E[ALG] = %.3f exceeds OPT", mean)
	}
}

func TestSubDistributionOverflowIsRescaled(t *testing.T) {
	// A (buggy or loosely-toleranced) LP might return Σx > 1 for a user;
	// sampling must renormalize rather than panic or over-assign.
	in := contendedInstance()
	solver := &fractionalSolver{x: []float64{0.7, 0.7, 0.7}}
	for seed := int64(0); seed < 32; seed++ {
		res, err := LPPacking(in, Options{Seed: seed, Solver: solver})
		if err != nil {
			t.Fatal(err)
		}
		if err := model.Validate(in, res.Arrangement); err != nil {
			t.Fatal(err)
		}
	}
}
