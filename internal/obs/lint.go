package obs

// Metric hygiene checks, run two ways: Registry.Lint validates every
// registered metric in-process (the CI metrics-lint step runs it via
// TestRegistryLint against each binary's live registry), and
// LintExposition validates a serialized scrape — the form the router's
// /cluster/metrics fan-in and external scrapers actually consume.

import (
	"fmt"
	"io"
	"regexp"
	"strings"
)

var (
	metricNameRE = regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*$`)
	labelNameRE  = regexp.MustCompile(`^[a-zA-Z_][a-zA-Z0-9_]*$`)
)

// forbiddenLabelKeys are per-entity keys whose cardinality grows with the
// instance (millions of users, thousands of events) — exactly what the
// DESIGN.md §12 cardinality rule bans. Bounded dimensions (shard, backend,
// phase, code, solver) are fine.
var forbiddenLabelKeys = []string{"user", "user_id", "event", "event_id"}

// maxSeriesPerFamily bounds per-family cardinality: every legitimate
// dimension in this tree (shard index, backend index, HTTP code, LP phase)
// is far below it, so crossing it means a label leaked an unbounded value.
const maxSeriesPerFamily = 256

// Lint returns every hygiene violation among the registered metrics: bad
// metric/label names, counters without the _total suffix, forbidden
// per-entity label keys, and families whose series count suggests an
// unbounded label.
func (r *Registry) Lint() []string {
	r.mu.Lock()
	defer r.mu.Unlock()
	var probs []string
	for _, f := range r.fams {
		probs = append(probs, lintFamily(f.name, f.kind.String(), f.help == "", len(f.samples))...)
		for _, s := range f.samples {
			probs = append(probs, lintLabelBlock(f.name, strings.Trim(s.labels, "{}"))...)
		}
	}
	return probs
}

// LintExposition validates one serialized scrape: parses it, then applies
// the same hygiene rules plus exposition-level structure checks (duplicate
// series, histogram sample consistency, parseable values).
func LintExposition(r io.Reader) []string {
	fams, err := ParseFamilies(r)
	if err != nil {
		return []string{err.Error()}
	}
	var probs []string
	for _, f := range fams {
		if f.Type == "" {
			probs = append(probs, fmt.Sprintf("%s: samples without a TYPE line", f.Name))
		}
		probs = append(probs, lintFamily(f.Name, f.Type, f.Help == "", len(f.Samples))...)
		seen := map[string]bool{}
		var bucketCum, lastCount float64
		sawCount := false
		for _, s := range f.Samples {
			if f.Type == "histogram" {
				if s.Name != f.Name+"_bucket" && s.Name != f.Name+"_sum" && s.Name != f.Name+"_count" {
					probs = append(probs, fmt.Sprintf("%s: stray sample %s in histogram family", f.Name, s.Name))
				}
			} else if s.Name != f.Name {
				probs = append(probs, fmt.Sprintf("%s: stray sample %s", f.Name, s.Name))
			}
			id := s.Name + "{" + s.Labels + "}"
			if seen[id] {
				probs = append(probs, fmt.Sprintf("%s: duplicate series %s", f.Name, id))
			}
			seen[id] = true
			v, err := s.Float()
			if err != nil {
				probs = append(probs, fmt.Sprintf("%s: unparseable value %q", s.Name, s.Value))
				continue
			}
			probs = append(probs, lintLabelBlock(f.Name, s.Labels)...)
			switch {
			case s.Name == f.Name+"_bucket":
				if s.Label("le") == "" {
					probs = append(probs, fmt.Sprintf("%s: bucket without le label", f.Name))
				}
				bucketCum = v
			case s.Name == f.Name+"_count":
				lastCount, sawCount = v, true
			}
		}
		if f.Type == "histogram" && sawCount && bucketCum != lastCount {
			probs = append(probs, fmt.Sprintf("%s: +Inf bucket %v != count %v", f.Name, bucketCum, lastCount))
		}
	}
	return probs
}

func lintFamily(name, typ string, noHelp bool, series int) []string {
	var probs []string
	if !metricNameRE.MatchString(name) {
		probs = append(probs, fmt.Sprintf("%s: invalid metric name", name))
	}
	if noHelp {
		probs = append(probs, fmt.Sprintf("%s: missing HELP text", name))
	}
	if typ == "counter" && !strings.HasSuffix(name, "_total") {
		probs = append(probs, fmt.Sprintf("%s: counter without _total suffix", name))
	}
	if typ == "gauge" && strings.HasSuffix(name, "_total") {
		probs = append(probs, fmt.Sprintf("%s: gauge with counter-style _total suffix", name))
	}
	if series > maxSeriesPerFamily {
		probs = append(probs, fmt.Sprintf("%s: %d series (max %d) — unbounded label?", name, series, maxSeriesPerFamily))
	}
	return probs
}

func lintLabelBlock(metric, raw string) []string {
	var probs []string
	keys, err := labelKeys(raw)
	if err != nil {
		return []string{fmt.Sprintf("%s: %v", metric, err)}
	}
	for i, k := range keys {
		if !labelNameRE.MatchString(k) {
			probs = append(probs, fmt.Sprintf("%s: invalid label name %q", metric, k))
		}
		if strings.HasPrefix(k, "__") {
			probs = append(probs, fmt.Sprintf("%s: reserved label name %q", metric, k))
		}
		if i > 0 && keys[i-1] == k {
			probs = append(probs, fmt.Sprintf("%s: duplicate label %q", metric, k))
		}
		for _, bad := range forbiddenLabelKeys {
			if k == bad {
				probs = append(probs, fmt.Sprintf("%s: forbidden per-entity label %q (cardinality rule, DESIGN.md §12)", metric, k))
			}
		}
	}
	return probs
}
