package lp

// Dense is a full-tableau primal simplex solver. It keeps the entire
// (m+1)×(n+m+1) tableau in memory, which makes every pivot O(m·(n+m)) but
// the implementation short and auditable. It is the reference oracle the
// revised solver is tested against, and the default for small problems.
type Dense struct {
	// MaxIter bounds the number of pivots; 0 means an automatic limit of
	// 10000 + 200·(m+n).
	MaxIter int
}

const (
	pivotTol   = 1e-9 // minimum magnitude for a ratio-test pivot element
	reducedTol = 1e-9 // optimality tolerance on reduced costs
	// stallLimit is the number of consecutive degenerate (zero-step) pivots
	// tolerated under Dantzig pricing before switching to Bland's rule,
	// which guarantees termination.
	stallLimit = 256
)

// Solve runs the primal simplex on p from the all-slack basis.
func (s *Dense) Solve(p *Problem) (*Solution, error) {
	if err := p.Check(); err != nil {
		return nil, err
	}
	m, n := p.NumRows, p.NumCols()
	maxIter := s.MaxIter
	if maxIter <= 0 {
		maxIter = 10000 + 200*(m+n)
	}

	width := n + m + 1 // structural + slack + rhs
	rhs := n + m
	t := make([][]float64, m+1)
	for i := range t {
		t[i] = make([]float64, width)
	}
	for j := 0; j < n; j++ {
		rows, vals := p.Col(j)
		for k, r := range rows {
			t[r][j] += vals[k]
		}
	}
	for i := 0; i < m; i++ {
		t[i][n+i] = 1
		t[i][rhs] = p.B[i]
	}
	obj := t[m]
	for j := 0; j < n; j++ {
		obj[j] = -p.C[j]
	}

	basis := make([]int, m)
	for i := range basis {
		basis[i] = n + i
	}

	iters := 0
	degenerate := 0
	bland := false
	for ; iters < maxIter; iters++ {
		// Pricing: entering column q with negative objective-row entry.
		q := -1
		if bland {
			for j := 0; j < n+m; j++ {
				if obj[j] < -reducedTol {
					q = j
					break
				}
			}
		} else {
			best := -reducedTol
			for j := 0; j < n+m; j++ {
				if obj[j] < best {
					best = obj[j]
					q = j
				}
			}
		}
		if q < 0 {
			return s.extract(p, t, basis, iters)
		}

		// Ratio test: leaving row r.
		r := -1
		var theta float64
		for i := 0; i < m; i++ {
			a := t[i][q]
			if a <= pivotTol {
				continue
			}
			ratio := t[i][rhs] / a
			switch {
			case r < 0 || ratio < theta-pivotTol:
				r, theta = i, ratio
			case ratio <= theta+pivotTol:
				// tie: Bland takes the smallest basic variable index,
				// Dantzig the numerically largest pivot.
				if bland {
					if basis[i] < basis[r] {
						r, theta = i, ratio
					}
				} else if a > t[r][q] {
					r, theta = i, ratio
				}
			}
		}
		if r < 0 {
			return &Solution{Status: Unbounded, Iterations: iters}, ErrUnbounded
		}

		if theta <= pivotTol {
			degenerate++
			if degenerate >= stallLimit {
				bland = true
			}
		} else {
			degenerate = 0
			bland = false
		}

		// Pivot on (r, q).
		piv := t[r][q]
		rowR := t[r]
		inv := 1 / piv
		for j := 0; j < width; j++ {
			rowR[j] *= inv
		}
		for i := 0; i <= m; i++ {
			if i == r {
				continue
			}
			f := t[i][q]
			if f == 0 {
				continue
			}
			rowI := t[i]
			for j := 0; j < width; j++ {
				rowI[j] -= f * rowR[j]
			}
			rowI[q] = 0 // exact zero, avoids round-off residue
		}
		basis[r] = q
	}
	return &Solution{Status: IterLimit, Iterations: iters}, ErrIterLimit
}

// extract reads the optimal primal and dual solutions out of the final
// tableau.
func (s *Dense) extract(p *Problem, t [][]float64, basis []int, iters int) (*Solution, error) {
	m, n := p.NumRows, p.NumCols()
	rhs := n + m
	x := make([]float64, n)
	for i, bj := range basis {
		if bj < n {
			v := t[i][rhs]
			if v < 0 && v > -1e-9 {
				v = 0 // round-off guard
			}
			x[bj] = v
		}
	}
	y := make([]float64, m)
	for i := 0; i < m; i++ {
		v := t[m][n+i]
		if v < 0 && v > -1e-9 {
			v = 0
		}
		y[i] = v
	}
	objVal := 0.0
	for j := 0; j < n; j++ {
		objVal += p.C[j] * x[j]
	}
	return &Solution{Status: Optimal, X: x, Y: y, Objective: objVal, Iterations: iters}, nil
}
