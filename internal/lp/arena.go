package lp

import "sync"

// The state arena pool recycles revisedStates across Solver lifetimes,
// keyed by the row dimension m. A high-QPS serving loop that creates a
// Solver per request (or per lease-renewal round) reuses the LU workspace,
// eta arena and pricing vectors of an earlier solve of the same shape
// instead of reallocating them — the benchmark LP's row count is fixed by
// the instance, so the key has very low cardinality in practice.
//
// States are pooled per dimension rather than in one pool so that a small
// problem never pins the multi-megabyte workspace of a large one (and vice
// versa: acquiring for m rows never hands back an undersized arena that
// would immediately reallocate everything).
var statePools sync.Map // m (int) -> *sync.Pool of *revisedState

// acquireState returns a recycled state for an m-row problem, or a fresh one
// when the pool is empty. The caller must rebind it before use.
func acquireState(m int) *revisedState {
	if v, ok := statePools.Load(m); ok {
		if st, ok := v.(*sync.Pool).Get().(*revisedState); ok && st != nil {
			st.refactors = 0
			return st
		}
	}
	return &revisedState{lu: &luFactors{}}
}

// releaseState parks a state in the pool for its dimension. The problem
// reference is dropped (states must not keep problems alive) and the
// solution buffers are detached — the last returned Solution keeps its
// backing arrays, so releasing a solver never invalidates results the
// caller still holds. Every other backing array is kept for the next
// acquire.
func releaseState(st *revisedState) {
	if st == nil {
		return
	}
	st.p = nil
	// basisCols holds views into the problem's CSC arrays; clear them so a
	// parked state never pins the released problem's column storage.
	for i := range st.basisCols {
		st.basisCols[i] = spCol{}
	}
	st.xOut, st.yOut = nil, nil
	// The timer sink belongs to the releasing Solver's config; a recycled
	// state must not keep accumulating into (or pinning) it.
	st.timers = nil
	v, _ := statePools.LoadOrStore(st.m, &sync.Pool{})
	v.(*sync.Pool).Put(st)
}
