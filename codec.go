package igepa

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"

	"github.com/ebsn/igepa/internal/conflict"
	"github.com/ebsn/igepa/internal/model"
)

// The JSON codec materializes an instance into a self-contained document:
// conflicts become an explicit pair list and interests an explicit value per
// (user, bid) pair — algorithms only ever evaluate SI on bid pairs, so this
// is lossless for solving while keeping files small. Round-tripping any
// instance through Save/Load yields identical algorithm behaviour.

type instanceJSON struct {
	Beta   string      `json:"beta"` // printed as %g for stable diffs
	Events []eventJSON `json:"events"`
	Users  []userJSON  `json:"users"`
	// Conflicts lists unordered conflicting event pairs (v < w).
	Conflicts [][2]int `json:"conflicts"`
}

type eventJSON struct {
	Capacity int       `json:"capacity"`
	Attrs    []float64 `json:"attrs,omitempty"`
	Start    int64     `json:"start,omitempty"`
	End      int64     `json:"end,omitempty"`
}

type userJSON struct {
	Capacity int       `json:"capacity"`
	Attrs    []float64 `json:"attrs,omitempty"`
	Degree   int       `json:"degree"`
	Bids     []int     `json:"bids"`
	// Interest[i] is SI(u, Bids[i]).
	Interest []float64 `json:"interest"`
}

// SaveInstance writes the instance as JSON. Conflicts and bid-pair interests
// are materialized so the file is self-contained.
func SaveInstance(w io.Writer, in *Instance) error {
	if err := in.Check(); err != nil {
		return err
	}
	doc := instanceJSON{Beta: fmt.Sprintf("%g", in.Beta)}
	for v := range in.Events {
		ev := &in.Events[v]
		doc.Events = append(doc.Events, eventJSON{
			Capacity: ev.Capacity, Attrs: ev.Attrs, Start: ev.Start, End: ev.End,
		})
	}
	for u := range in.Users {
		us := &in.Users[u]
		uj := userJSON{
			Capacity: us.Capacity, Attrs: us.Attrs, Degree: us.Degree,
			Bids: us.Bids, Interest: make([]float64, len(us.Bids)),
		}
		for i, v := range us.Bids {
			uj.Interest[i] = in.Interest(u, v)
		}
		doc.Users = append(doc.Users, uj)
	}
	doc.Conflicts = conflict.FromFunc(in.NumEvents(), in.Conflicts).Pairs()
	enc := json.NewEncoder(w)
	return enc.Encode(&doc)
}

// LoadInstance reads an instance saved by SaveInstance. Interests outside
// the stored bid pairs are 0.
func LoadInstance(r io.Reader) (*Instance, error) {
	var doc instanceJSON
	dec := json.NewDecoder(r)
	if err := dec.Decode(&doc); err != nil {
		return nil, fmt.Errorf("igepa: decode instance: %w", err)
	}
	var beta float64
	if _, err := fmt.Sscanf(doc.Beta, "%g", &beta); err != nil {
		return nil, fmt.Errorf("igepa: bad beta %q: %w", doc.Beta, err)
	}
	in := &Instance{Beta: beta}
	for _, ej := range doc.Events {
		in.Events = append(in.Events, Event{
			Capacity: ej.Capacity, Attrs: ej.Attrs, Start: ej.Start, End: ej.End,
		})
	}
	// interest lookup: per user, parallel to sorted bids
	interests := make([][]float64, len(doc.Users))
	for u, uj := range doc.Users {
		if len(uj.Interest) != len(uj.Bids) {
			return nil, fmt.Errorf("igepa: user %d has %d interests for %d bids", u, len(uj.Interest), len(uj.Bids))
		}
		in.Users = append(in.Users, User{
			Capacity: uj.Capacity, Attrs: uj.Attrs, Degree: uj.Degree, Bids: uj.Bids,
		})
		interests[u] = uj.Interest
	}
	nv := len(in.Events)
	for _, p := range doc.Conflicts {
		if p[0] < 0 || p[0] >= nv || p[1] < 0 || p[1] >= nv {
			return nil, fmt.Errorf("igepa: conflict pair %v out of range", p)
		}
	}
	conf := conflict.FromPairs(nv, doc.Conflicts)
	in.Conflicts = conf.Conflicts
	users := in.Users
	in.Interest = func(u, v int) float64 {
		bids := users[u].Bids
		i := sort.SearchInts(bids, v)
		if i < len(bids) && bids[i] == v {
			return interests[u][i]
		}
		return 0
	}
	if err := in.Check(); err != nil {
		return nil, fmt.Errorf("igepa: loaded instance invalid: %w", err)
	}
	return in, nil
}

// arrangementJSON is the on-disk form of an arrangement.
type arrangementJSON struct {
	Sets [][]int `json:"sets"`
}

// SaveArrangement writes the arrangement as JSON.
func SaveArrangement(w io.Writer, a *Arrangement) error {
	sets := a.Sets
	if sets == nil {
		sets = [][]int{}
	}
	return json.NewEncoder(w).Encode(&arrangementJSON{Sets: sets})
}

// LoadArrangement reads an arrangement saved by SaveArrangement.
func LoadArrangement(r io.Reader) (*Arrangement, error) {
	var doc arrangementJSON
	if err := json.NewDecoder(r).Decode(&doc); err != nil {
		return nil, fmt.Errorf("igepa: decode arrangement: %w", err)
	}
	return &model.Arrangement{Sets: doc.Sets}, nil
}
