package router

import (
	"encoding/json"
	"fmt"
	"net/http"

	"github.com/ebsn/igepa/internal/server"
)

// Join/leave support: POST /admin/migrate moves a user range between two
// live backends without dropping queued work (the runbook is DESIGN.md §10).
// The sequence, serialized against renewal rounds by renewMu:
//
//  1. drain the source so no queued bid for a moving user is in flight
//  2. /cluster/export on the source — decisions, consumed seats, and
//     lifecycle states leave its engine; it answers 421 for those users
//     from now on
//  3. /cluster/adopt on the target — the same state enters its engine
//  4. mirror the seat movement in the Coordinator's budget table and flip
//     the routing overrides, so new bids route to the target
//
// Between steps 2 and 4 a directly-arriving request can still hit the source
// and bounce 421; the /v1 handlers re-resolve once, and after step 4 the
// override answers. A failure after the export committed leaves the range
// homeless — that is not repairable from here, so the router degrades
// fail-stop and the operator replays the WALs.

// MigrateRequest is the /admin/migrate payload.
type MigrateRequest struct {
	From  int   `json:"from"`
	To    int   `json:"to"`
	Users []int `json:"users"`
}

func (rt *Router) handleMigrate(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		httpError(w, http.StatusMethodNotAllowed, "POST only")
		return
	}
	if !rt.writable(w) {
		return
	}
	var req MigrateRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		httpError(w, http.StatusBadRequest, "bad JSON: "+err.Error())
		return
	}
	if req.From < 0 || req.From >= rt.s || req.To < 0 || req.To >= rt.s || req.From == req.To {
		httpError(w, http.StatusBadRequest, fmt.Sprintf("bad shard pair %d -> %d for %d backends", req.From, req.To, rt.s))
		return
	}
	if len(req.Users) == 0 {
		httpError(w, http.StatusBadRequest, "no users to migrate")
		return
	}
	for _, u := range req.Users {
		if u < 0 || u >= rt.in.NumUsers() {
			httpError(w, http.StatusBadRequest, fmt.Sprintf("user %d outside [0,%d)", u, rt.in.NumUsers()))
			return
		}
		if rt.ownerOf(u) != req.From {
			httpError(w, http.StatusConflict, fmt.Sprintf("user %d is owned by shard %d, not %d", u, rt.ownerOf(u), req.From))
			return
		}
	}
	moved, err := rt.migrate(&req)
	if err != nil {
		propagate(w, err)
		return
	}
	writeJSON(w, http.StatusOK, struct {
		Migrated int `json:"migrated"`
		Seats    int `json:"seats_moved"`
	}{Migrated: len(req.Users), Seats: moved})
}

func (rt *Router) migrate(req *MigrateRequest) (int, error) {
	// renewMu excludes renewal rounds: a freeze mid-migration would read a
	// budget table the transfer below is about to rewrite.
	rt.renewMu.Lock()
	defer rt.renewMu.Unlock()
	if rt.degraded.Load() {
		return 0, &statusError{status: http.StatusServiceUnavailable, msg: "router degraded: " + rt.degradedReason()}
	}

	// 1. Quiesce the source: every queued bid for these users decides before
	// the export (the shard refuses to export a queued user regardless —
	// this makes that refusal not fire under normal operation).
	var dr struct {
		Drained bool `json:"drained"`
	}
	if _, err := rt.postJSON(req.From, "/admin/drain", struct{}{}, &dr); err != nil {
		return 0, fmt.Errorf("draining shard %d: %w", req.From, err)
	}
	if !dr.Drained {
		return 0, &statusError{status: http.StatusServiceUnavailable,
			msg: fmt.Sprintf("shard %d did not drain; retry", req.From)}
	}
	rt.obs.notePhase("drain")

	// 2. Export. Failures here are clean: nothing has moved yet.
	var mig server.ClusterMigration
	if _, err := rt.postJSON(req.From, "/cluster/export",
		server.ClusterExportRequest{Users: req.Users}, &mig); err != nil {
		return 0, fmt.Errorf("export from shard %d: %w", req.From, err)
	}
	rt.obs.notePhase("export")

	// 3. Adopt. From here on a failure strands the exported range: degrade.
	if _, err := rt.postJSON(req.To, "/cluster/adopt", &mig, nil); err != nil {
		rt.degrade(fmt.Sprintf("migration %d->%d lost %d exported users: %v", req.From, req.To, len(mig.Users), err))
		return 0, fmt.Errorf("adopt on shard %d: %w", req.To, err)
	}
	rt.obs.notePhase("adopt")

	// 4. Mirror in the coordinator and flip the routing table.
	seats := make([]int, rt.in.NumEvents())
	moved := 0
	for _, set := range mig.Sets {
		for _, v := range set {
			seats[v]++
			moved++
		}
	}
	if err := rt.coord.TransferSeats(req.From, req.To, seats); err != nil {
		rt.degrade(fmt.Sprintf("migration %d->%d: coordinator transfer failed: %v", req.From, req.To, err))
		return 0, err
	}
	rt.routeMu.Lock()
	for _, u := range req.Users {
		rt.override[u] = req.To
	}
	rt.routeMu.Unlock()
	rt.obs.notePhase("commit")
	rt.obs.noteMigration(len(req.Users), moved)
	rt.obs.mirrorCoord(rt.coord.Renewals(), rt.coord.MovedSeats())
	return moved, nil
}
