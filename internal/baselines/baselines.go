// Package baselines implements the comparison algorithms of the paper's
// evaluation (§IV): Random-U and Random-V (the randomized baselines of the
// GEACC study, She et al., ICDE 2015, generalized to user capacities > 1),
// GG (the greedy extension of Greedy-GEACC), plus two extras used by the
// reproduction itself: an exact branch-and-bound solver for small instances
// (to measure empirical approximation ratios against the true optimum) and
// a local-search improver.
package baselines

import (
	"fmt"
	"sort"

	"github.com/ebsn/igepa/internal/admissible"
	"github.com/ebsn/igepa/internal/conflict"
	"github.com/ebsn/igepa/internal/model"
	"github.com/ebsn/igepa/internal/xrand"
)

// assigner tracks feasibility while an algorithm builds an arrangement
// incrementally.
type assigner struct {
	in   *model.Instance
	conf *conflict.Matrix
	arr  *model.Arrangement
	load []int
}

func newAssigner(in *model.Instance) *assigner {
	return &assigner{
		in:   in,
		conf: conflict.FromFunc(in.NumEvents(), in.Conflicts),
		arr:  model.NewArrangement(in.NumUsers()),
		load: make([]int, in.NumEvents()),
	}
}

// canAssign reports whether adding (v,u) keeps the arrangement feasible.
// The bid constraint is the caller's responsibility (all callers iterate
// over bid lists).
func (a *assigner) canAssign(u, v int) bool {
	if len(a.arr.Sets[u]) >= a.in.Users[u].Capacity {
		return false
	}
	if a.load[v] >= a.in.Events[v].Capacity {
		return false
	}
	for _, w := range a.arr.Sets[u] {
		if w == v || a.conf.Conflicts(w, v) {
			return false
		}
	}
	return true
}

func (a *assigner) assign(u, v int) {
	a.arr.Sets[u] = append(a.arr.Sets[u], v)
	a.load[v]++
}

func (a *assigner) finish() *model.Arrangement {
	a.arr.Normalize()
	return a.arr
}

// RandomU is the user-driven randomized baseline: users are visited in a
// random order and each takes the events of its bid list, in random order,
// that are still feasible.
func RandomU(in *model.Instance, seed int64) *model.Arrangement {
	rng := xrand.New(seed)
	a := newAssigner(in)
	order := rng.Perm(in.NumUsers())
	for _, u := range order {
		bids := append([]int(nil), in.Users[u].Bids...)
		rng.Shuffle(len(bids), func(i, j int) { bids[i], bids[j] = bids[j], bids[i] })
		for _, v := range bids {
			if a.canAssign(u, v) {
				a.assign(u, v)
			}
		}
	}
	return a.finish()
}

// RandomV is the event-driven randomized baseline: events are visited in a
// random order and each admits its bidders, in random order, while capacity
// remains and the bidder stays feasible.
func RandomV(in *model.Instance, seed int64) *model.Arrangement {
	rng := xrand.New(seed)
	a := newAssigner(in)
	order := rng.Perm(in.NumEvents())
	for _, v := range order {
		bidders := append([]int(nil), in.Bidders(v)...)
		rng.Shuffle(len(bidders), func(i, j int) { bidders[i], bidders[j] = bidders[j], bidders[i] })
		for _, u := range bidders {
			if a.load[v] >= in.Events[v].Capacity {
				break
			}
			if a.canAssign(u, v) {
				a.assign(u, v)
			}
		}
	}
	return a.finish()
}

// Greedy is GG, the greedy baseline: all (event,user) bid pairs are sorted
// by descending marginal utility w(u,v) and added whenever feasible. It is
// deterministic (ties broken by user then event index).
func Greedy(in *model.Instance) *model.Arrangement {
	a := newAssigner(in)
	wc := in.Weights()
	type pair struct {
		u, v int
		w    float64
	}
	var pairs []pair
	for u := range in.Users {
		for i, v := range in.Users[u].Bids {
			pairs = append(pairs, pair{u, v, wc.At(u, i)})
		}
	}
	sort.Slice(pairs, func(i, j int) bool {
		if pairs[i].w != pairs[j].w {
			return pairs[i].w > pairs[j].w
		}
		if pairs[i].u != pairs[j].u {
			return pairs[i].u < pairs[j].u
		}
		return pairs[i].v < pairs[j].v
	})
	for _, p := range pairs {
		if a.canAssign(p.u, p.v) {
			a.assign(p.u, p.v)
		}
	}
	return a.finish()
}

// MaxOptimalUsers bounds the exact solver: branch-and-bound explores one
// admissible set (or none) per user, which is exponential in the worst
// case. Instances beyond this many users are rejected.
const MaxOptimalUsers = 24

// Optimal computes an exact optimal arrangement by branch-and-bound over
// per-user admissible sets. It is intended for small instances (ratio
// experiments, tests); it returns an error when |U| > MaxOptimalUsers.
func Optimal(in *model.Instance) (*model.Arrangement, float64, error) {
	if err := in.Check(); err != nil {
		return nil, 0, err
	}
	if in.NumUsers() > MaxOptimalUsers {
		return nil, 0, fmt.Errorf("baselines: Optimal limited to %d users, got %d", MaxOptimalUsers, in.NumUsers())
	}
	conf := conflict.FromFunc(in.NumEvents(), in.Conflicts)
	nu := in.NumUsers()

	wc := in.Weights()
	sets := make([][]admissible.Set, nu)
	bestPerUser := make([]float64, nu)
	for u := 0; u < nu; u++ {
		w := func(v int) float64 { return wc.Of(u, v) }
		r := admissible.Enumerate(in.Users[u].Bids, in.Users[u].Capacity, conf, w, admissible.Config{MaxSetsPerUser: -1})
		sets[u] = r.Sets
		for _, s := range r.Sets {
			if s.Weight > bestPerUser[u] {
				bestPerUser[u] = s.Weight
			}
		}
	}
	// suffixBound[u] = Σ_{u' ≥ u} bestPerUser[u']: an optimistic bound on
	// what users u.. can still add (event capacities ignored).
	suffixBound := make([]float64, nu+1)
	for u := nu - 1; u >= 0; u-- {
		suffixBound[u] = suffixBound[u+1] + bestPerUser[u]
	}

	b := &bb{
		in: in, sets: sets, suffix: suffixBound,
		load:   make([]int, in.NumEvents()),
		choice: make([]int, nu),
		best:   make([]int, nu),
	}
	for i := range b.best {
		b.best[i] = -1
	}
	b.bestVal = -1
	b.search(0, 0)

	arr := model.NewArrangement(nu)
	for u, si := range b.best {
		if si >= 0 {
			arr.Sets[u] = append([]int(nil), sets[u][si].Events...)
		}
	}
	arr.Normalize()
	return arr, b.bestVal, nil
}

type bb struct {
	in      *model.Instance
	sets    [][]admissible.Set
	suffix  []float64
	load    []int
	choice  []int
	best    []int
	bestVal float64
}

func (b *bb) search(u int, value float64) {
	if value+b.suffix[u] <= b.bestVal+1e-12 {
		return // bound: cannot beat incumbent
	}
	if u == len(b.sets) {
		if value > b.bestVal {
			b.bestVal = value
			copy(b.best, b.choice)
		}
		return
	}
	// Try the heaviest sets first so the incumbent tightens early.
	order := make([]int, len(b.sets[u]))
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(i, j int) bool {
		return b.sets[u][order[i]].Weight > b.sets[u][order[j]].Weight
	})
	for _, si := range order {
		s := b.sets[u][si]
		ok := true
		for _, v := range s.Events {
			if b.load[v] >= b.in.Events[v].Capacity {
				ok = false
				break
			}
		}
		if !ok {
			continue
		}
		for _, v := range s.Events {
			b.load[v]++
		}
		b.choice[u] = si
		b.search(u+1, value+s.Weight)
		for _, v := range s.Events {
			b.load[v]--
		}
	}
	b.choice[u] = -1
	b.search(u+1, value)
}

// LocalSearch improves an arrangement by first-improvement moves until a
// local optimum or maxRounds passes: adding any feasible pair, or swapping
// one of a user's events for a strictly better feasible alternative. The
// result never has lower utility than start. Provided as a reproduction
// extension (not part of the paper's evaluation).
func LocalSearch(in *model.Instance, start *model.Arrangement, maxRounds int) *model.Arrangement {
	if maxRounds <= 0 {
		maxRounds = 50
	}
	a := newAssigner(in)
	wc := in.Weights()
	for u, set := range start.Sets {
		for _, v := range set {
			a.assign(u, v)
		}
	}
	for round := 0; round < maxRounds; round++ {
		improved := false
		for u := range in.Users {
			// additions
			for _, v := range in.Users[u].Bids {
				if a.canAssign(u, v) {
					a.assign(u, v)
					improved = true
				}
			}
			// swaps: replace w by strictly heavier v
			for _, v := range in.Users[u].Bids {
				if has(a.arr.Sets[u], v) || a.load[v] >= in.Events[v].Capacity {
					continue
				}
				for i, w := range a.arr.Sets[u] {
					if wc.Of(u, v) <= wc.Of(u, w) {
						continue
					}
					// v must be compatible with the rest of u's set
					ok := true
					for j, x := range a.arr.Sets[u] {
						if j != i && (x == v || a.conf.Conflicts(x, v)) {
							ok = false
							break
						}
					}
					if !ok {
						continue
					}
					a.load[w]--
					a.load[v]++
					a.arr.Sets[u][i] = v
					improved = true
					break
				}
			}
		}
		if !improved {
			break
		}
	}
	return a.finish()
}

func has(s []int, x int) bool {
	for _, v := range s {
		if v == x {
			return true
		}
	}
	return false
}
