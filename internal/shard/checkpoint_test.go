package shard

import (
	"bytes"
	"math"
	"reflect"
	"testing"

	"github.com/ebsn/igepa/internal/faultfs"
	"github.com/ebsn/igepa/internal/model/modeltest"
	"github.com/ebsn/igepa/internal/wal"
)

// fixtureStream builds a live-style operation log over an engine's users:
// bids in seeded order, a demand-fed renewal every `renewEvery` decisions, a
// few cancels and bid replacements mixed in. Deterministic — the crash
// sweep replays it thousands of times.
func fixtureStream(nu, nv, renewEvery int) []wal.Op {
	order := arrivalOrder(11, nu)
	var ops []wal.Op
	since := 0
	for i, u := range order {
		if i%17 == 5 {
			ops = append(ops, wal.Op{Kind: wal.OpSetBids, User: u, Bids: []int{u % nv, (u + 3) % nv, (u + 3) % nv}})
		}
		ops = append(ops, wal.Op{Kind: wal.OpBid, User: u})
		since++
		if i%13 == 9 {
			ops = append(ops, wal.Op{Kind: wal.OpCancel, User: u})
		}
		if since >= renewEvery {
			since = 0
			// demand snapshot: the next few arrivals, like the live renewer's
			// queued-user view
			var pending []int
			for j := i + 1; j < len(order) && j < i+1+renewEvery; j++ {
				pending = append(pending, order[j])
			}
			ops = append(ops, wal.Op{Kind: wal.OpRenew, Users: pending})
		}
	}
	return ops
}

// applyDirect drives the engine the way the live serving layer does — the
// reference the replay path must match bit for bit.
func applyDirect(t *testing.T, e *Engine, op wal.Op) {
	t.Helper()
	switch op.Kind {
	case wal.OpBid:
		e.ArriveOn(e.ShardOf(op.User), op.User)
	case wal.OpRenew:
		if e.Shards() == 1 {
			return // the live renewer only runs (and logs) for S > 1
		}
		if _, err := e.RenewLeases(op.Users); err != nil {
			t.Fatalf("renew: %v", err)
		}
	case wal.OpCancel:
		e.CancelOn(e.ShardOf(op.User), op.User)
	case wal.OpSetBids:
		e.SetBids(op.User, op.Bids)
	case wal.OpBatch:
		if e.Epochs() > 0 && e.Shards() > 1 {
			if _, err := e.RenewLeases(op.Users); err != nil {
				t.Fatalf("renew before batch: %v", err)
			}
		}
		e.DispatchBatch(op.Users)
	}
}

// newFixtureEngine builds an engine over a fresh instance (fresh matters:
// set_bids ops mutate the instance, so engines under comparison must not
// share one).
func newFixtureEngine(t testing.TB, s, nu, nv int) *Engine {
	t.Helper()
	in := testInstance(t, 3, nu, nv)
	e, err := NewEngine(in, Options{Shards: s, Batch: 12, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	return e
}

// requireSameState asserts two engines are bit-identical: counters,
// utility bits, leases, and the merged arrangement.
func requireSameState(t *testing.T, label string, want, got *Engine) {
	t.Helper()
	ws, gs := want.CheckpointState(), got.CheckpointState()
	if !reflect.DeepEqual(ws, gs) {
		t.Fatalf("%s: checkpoint state diverged\nwant %+v\ngot  %+v", label, ws, gs)
	}
	wa, err := want.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	ga, err := got.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	modeltest.RequireEqual(t, label, wa, ga)
	for si := 0; si < want.Shards(); si++ {
		if math.Float64bits(want.ShardUtility(si)) != math.Float64bits(got.ShardUtility(si)) {
			t.Fatalf("%s: shard %d utility bits diverged: %x vs %x", label, si,
				math.Float64bits(want.ShardUtility(si)), math.Float64bits(got.ShardUtility(si)))
		}
	}
}

// TestApplyMatchesDirect pins the replay contract: Engine.Apply on the
// logged operation stream reproduces the live call sequence bit-identically
// — for both the live-style stream (bids + explicit renewals) and the
// replay-style stream (batch records with derived renewals).
func TestApplyMatchesDirect(t *testing.T) {
	const nu, nv = 90, 12
	for _, s := range []int{1, 3, 4} {
		live := newFixtureEngine(t, s, nu, nv)
		defer live.Close()
		replayed := newFixtureEngine(t, s, nu, nv)
		defer replayed.Close()
		ops := fixtureStream(nu, nv, 12)
		for _, op := range ops {
			applyDirect(t, live, op)
			if err := replayed.Apply(op); err != nil {
				t.Fatalf("S=%d: Apply(%+v): %v", s, op, err)
			}
		}
		requireSameState(t, "live-style stream", live, replayed)
	}

	// batch records: renewal derived from state, exactly Serve's schedule
	for _, s := range []int{1, 4} {
		direct := newFixtureEngine(t, s, nu, nv)
		defer direct.Close()
		replayed := newFixtureEngine(t, s, nu, nv)
		defer replayed.Close()
		order := arrivalOrder(11, nu)
		for i := 0; i < len(order); i += 12 {
			end := i + 12
			if end > len(order) {
				end = len(order)
			}
			op := wal.Op{Kind: wal.OpBatch, Users: order[i:end]}
			applyDirect(t, direct, op)
			if err := replayed.Apply(op); err != nil {
				t.Fatalf("S=%d: Apply(batch): %v", s, err)
			}
		}
		requireSameState(t, "batch stream", direct, replayed)
	}
}

func TestApplyRejectsInvalidOps(t *testing.T) {
	e := newFixtureEngine(t, 2, 20, 6)
	defer e.Close()
	bad := []wal.Op{
		{Kind: "explode"},
		{Kind: wal.OpBid, User: -1},
		{Kind: wal.OpBid, User: 20},
		{Kind: wal.OpBatch, Users: []int{0, 99}},
		{Kind: wal.OpRenew, Users: []int{-3}},
		{Kind: wal.OpCancel, User: 20},
		{Kind: wal.OpSetBids, User: 0, Bids: []int{6}},
		{Kind: wal.OpSetBids, User: 21},
	}
	for _, op := range bad {
		if err := e.Apply(op); err == nil {
			t.Fatalf("Apply(%+v) accepted", op)
		}
	}
}

// TestCheckpointRestoreRoundtrip pins warm boot: a fresh engine restored
// from CheckpointState equals the original bit for bit — and keeps equaling
// it while both serve the rest of the stream.
func TestCheckpointRestoreRoundtrip(t *testing.T) {
	const nu, nv = 90, 12
	for _, s := range []int{1, 3, 4} {
		// no set_bids here: the two engines intentionally share no instance
		// mutations beyond what RestoreState covers (the serving layer
		// re-applies bid overrides before restore; that path is exercised in
		// internal/server)
		order := arrivalOrder(11, nu)
		src := newFixtureEngine(t, s, nu, nv)
		defer src.Close()
		half := len(order) / 2
		for i, u := range order[:half] {
			src.ArriveOn(src.ShardOf(u), u)
			if i%12 == 11 && s > 1 {
				if _, err := src.RenewLeases(order[i+1:]); err != nil {
					t.Fatal(err)
				}
			}
		}
		st := src.CheckpointState()

		dst := newFixtureEngine(t, s, nu, nv)
		defer dst.Close()
		if err := dst.RestoreState(st); err != nil {
			t.Fatalf("S=%d: RestoreState: %v", s, err)
		}
		requireSameState(t, "at checkpoint", src, dst)

		// both continue serving: the restored loads/budgets/utility must be
		// serving-equivalent, not just snapshot-equal
		for _, u := range order[half:] {
			src.ArriveOn(src.ShardOf(u), u)
			dst.ArriveOn(dst.ShardOf(u), u)
		}
		if s > 1 {
			if _, err := src.RenewLeases(nil); err != nil {
				t.Fatal(err)
			}
			if _, err := dst.RenewLeases(nil); err != nil {
				t.Fatal(err)
			}
		}
		requireSameState(t, "after continued serving", src, dst)
	}
}

func TestRestoreStateValidates(t *testing.T) {
	e := newFixtureEngine(t, 2, 20, 6)
	defer e.Close()
	good := e.CheckpointState()

	if err := e.RestoreState(nil); err == nil {
		t.Fatal("nil state accepted")
	}
	wrong := *good
	wrong.Shards = 3
	if err := e.RestoreState(&wrong); err == nil {
		t.Fatal("shard-count mismatch accepted")
	}
	wrong = *good
	wrong.Seed = 99
	if err := e.RestoreState(&wrong); err == nil {
		t.Fatal("seed mismatch accepted — the partition would not match")
	}
	// broken lease invariant: Σ budgets ≠ capacity
	wrong = *good
	wrong.Budgets = make([][]int, len(good.Budgets))
	for i := range wrong.Budgets {
		wrong.Budgets[i] = append([]int(nil), good.Budgets[i]...)
	}
	wrong.Budgets[0][0]++
	if err := e.RestoreState(&wrong); err == nil {
		t.Fatal("over-leased checkpoint accepted")
	}
	// a set referencing an unknown event
	wrong = *good
	wrong.Sets = make([][]int, len(good.Sets))
	copy(wrong.Sets, good.Sets)
	wrong.Sets[0] = []int{97}
	if err := e.RestoreState(&wrong); err == nil {
		t.Fatal("out-of-range assignment accepted")
	}
}

// TestEngineCrashSweep is the recovery-equivalence sweep: frame the fixture
// stream through the WAL writer onto a fault-injected file, crash at every
// byte offset, and assert that recovering the surviving image yields an
// engine bit-identical to a never-crashed engine that served exactly the
// durable record prefix. Torn and corrupt tails must be detected and
// dropped — a partial record is never applied.
func TestEngineCrashSweep(t *testing.T) {
	const nu, nv, s = 72, 10, 3
	ops := fixtureStream(nu, nv, 12)
	encoded := make([][]byte, len(ops))
	var full []byte
	ends := []int64{0}
	for i, op := range ops {
		encoded[i] = op.Encode()
		full = append(full, frameFor(encoded[i])...)
		ends = append(ends, int64(len(full)))
	}

	// reference states: refState[k] is the never-crashed engine after the
	// first k ops, via the live call path
	refState := make([]*EngineState, len(ops)+1)
	{
		ref := newFixtureEngine(t, s, nu, nv)
		refState[0] = ref.CheckpointState()
		for k, op := range ops {
			applyDirect(t, ref, op)
			refState[k+1] = ref.CheckpointState()
		}
		ref.Close()
	}

	lastChecked := -1
	for crash := int64(0); crash <= int64(len(full)); crash++ {
		// the write path: every op committed through a writer that dies at
		// byte `crash` — the surviving image is the torn log recovery sees
		mem := &faultfs.MemFile{}
		w := wal.NewWriter(faultfs.Wrap(mem, faultfs.Fault{CrashAfter: crash}), 0, wal.Options{Sync: wal.SyncOff})
		for _, op := range ops {
			if _, err := w.Append(op); err != nil {
				break
			}
			if err := w.Commit(); err != nil {
				break
			}
		}
		w.Close()
		if !bytes.Equal(mem.Bytes(), full[:crash]) {
			t.Fatalf("crash@%d: surviving image is not the log prefix", crash)
		}

		payloads, valid, _ := wal.Scan(bytes.NewReader(mem.Bytes()))
		k := 0
		for k+1 < len(ends) && ends[k+1] <= crash {
			k++
		}
		if len(payloads) != k || valid != ends[k] {
			t.Fatalf("crash@%d: recovered %d records to %d, want %d to %d",
				crash, len(payloads), valid, k, ends[k])
		}
		if k == lastChecked {
			continue // same durable prefix as the previous offset: state already proven
		}
		lastChecked = k

		rec := newFixtureEngine(t, s, nu, nv)
		for i, p := range payloads {
			if !bytes.Equal(p, encoded[i]) {
				t.Fatalf("crash@%d: record %d altered", crash, i)
			}
			op, err := wal.DecodeOp(p)
			if err != nil {
				t.Fatalf("crash@%d: record %d: %v", crash, i, err)
			}
			if err := rec.Apply(op); err != nil {
				t.Fatalf("crash@%d: applying record %d: %v", crash, i, err)
			}
		}
		if got, want := rec.CheckpointState(), refState[k]; !reflect.DeepEqual(got, want) {
			t.Fatalf("crash@%d: recovered state after %d records diverged from the uninterrupted run", crash, k)
		}
		rec.Close()
	}
}

// frameFor builds one WAL frame without exporting the framing internals:
// write one record through a writer onto a memory file.
func frameFor(payload []byte) []byte {
	mem := &faultfs.MemFile{}
	w := wal.NewWriter(mem, 0, wal.Options{Sync: wal.SyncOff})
	if _, err := w.AppendFrame(payload); err != nil {
		panic(err)
	}
	if err := w.Commit(); err != nil {
		panic(err)
	}
	w.Close()
	return append([]byte(nil), mem.Bytes()...)
}

// TestCorruptRecordNeverApplied flips one byte mid-log and asserts recovery
// stops at the last valid frame — the corrupt record and everything after
// it is dropped, not replayed.
func TestCorruptRecordNeverApplied(t *testing.T) {
	const nu, nv, s = 72, 10, 3
	ops := fixtureStream(nu, nv, 12)
	var full []byte
	ends := []int64{0}
	for _, op := range ops {
		full = append(full, frameFor(op.Encode())...)
		ends = append(ends, int64(len(full)))
	}
	// corrupt a payload byte inside record kBad
	kBad := len(ops) / 2
	img := append([]byte(nil), full...)
	img[ends[kBad]+8] ^= 0x01

	payloads, valid, tailErr := wal.Scan(bytes.NewReader(img))
	if len(payloads) != kBad || valid != ends[kBad] {
		t.Fatalf("recovered %d records to %d, want %d to %d", len(payloads), valid, kBad, ends[kBad])
	}
	if tailErr == nil {
		t.Fatal("corruption not reported")
	}

	ref := newFixtureEngine(t, s, nu, nv)
	defer ref.Close()
	for _, op := range ops[:kBad] {
		applyDirect(t, ref, op)
	}
	rec := newFixtureEngine(t, s, nu, nv)
	defer rec.Close()
	for _, p := range payloads {
		op, err := wal.DecodeOp(p)
		if err != nil {
			t.Fatal(err)
		}
		if err := rec.Apply(op); err != nil {
			t.Fatal(err)
		}
	}
	requireSameState(t, "recovery stops at corruption", ref, rec)
}

// TestCloseIdempotent pins the recovery-path contract: Close is safe on
// nil engines (a failed boot) and safe to call twice, so every recovery
// path can unconditionally defer Close.
func TestCloseIdempotent(t *testing.T) {
	var nilEng *Engine
	nilEng.Close() // must not panic

	e := newFixtureEngine(t, 2, 20, 6)
	e.Close()
	e.Close() // must not panic or double-release

	// Close after an engine that never served
	e2 := newFixtureEngine(t, 1, 10, 4)
	e2.Close()
	e2.Close()
}
