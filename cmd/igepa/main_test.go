package main

import (
	"os"
	"path/filepath"
	"testing"

	"github.com/ebsn/igepa"
)

// writeSmallInstance saves a small synthetic instance to dir and returns its
// path.
func writeSmallInstance(t *testing.T, dir string) string {
	t.Helper()
	in, err := igepa.Synthetic(igepa.SyntheticConfig{
		Seed: 3, NumEvents: 10, NumUsers: 20,
		MaxEventCap: 4, MaxUserCap: 2, MinBids: 2, MaxBids: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, "instance.json")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if err := igepa.SaveInstance(f, in); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestRunFromFileAllAlgorithms(t *testing.T) {
	dir := t.TempDir()
	path := writeSmallInstance(t, dir)
	for _, alg := range []string{"lp-packing", "greedy", "random-u", "random-v", "local-search"} {
		if err := run(path, false, false, alg, 1, "", true); err != nil {
			t.Errorf("%s: %v", alg, err)
		}
	}
}

func TestRunWritesArrangement(t *testing.T) {
	dir := t.TempDir()
	path := writeSmallInstance(t, dir)
	out := filepath.Join(dir, "arr.json")
	if err := run(path, false, false, "greedy", 1, out, false); err != nil {
		t.Fatal(err)
	}
	f, err := os.Open(out)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	arr, err := igepa.LoadArrangement(f)
	if err != nil {
		t.Fatal(err)
	}
	if arr.Size() == 0 {
		t.Error("written arrangement is empty")
	}
}

func TestRunErrors(t *testing.T) {
	if err := run("", false, false, "greedy", 1, "", false); err == nil {
		t.Error("missing input source accepted")
	}
	if err := run("/nonexistent.json", false, false, "greedy", 1, "", false); err == nil {
		t.Error("missing file accepted")
	}
	dir := t.TempDir()
	path := writeSmallInstance(t, dir)
	if err := run(path, false, false, "bogus", 1, "", false); err == nil {
		t.Error("unknown algorithm accepted")
	}
}

func TestLoadOrGenerateSelectors(t *testing.T) {
	in, err := loadOrGenerate("", true, false, 1)
	if err != nil || in.NumUsers() != 2000 {
		t.Errorf("synthetic: %v users=%d", err, in.NumUsers())
	}
}
