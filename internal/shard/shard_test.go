package shard

import (
	"fmt"
	"testing"

	"github.com/ebsn/igepa/internal/core"
	"github.com/ebsn/igepa/internal/model"
	"github.com/ebsn/igepa/internal/model/modeltest"
	"github.com/ebsn/igepa/internal/online"
	"github.com/ebsn/igepa/internal/workload"
	"github.com/ebsn/igepa/internal/xrand"
)

func testInstance(t testing.TB, seed int64, nu, nv int) *model.Instance {
	t.Helper()
	in, err := workload.Synthetic(workload.SyntheticConfig{
		Seed: seed, NumEvents: nv, NumUsers: nu,
		MaxEventCap: 10, MaxUserCap: 3, MinBids: 2, MaxBids: 5,
	})
	if err != nil {
		t.Fatal(err)
	}
	return in
}

func arrivalOrder(seed int64, nu int) []int {
	return xrand.New(seed).Perm(nu)
}

// TestSingleShardMatchesOnlineRun pins the degenerate case: one shard with
// any batch size is exactly the unsharded online planner — the lease is the
// full capacity table and renewals are no-ops.
func TestSingleShardMatchesOnlineRun(t *testing.T) {
	in := testInstance(t, 7, 150, 25)
	order := arrivalOrder(3, in.NumUsers())

	want, err := online.Run(in, order, online.NewGreedy(in, 0))
	if err != nil {
		t.Fatal(err)
	}
	for _, batch := range []int{1, 16, 1000} {
		res, err := Serve(in, order, Options{Shards: 1, Batch: batch})
		if err != nil {
			t.Fatal(err)
		}
		modeltest.RequireEqual(t, fmt.Sprintf("batch=%d", batch), want, res.Arrangement)
	}

	tw, err := online.Run(in, order, online.NewThreshold(in, 0.4, 0.3, 0))
	if err != nil {
		t.Fatal(err)
	}
	res, err := Serve(in, order, Options{Shards: 1, Planner: PlannerThreshold, Tau: 0.4, Guard: 0.3})
	if err != nil {
		t.Fatal(err)
	}
	modeltest.RequireEqual(t, "threshold", tw, res.Arrangement)
}

// TestServeFeasibleAndDeterministic is the acceptance-criteria test: for
// every shard count S ∈ {1,2,4,8} and several worker counts, the merged
// arrangement passes the shared invariant oracle and Instance.Check holds,
// and the result is bit-identical across worker counts and reruns of the
// same seed.
func TestServeFeasibleAndDeterministic(t *testing.T) {
	in := testInstance(t, 11, 200, 30)
	if err := in.Check(); err != nil {
		t.Fatal(err)
	}
	order := arrivalOrder(5, in.NumUsers())

	for _, kind := range []PlannerKind{PlannerGreedy, PlannerThreshold} {
		for _, s := range []int{1, 2, 4, 8} {
			label := fmt.Sprintf("%v/S=%d", kind, s)
			opt := Options{Shards: s, Batch: 32, Seed: 42, Planner: kind, Tau: 0.5, Guard: 0.25}

			opt.Workers = 1
			base, err := Serve(in, order, opt)
			if err != nil {
				t.Fatal(err)
			}
			modeltest.RequireFeasible(t, label, in, base.Arrangement)

			for _, workers := range []int{2, 3, 8, 0} {
				opt.Workers = workers
				got, err := Serve(in, order, opt)
				if err != nil {
					t.Fatal(err)
				}
				modeltest.RequireEqual(t, fmt.Sprintf("%s workers=%d", label, workers), base.Arrangement, got.Arrangement)
			}

			// rerun with identical options: bit-identical
			opt.Workers = 0
			again, err := Serve(in, order, opt)
			if err != nil {
				t.Fatal(err)
			}
			modeltest.RequireEqual(t, label+" rerun", base.Arrangement, again.Arrangement)

			if s == 1 && base.LeaseRenewals != 0 {
				t.Errorf("%s: single shard performed %d lease renewals", label, base.LeaseRenewals)
			}
			total := 0
			for _, n := range base.Arrivals {
				total += n
			}
			if total != len(order) {
				t.Errorf("%s: %d arrivals served, want %d", label, total, len(order))
			}
		}
	}
}

// TestUtilityDegradesGracefully bounds the sharding cost: on a mid-size
// synthetic workload the 8-shard utility stays within a constant factor of
// the single-shard planner and of the offline LP upper bound. The floors
// are pinned well below the measured ratios (≈0.90 vs single-shard,
// ≈0.73 vs LP bound at S=8) so they fail only on real regressions.
func TestUtilityDegradesGracefully(t *testing.T) {
	in := testInstance(t, 13, 300, 40)
	order := arrivalOrder(9, in.NumUsers())

	single, err := Serve(in, order, Options{Shards: 1})
	if err != nil {
		t.Fatal(err)
	}
	lpRes, err := core.LPPacking(in, core.Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	bound := lpRes.LPObjective
	if single.Utility > bound+1e-9 {
		t.Fatalf("single-shard utility %v exceeds LP bound %v", single.Utility, bound)
	}

	for _, s := range []int{2, 4, 8} {
		res, err := Serve(in, order, Options{Shards: s, Batch: 32})
		if err != nil {
			t.Fatal(err)
		}
		if res.Utility > bound+1e-9 {
			t.Fatalf("S=%d utility %v exceeds LP bound %v", s, res.Utility, bound)
		}
		ratio := res.Utility / single.Utility
		t.Logf("S=%d: utility=%.4f (%.3f of single-shard, %.3f of LP bound), moved=%d seats over %d renewals",
			s, res.Utility, ratio, res.Utility/bound, res.MovedSeats, res.LeaseRenewals)
		if ratio < 0.80 {
			t.Errorf("S=%d: utility degraded to %.3f of single-shard, want ≥ 0.80", s, ratio)
		}
		if res.Utility/bound < 0.50 {
			t.Errorf("S=%d: utility %.3f of LP bound, want ≥ 0.50", s, res.Utility/bound)
		}
	}
}

// TestLeasePoliciesFeasibleAndDeterministic extends the acceptance suite to
// every lease policy: feasibility through the shared oracle, bit-identical
// results across worker counts and reruns.
func TestLeasePoliciesFeasibleAndDeterministic(t *testing.T) {
	in := testInstance(t, 29, 200, 30)
	order := arrivalOrder(5, in.NumUsers())
	for _, pol := range []LeasePolicy{LeaseDemand, LeaseEven, LeaseLP} {
		for _, s := range []int{2, 8} {
			label := fmt.Sprintf("%v/S=%d", pol, s)
			opt := Options{Shards: s, Batch: 32, Seed: 42, Lease: pol, Workers: 1}
			base, err := Serve(in, order, opt)
			if err != nil {
				t.Fatal(err)
			}
			modeltest.RequireFeasible(t, label, in, base.Arrangement)
			if pol == LeaseLP && base.LeaseSolves.WarmSolves == 0 {
				t.Errorf("%s: lease LP never warm-solved: %+v", label, base.LeaseSolves)
			}
			for _, workers := range []int{3, 0} {
				opt.Workers = workers
				got, err := Serve(in, order, opt)
				if err != nil {
					t.Fatal(err)
				}
				modeltest.RequireEqual(t, fmt.Sprintf("%s workers=%d", label, workers), base.Arrangement, got.Arrangement)
			}
		}
	}
}

// TestDemandLeaseClosesUtilityGap pins the headline of the demand-aware
// renewal: on the mid-size synthetic workload where the even split lost
// ≈10% of single-shard utility at S=8, the demand and LP policies must stay
// within 3% (measured: demand ≈0.9995, LP ≈1.047 — the LP split can beat
// the single planner by steering seats toward upcoming high-value bidders).
func TestDemandLeaseClosesUtilityGap(t *testing.T) {
	in := testInstance(t, 13, 300, 40)
	order := arrivalOrder(9, in.NumUsers())
	single, err := Serve(in, order, Options{Shards: 1})
	if err != nil {
		t.Fatal(err)
	}
	for _, pol := range []LeasePolicy{LeaseDemand, LeaseLP} {
		res, err := Serve(in, order, Options{Shards: 8, Batch: 32, Lease: pol})
		if err != nil {
			t.Fatal(err)
		}
		ratio := res.Utility / single.Utility
		t.Logf("S=8 %v: %.4f of single shard (moved %d seats, lease solves %+v)",
			pol, ratio, res.MovedSeats, res.LeaseSolves)
		if ratio < 0.97 {
			t.Errorf("S=8 %v: utility %.4f of single shard, want ≥ 0.97", pol, ratio)
		}
	}
}

// TestRecordLatency pins the latency plumbing: samples only for served
// users, all non-negative, absent unless requested.
func TestRecordLatency(t *testing.T) {
	in := testInstance(t, 31, 80, 12)
	order := arrivalOrder(4, in.NumUsers())
	half := order[:40]
	res, err := Serve(in, half, Options{Shards: 4, RecordLatency: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Latencies) != in.NumUsers() {
		t.Fatalf("latencies length %d, want %d", len(res.Latencies), in.NumUsers())
	}
	served := make(map[int]bool, len(half))
	for _, u := range half {
		served[u] = true
		if res.Latencies[u] <= 0 {
			t.Errorf("served user %d has latency %v", u, res.Latencies[u])
		}
	}
	for u, l := range res.Latencies {
		if !served[u] && l != 0 {
			t.Errorf("unserved user %d has latency %v", u, l)
		}
	}
	res, err = Serve(in, half, Options{Shards: 4})
	if err != nil {
		t.Fatal(err)
	}
	if res.Latencies != nil {
		t.Error("latencies recorded without RecordLatency")
	}
}

func TestLeasePolicyString(t *testing.T) {
	if LeaseDemand.String() != "demand" || LeaseEven.String() != "even" ||
		LeaseLP.String() != "lp" || LeasePolicy(9).String() == "" {
		t.Error("LeasePolicy.String broken")
	}
}

// TestRenewLeasesInvariant white-boxes the renewal round: it must restore
// Σ_s budget[s][v] = cv exactly, never revoke a consumed seat, and conserve
// the free pool.
func TestRenewLeasesInvariant(t *testing.T) {
	in := testInstance(t, 17, 40, 12)
	rng := xrand.New(1)
	const s = 4
	for trial := 0; trial < 50; trial++ {
		budgets := make([][]int, s)
		planners := make([]shardPlanner, s)
		for si := 0; si < s; si++ {
			budgets[si] = make([]int, in.NumEvents())
			planners[si] = shardPlanner{loads: make([]int, in.NumEvents())}
		}
		for v := 0; v < in.NumEvents(); v++ {
			cv := in.Events[v].Capacity
			// random lease split summing to cv, random loads ≤ lease
			for k := 0; k < cv; k++ {
				budgets[rng.Intn(s)][v]++
			}
			for si := 0; si < s; si++ {
				if budgets[si][v] > 0 {
					planners[si].loads[v] = rng.Intn(budgets[si][v] + 1)
				}
			}
		}
		moved := renewLeases(in, budgets, planners, trial, make([]int, s))
		if moved < 0 {
			t.Fatalf("trial %d: negative moved-seat count %d", trial, moved)
		}
		for v := 0; v < in.NumEvents(); v++ {
			sum := 0
			for si := 0; si < s; si++ {
				if budgets[si][v] < planners[si].loads[v] {
					t.Fatalf("trial %d: shard %d event %d: renewed budget %d below load %d",
						trial, si, v, budgets[si][v], planners[si].loads[v])
				}
				sum += budgets[si][v]
			}
			if sum != in.Events[v].Capacity {
				t.Fatalf("trial %d: event %d leases sum to %d, capacity %d", trial, v, sum, in.Events[v].Capacity)
			}
		}
	}
}

// TestRenewPoliciesInvariant extends the renewal white-box to the demand and
// LP policies: whatever the split rule, renewal must restore
// Σ_s budget[s][v] = cv exactly and never revoke a consumed seat.
func TestRenewPoliciesInvariant(t *testing.T) {
	in := testInstance(t, 37, 120, 15)
	rng := xrand.New(2)
	const s = 4
	for _, pol := range []LeasePolicy{LeaseDemand, LeaseLP} {
		for trial := 0; trial < 20; trial++ {
			budgets := make([][]int, s)
			planners := make([]shardPlanner, s)
			for si := 0; si < s; si++ {
				budgets[si] = make([]int, in.NumEvents())
				planners[si] = shardPlanner{loads: make([]int, in.NumEvents())}
			}
			for v := 0; v < in.NumEvents(); v++ {
				cv := in.Events[v].Capacity
				for k := 0; k < cv; k++ {
					budgets[rng.Intn(s)][v]++
				}
				for si := 0; si < s; si++ {
					if budgets[si][v] > 0 {
						planners[si].loads[v] = rng.Intn(budgets[si][v] + 1)
					}
				}
			}
			var next []int
			for u := 0; u < in.NumUsers(); u++ {
				if rng.Bool(0.3) {
					next = append(next, u)
				}
			}
			r := newLeaseRenewer(in, budgets, planners, Options{Shards: s, Lease: pol, Seed: 7})
			moved := r.renew(trial+1, next)
			r.close()
			if moved < 0 {
				t.Fatalf("%v trial %d: negative moved-seat count %d", pol, trial, moved)
			}
			for v := 0; v < in.NumEvents(); v++ {
				sum := 0
				for si := 0; si < s; si++ {
					if budgets[si][v] < planners[si].loads[v] {
						t.Fatalf("%v trial %d: shard %d event %d: budget %d below load %d",
							pol, trial, si, v, budgets[si][v], planners[si].loads[v])
					}
					sum += budgets[si][v]
				}
				if sum != in.Events[v].Capacity {
					t.Fatalf("%v trial %d: event %d leases sum to %d, capacity %d",
						pol, trial, v, sum, in.Events[v].Capacity)
				}
			}
		}
	}
}

// TestServeRejectsBadOrders mirrors online.Run's arrival validation.
func TestServeRejectsBadOrders(t *testing.T) {
	in := testInstance(t, 19, 20, 8)
	if _, err := Serve(in, []int{0, 0}, Options{Shards: 2}); err == nil {
		t.Error("duplicate arrival accepted")
	}
	if _, err := Serve(in, []int{in.NumUsers()}, Options{Shards: 2}); err == nil {
		t.Error("out-of-range arrival accepted")
	}
	if _, err := Serve(in, []int{-1}, Options{Shards: 2}); err == nil {
		t.Error("negative arrival accepted")
	}
	res, err := Serve(in, nil, Options{Shards: 2})
	if err != nil || res.Arrangement.Size() != 0 {
		t.Errorf("empty order: res=%v err=%v", res, err)
	}
	if _, err := Serve(in, []int{0}, Options{Shards: 2, Planner: PlannerKind(99)}); err == nil {
		t.Error("unknown planner kind accepted")
	}
}

// TestShardOfIsPureFunction pins the partition contract: shard membership
// depends only on (seed, user, shards), is always in range, and spreads
// users across all shards.
func TestShardOfIsPureFunction(t *testing.T) {
	const s = 8
	counts := make([]int, s)
	for u := 0; u < 4096; u++ {
		got := ShardOf(33, u, s)
		if got < 0 || got >= s {
			t.Fatalf("ShardOf(33, %d, %d) = %d out of range", u, s, got)
		}
		if again := ShardOf(33, u, s); again != got {
			t.Fatalf("ShardOf not stable for user %d: %d then %d", u, got, again)
		}
		counts[got]++
	}
	for si, n := range counts {
		if n < 4096/s/2 || n > 4096/s*2 {
			t.Errorf("shard %d holds %d of 4096 users — partition badly skewed", si, n)
		}
	}
	if ShardOf(1, 5, 1) != 0 || ShardOf(1, 5, 0) != 0 {
		t.Error("degenerate shard counts must map to shard 0")
	}
}

// TestZeroCapacityEventsNeverAssigned runs the sharded planner over an
// instance with zero-capacity events mixed in: leases of zero capacity are
// zero everywhere, so no shard may grant a seat.
func TestZeroCapacityEventsNeverAssigned(t *testing.T) {
	in := testInstance(t, 23, 60, 10)
	for v := 0; v < in.NumEvents(); v += 2 {
		in.Events[v].Capacity = 0
	}
	order := arrivalOrder(2, in.NumUsers())
	for _, s := range []int{1, 3} {
		res, err := Serve(in, order, Options{Shards: s, Batch: 8})
		if err != nil {
			t.Fatal(err)
		}
		modeltest.RequireFeasible(t, fmt.Sprintf("S=%d", s), in, res.Arrangement)
		load := res.Arrangement.Loads(in.NumEvents())
		for v := 0; v < in.NumEvents(); v += 2 {
			if load[v] != 0 {
				t.Errorf("S=%d: zero-capacity event %d has %d attendees", s, v, load[v])
			}
		}
	}
}
