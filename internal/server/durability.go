package server

import (
	"encoding/json"
	"errors"
	"fmt"
	"log"
	"net/http"
	"os"
	"time"

	"github.com/ebsn/igepa/internal/shard"
	"github.com/ebsn/igepa/internal/wal"
)

// checkpointVersion guards the checkpoint file format.
const checkpointVersion = 1

// bidOverride records one in-place bid replacement so a warm boot can
// reapply it before restoring the engine (bids shape the weight table the
// restored decisions were made under).
type bidOverride struct {
	User int   `json:"user"`
	Bids []int `json:"bids"`
}

// checkpointFile is the atomic checkpoint payload: engine state, the user
// lifecycle array, the bid overrides, and the WAL offset the snapshot is
// consistent with — boot is load this, then replay the WAL suffix from
// WALOffset.
type checkpointFile struct {
	Version   int                `json:"version"`
	WALOffset int64              `json:"wal_offset"`
	Engine    *shard.EngineState `json:"engine"`
	States    []uint8            `json:"states"`
	Overrides []bidOverride      `json:"overrides,omitempty"`
}

// leaseError unwraps a *shard.LeaseError — the one engine error the live
// path counts and serves through, so replay must too.
func leaseError(err error) (*shard.LeaseError, bool) {
	var le *shard.LeaseError
	if errors.As(err, &le) {
		return le, true
	}
	return nil, false
}

// walWriter returns the durability log, nil when none is open (no
// Config.WALPath, or a follower before Promote).
func (srv *Server) walWriter() *wal.Writer { return srv.wal.Load() }

// walAppend frames one op into the log. Failures are counted and sticky:
// the server stops accepting writes (503) rather than acking decisions it
// cannot make durable.
func (srv *Server) walAppend(op wal.Op) {
	w := srv.walWriter()
	if w == nil {
		return
	}
	if _, err := w.Append(op); err != nil {
		srv.noteWALError(err)
	}
}

// walCommit flushes (and fsyncs, per policy) everything appended so far.
// The serving loops call it after a micro-batch's decisions and before the
// replies, so an acked decision is at least flushed — and durable under
// SyncAlways.
func (srv *Server) walCommit() {
	w := srv.walWriter()
	if w == nil {
		return
	}
	if err := w.Commit(); err != nil {
		srv.noteWALError(err)
	}
}

func (srv *Server) noteWALError(err error) {
	if srv.m.walErrors.Add(1) == 1 {
		log.Printf("server: WAL failed, rejecting writes: %v", err)
	}
}

// walBroken reports a sticky WAL failure: durability can no longer be
// promised, so the write path answers 503 until the operator intervenes.
func (srv *Server) walBroken() bool {
	return srv.walWriter() != nil && srv.m.walErrors.Load() > 0
}

// nowMillis stamps WAL records; purely informational (replay ignores it).
func nowMillis() int64 { return time.Now().UnixMilli() }

// bootDurable is the leader's warm-boot path: load the checkpoint (if any),
// replay the WAL suffix through the engine, truncate any torn/corrupt tail,
// and open the log for appending. Called from New before the serving loops
// start, so no locking is needed.
func (srv *Server) bootDurable() error {
	startOff, err := srv.restoreCheckpoint()
	if err != nil {
		return err
	}
	w, info, err := wal.Open(srv.cfg.WALPath, startOff, srv.walOptions(), srv.applyRecovered)
	if err != nil {
		return fmt.Errorf("server: WAL recovery: %w", err)
	}
	srv.wal.Store(w)
	srv.recovered = info
	if info.TailErr != nil {
		log.Printf("server: WAL tail truncated at offset %d (%d bytes dropped): %v",
			info.ValidSize, info.Dropped, info.TailErr)
	}
	if info.Records > 0 || startOff > 0 {
		log.Printf("server: warm boot: checkpoint at offset %d + %d WAL records replayed", startOff, info.Records)
	}
	srv.finishRecovery()
	return nil
}

func (srv *Server) walOptions() wal.Options {
	o := wal.Options{Sync: srv.cfg.WALSync, SyncInterval: srv.cfg.WALSyncInterval}
	if srv.obs != nil {
		// The hook runs under the writer's mutex; a histogram observation
		// is a few atomic ops, well inside that budget.
		o.ObserveSync = srv.obs.observeFsync
	}
	return o
}

// restoreCheckpoint loads and installs the checkpoint, returning the WAL
// offset to replay from (0 when there is no checkpoint yet).
func (srv *Server) restoreCheckpoint() (int64, error) {
	if srv.cfg.CheckpointPath == "" {
		return 0, nil
	}
	raw, err := os.ReadFile(srv.cfg.CheckpointPath)
	if os.IsNotExist(err) {
		return 0, nil
	}
	if err != nil {
		return 0, fmt.Errorf("server: reading checkpoint: %w", err)
	}
	var cp checkpointFile
	if err := json.Unmarshal(raw, &cp); err != nil {
		return 0, fmt.Errorf("server: decoding checkpoint %s: %w", srv.cfg.CheckpointPath, err)
	}
	if cp.Version != checkpointVersion {
		return 0, fmt.Errorf("server: checkpoint version %d, want %d", cp.Version, checkpointVersion)
	}
	if len(cp.States) != srv.in.NumUsers() {
		return 0, fmt.Errorf("server: checkpoint covers %d users, instance has %d", len(cp.States), srv.in.NumUsers())
	}
	// Bid overrides first: the restored decisions were made under these
	// weights, and the engine validates sets against current bids downstream.
	for _, ov := range cp.Overrides {
		if ov.User < 0 || ov.User >= srv.in.NumUsers() {
			return 0, fmt.Errorf("server: checkpoint bid override for unknown user %d", ov.User)
		}
		srv.eng.SetBids(ov.User, ov.Bids)
		srv.overrides[ov.User] = append([]int(nil), ov.Bids...)
	}
	if err := srv.eng.RestoreState(cp.Engine); err != nil {
		return 0, fmt.Errorf("server: restoring engine checkpoint: %w", err)
	}
	copy(srv.state, cp.States)
	// The live-bound shadow must lose every decided user (even empty
	// grants): the States array is the decided-set record.
	if srv.eng.BoundEnabled() {
		for u, st := range cp.States {
			if st == stateDecided {
				srv.eng.NoteRestored(u, cp.Engine.Sets[u])
			}
		}
	}
	return cp.WALOffset, nil
}

// applyRecovered replays one WAL record during boot: decode, apply to the
// engine, and advance the user lifecycle the way the live path would have.
func (srv *Server) applyRecovered(payload []byte) error {
	op, err := wal.DecodeOp(payload)
	if err != nil {
		return err
	}
	return srv.applyOp(op)
}

// applyOp applies one decoded op to the engine and the server-level state.
// Shared by boot-time recovery (single-threaded) and the follower's tailer
// (which holds every shard lock around it; stateMu still matters there
// because the read handlers are already live).
func (srv *Server) applyOp(op wal.Op) error {
	if err := srv.eng.Apply(op); err != nil {
		if _, ok := leaseError(err); ok {
			// the live path counts lease violations and serves on; replay
			// must reproduce, not diverge
			srv.m.leaseErrors.Add(1)
			return nil
		}
		return err
	}
	srv.stateMu.Lock()
	switch op.Kind {
	case wal.OpBid:
		srv.state[op.User] = stateDecided
	case wal.OpBatch:
		for _, u := range op.Users {
			srv.state[u] = stateDecided
		}
	case wal.OpCancel:
		srv.state[op.User] = stateCancelled
	case wal.OpSetBids:
		srv.overrides[op.User] = append([]int(nil), op.Bids...)
	case wal.OpExport:
		// Exported users left this shard; their lifecycle restarts at the
		// adopting shard (carried in its OpAdopt record).
		for _, u := range op.Users {
			srv.state[u] = stateNone
		}
	case wal.OpAdopt:
		for i, u := range op.Users {
			if op.States != nil {
				srv.state[u] = op.States[i]
			} else if len(op.Sets[i]) > 0 {
				srv.state[u] = stateDecided
			}
		}
	}
	srv.stateMu.Unlock()
	return nil
}

// finishRecovery folds the recovered decisions into the live-bound shadow
// (one re-solve instead of one per replayed batch).
func (srv *Server) finishRecovery() {
	if srv.eng.BoundEnabled() {
		srv.eng.UpdateBound()
	}
}

// Checkpoint atomically writes the serving state to Config.CheckpointPath.
// It quiesces the engine (all shard locks), fsyncs the WAL so the recorded
// offset is durable, snapshots, and replaces the checkpoint file via
// write-temp + rename — a crash mid-checkpoint leaves the previous one
// intact. Queued-but-undecided requests are simply not in the snapshot;
// their decisions will be WAL records past the recorded offset.
func (srv *Server) Checkpoint() error {
	if srv.cfg.CheckpointPath == "" {
		return fmt.Errorf("server: no checkpoint path configured")
	}
	if srv.follow.Load() {
		return fmt.Errorf("server: follower does not checkpoint")
	}
	srv.lockAll()
	defer srv.unlockAll()
	var off int64
	if w := srv.walWriter(); w != nil {
		if err := w.Sync(); err != nil {
			return fmt.Errorf("server: checkpoint WAL sync: %w", err)
		}
		off = w.Offset()
	}
	cp := checkpointFile{
		Version:   checkpointVersion,
		WALOffset: off,
		Engine:    srv.eng.CheckpointState(),
	}
	srv.stateMu.Lock()
	cp.States = append([]uint8(nil), srv.state...)
	srv.stateMu.Unlock()
	for u, bids := range srv.overrides {
		cp.Overrides = append(cp.Overrides, bidOverride{User: u, Bids: bids})
	}
	raw, err := json.Marshal(&cp)
	if err != nil {
		return err
	}
	if err := wal.WriteFileAtomic(srv.cfg.CheckpointPath, raw); err != nil {
		return fmt.Errorf("server: writing checkpoint: %w", err)
	}
	return nil
}

// handleCheckpoint is POST /admin/checkpoint: drain, then snapshot.
func (srv *Server) handleCheckpoint(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		httpError(w, http.StatusMethodNotAllowed, "POST only")
		return
	}
	if srv.cfg.CheckpointPath == "" {
		httpError(w, http.StatusConflict, "no checkpoint path configured")
		return
	}
	if srv.follow.Load() {
		httpError(w, http.StatusConflict, "follower does not checkpoint")
		return
	}
	if !srv.Drain(10 * time.Second) {
		httpError(w, http.StatusServiceUnavailable, "drain timed out")
		return
	}
	if err := srv.Checkpoint(); err != nil {
		httpError(w, http.StatusInternalServerError, err.Error())
		return
	}
	writeJSON(w, http.StatusOK, struct {
		Checkpoint string `json:"checkpoint"`
		WALOffset  int64  `json:"wal_offset"`
	}{Checkpoint: srv.cfg.CheckpointPath, WALOffset: srv.walOffset()})
}

func (srv *Server) walOffset() int64 {
	w := srv.walWriter()
	if w == nil {
		return 0
	}
	return w.Offset()
}

// WALStats is the /statsz view of the durability layer.
type WALStats struct {
	Path      string      `json:"path"`
	Sync      string      `json:"sync"`
	Offset    int64       `json:"offset"`
	Appends   int64       `json:"appends"`
	Bytes     int64       `json:"bytes"`
	Syncs     int64       `json:"syncs"`
	Errors    int64       `json:"errors"`
	Append    Percentiles `json:"append"` // commit latency amortized per decision
	Recovered int         `json:"recovered_records"`
	Truncated int64       `json:"truncated_bytes"`
}

func (srv *Server) walStats() *WALStats {
	w := srv.walWriter()
	if w == nil {
		return nil
	}
	st := w.Stats()
	srv.stateMu.Lock()
	rec := srv.recovered
	srv.stateMu.Unlock()
	return &WALStats{
		Path:      srv.cfg.WALPath,
		Sync:      srv.cfg.WALSync.String(),
		Offset:    w.Offset(),
		Appends:   st.Appends,
		Bytes:     st.Bytes,
		Syncs:     st.Syncs,
		Errors:    srv.m.walErrors.Load(),
		Append:    srv.m.walAppend.snapshot(),
		Recovered: rec.Records,
		Truncated: rec.Dropped,
	}
}
