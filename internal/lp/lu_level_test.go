package lp

import (
	"math"
	"runtime"
	"testing"

	"github.com/ebsn/igepa/internal/xrand"
)

// forceLevelGrain shrinks the level-solve chunk grain so tiny bases split
// into many chunks per level, exercising the pooled path where the default
// grain would keep everything inline. Restored via t.Cleanup.
func forceLevelGrain(t *testing.T, grain int) {
	t.Helper()
	old := luLevelGrain
	luLevelGrain = grain
	t.Cleanup(func() { luLevelGrain = old })
}

// bitEq fails unless got and want are bitwise identical (NaN-free data, so
// plain == is the right comparison — the level solves promise bit-identity,
// not just small error).
func bitEq(t *testing.T, label string, got, want []float64) {
	t.Helper()
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("%s: index %d: got %v (bits %x) want %v (bits %x)",
				label, i, got[i], math.Float64bits(got[i]), want[i], math.Float64bits(want[i]))
		}
	}
}

// checkLevelAgainstSequential factorizes cols once and verifies that the
// level-scheduled solves reproduce the sequential solves bit-for-bit on the
// given right-hand sides, for several worker counts, and that the shared
// work vector comes back zeroed.
func checkLevelAgainstSequential(t *testing.T, m int, cols []Column, rhsRows []int32, rhsVals []float64, c []float64) {
	t.Helper()
	f, err := luFactorize(m, cols)
	if err != nil {
		t.Fatalf("factorize: %v", err)
	}
	work := make([]float64, m)
	wantB := make([]float64, m)
	f.solveB(rhsRows, rhsVals, wantB, work)
	wantBT := make([]float64, m)
	f.solveBT(c, wantBT, work)
	for _, workers := range []int{1, 2, 4, 7, runtime.GOMAXPROCS(0)} {
		gotB := make([]float64, m)
		f.solveBLevel(rhsRows, rhsVals, gotB, work, workers)
		bitEq(t, "solveBLevel", gotB, wantB)
		gotBT := make([]float64, m)
		f.solveBTLevel(c, gotBT, work, workers)
		bitEq(t, "solveBTLevel", gotBT, wantBT)
		for i, v := range work {
			if v != 0 {
				t.Fatalf("workers=%d: work vector not restored to zero at %d: %v", workers, i, v)
			}
		}
	}
}

func TestLULevelSolveMatchesSequentialRandom(t *testing.T) {
	forceLevelGrain(t, 1)
	rng := xrand.New(4242)
	for trial := 0; trial < 40; trial++ {
		m := 2 + rng.Intn(80)
		cols := randomBasisLike(rng, m)
		if _, err := luFactorize(m, cols); err != nil {
			continue // rare singular draw; skip
		}
		// dense RHS (the recomputeXB/refactorize shape) …
		rows := make([]int32, m)
		vals := make([]float64, m)
		c := make([]float64, m)
		for i := 0; i < m; i++ {
			rows[i] = int32(i)
			vals[i] = rng.Float64()*4 - 2
			c[i] = rng.Float64()*4 - 2
		}
		checkLevelAgainstSequential(t, m, cols, rows, vals, c)
		// … and a sparse RHS with duplicate rows (the ftran shape; the
		// scatter must accumulate duplicates in input order on both paths).
		k := 1 + rng.Intn(4)
		sRows := make([]int32, k+1)
		sVals := make([]float64, k+1)
		for i := 0; i < k; i++ {
			sRows[i] = int32(rng.Intn(m))
			sVals[i] = rng.Float64()*2 - 1
		}
		sRows[k] = sRows[0] // deliberate duplicate
		sVals[k] = 0.25
		checkLevelAgainstSequential(t, m, cols, sRows, sVals, c)
	}
}

// TestLULevelSolveDegenerateSchedules pins the schedule's extreme shapes:
// one wide level (identity: every step is independent), m singleton levels
// (a dense chain: every step depends on the previous), and fully dense
// columns (maximum fill: the factors carry ~m²/2 nonzeros).
func TestLULevelSolveDegenerateSchedules(t *testing.T) {
	forceLevelGrain(t, 1)
	rng := xrand.New(7)

	t.Run("identity_one_wide_level", func(t *testing.T) {
		m := 37
		cols := make([]Column, m)
		for j := range cols {
			cols[j] = Column{Rows: []int{j}, Vals: []float64{1 + rng.Float64()}}
		}
		rows, vals, c := denseRHS(rng, m)
		checkLevelAgainstSequential(t, m, cols, rows, vals, c)
		f, _ := luFactorize(m, cols)
		f.buildSchedule()
		if levels := len(f.levLPtr) - 1; levels != 1 {
			t.Fatalf("identity L schedule has %d levels, want 1", levels)
		}
	})

	t.Run("chain_singleton_levels", func(t *testing.T) {
		// lower bidiagonal: column j covers rows j and j+1 → L is a chain,
		// every forward level has exactly one step.
		m := 33
		cols := make([]Column, m)
		for j := 0; j < m; j++ {
			if j == m-1 {
				cols[j] = Column{Rows: []int{j}, Vals: []float64{2}}
				continue
			}
			cols[j] = Column{Rows: []int{j, j + 1}, Vals: []float64{2, -1}}
		}
		rows, vals, c := denseRHS(rng, m)
		checkLevelAgainstSequential(t, m, cols, rows, vals, c)
		// The fill-reducing column order eliminates the trailing singleton
		// first, so the chain factors into m−1 dependent steps: the schedule
		// must be deeply serial (≥ m−1 levels) with near-singleton widths.
		f, _ := luFactorize(m, cols)
		f.buildSchedule()
		levels := len(f.levLPtr) - 1
		if levels < m-1 {
			t.Fatalf("chain L schedule has %d levels, want ≥ %d (serial chain)", levels, m-1)
		}
		for l := 0; l < levels; l++ {
			if w := f.levLPtr[l+1] - f.levLPtr[l]; w > 2 {
				t.Fatalf("chain level %d has width %d, want ≤ 2", l, w)
			}
		}
	})

	t.Run("fully_dense_columns", func(t *testing.T) {
		m := 24
		cols := make([]Column, m)
		for j := range cols {
			col := Column{Rows: make([]int, m), Vals: make([]float64, m)}
			for i := 0; i < m; i++ {
				col.Rows[i] = i
				col.Vals[i] = rng.Float64()*2 - 1
				if i == j {
					col.Vals[i] += float64(m) // diagonal dominance: nonsingular
				}
			}
			cols[j] = col
		}
		rows, vals, c := denseRHS(rng, m)
		checkLevelAgainstSequential(t, m, cols, rows, vals, c)
	})

	t.Run("m_equals_1", func(t *testing.T) {
		cols := []Column{{Rows: []int{0}, Vals: []float64{3}}}
		checkLevelAgainstSequential(t, 1, cols, []int32{0}, []float64{5}, []float64{2})
	})
}

func denseRHS(rng *xrand.RNG, m int) ([]int32, []float64, []float64) {
	rows := make([]int32, m)
	vals := make([]float64, m)
	c := make([]float64, m)
	for i := 0; i < m; i++ {
		rows[i] = int32(i)
		vals[i] = rng.Float64()*4 - 2
		c[i] = rng.Float64()*4 - 2
	}
	return rows, vals, c
}

// TestLUScheduleRebuiltAfterRefactorize guards the staleness contract:
// factorize invalidates the lazily built schedule, so a level solve after an
// in-place refactorization must match the fresh sequential solve, not the
// old factors'.
func TestLUScheduleRebuiltAfterRefactorize(t *testing.T) {
	forceLevelGrain(t, 1)
	rng := xrand.New(11)
	m := 40
	colsA := randomBasisLike(rng, m)
	f, err := luFactorize(m, colsA)
	if err != nil {
		t.Fatalf("factorize A: %v", err)
	}
	rows, vals, c := denseRHS(rng, m)
	work := make([]float64, m)
	out := make([]float64, m)
	f.solveBLevel(rows, vals, out, work, 4) // builds the schedule for A

	// refactorize the same struct with a different matrix
	var colsB []Column
	for {
		colsB = randomBasisLike(rng, m)
		sp := make([]spCol, m)
		for j := range colsB {
			r32 := make([]int32, len(colsB[j].Rows))
			for k, r := range colsB[j].Rows {
				r32[k] = int32(r)
			}
			sp[j] = spCol{rows: r32, vals: colsB[j].Vals}
		}
		if f.factorize(m, sp) == nil {
			break
		}
	}
	want := make([]float64, m)
	f.solveB(rows, vals, want, work)
	got := make([]float64, m)
	f.solveBLevel(rows, vals, got, work, 4)
	bitEq(t, "post-refactorize solveBLevel", got, want)

	wantT := make([]float64, m)
	f.solveBT(c, wantT, work)
	gotT := make([]float64, m)
	f.solveBTLevel(c, gotT, work, 4)
	bitEq(t, "post-refactorize solveBTLevel", gotT, wantT)
}

// BenchmarkLULevelSolve compares the sequential and level-scheduled
// triangular solve pairs on a basis-like matrix with a dense RHS — the
// BTRAN/recomputeXB shape that dominates the solver's solve time share.
func BenchmarkLULevelSolve(b *testing.B) {
	rng := xrand.New(123)
	m := 4096
	var f *luFactors
	var cols []Column
	for {
		cols = randomBasisLike(rng, m)
		var err error
		if f, err = luFactorize(m, cols); err == nil {
			break
		}
	}
	rows := make([]int32, m)
	vals := make([]float64, m)
	c := make([]float64, m)
	for i := 0; i < m; i++ {
		rows[i] = int32(i)
		vals[i] = rng.Float64()*4 - 2
		c[i] = rng.Float64()*4 - 2
	}
	work := make([]float64, m)
	out := make([]float64, m)
	b.Run("sequential", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			f.solveB(rows, vals, out, work)
			f.solveBT(c, out, work)
		}
	})
	b.Run("level", func(b *testing.B) {
		workers := runtime.GOMAXPROCS(0)
		for i := 0; i < b.N; i++ {
			f.solveBLevel(rows, vals, out, work, workers)
			f.solveBTLevel(c, out, work, workers)
		}
	})
}
