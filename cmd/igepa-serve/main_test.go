package main

import (
	"os"
	"testing"
)

func TestRunSmoke(t *testing.T) {
	null, err := os.OpenFile(os.DevNull, os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer null.Close()
	cfg := config{
		workload: "synthetic", events: 20, users: 80, seed: 1,
		shards: []int{1, 2, 4}, planner: "greedy", lpBound: true,
	}
	if err := run(null, cfg); err != nil {
		t.Fatal(err)
	}
	cfg.workload = "meetup"
	cfg.planner = "threshold"
	cfg.lpBound = false
	if err := run(null, cfg); err != nil {
		t.Fatal(err)
	}
}

func TestParseShards(t *testing.T) {
	got, err := parseShards("1, 2,8")
	if err != nil || len(got) != 3 || got[0] != 1 || got[1] != 2 || got[2] != 8 {
		t.Fatalf("parseShards: got %v, %v", got, err)
	}
	for _, bad := range []string{"", "0", "x", "1,,2", "-3"} {
		if _, err := parseShards(bad); err == nil {
			t.Errorf("parseShards(%q) accepted", bad)
		}
	}
}

func TestBadConfigRejected(t *testing.T) {
	null, _ := os.OpenFile(os.DevNull, os.O_WRONLY, 0)
	defer null.Close()
	if err := run(null, config{workload: "nope", shards: []int{1}}); err == nil {
		t.Error("unknown workload accepted")
	}
	if err := run(null, config{workload: "synthetic", users: 10, events: 5, planner: "nope", shards: []int{1}}); err == nil {
		t.Error("unknown planner accepted")
	}
}
