package model

import (
	"slices"
	"sort"
)

// WeightCache is a CSR-style cache of the pair weights w(u,v) over each
// user's bid list: row u holds one weight per entry of Users[u].Bids, in bid
// order. Every stage of the arrangement pipeline — admissible-set
// enumeration, LP assembly, repair, greedy fill, the baselines and the
// utility evaluation — scores the same (user, bid) pairs, so computing
// β·SI(lv,lu) + (1−β)·D(G,u) once per pair and sharing the table removes the
// per-call interest-function churn from every hot path.
//
// Rows are views into one flat arena, so a freshly built cache is a handful
// of allocations; the per-row indirection is what lets Invalidate(users...)
// patch a single user's weights in place after a bid delta instead of
// discarding the whole table.
//
// A cache is never mutated by concurrent readers (the parallel enumeration
// and sampling stages rely on this). The only writers are buildWeightCache
// and the delta patch in Instance.Invalidate, both of which run on the
// caller's single mutation thread before any parallel stage starts.
type WeightCache struct {
	in   *Instance
	rows [][]float64 // rows[u] is aligned with Users[u].Bids
}

// buildWeightCache computes the full table in one pass.
func buildWeightCache(in *Instance) *WeightCache {
	nu := len(in.Users)
	total := 0
	for u := range in.Users {
		total += len(in.Users[u].Bids)
	}
	w := make([]float64, total)
	rows := make([][]float64, nu)
	off := 0
	c := &WeightCache{in: in, rows: rows}
	for u := range in.Users {
		rows[u] = w[off : off+len(in.Users[u].Bids) : off+len(in.Users[u].Bids)]
		off += len(in.Users[u].Bids)
		c.fillRow(u)
	}
	return c
}

// fillRow computes user u's weights into the (already sized) row. The
// arithmetic is identical to Instance.Weight so cached and direct evaluation
// agree bit-for-bit.
func (c *WeightCache) fillRow(u int) {
	in := c.in
	base := 1 - in.Beta
	dpi := base * in.DPI(u)
	row := c.rows[u]
	for i, v := range in.Users[u].Bids {
		row[i] = in.Beta*in.Interest(u, v) + dpi
	}
}

// patchRow re-derives user u's row after their bids changed, reusing the
// existing storage when the bid count is unchanged.
func (c *WeightCache) patchRow(u int) {
	if n := len(c.in.Users[u].Bids); n != len(c.rows[u]) {
		c.rows[u] = make([]float64, n)
	}
	c.fillRow(u)
}

// At returns w(u, Users[u].Bids[i]) — the aligned, search-free accessor for
// callers already iterating a bid list by position.
func (c *WeightCache) At(u, i int) float64 {
	return c.rows[u][i]
}

// Row returns user u's cached weights, aligned with Users[u].Bids. The
// returned slice is shared; callers must not modify it.
func (c *WeightCache) Row(u int) []float64 {
	return c.rows[u]
}

// Of returns w(u,v) by binary search over u's sorted bid list. Pairs outside
// the bid list (which no feasible arrangement contains) fall back to direct
// evaluation.
func (c *WeightCache) Of(u, v int) float64 {
	bids := c.in.Users[u].Bids
	i := sort.SearchInts(bids, v)
	if i >= len(bids) || bids[i] != v {
		return c.in.Weight(u, v)
	}
	return c.rows[u][i]
}

// Weights returns the instance's weight cache, building it on first use.
// The cache is invalidated by RebuildBidders and Invalidate; callers that
// mutate Bids, Degree, Beta or the interest function must call one of them
// before the next read. The first call must not race with other accessors;
// once built, concurrent reads are safe.
func (in *Instance) Weights() *WeightCache {
	if in.weights == nil {
		in.weights = buildWeightCache(in)
	}
	return in.weights
}

// Invalidate re-syncs the instance's derived caches (bidder lists and pair
// weights) with the current Events/Users/Beta/Interest. Call it after
// mutating any of those.
//
// With no arguments it drops both caches wholesale, to be rebuilt lazily on
// next use — required after global changes (Beta, Interest, Degree, user
// count). With user arguments it patches in place instead: only the named
// users' weight rows are recomputed and only their bidder-list entries move,
// so a serving-path bid delta costs O(|Δ| · bids) rather than a
// full-instance rebuild. The delta form requires that only the named users'
// Bids/Capacity changed since the last sync; naming a superset is safe,
// omitting a changed user leaves stale cache entries.
func (in *Instance) Invalidate(users ...int) {
	if len(users) == 0 {
		in.bidders = nil
		in.prevBids = nil
		in.weights = nil
		return
	}
	for _, u := range users {
		if in.bidders != nil {
			in.patchBidders(u)
		}
		if in.weights != nil {
			in.weights.patchRow(u)
		}
	}
}

// patchBidders replays user u's bid changes onto the per-event bidder lists
// by diffing against the snapshot taken at the last full rebuild (or last
// patch). Both lists are sorted, so the diff is a single merge pass and each
// membership edit is a binary search plus a small copy.
func (in *Instance) patchBidders(u int) {
	if in.prevBids == nil {
		// No snapshot to diff against: fall back to a lazy full rebuild.
		in.bidders = nil
		return
	}
	old, cur := in.prevBids[u], in.Users[u].Bids
	i, j := 0, 0
	for i < len(old) || j < len(cur) {
		switch {
		case j >= len(cur) || (i < len(old) && old[i] < cur[j]):
			in.removeBidder(old[i], u)
			i++
		case i >= len(old) || cur[j] < old[i]:
			in.insertBidder(cur[j], u)
			j++
		default:
			i++
			j++
		}
	}
	in.prevBids[u] = append(in.prevBids[u][:0:0], cur...)
}

// removeBidder deletes user u from event v's sorted bidder list.
func (in *Instance) removeBidder(v, u int) {
	lst := in.bidders[v]
	if i := sort.SearchInts(lst, u); i < len(lst) && lst[i] == u {
		in.bidders[v] = slices.Delete(lst, i, i+1)
	}
}

// insertBidder adds user u to event v's sorted bidder list.
func (in *Instance) insertBidder(v, u int) {
	lst := in.bidders[v]
	i := sort.SearchInts(lst, u)
	if i < len(lst) && lst[i] == u {
		return
	}
	in.bidders[v] = slices.Insert(lst, i, u)
}
