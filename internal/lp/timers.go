package lp

import "time"

// PhaseTimers accumulates where a solve spends its time, sampled at the
// kernel leaves so the phases are disjoint: Ftran covers the forward solves
// (B⁻¹a, including the eta sweep), Btran the transposed solves (duals and
// pivot rows, including btranUnit), Pricing every entering/leaving scan
// (Devex, partial Dantzig, Bland and the dual-repair ratio test), Update the
// Devex reference-weight column pass, and Factor the LU (re)factorizations
// plus their xB refresh. Pivots counts primal pivots, RepairPivots the dual
// pivots of warm-start repair.
//
// Attach one via Revised.Timers; it keeps accumulating across solves until
// Reset. Not synchronized — drive one solve at a time per struct. A nil
// *PhaseTimers is valid everywhere and costs one branch per kernel call.
type PhaseTimers struct {
	Ftran, Btran, Pricing, Update, Factor time.Duration
	Pivots, RepairPivots                  int64

	// HypersparseFtran and HypersparseBtran count triangular solves served
	// by the symbolic-reach kernels (hypersparse.go) instead of the dense
	// sweeps — the coverage metric for the warm-resolve fast path.
	HypersparseFtran, HypersparseBtran int64
	// CandidateRefills counts pricing passes that exhausted their rotating
	// candidate window and had to widen back toward a full scan.
	CandidateRefills int64
	// BudgetExhausted counts dual-repair attempts that ran out of their
	// pivot budget; PartialWarmCutovers counts the keep-the-basis
	// refactorize-and-retry recoveries those (and stalls) triggered.
	BudgetExhausted, PartialWarmCutovers int64
}

// Reset zeroes all accumulators.
func (tm *PhaseTimers) Reset() {
	*tm = PhaseTimers{}
}

// Total returns the summed phase time (excluding untimed glue such as the
// ratio test and basis bookkeeping, which are O(m) per pivot and small).
func (tm *PhaseTimers) Total() time.Duration {
	return tm.Ftran + tm.Btran + tm.Pricing + tm.Update + tm.Factor
}

type phase int

const (
	phFtran phase = iota
	phBtran
	phPricing
	phUpdate
	phFactor
)

// tick returns a start timestamp when tm is non-nil, else the zero time —
// paired with PhaseTimers.add so untimed solves skip the clock read.
func tick(tm *PhaseTimers) (t0 time.Time) {
	if tm != nil {
		t0 = time.Now()
	}
	return
}

// add accumulates the time since t0 into phase p. Valid on a nil receiver.
func (tm *PhaseTimers) add(p phase, t0 time.Time) {
	if tm == nil {
		return
	}
	d := time.Since(t0)
	switch p {
	case phFtran:
		tm.Ftran += d
	case phBtran:
		tm.Btran += d
	case phPricing:
		tm.Pricing += d
	case phUpdate:
		tm.Update += d
	case phFactor:
		tm.Factor += d
	}
}

func (tm *PhaseTimers) pivotDone() {
	if tm != nil {
		tm.Pivots++
	}
}

func (tm *PhaseTimers) repairPivotDone() {
	if tm != nil {
		tm.RepairPivots++
	}
}

func (tm *PhaseTimers) hypersparseFtran() {
	if tm != nil {
		tm.HypersparseFtran++
	}
}

func (tm *PhaseTimers) hypersparseBtran() {
	if tm != nil {
		tm.HypersparseBtran++
	}
}

func (tm *PhaseTimers) candidateRefill() {
	if tm != nil {
		tm.CandidateRefills++
	}
}

func (tm *PhaseTimers) budgetExhausted() {
	if tm != nil {
		tm.BudgetExhausted++
	}
}

func (tm *PhaseTimers) partialWarmCutover() {
	if tm != nil {
		tm.PartialWarmCutovers++
	}
}
