// Package core implements the paper's primary contribution: the LP-packing
// approximation algorithm for the IGEPA problem (Algorithm 1, §III).
//
// The pipeline is:
//
//  1. enumerate admissible event sets Au for every user (internal/admissible);
//  2. build and solve the benchmark LP (1)-(4) over variables x_{u,S}
//     (internal/lp) — its optimum upper-bounds the integral optimum
//     (Lemma 1), so solver statistics expose it as a certificate;
//  3. for each user sample one admissible set S with probability α·x*_{u,S}
//     (no set with the remaining probability);
//  4. repair event-capacity violations by scanning sampled sets and dropping
//     events whose capacity is exceeded (lines 4-7 of Algorithm 1);
//  5. optionally greedy-fill leftover capacity (an extension, off by
//     default — the paper's algorithm ends after repair).
//
// With α = 1/2 the expected utility is at least OPT/4 (Theorem 2); the
// paper's experiments, and ours, run α = 1.
//
// The per-user stages (enumeration, sampling) run on a bounded worker pool
// (internal/par) with per-user RNG streams (xrand.NewStream), and the
// auto-selected LP solver prices on the same pool — results are
// bit-identical for every worker count and GOMAXPROCS value; see DESIGN.md.
package core

import (
	"fmt"

	"github.com/ebsn/igepa/internal/admissible"
	"github.com/ebsn/igepa/internal/conflict"
	"github.com/ebsn/igepa/internal/lp"
	"github.com/ebsn/igepa/internal/model"
	"github.com/ebsn/igepa/internal/par"
	"github.com/ebsn/igepa/internal/xrand"
)

// RepairOrder selects the scan order of the capacity-repair pass.
type RepairOrder int

const (
	// RepairByIndex scans users in index order — the paper's literal
	// "for u ∈ U" reading. The default.
	RepairByIndex RepairOrder = iota
	// RepairRandom scans users in a random order (ablation).
	RepairRandom
	// RepairByWeightAsc scans users by ascending sampled-set weight, so
	// low-value assignments yield capacity first (ablation).
	RepairByWeightAsc
)

// String implements fmt.Stringer.
func (r RepairOrder) String() string {
	switch r {
	case RepairByIndex:
		return "index"
	case RepairRandom:
		return "random"
	case RepairByWeightAsc:
		return "weight-asc"
	default:
		return fmt.Sprintf("RepairOrder(%d)", int(r))
	}
}

// Options configures LPPacking.
type Options struct {
	// Alpha is the sampling rate α ∈ (0,1]. The approximation guarantee
	// holds at 1/2; the paper's experiments use 1. 0 means 1.
	Alpha float64
	// Seed drives the sampling (and RepairRandom) randomness.
	Seed int64
	// Solver overrides the LP solving backend; nil selects automatically by
	// size.
	Solver lp.Backend
	// MaxSetsPerUser caps admissible-set enumeration per user
	// (see internal/admissible); 0 means the package default.
	MaxSetsPerUser int
	// Repair selects the repair scan order; the default matches the paper.
	Repair RepairOrder
	// GreedyFill, if set, adds a post-repair greedy fill-in of leftover
	// capacity (extension; not part of Algorithm 1).
	GreedyFill bool
	// Presolve, if set, shrinks the benchmark LP before the solve:
	// duplicate columns are folded onto their best representative
	// (lp.DeduplicateColumns) and never-binding rows plus forced-zero
	// columns removed (lp.Reduce), then the solution is mapped back to the
	// original column space. The reductions preserve the optimal objective
	// exactly, so the LP bound and the sampling distributions are
	// unchanged up to solver round-off and degenerate alternate optima.
	Presolve bool
	// Workers bounds the worker pool of the per-user stages (admissible-set
	// enumeration and rounding-sample draws) and is forwarded to the LP
	// solver's pricing pool when the solver is auto-selected; 0 means
	// GOMAXPROCS. Results are bit-identical for every value: per-user
	// randomness comes from xrand.NewStream(Seed, u), never from a shared
	// stream, and all parallel writes go to caller-owned per-user slots.
	Workers int
	// LP carries the revised-simplex tuning knobs (pricing rules, cadence,
	// parallel thresholds, phase timers) for every solver this package
	// creates: the auto-selected LPPacking backend and the incremental
	// Planner's persistent solver. The zero value keeps all defaults, and
	// LP.Workers == 0 inherits Options.Workers, so existing callers are
	// unaffected. Ignored when Options.Solver overrides the backend.
	LP lp.Revised
}

// lpConfig resolves the solver configuration: the LP knobs with the
// top-level Workers bound as the pool default.
func (opt *Options) lpConfig() lp.Revised {
	cfg := opt.LP
	if cfg.Workers == 0 {
		cfg.Workers = opt.Workers
	}
	return cfg
}

// Result carries the arrangement plus the diagnostics a downstream user
// needs to trust it.
type Result struct {
	Arrangement *model.Arrangement
	Utility     float64

	// LPObjective is the benchmark-LP optimum — a certified upper bound on
	// the optimal integral utility (Lemma 1). Utility/LPObjective therefore
	// lower-bounds the realized approximation factor.
	LPObjective  float64
	LPIterations int
	LPColumns    int

	TruncatedUsers int // users whose admissible sets were capped
	SampledPairs   int // event-user pairs before repair
	RepairDropped  int // pairs removed by the capacity repair
	FilledPairs    int // pairs added by GreedyFill (0 unless enabled)

	// Presolve diagnostics (all 0 unless Options.Presolve).
	PresolveFoldedCols  int // duplicate columns folded
	PresolveDroppedRows int // never-binding rows removed
	PresolveForcedCols  int // columns fixed to zero by empty rows
}

// LPPacking runs Algorithm 1 on the instance.
func LPPacking(in *model.Instance, opt Options) (*Result, error) {
	if err := in.Check(); err != nil {
		return nil, err
	}
	alpha := opt.Alpha
	if alpha == 0 {
		alpha = 1
	}
	if alpha < 0 || alpha > 1 {
		return nil, fmt.Errorf("core: alpha = %v outside (0,1]", alpha)
	}
	rng := xrand.New(opt.Seed)
	workers := par.Workers(opt.Workers)

	// Build the shared weight cache before any parallel stage so the lazy
	// initialization never races; every later stage reads it lock-free.
	in.Weights()

	conf := conflict.FromFunc(in.NumEvents(), in.Conflicts)
	sets, truncated := enumerateAll(in, conf, opt.MaxSetsPerUser, workers)
	prob, owner := BuildBenchmarkLP(in, sets)

	var sol *lp.Solution
	var pre presolveInfo
	var err error
	if opt.Presolve {
		sol, pre, err = solvePresolved(prob, opt)
	} else if opt.Solver == nil {
		sol, err = lp.SolveConfig(prob, opt.lpConfig())
	} else {
		sol, err = opt.Solver.Solve(prob)
	}
	if err != nil {
		return nil, fmt.Errorf("core: benchmark LP: %w", err)
	}
	res, err := finish(in, conf, sets, owner, prob, sol, alpha, opt, rng, truncated)
	if err != nil {
		return nil, err
	}
	res.PresolveFoldedCols = pre.foldedCols
	res.PresolveDroppedRows = pre.droppedRows
	res.PresolveForcedCols = pre.forcedCols
	return res, nil
}

// presolveInfo carries what the presolve chain removed.
type presolveInfo struct {
	foldedCols  int
	droppedRows int
	forcedCols  int
}

// solvePresolved runs the presolve chain — fold duplicate columns, remove
// never-binding rows and forced-zero columns, solve the reduced LP — and
// maps the solution back to the original column space: folded duplicates
// and forced columns get 0 (their mass sits on the representative, which
// belongs to the same user because every column crosses its user's row, so
// the per-user sampling distributions stay valid).
func solvePresolved(prob *lp.Problem, opt Options) (*lp.Solution, presolveInfo, error) {
	dedup, repr := lp.DeduplicateColumns(prob)
	ps, stats, err := lp.Reduce(dedup)
	if err != nil {
		return nil, presolveInfo{}, err
	}
	info := presolveInfo{
		foldedCols:  prob.NumCols() - dedup.NumCols(),
		droppedRows: stats.DroppedRows,
		forcedCols:  stats.ForcedColumns,
	}
	var sol *lp.Solution
	if opt.Solver == nil {
		sol, err = lp.SolveConfig(ps.Problem, opt.lpConfig())
	} else {
		sol, err = opt.Solver.Solve(ps.Problem)
	}
	if err != nil {
		return nil, info, err
	}
	sol = ps.Unreduce(sol) // dedup column space, original row space

	// Expand from the deduplicated column space to the original one.
	// DeduplicateColumns keeps the representatives (repr[j] == j) in
	// ascending order, so dedup column k is original column kept[k].
	x := make([]float64, prob.NumCols())
	k := 0
	for j, r := range repr {
		if r == j {
			x[j] = sol.X[k]
			k++
		}
	}
	return &lp.Solution{
		Status:     sol.Status,
		X:          x,
		Y:          sol.Y,
		Objective:  sol.Objective,
		Iterations: sol.Iterations,
	}, info, nil
}

// enumerateAll computes Au for every user on the bounded worker pool. It
// returns per-user admissible sets and the number of users whose enumeration
// was truncated. Each user's enumeration is independent and writes only its
// own slot, so the result does not depend on the worker count.
func enumerateAll(in *model.Instance, conf *conflict.Matrix, maxSets, workers int) ([][]admissible.Set, int) {
	sets := make([][]admissible.Set, in.NumUsers())
	trunc := make([]bool, in.NumUsers())
	enumerateInto(in, conf, sets, trunc, nil, maxSets, workers)
	truncated := 0
	for _, t := range trunc {
		if t {
			truncated++
		}
	}
	return sets, truncated
}

// BuildBenchmarkLP assembles LP (1)-(4): one column per (user, admissible
// set), a ≤1 row per user and a ≤cv row per event. owner[j] identifies the
// user and set index of column j. The column count and nonzero count are
// known exactly from the enumeration, so the flat CSC arrays are sized in
// one pass and filled in the next — a Meetup-scale build is a handful of
// allocations instead of two per column. Exported for white-box testing and
// for the ablation benchmarks.
func BuildBenchmarkLP(in *model.Instance, sets [][]admissible.Set) (*lp.Problem, [][2]int) {
	nu, nv := in.NumUsers(), in.NumEvents()
	p := &lp.Problem{NumRows: nu + nv, B: make([]float64, nu+nv)}
	for u := 0; u < nu; u++ {
		p.B[u] = 1
	}
	for v := 0; v < nv; v++ {
		p.B[nu+v] = float64(in.Events[v].Capacity)
	}
	ncols, nnz := 0, 0
	for _, us := range sets {
		ncols += len(us)
		for _, s := range us {
			nnz += len(s.Events) + 1
		}
	}
	p.Reserve(ncols, nnz)
	p.ColPtr = append(p.ColPtr, 0)
	owner := make([][2]int, 0, ncols)
	for u, us := range sets {
		for si, s := range us {
			p.Rows = append(p.Rows, int32(u))
			for _, v := range s.Events {
				p.Rows = append(p.Rows, int32(nu+v))
			}
			p.ColPtr = append(p.ColPtr, len(p.Rows))
			p.C = append(p.C, s.Weight)
			owner = append(owner, [2]int{u, si})
		}
	}
	p.Vals = p.Vals[:nnz]
	for k := range p.Vals {
		p.Vals[k] = 1
	}
	return p, owner
}

// finish performs sampling, repair and (optionally) fill, and assembles the
// Result.
func finish(in *model.Instance, conf *conflict.Matrix, sets [][]admissible.Set,
	owner [][2]int, prob *lp.Problem, sol *lp.Solution, alpha float64,
	opt Options, rng *xrand.RNG, truncated int) (*Result, error) {

	// Per-user sampling distributions α·x*_{u,S}.
	chosen := SampleSets(in.NumUsers(), sets, owner, sol.X, alpha, opt.Seed, opt.Workers)

	arr, dropped := Repair(in, sets, chosen, opt.Repair, rng)

	filled := 0
	if opt.GreedyFill {
		filled = greedyFill(in, conf, arr)
	}
	arr.Normalize()

	res := &Result{
		Arrangement:    arr,
		Utility:        model.Utility(in, arr),
		LPObjective:    sol.Objective,
		LPIterations:   sol.Iterations,
		LPColumns:      prob.NumCols(),
		TruncatedUsers: truncated,
		SampledPairs:   pairsOf(sets, chosen),
		RepairDropped:  dropped,
		FilledPairs:    filled,
	}
	return res, nil
}

func pairsOf(sets [][]admissible.Set, chosen []int) int {
	n := 0
	for u, s := range chosen {
		if s >= 0 {
			n += len(sets[u][s].Events)
		}
	}
	return n
}

// SampleSets draws, for each user, the index of the sampled admissible set
// (or -1 for none) with probabilities α·x*. User u draws from the dedicated
// deterministic stream xrand.NewStream(seed, u), so the draws parallelize
// over the bounded pool (workers = 0 means GOMAXPROCS) with bit-identical
// results for every worker count. Exported for the rounding unit tests.
func SampleSets(numUsers int, sets [][]admissible.Set, owner [][2]int, x []float64, alpha float64, seed int64, workers int) []int {
	// Gather the per-user probability vectors in set order, as slices of one
	// flat backing array.
	off := make([]int, numUsers+1)
	for u := 0; u < numUsers; u++ {
		off[u+1] = off[u] + len(sets[u])
	}
	probs := make([]float64, off[numUsers])
	for j, ow := range owner {
		probs[off[ow[0]]+ow[1]] = clampProb(alpha * x[j])
	}
	chosen := make([]int, numUsers)
	par.For(workers, numUsers, 64, func(u int) {
		w := probs[off[u]:off[u+1]]
		if len(w) == 0 {
			chosen[u] = -1
			return
		}
		normalizeSubDistribution(w)
		chosen[u] = xrand.NewStream(seed, uint64(u)).Categorical(w)
	})
	return chosen
}

func clampProb(p float64) float64 {
	if p < 0 {
		return 0
	}
	if p > 1 {
		return 1
	}
	return p
}

// normalizeSubDistribution rescales w in place if round-off pushed its sum
// above 1 (the LP guarantees Σ x*_{u,S} ≤ 1 only up to tolerance).
func normalizeSubDistribution(w []float64) {
	sum := 0.0
	for _, v := range w {
		sum += v
	}
	if sum > 1 {
		inv := 1 / sum
		for i := range w {
			w[i] *= inv
		}
	}
}

// Repair implements lines 4-7 of Algorithm 1: given each user's sampled set,
// drop events whose capacity the combined assignment would violate. The scan
// order over users is configurable; within a user events are scanned in the
// sampled set's stored order. Returns the arrangement and the number of
// dropped pairs. Exported for the rounding unit tests and ablations.
func Repair(in *model.Instance, sets [][]admissible.Set, chosen []int, order RepairOrder, rng *xrand.RNG) (*model.Arrangement, int) {
	nu := in.NumUsers()
	load := make([]int, in.NumEvents())
	for u := 0; u < nu; u++ {
		if s := chosen[u]; s >= 0 {
			for _, v := range sets[u][s].Events {
				load[v]++
			}
		}
	}

	scan := make([]int, nu)
	for i := range scan {
		scan[i] = i
	}
	switch order {
	case RepairRandom:
		rng.Shuffle(nu, func(i, j int) { scan[i], scan[j] = scan[j], scan[i] })
	case RepairByWeightAsc:
		w := make([]float64, nu)
		for u := range w {
			if s := chosen[u]; s >= 0 {
				w[u] = sets[u][s].Weight
			}
		}
		sortByWeight(scan, w)
	}

	arr := model.NewArrangement(nu)
	dropped := 0
	for _, u := range scan {
		s := chosen[u]
		if s < 0 {
			continue
		}
		var kept []int
		for _, v := range sets[u][s].Events {
			if load[v] > in.Events[v].Capacity {
				load[v]--
				dropped++
				continue
			}
			kept = append(kept, v)
		}
		arr.Sets[u] = kept
	}
	return arr, dropped
}

// sortByWeight sorts scan ascending by w[scan[i]], stable on user index.
func sortByWeight(scan []int, w []float64) {
	// insertion sort is fine here (n = |U|); but use an O(n log n) sort for
	// the large sweeps.
	quicksortByKey(scan, w, 0, len(scan)-1)
}

func quicksortByKey(idx []int, key []float64, lo, hi int) {
	for lo < hi {
		p := partitionByKey(idx, key, lo, hi)
		if p-lo < hi-p {
			quicksortByKey(idx, key, lo, p-1)
			lo = p + 1
		} else {
			quicksortByKey(idx, key, p+1, hi)
			hi = p - 1
		}
	}
}

func partitionByKey(idx []int, key []float64, lo, hi int) int {
	mid := lo + (hi-lo)/2
	// median-of-three on (key, index) pairs for deterministic total order
	if less(key, idx[mid], idx[lo]) {
		idx[mid], idx[lo] = idx[lo], idx[mid]
	}
	if less(key, idx[hi], idx[lo]) {
		idx[hi], idx[lo] = idx[lo], idx[hi]
	}
	if less(key, idx[hi], idx[mid]) {
		idx[hi], idx[mid] = idx[mid], idx[hi]
	}
	pivot := idx[mid]
	idx[mid], idx[hi] = idx[hi], idx[mid]
	store := lo
	for i := lo; i < hi; i++ {
		if less(key, idx[i], pivot) {
			idx[i], idx[store] = idx[store], idx[i]
			store++
		}
	}
	idx[store], idx[hi] = idx[hi], idx[store]
	return store
}

func less(key []float64, a, b int) bool {
	if key[a] != key[b] {
		return key[a] < key[b]
	}
	return a < b
}

// greedyFill adds feasible (weight-descending) pairs left open after repair.
// It relies on arr.Sets[u] being sorted ascending at entry (repair preserves
// the enumeration's sorted event order), so candidate membership is a binary
// search instead of a per-user map.
func greedyFill(in *model.Instance, conf *conflict.Matrix, arr *model.Arrangement) int {
	type cand struct {
		u, v int
		w    float64
	}
	wc := in.Weights()
	load := make([]int, in.NumEvents())
	for _, set := range arr.Sets {
		for _, v := range set {
			load[v]++
		}
	}
	var cands []cand
	for u := range in.Users {
		if len(arr.Sets[u]) >= in.Users[u].Capacity {
			continue
		}
		set := arr.Sets[u]
		for i, v := range in.Users[u].Bids {
			if !model.Contains(set, v) && load[v] < in.Events[v].Capacity {
				cands = append(cands, cand{u, v, wc.At(u, i)})
			}
		}
	}
	idx := make([]int, len(cands))
	keys := make([]float64, len(cands))
	for i := range cands {
		idx[i] = i
		keys[i] = -cands[i].w // descending
	}
	quicksortByKey(idx, keys, 0, len(idx)-1)

	added := 0
	for _, i := range idx {
		c := cands[i]
		if len(arr.Sets[c.u]) >= in.Users[c.u].Capacity || load[c.v] >= in.Events[c.v].Capacity {
			continue
		}
		ok := true
		for _, v := range arr.Sets[c.u] {
			if v == c.v || conf.Conflicts(v, c.v) {
				ok = false
				break
			}
		}
		if !ok {
			continue
		}
		arr.Sets[c.u] = append(arr.Sets[c.u], c.v)
		load[c.v]++
		added++
	}
	return added
}
