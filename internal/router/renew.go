package router

import (
	"fmt"
	"sync"
	"time"

	"github.com/ebsn/igepa/internal/server"
)

// This file is the router's half of the two-phase wire renewal (the shard
// side lives in internal/server's /cluster handlers):
//
//	phase 1 (prepare): POST /cluster/demand to every backend in parallel.
//	  Each backend freezes — takes its serving locks, arms the thaw watchdog —
//	  and reports its per-event loads plus the users queued behind the freeze.
//	phase 2 (install): feed the loads into the shard.Coordinator, run the
//	  renewal arithmetic a single-process engine would run, and POST each
//	  shard's absolute budget vector to /cluster/lease, which installs it
//	  under the still-held locks and thaws.
//
// Failure discipline: anything that goes wrong before an install is safe —
// abort every frozen backend and retry on the next trigger. Anything after
// the first install may leave the coordinator's budget table and the
// backends' disagreeing, which breaks the bit-identity contract and (worse)
// could later over-commit an event; the router latches degraded and stops
// accepting writes.

// tryRenew runs one renewal round if none is in flight — the live-mode
// trigger, fired every ~Batch accepted arrivals. Aborted rounds (a backend
// briefly unreachable during prepare) are counted and retried on the next
// trigger; only install failures degrade.
func (rt *Router) tryRenew() {
	if !rt.renewMu.TryLock() {
		return
	}
	defer rt.renewMu.Unlock()
	rt.sinceRenew.Store(0)
	if rt.degraded.Load() {
		return
	}
	if err := rt.renewOnce(nil); err != nil {
		rt.m.renewErrors.Add(1)
	}
}

// finishRenew records a completed round's wall time and mirrors the
// coordinator counters; the caller holds renewMu.
func (rt *Router) finishRenew(start time.Time) {
	rt.obs.observeRenew(time.Since(start))
	rt.obs.mirrorCoord(rt.coord.Renewals(), rt.coord.MovedSeats())
}

// renewOnce executes one two-phase renewal round. next is the demand
// snapshot to feed the renewer; nil means "use the queued users the
// backends report" (live mode — the cluster analogue of the in-process
// coordinator reading its own queues). The caller holds renewMu.
func (rt *Router) renewOnce(next []int) error {
	start := time.Now()
	// Phase 1: freeze everything. Parallel — each prepare holds that
	// backend's serving locks until install/abort, so sequential prepares
	// would serialize the freeze windows end to end.
	demands := make([]*server.ClusterDemandResponse, rt.s)
	errs := make([]error, rt.s)
	var wg sync.WaitGroup
	for si := 0; si < rt.s; si++ {
		wg.Add(1)
		go func(si int) {
			defer wg.Done()
			var d server.ClusterDemandResponse
			if _, err := rt.postJSON(si, "/cluster/demand", struct{}{}, &d); err != nil {
				errs[si] = err
				return
			}
			demands[si] = &d
		}(si)
	}
	wg.Wait()
	for si, err := range errs {
		if err != nil {
			rt.abortAll(demands)
			return fmt.Errorf("router: renewal prepare, backend %d: %w", si, err)
		}
	}

	// Coordinator arithmetic over the frozen loads. A load vector the
	// coordinator rejects means the backend's state diverged from ours —
	// that is a correctness failure, not a transient.
	for si, d := range demands {
		if err := rt.coord.SetLoads(si, d.Loads); err != nil {
			rt.abortAll(demands)
			rt.degrade(fmt.Sprintf("backend %d reported inconsistent loads: %v", si, err))
			return err
		}
	}
	demand := next
	if demand == nil {
		for _, d := range demands {
			demand = append(demand, d.Queued...)
		}
	}
	if _, err := rt.coord.Renew(demand); err != nil {
		// The renewer itself broke the lease invariant — same class of
		// failure a single-process engine would count as a lease error, but
		// here nothing has been installed yet, so abort and stop.
		rt.abortAll(demands)
		rt.degrade("renewal broke the lease invariant: " + err.Error())
		return err
	}

	// Phase 2: install. From the first install onward, a failure leaves the
	// cluster's budget tables unprovably consistent — fail stop.
	installErrs := make([]error, rt.s)
	for si := 0; si < rt.s; si++ {
		wg.Add(1)
		go func(si int) {
			defer wg.Done()
			var resp server.ClusterLeaseResponse
			_, err := rt.postJSON(si, "/cluster/lease",
				server.ClusterLeaseRequest{Budget: rt.coord.Budget(si)}, &resp)
			installErrs[si] = err
		}(si)
	}
	wg.Wait()
	for si, err := range installErrs {
		if err != nil {
			rt.degrade(fmt.Sprintf("lease install on backend %d failed: %v", si, err))
			return fmt.Errorf("router: lease install, backend %d: %w", si, err)
		}
	}
	rt.finishRenew(start)
	return nil
}

// abortAll thaws every backend that acknowledged a prepare (best effort —
// an unreachable backend's watchdog thaws it anyway).
func (rt *Router) abortAll(demands []*server.ClusterDemandResponse) {
	var wg sync.WaitGroup
	for si := 0; si < rt.s; si++ {
		if demands[si] == nil {
			continue
		}
		wg.Add(1)
		go func(si int) {
			defer wg.Done()
			_, _ = rt.postJSON(si, "/cluster/abort", struct{}{}, nil)
		}(si)
	}
	wg.Wait()
}
