package eval

import (
	"fmt"
	"io"
	"strings"
)

// RenderText writes the table in aligned plain text: one row per x-axis
// point, one column per algorithm, cells "mean ±std".
func RenderText(w io.Writer, t *Table) error {
	e := t.Experiment
	if _, err := fmt.Fprintf(w, "%s — %s (mean utility over %d reps)\n", e.ID, e.Title, t.Reps); err != nil {
		return err
	}
	headers := make([]string, 0, len(t.Series)+1)
	headers = append(headers, e.XLabel)
	for _, s := range t.Series {
		headers = append(headers, s.Algorithm)
	}
	rows := [][]string{headers}
	for p, pt := range e.Points {
		row := []string{pt.Label}
		for _, s := range t.Series {
			c := s.Cells[p]
			row = append(row, fmt.Sprintf("%.2f ±%.2f", c.Mean, c.Std))
		}
		rows = append(rows, row)
	}
	widths := make([]int, len(headers))
	for _, row := range rows {
		for i, cell := range row {
			if len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	for ri, row := range rows {
		var b strings.Builder
		for i, cell := range row {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], cell)
		}
		if _, err := fmt.Fprintln(w, strings.TrimRight(b.String(), " ")); err != nil {
			return err
		}
		if ri == 0 {
			total := 0
			for _, wd := range widths {
				total += wd
			}
			if _, err := fmt.Fprintln(w, strings.Repeat("-", total+2*(len(widths)-1))); err != nil {
				return err
			}
		}
	}
	return nil
}

// RenderCSV writes the table as CSV: x, algorithm, mean, std, n — the format
// plotting scripts consume to redraw the paper's figures.
func RenderCSV(w io.Writer, t *Table) error {
	if _, err := fmt.Fprintf(w, "experiment,x,x_label,algorithm,mean,std,n\n"); err != nil {
		return err
	}
	e := t.Experiment
	for p, pt := range e.Points {
		for _, s := range t.Series {
			c := s.Cells[p]
			if _, err := fmt.Fprintf(w, "%s,%g,%s,%s,%.6f,%.6f,%d\n",
				e.ID, pt.X, csvEscape(pt.Label), csvEscape(s.Algorithm), c.Mean, c.Std, c.N); err != nil {
				return err
			}
		}
	}
	return nil
}

func csvEscape(s string) string {
	if strings.ContainsAny(s, ",\"\n") {
		return `"` + strings.ReplaceAll(s, `"`, `""`) + `"`
	}
	return s
}

// RenderRatioText writes the approximation-ratio experiment summary.
func RenderRatioText(w io.Writer, r *RatioResult) error {
	_, err := fmt.Fprintf(w,
		"ratio — empirical approximation ratio at alpha=%.2f over %d instances\n"+
			"  E[ALG]/OPT: mean %.3f, std %.3f, min %.3f (theorem floor at alpha=0.5: 0.25)\n"+
			"  max OPT/LP gap observed: %.3f (Lemma 1: always ≤ 1)\n",
		r.Alpha, r.Aggregate.N, r.Aggregate.Mean, r.Aggregate.Std, r.WorstCase, r.LPGapMax)
	return err
}
