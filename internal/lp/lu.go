package lp

import (
	"fmt"
	"math"
	"sort"
)

// spCol is one sparse column handed to the LU kernel — typically a view into
// the Problem's CSC arrays or into the solver's slack storage, never a copy.
type spCol struct {
	rows []int32
	vals []float64
}

// luFactors is a sparse LU factorization of a square basis matrix B with
// row partial pivoting and a sparsity-oriented column order:
//
//	B[:, colOrder[k]] is eliminated at step k, pivoting on original row
//	pivRow[k], so that  P·B·Q = L·U  with P, Q the row/column permutations
//	and L unit-lower-triangular, U upper-triangular, both in "step" space.
//
// L and U are stored column-wise in flat arrays: L's column k occupies
// lIdx[lPtr[k]:lPtr[k+1]] / lVal[...] (strictly-lower entries, step indices
// > k), U's column k occupies uIdx[uPtr[k]:uPtr[k+1]] / uVal[...] (strictly-
// upper entries, step indices < k), and uDiag[k] holds the diagonal pivot.
// The struct is reusable: factorize overwrites in place, so a solver that
// refactorizes every few dozen pivots allocates the workspace once instead
// of millions of per-column slices over a long solve.
type luFactors struct {
	m        int
	colOrder []int // step -> basis position
	pivRow   []int // step -> original row
	pos      []int // original row -> step

	lPtr, uPtr []int32
	lIdx, uIdx []int32
	lVal, uVal []float64
	uDiag      []float64

	// factorization scratch, reused across refactorizations
	w         []float64 // dense accumulator, original-row space
	inW, seen []bool
	touched   []int
	processed []int
	steps     stepHeap
}

// stepHeap is a small binary min-heap of step indices used to process
// eliminations in increasing step order during factorization.
type stepHeap []int

func (h *stepHeap) push(x int) {
	*h = append(*h, x)
	i := len(*h) - 1
	for i > 0 {
		p := (i - 1) / 2
		if (*h)[p] <= (*h)[i] {
			break
		}
		(*h)[p], (*h)[i] = (*h)[i], (*h)[p]
		i = p
	}
}

func (h *stepHeap) pop() int {
	old := *h
	top := old[0]
	last := len(old) - 1
	old[0] = old[last]
	*h = old[:last]
	i, n := 0, last
	for {
		l, r := 2*i+1, 2*i+2
		sm := i
		if l < n && (*h)[l] < (*h)[sm] {
			sm = l
		}
		if r < n && (*h)[r] < (*h)[sm] {
			sm = r
		}
		if sm == i {
			break
		}
		(*h)[i], (*h)[sm] = (*h)[sm], (*h)[i]
		i = sm
	}
	return top
}

// luFactorize computes a fresh factorization of the m×m matrix whose columns
// are cols (assembly-form convenience used by the tests; the solver reuses
// one luFactors via factorize).
func luFactorize(m int, cols []Column) (*luFactors, error) {
	sp := make([]spCol, len(cols))
	for i := range cols {
		rows := make([]int32, len(cols[i].Rows))
		for k, r := range cols[i].Rows {
			rows[k] = int32(r)
		}
		sp[i] = spCol{rows: rows, vals: cols[i].Vals}
	}
	f := &luFactors{}
	if err := f.factorize(m, sp); err != nil {
		return nil, err
	}
	return f, nil
}

// resize (re)shapes the persistent arrays for an m×m factorization and
// clears the scratch state.
func (f *luFactors) resize(m int) {
	f.m = m
	if cap(f.colOrder) < m {
		f.colOrder = make([]int, m)
		f.pivRow = make([]int, m)
		f.pos = make([]int, m)
		f.uDiag = make([]float64, m)
		f.lPtr = make([]int32, m+1)
		f.uPtr = make([]int32, m+1)
		f.w = make([]float64, m)
		f.inW = make([]bool, m)
		f.seen = make([]bool, m)
	} else {
		f.colOrder = f.colOrder[:m]
		f.pivRow = f.pivRow[:m]
		f.pos = f.pos[:m]
		f.uDiag = f.uDiag[:m]
		f.lPtr = f.lPtr[:m+1]
		f.uPtr = f.uPtr[:m+1]
		f.w = f.w[:m]
		f.inW = f.inW[:m]
		f.seen = f.seen[:m]
	}
	for i := 0; i < m; i++ {
		f.colOrder[i] = i
		f.pos[i] = -1
		f.w[i] = 0
		f.inW[i] = false
		f.seen[i] = false
	}
	f.lIdx, f.lVal = f.lIdx[:0], f.lVal[:0]
	f.uIdx, f.uVal = f.uIdx[:0], f.uVal[:0]
	f.touched = f.touched[:0]
	f.processed = f.processed[:0]
	f.steps = f.steps[:0]
	f.lPtr[0], f.uPtr[0] = 0, 0
}

// factorize overwrites f with the factorization of the m×m matrix whose
// columns are cols. Columns are eliminated in order of increasing nonzero
// count (slacks and other singletons first), an effective cheap
// fill-reducing heuristic for the near-network bases of the benchmark LP.
// Returns an error if the matrix is numerically singular.
func (f *luFactors) factorize(m int, cols []spCol) error {
	if len(cols) != m {
		return fmt.Errorf("lp: lu of %dx%d matrix with %d columns", m, m, len(cols))
	}
	f.resize(m)
	sort.SliceStable(f.colOrder, func(a, b int) bool {
		return len(cols[f.colOrder[a]].rows) < len(cols[f.colOrder[b]].rows)
	})

	// While rows are still being pivoted, lIdx holds L entries in
	// original-row space; they are translated to step space after the last
	// column.
	for k := 0; k < m; k++ {
		col := cols[f.colOrder[k]]
		f.steps = f.steps[:0]
		f.processed = f.processed[:0]
		f.touched = f.touched[:0]
		for i, r32 := range col.rows {
			r := int(r32)
			if !f.inW[r] {
				f.inW[r] = true
				f.touched = append(f.touched, r)
			}
			f.w[r] += col.vals[i]
			if p := f.pos[r]; p >= 0 && !f.seen[p] {
				f.seen[p] = true
				f.processed = append(f.processed, p)
				f.steps.push(p)
			}
		}
		// Forward-eliminate through previously factored columns in
		// increasing step order (a topological order of L).
		for len(f.steps) > 0 {
			js := f.steps.pop()
			pr := f.pivRow[js]
			alpha := f.w[pr]
			f.w[pr] = 0
			if alpha == 0 {
				continue
			}
			f.uIdx = append(f.uIdx, int32(js))
			f.uVal = append(f.uVal, alpha)
			lIdx := f.lIdx[f.lPtr[js]:f.lPtr[js+1]]
			lVal := f.lVal[f.lPtr[js]:f.lPtr[js+1]]
			for i, r32 := range lIdx {
				r := int(r32)
				if !f.inW[r] {
					f.inW[r] = true
					f.touched = append(f.touched, r)
				}
				f.w[r] -= alpha * lVal[i]
				if p := f.pos[r]; p >= 0 && !f.seen[p] {
					f.seen[p] = true
					f.processed = append(f.processed, p)
					f.steps.push(p)
				}
			}
		}
		// Partial pivoting among the remaining (unpivoted) rows.
		piv, pr := 0.0, -1
		for _, r := range f.touched {
			if f.pos[r] >= 0 {
				continue
			}
			if a := math.Abs(f.w[r]); a > piv {
				piv, pr = a, r
			}
		}
		if pr < 0 || piv < 1e-12 {
			return fmt.Errorf("lp: basis numerically singular at step %d", k)
		}
		pivVal := f.w[pr]
		f.pivRow[k] = pr
		f.pos[pr] = k
		f.uDiag[k] = pivVal
		for _, r := range f.touched {
			if f.pos[r] >= 0 {
				continue // pivot rows (incl. the current one) are not part of L
			}
			if v := f.w[r]; v != 0 {
				f.lIdx = append(f.lIdx, int32(r))
				f.lVal = append(f.lVal, v/pivVal)
			}
		}
		for _, r := range f.touched {
			f.w[r] = 0
			f.inW[r] = false
		}
		for _, s := range f.processed {
			f.seen[s] = false
		}
		f.lPtr[k+1] = int32(len(f.lIdx))
		f.uPtr[k+1] = int32(len(f.uIdx))
	}
	// Translate L's row indices to step space (every row now has a step).
	for i, r := range f.lIdx {
		f.lIdx[i] = int32(f.pos[r])
	}
	return nil
}

// solveB computes d = B⁻¹a for a sparse right-hand side a given as
// (rows, vals) in original-row space. The result is written into out,
// indexed by basis position; work must be a zeroed scratch vector of
// length m and is returned zeroed.
func (f *luFactors) solveB(rows []int32, vals []float64, out, work []float64) {
	z := work
	for i, r := range rows {
		z[f.pos[r]] += vals[i]
	}
	// L z' = z (unit lower, forward)
	for k := 0; k < f.m; k++ {
		v := z[k]
		if v == 0 {
			continue
		}
		idx := f.lIdx[f.lPtr[k]:f.lPtr[k+1]]
		val := f.lVal[f.lPtr[k]:f.lPtr[k+1]]
		for i, s := range idx {
			z[s] -= v * val[i]
		}
	}
	// U t = z' (backward, column-oriented)
	for k := f.m - 1; k >= 0; k-- {
		v := z[k] / f.uDiag[k]
		z[k] = 0
		if v != 0 {
			idx := f.uIdx[f.uPtr[k]:f.uPtr[k+1]]
			val := f.uVal[f.uPtr[k]:f.uPtr[k+1]]
			for i, s := range idx {
				z[s] -= v * val[i]
			}
		}
		out[f.colOrder[k]] = v
	}
}

// solveBT computes y with Bᵀy = c, where c is indexed by basis position.
// The result is written into out, indexed by original row; work must be a
// zeroed scratch vector of length m and is returned zeroed.
func (f *luFactors) solveBT(c, out, work []float64) {
	t := work
	// Uᵀ t = Qᵀc (forward in step order, row-oriented via U's columns)
	for k := 0; k < f.m; k++ {
		v := c[f.colOrder[k]]
		idx := f.uIdx[f.uPtr[k]:f.uPtr[k+1]]
		val := f.uVal[f.uPtr[k]:f.uPtr[k+1]]
		for i, s := range idx {
			v -= val[i] * t[s]
		}
		t[k] = v / f.uDiag[k]
	}
	// Lᵀ s = t (backward, row-oriented via L's columns)
	for k := f.m - 1; k >= 0; k-- {
		v := t[k]
		idx := f.lIdx[f.lPtr[k]:f.lPtr[k+1]]
		val := f.lVal[f.lPtr[k]:f.lPtr[k+1]]
		for i, s := range idx {
			v -= val[i] * t[s]
		}
		t[k] = v
	}
	for k := 0; k < f.m; k++ {
		out[f.pivRow[k]] = t[k]
		t[k] = 0
	}
}
