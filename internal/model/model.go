// Package model defines the IGEPA data model: events, users, problem
// instances, arrangements, the utility objective, and the feasibility
// validator.
//
// Terminology follows the paper (ICDE 2019, §II). Events and users are
// identified by dense indices: events are 0..|V|-1 and users are 0..|U|-1
// within an Instance. The conflict predicate σ and the interest function SI
// are plain function fields on Instance, so any substrate (explicit matrices,
// time-interval overlap, attribute similarity, hashed tables) can plug in
// without this package knowing about it.
package model

import (
	"fmt"
	"sort"
)

// Event is an event v posted on the EBSN platform (Definition 1).
type Event struct {
	// Capacity is cv, the maximum number of attendees.
	Capacity int
	// Attrs is the attribute vector lv (categories, topic mixture, ...).
	// May be nil when the instance's conflict and interest functions do not
	// use attribute vectors.
	Attrs []float64
	// Start and End optionally carry the event's time interval
	// (used by interval-overlap conflict functions). Both zero means unset.
	Start, End int64
}

// User is an EBSN user u (Definition 2).
type User struct {
	// Capacity is cu, the maximum number of events the user can attend.
	Capacity int
	// Attrs is the attribute vector lu.
	Attrs []float64
	// Bids is Nu: the events the user bid for, in increasing order.
	Bids []int
	// Degree is the user's degree in the social network G. The degree of
	// potential interaction D(G,u) = Degree/(|U|-1) (Definition 6).
	Degree int
}

// ConflictFunc is the conflict predicate σ(lv, lv') ∈ {0,1} (Definition 3):
// it reports whether events v and w conflict. Implementations must be
// symmetric and should treat an event as non-conflicting with itself.
type ConflictFunc func(v, w int) bool

// InterestFunc is SI(lv, lu) ∈ [0,1] (Definition 5): the interest of user u
// in event v.
type InterestFunc func(u, v int) float64

// Instance is a complete IGEPA problem instance (Definition 8).
type Instance struct {
	Events []Event
	Users  []User

	// Conflicts is the conflict predicate σ.
	Conflicts ConflictFunc
	// Interest is the interest function SI.
	Interest InterestFunc
	// Beta is β ∈ [0,1], balancing interest against interaction degree.
	Beta float64

	bidders  [][]int      // Nv, rebuilt lazily from Users[*].Bids
	prevBids [][]int      // per-user bid snapshot backing the Invalidate(users...) diff
	weights  *WeightCache // w(u,v) over bid lists, built lazily (weights.go)
}

// NumEvents returns |V|.
func (in *Instance) NumEvents() int { return len(in.Events) }

// NumUsers returns |U|.
func (in *Instance) NumUsers() int { return len(in.Users) }

// Bidders returns Nv: the users who bid for event v, in increasing order.
// The returned slice is shared; callers must not modify it.
func (in *Instance) Bidders(v int) []int {
	if in.bidders == nil {
		in.RebuildBidders()
	}
	return in.bidders[v]
}

// RebuildBidders recomputes the per-event bidder lists from the users' bid
// sets. Call it after mutating any user's Bids. It also drops the weight
// cache, which is aligned with the bid lists, and snapshots the bid sets so
// later Invalidate(users...) calls can patch the lists instead of rebuilding
// them.
func (in *Instance) RebuildBidders() {
	b := make([][]int, len(in.Events))
	for u := range in.Users {
		for _, v := range in.Users[u].Bids {
			b[v] = append(b[v], u)
		}
	}
	in.bidders = b
	in.weights = nil
	in.snapshotBids()
}

// snapshotBids copies every user's bid list into one flat arena. The copies
// are what the delta-scoped Invalidate diffs against, so in-place mutation
// of a caller's Bids slice can never corrupt the patch.
func (in *Instance) snapshotBids() {
	total := 0
	for u := range in.Users {
		total += len(in.Users[u].Bids)
	}
	arena := make([]int, 0, total)
	snap := make([][]int, len(in.Users))
	for u := range in.Users {
		lo := len(arena)
		arena = append(arena, in.Users[u].Bids...)
		snap[u] = arena[lo:len(arena):len(arena)]
	}
	in.prevBids = snap
}

// DPI returns the degree of potential interaction D(G,u) (Definition 6).
// For |U| <= 1 it returns 0.
func (in *Instance) DPI(u int) float64 {
	n := len(in.Users)
	if n <= 1 {
		return 0
	}
	return float64(in.Users[u].Degree) / float64(n-1)
}

// Weight returns w(u,v) = β·SI(lv,lu) + (1−β)·D(G,u), the marginal utility of
// assigning event v to user u.
func (in *Instance) Weight(u, v int) float64 {
	return in.Beta*in.Interest(u, v) + (1-in.Beta)*in.DPI(u)
}

// Check verifies structural well-formedness of the instance itself (not of
// any arrangement): indices in range, capacities non-negative, β ∈ [0,1],
// bids sorted and deduplicated, and the conflict/interest functions present.
func (in *Instance) Check() error {
	if in.Conflicts == nil {
		return fmt.Errorf("model: instance has no conflict function")
	}
	if in.Interest == nil {
		return fmt.Errorf("model: instance has no interest function")
	}
	if !(in.Beta >= 0 && in.Beta <= 1) { // negated form also rejects NaN
		return fmt.Errorf("model: beta = %v outside [0,1]", in.Beta)
	}
	for v := range in.Events {
		if err := in.checkEvent(v); err != nil {
			return err
		}
	}
	for u := range in.Users {
		if err := in.checkUser(u); err != nil {
			return err
		}
	}
	return nil
}

// checkEvent validates one event's fields.
func (in *Instance) checkEvent(v int) error {
	if c := in.Events[v].Capacity; c < 0 {
		return fmt.Errorf("model: event %d has negative capacity %d", v, c)
	}
	return nil
}

// checkUser validates one user's fields and bid list.
func (in *Instance) checkUser(u int) error {
	us := &in.Users[u]
	if us.Capacity < 0 {
		return fmt.Errorf("model: user %d has negative capacity %d", u, us.Capacity)
	}
	maxDegree := len(in.Users) - 1
	if maxDegree < 0 {
		maxDegree = 0
	}
	if us.Degree < 0 || us.Degree > maxDegree {
		return fmt.Errorf("model: user %d has impossible degree %d (|U| = %d)", u, us.Degree, len(in.Users))
	}
	prev := -1
	for _, v := range us.Bids {
		if v < 0 || v >= len(in.Events) {
			return fmt.Errorf("model: user %d bids for unknown event %d", u, v)
		}
		if v <= prev {
			return fmt.Errorf("model: user %d bids not sorted/deduplicated at event %d", u, v)
		}
		prev = v
	}
	return nil
}

// CheckUsers validates just the listed users (index range plus checkUser) —
// the delta-scoped counterpart of Check for callers who mutated a known set
// of users on an instance that already passed a full Check.
func (in *Instance) CheckUsers(users []int) error {
	for _, u := range users {
		if u < 0 || u >= len(in.Users) {
			return fmt.Errorf("model: unknown user %d (|U| = %d)", u, len(in.Users))
		}
		if err := in.checkUser(u); err != nil {
			return err
		}
	}
	return nil
}

// CheckEvents validates just the listed events — the delta-scoped
// counterpart of Check after capacity mutations.
func (in *Instance) CheckEvents(events []int) error {
	for _, v := range events {
		if v < 0 || v >= len(in.Events) {
			return fmt.Errorf("model: unknown event %d (|V| = %d)", v, len(in.Events))
		}
		if err := in.checkEvent(v); err != nil {
			return err
		}
	}
	return nil
}

// Clone deep-copies the mutable parts of the instance — events, users and
// their bid lists — sharing the conflict/interest functions and β. Derived
// caches are not carried over; the clone rebuilds them lazily. It is the
// one copy used by mutation-replay tests and the serving layer's shadow
// instances.
func (in *Instance) Clone() *Instance {
	out := &Instance{
		Events:    append([]Event(nil), in.Events...),
		Users:     append([]User(nil), in.Users...),
		Conflicts: in.Conflicts,
		Interest:  in.Interest,
		Beta:      in.Beta,
	}
	for u := range out.Users {
		out.Users[u].Bids = append([]int(nil), in.Users[u].Bids...)
	}
	return out
}

// Arrangement is an event–participant arrangement M ⊆ V×U, stored as one
// event set per user (Definition 4). Sets[u] lists the events assigned to
// user u in increasing order; users with no events have empty or nil sets.
type Arrangement struct {
	Sets [][]int
}

// NewArrangement returns an empty arrangement for n users.
func NewArrangement(n int) *Arrangement {
	return &Arrangement{Sets: make([][]int, n)}
}

// Pair is a single event–user match (v, u) ∈ M.
type Pair struct {
	Event, User int
}

// Pairs returns all matches in the arrangement, ordered by user then event.
func (a *Arrangement) Pairs() []Pair {
	var ps []Pair
	for u, set := range a.Sets {
		for _, v := range set {
			ps = append(ps, Pair{Event: v, User: u})
		}
	}
	return ps
}

// Size returns |M|, the number of event–user pairs.
func (a *Arrangement) Size() int {
	n := 0
	for _, set := range a.Sets {
		n += len(set)
	}
	return n
}

// Normalize sorts each user's event set. Algorithms that build sets out of
// order call this before returning.
func (a *Arrangement) Normalize() {
	for _, set := range a.Sets {
		sort.Ints(set)
	}
}

// Clone returns a deep copy of the arrangement.
func (a *Arrangement) Clone() *Arrangement {
	c := NewArrangement(len(a.Sets))
	for u, set := range a.Sets {
		if len(set) > 0 {
			c.Sets[u] = append([]int(nil), set...)
		}
	}
	return c
}

// Loads returns the per-event attendance counts of the arrangement over
// numEvents events. Events outside [0, numEvents) are ignored (Validate
// rejects them separately).
func (a *Arrangement) Loads(numEvents int) []int {
	load := make([]int, numEvents)
	for _, set := range a.Sets {
		for _, v := range set {
			if v >= 0 && v < numEvents {
				load[v]++
			}
		}
	}
	return load
}

// Equal reports whether two arrangements assign exactly the same event sets
// to the same users. It is the bit-identity predicate of the determinism
// tests.
func (a *Arrangement) Equal(b *Arrangement) bool {
	if len(a.Sets) != len(b.Sets) {
		return false
	}
	for u := range a.Sets {
		if len(a.Sets[u]) != len(b.Sets[u]) {
			return false
		}
		for i, v := range a.Sets[u] {
			if b.Sets[u][i] != v {
				return false
			}
		}
	}
	return true
}

// MergeDisjoint merges arrangements over disjoint user sets into one
// arrangement of n users: each user's event set is taken (copied, so later
// mutation of the result never reaches the parts) from the single part that
// assigned them anything. It errors if two parts assign events to the same
// user or a part is larger than n — the contract under which the sharded
// serving layer combines per-shard arrangements (each user belongs to
// exactly one shard, so the parts are disjoint by construction).
func MergeDisjoint(n int, parts ...*Arrangement) (*Arrangement, error) {
	out := NewArrangement(n)
	for pi, part := range parts {
		if len(part.Sets) > n {
			return nil, fmt.Errorf("model: merge part %d covers %d users, want at most %d", pi, len(part.Sets), n)
		}
		for u, set := range part.Sets {
			if len(set) == 0 {
				continue
			}
			if len(out.Sets[u]) > 0 {
				return nil, fmt.Errorf("model: merge parts overlap on user %d", u)
			}
			out.Sets[u] = append([]int(nil), set...)
		}
	}
	return out, nil
}

// Validate checks that the arrangement is feasible for the instance
// (Definition 4): the bid constraint, both capacity constraints, the
// conflict constraint, plus structural sanity (indices in range, no
// duplicate assignment of an event to the same user). It returns nil iff
// the arrangement is feasible.
func Validate(in *Instance, a *Arrangement) error {
	if len(a.Sets) != len(in.Users) {
		return fmt.Errorf("model: arrangement covers %d users, instance has %d", len(a.Sets), len(in.Users))
	}
	load := make([]int, len(in.Events))
	for u, set := range a.Sets {
		if len(set) > in.Users[u].Capacity {
			return fmt.Errorf("model: user %d assigned %d events, capacity %d", u, len(set), in.Users[u].Capacity)
		}
		bids := in.Users[u].Bids
		for i, v := range set {
			if v < 0 || v >= len(in.Events) {
				return fmt.Errorf("model: user %d assigned unknown event %d", u, v)
			}
			if i > 0 && set[i-1] >= v {
				return fmt.Errorf("model: user %d has unsorted or duplicate events", u)
			}
			if !Contains(bids, v) {
				return fmt.Errorf("model: user %d assigned event %d they did not bid for", u, v)
			}
			load[v]++
		}
		for i := 0; i < len(set); i++ {
			for j := i + 1; j < len(set); j++ {
				if in.Conflicts(set[i], set[j]) {
					return fmt.Errorf("model: user %d assigned conflicting events %d and %d", u, set[i], set[j])
				}
			}
		}
	}
	for v, n := range load {
		if n > in.Events[v].Capacity {
			return fmt.Errorf("model: event %d has %d attendees, capacity %d", v, n, in.Events[v].Capacity)
		}
	}
	return nil
}

// Contains reports whether sorted slice s contains x (binary search). It is
// the allocation-free membership test the assignment hot paths use in place
// of per-call map construction.
func Contains(s []int, x int) bool {
	i := sort.SearchInts(s, x)
	return i < len(s) && s[i] == x
}

// Stats summarizes an instance for reports and dataset documentation.
type Stats struct {
	NumEvents, NumUsers int
	TotalBids           int
	MeanBidsPerUser     float64
	MeanEventCapacity   float64
	MeanUserCapacity    float64
	ConflictPairs       int     // over all event pairs
	ConflictRate        float64 // ConflictPairs / C(|V|,2)
	MeanDegree          float64
	MeanDPI             float64
}

// ComputeStats scans the instance once and returns summary statistics.
func ComputeStats(in *Instance) Stats {
	s := Stats{NumEvents: len(in.Events), NumUsers: len(in.Users)}
	for _, ev := range in.Events {
		s.MeanEventCapacity += float64(ev.Capacity)
	}
	if s.NumEvents > 0 {
		s.MeanEventCapacity /= float64(s.NumEvents)
	}
	for u := range in.Users {
		s.TotalBids += len(in.Users[u].Bids)
		s.MeanUserCapacity += float64(in.Users[u].Capacity)
		s.MeanDegree += float64(in.Users[u].Degree)
		s.MeanDPI += in.DPI(u)
	}
	if s.NumUsers > 0 {
		s.MeanBidsPerUser = float64(s.TotalBids) / float64(s.NumUsers)
		s.MeanUserCapacity /= float64(s.NumUsers)
		s.MeanDegree /= float64(s.NumUsers)
		s.MeanDPI /= float64(s.NumUsers)
	}
	for v := 0; v < s.NumEvents; v++ {
		for w := v + 1; w < s.NumEvents; w++ {
			if in.Conflicts(v, w) {
				s.ConflictPairs++
			}
		}
	}
	if s.NumEvents > 1 {
		s.ConflictRate = float64(s.ConflictPairs) / float64(s.NumEvents*(s.NumEvents-1)/2)
	}
	return s
}
