package server

import (
	"errors"
	"fmt"
	"io"
	"log"
	"net/http"
	"sync"
	"time"

	"github.com/ebsn/igepa/internal/wal"
)

// DefaultLagBytes is the follower readiness bound: the follower reports
// ready only while the unapplied suffix of the leader's log is at most this
// many bytes.
const DefaultLagBytes = 64 << 10

// followPoll is how long the tailer sleeps when it reaches the end of the
// log (or its torn in-flight tail) before looking again.
const followPoll = 2 * time.Millisecond

// follower tails the leader's WAL and applies every record to this
// process's engine — a read replica built from the same determinism
// contract the recovery path uses. It never truncates the log (an
// incomplete tail may be the leader's write in flight) and never writes.
type follower struct {
	srv *Server

	mu      sync.Mutex
	applied int64 // offset of the next unread record (= bytes applied)
	size    int64 // last observed log size; -1 until first observation
	records int64 // records applied by this process
	failure error // permanent: corrupt record or apply error; never ready again

	stopOnce sync.Once
	stop     chan struct{}
	done     chan struct{}
}

// startFollower begins tailing from startOff (the checkpoint's WAL offset).
func (srv *Server) startFollower(startOff int64) {
	f := &follower{
		srv:     srv,
		applied: startOff,
		size:    -1,
		stop:    make(chan struct{}),
		done:    make(chan struct{}),
	}
	srv.fol = f
	srv.follow.Store(true)
	go f.loop()
}

// stopLoop halts the tailer and waits for it to exit; safe to call twice
// (Promote stops it, and Close stops it again on the way down).
func (f *follower) stopLoop() {
	f.stopOnce.Do(func() { close(f.stop) })
	<-f.done
}

func (f *follower) loop() {
	defer close(f.done)
	t := f.openTailer()
	if t == nil {
		return
	}
	defer t.Close()
	// lastReady tracks the /readyz verdict so the igepa_readiness_flips_total
	// counter sees every 503↔200 transition, not just scrape-time samples.
	// A follower starts not-ready (unknown lag is not "caught up").
	lastReady := false
	for {
		select {
		case <-f.stop:
			return
		default:
		}
		payload, err := t.Next()
		switch {
		case err == nil:
			op, derr := wal.DecodeOp(payload)
			if derr != nil {
				f.fail(derr)
				return
			}
			f.srv.lockAll()
			aerr := f.srv.applyOp(op)
			f.srv.unlockAll()
			if aerr != nil {
				f.fail(aerr)
				return
			}
			f.mu.Lock()
			f.applied = t.Offset()
			f.records++
			f.mu.Unlock()
			f.noteReadiness(&lastReady)
		case errors.Is(err, io.EOF), errors.Is(err, wal.ErrTorn):
			// Caught up (or racing the leader's buffered write): note how
			// far the log reaches for the lag bound, then wait for growth.
			if size, serr := t.Size(); serr == nil {
				f.mu.Lock()
				f.size = size
				f.mu.Unlock()
			}
			f.noteReadiness(&lastReady)
			select {
			case <-f.stop:
				return
			case <-time.After(followPoll):
			}
		default:
			// ErrCorrupt or an I/O failure: replaying past this point would
			// violate the never-replay-a-bad-record contract, so the
			// follower parks itself permanently not-ready.
			f.fail(err)
			return
		}
	}
}

// openTailer waits for the leader's log to exist (the follower may start
// first) and opens it at the applied offset.
func (f *follower) openTailer() *wal.Tailer {
	for {
		t, err := wal.OpenTailer(f.srv.cfg.WALPath, f.applied)
		if err == nil {
			return t
		}
		select {
		case <-f.stop:
			return nil
		case <-time.After(followPoll):
		}
	}
}

// noteReadiness counts readiness transitions in either direction. Called
// only from the tailer goroutine; *last is its private state.
func (f *follower) noteReadiness(last *bool) {
	ready := f.stats().Ready
	if ready != *last {
		*last = ready
		f.srv.obs.noteReadyFlip()
	}
}

func (f *follower) fail(err error) {
	f.mu.Lock()
	if f.failure == nil {
		f.failure = err
	}
	f.mu.Unlock()
	log.Printf("server: follower halted, permanently not ready: %v", err)
}

// FollowerStats is the /statsz (and /readyz) view of the replica.
type FollowerStats struct {
	AppliedOffset int64  `json:"applied_offset"`
	LogSize       int64  `json:"log_size"`
	LagBytes      int64  `json:"lag_bytes"`
	Records       int64  `json:"records_applied"`
	Ready         bool   `json:"ready"`
	Failure       string `json:"failure,omitempty"`
}

func (f *follower) stats() FollowerStats {
	f.mu.Lock()
	defer f.mu.Unlock()
	st := FollowerStats{
		AppliedOffset: f.applied,
		LogSize:       f.size,
		Records:       f.records,
	}
	if f.failure != nil {
		st.Failure = f.failure.Error()
		return st
	}
	if f.size < 0 {
		// No observation of the log yet: unknown lag is not "caught up".
		return st
	}
	if lag := f.size - f.applied; lag > 0 {
		st.LagBytes = lag
	}
	st.Ready = st.LagBytes <= f.srv.lagBound()
	return st
}

func (srv *Server) lagBound() int64 {
	if srv.cfg.LagBytes > 0 {
		return srv.cfg.LagBytes
	}
	return DefaultLagBytes
}

// ErrAlreadyLeader is Promote's typed refusal: this process is already the
// leader (it was never a follower, or a racing Promote won). The HTTP layer
// maps it to 409 — a second failover request is a conflict with reality, not
// a server error.
var ErrAlreadyLeader = errors.New("server: already the leader")

// Promote turns the follower into the leader: stop tailing, replay whatever
// the tailer had not reached (taking ownership of the log — this truncates
// any torn tail, so the old leader must be dead), then start the serving
// loops and open the write path. See DESIGN.md §9 for the failover runbook.
//
// Promote is serialized: of two concurrent calls exactly one performs the
// transition, the other returns ErrAlreadyLeader. The check and the
// follow→leader flip both happen under promoteMu, so a second caller can
// never pass the follower check while the first is mid-transition and fire
// the serving loops twice.
func (srv *Server) Promote() error {
	srv.promoteMu.Lock()
	defer srv.promoteMu.Unlock()
	if !srv.follow.Load() {
		return ErrAlreadyLeader
	}
	f := srv.fol
	f.stopLoop()
	f.mu.Lock()
	failure, off := f.failure, f.applied
	f.mu.Unlock()
	if failure != nil {
		return fmt.Errorf("server: cannot promote past a halted replica: %w", failure)
	}
	srv.lockAll()
	w, info, err := wal.Open(srv.cfg.WALPath, off, srv.walOptions(), srv.applyRecovered)
	if err != nil {
		srv.unlockAll()
		return fmt.Errorf("server: promote: %w", err)
	}
	srv.wal.Store(w)
	srv.stateMu.Lock()
	srv.recovered = wal.RecoverInfo{
		Records:   int(f.records) + info.Records,
		ValidSize: info.ValidSize,
		Dropped:   info.Dropped,
		TailErr:   info.TailErr,
	}
	srv.stateMu.Unlock()
	if info.TailErr != nil {
		log.Printf("server: promote: WAL tail truncated at offset %d (%d bytes dropped): %v",
			info.ValidSize, info.Dropped, info.TailErr)
	}
	srv.finishRecovery()
	srv.unlockAll()
	srv.startLoops()
	srv.follow.Store(false)
	log.Printf("server: promoted to leader at WAL offset %d (%d records tailed + %d replayed)",
		info.ValidSize, f.records, info.Records)
	return nil
}

// handlePromote is POST /admin/promote — the failover switch.
func (srv *Server) handlePromote(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		httpError(w, http.StatusMethodNotAllowed, "POST only")
		return
	}
	if err := srv.Promote(); err != nil {
		if errors.Is(err, ErrAlreadyLeader) {
			httpError(w, http.StatusConflict, err.Error())
			return
		}
		httpError(w, http.StatusInternalServerError, err.Error())
		return
	}
	writeJSON(w, http.StatusOK, struct {
		Role      string `json:"role"`
		WALOffset int64  `json:"wal_offset"`
	}{Role: srv.role(), WALOffset: srv.walOffset()})
}

type readyResponse struct {
	Ready  bool   `json:"ready"`
	Role   string `json:"role"`
	Reason string `json:"reason,omitempty"`
	Lag    int64  `json:"lag_bytes,omitempty"`
}

// handleReadyz is the readiness half of the liveness/readiness split:
// /healthz answers "is the process up", /readyz answers "should this
// process receive traffic". A follower is ready only when it has caught up
// to within the lag bound; a leader is ready unless it is closing or its
// WAL has failed.
func (srv *Server) handleReadyz(w http.ResponseWriter, r *http.Request) {
	resp := readyResponse{Role: srv.role()}
	if srv.closed.Load() {
		resp.Reason = "closing"
	} else if srv.follow.Load() {
		st := srv.fol.stats()
		resp.Lag = st.LagBytes
		if st.Failure != "" {
			resp.Reason = "replica halted: " + st.Failure
		} else if !st.Ready {
			resp.Reason = fmt.Sprintf("replaying: %d bytes behind", st.LagBytes)
		} else {
			resp.Ready = true
		}
	} else if srv.walBroken() {
		resp.Reason = "write-ahead log failed"
	} else {
		resp.Ready = true
	}
	code := http.StatusOK
	if !resp.Ready {
		code = http.StatusServiceUnavailable
	}
	writeJSON(w, code, resp)
}

func (srv *Server) role() string {
	if srv.follow.Load() {
		return "follower"
	}
	return "leader"
}
