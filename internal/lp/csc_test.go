package lp

import (
	"reflect"
	"testing"

	"github.com/ebsn/igepa/internal/xrand"
)

// The flat CSC layout must survive a round trip: assembly columns in,
// identical columns out, with a well-formed ColPtr.
func TestCSCRoundTrip(t *testing.T) {
	cols := []Column{
		{Rows: []int{0, 2}, Vals: []float64{1, 3}},
		{},                                   // empty column
		{Rows: []int{1}, Vals: []float64{7}}, // singleton
		{Rows: []int{2, 0, 1}, Vals: []float64{4, 5, 6}},
	}
	c := []float64{1, 2, 3, 4}
	p := NewProblem(3, []float64{1, 1, 1}, c, cols)
	if err := p.Check(); err != nil {
		t.Fatal(err)
	}
	if p.NumCols() != len(cols) || p.NNZ() != 6 {
		t.Fatalf("shape %d cols / %d nnz, want %d / 6", p.NumCols(), p.NNZ(), len(cols))
	}
	for j, col := range cols {
		rows, vals := p.Col(j)
		if len(rows) != len(col.Rows) {
			t.Fatalf("column %d has %d nonzeros, want %d", j, len(rows), len(col.Rows))
		}
		for k := range rows {
			if int(rows[k]) != col.Rows[k] || vals[k] != col.Vals[k] {
				t.Fatalf("column %d entry %d: (%d,%v) want (%d,%v)",
					j, k, rows[k], vals[k], col.Rows[k], col.Vals[k])
			}
		}
		if p.C[j] != c[j] {
			t.Fatalf("column %d objective %v, want %v", j, p.C[j], c[j])
		}
	}
}

// Incremental AddColumn must agree with one-shot NewProblem, Reserve must
// not disturb existing content, and the random-packing generator must
// produce internally consistent CSC.
func TestCSCIncrementalBuild(t *testing.T) {
	rng := xrand.New(9)
	want := randomPacking(rng, 8, 5, 4)
	n := want.NumCols()

	// rebuild column-by-column with interleaved Reserve calls
	got := &Problem{NumRows: want.NumRows, B: want.B}
	for j := 0; j < n; j++ {
		if j == 2 {
			got.Reserve(n, want.NNZ())
		}
		rows32, vals := want.Col(j)
		rows := make([]int, len(rows32))
		for k, r := range rows32 {
			rows[k] = int(r)
		}
		got.AddColumn(want.C[j], rows, vals)
	}
	if err := got.Check(); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got.ColPtr, want.ColPtr) ||
		!reflect.DeepEqual(got.Rows, want.Rows) ||
		!reflect.DeepEqual(got.Vals, want.Vals) ||
		!reflect.DeepEqual(got.C, want.C) {
		t.Fatal("incremental build diverged from original CSC arrays")
	}
	// and both solve to the same optimum
	a, err := Solve(want)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Solve(got)
	if err != nil {
		t.Fatal(err)
	}
	if a.Objective != b.Objective {
		t.Fatalf("objectives differ: %v vs %v", a.Objective, b.Objective)
	}
}

func TestAddColumnPanicsOnMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("mismatched rows/vals accepted")
		}
	}()
	(&Problem{NumRows: 1}).AddColumn(1, []int{0}, nil)
}
