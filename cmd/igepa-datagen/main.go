// Command igepa-datagen generates IGEPA problem instances as JSON: the
// Table I synthetic family or the Meetup-like real-data analogue. It can
// also emit a timestamped JSONL arrival log next to the instance, the
// streaming-ingestion input of cmd/igepa-serve.
//
// Usage:
//
//	igepa-datagen -kind synthetic -seed 1 -out instance.json
//	igepa-datagen -kind synthetic -events 300 -users 5000 -pcf 0.4
//	igepa-datagen -kind meetup -seed 1 -out meetup.json
//	igepa-datagen -kind meetup -out m.json -arrivals m-arrivals.jsonl -rate 2000
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"github.com/ebsn/igepa"
	"github.com/ebsn/igepa/internal/workload"
)

func main() {
	var (
		kind     = flag.String("kind", "synthetic", "dataset family: synthetic or meetup")
		seed     = flag.Int64("seed", 1, "generation seed")
		out      = flag.String("out", "", "output path (default stdout)")
		arrivals = flag.String("arrivals", "", "also write a timestamped JSONL arrival log to this path")
		rate     = flag.Float64("rate", 1000, "arrival log: mean arrivals per second")

		// Table I factors (synthetic)
		events = flag.Int("events", 0, "|V| (default 200)")
		users  = flag.Int("users", 0, "|U| (default 2000)")
		maxCv  = flag.Int("maxcv", 0, "max event capacity (default 50)")
		maxCu  = flag.Int("maxcu", 0, "max user capacity (default 4)")
		pcf    = flag.Float64("pcf", 0, "event conflict probability (default 0.3)")
		pdeg   = flag.Float64("pdeg", 0, "friendship probability (default 0.5)")
		beta   = flag.Float64("beta", 0, "utility balance β (default 0.5)")
	)
	flag.Parse()
	if err := run(*kind, *seed, *out, *arrivals, *rate, *events, *users, *maxCv, *maxCu, *pcf, *pdeg, *beta); err != nil {
		fmt.Fprintln(os.Stderr, "igepa-datagen:", err)
		os.Exit(1)
	}
}

func run(kind string, seed int64, out, arrivals string, rate float64, events, users, maxCv, maxCu int, pcf, pdeg, beta float64) error {
	var in *igepa.Instance
	var err error
	switch kind {
	case "synthetic":
		in, err = igepa.Synthetic(igepa.SyntheticConfig{
			Seed: seed, NumEvents: events, NumUsers: users,
			MaxEventCap: maxCv, MaxUserCap: maxCu,
			PConflict: pcf, PFriend: pdeg, Beta: beta,
		})
	case "meetup":
		in, err = igepa.Meetup(igepa.MeetupConfig{
			Seed: seed, NumEvents: events, NumUsers: users, Beta: beta,
		})
	default:
		return fmt.Errorf("unknown kind %q (want synthetic or meetup)", kind)
	}
	if err != nil {
		return err
	}

	var w io.Writer = os.Stdout
	if out != "" {
		f, err := os.Create(out)
		if err != nil {
			return err
		}
		defer f.Close()
		w = f
	}
	if err := igepa.SaveInstance(w, in); err != nil {
		return err
	}
	if arrivals != "" {
		if err := writeArrivalLog(arrivals, seed, in.NumUsers(), rate); err != nil {
			return err
		}
	}
	st := igepa.ComputeStats(in)
	fmt.Fprintf(os.Stderr, "generated %s: |V|=%d |U|=%d bids=%d conflict-rate=%.3f mean-degree=%.1f mean-DPI=%.3f\n",
		kind, st.NumEvents, st.NumUsers, st.TotalBids, st.ConflictRate, st.MeanDegree, st.MeanDPI)
	return nil
}

// writeArrivalLog emits the deterministic timestamped arrival stream for the
// instance: every user once, seeded random order, exponential gaps.
func writeArrivalLog(path string, seed int64, numUsers int, rate float64) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	arr := workload.SyntheticArrivals(seed, numUsers, rate)
	if err := workload.WriteArrivals(f, arr); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "wrote %d arrivals over %.1fs to %s\n",
		len(arr), float64(arr[len(arr)-1].TMillis)/1000, path)
	return nil
}
