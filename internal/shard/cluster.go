package shard

import (
	"fmt"
	"sort"

	"github.com/ebsn/igepa/internal/model"
)

// This file is the shard package's distributed-deployment surface: the
// single-shard ("cluster") engine mode that cmd/igepa-shardd hosts, the
// Migration wire type that moves a user range (decisions + consumed seats)
// between shards, and the Coordinator that runs the lease-renewal arithmetic
// at the router tier.
//
// The design invariant is that a cluster of S single-shard engines plus one
// Coordinator is the same machine as one S-shard Engine, cut along the shard
// boundary: initial budgets come from the identical even split, renewals run
// the identical leaseRenewer code over the identical (loads, budgets, demand)
// inputs, and installs copy the computed absolute budget vectors back into
// the shards. Decisions are therefore bit-identical to ServeSharded by
// construction, which is what the router's replay pin tests enforce.

// initialBudgets builds the initial lease table for an s-shard split of the
// instance: each event's capacity divided evenly, the remainder rotated by
// event index so no shard systematically collects the extra seats. This is
// the one copy of the rule, shared by NewEngine (whole table) and the
// cluster boot path (one row per process).
func initialBudgets(in *model.Instance, s int) [][]int {
	nv := in.NumEvents()
	budgets := make([][]int, s)
	for si := range budgets {
		budgets[si] = make([]int, nv)
	}
	for v := 0; v < nv; v++ {
		cv := in.Events[v].Capacity
		base, rem := cv/s, cv%s
		for si := 0; si < s; si++ {
			budgets[si][v] = base
		}
		for k := 0; k < rem; k++ {
			budgets[(v+k)%s][v]++
		}
	}
	return budgets
}

// ClusterShards returns the cluster width S (0 when this engine is not a
// cluster shard).
func (e *Engine) ClusterShards() int { return e.clusterS }

// ClusterIndex returns this engine's shard index within the cluster
// (meaningless unless ClusterShards > 0).
func (e *Engine) ClusterIndex() int { return e.clusterIdx }

// Owns reports whether this engine serves user u. Outside cluster mode every
// user is owned. In cluster mode ownership is the stateless hash partition,
// overridden per user by completed migrations (ExportUsers / AdoptUsers).
// Safe to call concurrently with serving; migrations mutate the override map
// under the engine's exclusion plus ownMu.
func (e *Engine) Owns(u int) bool {
	if e.clusterS == 0 {
		return true
	}
	e.ownMu.RLock()
	ov, ok := e.ownsOverride[u]
	e.ownMu.RUnlock()
	if ok {
		return ov
	}
	return ShardOf(e.opt.Seed, u, e.clusterS) == e.clusterIdx
}

// LoadVector returns the per-event seats currently granted by this engine
// (summed across local shards). The caller owns exclusion against serving.
func (e *Engine) LoadVector() []int {
	nv := e.in.NumEvents()
	loads := make([]int, nv)
	for v := 0; v < nv; v++ {
		loads[v] = e.EventLoad(v)
	}
	return loads
}

// InstallLease replaces this cluster shard's budget vector with a
// coordinator-computed one — the receiving half of the wire renewal
// protocol. The new budget must cover the seats already granted (renewal
// never revokes a grant) and stay within each event's capacity. Returns the
// seats gained relative to the old free headroom, mirroring the moved-seat
// accounting of the in-process renewer, and advances the renewal counter.
// The caller owns exclusion against serving.
func (e *Engine) InstallLease(budget []int) (int, error) {
	if e.clusterS == 0 {
		return 0, &ConfigError{Field: "ClusterShards", Reason: "InstallLease requires a cluster-mode engine"}
	}
	nv := e.in.NumEvents()
	if len(budget) != nv {
		return 0, &ConfigError{Field: "budget", Reason: fmt.Sprintf(
			"lease covers %d events, instance has %d", len(budget), nv)}
	}
	loads := e.planners[0].loads
	for v := 0; v < nv; v++ {
		if budget[v] < loads[v] {
			return 0, &LeaseError{Event: v, Leased: budget[v], Capacity: loads[v]}
		}
		if budget[v] > e.in.Events[v].Capacity {
			return 0, &LeaseError{Event: v, Leased: budget[v], Capacity: e.in.Events[v].Capacity}
		}
	}
	moved := 0
	for v := 0; v < nv; v++ {
		oldRem := e.budgets[0][v] - loads[v]
		if newRem := budget[v] - loads[v]; newRem > oldRem {
			moved += newRem - oldRem
		}
		e.budgets[0][v] = budget[v]
	}
	e.moved += moved
	e.renewals++
	return moved, nil
}

// Migration is the wire/WAL payload of a user-range handoff between cluster
// shards: the users, and for each their current assignment (nil when
// undecided or cancelled). Consumed seats travel with the decisions — the
// source's budget and load both shrink by each granted seat, the target's
// grow — so the cluster-wide lease invariant Σ_s budget[s][v] ≤ cv is
// preserved exactly through the move.
type Migration struct {
	Users []int   `json:"users"`
	Sets  [][]int `json:"sets"`
}

// ExportUsers removes the given users from this cluster shard for migration:
// their decisions leave the arrangement part, their consumed seats leave both
// the load and the budget vector, their utility contribution is subtracted,
// and ownership is overridden off. The caller owns exclusion against serving
// and must have quiesced any queued work for these users (the router drains
// the source first). Returns the Migration payload to adopt elsewhere.
func (e *Engine) ExportUsers(users []int) (*Migration, error) {
	if e.clusterS == 0 {
		return nil, &ConfigError{Field: "ClusterShards", Reason: "ExportUsers requires a cluster-mode engine"}
	}
	nu := e.in.NumUsers()
	for _, u := range users {
		if u < 0 || u >= nu {
			return nil, &ConfigError{Field: "users", Reason: fmt.Sprintf("unknown user %d", u)}
		}
		if !e.Owns(u) {
			return nil, &ConfigError{Field: "users", Reason: fmt.Sprintf("user %d is not owned by this shard", u)}
		}
	}
	m := &Migration{Users: append([]int(nil), users...), Sets: make([][]int, len(users))}
	e.ownMu.Lock()
	for i, u := range users {
		set := e.parts[0].Sets[u]
		if len(set) > 0 {
			m.Sets[i] = append([]int(nil), set...)
			for _, v := range set {
				e.planners[0].loads[v]--
				e.budgets[0][v]--
				e.shardUtil[0] -= e.wc.Of(u, v)
			}
			e.parts[0].Sets[u] = nil
		}
		e.ownsOverride[u] = false
	}
	e.ownMu.Unlock()
	return m, nil
}

// AdoptUsers installs a Migration exported by another cluster shard: the
// decisions enter this shard's arrangement part, the consumed seats enter
// its load and budget vectors, the utility contributions are added, and
// ownership is overridden on. The caller owns exclusion against serving.
func (e *Engine) AdoptUsers(m *Migration) error {
	if e.clusterS == 0 {
		return &ConfigError{Field: "ClusterShards", Reason: "AdoptUsers requires a cluster-mode engine"}
	}
	if m == nil || len(m.Users) != len(m.Sets) {
		return &ConfigError{Field: "migration", Reason: "users and sets must be the same length"}
	}
	nu, nv := e.in.NumUsers(), e.in.NumEvents()
	for i, u := range m.Users {
		if u < 0 || u >= nu {
			return &ConfigError{Field: "migration", Reason: fmt.Sprintf("unknown user %d", u)}
		}
		if e.Owns(u) {
			return &ConfigError{Field: "migration", Reason: fmt.Sprintf("user %d is already owned by this shard", u)}
		}
		for _, v := range m.Sets[i] {
			if v < 0 || v >= nv {
				return &ConfigError{Field: "migration", Reason: fmt.Sprintf("user %d assigned unknown event %d", u, v)}
			}
		}
	}
	e.ownMu.Lock()
	for i, u := range m.Users {
		if set := m.Sets[i]; len(set) > 0 {
			e.parts[0].Sets[u] = append([]int(nil), set...)
			for _, v := range set {
				e.planners[0].loads[v]++
				e.budgets[0][v]++
				e.shardUtil[0] += e.wc.Of(u, v)
			}
		}
		e.ownsOverride[u] = true
	}
	e.ownMu.Unlock()
	return nil
}

// ownershipOverrides snapshots the migration override map as two sorted user
// lists (adopted onto this shard; exported off it) — the checkpoint encoding.
func (e *Engine) ownershipOverrides() (owned, disowned []int) {
	e.ownMu.RLock()
	for u, ov := range e.ownsOverride {
		if ov {
			owned = append(owned, u)
		} else {
			disowned = append(disowned, u)
		}
	}
	e.ownMu.RUnlock()
	sort.Ints(owned)
	sort.Ints(disowned)
	return owned, disowned
}

// restoreOwnership installs checkpointed override lists.
func (e *Engine) restoreOwnership(owned, disowned []int) {
	e.ownMu.Lock()
	for _, u := range owned {
		e.ownsOverride[u] = true
	}
	for _, u := range disowned {
		e.ownsOverride[u] = false
	}
	e.ownMu.Unlock()
}

// --- Coordinator ----------------------------------------------------------

// Coordinator runs the lease-renewal rounds for a cluster of single-shard
// engines — the router tier's half of the wire renewal protocol. It holds
// the cluster-wide view the in-process Engine keeps for itself: the full
// budget table and the per-shard load vectors (refreshed from the shards'
// demand responses each round). Renew executes the identical leaseRenewer
// code the in-process engine runs, so the budget vectors it hands back for
// installation are bit-identical to a single-process renewal over the same
// state.
//
// A Coordinator is not synchronized; the router serializes Renew against
// SetLoads and TransferSeats.
type Coordinator struct {
	in       *model.Instance
	opt      Options
	s, nv    int
	budgets  [][]int
	planners []shardPlanner // loads only; arrive/release never called
	renewer  *leaseRenewer

	renewals, moved int
}

// NewCoordinator validates the options and assembles the cluster-wide
// renewal state for an Options.Shards-wide cluster.
func NewCoordinator(in *model.Instance, opt Options) (*Coordinator, error) {
	if in == nil {
		return nil, &ConfigError{Field: "instance", Reason: "nil instance"}
	}
	if err := in.Check(); err != nil {
		return nil, &ConfigError{Field: "instance", Reason: err.Error()}
	}
	if opt.Shards <= 0 {
		return nil, &ConfigError{Field: "Shards", Reason: fmt.Sprintf("must be positive, got %d", opt.Shards)}
	}
	switch opt.Lease {
	case LeaseDemand, LeaseEven, LeaseLP:
	default:
		return nil, &ConfigError{Field: "Lease", Reason: fmt.Sprintf("unknown lease policy %v", opt.Lease)}
	}
	c := &Coordinator{
		in: in, opt: opt, s: opt.Shards, nv: in.NumEvents(),
		budgets:  initialBudgets(in, opt.Shards),
		planners: make([]shardPlanner, opt.Shards),
	}
	for si := range c.planners {
		c.planners[si] = shardPlanner{loads: make([]int, c.nv)}
	}
	c.renewer = newLeaseRenewer(in, c.budgets, c.planners, opt)
	return c, nil
}

// Close releases the renewer's LP solver state (LeaseLP only). Idempotent.
func (c *Coordinator) Close() {
	if c != nil {
		c.renewer.close()
		c.renewer = nil
	}
}

// SetLoads installs shard si's reported per-event load vector — phase one of
// a renewal round.
func (c *Coordinator) SetLoads(si int, loads []int) error {
	if si < 0 || si >= c.s {
		return &ConfigError{Field: "shard", Reason: fmt.Sprintf("shard %d outside [0,%d)", si, c.s)}
	}
	if len(loads) != c.nv {
		return &ConfigError{Field: "loads", Reason: fmt.Sprintf(
			"load vector covers %d events, instance has %d", len(loads), c.nv)}
	}
	for v, l := range loads {
		if l < 0 || l > c.in.Events[v].Capacity {
			return &ConfigError{Field: "loads", Reason: fmt.Sprintf(
				"shard %d reports load %d for event %d (capacity %d)", si, l, v, c.in.Events[v].Capacity)}
		}
	}
	copy(c.planners[si].loads, loads)
	return nil
}

// Renew runs one renewal round over the installed loads, fed with the queued
// demand snapshot, and returns the seats that changed owner. It re-checks
// the lease invariant exactly as Engine.RenewLeases does. After Renew, each
// Budget(si) is the absolute vector to install on shard si.
func (c *Coordinator) Renew(next []int) (int, error) {
	if c.renewer == nil {
		return 0, &ConfigError{Field: "coordinator", Reason: "closed"}
	}
	moved := c.renewer.renew(c.renewals+1, next)
	c.moved += moved
	c.renewals++
	for v := 0; v < c.nv; v++ {
		sum := 0
		for si := 0; si < c.s; si++ {
			sum += c.budgets[si][v]
		}
		if sum != c.in.Events[v].Capacity {
			return moved, &LeaseError{Event: v, Leased: sum, Capacity: c.in.Events[v].Capacity}
		}
	}
	return moved, nil
}

// Budget returns a copy of shard si's current budget vector.
func (c *Coordinator) Budget(si int) []int {
	return append([]int(nil), c.budgets[si]...)
}

// Renewals returns the renewal rounds run so far.
func (c *Coordinator) Renewals() int { return c.renewals }

// MovedSeats returns the total seats that changed owner across renewals.
func (c *Coordinator) MovedSeats() int { return c.moved }

// Shards returns the cluster width.
func (c *Coordinator) Shards() int { return c.s }

// TransferSeats mirrors a user-range migration in the coordinator's view:
// seats[v] consumed seats (budget and load) move from shard `from` to shard
// `to` per event. The per-event budget sums are unchanged, so the lease
// invariant is preserved by construction.
func (c *Coordinator) TransferSeats(from, to int, seats []int) error {
	if from < 0 || from >= c.s || to < 0 || to >= c.s || from == to {
		return &ConfigError{Field: "shard", Reason: fmt.Sprintf("bad transfer %d -> %d for %d shards", from, to, c.s)}
	}
	if len(seats) != c.nv {
		return &ConfigError{Field: "seats", Reason: fmt.Sprintf(
			"seat vector covers %d events, instance has %d", len(seats), c.nv)}
	}
	for v, n := range seats {
		if n < 0 {
			return &ConfigError{Field: "seats", Reason: fmt.Sprintf("negative seat count %d for event %d", n, v)}
		}
		if c.budgets[from][v]-n < 0 {
			return &ConfigError{Field: "seats", Reason: fmt.Sprintf(
				"transfer of %d seats of event %d exceeds shard %d's budget %d", n, v, from, c.budgets[from][v])}
		}
	}
	for v, n := range seats {
		c.budgets[from][v] -= n
		c.budgets[to][v] += n
		c.planners[from].loads[v] -= n
		c.planners[to].loads[v] += n
	}
	return nil
}
