package core

import (
	"reflect"
	"runtime"
	"testing"

	"github.com/ebsn/igepa/internal/lp"
	"github.com/ebsn/igepa/internal/model"
	"github.com/ebsn/igepa/internal/workload"
)

// parallelTestInstance is the fixture for the worker-invariance tests:
// large enough that enumeration and sampling fan out over many pool chunks,
// small enough to keep the tests fast. Its LP (n+m ≈ 9400) sits below the
// revised solver's default Devex parallel threshold, so the Devex pool is
// exercised by forcing ParallelThreshold (see the Devex test below).
func parallelTestInstance(t *testing.T) *model.Instance {
	t.Helper()
	in, err := workload.Synthetic(workload.SyntheticConfig{
		Seed: 5, NumUsers: 700, NumEvents: 70,
		MaxEventCap: 12, MaxUserCap: 4, MinBids: 4, MaxBids: 7,
	})
	if err != nil {
		t.Fatal(err)
	}
	return in
}

// sameResult asserts bit-identical arrangements, utilities and LP
// objectives — the determinism contract of the parallel pipeline.
func sameResult(t *testing.T, label string, a, b *Result) {
	t.Helper()
	if !reflect.DeepEqual(a.Arrangement.Sets, b.Arrangement.Sets) {
		t.Fatalf("%s: arrangements differ", label)
	}
	if a.Utility != b.Utility {
		t.Fatalf("%s: utilities differ: %v vs %v", label, a.Utility, b.Utility)
	}
	if a.LPObjective != b.LPObjective {
		t.Fatalf("%s: LP objectives differ: %v vs %v", label, a.LPObjective, b.LPObjective)
	}
	if a.SampledPairs != b.SampledPairs || a.RepairDropped != b.RepairDropped {
		t.Fatalf("%s: diagnostics differ: %+v vs %+v", label, a, b)
	}
}

// LPPacking must produce bit-identical results for every worker count.
func TestLPPackingWorkerCountInvariance(t *testing.T) {
	in := parallelTestInstance(t)
	ref, err := LPPacking(in, Options{Seed: 42, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	if err := model.Validate(in, ref.Arrangement); err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{2, 4, 8} {
		got, err := LPPacking(in, Options{Seed: 42, Workers: workers})
		if err != nil {
			t.Fatal(err)
		}
		sameResult(t, "workers="+string(rune('0'+workers)), ref, got)
	}
}

// The Devex pricing pool must not change the solve: force Devex pricing
// (the auto rule would pick Dantzig at this row count) with
// ParallelThreshold 1 so the pooled update/price/refresh passes genuinely
// run on this LP, and compare solver worker counts, including pools wider
// than the chunk count.
func TestLPPackingDevexWorkerInvariance(t *testing.T) {
	in := parallelTestInstance(t)
	run := func(workers int) *Result {
		res, err := LPPacking(in, Options{
			Seed:    7,
			Workers: workers,
			Solver: &lp.Revised{
				Pricing:           "devex",
				Workers:           workers,
				ParallelThreshold: 1,
			},
		})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	ref := run(1)
	for _, workers := range []int{2, 5} {
		sameResult(t, "devex workers", ref, run(workers))
	}
}

// And the same end-to-end under different GOMAXPROCS values, which drive
// every auto-sized worker pool in the pipeline.
func TestLPPackingGOMAXPROCSInvariance(t *testing.T) {
	in := parallelTestInstance(t)
	old := runtime.GOMAXPROCS(0)
	defer runtime.GOMAXPROCS(old)

	runtime.GOMAXPROCS(1)
	ref, err := LPPacking(in, Options{Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	runtime.GOMAXPROCS(4)
	got, err := LPPacking(in, Options{Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	sameResult(t, "GOMAXPROCS 1 vs 4", ref, got)
}
