package core

import (
	"math"
	"testing"
	"testing/quick"

	"github.com/ebsn/igepa/internal/admissible"
	"github.com/ebsn/igepa/internal/conflict"
	"github.com/ebsn/igepa/internal/model"
	"github.com/ebsn/igepa/internal/model/modeltest"
	"github.com/ebsn/igepa/internal/xrand"
)

// tinyInstance: 3 events (caps 2,1,1; 0-1 conflict), 3 users, β=0.5.
func tinyInstance() *model.Instance {
	si := [][]float64{
		{0.9, 0.5, 0.1},
		{0.4, 0.8, 0.0},
		{0.0, 0.0, 0.7},
	}
	in := &model.Instance{
		Events: []model.Event{{Capacity: 2}, {Capacity: 1}, {Capacity: 1}},
		Users: []model.User{
			{Capacity: 2, Bids: []int{0, 1, 2}, Degree: 2},
			{Capacity: 1, Bids: []int{0, 1}, Degree: 1},
			{Capacity: 1, Bids: []int{2}, Degree: 0},
		},
		Conflicts: func(v, w int) bool {
			return (v == 0 && w == 1) || (v == 1 && w == 0)
		},
		Interest: func(u, v int) float64 { return si[u][v] },
		Beta:     0.5,
	}
	return in
}

// randomInstance builds a small random instance for property tests.
func randomInstance(seed int64) *model.Instance {
	rng := xrand.New(seed)
	nv := 2 + rng.Intn(8)
	nu := 2 + rng.Intn(10)
	conf := conflict.Random(nv, rng.Float64()*0.6, rng)
	in := &model.Instance{
		Conflicts: conf.Conflicts,
		Interest:  func(u, v int) float64 { return xrand.HashFloat(seed, u, v) },
		Beta:      rng.Float64(),
	}
	for v := 0; v < nv; v++ {
		in.Events = append(in.Events, model.Event{Capacity: 1 + rng.Intn(4)})
	}
	for u := 0; u < nu; u++ {
		nb := 1 + rng.Intn(nv)
		seen := map[int]bool{}
		var bids []int
		for len(bids) < nb {
			v := rng.Intn(nv)
			if !seen[v] {
				seen[v] = true
				bids = append(bids, v)
			}
		}
		sortInts(bids)
		in.Users = append(in.Users, model.User{
			Capacity: 1 + rng.Intn(3),
			Bids:     bids,
			Degree:   rng.Intn(nu),
		})
	}
	return in
}

func sortInts(s []int) {
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j] < s[j-1]; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
}

func TestLPPackingFeasibleOnTiny(t *testing.T) {
	in := tinyInstance()
	res, err := LPPacking(in, Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	modeltest.RequireFeasible(t, "lp-packing-tiny", in, res.Arrangement)
	if res.Utility < 0 || res.Utility > res.LPObjective+1e-9 {
		t.Errorf("utility %v outside [0, LP=%v]", res.Utility, res.LPObjective)
	}
	if math.Abs(res.Utility-model.Utility(in, res.Arrangement)) > 1e-12 {
		t.Error("reported utility disagrees with model.Utility")
	}
}

// The LP optimum of the tiny instance: every user can be served their best
// non-conflicting bundle, so the LP is integral here. OPT:
//
//	u0 best set {0,2}: 0.5(0.9+0.1)+0.5(1+1) = 0.5+1.0 = 1.5
//	u1 {1}: 0.5·0.8+0.5·0.5 = 0.65
//	u2 {2}: 0.5·0.7 = 0.35 — but event 2 has capacity 1 and u0 uses it.
//
// LP must choose: give event 2 to u0 (worth 0.55 to u0: 0.5·0.1+0.5·0.5) or
// to u2 (0.35). u0's DPI is 1 so every event is worth ≥0.5 to u0.
// OPT = u0 {0,2} (1.5) + u1 {1} (0.65) = 2.15.
func TestLPPackingLPBoundOnTiny(t *testing.T) {
	in := tinyInstance()
	res, err := LPPacking(in, Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.LPObjective-2.15) > 1e-6 {
		t.Errorf("LP objective %v, want 2.15", res.LPObjective)
	}
	// with α=1 and an integral LP the sampling is deterministic: full value
	if math.Abs(res.Utility-2.15) > 1e-6 {
		t.Errorf("utility %v, want 2.15 (integral LP, α=1)", res.Utility)
	}
}

func TestLPPackingDeterministicPerSeed(t *testing.T) {
	in := tinyInstance()
	a, err := LPPacking(in, Options{Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	b, err := LPPacking(in, Options{Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	if a.Utility != b.Utility {
		t.Errorf("same seed, different utilities: %v vs %v", a.Utility, b.Utility)
	}
}

func TestLPPackingAlphaValidation(t *testing.T) {
	in := tinyInstance()
	if _, err := LPPacking(in, Options{Alpha: 1.5}); err == nil {
		t.Error("alpha > 1 accepted")
	}
	if _, err := LPPacking(in, Options{Alpha: -0.1}); err == nil {
		t.Error("alpha < 0 accepted")
	}
	if _, err := LPPacking(in, Options{Alpha: 0.5, Seed: 3}); err != nil {
		t.Errorf("alpha = 0.5 rejected: %v", err)
	}
}

func TestLPPackingRejectsMalformedInstance(t *testing.T) {
	in := tinyInstance()
	in.Beta = 2
	if _, err := LPPacking(in, Options{}); err == nil {
		t.Error("malformed instance accepted")
	}
}

// Property: LP-packing always returns a feasible arrangement whose utility
// never exceeds the LP bound, for any seed/instance/α/repair order.
func TestLPPackingAlwaysFeasible(t *testing.T) {
	f := func(seed int64) bool {
		in := randomInstance(seed)
		for _, alpha := range []float64{0.5, 1} {
			for _, order := range []RepairOrder{RepairByIndex, RepairRandom, RepairByWeightAsc} {
				res, err := LPPacking(in, Options{Alpha: alpha, Seed: seed, Repair: order})
				if err != nil {
					return false
				}
				if modeltest.Check(in, res.Arrangement) != nil {
					return false
				}
				if res.Utility > res.LPObjective+1e-6 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestGreedyFillOnlyImproves(t *testing.T) {
	f := func(seed int64) bool {
		in := randomInstance(seed)
		plain, err := LPPacking(in, Options{Seed: seed})
		if err != nil {
			return false
		}
		filled, err := LPPacking(in, Options{Seed: seed, GreedyFill: true})
		if err != nil {
			return false
		}
		if modeltest.Check(in, filled.Arrangement) != nil {
			return false
		}
		// same seed → same sampled sets → fill can only add value
		return filled.Utility >= plain.Utility-1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestBuildBenchmarkLPShape(t *testing.T) {
	in := tinyInstance()
	conf := conflict.FromFunc(in.NumEvents(), in.Conflicts)
	sets, trunc := enumerateAll(in, conf, 0, 1)
	if trunc != 0 {
		t.Fatalf("unexpected truncation")
	}
	// u0: bids {0,1,2} cap 2, 0-1 conflict → {0},{1},{2},{0,2},{1,2} = 5
	// u1: bids {0,1} cap 1 → {0},{1} = 2
	// u2: {2} = 1
	if len(sets[0]) != 5 || len(sets[1]) != 2 || len(sets[2]) != 1 {
		t.Fatalf("set counts %d,%d,%d, want 5,2,1", len(sets[0]), len(sets[1]), len(sets[2]))
	}
	prob, owner := BuildBenchmarkLP(in, sets)
	if prob.NumCols() != 8 || len(owner) != 8 {
		t.Fatalf("LP has %d columns, want 8", prob.NumCols())
	}
	if prob.NumRows != 6 {
		t.Fatalf("LP has %d rows, want 6", prob.NumRows)
	}
	if err := prob.Check(); err != nil {
		t.Fatal(err)
	}
	// every column: coefficient 1 in its user row and in each event row
	for j := 0; j < prob.NumCols(); j++ {
		rows, vals := prob.Col(j)
		u := owner[j][0]
		s := sets[u][owner[j][1]]
		if int(rows[0]) != u {
			t.Fatalf("column %d first row %d, want user %d", j, rows[0], u)
		}
		if len(rows) != len(s.Events)+1 {
			t.Fatalf("column %d has %d rows for set of %d events", j, len(rows), len(s.Events))
		}
		for k := range vals {
			if vals[k] != 1 {
				t.Fatalf("column %d has non-unit coefficient %v", j, vals[k])
			}
		}
		if math.Abs(prob.C[j]-s.Weight) > 1e-12 {
			t.Fatalf("column %d objective %v, want %v", j, prob.C[j], s.Weight)
		}
	}
}

func TestSampleSetsRespectsAlpha(t *testing.T) {
	// one user, one set with x* = 1: with α=1 always sampled; with α=0.25
	// sampled about a quarter of the seeds (each seed is one independent
	// draw from the user's stream).
	sets := [][]admissible.Set{{{Events: []int{0}, Weight: 1}}}
	owner := [][2]int{{0, 0}}
	x := []float64{1}
	hits := 0
	const trials = 20000
	for i := 0; i < trials; i++ {
		if SampleSets(1, sets, owner, x, 0.25, int64(i), 1)[0] == 0 {
			hits++
		}
	}
	if p := float64(hits) / trials; math.Abs(p-0.25) > 0.01 {
		t.Errorf("sampling rate %v, want ≈0.25", p)
	}
	for i := 0; i < 100; i++ {
		if SampleSets(1, sets, owner, x, 1, int64(i), 1)[0] != 0 {
			t.Fatal("α=1 with x*=1 failed to sample the set")
		}
	}
}

func TestSampleSetsHandlesRoundoff(t *testing.T) {
	// x* sums to slightly above 1 (LP tolerance); must not panic and must
	// still sample a valid index.
	sets := [][]admissible.Set{{
		{Events: []int{0}, Weight: 1},
		{Events: []int{1}, Weight: 1},
	}}
	owner := [][2]int{{0, 0}, {0, 1}}
	x := []float64{0.7, 0.3000001}
	for i := 0; i < 1000; i++ {
		got := SampleSets(1, sets, owner, x, 1, int64(i), 0)[0]
		if got != 0 && got != 1 {
			t.Fatalf("sampled %d", got)
		}
	}
}

func TestRepairSemantics(t *testing.T) {
	// Event 0 capacity 1, three users sampled {0}: index order keeps the
	// LAST scanned holders after drops — verify exactly: load=3, cap=1:
	// u0 scanned: load 3 > 1 → drop, load 2. u1: 2 > 1 → drop, load 1.
	// u2: 1 ≤ 1 → keep.
	in := &model.Instance{
		Events: []model.Event{{Capacity: 1}},
		Users: []model.User{
			{Capacity: 1, Bids: []int{0}},
			{Capacity: 1, Bids: []int{0}},
			{Capacity: 1, Bids: []int{0}},
		},
		Conflicts: func(v, w int) bool { return false },
		Interest:  func(u, v int) float64 { return 1 },
		Beta:      1,
	}
	sets := [][]admissible.Set{
		{{Events: []int{0}, Weight: 1}},
		{{Events: []int{0}, Weight: 1}},
		{{Events: []int{0}, Weight: 1}},
	}
	chosen := []int{0, 0, 0}
	arr, dropped := Repair(in, sets, chosen, RepairByIndex, xrand.New(1))
	if dropped != 2 {
		t.Fatalf("dropped = %d, want 2", dropped)
	}
	if len(arr.Sets[0]) != 0 || len(arr.Sets[1]) != 0 || len(arr.Sets[2]) != 1 {
		t.Fatalf("repair kept wrong users: %v", arr.Sets)
	}
	if err := model.Validate(in, arr); err != nil {
		t.Fatal(err)
	}
}

func TestRepairWeightOrderKeepsHeavy(t *testing.T) {
	// Same contention, distinct weights: weight-ascending scan drops the
	// light users first, so the heaviest holder survives.
	in := &model.Instance{
		Events: []model.Event{{Capacity: 1}},
		Users: []model.User{
			{Capacity: 1, Bids: []int{0}},
			{Capacity: 1, Bids: []int{0}},
			{Capacity: 1, Bids: []int{0}},
		},
		Conflicts: func(v, w int) bool { return false },
		Interest: func(u, v int) float64 {
			return []float64{0.2, 0.9, 0.5}[u]
		},
		Beta: 1,
	}
	sets := [][]admissible.Set{
		{{Events: []int{0}, Weight: 0.2}},
		{{Events: []int{0}, Weight: 0.9}},
		{{Events: []int{0}, Weight: 0.5}},
	}
	arr, dropped := Repair(in, sets, []int{0, 0, 0}, RepairByWeightAsc, xrand.New(1))
	if dropped != 2 {
		t.Fatalf("dropped = %d, want 2", dropped)
	}
	if len(arr.Sets[1]) != 1 {
		t.Fatalf("heaviest user lost its event: %v", arr.Sets)
	}
}

func TestRepairNeverExceedsCapacityProperty(t *testing.T) {
	f := func(seed int64) bool {
		in := randomInstance(seed)
		conf := conflict.FromFunc(in.NumEvents(), in.Conflicts)
		sets, _ := enumerateAll(in, conf, 0, 1)
		rng := xrand.New(seed)
		chosen := make([]int, in.NumUsers())
		for u := range chosen {
			if len(sets[u]) == 0 {
				chosen[u] = -1
			} else {
				chosen[u] = rng.Intn(len(sets[u])) // ignore LP: adversarial
			}
		}
		for _, order := range []RepairOrder{RepairByIndex, RepairRandom, RepairByWeightAsc} {
			arr, _ := Repair(in, sets, chosen, order, xrand.New(seed+1))
			arr.Normalize()
			if model.Validate(in, arr) != nil {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestRepairOrderString(t *testing.T) {
	if RepairByIndex.String() != "index" || RepairRandom.String() != "random" ||
		RepairByWeightAsc.String() != "weight-asc" || RepairOrder(9).String() == "" {
		t.Error("RepairOrder.String broken")
	}
}
