// Package admissible enumerates admissible event sets (paper §III): for a
// user u with bid set Nu and capacity cu, the admissible sets Au are all
// nonempty S ⊆ Nu with |S| ≤ cu whose events are pairwise non-conflicting.
// These sets are the variables of the benchmark LP, so the enumeration order
// and the truncation policy directly shape the LP the solver sees.
//
// Note on the paper text: §III literally defines admissible sets with
// σ(lv,lv') = 1 for members; that is a typo for σ = 0 (conflict-free), the
// only reading consistent with the conflict constraint of Definition 4. See
// DESIGN.md.
package admissible

import (
	"sort"

	"github.com/ebsn/igepa/internal/bitset"
	"github.com/ebsn/igepa/internal/conflict"
)

// Set is one admissible event set S with its weight w(u,S) = Σ_{v∈S} w(u,v).
type Set struct {
	Events []int // sorted ascending
	Weight float64
}

// Config controls enumeration.
type Config struct {
	// MaxSetsPerUser truncates the enumeration after this many sets
	// (0 means DefaultMaxSetsPerUser; negative means unlimited). Candidates
	// are explored heaviest-first, so truncation keeps weight-dense sets;
	// all singletons are always retained. Truncation is reported to the
	// caller via Result.Truncated, never silent.
	MaxSetsPerUser int
}

// DefaultMaxSetsPerUser bounds the per-user LP column count. The paper
// assumes "a user will not bid for too many events, so the number of
// admissible event sets will be reasonable"; the cap is a guard rail for
// adversarial inputs, not something the reference workloads hit.
const DefaultMaxSetsPerUser = 20000

// Result is the enumeration outcome for one user.
type Result struct {
	Sets      []Set
	Truncated bool // true if MaxSetsPerUser cut the enumeration short
}

// Enumerate returns the admissible sets for one user.
//
// bids must be the user's bid set (duplicates ignored); cap is cu; conflicts
// is the event-conflict matrix; weight(v) returns w(u,v) ≥ 0 for this user.
// Enumeration is exhaustive DFS over bids ordered by descending weight, so
// when the cap bites, the retained sets are the heavy ones.
func Enumerate(bids []int, cap int, conflicts *conflict.Matrix, weight func(v int) float64, cfg Config) Result {
	maxSets := cfg.MaxSetsPerUser
	if maxSets == 0 {
		maxSets = DefaultMaxSetsPerUser
	}
	if cap <= 0 || len(bids) == 0 {
		return Result{}
	}

	// Candidate order: descending weight, stable on event id so the
	// enumeration (and therefore the LP column order) is deterministic.
	cands := append([]int(nil), bids...)
	sort.Ints(cands)
	cands = dedupe(cands)
	sort.SliceStable(cands, func(i, j int) bool {
		return weight(cands[i]) > weight(cands[j])
	})

	e := &enumerator{
		cands:     cands,
		cap:       cap,
		conflicts: conflicts,
		weight:    weight,
		maxSets:   maxSets,
		blocked:   bitset.New(conflicts.Len()),
	}
	e.cur = make([]int, 0, cap)
	e.dfs(0, 0)

	// Guarantee all singletons survive truncation: they are the fallback
	// mass the rounding step needs for every biddable event.
	if e.truncated {
		have := make(map[int]bool, len(e.sets))
		for _, s := range e.sets {
			if len(s.Events) == 1 {
				have[s.Events[0]] = true
			}
		}
		for _, v := range cands {
			if !have[v] {
				e.sets = append(e.sets, Set{Events: []int{v}, Weight: weight(v)})
			}
		}
	}
	for i := range e.sets {
		sort.Ints(e.sets[i].Events)
	}
	return Result{Sets: e.sets, Truncated: e.truncated}
}

type enumerator struct {
	cands     []int
	cap       int
	conflicts *conflict.Matrix
	weight    func(v int) float64
	maxSets   int

	cur       []int
	curWeight float64
	blocked   *bitset.Set // events conflicting with anything in cur
	blockedBy []int       // stack of blocked events, unwound on backtrack
	sets      []Set
	truncated bool
}

// dfs extends the current set with candidates from index i onward.
// include-first order emits heavy supersets before exploring alternatives.
func (e *enumerator) dfs(i int, depth int) {
	if e.truncated {
		return
	}
	for ; i < len(e.cands); i++ {
		v := e.cands[i]
		if e.blocked.Contains(v) {
			continue
		}
		e.cur = append(e.cur, v)
		e.curWeight += e.weight(v)
		e.sets = append(e.sets, Set{
			Events: append([]int(nil), e.cur...),
			Weight: e.curWeight,
		})
		if e.maxSets > 0 && len(e.sets) >= e.maxSets {
			e.truncated = true
		}
		if depth+1 < e.cap && !e.truncated {
			// block v's conflict row for the deeper levels
			row := e.conflicts.Row(v)
			mark := len(e.blockedBy)
			e.blockRow(row)
			e.dfs(i+1, depth+1)
			e.unblock(mark)
		}
		e.curWeight -= e.weight(v)
		e.cur = e.cur[:len(e.cur)-1]
		if e.truncated {
			return
		}
	}
}

// blockRow marks all events in row as blocked, pushing the newly blocked
// ones onto the shared backtrack stack (one reusable slice for the whole
// enumeration instead of one allocation per DFS node).
func (e *enumerator) blockRow(row *bitset.Set) {
	row.ForEach(func(w int) {
		if !e.blocked.Contains(w) {
			e.blocked.Add(w)
			e.blockedBy = append(e.blockedBy, w)
		}
	})
}

// unblock unwinds the backtrack stack to mark.
func (e *enumerator) unblock(mark int) {
	for _, w := range e.blockedBy[mark:] {
		e.blocked.Remove(w)
	}
	e.blockedBy = e.blockedBy[:mark]
}

func dedupe(sorted []int) []int {
	out := sorted[:0]
	for i, v := range sorted {
		if i == 0 || v != sorted[i-1] {
			out = append(out, v)
		}
	}
	return out
}

// CountAll returns the total number of admissible sets across users without
// materializing them (used by instance statistics and capacity planning).
func CountAll(allBids [][]int, caps []int, conflicts *conflict.Matrix) int {
	total := 0
	for u, bids := range allBids {
		r := Enumerate(bids, caps[u], conflicts, func(int) float64 { return 0 }, Config{MaxSetsPerUser: -1})
		total += len(r.Sets)
	}
	return total
}
