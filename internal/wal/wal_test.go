package wal

import (
	"bytes"
	"encoding/binary"
	"errors"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"reflect"
	"testing"
	"time"

	"github.com/ebsn/igepa/internal/faultfs"
)

// frame builds one valid frame for a payload.
func frame(payload []byte) []byte {
	out := make([]byte, headerSize+len(payload))
	binary.LittleEndian.PutUint32(out[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(out[4:8], crc32.Checksum(payload, castagnoli))
	copy(out[headerSize:], payload)
	return out
}

func fixtureOps(n int) []Op {
	ops := make([]Op, n)
	for i := range ops {
		switch i % 4 {
		case 0:
			ops[i] = Op{Kind: OpBid, TMillis: int64(i), User: i}
		case 1:
			ops[i] = Op{Kind: OpBatch, Users: []int{i, i + 1}}
		case 2:
			ops[i] = Op{Kind: OpCancel, User: i}
		default:
			ops[i] = Op{Kind: OpSetBids, User: i, Bids: []int{0, 2, 5}}
		}
	}
	return ops
}

func TestWriterRoundtrip(t *testing.T) {
	for _, sync := range []SyncPolicy{SyncAlways, SyncInterval, SyncOff} {
		t.Run(sync.String(), func(t *testing.T) {
			mem := &faultfs.MemFile{}
			w := NewWriter(mem, 0, Options{Sync: sync, SyncInterval: time.Millisecond})
			ops := fixtureOps(17)
			var wantOff int64
			for _, op := range ops {
				off, err := w.Append(op)
				if err != nil {
					t.Fatalf("Append: %v", err)
				}
				wantOff += int64(headerSize + len(op.Encode()))
				if off != wantOff {
					t.Fatalf("offset %d after append, want %d", off, wantOff)
				}
			}
			if err := w.Commit(); err != nil {
				t.Fatalf("Commit: %v", err)
			}
			// before Close: Close always fsyncs (clean shutdown durability),
			// so the policy distinction is only visible here
			if sync == SyncOff && w.Stats().Syncs != 0 {
				t.Fatalf("SyncOff issued %d fsyncs before Close", w.Stats().Syncs)
			}
			if err := w.Close(); err != nil {
				t.Fatalf("Close: %v", err)
			}
			payloads, valid, tailErr := Scan(bytes.NewReader(mem.Bytes()))
			if tailErr != nil {
				t.Fatalf("clean log reports tail error %v", tailErr)
			}
			if valid != wantOff || int64(mem.Len()) != wantOff {
				t.Fatalf("valid %d, file %d, want %d", valid, mem.Len(), wantOff)
			}
			if len(payloads) != len(ops) {
				t.Fatalf("%d records scanned, want %d", len(payloads), len(ops))
			}
			for i, p := range payloads {
				got, err := DecodeOp(p)
				if err != nil {
					t.Fatalf("record %d: %v", i, err)
				}
				if !reflect.DeepEqual(normalize(got), normalize(ops[i])) {
					t.Fatalf("record %d decoded to %+v, want %+v", i, got, ops[i])
				}
			}
			st := w.Stats()
			if st.Appends != int64(len(ops)) || st.Bytes != wantOff {
				t.Fatalf("stats %+v, want %d appends / %d bytes", st, len(ops), wantOff)
			}
		})
	}
}

// normalize maps nil and empty slices together for comparison across the
// JSON roundtrip.
func normalize(op Op) Op {
	if len(op.Users) == 0 {
		op.Users = nil
	}
	if len(op.Bids) == 0 {
		op.Bids = nil
	}
	return op
}

func TestSyncAlwaysFsyncsEveryCommit(t *testing.T) {
	mem := &faultfs.MemFile{}
	w := NewWriter(mem, 0, Options{Sync: SyncAlways})
	for i := 0; i < 3; i++ {
		if _, err := w.Append(Op{Kind: OpBid, User: i}); err != nil {
			t.Fatal(err)
		}
		if err := w.Commit(); err != nil {
			t.Fatal(err)
		}
	}
	if got := w.Stats().Syncs; got != 3 {
		t.Fatalf("%d fsyncs after 3 commits under SyncAlways, want 3", got)
	}
}

func TestSyncIntervalBackgroundFsync(t *testing.T) {
	mem := &faultfs.MemFile{}
	w := NewWriter(mem, 0, Options{Sync: SyncInterval, SyncInterval: time.Millisecond})
	defer w.Close()
	if _, err := w.Append(Op{Kind: OpBid, User: 1}); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(2 * time.Second)
	for w.Stats().Syncs == 0 {
		if time.Now().After(deadline) {
			t.Fatal("background fsync never ran")
		}
		time.Sleep(time.Millisecond)
	}
	if mem.Len() == 0 {
		t.Fatal("background fsync ran but nothing was flushed")
	}
}

func TestWriterStickyError(t *testing.T) {
	mem := &faultfs.MemFile{}
	f := faultfs.Wrap(mem, faultfs.Fault{CrashAfter: 10})
	w := NewWriter(f, 0, Options{Sync: SyncOff})
	if _, err := w.Append(Op{Kind: OpBid, User: 1}); err != nil {
		t.Fatalf("buffered append should not touch the file: %v", err)
	}
	if err := w.Commit(); err == nil {
		t.Fatal("commit over a crashed file succeeded")
	}
	if w.Err() == nil {
		t.Fatal("no sticky error after failed commit")
	}
	if _, err := w.Append(Op{Kind: OpBid, User: 2}); err == nil {
		t.Fatal("append after sticky failure succeeded")
	}
	if err := w.Commit(); err == nil {
		t.Fatal("commit after sticky failure succeeded")
	}
	// the torn prefix — and only it — reached the file
	if mem.Len() != 10 {
		t.Fatalf("%d bytes reached the file, want the torn prefix of 10", mem.Len())
	}
}

func TestFsyncFailureWedges(t *testing.T) {
	mem := &faultfs.MemFile{}
	f := faultfs.Wrap(mem, faultfs.Fault{CrashAfter: faultfs.Disabled, FailSyncAt: 1})
	w := NewWriter(f, 0, Options{Sync: SyncAlways})
	if _, err := w.Append(Op{Kind: OpBid, User: 1}); err != nil {
		t.Fatal(err)
	}
	if err := w.Commit(); !errors.Is(err, faultfs.ErrInjected) {
		t.Fatalf("commit error %v, want injected fsync failure", err)
	}
	if _, err := w.Append(Op{Kind: OpBid, User: 2}); err == nil {
		t.Fatal("append after fsync failure succeeded")
	}
}

func TestScanTornAndCorruptTails(t *testing.T) {
	a := frame([]byte(`{"op":"bid","user":1}`))
	b := frame([]byte(`{"op":"bid","user":2}`))
	full := append(append([]byte(nil), a...), b...)

	t.Run("torn header", func(t *testing.T) {
		log := append(append([]byte(nil), full...), 0x03, 0x00)
		payloads, valid, tailErr := Scan(bytes.NewReader(log))
		if len(payloads) != 2 || valid != int64(len(full)) {
			t.Fatalf("recovered %d records to offset %d, want 2 to %d", len(payloads), valid, len(full))
		}
		if !errors.Is(tailErr, ErrTorn) {
			t.Fatalf("tail error %v, want ErrTorn", tailErr)
		}
	})
	t.Run("torn payload", func(t *testing.T) {
		log := append(append([]byte(nil), a...), b[:len(b)-3]...)
		payloads, valid, tailErr := Scan(bytes.NewReader(log))
		if len(payloads) != 1 || valid != int64(len(a)) {
			t.Fatalf("recovered %d records to offset %d, want 1 to %d", len(payloads), valid, len(a))
		}
		if !errors.Is(tailErr, ErrTorn) {
			t.Fatalf("tail error %v, want ErrTorn", tailErr)
		}
	})
	t.Run("bad CRC", func(t *testing.T) {
		log := append(append([]byte(nil), a...), b...)
		log[len(log)-1] ^= 0xff
		payloads, valid, tailErr := Scan(bytes.NewReader(log))
		if len(payloads) != 1 || valid != int64(len(a)) {
			t.Fatalf("recovered %d records to offset %d, want 1 to %d", len(payloads), valid, len(a))
		}
		if !errors.Is(tailErr, ErrCorrupt) {
			t.Fatalf("tail error %v, want ErrCorrupt", tailErr)
		}
	})
	t.Run("absurd length", func(t *testing.T) {
		var hdr [headerSize]byte
		binary.LittleEndian.PutUint32(hdr[0:4], uint32(MaxRecord+1))
		log := append(append([]byte(nil), a...), hdr[:]...)
		payloads, valid, tailErr := Scan(bytes.NewReader(log))
		if len(payloads) != 1 || valid != int64(len(a)) {
			t.Fatalf("recovered %d records to offset %d, want 1 to %d", len(payloads), valid, len(a))
		}
		if !errors.Is(tailErr, ErrCorrupt) {
			t.Fatalf("tail error %v, want ErrCorrupt", tailErr)
		}
	})
}

func TestOpenReplaysAndTruncates(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "serve.wal")
	ops := fixtureOps(9)
	var log []byte
	for _, op := range ops {
		log = append(log, frame(op.Encode())...)
	}
	goodSize := int64(len(log))
	log = append(log, frame([]byte(`{"op":"bid","user":99}`))[:5]...) // torn tail
	if err := os.WriteFile(path, log, 0o644); err != nil {
		t.Fatal(err)
	}

	var replayed []Op
	w, info, err := Open(path, 0, Options{Sync: SyncOff}, func(p []byte) error {
		op, derr := DecodeOp(p)
		if derr != nil {
			return derr
		}
		replayed = append(replayed, op)
		return nil
	})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	if info.Records != len(ops) || info.ValidSize != goodSize || info.Dropped != 5 {
		t.Fatalf("recovery %+v, want %d records, valid %d, dropped 5", info, len(ops), goodSize)
	}
	if !errors.Is(info.TailErr, ErrTorn) {
		t.Fatalf("tail error %v, want ErrTorn", info.TailErr)
	}
	if len(replayed) != len(ops) {
		t.Fatalf("replayed %d ops, want %d", len(replayed), len(ops))
	}
	// the bad tail is gone from disk, and new appends land after the valid prefix
	if fi, _ := os.Stat(path); fi.Size() != goodSize {
		t.Fatalf("file is %d bytes after recovery, want %d", fi.Size(), goodSize)
	}
	if _, err := w.Append(Op{Kind: OpBid, User: 100}); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	payloads, _, tailErr := mustScanFile(t, path)
	if tailErr != nil {
		t.Fatalf("log not clean after recovery + append: %v", tailErr)
	}
	if len(payloads) != len(ops)+1 {
		t.Fatalf("%d records after recovery + append, want %d", len(payloads), len(ops)+1)
	}
}

func mustScanFile(t *testing.T, path string) ([][]byte, int64, error) {
	t.Helper()
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	return Scan(bytes.NewReader(raw))
}

func TestOpenBadStartOffset(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "serve.wal")
	if err := os.WriteFile(path, frame([]byte(`{"op":"bid"}`)), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, err := Open(path, 1<<20, Options{}, nil); err == nil {
		t.Fatal("offset past the end accepted — checkpoint/log disagreement must be an error")
	}
}

func TestOpenStartsAtCheckpointOffset(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "serve.wal")
	ops := fixtureOps(6)
	var log []byte
	var mid int64
	for i, op := range ops {
		if i == 3 {
			mid = int64(len(log))
		}
		log = append(log, frame(op.Encode())...)
	}
	if err := os.WriteFile(path, log, 0o644); err != nil {
		t.Fatal(err)
	}
	var n int
	w, info, err := Open(path, mid, Options{Sync: SyncOff}, func([]byte) error { n++; return nil })
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	if n != 3 || info.Records != 3 {
		t.Fatalf("replayed %d records from checkpoint offset, want the 3-op suffix", n)
	}
}

func TestTailer(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "serve.wal")
	w, _, err := Open(path, 0, Options{Sync: SyncOff}, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()

	tl, err := OpenTailer(path, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer tl.Close()
	if _, err := tl.Next(); err != io.EOF {
		t.Fatalf("empty log Next = %v, want io.EOF", err)
	}

	if _, err := w.Append(Op{Kind: OpBid, User: 7}); err != nil {
		t.Fatal(err)
	}
	// uncommitted: still invisible to the tailer
	if _, err := tl.Next(); err != io.EOF {
		t.Fatalf("uncommitted record visible: Next = %v, want io.EOF", err)
	}
	if err := w.Commit(); err != nil {
		t.Fatal(err)
	}
	p, err := tl.Next()
	if err != nil {
		t.Fatalf("Next after commit: %v", err)
	}
	op, err := DecodeOp(p)
	if err != nil || op.User != 7 {
		t.Fatalf("tailed %+v (%v), want user 7", op, err)
	}
	if tl.Offset() != w.Offset() {
		t.Fatalf("tailer at %d, writer at %d", tl.Offset(), w.Offset())
	}

	// a torn tail is a retry signal, not corruption — and Next must not advance
	raw := frame([]byte(`{"op":"bid","user":8}`))
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write(raw[:len(raw)-4]); err != nil {
		t.Fatal(err)
	}
	if _, err := tl.Next(); !errors.Is(err, ErrTorn) {
		t.Fatalf("Next on torn tail = %v, want ErrTorn", err)
	}
	if _, err := f.Write(raw[len(raw)-4:]); err != nil {
		t.Fatal(err)
	}
	f.Close()
	if p, err = tl.Next(); err != nil {
		t.Fatalf("Next after tail completed: %v", err)
	}
	if op, _ := DecodeOp(p); op.User != 8 {
		t.Fatalf("tailed user %d, want 8", op.User)
	}
	size, err := tl.Size()
	if err != nil || size != tl.Offset() {
		t.Fatalf("Size %d (%v), want %d", size, err, tl.Offset())
	}
}

func TestWriteFileAtomic(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "ckpt.json")
	if err := WriteFileAtomic(path, []byte("one")); err != nil {
		t.Fatal(err)
	}
	if err := WriteFileAtomic(path, []byte("two")); err != nil {
		t.Fatal(err)
	}
	got, err := os.ReadFile(path)
	if err != nil || string(got) != "two" {
		t.Fatalf("read %q (%v), want %q", got, err, "two")
	}
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(ents) != 1 {
		t.Fatalf("%d directory entries after atomic replace, want 1 (no temp litter)", len(ents))
	}
}

func TestParseSyncPolicy(t *testing.T) {
	for in, want := range map[string]SyncPolicy{
		"always": SyncAlways, "interval": SyncInterval, "": SyncInterval, "off": SyncOff,
	} {
		got, err := ParseSyncPolicy(in)
		if err != nil || got != want {
			t.Fatalf("ParseSyncPolicy(%q) = %v, %v; want %v", in, got, err, want)
		}
	}
	if _, err := ParseSyncPolicy("sometimes"); err == nil {
		t.Fatal("unknown policy accepted")
	}
}

func TestDecodeOpValidation(t *testing.T) {
	bad := [][]byte{
		[]byte(`{`),
		[]byte(`{"op":"explode"}`),
		[]byte(`{"op":"bid","user":-1}`),
		[]byte(`{"op":"batch","users":[0,-2]}`),
		[]byte(`{"op":"set_bids","user":0,"bids":[-1]}`),
	}
	for _, p := range bad {
		if _, err := DecodeOp(p); err == nil {
			t.Fatalf("DecodeOp(%s) accepted", p)
		}
	}
	op, err := DecodeOp([]byte(`{"op":"renew"}`))
	if err != nil {
		t.Fatalf("renewal with empty demand rejected: %v", err)
	}
	if op.Kind != OpRenew {
		t.Fatalf("kind %q, want renew", op.Kind)
	}
}

func TestAppendFrameTooLarge(t *testing.T) {
	w := NewWriter(&faultfs.MemFile{}, 0, Options{Sync: SyncOff})
	if _, err := w.AppendFrame(make([]byte, MaxRecord+1)); err == nil {
		t.Fatal("oversized record accepted")
	}
	if w.Err() != nil {
		t.Fatal("an oversized record must be rejected, not wedge the writer")
	}
}
