package lp

import (
	"math"
	"sort"
)

// Presolve reductions for packing LPs. The benchmark LP generated from
// EBSN instances carries a lot of removable weight: event rows so loose
// they can never bind (every bidder taking the event still fits), columns
// through zero-capacity rows (forced to 0), and — on the Meetup-like
// workload — duplicate singleton columns. Reductions preserve the optimal
// objective exactly, and Unreduce maps a solution of the reduced problem
// back to the original variable space.

// Presolved is the outcome of Reduce: the smaller problem plus the mappings
// needed to translate solutions back.
type Presolved struct {
	// Problem is the reduced LP.
	Problem *Problem
	// colMap[j] is the original column index of reduced column j.
	colMap []int
	// rowMap[i] is the original row index of reduced row i.
	rowMap []int
	// forcedZero lists original columns fixed at 0 (they crossed a
	// zero-capacity row).
	forcedZero []int
	orig       *Problem // original problem, for the dual completion
	origCols   int
	origRows   int
}

// Stats reports what Reduce removed.
type PresolveStats struct {
	DroppedRows   int // rows that can never bind
	ForcedColumns int // columns fixed to zero by empty rows
	RemainingRows int
	RemainingCols int
}

// Reduce applies safe packing-LP reductions:
//
//  1. columns touching a row with b_i = 0 are fixed to 0 and removed;
//  2. "bounding" rows — those with b_i ≤ 1 — are kept whenever any column
//     still crosses them (they are the source of the implied per-column
//     upper bounds u_j = min_k b_k/a_kj, so dropping them could unbound
//     the problem); empty rows are always dropped;
//  3. a non-bounding row is dropped when even every crossing column at its
//     implied bound cannot violate it: Σ_j a_ij·u_j ≤ b_i, with u_j taken
//     over bounding rows only (∞, hence undroppable, if a column crosses
//     no bounding row).
//
// For the benchmark LP the bounding rows are exactly the user rows, so the
// reduction drops event rows so loose they can never bind. The reduced
// problem has the same optimal value as the original.
func Reduce(p *Problem) (*Presolved, PresolveStats, error) {
	if err := p.Check(); err != nil {
		return nil, PresolveStats{}, err
	}
	m, n := p.NumRows, p.NumCols()

	// Pass 1: force columns through b=0 rows to zero.
	keepCol := make([]bool, n)
	var forced []int
	for j := 0; j < n; j++ {
		keepCol[j] = true
		rows, vals := p.Col(j)
		for k, r := range rows {
			if p.B[r] == 0 && vals[k] > 0 {
				keepCol[j] = false
				forced = append(forced, j)
				break
			}
		}
	}

	// Implied upper bounds from bounding rows (b ≤ 1) that will be kept.
	const inf = math.MaxFloat64
	ubound := make([]float64, n)
	for j := range ubound {
		ubound[j] = inf
	}
	hasCols := make([]bool, m)
	for j := 0; j < n; j++ {
		if !keepCol[j] {
			continue
		}
		rows, vals := p.Col(j)
		for k, r := range rows {
			hasCols[r] = true
			if p.B[r] <= 1 && vals[k] > 0 {
				if u := p.B[r] / vals[k]; u < ubound[j] {
					ubound[j] = u
				}
			}
		}
	}

	// Pass 2: decide rows. Bounding rows stay while non-empty; other rows
	// go when their maximum attainable mass cannot exceed b.
	keepRow := make([]bool, m)
	mass := make([]float64, m)
	unbounded := make([]bool, m)
	for j := 0; j < n; j++ {
		if !keepCol[j] {
			continue
		}
		rows, vals := p.Col(j)
		for k, r := range rows {
			if p.B[r] <= 1 {
				continue // bounding rows are handled by hasCols
			}
			if ubound[j] == inf {
				unbounded[r] = true
			} else {
				mass[r] += vals[k] * ubound[j]
			}
		}
	}
	dropped := 0
	for i := 0; i < m; i++ {
		if !hasCols[i] {
			keepRow[i] = false // empty row can never be violated
		} else if p.B[i] <= 1 {
			keepRow[i] = true // bounding row
		} else {
			keepRow[i] = unbounded[i] || mass[i] > p.B[i]
		}
		if !keepRow[i] {
			dropped++
		}
	}

	// Rebuild.
	ps := &Presolved{origCols: n, origRows: m, forcedZero: forced, orig: p}
	newRow := make([]int32, m)
	for i := 0; i < m; i++ {
		newRow[i] = -1
		if keepRow[i] {
			newRow[i] = int32(len(ps.rowMap))
			ps.rowMap = append(ps.rowMap, i)
		}
	}
	red := &Problem{NumRows: len(ps.rowMap)}
	keptCols, keptNNZ := 0, 0
	for j := 0; j < n; j++ {
		if keepCol[j] {
			keptCols++
			keptNNZ += p.ColPtr[j+1] - p.ColPtr[j]
		}
	}
	red.Reserve(keptCols, keptNNZ)
	for _, i := range ps.rowMap {
		red.B = append(red.B, p.B[i])
	}
	red.ColPtr = append(red.ColPtr, 0)
	for j := 0; j < n; j++ {
		if !keepCol[j] {
			continue
		}
		rows, vals := p.Col(j)
		for k, r := range rows {
			if nr := newRow[r]; nr >= 0 {
				red.Rows = append(red.Rows, nr)
				red.Vals = append(red.Vals, vals[k])
			}
		}
		red.ColPtr = append(red.ColPtr, len(red.Rows))
		red.C = append(red.C, p.C[j])
		ps.colMap = append(ps.colMap, j)
	}
	ps.Problem = red
	stats := PresolveStats{
		DroppedRows:   dropped,
		ForcedColumns: len(forced),
		RemainingRows: red.NumRows,
		RemainingCols: red.NumCols(),
	}
	return ps, stats, nil
}

// Unreduce maps a solution of the reduced problem back to the original
// variable and row spaces. Forced columns get 0 and never-binding dropped
// rows get dual 0; dropped b=0 rows then get their duals raised just enough
// to cover the reduced cost of the forced columns crossing them — b_i = 0,
// so the completion changes neither bᵀy nor complementary slackness, and
// the returned solution passes Verify against the ORIGINAL problem.
func (ps *Presolved) Unreduce(sol *Solution) *Solution {
	x := make([]float64, ps.origCols)
	for j, v := range sol.X {
		x[ps.colMap[j]] = v
	}
	y := make([]float64, ps.origRows)
	for i, v := range sol.Y {
		y[ps.rowMap[i]] = v
	}
	for _, j := range ps.forcedZero {
		rows, vals := ps.orig.Col(j)
		red := ps.orig.C[j]
		for k, r := range rows {
			red -= y[r] * vals[k]
		}
		if red <= 0 {
			continue
		}
		for k, r := range rows {
			if ps.orig.B[r] == 0 && vals[k] > 0 {
				y[r] += red / vals[k]
				break
			}
		}
	}
	return &Solution{
		Status:     sol.Status,
		X:          x,
		Y:          y,
		Objective:  sol.Objective,
		Iterations: sol.Iterations,
	}
}

// SolveReduced is a convenience wrapper: Reduce, solve with the given
// solver (nil = auto), Unreduce.
func SolveReduced(p *Problem, s Backend) (*Solution, PresolveStats, error) {
	ps, stats, err := Reduce(p)
	if err != nil {
		return nil, stats, err
	}
	var sol *Solution
	if s == nil {
		sol, err = Solve(ps.Problem)
	} else {
		sol, err = s.Solve(ps.Problem)
	}
	if err != nil {
		return nil, stats, err
	}
	return ps.Unreduce(sol), stats, nil
}

// DeduplicateColumns folds exact duplicate columns (same rows, same values)
// keeping only the highest-objective representative of each class — for a
// maximization packing LP a dominated duplicate can never be needed
// strictly, because any mass on it can move to the representative without
// changing feasibility and without decreasing the objective. Returns the
// reduced problem and repr[j] = index of j's representative in the original
// problem (repr[j] == j for kept columns).
func DeduplicateColumns(p *Problem) (*Problem, []int) {
	n := p.NumCols()
	best := map[string]int{} // signature -> original column with max c
	sigOf := make([]string, n)
	for j := 0; j < n; j++ {
		rows, vals := p.Col(j)
		sigOf[j] = columnSignature(rows, vals)
		if k, ok := best[sigOf[j]]; !ok || p.C[j] > p.C[k] {
			best[sigOf[j]] = j
		}
	}
	repr := make([]int, n)
	kept := make([]int, 0, len(best))
	for j := 0; j < n; j++ {
		repr[j] = best[sigOf[j]]
	}
	for _, j := range best {
		kept = append(kept, j)
	}
	sort.Ints(kept)
	out := &Problem{NumRows: p.NumRows, B: p.B}
	nnz := 0
	for _, j := range kept {
		nnz += p.ColPtr[j+1] - p.ColPtr[j]
	}
	out.Reserve(len(kept), nnz)
	for _, j := range kept {
		rows, vals := p.Col(j)
		out.addColumn32(p.C[j], rows, vals)
	}
	return out, repr
}

// columnSignature canonically encodes a column's sparsity pattern and
// values.
func columnSignature(rows []int32, vals []float64) string {
	type entry struct {
		r int32
		v float64
	}
	es := make([]entry, len(rows))
	for i := range rows {
		es[i] = entry{rows[i], vals[i]}
	}
	sort.Slice(es, func(a, b int) bool { return es[a].r < es[b].r })
	buf := make([]byte, 0, len(es)*12)
	for _, e := range es {
		buf = appendInt(buf, int(e.r))
		buf = append(buf, ':')
		buf = appendFloat(buf, e.v)
		buf = append(buf, ';')
	}
	return string(buf)
}

func appendInt(b []byte, v int) []byte {
	if v == 0 {
		return append(b, '0')
	}
	var tmp [20]byte
	i := len(tmp)
	for v > 0 {
		i--
		tmp[i] = byte('0' + v%10)
		v /= 10
	}
	return append(b, tmp[i:]...)
}

func appendFloat(b []byte, v float64) []byte {
	// exact bit pattern: duplicates must match exactly to fold
	u := math.Float64bits(v)
	var tmp [16]byte
	for i := 15; i >= 0; i-- {
		tmp[i] = "0123456789abcdef"[u&0xf]
		u >>= 4
	}
	return append(b, tmp[:]...)
}
