package model

import (
	"reflect"
	"testing"

	"github.com/ebsn/igepa/internal/xrand"
)

// randomInstance builds a mid-size random instance with enough users to
// span several utility blocks, so the block chain of the summation tree is
// actually exercised.
func randomInstance(seed int64, nu, nv int) *Instance {
	rng := xrand.New(seed)
	in := &Instance{
		Events:    make([]Event, nv),
		Users:     make([]User, nu),
		Conflicts: func(v, w int) bool { return v != w && (v+w)%7 == 0 },
		Beta:      0.5,
	}
	si := make([][]float64, nu)
	for v := range in.Events {
		in.Events[v].Capacity = 1 + rng.Intn(5)
	}
	for u := range in.Users {
		in.Users[u].Capacity = 1 + rng.Intn(3)
		in.Users[u].Degree = rng.Intn(nu)
		nb := 1 + rng.Intn(6)
		seen := map[int]bool{}
		for len(seen) < nb {
			seen[rng.Intn(nv)] = true
		}
		for v := 0; v < nv; v++ {
			if seen[v] {
				in.Users[u].Bids = append(in.Users[u].Bids, v)
			}
		}
		si[u] = make([]float64, nv)
		for v := range si[u] {
			si[u][v] = rng.Float64()
		}
	}
	in.Interest = func(u, v int) float64 { return si[u][v] }
	return in
}

// randomSubset returns a random sorted subset of the user's bids, at most
// their capacity.
func randomSubset(rng *xrand.RNG, usr *User) []int {
	var set []int
	for _, v := range usr.Bids {
		if len(set) < usr.Capacity && rng.Bool(0.4) {
			set = append(set, v)
		}
	}
	return set
}

// TestUtilityAccumulatorMatchesUtility is the accumulator's bit-equality
// property test: a long random sequence of seat moves (assignments granted,
// revoked, replaced) must keep Total exactly — not approximately — equal to
// a from-scratch Utility evaluation of the same arrangement.
func TestUtilityAccumulatorMatchesUtility(t *testing.T) {
	for _, seed := range []int64{1, 7, 99} {
		in := randomInstance(seed, 700, 40) // several utility blocks
		rng := xrand.New(seed ^ 0xacc)
		arr := NewArrangement(in.NumUsers())
		for u := range arr.Sets {
			arr.Sets[u] = randomSubset(rng, &in.Users[u])
		}
		acc := NewUtilityAccumulator(in, arr)
		if got, want := acc.Total(), Utility(in, arr); got != want {
			t.Fatalf("seed %d: initial Total %.17g != Utility %.17g", seed, got, want)
		}
		for step := 0; step < 400; step++ {
			u := rng.Intn(in.NumUsers())
			switch {
			case rng.Bool(0.2):
				arr.Sets[u] = nil // full cancel
			default:
				arr.Sets[u] = randomSubset(rng, &in.Users[u])
			}
			acc.SetUser(u, arr.Sets[u])
			if step%17 != 0 {
				continue // queries between batches of moves, not per move
			}
			if got, want := acc.Total(), Utility(in, arr); got != want {
				t.Fatalf("seed %d step %d: Total %.17g != Utility %.17g", seed, step, got, want)
			}
		}
		if got, want := acc.Total(), Utility(in, arr); got != want {
			t.Fatalf("seed %d final: Total %.17g != Utility %.17g", seed, got, want)
		}
	}
}

// TestUtilityAccumulatorTracksWeightChanges pins the re-sync contract:
// after a bid delta changes a user's weights, SetUser with the unchanged
// event set must pick up the new weight table.
func TestUtilityAccumulatorTracksWeightChanges(t *testing.T) {
	in := tiny(0.5)
	arr := NewArrangement(3)
	arr.Sets[0] = []int{0, 2}
	acc := NewUtilityAccumulator(in, arr)
	before := acc.Total()

	// Dropping bid 1 does not change the assignment {0,2}, but the weight
	// rows re-align; the accumulator must agree with Utility afterwards.
	in.Users[0].Bids = []int{0, 2}
	in.Invalidate(0)
	acc.SetUser(0, arr.Sets[0])
	if got, want := acc.Total(), Utility(in, arr); got != want {
		t.Fatalf("after bid delta: Total %.17g != Utility %.17g", got, want)
	}
	if acc.Total() != before {
		// same events, same weights for them — value should be unchanged
		t.Fatalf("utility changed by a bid drop that kept the assignment: %v -> %v", before, acc.Total())
	}
}

// TestInvalidateUsersPatchesCaches pins the delta-scoped Invalidate: after
// mutating a few users' bids, patching just those users must leave the
// weight table and bidder lists identical to a full rebuild on a fresh
// clone.
func TestInvalidateUsersPatchesCaches(t *testing.T) {
	in := randomInstance(3, 120, 25)
	in.Weights()
	in.RebuildBidders()
	_ = in.Bidders(0) // materialize

	rng := xrand.New(44)
	for step := 0; step < 30; step++ {
		var changed []int
		for k := 0; k < 1+rng.Intn(3); k++ {
			u := rng.Intn(in.NumUsers())
			usr := &in.Users[u]
			if len(usr.Bids) > 0 && rng.Bool(0.5) {
				i := rng.Intn(len(usr.Bids))
				usr.Bids = append(usr.Bids[:i:i], usr.Bids[i+1:]...)
			} else {
				v := rng.Intn(in.NumEvents())
				if !Contains(usr.Bids, v) {
					bids := append(append([]int(nil), usr.Bids...), v)
					for i := len(bids) - 1; i > 0 && bids[i-1] > bids[i]; i-- {
						bids[i-1], bids[i] = bids[i], bids[i-1]
					}
					usr.Bids = bids
				}
			}
			changed = append(changed, u)
		}
		in.Invalidate(changed...)

		fresh := in.Clone()
		fwc := fresh.Weights()
		wc := in.Weights()
		for u := 0; u < in.NumUsers(); u++ {
			if !reflect.DeepEqual(wc.Row(u), fwc.Row(u)) {
				t.Fatalf("step %d: patched weight row %d = %v, rebuilt %v", step, u, wc.Row(u), fwc.Row(u))
			}
		}
		for v := 0; v < in.NumEvents(); v++ {
			got, want := in.Bidders(v), fresh.Bidders(v)
			if len(got) != len(want) {
				t.Fatalf("step %d: patched bidders(%d) = %v, rebuilt %v", step, v, got, want)
			}
			for i := range got {
				if got[i] != want[i] {
					t.Fatalf("step %d: patched bidders(%d) = %v, rebuilt %v", step, v, got, want)
				}
			}
		}
	}
}

// TestInvalidateUsersWithoutCachesStaysLazy pins that the delta form on an
// instance with no materialized caches is a no-op that still leaves lazy
// rebuilds correct.
func TestInvalidateUsersWithoutCachesStaysLazy(t *testing.T) {
	in := tiny(0.5)
	in.Users[0].Bids = []int{0, 2}
	in.Invalidate(0)
	if got := in.Weights().Row(0); len(got) != 2 {
		t.Fatalf("lazy rebuild after delta Invalidate: row 0 has %d entries, want 2", len(got))
	}
	if got := in.Bidders(1); len(got) != 1 || got[0] != 1 {
		t.Fatalf("lazy bidders after delta Invalidate: Bidders(1) = %v, want [1]", got)
	}
}

func TestCheckUsersAndEvents(t *testing.T) {
	in := tiny(0.5)
	if err := in.CheckUsers([]int{0, 1, 2}); err != nil {
		t.Fatalf("CheckUsers on valid instance: %v", err)
	}
	if err := in.CheckEvents([]int{0, 1, 2}); err != nil {
		t.Fatalf("CheckEvents on valid instance: %v", err)
	}
	if err := in.CheckUsers([]int{3}); err == nil {
		t.Error("CheckUsers accepted out-of-range user")
	}
	if err := in.CheckEvents([]int{-1}); err == nil {
		t.Error("CheckEvents accepted negative event")
	}
	in.Users[1].Bids = []int{1, 0} // unsorted
	if err := in.CheckUsers([]int{1}); err == nil {
		t.Error("CheckUsers accepted unsorted bids")
	}
	if err := in.CheckUsers([]int{0, 2}); err != nil {
		t.Errorf("CheckUsers flagged untouched users: %v", err)
	}
	in.Events[2].Capacity = -1
	if err := in.CheckEvents([]int{2}); err == nil {
		t.Error("CheckEvents accepted negative capacity")
	}
}
