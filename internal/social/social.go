// Package social implements the social-network substrate: a compact
// undirected graph with bitset adjacency, the generators used by the
// experiments (Erdős–Rényi per Table I, group-affiliation graphs for the
// Meetup-like dataset, Barabási–Albert as an extension), and the degree of
// potential interaction D(G,u) (Definition 6).
package social

import (
	"math"

	"github.com/ebsn/igepa/internal/bitset"
	"github.com/ebsn/igepa/internal/xrand"
)

// Graph is a simple undirected graph on n vertices with bitset adjacency
// rows. Self-loops are ignored.
type Graph struct {
	n      int
	adj    []*bitset.Set
	degree []int
	edges  int
}

// NewGraph returns an empty graph on n vertices.
func NewGraph(n int) *Graph {
	adj := make([]*bitset.Set, n)
	for i := range adj {
		adj[i] = bitset.New(n)
	}
	return &Graph{n: n, adj: adj, degree: make([]int, n)}
}

// Len returns the number of vertices.
func (g *Graph) Len() int { return g.n }

// NumEdges returns the number of undirected edges.
func (g *Graph) NumEdges() int { return g.edges }

// AddEdge inserts the undirected edge {u,v}. Self-loops and duplicate edges
// are ignored.
func (g *Graph) AddEdge(u, v int) {
	if u == v || g.adj[u].Contains(v) {
		return
	}
	g.adj[u].Add(v)
	g.adj[v].Add(u)
	g.degree[u]++
	g.degree[v]++
	g.edges++
}

// HasEdge reports whether {u,v} is an edge.
func (g *Graph) HasEdge(u, v int) bool {
	if u == v {
		return false
	}
	return g.adj[u].Contains(v)
}

// Degree returns deg(u).
func (g *Graph) Degree(u int) int { return g.degree[u] }

// Degrees returns a copy of the degree sequence.
func (g *Graph) Degrees() []int {
	return append([]int(nil), g.degree...)
}

// Neighbors appends u's neighbors to dst and returns it.
func (g *Graph) Neighbors(u int, dst []int) []int {
	return g.adj[u].Members(dst)
}

// DPI returns the degree of potential interaction
// D(G,u) = deg(u)/(n−1) (Definition 6); 0 when n ≤ 1.
func (g *Graph) DPI(u int) float64 {
	if g.n <= 1 {
		return 0
	}
	return float64(g.degree[u]) / float64(g.n-1)
}

// MeanDegree returns the average vertex degree.
func (g *Graph) MeanDegree() float64 {
	if g.n == 0 {
		return 0
	}
	return 2 * float64(g.edges) / float64(g.n)
}

// ErdosRenyi samples G(n, p): every unordered pair is an edge independently
// with probability p. This is the synthetic social network of Table I
// (pdeg). For sparse p it uses geometric skipping over the pair sequence, so
// generation is O(n + |E|) rather than O(n²); for dense p it falls back to
// per-pair coin flips.
func ErdosRenyi(n int, p float64, rng *xrand.RNG) *Graph {
	g := NewGraph(n)
	if p <= 0 || n < 2 {
		return g
	}
	if p >= 1 {
		for u := 0; u < n; u++ {
			for v := u + 1; v < n; v++ {
				g.AddEdge(u, v)
			}
		}
		return g
	}
	if p < 0.1 {
		// Geometric skipping (Batagelj–Brandes): walk the linearized pair
		// index, jumping ahead by Geometric(p) each time.
		logq := math.Log1p(-p)
		idx := int64(-1)
		total := int64(n) * int64(n-1) / 2
		for {
			u := rng.Float64()
			skip := int64(math.Log1p(-u)/logq) + 1
			idx += skip
			if idx >= total {
				return g
			}
			a, b := pairFromIndex(idx, n)
			g.AddEdge(a, b)
		}
	}
	for u := 0; u < n; u++ {
		for v := u + 1; v < n; v++ {
			if rng.Bool(p) {
				g.AddEdge(u, v)
			}
		}
	}
	return g
}

// pairFromIndex maps a linear index in [0, n(n-1)/2) to the unordered pair
// (a,b), a<b, enumerated row by row: (0,1),(0,2),...,(0,n-1),(1,2),...
func pairFromIndex(idx int64, n int) (int, int) {
	a := 0
	rowLen := int64(n - 1)
	for idx >= rowLen {
		idx -= rowLen
		a++
		rowLen--
	}
	return a, a + 1 + int(idx)
}

// Affiliation builds the group-membership graph used by the Meetup-like
// dataset: vertices u and v are adjacent iff they share at least one group
// (the paper: "if two users join at least one common group, they have an
// edge"). groups lists member vertices per group.
func Affiliation(n int, groups [][]int) *Graph {
	g := NewGraph(n)
	for _, members := range groups {
		for i, u := range members {
			for _, v := range members[i+1:] {
				g.AddEdge(u, v)
			}
		}
	}
	return g
}

// BarabasiAlbert grows a preferential-attachment graph: starting from a
// clique on m+1 vertices, each new vertex attaches to m distinct existing
// vertices chosen with probability proportional to degree. Provided as an
// extension for heavy-tailed social networks; not used by the paper's
// experiments.
func BarabasiAlbert(n, m int, rng *xrand.RNG) *Graph {
	if m < 1 {
		panic("social: BarabasiAlbert needs m >= 1")
	}
	g := NewGraph(n)
	if n == 0 {
		return g
	}
	seed := m + 1
	if seed > n {
		seed = n
	}
	// repeated endpoints list implements degree-proportional sampling
	var endpoints []int
	for u := 0; u < seed; u++ {
		for v := u + 1; v < seed; v++ {
			g.AddEdge(u, v)
			endpoints = append(endpoints, u, v)
		}
	}
	for u := seed; u < n; u++ {
		chosen := map[int]bool{}
		for len(chosen) < m {
			var v int
			if len(endpoints) == 0 {
				v = rng.Intn(u)
			} else {
				v = endpoints[rng.Intn(len(endpoints))]
			}
			if v != u {
				chosen[v] = true
			}
		}
		for v := range chosen {
			g.AddEdge(u, v)
			endpoints = append(endpoints, u, v)
		}
	}
	return g
}

// DegreeHistogram returns counts[d] = number of vertices with degree d.
func DegreeHistogram(g *Graph) []int {
	maxDeg := 0
	for _, d := range g.degree {
		if d > maxDeg {
			maxDeg = d
		}
	}
	counts := make([]int, maxDeg+1)
	for _, d := range g.degree {
		counts[d]++
	}
	return counts
}
