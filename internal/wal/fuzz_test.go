package wal

import (
	"bytes"
	"encoding/binary"
	"hash/crc32"
	"testing"
)

// FuzzWALDecode feeds arbitrary bytes — seeded with valid logs, torn logs
// and flipped-bit logs — through recovery and asserts the two recovery
// invariants: it never panics, and every record it returns re-verifies (a
// CRC-failing or out-of-frame record is never surfaced). The valid prefix
// it reports must be exactly re-encodable from the returned records.
func FuzzWALDecode(f *testing.F) {
	var clean []byte
	for _, op := range fixtureOps(5) {
		clean = append(clean, frame(op.Encode())...)
	}
	f.Add([]byte{})
	f.Add(clean)
	f.Add(clean[:len(clean)-3]) // torn payload
	f.Add(clean[:5])            // torn header
	flipped := append([]byte(nil), clean...)
	flipped[len(flipped)/2] ^= 0x40
	f.Add(flipped)
	huge := frame([]byte(`{"op":"bid","user":1}`))
	binary.LittleEndian.PutUint32(huge[0:4], uint32(MaxRecord+7))
	f.Add(huge)

	f.Fuzz(func(t *testing.T, data []byte) {
		payloads, valid, tailErr := Scan(bytes.NewReader(data))
		if valid < 0 || valid > int64(len(data)) {
			t.Fatalf("valid size %d outside [0,%d]", valid, len(data))
		}
		// Re-frame the returned records: they must reproduce data[:valid]
		// byte for byte, which implies every CRC verified.
		var rebuilt []byte
		for _, p := range payloads {
			rebuilt = append(rebuilt, frame(p)...)
		}
		if !bytes.Equal(rebuilt, data[:valid]) {
			t.Fatalf("recovered records do not re-encode the valid prefix")
		}
		for i, p := range payloads {
			if crc32.Checksum(p, castagnoli) != binary.LittleEndian.Uint32(frameHeaderAt(data, payloads, i)[4:8]) {
				t.Fatalf("record %d surfaced with a failing CRC", i)
			}
			// decoding arbitrary surviving payloads must never panic
			_, _ = DecodeOp(p)
		}
		if tailErr == nil && valid != int64(len(data)) {
			t.Fatalf("clean scan stopped at %d of %d bytes", valid, len(data))
		}
	})
}

// frameHeaderAt recomputes where record i's header starts in data.
func frameHeaderAt(data []byte, payloads [][]byte, i int) []byte {
	off := 0
	for j := 0; j < i; j++ {
		off += headerSize + len(payloads[j])
	}
	return data[off : off+headerSize]
}
