// Command igepa-loadgen drives live traffic against an igepa-serve HTTP
// front-end (igepa-serve -listen) and reports sustained throughput and tail
// latency — the measurement half of the serving subsystem.
//
// Two workload shapes:
//
//   - open:   open-loop Poisson arrivals. Requests fire at exponentially
//     distributed gaps at the target rate regardless of how fast the server
//     answers — the canonical way to expose queueing collapse, because a
//     slow server keeps receiving load. Each user from a seeded permutation
//     arrives once.
//
//   - closed: closed-loop bursty clients. C workers each own a slice of the
//     user population and cycle bid → cancel in bursts of K back-to-back
//     requests followed by a think pause. Re-submitting the same users makes
//     this the repeat-bid workload that exercises the server's
//     admissible-set cache.
//
// The generator discovers the instance shape from /healthz, honors 429
// backpressure (Retry-After), and finishes by printing the server's own
// /statsz view (queue depths, cache hit rate, per-shard utility) next to
// the client-side latency distribution.
//
// Usage:
//
//	igepa-loadgen -addr http://localhost:8080                   # open loop
//	igepa-loadgen -addr ... -mode open -rate 2000 -n 5000
//	igepa-loadgen -addr ... -mode closed -conc 16 -burst 8 -cycles 50
//	igepa-loadgen -addr ... -mode closed -duration 30s -think 5ms
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math"
	"net/http"
	"os"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"github.com/ebsn/igepa/internal/obs"
	"github.com/ebsn/igepa/internal/stats"
	"github.com/ebsn/igepa/internal/xrand"
)

type config struct {
	addr     string
	mode     string
	rate     float64
	n        int
	conc     int
	burst    int
	think    time.Duration
	duration time.Duration
	cycles   int
	seed     int64
	timeout  time.Duration
}

func main() {
	var cfg config
	flag.StringVar(&cfg.addr, "addr", "http://localhost:8080", "base URL of the igepa-serve -listen server")
	flag.StringVar(&cfg.mode, "mode", "open", "workload shape: open (Poisson) or closed (bursty bid/cancel)")
	flag.Float64Var(&cfg.rate, "rate", 1000, "open loop: mean arrivals per second")
	flag.IntVar(&cfg.n, "n", 0, "open loop: total arrivals (0 = one per user)")
	flag.IntVar(&cfg.conc, "conc", 8, "closed loop: concurrent workers")
	flag.IntVar(&cfg.burst, "burst", 4, "closed loop: requests per burst")
	flag.DurationVar(&cfg.think, "think", 2*time.Millisecond, "closed loop: pause between bursts")
	flag.DurationVar(&cfg.duration, "duration", 0, "closed loop: run time (0 = use -cycles)")
	flag.IntVar(&cfg.cycles, "cycles", 25, "closed loop: bid/cancel cycles per worker when -duration is 0")
	flag.Int64Var(&cfg.seed, "seed", 1, "arrival-order seed")
	flag.DurationVar(&cfg.timeout, "timeout", 10*time.Second, "per-request timeout")
	flag.Parse()
	if err := run(os.Stdout, cfg); err != nil {
		fmt.Fprintln(os.Stderr, "igepa-loadgen:", err)
		os.Exit(1)
	}
}

// tally aggregates client-side outcomes across workers.
type tally struct {
	mu       sync.Mutex
	lats     []time.Duration
	ok       int
	rejected int // 429
	conflict int // 409
	unavail  int // 503
	errs     int
}

func (t *tally) record(d time.Duration) {
	t.mu.Lock()
	t.ok++
	t.lats = append(t.lats, d)
	t.mu.Unlock()
}

func (t *tally) count(status int) {
	t.mu.Lock()
	switch status {
	case http.StatusTooManyRequests:
		t.rejected++
	case http.StatusConflict:
		t.conflict++
	case http.StatusServiceUnavailable:
		t.unavail++
	default:
		t.errs++
	}
	t.mu.Unlock()
}

type health struct {
	Status    string `json:"status"`
	NumUsers  int    `json:"num_users"`
	NumEvents int    `json:"num_events"`
	Shards    int    `json:"shards"`
	Mode      string `json:"mode"`
}

func run(w io.Writer, cfg config) error {
	hc := &http.Client{Timeout: cfg.timeout}
	var h health
	if err := getJSON(hc, cfg.addr+"/healthz", &h); err != nil {
		return fmt.Errorf("probing %s/healthz: %w", cfg.addr, err)
	}
	fmt.Fprintf(w, "target %s: %s server, %s mode, |U|=%d |V|=%d S=%d\n",
		cfg.addr, h.Status, h.Mode, h.NumUsers, h.NumEvents, h.Shards)

	// Snapshot /metrics before generating load: the exposition's counters
	// are cumulative over the server's lifetime, so against a long-running
	// server only the before/after delta describes THIS run. Best-effort —
	// nil against a server without /metrics.
	before := scrapeFamilies(hc, cfg.addr)

	var t tally
	start := time.Now()
	var err error
	switch cfg.mode {
	case "open":
		err = openLoop(hc, cfg, h.NumUsers, &t)
	case "closed":
		err = closedLoop(hc, cfg, h.NumUsers, &t)
	default:
		err = fmt.Errorf("unknown mode %q (want open or closed)", cfg.mode)
	}
	if err != nil {
		return err
	}
	elapsed := time.Since(start)
	report(w, cfg, &t, elapsed)

	var serverStats map[string]any
	if err := getJSON(hc, cfg.addr+"/statsz", &serverStats); err != nil {
		return fmt.Errorf("fetching /statsz: %w", err)
	}
	raw, _ := json.MarshalIndent(serverStats, "", "  ")
	fmt.Fprintf(w, "\nserver /statsz:\n%s\n", raw)
	metricsSummary(w, hc, cfg.addr, before)
	return nil
}

// scrapeFamilies fetches and parses the /metrics exposition, indexed by
// family name. Returns nil on any failure (old build, -DisableMetrics).
func scrapeFamilies(hc *http.Client, addr string) map[string]*obs.Family {
	resp, err := hc.Get(addr + "/metrics")
	if err != nil {
		return nil
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		io.Copy(io.Discard, resp.Body)
		return nil
	}
	fams, err := obs.ParseFamilies(resp.Body)
	if err != nil {
		return nil
	}
	byName := make(map[string]*obs.Family, len(fams))
	for i := range fams {
		byName[fams[i].Name] = &fams[i]
	}
	return byName
}

// sumFamily totals the matching samples of one family (0 when absent).
func sumFamily(byName map[string]*obs.Family, name string, match func(s *obs.Sample) bool) (total float64) {
	f := byName[name]
	if f == nil {
		return 0
	}
	for i := range f.Samples {
		s := &f.Samples[i]
		if match != nil && !match(s) {
			continue
		}
		v, err := s.Float()
		if err == nil {
			total += v
		}
	}
	return total
}

// metricsSummary scrapes the server's /metrics exposition at the end of the
// run and prints the server-side counters the client-side tally cannot see:
// queue pressure, WAL fsync tail, sheds, slow arrivals and the LP solver's
// warm-path health. Monotonic counters are reported as deltas against the
// pre-run snapshot (falling back to absolute totals when that scrape
// failed); gauges and histogram quantiles are point-in-time. Best-effort — a
// server without /metrics (old build, -DisableMetrics) just skips it.
func metricsSummary(w io.Writer, hc *http.Client, addr string, before map[string]*obs.Family) {
	byName := scrapeFamilies(hc, addr)
	if byName == nil {
		fmt.Fprintf(w, "\nserver /metrics: unavailable\n")
		return
	}
	sum := func(name string, match func(s *obs.Sample) bool) float64 {
		return sumFamily(byName, name, match)
	}
	// delta is the per-run increment of a monotonic counter family. Clamped
	// at 0: a server restart mid-run resets the sources, and a stale
	// pre-run snapshot must not produce negative traffic.
	delta := func(name string, match func(s *obs.Sample) bool) float64 {
		d := sumFamily(byName, name, match)
		if before != nil {
			d -= sumFamily(before, name, match)
		}
		if d < 0 {
			d = 0
		}
		return d
	}
	code := func(c string) func(*obs.Sample) bool {
		return func(s *obs.Sample) bool { return s.Label("code") == c }
	}
	label := func(k, v string) func(*obs.Sample) bool {
		return func(s *obs.Sample) bool { return s.Label(k) == v }
	}
	scope := "this run"
	if before == nil {
		scope = "server lifetime — pre-run scrape failed"
	}
	fmt.Fprintf(w, "\nserver /metrics summary (counters: %s):\n", scope)
	fmt.Fprintf(w, "  queue: deepest %.0f of limit %.0f (occupancy %.1f%%)\n",
		maxSample(byName["igepa_queue_depth"]),
		sum("igepa_queue_limit", nil),
		100*sum("igepa_queue_occupancy", nil))
	fmt.Fprintf(w, "  shed: %.0f × 429 · %.0f × 503 · slow arrivals %.0f\n",
		delta("igepa_http_errors_total", code("429")),
		delta("igepa_http_errors_total", code("503")),
		delta("igepa_slow_arrivals_total", nil))
	if p99, ok := histQuantile(byName["igepa_wal_fsync_seconds"], 0.99); ok {
		fmt.Fprintf(w, "  wal: %.0f appends · %.0f fsyncs · fsync p99 ≤ %s\n",
			delta("igepa_wal_appends_total", nil), delta("igepa_wal_syncs_total", nil),
			time.Duration(p99*float64(time.Second)).Round(time.Microsecond))
	}
	if p99, ok := histQuantile(byName["igepa_total_seconds"], 0.99); ok {
		fmt.Fprintf(w, "  server-side total latency p99 ≤ %s\n",
			time.Duration(p99*float64(time.Second)).Round(time.Microsecond))
	}
	if warm, cold := delta("igepa_lp_warm_solves_total", nil), delta("igepa_lp_cold_solves_total", nil); warm+cold > 0 {
		fmt.Fprintf(w, "  lp: %.0f warm · %.0f cold · %.0f fast finishes · %.0f warm pivots\n",
			warm, cold,
			delta("igepa_lp_fast_finishes_total", nil),
			delta("igepa_lp_warm_pivots_total", nil))
		if fb := delta("igepa_lp_fallbacks_total", nil); fb > 0 {
			fmt.Fprintf(w, "  lp fallbacks: %.0f (singular %.0f · repair_stall %.0f · bound_infeasible %.0f · error %.0f)\n",
				fb,
				delta("igepa_lp_fallbacks_total", label("reason", "singular")),
				delta("igepa_lp_fallbacks_total", label("reason", "repair_stall")),
				delta("igepa_lp_fallbacks_total", label("reason", "bound_infeasible")),
				delta("igepa_lp_fallbacks_total", label("reason", "error")))
		}
		fmt.Fprintf(w, "  lp kernels: %.0f hypersparse ftran · %.0f hypersparse btran · %.0f candidate refills · %.0f budget exhaustions · %.0f cutovers\n",
			delta("igepa_lp_hypersparse_solves_total", label("kernel", "ftran")),
			delta("igepa_lp_hypersparse_solves_total", label("kernel", "btran")),
			delta("igepa_lp_candidate_refills_total", nil),
			delta("igepa_lp_repair_budget_exhausted_total", nil),
			delta("igepa_lp_partial_warm_cutovers_total", nil))
	}
}

// maxSample returns the largest sample value in a family (0 when absent).
func maxSample(f *obs.Family) (max float64) {
	if f == nil {
		return 0
	}
	for i := range f.Samples {
		if v, err := f.Samples[i].Float(); err == nil && v > max {
			max = v
		}
	}
	return max
}

// histQuantile estimates quantile q from a cumulative Prometheus histogram:
// the upper bound of the first bucket whose cumulative count reaches
// q × total. Reported as "≤ bound" — the resolution is the bucket layout's.
func histQuantile(f *obs.Family, q float64) (float64, bool) {
	if f == nil {
		return 0, false
	}
	type bucket struct{ le, n float64 }
	var buckets []bucket
	for i := range f.Samples {
		s := &f.Samples[i]
		if !strings.HasSuffix(s.Name, "_bucket") {
			continue
		}
		le := s.Label("le")
		if le == "" {
			continue
		}
		var ub float64
		if le == "+Inf" {
			ub = math.Inf(1)
		} else if v, err := strconv.ParseFloat(le, 64); err == nil {
			ub = v
		} else {
			continue
		}
		if n, err := s.Float(); err == nil {
			buckets = append(buckets, bucket{ub, n})
		}
	}
	if len(buckets) == 0 {
		return 0, false
	}
	sort.Slice(buckets, func(i, j int) bool { return buckets[i].le < buckets[j].le })
	total := buckets[len(buckets)-1].n
	if total == 0 {
		return 0, false
	}
	want := q * total
	for _, b := range buckets {
		if b.n >= want && !math.IsInf(b.le, 1) {
			return b.le, true
		}
	}
	return buckets[len(buckets)-1].le, !math.IsInf(buckets[len(buckets)-1].le, 1)
}

// openLoop fires bid submissions at exponentially distributed gaps: an
// open-loop generator never waits for responses before sending the next
// request, so server slowness shows up as latency, not reduced load.
func openLoop(hc *http.Client, cfg config, numUsers int, t *tally) error {
	n := cfg.n
	if n <= 0 || n > numUsers {
		n = numUsers
	}
	rate := cfg.rate
	if rate <= 0 {
		rate = 1000
	}
	rng := xrand.New(cfg.seed)
	order := rng.Perm(numUsers)[:n]
	var wg sync.WaitGroup
	next := time.Now()
	for _, u := range order {
		next = next.Add(time.Duration(-math.Log(1-rng.Float64()) / rate * float64(time.Second)))
		if d := time.Until(next); d > 0 {
			time.Sleep(d)
		}
		wg.Add(1)
		go func(u int) {
			defer wg.Done()
			t0 := time.Now()
			status, _, err := postBid(hc, cfg.addr, u, true)
			if err != nil {
				t.count(0)
				return
			}
			if status == http.StatusOK {
				t.record(time.Since(t0))
			} else {
				t.count(status)
			}
		}(u)
	}
	wg.Wait()
	return nil
}

// closedLoop runs C workers over disjoint user slices, each cycling
// bid → cancel in bursts of K, honoring Retry-After on 429.
func closedLoop(hc *http.Client, cfg config, numUsers int, t *tally) error {
	conc := cfg.conc
	if conc <= 0 {
		conc = 8
	}
	if conc > numUsers {
		conc = numUsers
	}
	burst := cfg.burst
	if burst <= 0 {
		burst = 1
	}
	deadline := time.Time{}
	if cfg.duration > 0 {
		deadline = time.Now().Add(cfg.duration)
	}
	var wg sync.WaitGroup
	for wi := 0; wi < conc; wi++ {
		wg.Add(1)
		go func(wi int) {
			defer wg.Done()
			users := workerUsers(wi, conc, numUsers)
			for cycle := 0; ; cycle++ {
				if deadline.IsZero() {
					if cycle >= cfg.cycles {
						return
					}
				} else if time.Now().After(deadline) {
					return
				}
				fired := 0
				for _, u := range users {
					t0 := time.Now()
					status, retry, err := postBid(hc, cfg.addr, u, true)
					if err != nil {
						t.count(0)
						continue
					}
					switch status {
					case http.StatusOK:
						t.record(time.Since(t0))
						postCancel(hc, cfg.addr, u)
					case http.StatusTooManyRequests, http.StatusServiceUnavailable:
						// 429 is queue backpressure; 503 is a transient
						// unavailability (a router mid-renewal, a shard
						// failing over) — both may carry a Retry-After hint.
						t.count(status)
						if retry <= 0 {
							retry = time.Millisecond
						}
						time.Sleep(retry)
					case http.StatusConflict:
						// the user is already decided (e.g. by an earlier
						// run against the same server): release them so the
						// next cycle can re-submit
						t.count(status)
						postCancel(hc, cfg.addr, u)
					default:
						t.count(status)
					}
					if fired++; fired%burst == 0 && cfg.think > 0 {
						time.Sleep(cfg.think)
					}
				}
			}
		}(wi)
	}
	wg.Wait()
	return nil
}

// workerUsers returns worker wi's slice of the population.
func workerUsers(wi, conc, numUsers int) []int {
	var users []int
	for u := wi; u < numUsers; u += conc {
		users = append(users, u)
	}
	return users
}

func report(w io.Writer, cfg config, t *tally, elapsed time.Duration) {
	t.mu.Lock()
	defer t.mu.Unlock()
	total := t.ok + t.rejected + t.conflict + t.unavail + t.errs
	fmt.Fprintf(w, "\n%s workload: %d requests in %s\n", cfg.mode, total, elapsed.Round(time.Millisecond))
	fmt.Fprintf(w, "  decided %d · rejected(429) %d · conflict(409) %d · unavailable(503) %d · errors %d\n",
		t.ok, t.rejected, t.conflict, t.unavail, t.errs)
	if elapsed > 0 {
		fmt.Fprintf(w, "  sustained throughput: %.0f decided/s\n", float64(t.ok)/elapsed.Seconds())
	}
	if len(t.lats) == 0 {
		return
	}
	ps := stats.DurationPercentiles(t.lats, 0.50, 0.95, 0.99, 1)
	fmt.Fprintf(w, "  latency p50 %s · p95 %s · p99 %s · max %s\n",
		ps[0].Round(time.Microsecond), ps[1].Round(time.Microsecond),
		ps[2].Round(time.Microsecond), ps[3].Round(time.Microsecond))
}

// postBid submits a bid; on 429 or 503 it returns the server's Retry-After
// hint as retry (zero otherwise) so the caller can honor the backpressure.
func postBid(hc *http.Client, addr string, user int, wait bool) (status int, retry time.Duration, err error) {
	body, _ := json.Marshal(map[string]any{"user": user, "wait": wait})
	resp, err := hc.Post(addr+"/v1/bid", "application/json", bytes.NewReader(body))
	if err != nil {
		return 0, 0, err
	}
	defer resp.Body.Close()
	io.Copy(io.Discard, resp.Body)
	if resp.StatusCode == http.StatusTooManyRequests || resp.StatusCode == http.StatusServiceUnavailable {
		if ra, err := strconv.Atoi(resp.Header.Get("Retry-After")); err == nil && ra > 0 {
			retry = time.Duration(ra) * time.Second
		}
	}
	return resp.StatusCode, retry, nil
}

func postCancel(hc *http.Client, addr string, user int) {
	body, _ := json.Marshal(map[string]int{"user": user})
	resp, err := hc.Post(addr+"/v1/cancel", "application/json", bytes.NewReader(body))
	if err != nil {
		return
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
}

func getJSON(hc *http.Client, url string, out any) error {
	resp, err := hc.Get(url)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("%s: HTTP %d", url, resp.StatusCode)
	}
	return json.NewDecoder(resp.Body).Decode(out)
}
