package lp

import (
	"errors"
	"math"
	"reflect"
	"testing"

	"github.com/ebsn/igepa/internal/xrand"
)

// cloneProblem deep-copies a problem (reference semantics for the tests).
func cloneProblem(p *Problem) *Problem {
	return &Problem{
		NumRows: p.NumRows,
		B:       append([]float64(nil), p.B...),
		C:       append([]float64(nil), p.C...),
		ColPtr:  append([]int(nil), p.ColPtr...),
		Rows:    append([]int32(nil), p.Rows...),
		Vals:    append([]float64(nil), p.Vals...),
	}
}

// applyDeltaRef applies d to p by independent brute force — the reference
// the Solver's in-place delta application is checked against.
func applyDeltaRef(p *Problem, d ProblemDelta) *Problem {
	out := &Problem{NumRows: p.NumRows, B: append([]float64(nil), p.B...)}
	for _, bc := range d.SetB {
		out.B[bc.Row] = bc.B
	}
	c := append([]float64(nil), p.C...)
	for _, oc := range d.SetC {
		c[oc.Col] = oc.C
	}
	removed := make(map[int]bool, len(d.RemoveCols))
	for _, j := range d.RemoveCols {
		removed[j] = true
	}
	for j := 0; j < p.NumCols(); j++ {
		if removed[j] {
			continue
		}
		rows32, vals := p.Col(j)
		rows := make([]int, len(rows32))
		for i, r := range rows32 {
			rows[i] = int(r)
		}
		out.AddColumn(c[j], rows, vals)
	}
	for k := range d.AddCols {
		out.AddColumn(d.AddC[k], d.AddCols[k].Rows, d.AddCols[k].Vals)
	}
	return out
}

// requireResolveMatchesCold applies d through the persistent solver and
// cross-checks against a cold solve of the independently mutated problem:
// same problem data, certified optimality on both, and matching objectives.
func requireResolveMatchesCold(t *testing.T, label string, s *Solver, d ProblemDelta, tol float64) (*Solution, *Solution) {
	t.Helper()
	ref := applyDeltaRef(s.Problem(), d)
	warm, err := s.Resolve(d)
	if err != nil {
		t.Fatalf("%s: Resolve: %v", label, err)
	}
	if !reflect.DeepEqual(s.Problem().B, ref.B) || !reflect.DeepEqual(s.Problem().C, ref.C) ||
		!reflect.DeepEqual(s.Problem().Rows, ref.Rows) || !reflect.DeepEqual(s.Problem().Vals, ref.Vals) ||
		!reflect.DeepEqual(s.Problem().ColPtr, ref.ColPtr) {
		t.Fatalf("%s: in-place delta application diverged from reference", label)
	}
	cold, err := (&Revised{NoPerturb: s.Config.NoPerturb, Pricing: s.Config.Pricing}).Solve(ref)
	if err != nil {
		t.Fatalf("%s: cold solve: %v", label, err)
	}
	if math.Abs(warm.Objective-cold.Objective) > tol*(1+math.Abs(cold.Objective)) {
		t.Fatalf("%s: warm objective %v vs cold %v (tol %v)", label, warm.Objective, cold.Objective, tol)
	}
	if err := Verify(ref, warm, 1e-6); err != nil {
		t.Fatalf("%s: warm solution fails certification: %v", label, err)
	}
	if err := Verify(ref, cold, 1e-6); err != nil {
		t.Fatalf("%s: cold solution fails certification: %v", label, err)
	}
	return warm, cold
}

// resolveTol is the warm-vs-cold objective tolerance: both paths solve the
// identically perturbed problem to proven optimality, but may stop at
// different optimal bases of a dual-degenerate optimum, so the objectives
// agree to round-off, not necessarily to the last bit.
const resolveTol = 1e-9

func TestSolverColdMatchesRevised(t *testing.T) {
	rng := xrand.New(91)
	for trial := 0; trial < 10; trial++ {
		p := randomPacking(rng, 5+rng.Intn(30), 3+rng.Intn(10), 5)
		s := NewSolver(Revised{})
		got, err := s.Solve(p)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		want, err := (&Revised{}).Solve(p)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		// identical code path and start basis: bit-identical
		if got.Objective != want.Objective || got.Iterations != want.Iterations ||
			!reflect.DeepEqual(got.X, want.X) || !reflect.DeepEqual(got.Y, want.Y) {
			t.Fatalf("trial %d: pooled cold solve differs from stateless Revised", trial)
		}
		s.Release()
	}
}

func TestResolveBoundChanges(t *testing.T) {
	rng := xrand.New(17)
	p := randomPacking(rng, 40, 12, 5)
	s := NewSolver(Revised{})
	if _, err := s.Solve(p); err != nil {
		t.Fatal(err)
	}
	// grow some capacities (keeps the old basis feasible: ideal warm case)
	var d ProblemDelta
	for i := 40; i < 52; i += 3 {
		d.SetB = append(d.SetB, BoundChange{Row: i, B: p.B[i] + 2})
	}
	requireResolveMatchesCold(t, "grow-bounds", s, d, resolveTol)
	if s.Stats().WarmSolves == 0 {
		t.Errorf("bound growth did not take the warm path: %+v", s.Stats())
	}

	// shrink capacities — may warm-solve or fall back, must stay correct
	d = ProblemDelta{}
	for i := 40; i < 52; i += 2 {
		d.SetB = append(d.SetB, BoundChange{Row: i, B: math.Max(0, p.B[i]-1)})
	}
	requireResolveMatchesCold(t, "shrink-bounds", s, d, resolveTol)
	s.Release()
}

func TestResolveColumnChurn(t *testing.T) {
	rng := xrand.New(29)
	p := randomPacking(rng, 50, 15, 5)
	s := NewSolver(Revised{})
	sol, err := s.Solve(p)
	if err != nil {
		t.Fatal(err)
	}
	// Remove a mix of basic (x > 0) and nonbasic columns, add fresh ones.
	var d ProblemDelta
	for j := 0; j < len(sol.X) && len(d.RemoveCols) < 8; j++ {
		if sol.X[j] > 0.5 {
			d.RemoveCols = append(d.RemoveCols, j)
		}
	}
	for j := 1; j < len(sol.X) && len(d.RemoveCols) < 12; j += 7 {
		if sol.X[j] <= 0.5 {
			d.RemoveCols = append(d.RemoveCols, j)
		}
	}
	for k := 0; k < 6; k++ {
		grp := rng.Intn(50)
		ev := 50 + rng.Intn(15)
		d.AddCols = append(d.AddCols, Column{Rows: []int{grp, ev}, Vals: []float64{1, 1}})
		d.AddC = append(d.AddC, rng.Float64())
	}
	requireResolveMatchesCold(t, "column-churn", s, d, resolveTol)
	if s.Stats().WarmSolves == 0 {
		t.Logf("column churn fell back to cold: %+v (correct, but unexpected)", s.Stats())
	}

	// chained deltas keep working (warm-on-warm)
	for round := 0; round < 5; round++ {
		n := s.Problem().NumCols()
		d = ProblemDelta{RemoveCols: []int{rng.Intn(n)}}
		grp := rng.Intn(50)
		d.AddCols = []Column{{Rows: []int{grp, 50 + rng.Intn(15)}, Vals: []float64{1, 1}}}
		d.AddC = []float64{rng.Float64()}
		requireResolveMatchesCold(t, "chained", s, d, resolveTol)
	}
	s.Release()
}

func TestResolveObjectiveChanges(t *testing.T) {
	rng := xrand.New(43)
	p := randomPacking(rng, 30, 10, 4)
	s := NewSolver(Revised{})
	if _, err := s.Solve(p); err != nil {
		t.Fatal(err)
	}
	var d ProblemDelta
	for j := 0; j < p.NumCols(); j += 5 {
		d.SetC = append(d.SetC, ObjChange{Col: j, C: rng.Float64() * 2})
	}
	requireResolveMatchesCold(t, "objective", s, d, resolveTol)
	if s.Stats().WarmSolves == 0 {
		t.Errorf("objective-only delta did not take the warm path: %+v", s.Stats())
	}
	s.Release()
}

// TestResolveDualRepairOnShrink engineers a basis that turns primal
// infeasible under the new bounds: the dual-simplex repair must fix it on
// the warm path (no cold fallback) and land on the new optimum.
func TestResolveDualRepairOnShrink(t *testing.T) {
	// max x s.t. x ≤ 2 (row 0), x ≤ 3 (row 1): optimum x = 2, slack1 = 1.
	p := NewProblem(2, []float64{2, 3}, []float64{1}, []Column{
		{Rows: []int{0, 1}, Vals: []float64{1, 1}},
	})
	s := NewSolver(Revised{NoPerturb: true})
	if _, err := s.Solve(p); err != nil {
		t.Fatal(err)
	}
	// b1 = 1 < current x = 2 ⇒ the old basis gives slack1 = −1: primal
	// infeasible until the repair pivots.
	d := ProblemDelta{SetB: []BoundChange{{Row: 1, B: 1}}}
	sol, err := s.Resolve(d)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(sol.Objective-1) > 1e-9 {
		t.Errorf("objective %v, want 1", sol.Objective)
	}
	if s.Stats().WarmSolves != 1 || s.Stats().FallbackInfeasible != 0 {
		t.Errorf("expected a repaired warm solve, stats %+v", s.Stats())
	}
}

// TestResolveAfterFailedSolveGoesCold pins that a solve that did not end
// Optimal never seeds a warm start.
func TestResolveAfterFailedSolveGoesCold(t *testing.T) {
	rng := xrand.New(97)
	p := randomPacking(rng, 20, 8, 4)
	s := NewSolver(Revised{MaxIter: 1})
	if _, err := s.Solve(p); err != ErrIterLimit {
		t.Fatalf("err = %v, want ErrIterLimit", err)
	}
	s.Config.MaxIter = 0 // restore the default budget
	sol, err := s.Resolve(ProblemDelta{SetC: []ObjChange{{Col: 0, C: 2}}})
	if err != nil {
		t.Fatal(err)
	}
	if err := Verify(s.Problem(), sol, 1e-6); err != nil {
		t.Error(err)
	}
	if s.Stats().WarmSolves != 0 || s.Stats().ColdSolves != 2 {
		t.Errorf("expected cold-only solves, stats %+v", s.Stats())
	}
	s.Release()
}

func TestResolveValidation(t *testing.T) {
	s := NewSolver(Revised{})
	if _, err := s.Resolve(ProblemDelta{}); err != ErrNoProblem {
		t.Errorf("Resolve before Solve: err = %v, want ErrNoProblem", err)
	}
	p := NewProblem(1, []float64{2}, []float64{1},
		[]Column{{Rows: []int{0}, Vals: []float64{1}}})
	if _, err := s.Solve(p); err != nil {
		t.Fatal(err)
	}
	bad := []ProblemDelta{
		{SetB: []BoundChange{{Row: 5, B: 1}}},
		{SetB: []BoundChange{{Row: 0, B: -1}}},
		{SetB: []BoundChange{{Row: 0, B: math.NaN()}}},
		{SetC: []ObjChange{{Col: 3, C: 1}}},
		{SetC: []ObjChange{{Col: 0, C: math.Inf(1)}}},
		{RemoveCols: []int{9}},
		{AddCols: []Column{{Rows: []int{0}, Vals: []float64{1}}}}, // missing AddC
		{AddCols: []Column{{Rows: []int{7}, Vals: []float64{1}}}, AddC: []float64{1}},
		{AddCols: []Column{{Rows: []int{0}, Vals: []float64{math.NaN()}}}, AddC: []float64{1}},
	}
	for i, d := range bad {
		if _, err := s.Resolve(d); err == nil {
			t.Errorf("bad delta %d accepted", i)
		}
	}
	// the problem must be untouched by rejected deltas
	sol, err := s.Resolve(ProblemDelta{})
	if err != nil || math.Abs(sol.Objective-2) > 1e-6 {
		t.Errorf("after rejected deltas: sol=%+v err=%v", sol, err)
	}
	s.Release()
	// Release resets: Solve works again
	if _, err := s.Solve(p); err != nil {
		t.Errorf("Solve after Release: %v", err)
	}
}

// TestResolveWorkerInvariance pins that the warm path, like the cold one, is
// bit-identical for every worker count (forced Devex so the pooled pricing
// passes really run). The whole test also runs with the level-scheduled LU
// solves and a tiny dual-pricing block width forced on, so the dual repair's
// pooled ratio test must merge winners across many blocks identically for
// every pool size, under both leaving rules.
func TestResolveWorkerInvariance(t *testing.T) {
	rng := xrand.New(61)
	p := randomPacking(rng, 200, 40, 6)
	var d ProblemDelta
	for j := 0; j < 30; j += 3 {
		d.RemoveCols = append(d.RemoveCols, j)
	}
	for k := 0; k < 10; k++ {
		d.AddCols = append(d.AddCols, Column{
			Rows: []int{rng.Intn(200), 200 + rng.Intn(40)}, Vals: []float64{1, 1}})
		d.AddC = append(d.AddC, rng.Float64())
	}
	d.SetB = append(d.SetB, BoundChange{Row: 205, B: p.B[205] + 1})
	// shrink a few capacities so dual repair really pivots
	d.SetB = append(d.SetB,
		BoundChange{Row: 210, B: 0},
		BoundChange{Row: 215, B: math.Max(0, p.B[215]-2)})

	run := func(workers int, dual string) *Solution {
		s := NewSolver(Revised{
			Pricing: "devex", DualPricing: dual,
			Workers: workers, ParallelThreshold: 1,
		})
		if _, err := s.Solve(p); err != nil {
			t.Fatalf("workers=%d dual=%s: %v", workers, dual, err)
		}
		sol, err := s.Resolve(d)
		if err != nil {
			t.Fatalf("workers=%d dual=%s: %v", workers, dual, err)
		}
		s.Release()
		return sol
	}
	suite := func(t *testing.T) {
		for _, dual := range []string{"dse", "maxinfeas"} {
			ref := run(1, dual)
			for _, workers := range []int{2, 4, 7} {
				got := run(workers, dual)
				if got.Objective != ref.Objective || got.Iterations != ref.Iterations ||
					!reflect.DeepEqual(got.X, ref.X) || !reflect.DeepEqual(got.Y, ref.Y) {
					t.Fatalf("workers=%d dual=%s: warm resolve differs from workers=1", workers, dual)
				}
			}
		}
	}
	t.Run("default_thresholds", suite)
	t.Run("forced_parallel_kernels", func(t *testing.T) {
		oldRows, oldRHS, oldGrain := luParallelMinRows, luParallelMinRHS, luLevelGrain
		luParallelMinRows, luParallelMinRHS, luLevelGrain = 1, 1, 1
		defer func() {
			luParallelMinRows, luParallelMinRHS, luLevelGrain = oldRows, oldRHS, oldGrain
		}()
		suite(t)
	})
}

// TestResolveRefactorEveryOne drives a warm-resolve chain at the degenerate
// refactorization cadence — a fresh LU (and, under dse, a fresh steepest-
// edge reference framework) after every single pivot — so the level
// schedule's rebuild-after-factorize path and the repair's mid-loop reset
// run constantly. Correctness must be unaffected.
func TestResolveRefactorEveryOne(t *testing.T) {
	rng := xrand.New(53)
	p := randomPacking(rng, 60, 15, 5)
	for _, dual := range []string{"dse", "maxinfeas"} {
		s := NewSolver(Revised{RefactorEvery: 1, Pricing: "devex", DualPricing: dual})
		if _, err := s.Solve(p); err != nil {
			t.Fatalf("dual=%s: %v", dual, err)
		}
		for round := 0; round < 4; round++ {
			n := s.Problem().NumCols()
			d := ProblemDelta{
				SetB:       []BoundChange{{Row: 60 + rng.Intn(15), B: float64(rng.Intn(4))}},
				RemoveCols: []int{rng.Intn(n)},
			}
			d.AddCols = []Column{{Rows: []int{rng.Intn(60), 60 + rng.Intn(15)}, Vals: []float64{1, 1}}}
			d.AddC = []float64{rng.Float64()}
			requireResolveMatchesCold(t, "refactor-every-1/"+dual, s, d, resolveTol)
		}
		s.Release()
	}
}

// FuzzResolve mutates a random packing LP through a persistent solver —
// removing and adding columns, shrinking and growing bounds, rescaling
// objectives — and asserts after every step that Resolve's optimum matches a
// cold solve of the same mutated problem and certifies via Verify.
func FuzzResolve(f *testing.F) {
	f.Add(int64(1), uint8(3))
	f.Add(int64(42), uint8(7))
	f.Add(int64(-77), uint8(12))
	f.Fuzz(func(t *testing.T, seed int64, steps uint8) {
		rng := xrand.New(seed)
		p := randomPacking(rng, 3+rng.Intn(25), 2+rng.Intn(8), 4)
		// Rotate the solver knobs through the fuzzed space too: legacy dual
		// pricing, per-pivot refactorization, the pooled kernels, and the
		// warm-resolve tuning surface (candidate window, repair budget,
		// hypersparse threshold) — the optimum must be knob-invariant.
		var cfg Revised
		switch rng.Intn(7) {
		case 1:
			cfg.DualPricing = "maxinfeas"
		case 2:
			cfg.RefactorEvery = 1
		case 3:
			cfg.Workers = 2
			cfg.ParallelThreshold = 1
		case 4:
			cfg.PricingCandidates = 1 + rng.Intn(64)
		case 5:
			cfg.RepairBudget = 1 + rng.Intn(32)
		case 6:
			cfg.HypersparseThreshold = rng.Float64()
		}
		// Degenerate knob values must be rejected up front with a typed
		// *OptionError naming the knob — never a panic or a wrong answer.
		for _, bad := range []Revised{
			{PricingCandidates: -1 - rng.Intn(8)},
			{RepairBudget: -1 - rng.Intn(8)},
			{HypersparseThreshold: 1 + rng.Float64()},
			{HypersparseThreshold: math.NaN()},
		} {
			var oe *OptionError
			if _, err := bad.Solve(p); !errors.As(err, &oe) || oe.Option == "" {
				t.Fatalf("degenerate config %+v: err = %v, want *OptionError", bad, err)
			}
		}
		s := NewSolver(cfg)
		if _, err := s.Solve(p); err != nil {
			t.Fatal(err)
		}
		defer s.Release()
		g := 0 // group count unknown here; rows 0..? — recover from B
		for i, b := range s.Problem().B {
			if b != 1 {
				break
			}
			g = i + 1
		}
		m := s.Problem().NumRows
		for step := 0; step < int(steps%16); step++ {
			cur := s.Problem()
			n := cur.NumCols()
			var d ProblemDelta
			switch rng.Intn(4) {
			case 0: // shrink/grow a capacity row
				if m > g {
					row := g + rng.Intn(m-g)
					nb := float64(rng.Intn(5))
					d.SetB = append(d.SetB, BoundChange{Row: row, B: nb})
				}
			case 1: // remove up to 3 random columns
				for k := 0; k < 1+rng.Intn(3) && n > 1; k++ {
					d.RemoveCols = append(d.RemoveCols, rng.Intn(n))
				}
			case 2: // add up to 3 random columns
				for k := 0; k < 1+rng.Intn(3); k++ {
					rows := []int{}
					vals := []float64{}
					if g > 0 {
						rows = append(rows, rng.Intn(g))
						vals = append(vals, 1)
					}
					if m > g {
						rows = append(rows, g+rng.Intn(m-g))
						vals = append(vals, 1)
					}
					d.AddCols = append(d.AddCols, Column{Rows: rows, Vals: vals})
					d.AddC = append(d.AddC, rng.Float64())
				}
			case 3: // rescale an objective coefficient
				if n > 0 {
					d.SetC = append(d.SetC, ObjChange{Col: rng.Intn(n), C: rng.Float64() * 3})
				}
			}
			if d.Empty() {
				continue
			}
			ref := applyDeltaRef(cur, d)
			warm, err := s.Resolve(d)
			if err != nil {
				t.Fatalf("step %d: Resolve: %v", step, err)
			}
			cold, err := (&Revised{}).Solve(ref)
			if err != nil {
				t.Fatalf("step %d: cold: %v", step, err)
			}
			if math.Abs(warm.Objective-cold.Objective) > 1e-8*(1+math.Abs(cold.Objective)) {
				t.Fatalf("step %d: warm %v vs cold %v", step, warm.Objective, cold.Objective)
			}
			if err := Verify(ref, warm, 1e-6); err != nil {
				t.Fatalf("step %d: warm certificate: %v", step, err)
			}
		}
	})
}

// TestResolveChangedColumns verifies the changed-column tracker against
// brute force: after each warm Resolve, a column is reported changed if and
// only if its primal value differs from the previous solution's (mapped
// across the delta's removals), and every appended column is reported.
func TestResolveChangedColumns(t *testing.T) {
	rng := xrand.New(321)
	for trial := 0; trial < 20; trial++ {
		p := randomPacking(rng, 8+rng.Intn(20), 4+rng.Intn(8), 4)
		s := NewSolver(Revised{})
		s.TrackChangedColumns(true)
		sol, err := s.Solve(p)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if _, all := s.ChangedColumns(); !all {
			t.Fatalf("trial %d: cold solve must report all-changed", trial)
		}
		for step := 0; step < 4; step++ {
			n := s.Problem().NumCols()
			prev := append([]float64(nil), sol.X...)
			var d ProblemDelta
			removed := make(map[int]bool)
			if rng.Bool(0.5) {
				for k := 0; k < 1+rng.Intn(3); k++ {
					j := rng.Intn(n)
					d.RemoveCols = append(d.RemoveCols, j)
					removed[j] = true
				}
			}
			for k := 0; k < 1+rng.Intn(3); k++ {
				d.SetB = append(d.SetB, BoundChange{Row: rng.Intn(s.Problem().NumRows), B: float64(rng.Intn(5))})
			}
			if rng.Bool(0.4) {
				d.AddCols = append(d.AddCols, Column{Rows: []int{rng.Intn(s.Problem().NumRows)}, Vals: []float64{1}})
				d.AddC = append(d.AddC, rng.Float64())
			}
			sol, err = s.Resolve(d)
			if err != nil {
				t.Fatalf("trial %d step %d: %v", trial, step, err)
			}
			cols, all := s.ChangedColumns()
			if all {
				continue // cold fallback: every column treated as changed
			}
			// Reconstruct the old→new map by the documented compaction rule:
			// survivors keep their relative order.
			changed := make(map[int]bool, len(cols))
			for _, c := range cols {
				changed[c] = true
			}
			surv := 0
			for j := 0; j < n; j++ {
				if removed[j] {
					continue
				}
				nj := surv
				surv++
				if moved := prev[j] != sol.X[nj]; moved != changed[nj] {
					t.Fatalf("trial %d step %d: column %d->%d moved=%v, reported=%v",
						trial, step, j, nj, moved, changed[nj])
				}
			}
			for nj := surv; nj < len(sol.X); nj++ {
				if !changed[nj] {
					t.Fatalf("trial %d step %d: appended column %d not reported changed", trial, step, nj)
				}
			}
		}
		s.Release()
	}
}
